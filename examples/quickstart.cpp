// Quickstart: schedule point-to-point demands on two tree networks.
//
// This is the 60-second tour of the public API:
//   1. describe the networks (trees over a shared vertex set);
//   2. describe the demands (vertex pairs + profits) and which networks
//      each one may use;
//   3. call solveUnitTree() — the paper's distributed (7+eps)-approximation
//      (Chakaravarthy, Roy, Sabharwal, PODC 2012) — and read out the
//      assignments plus the per-run optimality certificate.
#include <iostream>

#include "algo/tree_solvers.hpp"

using namespace treesched;

int main() {
  // Seven sites; two alternative backbone trees connecting them.
  //
  //   network 0 (a path):   0-1-2-3-4-5-6
  //   network 1 (a star around site 3)
  TreeProblem problem;
  problem.numVertices = 7;
  problem.networks.push_back(makePathTree(/*id=*/0, 7));
  {
    std::vector<std::pair<VertexId, VertexId>> starEdges;
    for (VertexId v = 0; v < 7; ++v) {
      if (v != 3) starEdges.push_back({3, v});
    }
    problem.networks.emplace_back(/*id=*/1, 7, starEdges);
  }

  // Four demands; each wants an exclusive path between its two endpoints
  // on one of the networks its owner can reach.
  auto addDemand = [&](VertexId u, VertexId v, double profit,
                       std::vector<TreeId> access) {
    Demand d;
    d.id = static_cast<DemandId>(problem.demands.size());
    d.u = u;
    d.v = v;
    d.profit = profit;
    problem.demands.push_back(d);
    problem.access.push_back(std::move(access));
  };
  addDemand(0, 6, 5.0, {0, 1});  // long haul, may use either network
  addDemand(1, 2, 3.0, {0});     // short hop, path network only
  addDemand(4, 5, 2.0, {0});     // short hop, path network only
  addDemand(0, 6, 4.0, {1});     // competes with demand 0 on the star

  SolverOptions options;
  options.epsilon = 0.1;  // approximation slack: guarantee (7+eps)
  options.seed = 2026;

  const TreeSolveResult result = solveUnitTree(problem, options);

  std::cout << "scheduled " << result.assignments.size() << " of "
            << problem.numDemands() << " demands, profit " << result.profit
            << "\n";
  for (const TreeAssignment& a : result.assignments) {
    const Demand& d = problem.demands[static_cast<std::size_t>(a.demand)];
    std::cout << "  demand " << a.demand << " (" << d.u << " -> " << d.v
              << ", profit " << d.profit << ") on network " << a.network
              << "\n";
  }

  // Every run certifies its own quality: val(alpha,beta)/lambda bounds the
  // optimum from above by LP weak duality.
  std::cout << "optimum is at most " << result.dualUpperBound
            << " (certified ratio "
            << result.dualUpperBound / result.profit << ", worst-case bound "
            << result.certifiedBound << ")\n";
  return 0;
}
