// Bandwidth reservation on shared uplinks — the paper's line-network
// setting with windows (§1, §7) dressed as a small CDN story.
//
// A day is discretized into 15-minute timeslots. Three uplinks (resources)
// each carry 1 unit of bandwidth per slot. Customers book streaming
// sessions: "between release and deadline, I need `processing` consecutive
// slots at `height` of the link" — exactly a windowed demand. The solver
// picks who to admit, on which uplink, and when, with the (23+eps)
// guarantee of Theorem 7.2; the Panconesi–Sozio baseline runs on the same
// bookings for comparison.
#include <iostream>

#include "algo/line_solvers.hpp"
#include "gen/demand_gen.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace treesched;

int main() {
  constexpr std::int32_t kSlotsPerDay = 96;  // 24h / 15min
  constexpr std::int32_t kUplinks = 3;

  LineProblem bookings;
  bookings.numSlots = kSlotsPerDay;
  bookings.numResources = kUplinks;

  // A synthetic evening-heavy booking sheet: short clips during the day,
  // long prime-time streams with tight windows, a few bulk prefetches that
  // can run any time at low rate.
  Rng rng(7);
  auto book = [&](std::int32_t release, std::int32_t deadline,
                  std::int32_t slots, double rate, double value,
                  std::vector<ResourceId> uplinks) {
    WindowDemand d;
    d.id = static_cast<DemandId>(bookings.demands.size());
    d.release = release;
    d.deadline = deadline;
    d.processing = slots;
    d.height = rate;
    d.profit = value;
    bookings.demands.push_back(d);
    bookings.access.push_back(std::move(uplinks));
  };
  // Daytime clips: 1-2 slots, flexible windows, moderate rate.
  for (int i = 0; i < 30; ++i) {
    const auto start = static_cast<std::int32_t>(rng.nextInt(20, 60));
    const auto len = static_cast<std::int32_t>(rng.nextInt(1, 2));
    book(start, std::min(start + len + 6, kSlotsPerDay - 1), len,
         rng.nextDouble(0.2, 0.45), rng.nextDouble(1.0, 3.0),
         {static_cast<ResourceId>(rng.nextBounded(kUplinks))});
  }
  // Prime time: 4-8 slots, tight windows, high rate, high value.
  for (int i = 0; i < 18; ++i) {
    const auto len = static_cast<std::int32_t>(rng.nextInt(4, 8));
    const auto start = static_cast<std::int32_t>(rng.nextInt(68, 84 - len));
    book(start, start + len + 1, len, rng.nextDouble(0.55, 0.9),
         rng.nextDouble(6.0, 12.0), {0, 1, 2});
  }
  // Overnight bulk prefetch: long, low rate, very flexible.
  for (int i = 0; i < 8; ++i) {
    const auto len = static_cast<std::int32_t>(rng.nextInt(8, 12));
    book(0, kSlotsPerDay - 1, len, rng.nextDouble(0.1, 0.25),
         rng.nextDouble(2.0, 4.0), {0, 1, 2});
  }
  bookings.validate();

  SolverOptions options;
  options.epsilon = 0.1;
  options.seed = 99;
  const ArbitraryLineResult ours = solveArbitraryLine(bookings, options);
  const ArbitraryLineResult baseline =
      solvePanconesiSozioArbitraryLine(bookings, options);

  std::cout << "admitted " << ours.assignments.size() << " of "
            << bookings.numDemands() << " bookings\n\n";

  Table table({"algorithm", "value", "admitted", "certified bound",
               "value certified >= OPT/"});
  table.row()
      .cell("staged (this paper, 23+eps)")
      .cell(ours.profit, 1)
      .cell(ours.assignments.size())
      .cell(ours.certifiedBound, 1)
      .cell(ours.dualUpperBound / ours.profit, 2);
  table.row()
      .cell("threshold (PS-style baseline)")
      .cell(baseline.profit, 1)
      .cell(baseline.assignments.size())
      .cell(baseline.certifiedBound, 1)
      .cell(baseline.dualUpperBound / baseline.profit, 2);
  table.print(std::cout);

  std::cout << "\nprime-time admissions (slots 64-95):\n";
  for (const LineAssignment& a : ours.assignments) {
    const WindowDemand& d =
        bookings.demands[static_cast<std::size_t>(a.demand)];
    if (a.start >= 64) {
      std::cout << "  booking " << a.demand << ": uplink " << a.resource
                << ", slots " << a.start << "-" << a.start + d.processing - 1
                << ", rate " << d.height << "\n";
    }
  }
  return 0;
}
