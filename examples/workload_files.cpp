// Saving, sharing and replaying workloads (the core/io module).
//
// Generates a scenario, writes it to the versioned text format, reloads
// it, and demonstrates that a solver run on the reloaded instance is
// bit-identical — the workflow for filing reproducible bug reports or
// publishing benchmark inputs alongside results.
#include <iostream>

#include "treesched.hpp"

using namespace treesched;

int main() {
  TreeScenarioConfig cfg;
  cfg.seed = 20260611;
  cfg.numVertices = 30;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 25;
  cfg.demands.heights = HeightMode::Mixed;
  cfg.demands.hmin = 0.25;
  const TreeProblem original = makeTreeScenario(cfg);

  const std::string path = "/tmp/treesched_workload.txt";
  saveTreeProblem(path, original);
  std::cout << "saved workload to " << path << " ("
            << serializeTreeProblem(original).size() << " bytes)\n";

  const TreeProblem reloaded = loadTreeProblem(path);

  SolverOptions options;
  options.seed = 9;
  const ArbitraryTreeResult a = solveArbitraryTree(original, options);
  const ArbitraryTreeResult b = solveArbitraryTree(reloaded, options);

  std::cout << "profit on original: " << a.profit
            << ", on reloaded: " << b.profit << "\n";
  bool identical = a.assignments.size() == b.assignments.size();
  for (std::size_t i = 0; identical && i < a.assignments.size(); ++i) {
    identical = a.assignments[i].demand == b.assignments[i].demand &&
                a.assignments[i].network == b.assignments[i].network;
  }
  std::cout << "schedules identical: " << (identical ? "yes" : "NO") << "\n";

  // The first lines of the format are human-readable:
  const std::string text = serializeTreeProblem(original);
  std::cout << "\nformat preview:\n"
            << text.substr(0, text.find('\n', text.find("network")) + 1)
            << "...\n";
  return identical ? 0 : 1;
}
