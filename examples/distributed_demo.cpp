// The message-passing simulation end to end (paper §5 "Distributed
// Implementation").
//
// Runs the (7+eps) tree algorithm as an actual synchronous protocol —
// processors only learn about the world through O(M)-sized messages from
// neighbours sharing a resource — and contrasts the communication cost
// with the centralized reference engine, verifying that both produce the
// same schedule bit for bit.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "dist/protocol.hpp"
#include "dist/sim_network.hpp"
#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "policy/registry.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

namespace {

/// --trace/--metrics wiring for the demo (the bench binaries share the
/// same interface via bench_common.hpp).
struct DemoTelemetry {
  explicit DemoTelemetry(const CliFlags& flags)
      : printMetrics(flags.getBool("metrics")) {
    const std::string& path = flags.getString("trace");
    if (!path.empty()) {
      sink = std::make_unique<ChromeTraceSink>(path);
      tracer = Tracer(sink.get());
    }
  }
  Tracer* get() { return sink != nullptr ? &tracer : nullptr; }
  void report(const MetricsRegistry& metrics) const {
    if (printMetrics) std::cout << "\n" << metrics.describe();
  }
  void finish() {
    if (sink != nullptr) {
      sink->close();
      std::cout << "wrote " << sink->path() << " (" << sink->eventCount()
                << " trace events)\n";
    }
  }

  std::unique_ptr<ChromeTraceSink> sink;
  Tracer tracer;
  bool printMetrics = false;
};

void listPolicies() {
  const SchedulerRegistry& registry = SchedulerRegistry::all();
  Table table({"policy", "certified", "distributed", "summary"});
  for (const std::string& id : registry.ids()) {
    const SchedulerInfo& info = registry.info(id);
    table.row()
        .cell(info.id)
        .cell(info.certified ? "yes" : "no")
        .cell(info.distributed ? "yes" : "no")
        .cell(info.summary);
  }
  table.print(std::cout);
}

/// Runs one registry scheduler (policy/registry.hpp) over a scenario
/// preset and reports its revenue/round/message line — the single-row
/// version of bench_tournament.
int runPolicy(const std::string& policyId, std::string preset,
              std::uint64_t seed, std::int32_t demands,
              DemoTelemetry& telemetry) {
  const SchedulerRegistry& registry = SchedulerRegistry::all();
  if (!registry.has(policyId)) {
    std::cout << "unknown --policy '" << policyId
              << "' (use --list-policies)\n";
    return 1;
  }
  if (preset.empty()) preset = "cdn_tree_250k";
  if (demands <= 0) demands = 2'000;  // keep the demo interactive
  const ScenarioProblem scenario =
      buildScenarioProblem(preset, seed, demands);

  SchedulerConfig config;
  config.core.seed = seed + 7;
  config.core.epsilon = 0.3;
  config.core.misRoundBudget = 4;
  config.core.stepsPerStage = 2;
  MetricsRegistry metrics;
  config.distributed.tracer = telemetry.get();
  config.distributed.metrics = &metrics;
  const auto scheduler = registry.make(policyId, config);

  const auto begin = std::chrono::steady_clock::now();
  const ScheduleOutcome outcome = scheduler->solve(
      {scenario.universe, scenario.layering, scenario.access, {}, nullptr});
  const auto end = std::chrono::steady_clock::now();
  const double wallMs =
      std::chrono::duration<double, std::milli>(end - begin).count();

  const SchedulerInfo& info = registry.info(policyId);
  std::cout << "policy " << info.id << " (" << info.summary << ")\n"
            << "preset " << preset << ": " << demands << " demands, "
            << scenario.universe.numInstances() << " instances\n\n";
  Table table({"metric", "value"});
  table.row().cell("wall time (ms)").cell(wallMs, 1);
  table.row().cell("revenue").cell(outcome.profit, 2);
  table.row()
      .cell("admitted instances")
      .cell(static_cast<std::int64_t>(outcome.solution.instances.size()));
  if (info.certified) {
    table.row().cell("dual upper bound").cell(outcome.dualUpperBound, 2);
    table.row().cell("lambda reached").cell(outcome.lambdaMeasured, 4);
  }
  table.row().cell("simulated rounds").cell(outcome.rounds);
  table.row().cell("messages delivered").cell(outcome.messages);
  table.row().cell("dual raises").cell(outcome.raises);
  table.print(std::cout);
  telemetry.report(metrics);
  return 0;
}

/// Exercises the parallel engine on one of the production-scale presets
/// (gen/scenario.hpp) at the requested thread count. Bit-identity across
/// thread counts is gated by tests/parallel_equivalence_test.cpp and
/// re-checked by bench_parallel; here we show the engine at work.
int runPreset(const std::string& preset, std::uint64_t seed,
              std::int32_t demands, std::int32_t threads,
              DemoTelemetry& telemetry) {
  if (preset != "metro_line_100k" && preset != "cdn_tree_250k") {
    std::cout << "unknown --preset '" << preset
              << "' (use metro_line_100k or cdn_tree_250k)\n";
    return 1;
  }
  if (demands <= 0) demands = 20'000;  // keep the demo interactive
  PreparedRun prepared =
      preset == "metro_line_100k"
          ? prepareUnitLineRun(makeMetroLine100k(seed, demands))
          : prepareUnitTreeRun(makeCdnTree250k(seed, demands));

  SchedulerConfig sched;
  sched.core.seed = seed + 7;
  sched.core.epsilon = 0.3;
  sched.core.misRoundBudget = 4;
  sched.core.stepsPerStage = 2;
  sched.distributed.threads = threads;
  MetricsRegistry metrics;
  sched.distributed.tracer = telemetry.get();
  sched.distributed.metrics = &metrics;
  const DistributedOptions dopt = sched.distributedOptions();

  SimNetwork bus(std::move(prepared.adjacency));
  const auto begin = std::chrono::steady_clock::now();
  const DistributedResult result = runDistributedOverTransport(
      prepared.universe, prepared.layering, bus, dopt);
  const auto end = std::chrono::steady_clock::now();
  const double wallMs =
      std::chrono::duration<double, std::milli>(end - begin).count();

  std::cout << "preset " << preset << ": " << demands << " demands, "
            << prepared.universe.numInstances() << " instances, " << threads
            << " thread(s)\n\n";
  Table table({"metric", "value"});
  table.row().cell("wall time (ms)").cell(wallMs, 1);
  table.row().cell("profit").cell(result.profit, 2);
  table.row().cell("dual upper bound").cell(result.dualUpperBound, 2);
  table.row().cell("lambda reached").cell(result.lambdaMeasured, 4);
  table.row().cell("simulated rounds").cell(result.network.rounds);
  table.row().cell("messages delivered").cell(result.network.messages);
  table.row()
      .cell("plane growth events")
      .cell(result.network.planeGrowthEvents);
  table.row()
      .cell("last plane growth round")
      .cell(result.network.planeLastGrowthRound);
  table.row()
      .cell("local dual views consistent")
      .cell(result.localViewsConsistent ? "yes" : "NO");
  table.print(std::cout);
  telemetry.report(metrics);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seed", 31337, "scenario RNG seed");
  flags.intFlag("threads", 1,
                "worker threads for the parallel engine (bit-identical "
                "results at any value)");
  flags.stringFlag("preset", "",
                   "run a production-scale preset instead of the small "
                   "demo: metro_line_100k or cdn_tree_250k");
  flags.intFlag("demands", 0,
                "preset demand count override (0 = preset demo default)");
  flags.boolFlag("list-presets", false,
                 "enumerate every gen/scenario preset and exit");
  flags.stringFlag("policy", "",
                   "run a registered scheduler instead of the demo: any "
                   "id from --list-policies, over --preset (default "
                   "cdn_tree_250k)");
  flags.boolFlag("list-policies", false,
                 "enumerate every registered scheduler and exit");
  flags.stringFlag("trace", "",
                   "write a Chrome trace-event JSON of the run to FILE");
  flags.boolFlag("metrics", false,
                 "print the run's metrics-registry snapshot");
  if (!flags.parse(argc, argv)) return 0;

  if (flags.getBool("list-policies")) {
    listPolicies();
    return 0;
  }
  if (flags.getBool("list-presets")) {
    Table table({"preset", "kind", "default demands", "summary"});
    for (const ScenarioPresetInfo& preset : scenarioPresets()) {
      table.row()
          .cell(preset.name)
          .cell(preset.kind)
          .cell(preset.defaultDemands)
          .cell(preset.summary);
    }
    table.print(std::cout);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  const auto threads = static_cast<std::int32_t>(flags.getInt("threads"));
  DemoTelemetry telemetry(flags);

  if (!flags.getString("policy").empty()) {
    const int rc = runPolicy(flags.getString("policy"),
                             flags.getString("preset"), seed,
                             static_cast<std::int32_t>(flags.getInt("demands")),
                             telemetry);
    telemetry.finish();
    return rc;
  }
  if (!flags.getString("preset").empty()) {
    const int rc = runPreset(flags.getString("preset"), seed,
                             static_cast<std::int32_t>(flags.getInt("demands")),
                             threads, telemetry);
    telemetry.finish();
    return rc;
  }

  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = 40;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 48;
  cfg.demands.accessProbability = 0.6;
  const TreeProblem problem = makeTreeScenario(cfg);

  // Communication graph: processors are adjacent iff they share a network.
  const auto adjacency = communicationGraph(problem.access,
                                            problem.numNetworks());
  std::size_t edges = 0;
  for (const auto& nbrs : adjacency) edges += nbrs.size();
  std::cout << "processors: " << adjacency.size()
            << ", communication edges: " << edges / 2 << "\n\n";

  // Print the first few active steps via the observer hooks (the
  // structured obs/Tracer rides alongside through --trace).
  class StepPrinter : public ProtocolObserver {
   public:
    void onStepStart(std::int32_t epoch, std::int32_t stage, std::int32_t step,
                     std::int32_t participants) override {
      if (++count_ <= 6) {
        std::cout << "  step <" << epoch << "," << stage << "," << step
                  << ">: " << participants << " unsatisfied instances";
      }
    }
    void onMisComplete(std::int64_t, std::int32_t lubyRounds,
                       std::int32_t misSize) override {
      if (count_ <= 6) {
        std::cout << " -> MIS of " << misSize << " in " << lubyRounds
                  << " Luby rounds\n";
      } else if (count_ == 7 && !ellipsis_) {
        std::cout << "  ...\n";
        ellipsis_ = true;
      }
    }

   private:
    int count_ = 0;
    bool ellipsis_ = false;
  };
  StepPrinter printer;

  std::cout << "phase-1 trace (first steps):\n";
  // One layered config, projected onto both engines — the unified
  // SchedulerConfig (policy/config.hpp) replaces the hand-copied
  // DistributedOptions/FrameworkConfig pair this demo used to carry.
  SchedulerConfig sched;
  sched.core.seed = 7;
  sched.core.epsilon = 0.1;
  sched.core.misRoundBudget = 32;
  sched.core.stepsPerStage = 10;
  sched.distributed.threads = threads;
  sched.distributed.observer = &printer;
  MetricsRegistry metrics;
  sched.distributed.tracer = telemetry.get();
  sched.distributed.metrics = &metrics;
  const DistributedResult dist =
      runDistributedUnitTree(problem, sched.distributedOptions());
  std::cout << "\n";

  // Centralized reference with the identical fixed schedule (the
  // framework() projection keeps fixedSchedule on by contract).
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  const TreeLayeringResult layering = buildTreeLayering(problem, universe);
  const TwoPhaseResult central =
      runTwoPhase(universe, layering.layering, sched.framework());

  Table table({"metric", "value"});
  table.row().cell("profit (distributed)").cell(dist.profit, 2);
  table.row().cell("profit (centralized)").cell(central.profit, 2);
  std::vector<InstanceId> c = central.solution.instances;
  std::sort(c.begin(), c.end());
  table.row()
      .cell("schedules identical")
      .cell(c == dist.solution.instances ? "yes" : "NO");
  table.row()
      .cell("local dual views consistent")
      .cell(dist.localViewsConsistent ? "yes" : "NO");
  table.row().cell("lambda reached").cell(dist.lambdaMeasured, 4);
  table.row().cell("simulated rounds").cell(dist.network.rounds);
  table.row().cell("rounds with traffic").cell(dist.network.busyRounds);
  table.row().cell("messages delivered").cell(dist.network.messages);
  table.row().cell("payload (units of M)").cell(dist.network.payload);
  table.row()
      .cell("largest message (units of M)")
      .cell(dist.network.maxMessagePayload);
  table.row().cell("active MIS steps").cell(dist.activeSteps);
  table.row().cell("dual raises").cell(dist.raises);
  table.print(std::cout);

  std::cout << "\nOPT <= " << dist.dualUpperBound
            << " by LP duality; schedule value " << dist.profit << " is >= OPT/"
            << dist.dualUpperBound / dist.profit << "\n";
  telemetry.report(metrics);
  telemetry.finish();
  return 0;
}
