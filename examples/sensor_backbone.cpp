// Circuit reservation on redundant backbone trees — the paper's
// tree-network setting (§2) on a field-deployment story.
//
// A sensor field has 60 nodes and three redundant spanning trees (built by
// different radio channels). Gateways request exclusive end-to-end
// circuits between node pairs; each gateway only speaks some of the
// channels. We run the paper's distributed (7+eps) algorithm, the
// Appendix-A sequential 3-approximation, and profit-greedy, and show the
// ideal tree decomposition underpinning the distributed run.
#include <iostream>

#include "algo/sequential_tree.hpp"
#include "algo/tree_solvers.hpp"
#include "core/universe.hpp"
#include "decomp/tree_decomposition.hpp"
#include "exact/greedy.hpp"
#include "gen/scenario.hpp"
#include "util/table.hpp"

using namespace treesched;

int main() {
  TreeScenarioConfig cfg;
  cfg.seed = 4242;
  cfg.numVertices = 60;
  cfg.numNetworks = 3;
  cfg.shape = TreeShape::UniformRandom;
  cfg.demands.numDemands = 90;
  cfg.demands.profitMin = 1.0;
  cfg.demands.profitMax = 10.0;
  cfg.demands.accessProbability = 0.6;  // gateways speak ~2 of 3 channels
  const TreeProblem field = makeTreeScenario(cfg);

  std::cout << "field: " << field.numVertices << " nodes, "
            << field.numNetworks() << " backbone trees, "
            << field.numDemands() << " circuit requests\n\n";

  // The decomposition driving the layering (paper Lemma 4.1): depth
  // O(log n), pivot size <= 2 on every backbone tree.
  Table decompTable({"backbone", "ideal depth", "bound 2lg(n)+1", "pivot"});
  for (const TreeNetwork& t : field.networks) {
    const TreeDecomposition h = idealDecomposition(t);
    std::int32_t lg = 0;
    while ((1 << lg) < field.numVertices) ++lg;
    decompTable.row()
        .cell(t.id())
        .cell(h.maxDepth())
        .cell(2 * lg + 1)
        .cell(pivotSize(t, h));
  }
  decompTable.print(std::cout);
  std::cout << "\n";

  SolverOptions options;
  options.seed = 1;
  const TreeSolveResult dist = solveUnitTree(field, options);
  const SequentialTreeResult seq = solveSequentialTree(field);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(field);
  const GreedyResult greedy = greedyByProfit(universe);

  Table table({"algorithm", "profit", "circuits", "worst-case bound",
               "certified >= OPT/"});
  table.row()
      .cell("distributed staged (Thm 5.3)")
      .cell(dist.profit, 1)
      .cell(dist.assignments.size())
      .cell(dist.certifiedBound, 2)
      .cell(dist.dualUpperBound / dist.profit, 2);
  table.row()
      .cell("sequential (Appendix A)")
      .cell(seq.profit, 1)
      .cell(seq.assignments.size())
      .cell(seq.certifiedBound, 2)
      .cell(seq.dualUpperBound / seq.profit, 2);
  table.row()
      .cell("profit-greedy")
      .cell(greedy.profit, 1)
      .cell(greedy.solution.instances.size())
      .cell("none")
      .cell("-");
  table.print(std::cout);

  std::cout << "\ndistributed run: " << dist.stats.epochs << " epochs x "
            << dist.stats.stages / std::max(1, dist.stats.epochs)
            << " stages, " << dist.stats.steps << " MIS steps, "
            << dist.stats.misRounds << " Luby rounds\n";
  return 0;
}
