// The online scheduling subsystem end to end (src/online/).
//
// Streams a churn trace — demands arriving and departing in virtual
// time — through the epoch-batched churn engine: each epoch extends the
// live communication graph incrementally, warm-starts the primal-dual
// state from the surviving duals and re-runs the distributed protocol
// only on the affected region, then re-admits from the persistent
// phase-1 stack. The final epoch is contrasted with a from-scratch
// two-phase solve on the surviving demand set.
#include <algorithm>
#include <iostream>
#include <string>

#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"
#include "online/churn_engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seed", 2027, "scenario RNG seed");
  flags.intFlag("demands", 480, "pool demand count");
  flags.stringFlag("pattern", "flash_crowd",
                   "arrival process: poisson, flash_crowd or diurnal");
  flags.intFlag("threads", 1, "worker threads for the epoch re-solves");
  if (!flags.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  const auto demands = static_cast<std::int32_t>(flags.getInt("demands"));
  const std::string pattern = flags.getString("pattern");

  ChurnTreeScenario scenario = makeFlashCrowdTree50k(seed, demands);
  if (pattern == "poisson") {
    scenario.arrivals.model = ArrivalModel::Poisson;
  } else if (pattern == "diurnal") {
    scenario.arrivals.model = ArrivalModel::Diurnal;
  } else if (pattern != "flash_crowd") {
    std::cout << "unknown --pattern '" << pattern
              << "' (use poisson, flash_crowd or diurnal)\n";
    return 1;
  }

  const ChurnTrace trace =
      generateChurnTrace(scenario.arrivals, scenario.pool.numDemands());
  std::cout << "pool: " << scenario.pool.numDemands() << " demands over "
            << scenario.pool.numNetworks() << " networks; trace: "
            << trace.events.size() << " events ("
            << arrivalModelName(scenario.arrivals.model) << "), epoch length "
            << scenario.epochLength << "\n\n";

  ChurnEngineConfig config;
  config.epochLength = scenario.epochLength;
  config.solver.seed = seed + 13;
  config.solver.threads =
      static_cast<std::int32_t>(flags.getInt("threads"));

  const PreparedRun prepared = prepareUnitTreeRun(scenario.pool);
  const ChurnRunResult result = runChurnOverTrace(
      prepared.universe, prepared.layering, scenario.pool.access, trace,
      config);

  Table table({"epoch", "arr", "dep", "active", "affected", "frac", "mode",
               "profit", "dual UB", "rounds"});
  for (const EpochOutcome& epoch : result.epochs) {
    table.row()
        .cell(epoch.epoch)
        .cell(epoch.arrivals)
        .cell(epoch.departures)
        .cell(epoch.activeDemands)
        .cell(epoch.affectedDemands)
        .cell(epoch.resolveFraction, 2)
        .cell(epoch.fullResolve ? "full" : "warm")
        .cell(epoch.profit, 1)
        .cell(epoch.dualUpperBound, 1)
        .cell(epoch.rounds);
  }
  table.print(std::cout);

  // From-scratch contrast on the survivors.
  const std::vector<InstanceId>& survivors = result.finalActiveInstances;
  FrameworkConfig scratch;
  scratch.epsilon = config.solver.epsilon;
  scratch.seed = result.epochs.empty() ? config.solver.seed
                                       : result.epochs.back().protocolSeed;
  scratch.misRoundBudget = config.solver.misRoundBudget;
  scratch.fixedSchedule = true;
  scratch.stepsPerStage = config.solver.stepsPerStage;
  const TwoPhaseResult fromScratch = runTwoPhaseRestricted(
      prepared.universe, prepared.layering, scratch, survivors);

  std::cout << "\nfinal incremental revenue: " << result.finalProfit
            << "  (from-scratch on survivors: " << fromScratch.profit
            << ", ratio "
            << (fromScratch.profit > 0
                    ? result.finalProfit / fromScratch.profit
                    : 1.0)
            << ")\n"
            << "mean re-solve fraction over churn epochs: "
            << result.meanResolveFraction << " ("
            << result.fullResolves << " full re-solves in "
            << result.epochs.size() << " epochs)\n";
  return 0;
}
