// The online scheduling subsystem end to end (src/online/).
//
// Streams a churn trace — demands arriving and departing in virtual
// time — through the epoch-batched churn engine: each epoch extends the
// live communication graph incrementally, warm-starts the primal-dual
// state from the surviving duals and re-runs the distributed protocol
// only on the affected region, then re-admits from the persistent
// phase-1 stack. The final epoch is contrasted with a from-scratch
// two-phase solve on the surviving demand set.
//
// --transport picks the wire (sync bus, async lossy, live-sharded):
// epoch outcomes are bit-identical across all of them, only the wire
// accounting printed at the end moves. --pattern targeted_burst runs
// the adversarial hotspot model (correlated arrival + departure waves
// on hash-picked target networks).
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>

#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "online/churn_engine.hpp"
#include "policy/online_policy.hpp"
#include "policy/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seed", 2027, "scenario RNG seed");
  flags.intFlag("demands", 480, "pool demand count");
  flags.stringFlag("pattern", "flash_crowd",
                   "arrival process: poisson, flash_crowd, diurnal or "
                   "targeted_burst");
  flags.stringFlag("transport", "sync",
                   "wire the epochs run over: sync, async or sharded");
  flags.intFlag("threads", 1, "worker threads for the epoch re-solves");
  flags.stringFlag("policy", "two_phase",
                   "scheduler admitting each epoch: two_phase runs the "
                   "warm-started incremental engine, any other "
                   "--list-policies id a from-scratch solve per epoch");
  flags.boolFlag("list-policies", false,
                 "enumerate every registered scheduler and exit");
  flags.stringFlag("trace", "",
                   "write a Chrome trace-event JSON of the run to FILE");
  flags.boolFlag("metrics", false,
                 "print the run's metrics-registry snapshot");
  flags.stringFlag("ledger", "",
                   "write the decision provenance ledger (JSONL, one "
                   "lifecycle event per line) to FILE");
  flags.stringFlag("series", "",
                   "write per-epoch metrics snapshots (JSONL) to FILE");
  if (!flags.parse(argc, argv)) return 0;
  if (flags.getBool("list-policies")) {
    const SchedulerRegistry& registry = SchedulerRegistry::all();
    Table policies({"policy", "certified", "distributed", "summary"});
    for (const std::string& id : registry.ids()) {
      const SchedulerInfo& info = registry.info(id);
      policies.row()
          .cell(info.id)
          .cell(info.certified ? "yes" : "no")
          .cell(info.distributed ? "yes" : "no")
          .cell(info.summary);
    }
    policies.print(std::cout);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  const auto demands = static_cast<std::int32_t>(flags.getInt("demands"));
  const std::string pattern = flags.getString("pattern");
  const std::string policy = flags.getString("policy");
  if (!SchedulerRegistry::all().has(policy)) {
    std::cout << "unknown --policy '" << policy
              << "' (use --list-policies)\n";
    return 1;
  }

  ChurnTreeScenario scenario = makeFlashCrowdTree50k(seed, demands);
  if (pattern == "poisson") {
    scenario.arrivals.model = ArrivalModel::Poisson;
  } else if (pattern == "diurnal") {
    scenario.arrivals.model = ArrivalModel::Diurnal;
  } else if (pattern == "targeted_burst") {
    scenario = makeHotspotTree50k(seed, demands);
  } else if (pattern != "flash_crowd") {
    std::cout << "unknown --pattern '" << pattern
              << "' (use poisson, flash_crowd, diurnal or targeted_burst)\n";
    return 1;
  }

  const ChurnTrace trace =
      generateChurnTrace(scenario.arrivals, scenario.pool.access);
  std::cout << "pool: " << scenario.pool.numDemands() << " demands over "
            << scenario.pool.numNetworks() << " networks; trace: "
            << trace.events.size() << " events ("
            << arrivalModelName(scenario.arrivals.model) << "), epoch length "
            << scenario.epochLength << "\n\n";

  // One layered config (policy/config.hpp), projected onto the churn
  // engine's solver view at the boundary.
  SchedulerConfig sched;
  sched.core.epsilon = 0.3;
  sched.core.seed = seed + 13;
  sched.core.misRoundBudget = 4;
  sched.core.stepsPerStage = 2;
  sched.distributed.threads =
      static_cast<std::int32_t>(flags.getInt("threads"));

  // Telemetry plane (src/obs/): the tracer and registry thread through
  // the solver config into every epoch's protocol run.
  std::unique_ptr<ChromeTraceSink> sink;
  Tracer tracer;
  if (!flags.getString("trace").empty()) {
    sink = std::make_unique<ChromeTraceSink>(flags.getString("trace"));
    tracer = Tracer(sink.get());
  }
  MetricsRegistry metrics;
  // Decision provenance (obs/ledger.hpp) and per-epoch time series
  // (obs/timeseries.hpp): both read-only observers of the incremental
  // engine — attaching them changes zero bits of any epoch outcome.
  ProvenanceLedger ledger(&metrics);
  EpochSeries series(metrics, pattern + "/" + flags.getString("transport"));

  ChurnEngineConfig config;
  config.epochLength = scenario.epochLength;
  config.solver = sched.onlineSolver();
  config.solver.tracer = sink != nullptr ? &tracer : nullptr;
  config.solver.metrics = &metrics;
  if (!flags.getString("ledger").empty()) {
    config.solver.ledger = &ledger;
  }
  if (!flags.getString("series").empty()) {
    config.solver.series = &series;
  }
  config.transport.kind =
      parseLiveTransportKind(flags.getString("transport"));
  // The demo's wire: heavy-tail latency with 5% loss, locality-sharded
  // onto ~demands/16 processors when --transport sharded.
  config.transport.async.seed = seed ^ 0x11feULL;
  config.transport.async.link.latency.model = LatencyModel::HeavyTail;
  config.transport.async.link.latency.tailShape = 1.5;
  config.transport.async.link.latency.tailCap = 64.0;
  config.transport.async.link.dropProbability = 0.05;
  config.transport.async.link.retransmitTimeout = 16.0;
  config.transport.async.shardProcessors = std::max(2, demands / 16);

  // Package the workload as a ScenarioProblem: the static pool
  // universe/layering back the registry schedulers and the from-scratch
  // contrast below; the shared pool handle is what the "two_phase" path
  // grows its DynamicUniverse from.
  PreparedRun prepared = prepareUnitTreeRun(scenario.pool);
  ScenarioProblem problem{std::move(prepared.universe),
                          std::move(prepared.layering),
                          scenario.pool.access,
                          scenario.pool.numNetworks(),
                          /*hasChurn=*/true,
                          trace,
                          scenario.epochLength,
                          std::make_shared<const TreeProblem>(scenario.pool),
                          nullptr};
  // "two_phase" is the warm-started incremental engine over a dynamic
  // universe; any other id runs the registry scheduler from scratch
  // each churn epoch (policy/online_policy.hpp).
  const ChurnRunResult result =
      runChurnWithScheduler(problem, trace, config, policy);

  Table table({"epoch", "arr", "dep", "active", "affected", "frac", "mode",
               "profit", "dual UB", "rounds"});
  for (const EpochOutcome& epoch : result.epochs) {
    table.row()
        .cell(epoch.epoch)
        .cell(epoch.arrivals)
        .cell(epoch.departures)
        .cell(epoch.activeDemands)
        .cell(epoch.affectedDemands)
        .cell(epoch.resolveFraction, 2)
        .cell(epoch.fullResolve ? "full" : "warm")
        .cell(epoch.profit, 1)
        .cell(epoch.dualUpperBound, 1)
        .cell(epoch.rounds);
  }
  table.print(std::cout);

  // From-scratch contrast on the survivors: lift the engine's solver
  // view back into the layered config and project the framework view.
  const std::vector<InstanceId>& survivors = result.finalActiveInstances;
  SchedulerConfig scratch = SchedulerConfig::fromOnlineSolver(config.solver);
  scratch.core.seed = result.epochs.empty()
                          ? config.solver.seed
                          : result.epochs.back().protocolSeed;
  const TwoPhaseResult fromScratch = runTwoPhaseRestricted(
      problem.universe, problem.layering, scratch.framework(), survivors);

  std::cout << "\nfinal revenue (" << policy << "): " << result.finalProfit
            << "  (from-scratch on survivors: " << fromScratch.profit
            << ", ratio "
            << (fromScratch.profit > 0
                    ? result.finalProfit / fromScratch.profit
                    : 1.0)
            << ")\n"
            << "mean re-solve fraction over churn epochs: "
            << result.meanResolveFraction << " ("
            << result.fullResolves << " full re-solves in "
            << result.epochs.size() << " epochs)\n"
            << "admission SLA: " << result.sla.admittedDemands
            << " demands admitted, mean latency "
            << result.sla.meanLatencyEpochs << " epochs (p50 "
            << result.sla.p50LatencyEpochs << ", p99 "
            << result.sla.p99LatencyEpochs << ", max "
            << result.sla.maxLatencyEpochs << "), "
            << result.sla.departedUnadmitted << " departed unadmitted\n"
            << "wire (" << flags.getString("transport")
            << "): " << result.network.transmissions << " transmissions, "
            << result.network.retransmissions << " retransmissions, "
            << result.network.drops << " drops, virtual time "
            << result.network.virtualTime << "\n";
  if (flags.getBool("metrics")) std::cout << "\n" << metrics.describe();
  if (!flags.getString("ledger").empty()) {
    ledger.writeJsonl(flags.getString("ledger"));
    std::cout << "wrote " << flags.getString("ledger") << " ("
              << ledger.eventCount() << " ledger events; alerts: "
              << ledger.slaBreaches() << " sla, "
              << ledger.neverAdmittedDepartures() << " never-admitted, "
              << ledger.migrationThrashAlerts() << " thrash)\n";
  }
  if (!flags.getString("series").empty()) {
    series.write(flags.getString("series"));
    std::cout << "wrote " << flags.getString("series") << " ("
              << series.snapshots() << " epoch snapshots)\n";
  }
  if (sink != nullptr) {
    sink->close();
    std::cout << "wrote " << sink->path() << " (" << sink->eventCount()
              << " trace events)\n";
  }
  return 0;
}
