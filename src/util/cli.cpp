#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace treesched {

CliFlags& CliFlags::intFlag(const std::string& name, std::int64_t def,
                            const std::string& help) {
  Flag f;
  f.kind = Kind::Int;
  f.help = help;
  f.intValue = def;
  flags_[name] = std::move(f);
  return *this;
}

CliFlags& CliFlags::doubleFlag(const std::string& name, double def,
                               const std::string& help) {
  Flag f;
  f.kind = Kind::Double;
  f.help = help;
  f.doubleValue = def;
  flags_[name] = std::move(f);
  return *this;
}

CliFlags& CliFlags::boolFlag(const std::string& name, bool def,
                             const std::string& help) {
  Flag f;
  f.kind = Kind::Bool;
  f.help = help;
  f.boolValue = def;
  flags_[name] = std::move(f);
  return *this;
}

CliFlags& CliFlags::stringFlag(const std::string& name, const std::string& def,
                               const std::string& help) {
  Flag f;
  f.kind = Kind::String;
  f.help = help;
  f.stringValue = def;
  flags_[name] = std::move(f);
  return *this;
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage(argv[0]);
      return false;
    }
    checkThat(arg.rfind("--", 0) == 0, "flag starts with --: " + arg, __FILE__,
              __LINE__);
    arg = arg.substr(2);
    std::string value;
    bool haveValue = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      haveValue = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      throw CheckError("unknown flag --" + arg + "\n" + usage(argv[0]));
    }
    Flag& flag = it->second;
    if (!haveValue && flag.kind != Kind::Bool) {
      checkThat(i + 1 < argc, "flag --" + arg + " needs a value", __FILE__,
                __LINE__);
      value = argv[++i];
      haveValue = true;
    }
    switch (flag.kind) {
      case Kind::Int:
        flag.intValue = std::stoll(value);
        break;
      case Kind::Double:
        flag.doubleValue = std::stod(value);
        break;
      case Kind::Bool:
        flag.boolValue = !haveValue || value == "true" || value == "1";
        break;
      case Kind::String:
        flag.stringValue = value;
        break;
    }
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  checkThat(it != flags_.end(), "flag registered: " + name, __FILE__, __LINE__);
  checkThat(it->second.kind == kind, "flag type matches: " + name, __FILE__,
            __LINE__);
  return it->second;
}

std::int64_t CliFlags::getInt(const std::string& name) const {
  return find(name, Kind::Int).intValue;
}

double CliFlags::getDouble(const std::string& name) const {
  return find(name, Kind::Double).doubleValue;
}

bool CliFlags::getBool(const std::string& name) const {
  return find(name, Kind::Bool).boolValue;
}

const std::string& CliFlags::getString(const std::string& name) const {
  return find(name, Kind::String).stringValue;
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.kind) {
      case Kind::Int:
        os << "=<int> (default " << flag.intValue << ")";
        break;
      case Kind::Double:
        os << "=<double> (default " << flag.doubleValue << ")";
        break;
      case Kind::Bool:
        os << " (default " << (flag.boolValue ? "true" : "false") << ")";
        break;
      case Kind::String:
        os << "=<string> (default \"" << flag.stringValue << "\")";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace treesched
