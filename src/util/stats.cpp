#include "util/stats.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/table.hpp"

namespace treesched {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::min() const {
  checkThat(count_ > 0, "Summary::min needs samples", __FILE__, __LINE__);
  return min_;
}

double Summary::max() const {
  checkThat(count_ > 0, "Summary::max needs samples", __FILE__, __LINE__);
  return max_;
}

double Summary::mean() const {
  checkThat(count_ > 0, "Summary::mean needs samples", __FILE__, __LINE__);
  return mean_;
}

double Summary::variance() const {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::string Summary::describe(int precision) const {
  if (count_ == 0) return "(no samples)";
  std::ostringstream os;
  os << formatDouble(mean_, precision) << " ± "
     << formatDouble(stddev(), precision) << " ["
     << formatDouble(min_, precision) << ","
     << formatDouble(max_, precision) << "] (n=" << count_ << ")";
  return os.str();
}

}  // namespace treesched
