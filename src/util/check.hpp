// Lightweight runtime-check helpers.
//
// The library validates its invariants aggressively (decomposition
// properties, dual-constraint tightness, solution feasibility). These
// checks are cheap relative to the algorithms and stay on in release
// builds; violations indicate a logic bug, so they throw
// `treesched::CheckError` with a descriptive message rather than abort.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace treesched {

/// Thrown when an internal invariant or a caller-supplied precondition is
/// violated. The message names the failing condition and its location.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void failCheck(std::string_view expr, std::string_view file,
                                   int line, std::string_view message) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw CheckError(os.str());
}

}  // namespace detail

/// Checks `cond`; on failure throws CheckError naming `what` and `where`.
/// Used instead of a macro so call sites stay macro-free per the style
/// guide; callers pass __FILE__/__LINE__ via the TS_CHECK wrapper below
/// or the contextual overloads.
inline void checkThat(bool cond, std::string_view what,
                      std::string_view where = "", int line = 0) {
  if (!cond) {
    detail::failCheck(what, where.empty() ? "<unknown>" : where, line, "");
  }
}

/// Variant carrying an extra human-readable message.
inline void checkThat(bool cond, std::string_view what, std::string_view msg,
                      std::string_view where, int line) {
  if (!cond) {
    detail::failCheck(what, where, line, msg);
  }
}

/// Checks that `index` is a valid position in a container of size `size`.
inline void checkIndex(long long index, long long size, std::string_view what) {
  if (index < 0 || index >= size) {
    std::ostringstream os;
    os << what << ": index " << index << " out of range [0," << size << ")";
    throw CheckError(os.str());
  }
}

}  // namespace treesched
