// Minimal command-line flag parser for example and benchmark binaries.
//
// Supports `--name=value` and `--name value` forms plus boolean switches.
// Unrecognized flags raise CheckError listing the known flags, so every
// binary is self-describing with --help.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace treesched {

/// Declarative flag registry + parser.
class CliFlags {
 public:
  /// Registers a flag with a default value and help text; returns *this for
  /// chaining. Types supported: int64, double, bool, string.
  CliFlags& intFlag(const std::string& name, std::int64_t def,
                    const std::string& help);
  CliFlags& doubleFlag(const std::string& name, double def,
                       const std::string& help);
  CliFlags& boolFlag(const std::string& name, bool def,
                     const std::string& help);
  CliFlags& stringFlag(const std::string& name, const std::string& def,
                       const std::string& help);

  /// Parses argv; returns false if --help was requested (after printing
  /// usage to stdout). Throws CheckError on unknown flags or bad values.
  bool parse(int argc, const char* const* argv);

  std::int64_t getInt(const std::string& name) const;
  double getDouble(const std::string& name) const;
  bool getBool(const std::string& name) const;
  const std::string& getString(const std::string& name) const;

  /// Renders the usage text.
  std::string usage(const std::string& program) const;

 private:
  enum class Kind { Int, Double, Bool, String };
  struct Flag {
    Kind kind;
    std::string help;
    std::int64_t intValue = 0;
    double doubleValue = 0;
    bool boolValue = false;
    std::string stringValue;
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::map<std::string, Flag> flags_;
};

}  // namespace treesched
