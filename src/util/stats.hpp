// Streaming summary statistics used by benchmarks and tests.
#pragma once

#include <cstddef>
#include <string>

namespace treesched {

/// Accumulates count/min/max/mean/variance of a stream of doubles without
/// storing samples (Welford's algorithm).
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;

  /// "mean ± stddev [min,max] (n)" — handy in bench output.
  std::string describe(int precision = 3) const;

 private:
  std::size_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace treesched
