// ASCII table printer used by every benchmark harness.
//
// Benches reproduce the paper's quantitative claims as tables (DESIGN.md §4)
// and must be readable both on a terminal and in EXPERIMENTS.md, so the
// printer emits GitHub-flavoured markdown pipes with aligned columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace treesched {

/// Column-aligned table builder.
///
/// Usage:
///   Table t({"n", "depth", "bound"});
///   t.addRow({"1024", "20", "20"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have exactly as many cells as the header.
  void addRow(std::vector<std::string> cells);

  /// Convenience: formats heterogeneous cells (int/double/string) in order.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& cell(const std::string& v);
    RowBuilder& cell(const char* v);
    RowBuilder& cell(long long v);
    RowBuilder& cell(unsigned long long v);
    RowBuilder& cell(long v);
    RowBuilder& cell(unsigned long v);
    RowBuilder& cell(int v);
    RowBuilder& cell(unsigned int v);
    RowBuilder& cell(double v, int precision = 3);
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  /// Starts a row; it is committed when the returned builder is destroyed.
  RowBuilder row() { return RowBuilder(*this); }

  std::size_t rowCount() const { return rows_.size(); }

  /// Writes the table as aligned markdown (| a | b |) to `os`.
  void print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  std::string toString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision — shared helper for benches.
std::string formatDouble(double v, int precision = 3);

/// Prints a section heading ("== title ==") used between benchmark tables.
void printHeading(std::ostream& os, const std::string& title);

}  // namespace treesched
