#include "util/rng.hpp"

#include "util/check.hpp"

namespace treesched {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t keyedHash(std::uint64_t seed, std::uint64_t a) {
  return splitmix64(splitmix64(seed) ^ a);
}

std::uint64_t keyedHash(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  return splitmix64(keyedHash(seed, a) ^ b);
}

std::uint64_t keyedHash(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c) {
  return splitmix64(keyedHash(seed, a, b) ^ c);
}

std::uint64_t keyedHash(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c, std::uint64_t d) {
  return splitmix64(keyedHash(seed, a, b, c) ^ d);
}

std::uint64_t keyedHash(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c, std::uint64_t d, std::uint64_t e) {
  return splitmix64(keyedHash(seed, a, b, c, d) ^ e);
}

std::uint64_t Rng::nextBounded(std::uint64_t bound) {
  checkThat(bound > 0, "Rng::nextBounded bound > 0", __FILE__, __LINE__);
  // Rejection sampling to avoid modulo bias; the loop almost never iterates
  // because bound << 2^64 in all our uses.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::nextInt(std::int64_t lo, std::int64_t hi) {
  checkThat(lo <= hi, "Rng::nextInt lo <= hi", __FILE__, __LINE__);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(nextBounded(span));
}

double Rng::nextDouble() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::nextDouble(double lo, double hi) {
  return lo + (hi - lo) * nextDouble();
}

bool Rng::nextBool(double p) { return nextDouble() < p; }

Rng Rng::fork(std::uint64_t salt) const {
  return Rng(keyedHash(state_, 0x5eedf0c4ULL, salt));
}

}  // namespace treesched
