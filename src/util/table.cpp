#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace treesched {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  checkThat(!header_.empty(), "Table header non-empty", __FILE__, __LINE__);
}

void Table::addRow(std::vector<std::string> cells) {
  checkThat(cells.size() == header_.size(), "Table row width matches header",
            __FILE__, __LINE__);
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& v) {
  cells_.push_back(v);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(const char* v) {
  cells_.emplace_back(v);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(unsigned long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(unsigned long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(int v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(unsigned int v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  cells_.push_back(formatDouble(v, precision));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_.addRow(std::move(cells_)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emitRow = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    }
    os << '\n';
  };
  emitRow(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    emitRow(row);
  }
}

std::string Table::toString() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string formatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void printHeading(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n\n";
}

}  // namespace treesched
