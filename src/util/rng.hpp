// Deterministic random numbers and stable hashing.
//
// All randomness in the library flows through these functions so that every
// algorithm run is reproducible from a single 64-bit seed, and so that the
// centralized two-phase engine and the message-passing simulator can make
// *identical* random choices: MIS priorities are pure functions of
// (seed, schedule position, instance id) — see framework/mis.hpp.
#pragma once

#include <cstdint>
#include <vector>

namespace treesched {

/// One round of the splitmix64 output function. Passes BigCrush; used both
/// as the Rng state transition and as the avalanche stage of keyedHash.
std::uint64_t splitmix64(std::uint64_t x);

/// Combines an arbitrary number of 64-bit words into one well-mixed word.
/// Stable across platforms and runs (no ASLR-dependent inputs).
std::uint64_t keyedHash(std::uint64_t seed, std::uint64_t a);
std::uint64_t keyedHash(std::uint64_t seed, std::uint64_t a, std::uint64_t b);
std::uint64_t keyedHash(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c);
std::uint64_t keyedHash(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c, std::uint64_t d);
std::uint64_t keyedHash(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c, std::uint64_t d, std::uint64_t e);

/// Small, fast, deterministic PRNG (splitmix64 stream).
///
/// Satisfies UniformRandomBitGenerator, so it can be handed to <random>
/// distributions, although the bounded helpers below are preferred because
/// their results are identical on every platform (std:: distributions are
/// not guaranteed to be).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return splitmix64(state_);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t nextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Uniform double in [lo, hi).
  double nextDouble(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool nextBool(double p = 0.5);

  /// Fisher–Yates shuffle, deterministic given the stream position.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(nextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independent, deterministic child stream. Used to give each
  /// workload generator / experiment repetition its own stream without
  /// coupling their consumption patterns.
  Rng fork(std::uint64_t salt) const;

 private:
  std::uint64_t state_;
};

}  // namespace treesched
