// Pluggable arrival processes for the online churn engine.
//
// A churn trace assigns every demand of a pool an arrival time and an
// (exponential) lifetime in virtual time. Three processes cover the
// workloads the ROADMAP north star cares about:
//
//  * Poisson     — arrivals uniform over the horizon (a Poisson process
//                  conditioned on the demand count): steady traffic.
//  * FlashCrowd  — a configurable fraction of the demands piles into a
//                  narrow burst window; the rest trickle in uniformly:
//                  the viral-content spike.
//  * Diurnal     — arrival intensity follows a sinusoidal day/night wave
//                  (sampled by hash-keyed rejection): the metro rush
//                  hour.
//
// Every draw is a stable hash of (seed, demand, salt[, attempt]) — the
// net/latency.hpp discipline — so a trace is a pure function of its
// config: no stateful RNG, no generation-order coupling, bit-identical
// on every platform.
#pragma once

#include <cstdint>
#include <vector>

#include "core/demand.hpp"

namespace treesched {

enum class ArrivalModel : std::uint8_t { Poisson, FlashCrowd, Diurnal };

struct ArrivalConfig {
  ArrivalModel model = ArrivalModel::Poisson;
  std::uint64_t seed = 1;
  /// Virtual-time window in which demands may arrive (> 0). Departures
  /// past the horizon are dropped: those demands stay until the end.
  double horizon = 100.0;
  /// Mean of the exponential lifetime (> 0).
  double meanLifetime = 40.0;

  // ---- FlashCrowd ----
  double burstCenter = 0.5;    ///< burst midpoint as a fraction of horizon
  double burstWidth = 0.05;    ///< burst window width, fraction of horizon
  double burstFraction = 0.7;  ///< fraction of demands arriving in the burst

  // ---- Diurnal ----
  double waves = 2.0;      ///< full day/night cycles over the horizon
  double waveDepth = 0.9;  ///< intensity swing in [0, 1]; 0 = flat
};

/// Throws CheckError unless the config is well-formed.
void validateArrivalConfig(const ArrivalConfig& config);

/// One churn event: demand `demand` arrives (or departs) at `time`.
struct ChurnEvent {
  double time = 0;
  DemandId demand = 0;
  bool arrival = true;
};

/// A complete trace over a demand pool: every demand arrives exactly
/// once; a demand departs at most once, strictly after its arrival.
/// Events are sorted by (time, demand, departure-before-arrival) — a
/// total deterministic order.
struct ChurnTrace {
  std::vector<ChurnEvent> events;
  double horizon = 0;

  /// Virtual time of the last event (0 when empty).
  double lastEventTime() const {
    return events.empty() ? 0.0 : events.back().time;
  }
};

/// Generates the trace for `numDemands` pool demands (ids 0..n-1).
ChurnTrace generateChurnTrace(const ArrivalConfig& config,
                              std::int32_t numDemands);

/// Human-readable model name ("poisson", "flash_crowd", "diurnal").
const char* arrivalModelName(ArrivalModel model);

}  // namespace treesched
