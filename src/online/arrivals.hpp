// Pluggable arrival processes for the online churn engine.
//
// A churn trace assigns every demand of a pool an arrival time and an
// (exponential) lifetime in virtual time. Three processes cover the
// workloads the ROADMAP north star cares about:
//
//  * Poisson     — arrivals uniform over the horizon (a Poisson process
//                  conditioned on the demand count): steady traffic.
//  * FlashCrowd  — a configurable fraction of the demands piles into a
//                  narrow burst window; the rest trickle in uniformly:
//                  the viral-content spike.
//  * Diurnal     — arrival intensity follows a sinusoidal day/night wave
//                  (sampled by hash-keyed rejection): the metro rush
//                  hour.
//  * TargetedBurst — the adversarial model: a hash-picked set of target
//                  networks is hammered — demands homed on them pile
//                  into the burst window AND depart together (one shared
//                  correlated-lifetime draw, per-demand jitter), so the
//                  same region absorbs an arrival wave and a departure
//                  wave a few epochs apart. Needs the pool's access
//                  lists (the access overload below).
//
// Every draw is a stable hash of (seed, demand, salt[, attempt]) — the
// net/latency.hpp discipline — so a trace is a pure function of its
// config: no stateful RNG, no generation-order coupling, bit-identical
// on every platform.
#pragma once

#include <cstdint>
#include <vector>

#include "core/demand.hpp"

namespace treesched {

enum class ArrivalModel : std::uint8_t {
  Poisson,
  FlashCrowd,
  Diurnal,
  TargetedBurst
};

struct ArrivalConfig {
  ArrivalModel model = ArrivalModel::Poisson;
  std::uint64_t seed = 1;
  /// Virtual-time window in which demands may arrive (> 0). Departures
  /// past the horizon are dropped: those demands stay until the end.
  double horizon = 100.0;
  /// Mean of the exponential lifetime (> 0).
  double meanLifetime = 40.0;

  // ---- FlashCrowd ----
  double burstCenter = 0.5;    ///< burst midpoint as a fraction of horizon
  double burstWidth = 0.05;    ///< burst window width, fraction of horizon
  double burstFraction = 0.7;  ///< fraction of demands arriving in the burst

  // ---- Diurnal ----
  double waves = 2.0;      ///< full day/night cycles over the horizon
  double waveDepth = 0.9;  ///< intensity swing in [0, 1]; 0 = flat

  // ---- TargetedBurst (reuses burstCenter/burstWidth for the window) ----
  /// Networks under attack, hash-picked from the pool's network set
  /// (> 0; clamped to the network count).
  std::int32_t targetNetworkCount = 2;
  /// Probability that a demand homed on a target network joins the
  /// burst (in [0, 1]); non-targeted demands arrive Poisson-style.
  double targetFraction = 0.8;
  /// Burst members share ONE lifetime draw with mean `meanLifetime *
  /// correlatedLifetime` (in (0, 1]), jittered ±10% per demand — the
  /// correlated mass departure.
  double correlatedLifetime = 0.25;
};

/// Throws CheckError unless the config is well-formed.
void validateArrivalConfig(const ArrivalConfig& config);

/// One churn event: demand `demand` arrives (or departs) at `time`.
struct ChurnEvent {
  double time = 0;
  DemandId demand = 0;
  bool arrival = true;
};

/// A complete trace over a demand pool: every demand arrives exactly
/// once; a demand departs at most once, strictly after its arrival.
/// Events are sorted by (time, demand, departure-before-arrival) — a
/// total deterministic order.
struct ChurnTrace {
  std::vector<ChurnEvent> events;
  double horizon = 0;

  /// Virtual time of the last event (0 when empty).
  double lastEventTime() const {
    return events.empty() ? 0.0 : events.back().time;
  }
};

/// Generates the trace for `numDemands` pool demands (ids 0..n-1).
/// Throws CheckError for ArrivalModel::TargetedBurst — that model needs
/// the access overload below.
ChurnTrace generateChurnTrace(const ArrivalConfig& config,
                              std::int32_t numDemands);

/// Access-aware overload: `access[d]` lists the networks demand d may
/// use — the targeting signal of ArrivalModel::TargetedBurst (a demand
/// is targeted when its home network, the smallest accessible id, is in
/// the hash-picked target set). Other models ignore `access` and
/// produce the exact same trace as the plain overload.
ChurnTrace generateChurnTrace(
    const ArrivalConfig& config,
    const std::vector<std::vector<std::int32_t>>& access);

/// The hash-picked target networks of a TargetedBurst config over
/// `numNetworks` pool networks (sorted, duplicate-free; exposed so
/// tests and tools can see where the attack lands).
std::vector<std::int32_t> targetedNetworks(const ArrivalConfig& config,
                                           std::int32_t numNetworks);

/// Access-list variant: derives the network universe exactly like trace
/// generation does (largest accessed id + 1 — ids no demand can reach
/// are never targeted), so the returned set is precisely where the
/// generated burst lands.
std::vector<std::int32_t> targetedNetworks(
    const ArrivalConfig& config,
    const std::vector<std::vector<std::int32_t>>& access);

/// Human-readable model name ("poisson", "flash_crowd", "diurnal",
/// "targeted_burst").
const char* arrivalModelName(ArrivalModel model);

}  // namespace treesched
