#include "online/churn_engine.hpp"

#include <algorithm>
#include <cmath>

#include "decomp/layering.hpp"
#include "util/check.hpp"

namespace treesched {

std::vector<EpochBatch> batchTrace(const ChurnTrace& trace,
                                   double epochLength) {
  checkThat(epochLength > 0, "epoch length positive", __FILE__, __LINE__);
  std::vector<EpochBatch> batches;
  if (trace.events.empty()) return batches;
  const auto numEpochs = static_cast<std::size_t>(
      std::floor(trace.lastEventTime() / epochLength)) + 1;
  batches.resize(numEpochs);

  // Net each window: a demand both arriving and departing inside one
  // window is never admitted (its lifetime fell between two admission
  // boundaries); trace semantics guarantee at most one arrival and one
  // departure per demand, with the departure strictly later.
  std::size_t begin = 0;
  for (std::size_t k = 0; k < numEpochs; ++k) {
    const double windowEnd = epochLength * static_cast<double>(k + 1);
    std::size_t end = begin;
    while (end < trace.events.size() &&
           (trace.events[end].time < windowEnd || k + 1 == numEpochs)) {
      ++end;
    }
    EpochBatch& batch = batches[k];
    for (std::size_t e = begin; e < end; ++e) {
      const ChurnEvent& event = trace.events[e];
      auto& list = event.arrival ? batch.arrivals : batch.departures;
      list.push_back(event.demand);
    }
    std::sort(batch.arrivals.begin(), batch.arrivals.end());
    std::sort(batch.departures.begin(), batch.departures.end());
    // Drop the intra-window pairs from both lists.
    std::vector<DemandId> arriveOnly;
    std::vector<DemandId> departOnly;
    std::set_difference(batch.arrivals.begin(), batch.arrivals.end(),
                        batch.departures.begin(), batch.departures.end(),
                        std::back_inserter(arriveOnly));
    std::set_difference(batch.departures.begin(), batch.departures.end(),
                        batch.arrivals.begin(), batch.arrivals.end(),
                        std::back_inserter(departOnly));
    batch.arrivals = std::move(arriveOnly);
    batch.departures = std::move(departOnly);
    begin = end;
  }
  return batches;
}

ChurnRunResult runChurnOverTrace(DynamicUniverse& universe,
                                 const ChurnTrace& trace,
                                 const ChurnEngineConfig& config) {
  const std::unique_ptr<Transport> transport = makeLiveTransport(
      universe.numDemands(), universe.access(), config.transport);
  return runChurnOverTransport(universe, trace, config, *transport);
}

ChurnRunResult runChurnOverTransport(DynamicUniverse& universe,
                                     const ChurnTrace& trace,
                                     const ChurnEngineConfig& config,
                                     Transport& transport) {
  IncrementalSolver solver(universe, config.solver, transport);
  ChurnRunResult result;
  const std::vector<EpochBatch> batches =
      batchTrace(trace, config.epochLength);
  result.epochs.reserve(batches.size());

  double fractionSum = 0;
  std::int64_t churnEpochs = 0;
  for (const EpochBatch& batch : batches) {
    EpochOutcome outcome =
        solver.applyEpoch(batch.arrivals, batch.departures);
    if (outcome.arrivals + outcome.departures > 0) {
      fractionSum += outcome.resolveFraction;
      ++churnEpochs;
    }
    if (outcome.fullResolve) ++result.fullResolves;
    result.totalRounds += outcome.rounds;
    result.totalMessages += outcome.messages;
    result.totalDemandsMigrated += outcome.demandsMigrated;
    result.totalEngineClaims += outcome.engineClaims;
    result.totalEngineSteals += outcome.engineSteals;
    result.peakVarianceBefore =
        std::max(result.peakVarianceBefore, outcome.loadVarianceBefore);
    result.peakVarianceAfter =
        std::max(result.peakVarianceAfter, outcome.loadVarianceAfter);
    result.epochs.push_back(std::move(outcome));
  }
  result.finalSolution = solver.solution();
  result.finalProfit = solver.profit();
  result.finalActiveInstances = solver.activeInstanceIds();
  result.meanResolveFraction =
      churnEpochs > 0 ? fractionSum / static_cast<double>(churnEpochs) : 0.0;
  result.sla = solver.admissionSla();
  const UniverseStats& ustats = universe.stats();
  result.universeBuildMs = ustats.buildMs;
  result.meanExtendUsPerArrival =
      ustats.arrivals > 0 ? static_cast<double>(ustats.extendUs) /
                                static_cast<double>(ustats.arrivals)
                          : 0.0;
  result.network = solver.transport().stats();
  return result;
}

ChurnRunResult runChurnTree(const TreeProblem& pool, const ChurnTrace& trace,
                            const ChurnEngineConfig& config) {
  DynamicUniverse universe = makeDynamicTreeUniverse(pool);
  return runChurnOverTrace(universe, trace, config);
}

ChurnRunResult runChurnLine(const LineProblem& pool, const ChurnTrace& trace,
                            const ChurnEngineConfig& config) {
  DynamicUniverse universe = makeDynamicLineUniverse(pool);
  return runChurnOverTrace(universe, trace, config);
}

}  // namespace treesched
