// Warm-started incremental epoch re-solver (the online tentpole).
//
// The solver owns a *dynamic* universe (core/dynamic_universe.hpp):
// the pool id space is fixed, but instances, edge paths, conflicts and
// layering are materialized only for live demands. Demands arrive and
// depart in epoch batches; each batch triggers an incremental re-solve
// instead of a from-scratch run:
//
//  * Arrival of d extends the universe in O(affected) — addDemand
//    materializes d's instances with their pool-stable ids, layers them
//    and splices them into the live conflict relation — and warm-starts
//    each new instance's dual-constraint LHS from the persistent duals
//    (alpha(d) + the surviving beta along its path). No pool-sized
//    structure is ever built, so per-arrival cost is independent of
//    pool size and steady-state memory tracks live demands.
//  * The communication graph is extended incrementally — arrival of d
//    adds node d plus edges to active demands sharing a network (via a
//    shared-network edge count, so duplicated shared networks never
//    duplicate edges); departure removes d's edges. Never a full
//    rebuild, and the transport (with its warmed-up buffers and
//    cumulative stats) persists across every epoch. The solver speaks
//    only the Transport + MutableTopology contracts (net/transport.hpp):
//    the same solver runs over the synchronous bus, the asynchronous
//    lossy wire and the sharded wire (net/live_transport.hpp), and every
//    epoch is bit-identical across them. Each arrival's live instance
//    count is threaded into the transport as its placement weight
//    (MutableTopology::setDemandWeight) so shard load means instances
//    hosted, not demands hosted.
//  * Departures are *purged exactly*: every surviving dual is the dual
//    of a raise owned by a still-active demand. A departed demand's
//    alpha/beta increments are subtracted and its instances leave the
//    persistent phase-1 stack; tuple sets the purge empties are dropped
//    eagerly (with the dead raise records), so the stack never
//    accumulates fully-purged sets between full re-solves. The demand's
//    universe slab is then garbage-collected (retireDemand) with the
//    same exactness discipline — every symmetric reference removed,
//    checked. Locality makes the purge safe: a purged beta lives on a
//    critical edge of the departed demand, so only demands sharing one
//    of its networks — the affected region by definition — can see
//    their LHS move.
//  * The distributed protocol then re-runs ONLY over the affected
//    region (active demands whose accessible networks intersect the
//    changed networks), warm-started from the surviving LHS
//    (dist/protocol.hpp runDistributedWarmStart over the dynamic
//    universe — no pool-sized layering is materialized). Unaffected
//    instances keep their lambda-satisfaction from earlier epochs, so
//    the slackness invariant holds over the whole active set after
//    every epoch.
//  * Phase 2 re-pops the persistent stack (old surviving sets + the
//    epoch's new sets) with the centralized feasibility oracle — the
//    admission step. Because every surviving raise's instance is popped
//    and every active instance is lambda-satisfied, the paper's
//    approximation argument goes through unchanged: epoch profit >=
//    val(alpha, beta) / bound >= lambda * OPT(active) / bound.
//
// SLA accounting: the solver tracks, per demand, the number of epochs
// from arrival to first admission (admissionSla()); a demand departing
// unadmitted is counted separately, and a re-arrival restarts its clock.
//
// Equivalence gates: when the affected region is the whole active set
// the solver drops the warm state and the epoch is bit-identical to
// runTwoPhaseRestricted on the surviving demand set (tests/online_test);
// for any fixed trace the per-epoch outcomes over the async lossy
// and sharded transports are bit-identical to the synchronous bus
// (tests/online_transport_test); and the dynamic universe the epochs
// run over is bit-identical to the from-scratch build restricted to the
// live set (tests/dynamic_universe_test).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/dynamic_universe.hpp"
#include "core/solution.hpp"
#include "dist/protocol.hpp"
#include "framework/dual_state.hpp"
#include "framework/raise_policy.hpp"
#include "net/transport.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"

namespace treesched {

class EpochSeries;

struct OnlineSolverConfig {
  double epsilon = 0.3;
  RaiseRule rule = RaiseRule::Unit;
  double hmin = 1.0;
  std::uint64_t seed = 1;
  std::int32_t misRoundBudget = 4;
  /// Fixed-schedule steps per stage (> 0: the online path always runs
  /// the fixed global schedule so epochs are comparable and the
  /// full-region gate can be bit-identical).
  std::int32_t stepsPerStage = 2;
  std::int32_t threads = 1;
  /// Telemetry plane (src/obs/): passed through to every epoch's
  /// protocol run and used for the solver's own online.* and universe.*
  /// instruments and epoch/mutate/admit spans. Strictly read-only
  /// observation — attaching either never changes an epoch's outcome.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Decision provenance ledger (obs/ledger.hpp). When set AND enabled
  /// the solver records the full per-demand lifecycle — arrival,
  /// placement/migration (via Transport::attachLedger), every surviving
  /// dual raise (replayed from the epoch's raise log), admission (first
  /// only, with latency) and rejection (with the blocking dual
  /// certificate finalized against the epoch's measured lambda), and
  /// departure. Same read-only + disabled-path-allocation-free contract
  /// as the tracer (tests/provenance_test.cpp gates both). Note the
  /// ledger is NOT forwarded into the per-epoch protocol run: phase-2
  /// verdicts there are provisional online — the persistent-stack
  /// re-pop below is the authoritative admission.
  LedgerSink* ledger = nullptr;
  /// Per-epoch time-series sink (obs/timeseries.hpp): when set, the
  /// solver snapshots `metrics` into one JSONL row at the end of every
  /// applyEpoch call. Read-only.
  EpochSeries* series = nullptr;
  /// Epoch-boundary hot-shard rebalancing (net/transport.hpp). When
  /// enabled, every epoch starts with a MutableTopology::rebalanceShards
  /// call (seed re-keyed per epoch); transports without a live sharded
  /// placement no-op. Placement is wire accounting — enabling this never
  /// changes any epoch's schedule (tests/rebalance_test.cpp gates it).
  ShardRebalanceConfig rebalance;
};

/// Everything one epoch reports. `solution` is the admitted set over the
/// current active demands (acceptance order).
struct EpochOutcome {
  std::int32_t epoch = 0;
  std::uint64_t protocolSeed = 0;  ///< seed of this epoch's protocol run
  std::int32_t arrivals = 0;
  std::int32_t departures = 0;
  std::int32_t activeDemands = 0;
  std::int64_t activeInstances = 0;
  std::int32_t affectedDemands = 0;
  std::int64_t affectedInstances = 0;
  /// |affected instances| / |active instances| — the work the epoch
  /// re-solved relative to a from-scratch run (1 on a full re-solve,
  /// 0 on a no-churn epoch).
  double resolveFraction = 0;
  /// True when the affected region covered every active demand: the warm
  /// state was dropped and the epoch equals the from-scratch solve bit
  /// for bit.
  bool fullResolve = false;
  Solution solution;  ///< acceptance order (phase-2 pop order)
  double profit = 0;
  double dualObjective = 0;
  double dualUpperBound = 0;
  double lambdaMeasured = 0;
  std::int64_t raises = 0;
  std::int64_t rounds = 0;    ///< protocol rounds spent by this epoch
  std::int64_t messages = 0;  ///< messages delivered during this epoch
  /// Active demands first admitted by this epoch (their SLA clocks
  /// stop here).
  std::int32_t newlyAdmittedDemands = 0;
  // ---- Hot-shard rebalancing + engine scaling accounting ----
  // Per-processor live-load variance around this epoch's rebalance step
  // (both zero when rebalancing is disabled or the transport has no live
  // sharded placement), plus the parallel engine's shard-claim tallies.
  // All four are performance accounting only — equivalence gates compare
  // the schedule fields above, never these.
  double loadVarianceBefore = 0;
  double loadVarianceAfter = 0;
  std::int32_t demandsMigrated = 0;
  std::int64_t engineClaims = 0;  ///< shards executed (owned + stolen)
  std::int64_t engineSteals = 0;  ///< shards stolen from another worker
};

/// Per-epoch protocol seed — the one derivation every online engine
/// shares (the incremental solver and the policy registry's scheduler
/// epoch loop, policy/online_policy.hpp), so their epoch runs are
/// seed-comparable for a given solver seed.
std::uint64_t epochProtocolSeed(std::uint64_t solverSeed, std::int32_t epoch);

/// Aggregate per-demand admission-latency statistics (epochs from
/// arrival to first admission). Re-arrivals restart the clock and count
/// as fresh admissions. Scope: demands the solver actually saw — a
/// demand whose arrival and departure were netted away inside one epoch
/// window (online/churn_engine.hpp batchTrace) never reaches the solver
/// and appears in neither counter.
struct AdmissionSla {
  std::int64_t admittedDemands = 0;     ///< admission events observed
  std::int64_t departedUnadmitted = 0;  ///< departures never admitted
  double meanLatencyEpochs = 0;         ///< mean over admission events
  std::int64_t maxLatencyEpochs = 0;
  /// Nearest-rank latency percentiles over the admission events, from
  /// the solver's unit-bucket histogram — exact for latencies below the
  /// bucket ceiling (values at the ceiling saturate to the observed
  /// max). Zero while no admission has happened.
  double p50LatencyEpochs = 0;
  double p99LatencyEpochs = 0;
};

class IncrementalSolver {
 public:
  /// `universe` must start with zero live demands (the solver owns the
  /// live set from here on); `transport` must expose one endpoint per
  /// pool demand, all isolated, and support MutableTopology
  /// (net/live_transport.hpp builds one). The references must outlive
  /// the solver.
  IncrementalSolver(DynamicUniverse& universe,
                    const OnlineSolverConfig& config, Transport& transport);

  /// Admits one epoch batch: `arrivals` must be inactive pool demands,
  /// `departures` active ones (both duplicate-free). Returns the epoch
  /// report; the admitted solution is also retained (solution()).
  EpochOutcome applyEpoch(std::span<const DemandId> arrivals,
                          std::span<const DemandId> departures);

  std::int32_t numEpochs() const { return epoch_; }
  std::int32_t activeDemands() const { return u_.numLiveDemands(); }
  bool isActive(DemandId d) const { return u_.isLive(d); }
  /// Active instances, ascending (rebuilt on demand).
  std::vector<InstanceId> activeInstanceIds() const;
  const Solution& solution() const { return solution_; }
  double profit() const { return profit_; }
  const Transport& transport() const { return bus_; }
  const DynamicUniverse& universe() const { return u_; }
  double lhs(InstanceId i) const {
    return lhs_[static_cast<std::size_t>(i)];
  }

  // ---- Phase-1 stack accounting (compaction regression surface) ----
  /// Tuple sets currently on the persistent stack; fully-purged sets are
  /// dropped eagerly, so this never exceeds the sets with live members.
  std::int64_t stackSets() const {
    return static_cast<std::int64_t>(stack_.size());
  }
  /// Raise records currently stored. Purged records compact away with
  /// their sets (or once they outnumber the live records — amortized),
  /// so at most half the stored records are ever dead.
  std::int64_t storedRaises() const {
    return static_cast<std::int64_t>(raises_.size());
  }

  // ---- SLA accounting ----
  AdmissionSla admissionSla() const;
  /// Epochs from demand `d`'s (latest) arrival to its first admission;
  /// -1 while never admitted since that arrival.
  std::int64_t admissionLatencyEpochs(DemandId d) const {
    const auto admitted = admittedEpoch_[static_cast<std::size_t>(d)];
    if (admitted < 0) return -1;
    return admitted - arrivalEpoch_[static_cast<std::size_t>(d)];
  }

  /// Test audit: max absolute deviation between the persistent LHS of
  /// active instances and a fresh replay of the surviving raise log
  /// (bounds the floating-point residue of departure purges and of the
  /// arrival-time LHS reconstruction from the persistent duals).
  double maxLhsDeviationFromReplay() const;

 private:
  struct RaiseRecord {
    InstanceId instance = kNoInstance;
    RaiseAmounts amounts;
    std::int32_t stackEntry = -1;
    bool live = false;
  };

  static std::uint64_t pairKey(std::int32_t a, std::int32_t b);

  void activate(DemandId d);
  void deactivate(DemandId d);
  void purgeRaisesOf(DemandId d);
  void applyRaiseSigned(const RaiseRecord& record, double sign);
  void resetDualState();
  void compactStack();
  void popPersistentStack();
  void recordAdmissions(EpochOutcome& outcome);
  void ledgerShadowAdmit(InstanceId i);
  void ledgerBufferRejection(InstanceId i, std::int64_t stackSet);
  void publishEpochTelemetry();

  DynamicUniverse& u_;  ///< live universe, mutated by the epoch batches
  OnlineSolverConfig cfg_;

  Transport& bus_;         ///< the live transport, persistent across epochs
  MutableTopology& topo_;  ///< its mutation facet (same object)

  // Incremental communication-graph bookkeeping (the live set itself is
  // the universe's).
  std::vector<std::vector<DemandId>> networkMembers_;  ///< active, sorted
  /// Shared-network count per unordered demand pair with >= 1 common
  /// active network; an edge exists while the count is positive.
  std::unordered_map<std::uint64_t, std::int32_t> sharedNetworks_;

  // Persistent primal-dual state: duals/LHS of the surviving raises, the
  // surviving raise log, and the phase-1 stack across epochs. lhs_ is
  // pool-dense (the WarmStart::priorLhs contract); entries of non-live
  // instances are zeroed at retirement and reconstructed from the duals
  // at (re-)arrival.
  DualState dual_;
  std::vector<double> lhs_;
  std::vector<RaiseRecord> raises_;
  std::vector<std::vector<std::int32_t>> raisesOfDemand_;
  std::vector<std::vector<InstanceId>> stack_;
  std::int64_t deadRaises_ = 0;  ///< purged records awaiting compaction

  Solution solution_;
  double profit_ = 0;
  double lambdaMeasured_ = 1.0;
  double dualObjective_ = 0;
  std::int32_t epoch_ = 0;

  // SLA clocks: per demand, epoch of the latest arrival and of the first
  // admission since (-1 while unadmitted), plus the running aggregates.
  std::vector<std::int64_t> arrivalEpoch_;
  std::vector<std::int64_t> admittedEpoch_;
  std::int64_t admittedCount_ = 0;
  std::int64_t departedUnadmitted_ = 0;
  std::int64_t latencySumEpochs_ = 0;
  std::int64_t latencyMaxEpochs_ = 0;
  /// Unit-bucket admission-latency histogram backing the SLA
  /// percentiles (always maintained; integer latencies make the
  /// nearest-rank percentile exact below the bucket ceiling).
  Histogram latencyHist_;

  // Registry instruments (null when cfg_.metrics is unset).
  Counter* epochsCtr_ = nullptr;
  Counter* arrivalsCtr_ = nullptr;
  Counter* departuresCtr_ = nullptr;
  Counter* admittedCtr_ = nullptr;
  Gauge* activeGauge_ = nullptr;
  Histogram* latencyRegHist_ = nullptr;
  // Universe cost instruments (dynamic-universe maintenance telemetry).
  Gauge* instancesLiveGauge_ = nullptr;
  Counter* extendUsCtr_ = nullptr;
  Counter* gcUsCtr_ = nullptr;
  Counter* gcDemandsCtr_ = nullptr;
  Counter* gcInstancesCtr_ = nullptr;
  /// Universe stats at the last publish — the per-epoch deltas feed the
  /// cumulative universe.* counters.
  UniverseStats prevStats_;

  // Scratch (reused per epoch).
  std::vector<std::int32_t> changedNetworks_;
  std::vector<DemandId> affected_;
  std::vector<InstanceId> restricted_;
  std::vector<std::int32_t> newNeighbors_;

  // Decision provenance (enabled ledger only; all empty otherwise).
  // The admission re-pop mirrors the feasibility oracle into this
  // shadow state so a rejection can name its blocker; rejection events
  // buffer until the epoch's lambda is measured (the certificate
  // threshold is lambda * profit of the blocker).
  bool ledgerOn_ = false;
  std::vector<InstanceId> acceptedOfDemand_;
  std::vector<InstanceId> firstLoaderOfEdge_;
  std::vector<double> ledgerEdgeLoad_;
  std::vector<LedgerEvent> rejectionBuffer_;
};

}  // namespace treesched
