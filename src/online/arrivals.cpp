#include "online/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "net/latency.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {

namespace {

// Salts separating the independent hash draws of one demand.
constexpr std::uint64_t kSaltArrival = 0x10;
constexpr std::uint64_t kSaltBurstMember = 0x11;
constexpr std::uint64_t kSaltLifetime = 0x12;
constexpr std::uint64_t kSaltDiurnalTime = 0x13;
constexpr std::uint64_t kSaltDiurnalAccept = 0x14;

// Rejection-sampling attempts for the diurnal wave. The acceptance rate
// is >= (1 - waveDepth) / 2 per attempt at the deepest trough; 64
// attempts make a miss astronomically unlikely, and the deterministic
// fallback (the last attempted time) keeps the trace total anyway.
constexpr std::int32_t kDiurnalAttempts = 64;

constexpr double kTwoPi = 6.283185307179586476925286766559;

double draw(const ArrivalConfig& config, DemandId d, std::uint64_t salt) {
  return unitInterval(keyedHash(config.seed, static_cast<std::uint64_t>(d),
                                salt));
}

double arrivalTime(const ArrivalConfig& config, DemandId d) {
  switch (config.model) {
    case ArrivalModel::Poisson:
      return config.horizon * draw(config, d, kSaltArrival);
    case ArrivalModel::FlashCrowd: {
      if (draw(config, d, kSaltBurstMember) < config.burstFraction) {
        const double begin =
            config.horizon *
            (config.burstCenter - 0.5 * config.burstWidth);
        const double t = begin + config.horizon * config.burstWidth *
                                     draw(config, d, kSaltArrival);
        return std::clamp(t, 0.0, config.horizon);
      }
      return config.horizon * draw(config, d, kSaltArrival);
    }
    case ArrivalModel::Diurnal: {
      // Intensity(t) = 1 + waveDepth * sin(2 pi waves t / horizon),
      // sampled by hash-keyed rejection: attempt a is accepted with
      // probability intensity / (1 + waveDepth).
      double t = 0;
      for (std::int32_t a = 0; a < kDiurnalAttempts; ++a) {
        const auto salt = static_cast<std::uint64_t>(a);
        t = config.horizon *
            unitInterval(keyedHash(config.seed,
                                   static_cast<std::uint64_t>(d),
                                   kSaltDiurnalTime, salt));
        const double intensity =
            1.0 + config.waveDepth *
                      std::sin(kTwoPi * config.waves * t / config.horizon);
        const double accept =
            unitInterval(keyedHash(config.seed,
                                   static_cast<std::uint64_t>(d),
                                   kSaltDiurnalAccept, salt));
        if (accept * (1.0 + config.waveDepth) < intensity) {
          return t;
        }
      }
      return t;
    }
  }
  throw CheckError("unknown ArrivalModel");
}

double lifetime(const ArrivalConfig& config, DemandId d) {
  // Inverse-CDF exponential; the draw is < 1, so the log argument is
  // strictly positive.
  const double u = draw(config, d, kSaltLifetime);
  return -config.meanLifetime * std::log1p(-u);
}

}  // namespace

void validateArrivalConfig(const ArrivalConfig& config) {
  checkThat(config.horizon > 0, "arrival horizon positive", __FILE__,
            __LINE__);
  checkThat(config.meanLifetime > 0, "mean lifetime positive", __FILE__,
            __LINE__);
  checkThat(config.burstFraction >= 0 && config.burstFraction <= 1,
            "burst fraction in [0, 1]", __FILE__, __LINE__);
  checkThat(config.burstWidth > 0 && config.burstWidth <= 1,
            "burst width in (0, 1]", __FILE__, __LINE__);
  checkThat(config.burstCenter >= 0 && config.burstCenter <= 1,
            "burst center in [0, 1]", __FILE__, __LINE__);
  checkThat(config.waves > 0, "diurnal waves positive", __FILE__, __LINE__);
  checkThat(config.waveDepth >= 0 && config.waveDepth < 1,
            "wave depth in [0, 1)", __FILE__, __LINE__);
}

ChurnTrace generateChurnTrace(const ArrivalConfig& config,
                              std::int32_t numDemands) {
  validateArrivalConfig(config);
  checkThat(numDemands >= 0, "demand count non-negative", __FILE__, __LINE__);

  ChurnTrace trace;
  trace.horizon = config.horizon;
  trace.events.reserve(static_cast<std::size_t>(numDemands) * 2);
  for (DemandId d = 0; d < numDemands; ++d) {
    const double arrive = arrivalTime(config, d);
    trace.events.push_back({arrive, d, true});
    const double depart = arrive + lifetime(config, d);
    if (depart < config.horizon) {
      trace.events.push_back({depart, d, false});
    }
  }
  // Total deterministic order; a demand's arrival sorts before its
  // departure even in the (measure-zero) case of a zero lifetime draw.
  std::sort(trace.events.begin(), trace.events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return std::tuple(a.time, a.demand, !a.arrival) <
                     std::tuple(b.time, b.demand, !b.arrival);
            });
  return trace;
}

const char* arrivalModelName(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::Poisson:
      return "poisson";
    case ArrivalModel::FlashCrowd:
      return "flash_crowd";
    case ArrivalModel::Diurnal:
      return "diurnal";
  }
  return "unknown";
}

}  // namespace treesched
