#include "online/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "net/latency.hpp"
#include "net/shard.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {

namespace {

// Salts separating the independent hash draws of one demand.
constexpr std::uint64_t kSaltArrival = 0x10;
constexpr std::uint64_t kSaltBurstMember = 0x11;
constexpr std::uint64_t kSaltLifetime = 0x12;
constexpr std::uint64_t kSaltDiurnalTime = 0x13;
constexpr std::uint64_t kSaltDiurnalAccept = 0x14;
// TargetedBurst: target-network picks (per network), the one shared
// correlated-lifetime draw (per trace) and its per-demand jitter.
constexpr std::uint64_t kSaltTargetPick = 0x15;
constexpr std::uint64_t kSaltSharedLifetime = 0x16;
constexpr std::uint64_t kSaltLifetimeJitter = 0x17;

// Rejection-sampling attempts for the diurnal wave. The acceptance rate
// is >= (1 - waveDepth) / 2 per attempt at the deepest trough; 64
// attempts make a miss astronomically unlikely, and the deterministic
// fallback (the last attempted time) keeps the trace total anyway.
constexpr std::int32_t kDiurnalAttempts = 64;

constexpr double kTwoPi = 6.283185307179586476925286766559;

double draw(const ArrivalConfig& config, DemandId d, std::uint64_t salt) {
  return unitInterval(keyedHash(config.seed, static_cast<std::uint64_t>(d),
                                salt));
}

/// Burst-window arrival shared by FlashCrowd members and TargetedBurst
/// victims: uniform over [center - width/2, center + width/2] * horizon.
double burstArrival(const ArrivalConfig& config, DemandId d) {
  const double begin =
      config.horizon * (config.burstCenter - 0.5 * config.burstWidth);
  const double t = begin + config.horizon * config.burstWidth *
                               draw(config, d, kSaltArrival);
  return std::clamp(t, 0.0, config.horizon);
}

double arrivalTime(const ArrivalConfig& config, DemandId d) {
  switch (config.model) {
    case ArrivalModel::Poisson:
    case ArrivalModel::TargetedBurst:  // non-members; members use
                                       // burstArrival directly
      return config.horizon * draw(config, d, kSaltArrival);
    case ArrivalModel::FlashCrowd: {
      if (draw(config, d, kSaltBurstMember) < config.burstFraction) {
        return burstArrival(config, d);
      }
      return config.horizon * draw(config, d, kSaltArrival);
    }
    case ArrivalModel::Diurnal: {
      // Intensity(t) = 1 + waveDepth * sin(2 pi waves t / horizon),
      // sampled by hash-keyed rejection: attempt a is accepted with
      // probability intensity / (1 + waveDepth).
      double t = 0;
      for (std::int32_t a = 0; a < kDiurnalAttempts; ++a) {
        const auto salt = static_cast<std::uint64_t>(a);
        t = config.horizon *
            unitInterval(keyedHash(config.seed,
                                   static_cast<std::uint64_t>(d),
                                   kSaltDiurnalTime, salt));
        const double intensity =
            1.0 + config.waveDepth *
                      std::sin(kTwoPi * config.waves * t / config.horizon);
        const double accept =
            unitInterval(keyedHash(config.seed,
                                   static_cast<std::uint64_t>(d),
                                   kSaltDiurnalAccept, salt));
        if (accept * (1.0 + config.waveDepth) < intensity) {
          return t;
        }
      }
      return t;
    }
  }
  throw CheckError("unknown ArrivalModel");
}

double lifetime(const ArrivalConfig& config, DemandId d) {
  // Inverse-CDF exponential; the draw is < 1, so the log argument is
  // strictly positive.
  const double u = draw(config, d, kSaltLifetime);
  return -config.meanLifetime * std::log1p(-u);
}

ChurnTrace generateTrace(
    const ArrivalConfig& config, std::int32_t numDemands,
    const std::vector<std::vector<std::int32_t>>* access) {
  validateArrivalConfig(config);
  checkThat(numDemands >= 0, "demand count non-negative", __FILE__, __LINE__);
  const bool targeted = config.model == ArrivalModel::TargetedBurst;
  checkThat(!targeted || access != nullptr,
            "targeted_burst needs the pool's access lists", __FILE__,
            __LINE__);

  // TargetedBurst state: the attacked networks and the one shared
  // correlated-lifetime draw all burst members depart on.
  std::vector<std::int32_t> targets;
  double sharedLifetime = 0;
  if (targeted) {
    targets = targetedNetworks(config, *access);
    const double u = unitInterval(
        keyedHash(config.seed, 0, kSaltSharedLifetime));
    sharedLifetime =
        -config.meanLifetime * config.correlatedLifetime * std::log1p(-u);
  }
  const auto isTargetedMember = [&](DemandId d) {
    const std::int32_t home =
        homeNetworkOf((*access)[static_cast<std::size_t>(d)]);
    return home >= 0 &&
           std::binary_search(targets.begin(), targets.end(), home) &&
           draw(config, d, kSaltBurstMember) < config.targetFraction;
  };

  ChurnTrace trace;
  trace.horizon = config.horizon;
  trace.events.reserve(static_cast<std::size_t>(numDemands) * 2);
  for (DemandId d = 0; d < numDemands; ++d) {
    double arrive = 0;
    double life = 0;
    if (targeted && isTargetedMember(d)) {
      arrive = burstArrival(config, d);
      // ±10% per-demand jitter around the shared draw: the mass
      // departure lands in one narrow window.
      life = sharedLifetime *
             (0.9 + 0.2 * draw(config, d, kSaltLifetimeJitter));
    } else {
      arrive = arrivalTime(config, d);
      life = lifetime(config, d);
    }
    trace.events.push_back({arrive, d, true});
    const double depart = arrive + life;
    if (depart < config.horizon) {
      trace.events.push_back({depart, d, false});
    }
  }
  // Total deterministic order; a demand's arrival sorts before its
  // departure even in the (measure-zero) case of a zero lifetime draw.
  std::sort(trace.events.begin(), trace.events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return std::tuple(a.time, a.demand, !a.arrival) <
                     std::tuple(b.time, b.demand, !b.arrival);
            });
  return trace;
}

}  // namespace

void validateArrivalConfig(const ArrivalConfig& config) {
  checkThat(config.horizon > 0, "arrival horizon positive", __FILE__,
            __LINE__);
  checkThat(config.meanLifetime > 0, "mean lifetime positive", __FILE__,
            __LINE__);
  checkThat(config.burstFraction >= 0 && config.burstFraction <= 1,
            "burst fraction in [0, 1]", __FILE__, __LINE__);
  checkThat(config.burstWidth > 0 && config.burstWidth <= 1,
            "burst width in (0, 1]", __FILE__, __LINE__);
  checkThat(config.burstCenter >= 0 && config.burstCenter <= 1,
            "burst center in [0, 1]", __FILE__, __LINE__);
  checkThat(config.waves > 0, "diurnal waves positive", __FILE__, __LINE__);
  checkThat(config.waveDepth >= 0 && config.waveDepth < 1,
            "wave depth in [0, 1)", __FILE__, __LINE__);
  checkThat(config.targetNetworkCount > 0, "target network count positive",
            __FILE__, __LINE__);
  checkThat(config.targetFraction >= 0 && config.targetFraction <= 1,
            "target fraction in [0, 1]", __FILE__, __LINE__);
  checkThat(config.correlatedLifetime > 0 && config.correlatedLifetime <= 1,
            "correlated lifetime in (0, 1]", __FILE__, __LINE__);
}

ChurnTrace generateChurnTrace(const ArrivalConfig& config,
                              std::int32_t numDemands) {
  return generateTrace(config, numDemands, nullptr);
}

ChurnTrace generateChurnTrace(
    const ArrivalConfig& config,
    const std::vector<std::vector<std::int32_t>>& access) {
  return generateTrace(config, static_cast<std::int32_t>(access.size()),
                       &access);
}

std::vector<std::int32_t> targetedNetworks(const ArrivalConfig& config,
                                           std::int32_t numNetworks) {
  checkThat(config.targetNetworkCount > 0, "target network count positive",
            __FILE__, __LINE__);
  // Rank networks by their pick hash (computed once each) and take the
  // smallest k — a deterministic, seed-keyed sample without replacement.
  std::vector<std::pair<std::uint64_t, std::int32_t>> ranked;
  ranked.reserve(static_cast<std::size_t>(std::max(0, numNetworks)));
  for (std::int32_t t = 0; t < numNetworks; ++t) {
    ranked.emplace_back(
        keyedHash(config.seed, static_cast<std::uint64_t>(t),
                  kSaltTargetPick),
        t);
  }
  const auto count = static_cast<std::size_t>(std::max(
      0, std::min(config.targetNetworkCount, numNetworks)));
  std::nth_element(ranked.begin(),
                   ranked.begin() + static_cast<std::ptrdiff_t>(count),
                   ranked.end());
  std::vector<std::int32_t> targets;
  targets.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    targets.push_back(ranked[r].second);
  }
  std::sort(targets.begin(), targets.end());
  return targets;
}

std::vector<std::int32_t> targetedNetworks(
    const ArrivalConfig& config,
    const std::vector<std::vector<std::int32_t>>& access) {
  std::int32_t numNetworks = 0;
  for (const auto& nets : access) {
    for (const std::int32_t t : nets) {
      numNetworks = std::max(numNetworks, t + 1);
    }
  }
  return targetedNetworks(config, numNetworks);
}

const char* arrivalModelName(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::Poisson:
      return "poisson";
    case ArrivalModel::FlashCrowd:
      return "flash_crowd";
    case ArrivalModel::Diurnal:
      return "diurnal";
    case ArrivalModel::TargetedBurst:
      return "targeted_burst";
  }
  return "unknown";
}

}  // namespace treesched
