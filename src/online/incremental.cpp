#include "online/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/tolerances.hpp"
#include "framework/lhs_tracker.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {

namespace {

// Salt separating the per-epoch protocol seeds from every other keyed
// stream in the library.
constexpr std::uint64_t kEpochSeedSalt = 0x0e90c4;

// Salt for the per-epoch rebalance tie-break seeds (distinct stream
// from the protocol seeds above).
constexpr std::uint64_t kRebalanceSeedSalt = 0x5eba1a;

// Unit buckets for the admission-latency histograms: latencies are
// whole epoch counts, so nearest-rank percentiles are exact until a
// latency reaches the ceiling (where the overflow bucket reports the
// observed max).
std::span<const double> latencyBuckets() {
  static const std::vector<double> buckets = Histogram::unitBuckets(128);
  return buckets;
}

}  // namespace

std::uint64_t epochProtocolSeed(std::uint64_t solverSeed, std::int32_t epoch) {
  return keyedHash(solverSeed, kEpochSeedSalt,
                   static_cast<std::uint64_t>(epoch));
}

IncrementalSolver::IncrementalSolver(DynamicUniverse& universe,
                                     const OnlineSolverConfig& config,
                                     Transport& transport)
    : u_(universe),
      cfg_(config),
      bus_(transport),
      topo_(requireMutableTopology(transport)),
      networkMembers_(static_cast<std::size_t>(universe.numNetworks())),
      dual_(universe),
      lhs_(static_cast<std::size_t>(universe.numInstances()), 0.0),
      raisesOfDemand_(static_cast<std::size_t>(universe.numDemands())),
      arrivalEpoch_(static_cast<std::size_t>(universe.numDemands()), -1),
      admittedEpoch_(static_cast<std::size_t>(universe.numDemands()), -1),
      latencyHist_(latencyBuckets()) {
  if (cfg_.metrics != nullptr) {
    epochsCtr_ = &cfg_.metrics->counter("online.epochs");
    arrivalsCtr_ = &cfg_.metrics->counter("online.arrivals");
    departuresCtr_ = &cfg_.metrics->counter("online.departures");
    admittedCtr_ = &cfg_.metrics->counter("online.admitted_demands");
    activeGauge_ = &cfg_.metrics->gauge("online.active_demands");
    latencyRegHist_ = &cfg_.metrics->histogram(
        "online.admission_latency_epochs", latencyBuckets());
    instancesLiveGauge_ = &cfg_.metrics->gauge("universe.instances_live");
    extendUsCtr_ = &cfg_.metrics->counter("universe.extend_us");
    gcUsCtr_ = &cfg_.metrics->counter("universe.gc_us");
    gcDemandsCtr_ = &cfg_.metrics->counter("universe.gc_demands");
    gcInstancesCtr_ = &cfg_.metrics->counter("universe.gc_instances");
  }
  prevStats_ = u_.stats();
  // Decision provenance: with an ENABLED ledger the solver mirrors the
  // admission oracle into shadow certificate state and hands the sink
  // to the transport (placement/migration events). All of it is guarded
  // so a null or disabled ledger leaves the epoch loop on the exact
  // seed path (the zero-allocation gate in tests/provenance_test.cpp).
  ledgerOn_ = cfg_.ledger != nullptr && cfg_.ledger->enabled();
  if (ledgerOn_) {
    bus_.attachLedger(cfg_.ledger);
  }
  checkThat(u_.numDemands() > 0, "online solver needs a demand pool",
            __FILE__, __LINE__);
  checkThat(u_.numLiveDemands() == 0,
            "the dynamic universe starts empty (the solver owns the live set)",
            __FILE__, __LINE__);
  checkThat(cfg_.stepsPerStage > 0,
            "online epochs run the fixed schedule (stepsPerStage > 0)",
            __FILE__, __LINE__);
  checkThat(bus_.numProcessors() == u_.numDemands(),
            "transport exposes one endpoint per pool demand", __FILE__,
            __LINE__);
  for (DemandId d = 0; d < u_.numDemands(); ++d) {
    checkThat(topo_.currentNeighbors(d).empty(),
              "pool demands start isolated on the live transport", __FILE__,
              __LINE__);
  }
}

std::uint64_t IncrementalSolver::pairKey(std::int32_t a, std::int32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
}

void IncrementalSolver::activate(DemandId d) {
  checkThat(!u_.isLive(d), "arrival of an inactive demand", __FILE__,
            __LINE__);
  u_.addDemand(d);
  // Warm-start the new instances' dual-constraint LHS from the
  // persistent duals: alpha(d) (zero unless a purge left residue) plus
  // the surviving beta along each instance's path. The static pool path
  // would have accumulated the same sum raise by raise, so the two
  // differ only in floating-point association order — the replay audit
  // (maxLhsDeviationFromReplay) bounds the residue.
  const auto newInstances = u_.instancesOfDemand(d);
  for (const InstanceId i : newInstances) {
    lhs_[static_cast<std::size_t>(i)] = dualLhs(cfg_.rule, u_, dual_, i);
  }
  // A (re-)arrival restarts the demand's SLA clock.
  arrivalEpoch_[static_cast<std::size_t>(d)] = epoch_;
  admittedEpoch_[static_cast<std::size_t>(d)] = -1;

  // Thread the live instance count into the transport's shard-load
  // accounting before placement, so the least-loaded choice below
  // already sees the weight. Wire accounting only; a demand with an
  // empty instance set still costs its endpoint.
  topo_.setDemandWeight(
      d, std::max<std::int64_t>(
             1, static_cast<std::int64_t>(newInstances.size())));

  // New communication edges: one per active demand first found sharing a
  // network with d; further shared networks only bump the edge's count.
  newNeighbors_.clear();
  for (const std::int32_t t : u_.access()[static_cast<std::size_t>(d)]) {
    auto& members = networkMembers_[static_cast<std::size_t>(t)];
    for (const DemandId m : members) {
      if (++sharedNetworks_[pairKey(d, m)] == 1) {
        newNeighbors_.push_back(m);
      }
    }
    members.insert(std::lower_bound(members.begin(), members.end(), d), d);
  }
  std::sort(newNeighbors_.begin(), newNeighbors_.end());
  topo_.connectDemand(d, newNeighbors_);
}

void IncrementalSolver::deactivate(DemandId d) {
  checkThat(u_.isLive(d), "departure of an active demand", __FILE__,
            __LINE__);
  if (admittedEpoch_[static_cast<std::size_t>(d)] < 0) {
    ++departedUnadmitted_;
  }

  for (const std::int32_t t : u_.access()[static_cast<std::size_t>(d)]) {
    auto& members = networkMembers_[static_cast<std::size_t>(t)];
    const auto pos = std::lower_bound(members.begin(), members.end(), d);
    checkThat(pos != members.end() && *pos == d, "departing demand listed",
              __FILE__, __LINE__);
    members.erase(pos);
  }
  for (const std::int32_t m : topo_.currentNeighbors(d)) {
    sharedNetworks_.erase(pairKey(d, m));
  }
  topo_.disconnectDemand(d);

  // Zero the departing instances' pool-dense LHS entries (they still
  // hold other demands' beta contributions on shared edges) and
  // garbage-collect the demand's universe slab. A re-arrival
  // reconstructs the LHS from the duals in activate().
  for (const InstanceId i : u_.instancesOfDemand(d)) {
    lhs_[static_cast<std::size_t>(i)] = 0.0;
  }
  u_.retireDemand(d);
}

void IncrementalSolver::applyRaiseSigned(const RaiseRecord& record,
                                         double sign) {
  const InstanceRecord& rec = u_.instance(record.instance);
  const double alphaInc = sign * record.amounts.alphaIncrement;
  const double betaInc = sign * record.amounts.betaIncrement;
  // Alpha first, then the critical edges — the exact accumulation order
  // of the centralized LhsTracker (whose shared helpers define the
  // update rule), so a post-reset replay reproduces the from-scratch
  // LHS (and hence lambda) bit for bit.
  dual_.raiseAlpha(rec.demand, alphaInc);
  applyAlphaToLhs(u_, rec.demand, alphaInc, lhs_);
  for (const GlobalEdgeId e : u_.critical(record.instance)) {
    dual_.raiseBeta(e, betaInc);
    applyBetaToLhs(u_, cfg_.rule, e, betaInc, lhs_);
  }
}

void IncrementalSolver::purgeRaisesOf(DemandId d) {
  for (const std::int32_t idx : raisesOfDemand_[static_cast<std::size_t>(d)]) {
    RaiseRecord& record = raises_[static_cast<std::size_t>(idx)];
    if (!record.live) continue;
    record.live = false;
    ++deadRaises_;
    applyRaiseSigned(record, -1.0);
    auto& set = stack_[static_cast<std::size_t>(record.stackEntry)];
    const auto pos =
        std::lower_bound(set.begin(), set.end(), record.instance);
    checkThat(pos != set.end() && *pos == record.instance,
              "purged raise present in its stack set", __FILE__, __LINE__);
    set.erase(pos);
  }
  raisesOfDemand_[static_cast<std::size_t>(d)].clear();
}

void IncrementalSolver::resetDualState() {
  dual_ = DualState(u_);
  std::fill(lhs_.begin(), lhs_.end(), 0.0);
  raises_.clear();
  for (auto& list : raisesOfDemand_) {
    list.clear();
  }
  stack_.clear();
  deadRaises_ = 0;
}

void IncrementalSolver::compactStack() {
  // Drop fully-purged tuple sets eagerly (they would otherwise linger
  // until the next full re-solve) and compact the dead raise records out
  // with them, remapping the survivors' set indices in one pass. The
  // pass costs O(live raises), so dead records alone only trigger it
  // once they outnumber the live ones (amortized O(1) per purge, the
  // net/shard.cpp tombstone discipline); an emptied set triggers it
  // immediately — that is the eager-drop guarantee.
  std::vector<std::int32_t> setRemap(stack_.size(), -1);
  std::size_t keptSets = 0;
  for (std::size_t s = 0; s < stack_.size(); ++s) {
    if (stack_[s].empty()) continue;
    setRemap[s] = static_cast<std::int32_t>(keptSets);
    if (keptSets != s) {
      stack_[keptSets] = std::move(stack_[s]);
    }
    ++keptSets;
  }
  if (keptSets == stack_.size() &&
      deadRaises_ * 2 <= static_cast<std::int64_t>(raises_.size())) {
    return;
  }
  stack_.resize(keptSets);

  std::vector<std::int32_t> raiseRemap(raises_.size(), -1);
  std::size_t keptRaises = 0;
  for (std::size_t r = 0; r < raises_.size(); ++r) {
    if (!raises_[r].live) continue;
    RaiseRecord record = raises_[r];
    record.stackEntry = setRemap[static_cast<std::size_t>(record.stackEntry)];
    checkThat(record.stackEntry >= 0, "live raise keeps its stack set",
              __FILE__, __LINE__);
    raiseRemap[r] = static_cast<std::int32_t>(keptRaises);
    raises_[keptRaises] = record;
    ++keptRaises;
  }
  raises_.resize(keptRaises);
  deadRaises_ = 0;
  for (auto& list : raisesOfDemand_) {
    for (std::int32_t& idx : list) {
      idx = raiseRemap[static_cast<std::size_t>(idx)];
    }
  }
}

void IncrementalSolver::popPersistentStack() {
  // Exactly runTwoPhase's phase 2 over the merged persistent stack:
  // newest set first, members ascending, greedy feasibility-oracle
  // admission. Every member is owned by an active demand (departed
  // demands' raises were purged). With the ledger on, a shadow of the
  // oracle's state (admitted instance per demand, first loader and load
  // per edge) names every rejection's blocker; events buffer until the
  // epoch's lambda is measured so the certificate threshold is final.
  BasicFeasibilityOracle<DynamicUniverse> oracle(u_);
  if (ledgerOn_) {
    acceptedOfDemand_.assign(static_cast<std::size_t>(u_.numDemands()),
                             kNoInstance);
    firstLoaderOfEdge_.assign(dual_.numEdges(), kNoInstance);
    ledgerEdgeLoad_.assign(dual_.numEdges(), 0.0);
    rejectionBuffer_.clear();
  }
  for (std::size_t s = stack_.size(); s-- > 0;) {
    for (const InstanceId i : stack_[s]) {
      if (oracle.canAdd(i)) {
        oracle.add(i);
        if (ledgerOn_) ledgerShadowAdmit(i);
      } else if (ledgerOn_) {
        ledgerBufferRejection(i, static_cast<std::int64_t>(s));
      }
    }
  }
  solution_ = oracle.solution();
  profit_ = oracle.profit();
}

void IncrementalSolver::ledgerShadowAdmit(InstanceId i) {
  const InstanceRecord& rec = u_.instance(i);
  acceptedOfDemand_[static_cast<std::size_t>(rec.demand)] = i;
  for (const GlobalEdgeId e : u_.path(i)) {
    if (firstLoaderOfEdge_[static_cast<std::size_t>(e)] == kNoInstance) {
      firstLoaderOfEdge_[static_cast<std::size_t>(e)] = i;
    }
    ledgerEdgeLoad_[static_cast<std::size_t>(e)] += rec.height;
  }
}

void IncrementalSolver::ledgerBufferRejection(InstanceId i,
                                              std::int64_t stackSet) {
  const InstanceRecord& rec = u_.instance(i);
  LedgerEvent ev;
  ev.demand = rec.demand;
  ev.kind = LedgerEventKind::Rejected;
  ev.instance = i;
  ev.tuple = stackSet;
  const InstanceId prior =
      acceptedOfDemand_[static_cast<std::size_t>(rec.demand)];
  if (prior != kNoInstance) {
    // The oracle checks demand-satisfaction before capacity, so this is
    // exactly why canAdd said no.
    ev.reason = RejectReason::DemandSatisfied;
    ev.certInstance = prior;
  } else {
    ev.reason = RejectReason::CapacityExceeded;
    for (const GlobalEdgeId e : u_.path(i)) {
      if (ledgerEdgeLoad_[static_cast<std::size_t>(e)] + rec.height >
          1.0 + kCapacityTolerance) {
        ev.certInstance = firstLoaderOfEdge_[static_cast<std::size_t>(e)];
        break;
      }
    }
  }
  rejectionBuffer_.push_back(ev);
}

void IncrementalSolver::recordAdmissions(EpochOutcome& outcome) {
  for (const InstanceId i : solution_.instances) {
    const DemandId d = u_.instance(i).demand;
    auto& admitted = admittedEpoch_[static_cast<std::size_t>(d)];
    if (admitted >= 0) continue;
    admitted = epoch_;
    const std::int64_t latency =
        epoch_ - arrivalEpoch_[static_cast<std::size_t>(d)];
    ++admittedCount_;
    latencySumEpochs_ += latency;
    latencyMaxEpochs_ = std::max(latencyMaxEpochs_, latency);
    latencyHist_.record(static_cast<double>(latency));
    if (admittedCtr_ != nullptr) {
      admittedCtr_->add(1);
      latencyRegHist_->record(static_cast<double>(latency));
    }
    if (ledgerOn_) {
      LedgerEvent ev;
      ev.demand = d;
      ev.kind = LedgerEventKind::Admitted;
      ev.instance = i;
      ev.latencyEpochs = latency;
      cfg_.ledger->record(ev);
    }
    ++outcome.newlyAdmittedDemands;
  }
}

AdmissionSla IncrementalSolver::admissionSla() const {
  AdmissionSla sla;
  sla.admittedDemands = admittedCount_;
  sla.departedUnadmitted = departedUnadmitted_;
  sla.meanLatencyEpochs =
      admittedCount_ > 0 ? static_cast<double>(latencySumEpochs_) /
                               static_cast<double>(admittedCount_)
                         : 0.0;
  sla.maxLatencyEpochs = latencyMaxEpochs_;
  sla.p50LatencyEpochs = latencyHist_.percentile(0.5);
  sla.p99LatencyEpochs = latencyHist_.percentile(0.99);
  return sla;
}

std::vector<InstanceId> IncrementalSolver::activeInstanceIds() const {
  std::vector<InstanceId> ids;
  ids.reserve(static_cast<std::size_t>(u_.numLiveInstances()));
  for (DemandId d = 0; d < u_.numDemands(); ++d) {
    if (!u_.isLive(d)) continue;
    const auto span = u_.instancesOfDemand(d);
    ids.insert(ids.end(), span.begin(), span.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void IncrementalSolver::publishEpochTelemetry() {
  // The protocol attaches/detaches transport telemetry around each run,
  // so re-attach before recording the per-epoch shard load (idempotent;
  // a transparent lookup after the first epoch). The load time-series
  // must exist whether or not rebalancing is enabled, hence the explicit
  // record here rather than inside rebalanceShards.
  if (cfg_.tracer != nullptr || cfg_.metrics != nullptr) {
    bus_.attachTelemetry(cfg_.tracer, cfg_.metrics);
    bus_.recordPlacementLoad();
  }
  if (cfg_.metrics == nullptr) return;
  const UniverseStats stats = u_.stats();
  instancesLiveGauge_->set(static_cast<double>(u_.numLiveInstances()));
  extendUsCtr_->add(stats.extendUs - prevStats_.extendUs);
  gcUsCtr_->add(stats.gcUs - prevStats_.gcUs);
  gcDemandsCtr_->add(stats.gcDemands - prevStats_.gcDemands);
  gcInstancesCtr_->add(stats.gcInstances - prevStats_.gcInstances);
  prevStats_ = stats;
}

EpochOutcome IncrementalSolver::applyEpoch(
    std::span<const DemandId> arrivals, std::span<const DemandId> departures) {
  EpochOutcome outcome;
  outcome.epoch = epoch_;
  outcome.arrivals = static_cast<std::int32_t>(arrivals.size());
  outcome.departures = static_cast<std::int32_t>(departures.size());
  outcome.protocolSeed = epochProtocolSeed(cfg_.seed, epoch_);

  Tracer* tracer = cfg_.tracer;
  const bool trace = tracer != nullptr && tracer->enabled();
  const std::int64_t epochBegin = trace ? tracer->now() : 0;
  // Epoch stamp first: every event below (including the rebalance
  // block's migrations, emitted by the transport) belongs to this epoch.
  if (ledgerOn_) cfg_.ledger->beginEpoch(epoch_);
  if (epochsCtr_ != nullptr) {
    epochsCtr_->add(1);
    arrivalsCtr_->add(static_cast<std::int64_t>(arrivals.size()));
    departuresCtr_->add(static_cast<std::int64_t>(departures.size()));
  }

  // Epoch boundary = the one moment the transport is between rounds, so
  // hot-shard rebalancing happens here, before any mutation or protocol
  // traffic. Placement is wire accounting only: everything below is
  // bit-identical with or without this block.
  if (cfg_.rebalance.enabled) {
    // The protocol attaches/detaches transport telemetry around each run;
    // the rebalance step sits before the run, so re-attach here or the
    // rebalance span is never traced. Idempotent, and a transparent
    // lookup after the first epoch (no allocation).
    if (cfg_.tracer != nullptr || cfg_.metrics != nullptr) {
      bus_.attachTelemetry(cfg_.tracer, cfg_.metrics);
    }
    ShardRebalanceConfig rb = cfg_.rebalance;
    rb.seed = keyedHash(cfg_.rebalance.seed, kRebalanceSeedSalt,
                        static_cast<std::uint64_t>(epoch_));
    const RebalanceOutcome moved = topo_.rebalanceShards(rb);
    outcome.loadVarianceBefore = moved.loadVarianceBefore;
    outcome.loadVarianceAfter = moved.loadVarianceAfter;
    outcome.demandsMigrated = moved.demandsMoved;
  }

  // Zero-churn epoch: nothing changed, so the previous epoch's
  // admission, duals and slackness carry over verbatim — no stack
  // re-pop, no lambda scan, no protocol run.
  if (arrivals.empty() && departures.empty()) {
    outcome.activeDemands = u_.numLiveDemands();
    outcome.activeInstances = u_.numLiveInstances();
    outcome.solution = solution_;
    outcome.profit = profit_;
    outcome.lambdaMeasured = lambdaMeasured_;
    outcome.dualObjective = dualObjective_;
    outcome.dualUpperBound =
        lambdaMeasured_ > 0 ? dualObjective_ / lambdaMeasured_
                            : std::numeric_limits<double>::infinity();
    if (activeGauge_ != nullptr) {
      activeGauge_->set(static_cast<double>(u_.numLiveDemands()));
    }
    publishEpochTelemetry();
    if (trace) {
      tracer->span("online_epoch", "online", 0, epochBegin,
                   {{"epoch", outcome.epoch}});
    }
    if (cfg_.series != nullptr) cfg_.series->snapshot(outcome.epoch);
    ++epoch_;
    return outcome;
  }

  // Networks whose demand population changes this epoch — the changed
  // set that defines the affected region.
  const auto& access = u_.access();
  changedNetworks_.clear();
  for (const DemandId d : departures) {
    checkIndex(d, u_.numDemands(), "departing demand");
    const auto& nets = access[static_cast<std::size_t>(d)];
    changedNetworks_.insert(changedNetworks_.end(), nets.begin(), nets.end());
  }
  for (const DemandId d : arrivals) {
    checkIndex(d, u_.numDemands(), "arriving demand");
    const auto& nets = access[static_cast<std::size_t>(d)];
    changedNetworks_.insert(changedNetworks_.end(), nets.begin(), nets.end());
  }
  std::sort(changedNetworks_.begin(), changedNetworks_.end());
  changedNetworks_.erase(
      std::unique(changedNetworks_.begin(), changedNetworks_.end()),
      changedNetworks_.end());

  // Departures first (their raises purge exactly, their slabs
  // garbage-collect; fully-purged stack sets compact away eagerly), then
  // arrivals extend the universe and the live communication graph.
  const std::int64_t mutateBegin = trace ? tracer->now() : 0;
  for (const DemandId d : departures) {
    if (ledgerOn_) {
      // Emitted before the purge so the raw-order certificate replay
      // subtracts the demand's raises exactly where the solver does.
      LedgerEvent ev;
      ev.demand = d;
      ev.kind = LedgerEventKind::Departure;
      ev.admitted = admittedEpoch_[static_cast<std::size_t>(d)] >= 0;
      cfg_.ledger->record(ev);
    }
    purgeRaisesOf(d);
    deactivate(d);
  }
  if (!departures.empty()) {
    compactStack();
  }
  for (const DemandId d : arrivals) {
    if (ledgerOn_) {
      LedgerEvent ev;
      ev.demand = d;
      ev.kind = LedgerEventKind::Arrival;
      cfg_.ledger->record(ev);
    }
    activate(d);
  }
  if (trace) {
    tracer->span("mutate", "online", 0, mutateBegin,
                 {{"epoch", outcome.epoch},
                  {"arrivals", outcome.arrivals},
                  {"departures", outcome.departures}});
  }

  // Affected region: active demands on a changed network.
  affected_.clear();
  for (const std::int32_t t : changedNetworks_) {
    const auto& members = networkMembers_[static_cast<std::size_t>(t)];
    affected_.insert(affected_.end(), members.begin(), members.end());
  }
  std::sort(affected_.begin(), affected_.end());
  affected_.erase(std::unique(affected_.begin(), affected_.end()),
                  affected_.end());

  outcome.activeDemands = u_.numLiveDemands();
  outcome.activeInstances = u_.numLiveInstances();
  outcome.affectedDemands = static_cast<std::int32_t>(affected_.size());
  outcome.fullResolve =
      outcome.activeDemands > 0 &&
      static_cast<std::int32_t>(affected_.size()) == outcome.activeDemands;

  if (outcome.fullResolve) {
    // The whole instance is affected: drop the warm state and solve from
    // scratch — this is the epoch the equivalence gate compares bit for
    // bit against runTwoPhaseRestricted on the active set.
    resetDualState();
  }
  restricted_.clear();
  for (const DemandId d : affected_) {
    const auto span = u_.instancesOfDemand(d);
    restricted_.insert(restricted_.end(), span.begin(), span.end());
  }
  std::sort(restricted_.begin(), restricted_.end());
  outcome.affectedInstances = static_cast<std::int64_t>(restricted_.size());
  outcome.resolveFraction =
      outcome.activeInstances > 0
          ? static_cast<double>(restricted_.size()) /
                static_cast<double>(outcome.activeInstances)
          : 0.0;

  if (!restricted_.empty()) {
    DistributedOptions options;
    options.epsilon = cfg_.epsilon;
    options.rule = cfg_.rule;
    options.hmin = cfg_.hmin;
    options.seed = outcome.protocolSeed;
    options.threads = cfg_.threads;
    options.misRoundBudget = cfg_.misRoundBudget;
    options.stepsPerStage = cfg_.stepsPerStage;
    options.recordRaiseLog = true;
    options.tracer = cfg_.tracer;
    options.metrics = cfg_.metrics;

    WarmStart warm;
    warm.activeInstances = restricted_;
    if (!outcome.fullResolve) {
      warm.priorLhs = lhs_;
    }

    const std::int64_t roundsBefore = bus_.stats().rounds;
    const std::int64_t messagesBefore = bus_.stats().messages;
    const DistributedResult run =
        runDistributedWarmStart(u_, bus_, options, warm);
    outcome.raises = run.raises;
    outcome.rounds = bus_.stats().rounds - roundsBefore;
    outcome.messages = bus_.stats().messages - messagesBefore;
    outcome.engineClaims = run.engineClaims;
    outcome.engineSteals = run.engineSteals;

    // Replay the epoch's raises into the persistent duals/LHS and append
    // its stack sets (one per schedule tuple that raised).
    std::int64_t lastTuple = -1;
    for (const DualRaiseRecord& entry : run.raiseLog) {
      if (entry.tuple != lastTuple) {
        stack_.emplace_back();
        lastTuple = entry.tuple;
      }
      RaiseRecord record;
      record.instance = entry.instance;
      record.amounts = {entry.alphaIncrement, entry.betaIncrement};
      record.stackEntry = static_cast<std::int32_t>(stack_.size()) - 1;
      record.live = true;
      stack_.back().push_back(entry.instance);
      raisesOfDemand_[static_cast<std::size_t>(
                          u_.instance(entry.instance).demand)]
          .push_back(static_cast<std::int32_t>(raises_.size()));
      raises_.push_back(record);
      applyRaiseSigned(record, 1.0);
      if (ledgerOn_) {
        LedgerEvent ev;
        ev.demand = u_.instance(entry.instance).demand;
        ev.kind = LedgerEventKind::DualRaise;
        ev.instance = entry.instance;
        ev.tuple = entry.tuple;
        ev.alphaIncrement = entry.alphaIncrement;
        ev.betaIncrement = entry.betaIncrement;
        cfg_.ledger->record(ev);
      }
    }
  }

  // Admission: phase 2 over the merged persistent stack.
  const std::int64_t admitBegin = trace ? tracer->now() : 0;
  popPersistentStack();
  outcome.solution = solution_;
  outcome.profit = profit_;
  recordAdmissions(outcome);
  if (trace) {
    tracer->span("admit", "online", 0, admitBegin,
                 {{"epoch", outcome.epoch},
                  {"accepted", static_cast<std::int64_t>(
                       solution_.instances.size())},
                  {"newly_admitted", outcome.newlyAdmittedDemands}});
  }

  // Slackness over the whole active set (warm epochs inherit the old
  // epochs' satisfaction; the dual pair scaled by lambda is feasible for
  // the active universe, so objective / lambda upper-bounds OPT).
  double lambda = std::numeric_limits<double>::infinity();
  bool any = false;
  for (DemandId d = 0; d < u_.numDemands(); ++d) {
    if (!u_.isLive(d)) continue;
    for (const InstanceId i : u_.instancesOfDemand(d)) {
      any = true;
      lambda = std::min(lambda, lhs_[static_cast<std::size_t>(i)] /
                                    u_.instance(i).profit);
    }
  }
  lambdaMeasured_ = any ? lambda : 1.0;
  dualObjective_ = dual_.objective();
  // Certificates finalize against THIS epoch's measured lambda: the
  // blocker is an admitted (hence lambda-satisfied) instance, so its
  // LHS clears lambda * profit — the dual explanation replay checks.
  if (ledgerOn_) {
    for (LedgerEvent& ev : rejectionBuffer_) {
      if (ev.certInstance != kNoInstance) {
        ev.certLhs = lhs_[static_cast<std::size_t>(ev.certInstance)];
        ev.certThreshold =
            lambdaMeasured_ * u_.instance(ev.certInstance).profit;
      }
      cfg_.ledger->record(ev);
    }
    rejectionBuffer_.clear();
  }
  outcome.lambdaMeasured = lambdaMeasured_;
  outcome.dualObjective = dualObjective_;
  outcome.dualUpperBound =
      outcome.lambdaMeasured > 0
          ? outcome.dualObjective / outcome.lambdaMeasured
          : std::numeric_limits<double>::infinity();

  if (activeGauge_ != nullptr) {
    activeGauge_->set(static_cast<double>(u_.numLiveDemands()));
  }
  publishEpochTelemetry();
  if (trace) {
    tracer->span("online_epoch", "online", 0, epochBegin,
                 {{"epoch", outcome.epoch},
                  {"affected_instances", outcome.affectedInstances},
                  {"full_resolve", outcome.fullResolve ? 1 : 0}});
  }
  if (cfg_.series != nullptr) cfg_.series->snapshot(outcome.epoch);
  ++epoch_;
  return outcome;
}

double IncrementalSolver::maxLhsDeviationFromReplay() const {
  std::vector<double> replay(lhs_.size(), 0.0);
  for (const RaiseRecord& record : raises_) {
    if (!record.live) continue;
    const InstanceRecord& rec = u_.instance(record.instance);
    applyAlphaToLhs(u_, rec.demand, record.amounts.alphaIncrement, replay);
    for (const GlobalEdgeId e : u_.critical(record.instance)) {
      applyBetaToLhs(u_, cfg_.rule, e, record.amounts.betaIncrement, replay);
    }
  }
  double deviation = 0;
  for (DemandId d = 0; d < u_.numDemands(); ++d) {
    if (!u_.isLive(d)) continue;
    for (const InstanceId i : u_.instancesOfDemand(d)) {
      deviation = std::max(
          deviation, std::abs(replay[static_cast<std::size_t>(i)] -
                              lhs_[static_cast<std::size_t>(i)]));
    }
  }
  return deviation;
}

}  // namespace treesched
