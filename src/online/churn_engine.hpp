// Virtual-time churn engine: epoch-batched admission over a churn trace.
//
// The engine cuts a ChurnTrace (online/arrivals.hpp) into fixed-length
// virtual-time epochs, nets each window's events (a demand arriving and
// departing inside one window is never admitted), and feeds the batches
// to the IncrementalSolver — one warm-started incremental re-solve per
// epoch over the live transport. It is the online counterpart of the
// one-shot runDistributedUnit{Tree,Line} entry points.
#pragma once

#include <cstdint>
#include <vector>

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"
#include "online/arrivals.hpp"
#include "online/incremental.hpp"

namespace treesched {

struct ChurnEngineConfig {
  /// Virtual time per epoch batch (> 0).
  double epochLength = 8.0;
  OnlineSolverConfig solver;
};

struct ChurnRunResult {
  std::vector<EpochOutcome> epochs;
  /// Admitted solution and revenue after the last epoch.
  Solution finalSolution;
  double finalProfit = 0;
  /// Instances of the demands still active after the last epoch
  /// (ascending) — the restriction a from-scratch comparator runs on.
  std::vector<InstanceId> finalActiveInstances;
  /// Mean resolve fraction over epochs with churn (1.0 = every such
  /// epoch was a full from-scratch re-solve; locality-heavy traces must
  /// land below 1.0 — the bench-tracked number).
  double meanResolveFraction = 0;
  std::int32_t fullResolves = 0;
  std::int64_t totalRounds = 0;
  std::int64_t totalMessages = 0;
};

/// Runs the trace over a prepared pool (universe + layering + access).
/// The pool structures must outlive the call.
ChurnRunResult runChurnOverTrace(
    const InstanceUniverse& universe, const Layering& layering,
    const std::vector<std::vector<std::int32_t>>& access,
    const ChurnTrace& trace, const ChurnEngineConfig& config);

/// Convenience entry points building the pool structures first.
ChurnRunResult runChurnTree(const TreeProblem& pool, const ChurnTrace& trace,
                            const ChurnEngineConfig& config);
ChurnRunResult runChurnLine(const LineProblem& pool, const ChurnTrace& trace,
                            const ChurnEngineConfig& config);

/// Splits the trace into epoch batches of `epochLength` without running
/// anything (exposed for tests and the demo): batch k holds the netted
/// arrivals/departures of window [k*len, (k+1)*len).
struct EpochBatch {
  std::vector<DemandId> arrivals;
  std::vector<DemandId> departures;
};
std::vector<EpochBatch> batchTrace(const ChurnTrace& trace,
                                   double epochLength);

}  // namespace treesched
