// Virtual-time churn engine: epoch-batched admission over a churn trace.
//
// The engine cuts a ChurnTrace (online/arrivals.hpp) into fixed-length
// virtual-time epochs, nets each window's events (a demand arriving and
// departing inside one window is never admitted), and feeds the batches
// to the IncrementalSolver — one warm-started incremental re-solve per
// epoch over the live transport. It is the online counterpart of the
// one-shot runDistributedUnit{Tree,Line} entry points.
//
// The engine runs over a DynamicUniverse (core/dynamic_universe.hpp):
// only the per-network layering structures and pool indexes are built up
// front; instances materialize as demands arrive and garbage-collect as
// they depart, so per-epoch cost tracks churn and steady-state memory
// tracks live demands — never the pool size.
//
// The transport is selected by ChurnEngineConfig::transport
// (net/live_transport.hpp): the synchronous bus, the async lossy wire or
// the sharded wire. Epoch outcomes are bit-identical across all of them
// (the Transport contract); the choice moves only the wire accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"
#include "net/live_transport.hpp"
#include "online/arrivals.hpp"
#include "online/incremental.hpp"

namespace treesched {

struct ChurnEngineConfig {
  /// Virtual time per epoch batch (> 0).
  double epochLength = 8.0;
  OnlineSolverConfig solver;
  /// Which wire the epochs run over (sync bus by default).
  LiveTransportConfig transport;
};

struct ChurnRunResult {
  std::vector<EpochOutcome> epochs;
  /// Admitted solution and revenue after the last epoch.
  Solution finalSolution;
  double finalProfit = 0;
  /// Instances of the demands still active after the last epoch
  /// (ascending) — the restriction a from-scratch comparator runs on.
  std::vector<InstanceId> finalActiveInstances;
  /// Mean resolve fraction over epochs with churn (1.0 = every such
  /// epoch was a full from-scratch re-solve; locality-heavy traces must
  /// land below 1.0 — the bench-tracked number).
  double meanResolveFraction = 0;
  std::int32_t fullResolves = 0;
  std::int64_t totalRounds = 0;
  std::int64_t totalMessages = 0;
  /// Admission-latency SLA aggregates after the last epoch.
  AdmissionSla sla;
  // ---- Dynamic-universe maintenance cost ----
  /// One-time pool build (layerer structures + indexes) — the only cost
  /// that scales with pool size.
  double universeBuildMs = 0;
  /// Mean addDemand wall time over the run's arrivals (µs) — the
  /// bench-tracked per-arrival extension cost, independent of pool size.
  double meanExtendUsPerArrival = 0;
  // ---- Hot-shard rebalancing + engine scaling aggregates ----
  // All zero when rebalancing is disabled or the transport has no live
  // sharded placement; performance accounting only.
  std::int64_t totalDemandsMigrated = 0;
  std::int64_t totalEngineClaims = 0;
  std::int64_t totalEngineSteals = 0;
  /// Peak per-processor load variance observed entering a rebalance step
  /// and the peak remaining after one — the bench-tracked pair (a working
  /// rebalancer shows peakVarianceAfter well below peakVarianceBefore
  /// under targeted_burst).
  double peakVarianceBefore = 0;
  double peakVarianceAfter = 0;
  /// The transport's cumulative accounting after the last epoch (wire
  /// transmissions, virtual time, ... — the per-transport bench axis).
  NetworkStats network;
};

/// Runs the trace over a prepared dynamic universe (no live demands
/// yet), building the transport from config.transport. The universe must
/// outlive the call and comes back holding the final live set.
ChurnRunResult runChurnOverTrace(DynamicUniverse& universe,
                                 const ChurnTrace& trace,
                                 const ChurnEngineConfig& config);

/// Same, over a caller-owned live transport (must expose one isolated
/// endpoint per pool demand and support MutableTopology).
ChurnRunResult runChurnOverTransport(DynamicUniverse& universe,
                                     const ChurnTrace& trace,
                                     const ChurnEngineConfig& config,
                                     Transport& transport);

/// Convenience entry points building the dynamic universe first.
ChurnRunResult runChurnTree(const TreeProblem& pool, const ChurnTrace& trace,
                            const ChurnEngineConfig& config);
ChurnRunResult runChurnLine(const LineProblem& pool, const ChurnTrace& trace,
                            const ChurnEngineConfig& config);

/// Splits the trace into epoch batches of `epochLength` without running
/// anything (exposed for tests and the demo): batch k holds the netted
/// arrivals/departures of window [k*len, (k+1)*len).
struct EpochBatch {
  std::vector<DemandId> arrivals;
  std::vector<DemandId> departures;
};
std::vector<EpochBatch> batchTrace(const ChurnTrace& trace,
                                   double epochLength);

}  // namespace treesched
