#include "gen/demand_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace treesched {

double drawProfit(ProfitDistribution dist, double pmin, double pmax, Rng& rng) {
  checkThat(pmin > 0 && pmax >= pmin, "profit range valid", __FILE__, __LINE__);
  switch (dist) {
    case ProfitDistribution::Uniform:
      return rng.nextDouble(pmin, pmax);
    case ProfitDistribution::PowerLaw: {
      const double u = rng.nextDouble();
      return pmin * std::pow(pmax / pmin, u * u * u);
    }
    case ProfitDistribution::TwoPoint:
      return rng.nextBool() ? pmin : pmax;
  }
  throw CheckError("unknown ProfitDistribution");
}

double drawHeight(HeightMode mode, double hmin, Rng& rng) {
  switch (mode) {
    case HeightMode::Unit:
      return 1.0;
    case HeightMode::Narrow:
      return rng.nextDouble(hmin, 0.5);
    case HeightMode::Wide:
      return rng.nextDouble(std::nextafter(0.5, 1.0), 1.0);
    case HeightMode::Mixed:
      return rng.nextBool() ? rng.nextDouble(hmin, 0.5)
                            : rng.nextDouble(std::nextafter(0.5, 1.0), 1.0);
  }
  throw CheckError("unknown HeightMode");
}

namespace {

std::vector<TreeId> drawAccess(std::int32_t numNetworks, double probability,
                               Rng& rng) {
  std::vector<TreeId> access;
  for (TreeId t = 0; t < numNetworks; ++t) {
    if (rng.nextBool(probability)) {
      access.push_back(t);
    }
  }
  if (access.empty()) {
    access.push_back(static_cast<TreeId>(
        rng.nextBounded(static_cast<std::uint64_t>(numNetworks))));
  }
  return access;
}

/// Count-based accessibility: a uniform count in [1, maxCount] of
/// distinct networks, drawn by rejection (counts are tiny relative to
/// the network pool at preset scale, so retries are rare). Ascending,
/// like the Bernoulli scheme.
std::vector<TreeId> drawAccessCount(std::int32_t numNetworks,
                                    std::int32_t maxCount, Rng& rng) {
  const auto count = static_cast<std::int32_t>(
      rng.nextInt(1, std::min(maxCount, numNetworks)));
  std::vector<TreeId> access;
  access.reserve(static_cast<std::size_t>(count));
  while (static_cast<std::int32_t>(access.size()) < count) {
    const auto t = static_cast<TreeId>(
        rng.nextBounded(static_cast<std::uint64_t>(numNetworks)));
    if (std::find(access.begin(), access.end(), t) == access.end()) {
      access.push_back(t);
    }
  }
  std::sort(access.begin(), access.end());
  return access;
}

}  // namespace

void generateTreeDemands(TreeProblem& problem, const DemandGenConfig& config,
                         Rng& rng) {
  checkThat(problem.numVertices >= 2, "problem vertices set", __FILE__,
            __LINE__);
  checkThat(!problem.networks.empty(), "problem networks set", __FILE__,
            __LINE__);
  problem.demands.clear();
  problem.access.clear();
  const std::int32_t n = problem.numVertices;
  for (DemandId d = 0; d < config.numDemands; ++d) {
    Demand dem;
    dem.id = d;
    dem.u =
        static_cast<VertexId>(rng.nextBounded(static_cast<std::uint64_t>(n)));
    if (config.walkLength > 0) {
      // Locality: random walk from u on the first network.
      const TreeNetwork& net = problem.networks.front();
      VertexId v = dem.u;
      for (std::int32_t s = 0; s < config.walkLength || v == dem.u; ++s) {
        const auto nbrs = net.neighbors(v);
        v = nbrs[rng.nextBounded(nbrs.size())].to;
      }
      dem.v = v;
    } else {
      do {
        dem.v = static_cast<VertexId>(
            rng.nextBounded(static_cast<std::uint64_t>(n)));
      } while (dem.v == dem.u);
    }
    dem.profit = drawProfit(config.profits, config.profitMin, config.profitMax,
                            rng);
    dem.height = drawHeight(config.heights, config.hmin, rng);
    problem.demands.push_back(dem);
    problem.access.push_back(
        config.accessCountMax > 0
            ? drawAccessCount(problem.numNetworks(), config.accessCountMax,
                              rng)
            : drawAccess(problem.numNetworks(), config.accessProbability,
                         rng));
  }
}

void generateLineDemands(LineProblem& problem,
                         const LineDemandGenConfig& config, Rng& rng) {
  checkThat(problem.numSlots >= 1, "problem slots set", __FILE__, __LINE__);
  checkThat(problem.numResources >= 1, "problem resources set", __FILE__,
            __LINE__);
  problem.demands.clear();
  problem.access.clear();
  for (DemandId d = 0; d < config.numDemands; ++d) {
    WindowDemand dem;
    dem.id = d;
    const std::int32_t maxProcessing =
        std::min(config.processingMax, problem.numSlots);
    dem.processing = static_cast<std::int32_t>(
        rng.nextInt(std::min(config.processingMin, maxProcessing),
                    maxProcessing));
    std::int32_t windowLen = static_cast<std::int32_t>(
        std::lround(dem.processing * (1.0 + config.windowSlack)));
    windowLen = std::clamp(windowLen, dem.processing, problem.numSlots);
    dem.release = static_cast<std::int32_t>(
        rng.nextInt(0, problem.numSlots - windowLen));
    dem.deadline = dem.release + windowLen - 1;
    dem.profit = drawProfit(config.profits, config.profitMin, config.profitMax,
                            rng);
    dem.height = drawHeight(config.heights, config.hmin, rng);
    problem.demands.push_back(dem);
    // Resource accessibility follows the same schemes as trees.
    problem.access.push_back(
        config.accessCountMax > 0
            ? drawAccessCount(problem.numResources, config.accessCountMax,
                              rng)
            : drawAccess(problem.numResources, config.accessProbability,
                         rng));
  }
}

}  // namespace treesched
