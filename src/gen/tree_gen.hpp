// Random and structured tree generators.
//
// The paper's bounds are worst-case over tree shapes, so the experiment
// suite sweeps a shape gallery: uniform random trees (Prüfer decode),
// random attachment trees (low diameter), paths (the line-network shape),
// stars, caterpillars, spiders and balanced binary trees.
#pragma once

#include <string>

#include "graph/tree_network.hpp"
#include "util/rng.hpp"

namespace treesched {

enum class TreeShape {
  UniformRandom,     ///< uniform over labelled trees (Prüfer sequence)
  RandomAttachment,  ///< vertex i attaches to uniform j < i
  Path,
  Star,
  Caterpillar,  ///< path spine with alternating leaves
  Spider,       ///< few long legs from a hub
  BalancedBinary,
};

/// Generates a tree of `numVertices` vertices with the given shape.
/// Randomized shapes draw from `rng`; deterministic shapes ignore it.
TreeNetwork generateTree(TreeShape shape, TreeId id, std::int32_t numVertices,
                         Rng& rng);

/// All shapes, for sweep loops.
inline constexpr TreeShape kAllTreeShapes[] = {
    TreeShape::UniformRandom, TreeShape::RandomAttachment,
    TreeShape::Path,          TreeShape::Star,
    TreeShape::Caterpillar,   TreeShape::Spider,
    TreeShape::BalancedBinary};

std::string treeShapeName(TreeShape shape);

}  // namespace treesched
