#include "gen/scenario.hpp"

namespace treesched {

TreeProblem makeTreeScenario(const TreeScenarioConfig& config) {
  Rng rng(config.seed);
  TreeProblem problem;
  problem.numVertices = config.numVertices;
  problem.networks.reserve(static_cast<std::size_t>(config.numNetworks));
  for (TreeId t = 0; t < config.numNetworks; ++t) {
    Rng treeRng = rng.fork(static_cast<std::uint64_t>(t));
    problem.networks.push_back(
        generateTree(config.shape, t, config.numVertices, treeRng));
  }
  Rng demandRng = rng.fork(0xdeedULL);
  generateTreeDemands(problem, config.demands, demandRng);
  problem.validate();
  return problem;
}

LineProblem makeLineScenario(const LineScenarioConfig& config) {
  Rng rng(config.seed);
  LineProblem problem;
  problem.numSlots = config.numSlots;
  problem.numResources = config.numResources;
  Rng demandRng = rng.fork(0xfeedULL);
  generateLineDemands(problem, config.demands, demandRng);
  problem.validate();
  return problem;
}

}  // namespace treesched
