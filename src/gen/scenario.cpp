#include "gen/scenario.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "dist/protocol.hpp"
#include "util/check.hpp"

namespace treesched {

TreeProblem makeTreeScenario(const TreeScenarioConfig& config) {
  Rng rng(config.seed);
  TreeProblem problem;
  problem.numVertices = config.numVertices;
  problem.networks.reserve(static_cast<std::size_t>(config.numNetworks));
  for (TreeId t = 0; t < config.numNetworks; ++t) {
    Rng treeRng = rng.fork(static_cast<std::uint64_t>(t));
    problem.networks.push_back(
        generateTree(config.shape, t, config.numVertices, treeRng));
  }
  Rng demandRng = rng.fork(0xdeedULL);
  generateTreeDemands(problem, config.demands, demandRng);
  problem.validate();
  return problem;
}

LineProblem makeLineScenario(const LineScenarioConfig& config) {
  Rng rng(config.seed);
  LineProblem problem;
  problem.numSlots = config.numSlots;
  problem.numResources = config.numResources;
  Rng demandRng = rng.fork(0xfeedULL);
  generateLineDemands(problem, config.demands, demandRng);
  problem.validate();
  return problem;
}

namespace {

/// The wide-area wire: heavy-tail latencies (many short hops, a few very
/// slow ones), 5% loss, and a timeout that fires well before the tail cap
/// so slow packets are raced by retransmissions.
AsyncConfig wideAreaWire(std::uint64_t seed, std::int32_t shardProcessors) {
  AsyncConfig net;
  net.seed = seed ^ 0x71deULL;
  net.link.latency.model = LatencyModel::HeavyTail;
  net.link.latency.base = 1.0;
  net.link.latency.tailShape = 1.5;
  net.link.latency.tailCap = 64.0;
  net.link.dropProbability = 0.05;
  net.link.retransmitTimeout = 16.0;
  net.strategy = ShardStrategy::Locality;
  net.shardProcessors = shardProcessors;
  return net;
}

}  // namespace

LossyWideAreaTreeScenario makeLossyWideAreaTree(std::uint64_t seed,
                                                std::int32_t numVertices,
                                                std::int32_t numNetworks,
                                                std::int32_t numDemands,
                                                std::int32_t shardProcessors) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = numVertices;
  cfg.numNetworks = numNetworks;
  cfg.demands.numDemands = numDemands;
  cfg.demands.profits = ProfitDistribution::PowerLaw;
  cfg.demands.accessProbability = 0.7;
  return {makeTreeScenario(cfg), wideAreaWire(seed, shardProcessors)};
}

LineProblem makeMetroLine100k(std::uint64_t seed, std::int32_t numDemands) {
  LineScenarioConfig cfg;
  cfg.seed = seed ^ 0x3e7a0ULL;
  cfg.numSlots = 128;
  cfg.numResources = std::max(2, numDemands / 16);
  cfg.demands.numDemands = numDemands;
  cfg.demands.profits = ProfitDistribution::PowerLaw;
  cfg.demands.processingMin = 2;
  cfg.demands.processingMax = 6;
  cfg.demands.windowSlack = 0.0;  // tight windows: one instance per access
  cfg.demands.accessCountMax = 2;
  return makeLineScenario(cfg);
}

TreeProblem makeCdnTree250k(std::uint64_t seed, std::int32_t numDemands) {
  TreeScenarioConfig cfg;
  cfg.seed = seed ^ 0xcd9ULL;
  cfg.numVertices = 48;
  cfg.numNetworks = std::max(2, numDemands / 16);
  cfg.shape = TreeShape::RandomAttachment;  // low diameter, CDN-like
  cfg.demands.numDemands = numDemands;
  cfg.demands.profits = ProfitDistribution::PowerLaw;
  cfg.demands.accessCountMax = 2;
  return makeTreeScenario(cfg);
}

ChurnTreeScenario makeFlashCrowdTree50k(std::uint64_t seed,
                                        std::int32_t numDemands) {
  ChurnTreeScenario scenario;
  TreeScenarioConfig cfg;
  cfg.seed = seed ^ 0xf1a5ULL;
  cfg.numVertices = 48;
  cfg.numNetworks = std::max(2, numDemands / 8);
  cfg.shape = TreeShape::RandomAttachment;
  cfg.demands.numDemands = numDemands;
  cfg.demands.profits = ProfitDistribution::PowerLaw;
  cfg.demands.accessCountMax = 2;
  scenario.pool = makeTreeScenario(cfg);

  scenario.arrivals.model = ArrivalModel::FlashCrowd;
  scenario.arrivals.seed = seed ^ 0xc70bdULL;
  scenario.arrivals.horizon = 256.0;
  scenario.arrivals.meanLifetime = 96.0;
  scenario.arrivals.burstCenter = 0.25;
  scenario.arrivals.burstWidth = 0.06;  // the spike lands in ~2 epochs
  scenario.arrivals.burstFraction = 0.6;
  scenario.epochLength = 8.0;
  return scenario;
}

ChurnLineScenario makeDiurnalMetroLine100k(std::uint64_t seed,
                                           std::int32_t numDemands) {
  ChurnLineScenario scenario;
  LineScenarioConfig cfg;
  cfg.seed = seed ^ 0xd107ULL;
  cfg.numSlots = 128;
  cfg.numResources = std::max(2, numDemands / 8);
  cfg.demands.numDemands = numDemands;
  cfg.demands.profits = ProfitDistribution::PowerLaw;
  cfg.demands.processingMin = 2;
  cfg.demands.processingMax = 6;
  cfg.demands.windowSlack = 0.0;
  cfg.demands.accessCountMax = 2;
  scenario.pool = makeLineScenario(cfg);

  scenario.arrivals.model = ArrivalModel::Diurnal;
  scenario.arrivals.seed = seed ^ 0x3e7a1ULL;
  scenario.arrivals.horizon = 256.0;
  scenario.arrivals.meanLifetime = 80.0;
  scenario.arrivals.waves = 2.0;
  scenario.arrivals.waveDepth = 0.9;
  scenario.epochLength = 8.0;
  return scenario;
}

ChurnTreeScenario makeHotspotTree50k(std::uint64_t seed,
                                     std::int32_t numDemands) {
  // The pool is the flash-crowd CDN fabric; only the churn process (and
  // its seed stream) differs — the adversarial targeted burst.
  ChurnTreeScenario scenario = makeFlashCrowdTree50k(seed, numDemands);
  scenario.arrivals.model = ArrivalModel::TargetedBurst;
  scenario.arrivals.seed = seed ^ 0x407502ULL;
  scenario.arrivals.burstCenter = 0.3;
  scenario.arrivals.burstWidth = 0.05;
  // Hit ~1/16 of the networks: churn concentrates on a region small
  // enough that the incremental re-solver's locality must pay off, large
  // enough that the waves dominate the trace.
  scenario.arrivals.targetNetworkCount =
      std::max(2, numDemands / 8 / 16);
  scenario.arrivals.targetFraction = 0.85;
  scenario.arrivals.correlatedLifetime = 0.3;
  return scenario;
}

std::vector<ScenarioPresetInfo> scenarioPresets() {
  return {
      {"lossy_wide_area_tree", "tree+async", kLossyWideAreaTreeDemands,
       "wide-area wire: heavy-tail latency, 5% loss, locality sharding"},
      {"lossy_wide_area_line", "line+async", kLossyWideAreaLineDemands,
       "line variant of the lossy wide-area wire"},
      {"metro_line_100k", "line", kMetroLineDemands,
       "metropolitan transit schedule, tight windows, power-law profits"},
      {"cdn_tree_250k", "tree", kCdnTreeDemands,
       "content-delivery fabric, low-diameter trees, 1-2 accesses"},
      {"flash_crowd_50k", "tree+churn", kFlashCrowdDemands,
       "CDN pool under a viral arrival spike (online churn engine)"},
      {"diurnal_metro_100k", "line+churn", kDiurnalMetroDemands,
       "metro pool under a day/night arrival wave (online churn engine)"},
      {"hotspot_tree_50k", "tree+churn", kHotspotTreeDemands,
       "CDN pool under a targeted burst: hot networks absorb a "
       "synchronized arrival wave + correlated mass departure"},
  };
}

LossyWideAreaLineScenario makeLossyWideAreaLine(std::uint64_t seed,
                                                std::int32_t numSlots,
                                                std::int32_t numResources,
                                                std::int32_t numDemands,
                                                std::int32_t shardProcessors) {
  LineScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numSlots = numSlots;
  cfg.numResources = numResources;
  cfg.demands.numDemands = numDemands;
  cfg.demands.profits = ProfitDistribution::PowerLaw;
  cfg.demands.windowSlack = 0.5;
  cfg.demands.processingMax = 6;
  cfg.demands.accessProbability = 0.8;
  return {makeLineScenario(cfg), wideAreaWire(seed + 1, shardProcessors)};
}

ScenarioProblem buildScenarioProblem(const std::string& name,
                                     std::uint64_t seed,
                                     std::int32_t numDemands) {
  const auto fromTree = [](TreeProblem problem) {
    auto pool = std::make_shared<const TreeProblem>(std::move(problem));
    PreparedRun run = prepareUnitTreeRun(*pool);
    ScenarioProblem out{std::move(run.universe), std::move(run.layering),
                        pool->access,            pool->numNetworks(),
                        false,                   {},
                        8.0,                     {},
                        {}};
    out.treePool = std::move(pool);
    return out;
  };
  const auto fromLine = [](LineProblem problem) {
    auto pool = std::make_shared<const LineProblem>(std::move(problem));
    PreparedRun run = prepareUnitLineRun(*pool);
    ScenarioProblem out{std::move(run.universe), std::move(run.layering),
                        pool->access,            pool->numResources,
                        false,                   {},
                        8.0,                     {},
                        {}};
    out.linePool = std::move(pool);
    return out;
  };
  const auto scaled = [numDemands](std::int32_t presetDefault) {
    return numDemands > 0 ? numDemands : presetDefault;
  };
  const auto fromChurnTree = [&fromTree](ChurnTreeScenario s) {
    ScenarioProblem out = fromTree(std::move(s.pool));
    out.hasChurn = true;
    out.epochLength = s.epochLength;
    out.trace = generateChurnTrace(s.arrivals, out.access);
    return out;
  };
  const auto fromChurnLine = [&fromLine](ChurnLineScenario s) {
    ScenarioProblem out = fromLine(std::move(s.pool));
    out.hasChurn = true;
    out.epochLength = s.epochLength;
    out.trace = generateChurnTrace(s.arrivals, out.access);
    return out;
  };

  if (name == "lossy_wide_area_tree") {
    return fromTree(makeLossyWideAreaTree(seed, 48, 3,
                                          scaled(kLossyWideAreaTreeDemands))
                        .problem);
  }
  if (name == "lossy_wide_area_line") {
    return fromLine(makeLossyWideAreaLine(seed, 96, 3,
                                          scaled(kLossyWideAreaLineDemands))
                        .problem);
  }
  if (name == "metro_line_100k") {
    return fromLine(makeMetroLine100k(seed, scaled(kMetroLineDemands)));
  }
  if (name == "cdn_tree_250k") {
    return fromTree(makeCdnTree250k(seed, scaled(kCdnTreeDemands)));
  }
  if (name == "flash_crowd_50k") {
    return fromChurnTree(
        makeFlashCrowdTree50k(seed, scaled(kFlashCrowdDemands)));
  }
  if (name == "diurnal_metro_100k") {
    return fromChurnLine(
        makeDiurnalMetroLine100k(seed, scaled(kDiurnalMetroDemands)));
  }
  checkThat(name == "hotspot_tree_50k",
            "known scenario preset name (see scenarioPresets())", __FILE__,
            __LINE__);
  return fromChurnTree(makeHotspotTree50k(seed, scaled(kHotspotTreeDemands)));
}

}  // namespace treesched
