// Random demand generators for trees and lines.
//
// Knobs mirror the quantities in the paper's round/ratio bounds: profit
// spread pmax/pmin, height range (hmin), window slack and processing-time
// spread Lmax/Lmin, and the accessibility density connecting the
// communication graph.
#pragma once

#include <vector>

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"
#include "util/rng.hpp"

namespace treesched {

enum class ProfitDistribution {
  Uniform,   ///< uniform in [pmin, pmax]
  PowerLaw,  ///< heavy-tailed: pmin * (pmax/pmin)^u^3
  TwoPoint,  ///< pmin or pmax (adversarial for profit-greedy)
};

enum class HeightMode {
  Unit,    ///< all 1 (the §2-§5 setting)
  Narrow,  ///< uniform in [hmin, 1/2]
  Wide,    ///< uniform in (1/2, 1]
  Mixed,   ///< half narrow, half wide (the §6 setting)
};

struct DemandGenConfig {
  std::int32_t numDemands = 64;
  double profitMin = 1.0;
  double profitMax = 10.0;
  ProfitDistribution profits = ProfitDistribution::Uniform;
  HeightMode heights = HeightMode::Unit;
  double hmin = 0.1;  ///< lower bound for Narrow/Mixed heights
  /// Endpoint locality: 0 = uniform pairs; k > 0 = second endpoint found
  /// by a k-step random walk on the first network (short paths).
  std::int32_t walkLength = 0;
  /// Each demand can access each network independently with this
  /// probability (at least one access is forced).
  double accessProbability = 1.0;
  /// When > 0, overrides the Bernoulli scheme: each demand accesses a
  /// uniform count in [1, accessCountMax] of distinct networks drawn
  /// u.a.r. — O(count) per demand instead of O(numNetworks), which is
  /// what the 10^5-scale presets need when networks number in the
  /// thousands.
  std::int32_t accessCountMax = 0;
};

/// Fills `demands` and `access` of a tree problem whose `numVertices` and
/// `networks` are already set.
void generateTreeDemands(TreeProblem& problem, const DemandGenConfig& config,
                         Rng& rng);

struct LineDemandGenConfig {
  std::int32_t numDemands = 64;
  double profitMin = 1.0;
  double profitMax = 10.0;
  ProfitDistribution profits = ProfitDistribution::Uniform;
  HeightMode heights = HeightMode::Unit;
  double hmin = 0.1;
  std::int32_t processingMin = 1;
  std::int32_t processingMax = 8;
  /// Window slack as a multiple of processing time: window length =
  /// processing * (1 + slack). 0 = tight windows (no scheduling choice).
  double windowSlack = 0.0;
  double accessProbability = 1.0;
  /// See DemandGenConfig::accessCountMax.
  std::int32_t accessCountMax = 0;
};

/// Fills `demands` and `access` of a line problem whose `numSlots` and
/// `numResources` are already set.
void generateLineDemands(LineProblem& problem,
                         const LineDemandGenConfig& config, Rng& rng);

/// Draws one profit from the distribution.
double drawProfit(ProfitDistribution dist, double pmin, double pmax, Rng& rng);

/// Draws one height for the mode.
double drawHeight(HeightMode mode, double hmin, Rng& rng);

}  // namespace treesched
