// Named scenario presets: one call builds a complete, validated problem.
// Used by the benchmark harnesses, the examples and the property tests so
// that every consumer sees identical workloads for a given seed.
#pragma once

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"
#include "gen/demand_gen.hpp"
#include "gen/tree_gen.hpp"
#include "net/synchronizer.hpp"

namespace treesched {

struct TreeScenarioConfig {
  std::uint64_t seed = 1;
  std::int32_t numVertices = 64;
  std::int32_t numNetworks = 3;
  TreeShape shape = TreeShape::UniformRandom;
  DemandGenConfig demands;
};

/// Builds and validates a tree problem: `numNetworks` independent trees of
/// the given shape over a shared vertex set plus random demands.
TreeProblem makeTreeScenario(const TreeScenarioConfig& config);

struct LineScenarioConfig {
  std::uint64_t seed = 1;
  std::int32_t numSlots = 128;
  std::int32_t numResources = 3;
  LineDemandGenConfig demands;
};

/// Builds and validates a line problem.
LineProblem makeLineScenario(const LineScenarioConfig& config);

// ---- lossy_wide_area: the async/lossy stress preset --------------------
//
// A wide-area deployment: power-law profits, dense network access, and a
// wire with heavy-tail (Pareto) latencies, a nonzero i.i.d. drop rate and
// locality-aware sharding — the workload the async bench (bench_async)
// tracks across PRs. Problem and transport ship together so every
// consumer measures the same wire under the same load.

struct LossyWideAreaTreeScenario {
  TreeProblem problem;
  AsyncConfig net;
};

struct LossyWideAreaLineScenario {
  LineProblem problem;
  AsyncConfig net;
};

/// Tree variant: `numDemands` demands over `numNetworks` trees on
/// `numVertices` vertices, sharded onto `shardProcessors` simulated
/// processors (<= 0 keeps one processor per demand).
LossyWideAreaTreeScenario makeLossyWideAreaTree(
    std::uint64_t seed, std::int32_t numVertices = 48,
    std::int32_t numNetworks = 3, std::int32_t numDemands = 36,
    std::int32_t shardProcessors = 6);

/// Line variant of the same wide-area wire.
LossyWideAreaLineScenario makeLossyWideAreaLine(
    std::uint64_t seed, std::int32_t numSlots = 96,
    std::int32_t numResources = 3, std::int32_t numDemands = 30,
    std::int32_t shardProcessors = 5);

// ---- Production-scale parallel-engine presets --------------------------
//
// The workloads the parallel bench (bench_parallel, BENCH_parallel.json)
// tracks across PRs: 10^5-entity problems with thousands of networks so
// the communication graph stays bounded-degree (the regime the paper's
// O(M)-message discipline targets) while the round loops carry enough
// per-round work for the thread pool to bite. `numDemands` scales the
// whole preset down proportionally (CI smoke and unit tests run them at
// a few thousand demands); resource/network counts scale with it.

/// metro_line_100k: a metropolitan transit schedule — numDemands window
/// jobs (tight windows, processing 2..6 slots) over ~numDemands/16 line
/// resources, 1-2 accessible resources each, power-law profits.
LineProblem makeMetroLine100k(std::uint64_t seed,
                              std::int32_t numDemands = 100'000);

/// cdn_tree_250k: a content-delivery fabric — numDemands transfer
/// demands over ~numDemands/16 low-diameter (random-attachment) trees on
/// a shared 48-vertex site set, 1-2 accessible trees each, power-law
/// profits.
TreeProblem makeCdnTree250k(std::uint64_t seed,
                            std::int32_t numDemands = 250'000);

}  // namespace treesched
