// Named scenario presets: one call builds a complete, validated problem.
// Used by the benchmark harnesses, the examples and the property tests so
// that every consumer sees identical workloads for a given seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"
#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "gen/demand_gen.hpp"
#include "gen/tree_gen.hpp"
#include "net/synchronizer.hpp"
#include "online/arrivals.hpp"

namespace treesched {

struct TreeScenarioConfig {
  std::uint64_t seed = 1;
  std::int32_t numVertices = 64;
  std::int32_t numNetworks = 3;
  TreeShape shape = TreeShape::UniformRandom;
  DemandGenConfig demands;
};

/// Builds and validates a tree problem: `numNetworks` independent trees of
/// the given shape over a shared vertex set plus random demands.
TreeProblem makeTreeScenario(const TreeScenarioConfig& config);

struct LineScenarioConfig {
  std::uint64_t seed = 1;
  std::int32_t numSlots = 128;
  std::int32_t numResources = 3;
  LineDemandGenConfig demands;
};

/// Builds and validates a line problem.
LineProblem makeLineScenario(const LineScenarioConfig& config);

// ---- lossy_wide_area: the async/lossy stress preset --------------------
//
// A wide-area deployment: power-law profits, dense network access, and a
// wire with heavy-tail (Pareto) latencies, a nonzero i.i.d. drop rate and
// locality-aware sharding — the workload the async bench (bench_async)
// tracks across PRs. Problem and transport ship together so every
// consumer measures the same wire under the same load.

struct LossyWideAreaTreeScenario {
  TreeProblem problem;
  AsyncConfig net;
};

struct LossyWideAreaLineScenario {
  LineProblem problem;
  AsyncConfig net;
};

// Default demand counts of the named presets — single source for the
// default arguments below and the scenarioPresets() registry.
inline constexpr std::int32_t kLossyWideAreaTreeDemands = 36;
inline constexpr std::int32_t kLossyWideAreaLineDemands = 30;
inline constexpr std::int32_t kMetroLineDemands = 100'000;
inline constexpr std::int32_t kCdnTreeDemands = 250'000;
inline constexpr std::int32_t kFlashCrowdDemands = 50'000;
inline constexpr std::int32_t kDiurnalMetroDemands = 100'000;
inline constexpr std::int32_t kHotspotTreeDemands = 50'000;

/// Tree variant: `numDemands` demands over `numNetworks` trees on
/// `numVertices` vertices, sharded onto `shardProcessors` simulated
/// processors (<= 0 keeps one processor per demand).
LossyWideAreaTreeScenario makeLossyWideAreaTree(
    std::uint64_t seed, std::int32_t numVertices = 48,
    std::int32_t numNetworks = 3,
    std::int32_t numDemands = kLossyWideAreaTreeDemands,
    std::int32_t shardProcessors = 6);

/// Line variant of the same wide-area wire.
LossyWideAreaLineScenario makeLossyWideAreaLine(
    std::uint64_t seed, std::int32_t numSlots = 96,
    std::int32_t numResources = 3,
    std::int32_t numDemands = kLossyWideAreaLineDemands,
    std::int32_t shardProcessors = 5);

// ---- Production-scale parallel-engine presets --------------------------
//
// The workloads the parallel bench (bench_parallel, BENCH_parallel.json)
// tracks across PRs: 10^5-entity problems with thousands of networks so
// the communication graph stays bounded-degree (the regime the paper's
// O(M)-message discipline targets) while the round loops carry enough
// per-round work for the thread pool to bite. `numDemands` scales the
// whole preset down proportionally (CI smoke and unit tests run them at
// a few thousand demands); resource/network counts scale with it.

/// metro_line_100k: a metropolitan transit schedule — numDemands window
/// jobs (tight windows, processing 2..6 slots) over ~numDemands/16 line
/// resources, 1-2 accessible resources each, power-law profits.
LineProblem makeMetroLine100k(std::uint64_t seed,
                              std::int32_t numDemands = kMetroLineDemands);

/// cdn_tree_250k: a content-delivery fabric — numDemands transfer
/// demands over ~numDemands/16 low-diameter (random-attachment) trees on
/// a shared 48-vertex site set, 1-2 accessible trees each, power-law
/// profits.
TreeProblem makeCdnTree250k(std::uint64_t seed,
                            std::int32_t numDemands = kCdnTreeDemands);

// ---- Online churn presets (src/online/) --------------------------------
//
// A churn preset ships a demand pool together with the arrival process
// and the epoch length the churn engine batches it into, so the bench
// (bench_online, BENCH_online.json), the tests and the demo all replay
// identical time-varying workloads for a given seed. Both pools use
// count-based accessibility over many networks, so per-epoch churn
// touches a strict subset of the networks and the incremental re-solver's
// affected region stays well below the whole instance (the re-solve
// fraction the bench tracks).

struct ChurnTreeScenario {
  TreeProblem pool;
  ArrivalConfig arrivals;
  double epochLength = 8.0;
};

struct ChurnLineScenario {
  LineProblem pool;
  ArrivalConfig arrivals;
  double epochLength = 8.0;
};

/// flash_crowd_50k: the CDN fabric under a viral spike — numDemands
/// transfer demands (cdn_tree_250k pool shape, ~numDemands/8 networks);
/// 60% of them arrive inside a burst of ~2 epochs at a quarter of the
/// horizon, the rest trickle in Poisson-style.
ChurnTreeScenario makeFlashCrowdTree50k(
    std::uint64_t seed, std::int32_t numDemands = kFlashCrowdDemands);

/// diurnal_metro_100k: the metropolitan line schedule under a day/night
/// wave — numDemands window jobs (metro_line_100k pool shape,
/// ~numDemands/8 resources) arriving along two sinusoidal cycles.
ChurnLineScenario makeDiurnalMetroLine100k(
    std::uint64_t seed, std::int32_t numDemands = kDiurnalMetroDemands);

/// hotspot_tree_50k: the CDN fabric under attack — the adversarial
/// targeted_burst churn model hammers a hash-picked set of hot networks
/// with a synchronized arrival wave AND a correlated mass departure a
/// few epochs later, concentrating both churn waves on one region
/// (online/arrivals.hpp ArrivalModel::TargetedBurst; generate the trace
/// with the access-aware generateChurnTrace overload).
ChurnTreeScenario makeHotspotTree50k(
    std::uint64_t seed, std::int32_t numDemands = kHotspotTreeDemands);

// ---- Preset registry ---------------------------------------------------

/// One row per named preset, so tools can enumerate the catalogue
/// (examples/distributed_demo --list-presets) without reading source.
struct ScenarioPresetInfo {
  std::string name;
  std::string kind;  ///< "tree", "line", "tree+churn", "line+churn", ...
  std::int32_t defaultDemands = 0;
  std::string summary;
};

/// Every named preset of this header, in declaration order.
std::vector<ScenarioPresetInfo> scenarioPresets();

// ---- Uniform preset instantiation --------------------------------------

/// A named preset instantiated as a solver-ready problem: the instance
/// universe (conflicts built), the unit-demand layering and the
/// accessibility lists every Scheduler consumes (policy/scheduler.hpp).
/// Churn presets additionally carry their generated trace and epoch
/// length so online consumers replay the same time-varying workload.
struct ScenarioProblem {
  InstanceUniverse universe;
  Layering layering;
  /// Per-demand accessible network ids (the pool problem's lists).
  std::vector<std::vector<std::int32_t>> access;
  std::int32_t numNetworks = 0;
  bool hasChurn = false;  ///< true for the "+churn" presets
  ChurnTrace trace;       ///< empty unless hasChurn
  double epochLength = 8.0;
  /// Pool problem handle — exactly one non-null, matching the preset
  /// kind. Online consumers build their DynamicUniverse from it
  /// (makeDynamicTreeUniverse / makeDynamicLineUniverse) without copying
  /// the pool.
  std::shared_ptr<const TreeProblem> treePool;
  std::shared_ptr<const LineProblem> linePool;
};

/// Instantiates the preset called `name` (see scenarioPresets()) at
/// `numDemands` demands (<= 0 keeps the preset default). One entry
/// point over the whole catalogue, so the tournament bench, the policy
/// tests and the demos all build byte-identical workloads from a
/// (name, seed, scale) triple. Throws CheckError on an unknown name.
ScenarioProblem buildScenarioProblem(const std::string& name,
                                     std::uint64_t seed,
                                     std::int32_t numDemands = 0);

}  // namespace treesched
