// Named scenario presets: one call builds a complete, validated problem.
// Used by the benchmark harnesses, the examples and the property tests so
// that every consumer sees identical workloads for a given seed.
#pragma once

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"
#include "gen/demand_gen.hpp"
#include "gen/tree_gen.hpp"
#include "net/synchronizer.hpp"

namespace treesched {

struct TreeScenarioConfig {
  std::uint64_t seed = 1;
  std::int32_t numVertices = 64;
  std::int32_t numNetworks = 3;
  TreeShape shape = TreeShape::UniformRandom;
  DemandGenConfig demands;
};

/// Builds and validates a tree problem: `numNetworks` independent trees of
/// the given shape over a shared vertex set plus random demands.
TreeProblem makeTreeScenario(const TreeScenarioConfig& config);

struct LineScenarioConfig {
  std::uint64_t seed = 1;
  std::int32_t numSlots = 128;
  std::int32_t numResources = 3;
  LineDemandGenConfig demands;
};

/// Builds and validates a line problem.
LineProblem makeLineScenario(const LineScenarioConfig& config);

// ---- lossy_wide_area: the async/lossy stress preset --------------------
//
// A wide-area deployment: power-law profits, dense network access, and a
// wire with heavy-tail (Pareto) latencies, a nonzero i.i.d. drop rate and
// locality-aware sharding — the workload the async bench (bench_async)
// tracks across PRs. Problem and transport ship together so every
// consumer measures the same wire under the same load.

struct LossyWideAreaTreeScenario {
  TreeProblem problem;
  AsyncConfig net;
};

struct LossyWideAreaLineScenario {
  LineProblem problem;
  AsyncConfig net;
};

/// Tree variant: `numDemands` demands over `numNetworks` trees on
/// `numVertices` vertices, sharded onto `shardProcessors` simulated
/// processors (<= 0 keeps one processor per demand).
LossyWideAreaTreeScenario makeLossyWideAreaTree(
    std::uint64_t seed, std::int32_t numVertices = 48,
    std::int32_t numNetworks = 3, std::int32_t numDemands = 36,
    std::int32_t shardProcessors = 6);

/// Line variant of the same wide-area wire.
LossyWideAreaLineScenario makeLossyWideAreaLine(
    std::uint64_t seed, std::int32_t numSlots = 96,
    std::int32_t numResources = 3, std::int32_t numDemands = 30,
    std::int32_t shardProcessors = 5);

}  // namespace treesched
