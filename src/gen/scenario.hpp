// Named scenario presets: one call builds a complete, validated problem.
// Used by the benchmark harnesses, the examples and the property tests so
// that every consumer sees identical workloads for a given seed.
#pragma once

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"
#include "gen/demand_gen.hpp"
#include "gen/tree_gen.hpp"

namespace treesched {

struct TreeScenarioConfig {
  std::uint64_t seed = 1;
  std::int32_t numVertices = 64;
  std::int32_t numNetworks = 3;
  TreeShape shape = TreeShape::UniformRandom;
  DemandGenConfig demands;
};

/// Builds and validates a tree problem: `numNetworks` independent trees of
/// the given shape over a shared vertex set plus random demands.
TreeProblem makeTreeScenario(const TreeScenarioConfig& config);

struct LineScenarioConfig {
  std::uint64_t seed = 1;
  std::int32_t numSlots = 128;
  std::int32_t numResources = 3;
  LineDemandGenConfig demands;
};

/// Builds and validates a line problem.
LineProblem makeLineScenario(const LineScenarioConfig& config);

}  // namespace treesched
