#include "gen/tree_gen.hpp"

#include <vector>

#include "util/check.hpp"

namespace treesched {

namespace {

using EdgeList = std::vector<std::pair<VertexId, VertexId>>;

EdgeList pruferDecode(std::int32_t n, Rng& rng) {
  // Uniform labelled tree: draw a random Prüfer sequence and decode.
  if (n == 1) return {};
  if (n == 2) return {{0, 1}};
  std::vector<VertexId> seq(static_cast<std::size_t>(n - 2));
  for (auto& s : seq) {
    s = static_cast<VertexId>(rng.nextBounded(static_cast<std::uint64_t>(n)));
  }
  std::vector<std::int32_t> degree(static_cast<std::size_t>(n), 1);
  for (const VertexId s : seq) {
    ++degree[static_cast<std::size_t>(s)];
  }
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n - 1));
  // Standard O(n log n)-free decode with a moving leaf pointer.
  std::int32_t ptr = 0;
  while (degree[static_cast<std::size_t>(ptr)] != 1) ++ptr;
  std::int32_t leaf = ptr;
  for (const VertexId s : seq) {
    edges.emplace_back(leaf, s);
    if (--degree[static_cast<std::size_t>(s)] == 1 && s < ptr) {
      leaf = s;
    } else {
      ++ptr;
      while (degree[static_cast<std::size_t>(ptr)] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.emplace_back(leaf, n - 1);
  return edges;
}

EdgeList randomAttachment(std::int32_t n, Rng& rng) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (VertexId v = 1; v < n; ++v) {
    edges.emplace_back(v, static_cast<VertexId>(rng.nextBounded(
                              static_cast<std::uint64_t>(v))));
  }
  return edges;
}

EdgeList caterpillar(std::int32_t n) {
  // Spine of ceil(n/2) vertices; remaining vertices hang off the spine.
  EdgeList edges;
  const std::int32_t spine = (n + 1) / 2;
  for (VertexId v = 1; v < spine; ++v) {
    edges.emplace_back(v - 1, v);
  }
  for (VertexId v = spine; v < n; ++v) {
    edges.emplace_back(v, v - spine);
  }
  return edges;
}

EdgeList spider(std::int32_t n) {
  // 4 legs (or fewer for tiny n) of nearly equal length from hub 0.
  EdgeList edges;
  const std::int32_t legs = std::min<std::int32_t>(4, n - 1);
  if (legs <= 0) return edges;
  for (std::int32_t leg = 0; leg < legs; ++leg) {
    VertexId prev = 0;
    // Legs get every legs-th remaining vertex.
    for (VertexId v = 1 + leg; v < n; v += legs) {
      edges.emplace_back(prev, v);
      prev = v;
    }
  }
  return edges;
}

EdgeList balancedBinary(std::int32_t n) {
  EdgeList edges;
  for (VertexId v = 1; v < n; ++v) {
    edges.emplace_back(v, (v - 1) / 2);
  }
  return edges;
}

}  // namespace

TreeNetwork generateTree(TreeShape shape, TreeId id, std::int32_t numVertices,
                         Rng& rng) {
  checkThat(numVertices >= 1, "tree size >= 1", __FILE__, __LINE__);
  switch (shape) {
    case TreeShape::UniformRandom:
      return TreeNetwork(id, numVertices, pruferDecode(numVertices, rng));
    case TreeShape::RandomAttachment:
      return TreeNetwork(id, numVertices, randomAttachment(numVertices, rng));
    case TreeShape::Path:
      return makePathTree(id, numVertices);
    case TreeShape::Star:
      return makeStarTree(id, numVertices);
    case TreeShape::Caterpillar:
      return TreeNetwork(id, numVertices, caterpillar(numVertices));
    case TreeShape::Spider:
      return TreeNetwork(id, numVertices, spider(numVertices));
    case TreeShape::BalancedBinary:
      return TreeNetwork(id, numVertices, balancedBinary(numVertices));
  }
  throw CheckError("unknown TreeShape");
}

std::string treeShapeName(TreeShape shape) {
  switch (shape) {
    case TreeShape::UniformRandom:
      return "uniform";
    case TreeShape::RandomAttachment:
      return "attachment";
    case TreeShape::Path:
      return "path";
    case TreeShape::Star:
      return "star";
    case TreeShape::Caterpillar:
      return "caterpillar";
    case TreeShape::Spider:
      return "spider";
    case TreeShape::BalancedBinary:
      return "binary";
  }
  return "?";
}

}  // namespace treesched
