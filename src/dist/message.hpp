// Message vocabulary of the distributed protocol (paper §5).
//
// Every message is broadcast by a processor to its neighbours in the
// communication graph (processors sharing an accessible network). Payload
// sizes are measured in units of M, where M bounds the description of one
// demand instance (id, endpoints, path, critical edges); the paper's O(M)
// message-size discipline corresponds to a small constant number of units
// per message — the protocol never exceeds 2.
#pragma once

#include <cstdint>
#include <tuple>

#include "core/demand.hpp"

namespace treesched {

enum class MessageKind : std::uint8_t {
  /// Luby round, first half: "my instance is still undecided and
  /// unsatisfied". Carries the instance whose priority competes this round.
  MisActive,
  /// Luby round, second half: "my instance joined the independent set".
  MisJoin,
  /// Raise round: "I raised my instance's duals"; `value` is the beta
  /// increment applied to every critical edge of the instance. Two units:
  /// the instance description plus the increment.
  DualRaise,
  /// Phase 2: "my instance is accepted into the solution".
  Accept,
};

/// Number of MessageKind values; sizes per-kind accounting arrays (the
/// static_assert below fails the build if the enum grows without it).
inline constexpr std::int32_t kMessageKindCount = 4;
static_assert(static_cast<std::int32_t>(MessageKind::Accept) ==
                  kMessageKindCount - 1,
              "kMessageKindCount must track the MessageKind enum");

/// One protocol message. `from` is the sending processor (== DemandId),
/// `instance` the demand instance the message talks about, `value` a
/// rule-dependent scalar (only DualRaise uses it).
struct Message {
  MessageKind kind = MessageKind::MisActive;
  DemandId from = 0;
  InstanceId instance = kNoInstance;
  double value = 0;
};

/// Payload of a message in units of M (see file comment).
inline std::int32_t messagePayloadUnits(MessageKind kind) {
  return kind == MessageKind::DualRaise ? 2 : 1;
}

/// The canonical inbox order every transport must deliver in (sender
/// first, then instance): processors consume messages in this order, which
/// is the keystone of bit-identical equivalence with the centralized
/// engine — and of sync/async transport equivalence.
inline bool canonicalMessageLess(const Message& a, const Message& b) {
  return std::tie(a.from, a.instance, a.kind, a.value) <
         std::tie(b.from, b.instance, b.kind, b.value);
}

}  // namespace treesched
