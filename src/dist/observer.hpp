// Observation hooks into the distributed protocol.
//
// The protocol reports the events a distributed tracing facility would see:
// step starts (with participant counts), completed MIS computations, dual
// raises and phase-2 accepts. Tests use the hooks to cross-check the
// run-level counters; the examples use them for progress traces. Silent
// steps (no unsatisfied instance in the scheduled group) are not observed.
#pragma once

#include <cstdint>

#include "core/demand.hpp"

namespace treesched {

/// Callback interface; every hook has a no-op default, so subclasses
/// override only what they need. Hooks fire in simulation order and only
/// for events that actually happen (crashed processors emit nothing).
class ProtocolObserver {
 public:
  virtual ~ProtocolObserver() = default;

  /// An active phase-1 step begins: `epoch` is 0-based, `stage` and `step`
  /// 1-based (the schedule tuple); `participants` counts the unsatisfied
  /// instances entering the step's MIS (always > 0).
  virtual void onStepStart(std::int32_t /*epoch*/, std::int32_t /*stage*/,
                           std::int32_t /*step*/,
                           std::int32_t /*participants*/) {}

  /// The step's MIS computation finished after `lubyRounds` Luby rounds
  /// with `misSize` members. `tuple` is the 0-based global step index.
  virtual void onMisComplete(std::int64_t /*tuple*/,
                             std::int32_t /*lubyRounds*/,
                             std::int32_t /*misSize*/) {}

  /// `instance`'s dual constraint was made tight; `delta` is the alpha
  /// increment (> 0).
  virtual void onRaise(std::int64_t /*tuple*/, InstanceId /*instance*/,
                       double /*delta*/) {}

  /// Phase 2 accepted `instance` while popping `tuple`'s stack entry.
  virtual void onAccept(std::int64_t /*tuple*/, InstanceId /*instance*/) {}
};

/// Observer that ignores every event; useful as an explicit "no tracing"
/// argument and as a base for tests.
class NullObserver final : public ProtocolObserver {};

}  // namespace treesched
