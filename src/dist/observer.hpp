// Observation hooks into the distributed protocol.
//
// The protocol reports the events a distributed tracing facility would see:
// epoch/stage boundaries, step starts (with participant counts), completed
// MIS computations, dual raises, crash-stop faults taking effect, and
// phase-2 pops — accepts AND rejects, so every raise is accounted for
// exactly once (accepts + rejects == raises). Tests use the hooks to
// cross-check the run-level counters; the examples use them for progress
// traces; obs/observer_adapter.hpp turns them into tracer spans and
// registry metrics. Silent steps (no unsatisfied instance in the
// scheduled group) are not observed.
#pragma once

#include <cstdint>

#include "core/demand.hpp"

namespace treesched {

/// Why a phase-2 stack pop did not admit its instance.
enum class RejectReason : std::uint8_t {
  OwnerCrashed,       ///< the owning processor is dead in phase 2
  DemandSatisfied,    ///< the demand already admitted another instance
  CapacityExceeded,   ///< an edge on the instance's path is full
};

/// Callback interface; every hook has a no-op default, so subclasses
/// override only what they need. Hooks fire in simulation order and only
/// for events that actually happen (crashed processors emit nothing).
class ProtocolObserver {
 public:
  virtual ~ProtocolObserver() = default;

  /// Phase 1 enters `epoch` (0-based); its scheduled group holds
  /// `groupMembers` instances of the run's active set (may be 0 — the
  /// epoch's steps are then all silent).
  virtual void onEpochBegin(std::int32_t /*epoch*/,
                            std::int32_t /*groupMembers*/) {}

  /// Phase 1 enters `stage` (1-based) of `epoch`; `target` is the
  /// stage's lambda target on the staged plan.
  virtual void onStageBegin(std::int32_t /*epoch*/, std::int32_t /*stage*/,
                            double /*target*/) {}

  /// An active phase-1 step begins: `epoch` is 0-based, `stage` and `step`
  /// 1-based (the schedule tuple); `participants` counts the unsatisfied
  /// instances entering the step's MIS (always > 0).
  virtual void onStepStart(std::int32_t /*epoch*/, std::int32_t /*stage*/,
                           std::int32_t /*step*/,
                           std::int32_t /*participants*/) {}

  /// The step's MIS computation finished after `lubyRounds` Luby rounds
  /// with `misSize` members. `tuple` is the 0-based global step index.
  virtual void onMisComplete(std::int64_t /*tuple*/,
                             std::int32_t /*lubyRounds*/,
                             std::int32_t /*misSize*/) {}

  /// `instance`'s dual constraint was made tight; `delta` is the alpha
  /// increment (> 0).
  virtual void onRaise(std::int64_t /*tuple*/, InstanceId /*instance*/,
                       double /*delta*/) {}

  /// Crash-stop fault injection took effect for `processor` at schedule
  /// tuple `tuple` (phase-2-only crashes report the first phase-2 pop
  /// tuple, i.e. the schedule size). Fires once per crashed processor,
  /// ascending.
  virtual void onCrash(DemandId /*processor*/, std::int64_t /*tuple*/) {}

  /// Phase 1 finished: `activeSteps` observed steps, `raises` raises.
  virtual void onPhase1Complete(std::int64_t /*activeSteps*/,
                                std::int64_t /*raises*/) {}

  /// Phase 2 accepted `instance` while popping `tuple`'s stack entry.
  virtual void onAccept(std::int64_t /*tuple*/, InstanceId /*instance*/) {}

  /// Phase 2 popped `instance` from `tuple`'s stack entry and rejected
  /// it. Every pushed instance is popped exactly once, so over a run
  /// accepts + rejects == raises (tests/observer_test.cpp).
  virtual void onReject(std::int64_t /*tuple*/, InstanceId /*instance*/,
                        RejectReason /*reason*/) {}

  /// Phase 2 finished after `accepts` admissions and `rejects` rejected
  /// pops.
  virtual void onPhase2Complete(std::int64_t /*accepts*/,
                                std::int64_t /*rejects*/) {}
};

/// Observer that ignores every event; useful as an explicit "no tracing"
/// argument and as a base for tests.
class NullObserver final : public ProtocolObserver {};

}  // namespace treesched
