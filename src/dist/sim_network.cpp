#include "dist/sim_network.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace treesched {

SimNetwork::SimNetwork(std::vector<std::vector<std::int32_t>> adjacency)
    : adjacency_(std::move(adjacency)),
      plane_(std::max<std::int32_t>(
          1, static_cast<std::int32_t>(adjacency_.size()))) {
  validateCommunicationAdjacency(adjacency_);
}

std::span<const std::int32_t> SimNetwork::neighbors(std::int32_t p) const {
  checkIndex(p, numProcessors(), "SimNetwork::neighbors");
  return adjacency_[static_cast<std::size_t>(p)];
}

void SimNetwork::broadcast(const Message& message) {
  checkIndex(message.from, numProcessors(), "SimNetwork::broadcast");
  const auto from = static_cast<std::size_t>(message.from);
  plane_.stageFanout(message, adjacency_[from]);
}

void SimNetwork::connectDemand(std::int32_t p,
                               std::span<const std::int32_t> neighbors) {
  checkIndex(p, numProcessors(), "SimNetwork::connectDemand");
  checkThat(!plane_.hasStaged(), "topology mutation only between rounds",
            __FILE__, __LINE__);
  auto& own = adjacency_[static_cast<std::size_t>(p)];
  checkThat(own.empty(), "connectDemand target must be isolated", __FILE__,
            __LINE__);
  // Validate the whole list before touching any adjacency (strong
  // guarantee: a rejected call leaves the live graph unchanged).
  for (std::size_t idx = 0; idx < neighbors.size(); ++idx) {
    const std::int32_t n = neighbors[idx];
    checkIndex(n, numProcessors(), "connectDemand neighbour");
    checkThat(n != p, "no self links", __FILE__, __LINE__);
    checkThat(idx == 0 || neighbors[idx - 1] < n,
              "connectDemand neighbours sorted, duplicate-free", __FILE__,
              __LINE__);
  }
  own.assign(neighbors.begin(), neighbors.end());
  for (const std::int32_t n : neighbors) {
    auto& theirs = adjacency_[static_cast<std::size_t>(n)];
    const auto pos = std::lower_bound(theirs.begin(), theirs.end(), p);
    checkThat(pos == theirs.end() || *pos != p,
              "connectDemand edge already present", __FILE__, __LINE__);
    theirs.insert(pos, p);
  }
}

void SimNetwork::disconnectDemand(std::int32_t p) {
  checkIndex(p, numProcessors(), "SimNetwork::disconnectDemand");
  checkThat(!plane_.hasStaged(), "topology mutation only between rounds",
            __FILE__, __LINE__);
  auto& own = adjacency_[static_cast<std::size_t>(p)];
  for (const std::int32_t n : own) {
    auto& theirs = adjacency_[static_cast<std::size_t>(n)];
    const auto pos = std::lower_bound(theirs.begin(), theirs.end(), p);
    checkThat(pos != theirs.end() && *pos == p,
              "disconnectDemand edge symmetric", __FILE__, __LINE__);
    theirs.erase(pos);
  }
  own.clear();
}

void SimNetwork::endRound() {
  ++stats_.rounds;
  const std::int64_t before = stats_.messages;
  plane_.deliver();
  accountPlaneRound(stats_, plane_);
  const std::int64_t delivered = stats_.messages - before;
  if (roundsCtr_ != nullptr) {
    roundsCtr_->add(1);
    messagesCtr_->add(delivered);
    if (delivered > 0) busyRoundsCtr_->add(1);
  }
  if (trace_ && delivered > 0) {
    tracer_->instant("deliver", "net", 0,
                     {{"round", stats_.rounds}, {"messages", delivered}});
  }
}

void SimNetwork::endSilentRounds(std::int64_t count) {
  checkThat(count >= 0, "silent round count non-negative", __FILE__, __LINE__);
  checkThat(!plane_.hasStaged(), "silent rounds must not drop queued messages",
            __FILE__, __LINE__);
  if (count == 0) return;
  plane_.clearInboxes();
  stats_.rounds += count;
  if (roundsCtr_ != nullptr) roundsCtr_->add(count);
}

void SimNetwork::attachTelemetry(Tracer* tracer, MetricsRegistry* metrics) {
  tracer_ = tracer;
  trace_ = tracer != nullptr && tracer->enabled();
  if (metrics != nullptr) {
    roundsCtr_ = &metrics->counter("net.rounds");
    busyRoundsCtr_ = &metrics->counter("net.busy_rounds");
    messagesCtr_ = &metrics->counter("net.messages");
  } else {
    roundsCtr_ = nullptr;
    busyRoundsCtr_ = nullptr;
    messagesCtr_ = nullptr;
  }
}

std::span<const Message> SimNetwork::inbox(std::int32_t p) const {
  checkIndex(p, numProcessors(), "SimNetwork::inbox");
  return plane_.inbox(p);
}

void SimNetwork::appendActiveInboxes(std::vector<std::int32_t>& out) const {
  const auto active = plane_.activeDests();
  out.insert(out.end(), active.begin(), active.end());
}

std::vector<std::vector<std::int32_t>> communicationGraph(
    const std::vector<std::vector<std::int32_t>>& access,
    std::int32_t numNetworks) {
  const auto numProc = static_cast<std::int32_t>(access.size());
  std::vector<std::vector<std::int32_t>> byNetwork(
      static_cast<std::size_t>(numNetworks));
  for (std::int32_t d = 0; d < numProc; ++d) {
    for (const std::int32_t t : access[static_cast<std::size_t>(d)]) {
      checkIndex(t, numNetworks, "communicationGraph access entry");
      byNetwork[static_cast<std::size_t>(t)].push_back(d);
    }
  }
  std::vector<std::vector<std::int32_t>> adjacency(
      static_cast<std::size_t>(numProc));
  for (const auto& sharers : byNetwork) {
    for (const std::int32_t a : sharers) {
      for (const std::int32_t b : sharers) {
        if (a != b) {
          adjacency[static_cast<std::size_t>(a)].push_back(b);
        }
      }
    }
  }
  for (auto& nbrs : adjacency) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adjacency;
}

}  // namespace treesched
