#include "dist/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/tolerances.hpp"
#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "framework/dual_state.hpp"
#include "framework/lhs_tracker.hpp"
#include "framework/mis.hpp"
#include "framework/schedule.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {
namespace {

/// Luby status of one instance within the current step.
enum class MisStatus : std::uint8_t { Inactive, Undecided, In, Out };

/// One dual raise as known to its owner before broadcasting.
struct PendingRaise {
  DemandId from = 0;
  InstanceId instance = kNoInstance;
  double alphaIncrement = 0;
  double betaIncrement = 0;
};

/// The whole simulation: per-processor local state plus the ground-truth
/// duals used for the consistency audit. "Local" state (alphaLocal_,
/// betaLocal_, lhsLocal_, loadLocal_) is only ever written by its owning
/// processor, either from its own actions or from messages it received.
class ProtocolEngine {
 public:
  ProtocolEngine(const InstanceUniverse& universe, const Layering& layering,
                 Transport& transport, const DistributedOptions& options)
      : u_(universe),
        lay_(layering),
        opt_(options),
        obs_(options.observer != nullptr ? options.observer : &nullObserver_),
        net_(transport),
        plan_(makeStagePlan(SchedulePolicy::Staged, options.rule,
                            options.epsilon,
                            std::max<std::int32_t>(1, layering.maxCriticalSize),
                            options.hmin)),
        numProc_(universe.numDemands()),
        groundDual_(universe),
        groundLhs_(universe, options.rule) {
    checkThat(u_.conflictsBuilt(), "conflicts built before protocol run",
              __FILE__, __LINE__);
    checkThat(net_.numProcessors() == numProc_,
              "one processor per demand", __FILE__, __LINE__);

    stepsPerStage_ = opt_.stepsPerStage;
    if (stepsPerStage_ == 0) {
      stepsPerStage_ =
          fixedScheduleStepsPerStage(u_.profitMax(), u_.profitMin());
    }
    scheduledSteps_ = static_cast<std::int64_t>(lay_.numGroups) *
                      plan_.numStages * stepsPerStage_;

    const std::int32_t numInst = u_.numInstances();
    members_.resize(static_cast<std::size_t>(lay_.numGroups));
    for (InstanceId i = 0; i < numInst; ++i) {
      members_[static_cast<std::size_t>(
                   lay_.group[static_cast<std::size_t>(i)])]
          .push_back(i);
    }

    lhsLocal_.assign(static_cast<std::size_t>(numInst), 0.0);
    misStatus_.assign(static_cast<std::size_t>(numInst), MisStatus::Inactive);
    alphaLocal_.assign(static_cast<std::size_t>(numProc_), 0.0);

    // Crash-stop fault set.
    crashed_.assign(static_cast<std::size_t>(numProc_), false);
    for (const DemandId d : opt_.crashProcessors) {
      checkIndex(d, numProc_, "crashProcessors entry");
      if (!crashed_[static_cast<std::size_t>(d)]) {
        crashed_[static_cast<std::size_t>(d)] = true;
        ++crashedCount_;
      }
    }

    // Per-processor tracked edges (union of its instances' paths) and,
    // per tracked edge, the own instances running through it.
    trackedEdges_.resize(static_cast<std::size_t>(numProc_));
    ownOnEdge_.resize(static_cast<std::size_t>(numProc_));
    betaLocal_.resize(static_cast<std::size_t>(numProc_));
    loadLocal_.resize(static_cast<std::size_t>(numProc_));
    for (DemandId p = 0; p < numProc_; ++p) {
      auto& tracked = trackedEdges_[static_cast<std::size_t>(p)];
      for (const InstanceId i : u_.instancesOfDemand(p)) {
        for (const GlobalEdgeId e : u_.path(i)) {
          tracked.push_back(e);
        }
      }
      std::sort(tracked.begin(), tracked.end());
      tracked.erase(std::unique(tracked.begin(), tracked.end()),
                    tracked.end());
      auto& onEdge = ownOnEdge_[static_cast<std::size_t>(p)];
      onEdge.resize(tracked.size());
      for (const InstanceId i : u_.instancesOfDemand(p)) {
        for (const GlobalEdgeId e : u_.path(i)) {
          onEdge[static_cast<std::size_t>(trackedIndex(p, e))].push_back(i);
        }
      }
      betaLocal_[static_cast<std::size_t>(p)].assign(tracked.size(), 0.0);
      loadLocal_[static_cast<std::size_t>(p)].assign(tracked.size(), 0.0);
    }
  }

  DistributedResult run() {
    runPhase1();
    measureSlackness();
    auditLocalViews();
    runPhase2();

    DistributedResult result;
    std::sort(acceptOrder_.begin(), acceptOrder_.end());
    result.solution.instances = std::move(acceptOrder_);
    result.profit = profit_;
    result.dualObjective = groundDual_.objective();
    result.lambdaTarget = plan_.lambdaTarget;
    result.lambdaMeasured = lambdaMeasured_;
    result.dualUpperBound =
        lambdaMeasured_ > 0 ? result.dualObjective / lambdaMeasured_
                            : std::numeric_limits<double>::infinity();
    result.network = net_.stats();
    result.scheduledSteps = scheduledSteps_;
    result.activeSteps = activeSteps_;
    result.raises = raises_;
    result.crashedProcessors = crashedCount_;
    result.localViewsConsistent = localViewsConsistent_;
    requireFeasible(u_, result.solution);
    return result;
  }

 private:
  DemandId owner(InstanceId i) const { return u_.instance(i).demand; }

  /// Same answer as InstanceUniverse::conflicting(v, w) for v != w, but
  /// O(log deg) via the prebuilt sorted adjacency instead of a path scan.
  bool conflictsWith(InstanceId v, InstanceId w) const {
    const auto adj = u_.conflictsOf(v);
    return std::binary_search(adj.begin(), adj.end(), w);
  }

  /// Alive during phase-1 tuple `tuple` (crashes hit at tuple start).
  bool aliveAt(DemandId p, std::int64_t tuple) const {
    return !crashed_[static_cast<std::size_t>(p)] ||
           tuple < opt_.crashAtTuple;
  }

  /// Alive during phase 2: every listed processor is dead by then.
  bool aliveP2(DemandId p) const {
    return !crashed_[static_cast<std::size_t>(p)];
  }

  double heightFactor(InstanceId i) const {
    return opt_.rule == RaiseRule::Narrow ? u_.instance(i).height : 1.0;
  }

  /// Position of `e` in p's tracked-edge list, or -1.
  std::int32_t trackedIndex(DemandId p, GlobalEdgeId e) const {
    const auto& tracked = trackedEdges_[static_cast<std::size_t>(p)];
    const auto it = std::lower_bound(tracked.begin(), tracked.end(), e);
    if (it == tracked.end() || *it != e) return -1;
    return static_cast<std::int32_t>(it - tracked.begin());
  }

  void runPhase1() {
    std::int64_t tuple = 0;
    for (std::int32_t epoch = 0; epoch < lay_.numGroups; ++epoch) {
      for (std::int32_t stage = 1; stage <= plan_.numStages; ++stage) {
        const double target = plan_.stageTarget(stage);
        for (std::int32_t step = 1; step <= stepsPerStage_; ++step) {
          runStep(epoch, stage, step, tuple, target);
          ++tuple;
        }
      }
    }
  }

  void runStep(std::int32_t epoch, std::int32_t stage, std::int32_t step,
               std::int64_t tuple, double target) {
    const std::int32_t budget = opt_.misRoundBudget;

    // Each alive processor checks its own instances of the scheduled
    // group against the stage target (purely local knowledge).
    std::vector<InstanceId> unsatisfied;
    for (const InstanceId i :
         members_[static_cast<std::size_t>(epoch)]) {
      if (!aliveAt(owner(i), tuple)) continue;
      const double p = u_.instance(i).profit;
      if (lhsLocal_[static_cast<std::size_t>(i)] <
          target * p - kSatisfyTolerance * p) {
        unsatisfied.push_back(i);
      }
    }

    if (unsatisfied.empty()) {
      // The fixed schedule still spends the step's rounds; nobody
      // transmits. Run-to-completion MIS (budget <= 0) costs only the
      // raise round.
      net_.endSilentRounds(budget > 0 ? 2 * budget + 1 : 1);
      return;
    }

    obs_->onStepStart(epoch, stage, step,
                      static_cast<std::int32_t>(unsatisfied.size()));
    ++activeSteps_;
    const std::uint64_t stepSeed =
        keyedHash(opt_.seed, static_cast<std::uint64_t>(epoch),
                  static_cast<std::uint64_t>(stage),
                  static_cast<std::uint64_t>(step));

    std::vector<InstanceId> misMembers =
        lubyOverMessages(unsatisfied, stepSeed, budget);
    obs_->onMisComplete(tuple, lastLubyRounds_,
                        static_cast<std::int32_t>(misMembers.size()));
    raiseRound(tuple, misMembers);

    // Reset per-step Luby state.
    for (const InstanceId i : unsatisfied) {
      misStatus_[static_cast<std::size_t>(i)] = MisStatus::Inactive;
    }
  }

  /// Runs the step's MIS as messages: per Luby round, one communication
  /// round announcing undecided instances and one announcing joiners.
  /// Returns the MIS sorted ascending; charges exactly 2*budget rounds
  /// when a budget is set (silent once the MIS completes early).
  std::vector<InstanceId> lubyOverMessages(
      const std::vector<InstanceId>& unsatisfied, std::uint64_t stepSeed,
      std::int32_t budget) {
    for (const InstanceId i : unsatisfied) {
      misStatus_[static_cast<std::size_t>(i)] = MisStatus::Undecided;
    }
    std::vector<InstanceId> undecided = unsatisfied;
    std::vector<InstanceId> misMembers;
    std::vector<InstanceId> joiners;
    lastLubyRounds_ = 0;

    while (!undecided.empty() &&
           (budget <= 0 || lastLubyRounds_ < budget)) {
      ++lastLubyRounds_;
      const std::int32_t round = lastLubyRounds_;

      // Round A: every undecided instance announces itself.
      for (const InstanceId i : undecided) {
        net_.broadcast({MessageKind::MisActive, owner(i), i, 0.0});
      }
      net_.endRound();

      // Round B: each owner decides from its inbox whether its instance
      // beats every undecided conflicting competitor, then announces
      // joins. Priorities are seed-keyed hashes, so the receiver can
      // evaluate the sender's priority itself.
      joiners.clear();
      for (const InstanceId v : undecided) {
        const DemandId p = owner(v);
        const std::uint64_t pv = misPriority(stepSeed, round, v);
        bool isLocalMax = true;
        for (const InstanceId w : u_.instancesOfDemand(p)) {
          if (w == v ||
              misStatus_[static_cast<std::size_t>(w)] != MisStatus::Undecided) {
            continue;
          }
          const std::uint64_t pw = misPriority(stepSeed, round, w);
          if (pw > pv || (pw == pv && w > v)) {
            isLocalMax = false;
            break;
          }
        }
        if (isLocalMax) {
          for (const Message& m : net_.inbox(p)) {
            if (m.kind != MessageKind::MisActive) continue;
            if (!conflictsWith(v, m.instance)) continue;
            const std::uint64_t pw = misPriority(stepSeed, round, m.instance);
            if (pw > pv || (pw == pv && m.instance > v)) {
              isLocalMax = false;
              break;
            }
          }
        }
        if (isLocalMax) {
          joiners.push_back(v);
        }
      }
      for (const InstanceId v : joiners) {
        net_.broadcast({MessageKind::MisJoin, owner(v), v, 0.0});
      }
      net_.endRound();

      // Apply joins: winners in; conflicting undecided out, discovered
      // locally for same-processor instances and via MisJoin messages
      // for neighbours.
      for (const InstanceId v : joiners) {
        misStatus_[static_cast<std::size_t>(v)] = MisStatus::In;
        misMembers.push_back(v);
        for (const InstanceId w : u_.instancesOfDemand(owner(v))) {
          if (misStatus_[static_cast<std::size_t>(w)] ==
              MisStatus::Undecided) {
            misStatus_[static_cast<std::size_t>(w)] = MisStatus::Out;
          }
        }
      }
      for (const InstanceId v : undecided) {
        if (misStatus_[static_cast<std::size_t>(v)] != MisStatus::Undecided) {
          continue;
        }
        for (const Message& m : net_.inbox(owner(v))) {
          if (m.kind != MessageKind::MisJoin) continue;
          if (conflictsWith(v, m.instance)) {
            misStatus_[static_cast<std::size_t>(v)] = MisStatus::Out;
            break;
          }
        }
      }
      std::erase_if(undecided, [&](InstanceId v) {
        return misStatus_[static_cast<std::size_t>(v)] != MisStatus::Undecided;
      });
    }

    if (budget > 0) {
      net_.endSilentRounds(
          2 * static_cast<std::int64_t>(budget - lastLubyRounds_));
    }
    std::sort(misMembers.begin(), misMembers.end());
    return misMembers;
  }

  /// The step's raise round: every MIS member's owner tightens its dual
  /// constraint and broadcasts the increments; all processors then apply
  /// the raises in canonical (sender) order so every local accumulator
  /// sees the exact sequence the centralized engine produces.
  void raiseRound(std::int64_t tuple,
                  const std::vector<InstanceId>& misMembers) {
    stepRaises_.clear();
    for (const InstanceId i : misMembers) {
      const DemandId p = owner(i);
      const InstanceRecord& rec = u_.instance(i);
      const double slack =
          rec.profit - lhsLocal_[static_cast<std::size_t>(i)];
      checkThat(slack > 0, "raised instance had positive slack", __FILE__,
                __LINE__);
      const auto critical = lay_.critical(i);
      const RaiseAmounts amounts =
          computeRaise(opt_.rule, u_, i, critical, slack);
      net_.broadcast(
          {MessageKind::DualRaise, p, i, amounts.betaIncrement});
      stepRaises_.push_back(
          {p, i, amounts.alphaIncrement, amounts.betaIncrement});
      obs_->onRaise(tuple, i, amounts.alphaIncrement);
      ++raises_;
      // Ground truth, applied in the centralized engine's order.
      applyRaise(groundDual_, u_, i, critical, amounts);
      groundLhs_.onRaise(i, critical, amounts);
    }
    net_.endRound();
    if (!misMembers.empty()) {
      stackTuples_.push_back(tuple);
      stackSets_.push_back(misMembers);
    }
    for (DemandId p = 0; p < numProc_; ++p) {
      if (!aliveAt(p, tuple)) continue;
      applyRaisesLocally(p);
    }
  }

  /// Applies one raise to processor p's local view: the alpha part if the
  /// raise is p's own, then the beta part on every critical edge p
  /// tracks — the same alpha-then-edges order as the centralized engine.
  void applyOneRaise(DemandId p, const PendingRaise& raise) {
    if (raise.from == p) {
      alphaLocal_[static_cast<std::size_t>(p)] += raise.alphaIncrement;
      for (const InstanceId k : u_.instancesOfDemand(p)) {
        lhsLocal_[static_cast<std::size_t>(k)] += raise.alphaIncrement;
      }
    }
    for (const GlobalEdgeId e : lay_.critical(raise.instance)) {
      const std::int32_t idx = trackedIndex(p, e);
      if (idx < 0) continue;
      betaLocal_[static_cast<std::size_t>(p)][static_cast<std::size_t>(idx)] +=
          raise.betaIncrement;
      for (const InstanceId k :
           ownOnEdge_[static_cast<std::size_t>(p)]
                     [static_cast<std::size_t>(idx)]) {
        lhsLocal_[static_cast<std::size_t>(k)] +=
            heightFactor(k) * raise.betaIncrement;
      }
    }
  }

  /// Merges p's own raise with the received DualRaise messages in sender
  /// order (== ascending instance order, since instances are numbered
  /// demand-major) and applies them.
  void applyRaisesLocally(DemandId p) {
    const PendingRaise* own = nullptr;
    for (const PendingRaise& r : stepRaises_) {
      if (r.from == p) {
        own = &r;
        break;
      }
    }
    bool ownApplied = own == nullptr;
    for (const Message& m : net_.inbox(p)) {
      if (m.kind != MessageKind::DualRaise) continue;
      if (!ownApplied && own->from < m.from) {
        applyOneRaise(p, *own);
        ownApplied = true;
      }
      applyOneRaise(p, {m.from, m.instance, 0.0, m.value});
    }
    if (!ownApplied) {
      applyOneRaise(p, *own);
    }
  }

  void measureSlackness() {
    double lambda = std::numeric_limits<double>::infinity();
    bool any = false;
    for (InstanceId i = 0; i < u_.numInstances(); ++i) {
      if (!aliveP2(owner(i))) continue;
      any = true;
      lambda = std::min(lambda,
                        groundLhs_.lhs(i) / u_.instance(i).profit);
    }
    lambdaMeasured_ = any ? lambda : 1.0;
  }

  /// Exact-equality audit of every surviving processor's local dual view
  /// against the ground truth of the raises that actually happened.
  void auditLocalViews() {
    localViewsConsistent_ = true;
    for (DemandId p = 0; p < numProc_; ++p) {
      if (!aliveP2(p)) continue;
      if (alphaLocal_[static_cast<std::size_t>(p)] != groundDual_.alpha(p)) {
        localViewsConsistent_ = false;
      }
      const auto& tracked = trackedEdges_[static_cast<std::size_t>(p)];
      for (std::size_t idx = 0; idx < tracked.size(); ++idx) {
        if (betaLocal_[static_cast<std::size_t>(p)][idx] !=
            groundDual_.beta(tracked[idx])) {
          localViewsConsistent_ = false;
        }
      }
      for (const InstanceId k : u_.instancesOfDemand(p)) {
        if (lhsLocal_[static_cast<std::size_t>(k)] != groundLhs_.lhs(k)) {
          localViewsConsistent_ = false;
        }
      }
    }
  }

  /// True iff p can accept `i` given its locally known edge loads — the
  /// exact capacity test of the centralized FeasibilityOracle.
  bool capacityOk(DemandId p, InstanceId i) const {
    const double h = u_.instance(i).height;
    for (const GlobalEdgeId e : u_.path(i)) {
      const std::int32_t idx = trackedIndex(p, e);
      checkThat(idx >= 0, "own path edge tracked", __FILE__, __LINE__);
      if (loadLocal_[static_cast<std::size_t>(p)]
                    [static_cast<std::size_t>(idx)] +
              h >
          1.0 + kCapacityTolerance) {
        return false;
      }
    }
    return true;
  }

  void runPhase2() {
    std::vector<bool> demandUsed(static_cast<std::size_t>(numProc_), false);
    std::size_t sp = stackTuples_.size();
    for (std::int64_t t = scheduledSteps_ - 1; t >= 0; --t) {
      if (sp > 0 && stackTuples_[sp - 1] == t) {
        --sp;
        for (const InstanceId i : stackSets_[sp]) {
          const DemandId p = owner(i);
          if (!aliveP2(p)) continue;
          if (demandUsed[static_cast<std::size_t>(p)]) continue;
          if (!capacityOk(p, i)) continue;
          demandUsed[static_cast<std::size_t>(p)] = true;
          addOwnLoad(p, i);
          net_.broadcast({MessageKind::Accept, p, i, 0.0});
          obs_->onAccept(t, i);
          acceptOrder_.push_back(i);
          profit_ += u_.instance(i).profit;
        }
      }
      net_.endRound();
      for (DemandId p = 0; p < numProc_; ++p) {
        if (!aliveP2(p)) continue;
        for (const Message& m : net_.inbox(p)) {
          if (m.kind != MessageKind::Accept) continue;
          const double h = u_.instance(m.instance).height;
          for (const GlobalEdgeId e : u_.path(m.instance)) {
            const std::int32_t idx = trackedIndex(p, e);
            if (idx < 0) continue;
            loadLocal_[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(idx)] += h;
          }
        }
      }
    }
  }

  void addOwnLoad(DemandId p, InstanceId i) {
    const double h = u_.instance(i).height;
    for (const GlobalEdgeId e : u_.path(i)) {
      const std::int32_t idx = trackedIndex(p, e);
      loadLocal_[static_cast<std::size_t>(p)][static_cast<std::size_t>(idx)] +=
          h;
    }
  }

  const InstanceUniverse& u_;
  const Layering& lay_;
  DistributedOptions opt_;
  NullObserver nullObserver_;
  ProtocolObserver* obs_;
  Transport& net_;
  StagePlan plan_;
  std::int32_t numProc_ = 0;
  std::int32_t stepsPerStage_ = 0;
  std::int64_t scheduledSteps_ = 0;
  std::vector<std::vector<InstanceId>> members_;

  // Per-processor local views.
  std::vector<double> lhsLocal_;    ///< per instance, owner's view
  std::vector<double> alphaLocal_;  ///< per processor
  std::vector<std::vector<GlobalEdgeId>> trackedEdges_;
  std::vector<std::vector<std::vector<InstanceId>>> ownOnEdge_;
  std::vector<std::vector<double>> betaLocal_;
  std::vector<std::vector<double>> loadLocal_;  ///< phase-2 edge loads

  // Ground truth for the audit and the reported dual objective.
  DualState groundDual_;
  LhsTracker groundLhs_;

  // Faults.
  std::vector<bool> crashed_;
  std::int32_t crashedCount_ = 0;

  // Per-step scratch.
  std::vector<MisStatus> misStatus_;
  std::vector<PendingRaise> stepRaises_;
  std::int32_t lastLubyRounds_ = 0;

  // Phase-1 stack (push order == tuple order; sets sorted ascending).
  std::vector<std::int64_t> stackTuples_;
  std::vector<std::vector<InstanceId>> stackSets_;

  // Run accounting.
  std::int64_t activeSteps_ = 0;
  std::int64_t raises_ = 0;
  double lambdaMeasured_ = 0;
  bool localViewsConsistent_ = false;
  std::vector<InstanceId> acceptOrder_;
  double profit_ = 0;
};

}  // namespace

DistributedResult runDistributedOverTransport(
    const InstanceUniverse& universe, const Layering& layering,
    Transport& transport, const DistributedOptions& options) {
  ProtocolEngine engine(universe, layering, transport, options);
  return engine.run();
}

PreparedRun prepareUnitTreeRun(const TreeProblem& problem) {
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  Layering layering = buildTreeLayering(problem, universe).layering;
  return {std::move(universe), std::move(layering),
          communicationGraph(problem.access, problem.numNetworks())};
}

PreparedRun prepareUnitLineRun(const LineProblem& problem) {
  InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  universe.buildConflicts();
  Layering layering = buildLineLayering(universe);
  return {std::move(universe), std::move(layering),
          communicationGraph(problem.access, problem.numResources)};
}

DistributedResult runDistributedUnitTree(const TreeProblem& problem,
                                         const DistributedOptions& options) {
  PreparedRun run = prepareUnitTreeRun(problem);
  SimNetwork bus(std::move(run.adjacency));
  return runDistributedOverTransport(run.universe, run.layering, bus,
                                     options);
}

DistributedResult runDistributedUnitLine(const LineProblem& problem,
                                         const DistributedOptions& options) {
  PreparedRun run = prepareUnitLineRun(problem);
  SimNetwork bus(std::move(run.adjacency));
  return runDistributedOverTransport(run.universe, run.layering, bus,
                                     options);
}

}  // namespace treesched
