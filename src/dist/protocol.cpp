#include "dist/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/dynamic_universe.hpp"
#include "core/tolerances.hpp"
#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "dist/sim_network.hpp"
#include "engine/parallel_runner.hpp"
#include "framework/dual_state.hpp"
#include "framework/lhs_tracker.hpp"
#include "framework/mis.hpp"
#include "framework/schedule.hpp"
#include "obs/ledger.hpp"
#include "obs/observer_adapter.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {
namespace {

/// Luby status of one instance within the current step.
enum class MisStatus : std::uint8_t { Inactive, Undecided, In, Out };

/// One dual raise as known to its owner before broadcasting.
struct PendingRaise {
  DemandId from = 0;
  InstanceId instance = kNoInstance;
  double alphaIncrement = 0;
  double betaIncrement = 0;
};

/// Per-processor local state: the tracked edges (union of the demand's
/// instance paths), the processor's dual view over them, and its phase-2
/// edge loads. Reentrant by construction — every method takes the shared
/// read-only structures explicitly and writes only this processor's own
/// slots (plus the lhs entries of its own instances), so contexts of
/// distinct processors run concurrently with no hidden shared state.
/// Methods are templated on the universe/layering types: over a
/// DynamicUniverse an inactive demand has no instances, so its context
/// is trivially empty — exactly the state its static-pool context would
/// never touch.
struct ProcessorContext {
  DemandId self = 0;
  double alpha = 0;  ///< alpha(self), the demand's own dual
  std::vector<GlobalEdgeId> tracked;               ///< sorted
  std::vector<std::vector<InstanceId>> ownOnEdge;  ///< per tracked edge
  std::vector<double> beta;  ///< per tracked edge, local view
  std::vector<double> load;  ///< per tracked edge, phase-2 accepted load

  template <class U>
  void init(const U& u, DemandId p) {
    self = p;
    for (const InstanceId i : u.instancesOfDemand(p)) {
      for (const GlobalEdgeId e : u.path(i)) {
        tracked.push_back(e);
      }
    }
    std::sort(tracked.begin(), tracked.end());
    tracked.erase(std::unique(tracked.begin(), tracked.end()), tracked.end());
    ownOnEdge.resize(tracked.size());
    for (const InstanceId i : u.instancesOfDemand(p)) {
      for (const GlobalEdgeId e : u.path(i)) {
        ownOnEdge[static_cast<std::size_t>(trackedIndex(e))].push_back(i);
      }
    }
    beta.assign(tracked.size(), 0.0);
    load.assign(tracked.size(), 0.0);
  }

  /// Position of `e` in the tracked-edge list, or -1.
  std::int32_t trackedIndex(GlobalEdgeId e) const {
    const auto it = std::lower_bound(tracked.begin(), tracked.end(), e);
    if (it == tracked.end() || *it != e) return -1;
    return static_cast<std::int32_t>(it - tracked.begin());
  }

  /// Applies one raise to this processor's local view: the alpha part if
  /// the raise is its own, then the beta part on every critical edge it
  /// tracks — the same alpha-then-edges order as the centralized engine.
  /// `lhsLocal` is global-indexed but only this demand's entries are
  /// written.
  template <class U, class L>
  void applyRaise(const U& u, const L& lay, RaiseRule rule,
                  const PendingRaise& raise, std::vector<double>& lhsLocal) {
    if (raise.from == self) {
      alpha += raise.alphaIncrement;
      for (const InstanceId k : u.instancesOfDemand(self)) {
        lhsLocal[static_cast<std::size_t>(k)] += raise.alphaIncrement;
      }
    }
    for (const GlobalEdgeId e : lay.critical(raise.instance)) {
      const std::int32_t idx = trackedIndex(e);
      if (idx < 0) continue;
      beta[static_cast<std::size_t>(idx)] += raise.betaIncrement;
      for (const InstanceId k : ownOnEdge[static_cast<std::size_t>(idx)]) {
        const double factor =
            rule == RaiseRule::Narrow ? u.instance(k).height : 1.0;
        lhsLocal[static_cast<std::size_t>(k)] +=
            factor * raise.betaIncrement;
      }
    }
  }

  /// True iff this processor can accept its own instance `i` given its
  /// locally known edge loads — the exact capacity test of the
  /// centralized FeasibilityOracle.
  template <class U>
  bool capacityOk(const U& u, InstanceId i) const {
    const double h = u.instance(i).height;
    for (const GlobalEdgeId e : u.path(i)) {
      const std::int32_t idx = trackedIndex(e);
      checkThat(idx >= 0, "own path edge tracked", __FILE__, __LINE__);
      if (load[static_cast<std::size_t>(idx)] + h > 1.0 + kCapacityTolerance) {
        return false;
      }
    }
    return true;
  }

  /// Adds the load of an accepted instance on every tracked edge of its
  /// path (the accepter's own instance, or a neighbour's Accept message).
  template <class U>
  void addLoad(const U& u, InstanceId i) {
    const double h = u.instance(i).height;
    for (const GlobalEdgeId e : u.path(i)) {
      const std::int32_t idx = trackedIndex(e);
      if (idx < 0) continue;
      load[static_cast<std::size_t>(idx)] += h;
    }
  }
};

/// The whole simulation: per-processor contexts plus the ground-truth
/// duals used for the consistency audit. Round loops iterate active sets
/// (undecided instances, processors with non-empty inboxes); the
/// independent per-processor decisions of a round run as parallel shard
/// sections with merges by shard id, so results are bit-identical at any
/// thread count.
///
/// Templated on the universe/layering pair so one engine serves both the
/// static pool (InstanceUniverse + Layering) and the incrementally
/// maintained DynamicUniverse + DynamicLayeringView. Every query the
/// engine makes has identical semantics on the live restriction, so the
/// instantiations are bit-identical on the same warm-start set — the
/// dynamic_universe equivalence gate.
template <class U, class L>
class ProtocolEngine {
 public:
  ProtocolEngine(const U& universe, const L& layering, Transport& transport,
                 const DistributedOptions& options, const WarmStart& warm)
      : u_(universe),
        lay_(layering),
        opt_(options),
        tracing_(options.tracer, options.metrics, options.observer),
        obs_(options.observer != nullptr ? options.observer : &nullObserver_),
        net_(transport),
        runner_(std::max<std::int32_t>(1, options.threads)),
        plan_(makeStagePlan(SchedulePolicy::Staged, options.rule,
                            options.epsilon,
                            std::max<std::int32_t>(1, layering.maxCriticalSize),
                            options.hmin)),
        numProc_(universe.numDemands()),
        groundDual_(universe),
        groundLhs_(universe, options.rule) {
    // With a tracer or a registry attached, the adapter becomes the
    // engine's observer (forwarding to the caller's). Without either it
    // is bypassed entirely — the telemetry-off path is the seed path.
    if (tracing_.active()) {
      obs_ = &tracing_;
    }
    checkThat(u_.conflictsBuilt(), "conflicts built before protocol run",
              __FILE__, __LINE__);
    checkThat(net_.numProcessors() == numProc_,
              "one processor per demand", __FILE__, __LINE__);

    stepsPerStage_ = opt_.stepsPerStage;
    if (stepsPerStage_ == 0) {
      stepsPerStage_ =
          fixedScheduleStepsPerStage(u_.profitMax(), u_.profitMin());
    }
    scheduledSteps_ = static_cast<std::int64_t>(lay_.numGroups) *
                      plan_.numStages * stepsPerStage_;

    const std::int32_t numInst = u_.numInstances();
    members_.resize(static_cast<std::size_t>(lay_.numGroups));
    if (warm.activeInstances.empty()) {
      for (InstanceId i = 0; i < numInst; ++i) {
        members_[static_cast<std::size_t>(
                     lay_.group[static_cast<std::size_t>(i)])]
            .push_back(i);
        restricted_.push_back(i);
      }
    } else {
      // The restriction must be ascending so the group member lists come
      // out in the order a full enumeration would produce — the keystone
      // of bit-identity with runTwoPhaseRestricted.
      for (std::size_t idx = 0; idx < warm.activeInstances.size(); ++idx) {
        const InstanceId i = warm.activeInstances[idx];
        checkIndex(i, numInst, "warm-start active instance");
        checkThat(idx == 0 || warm.activeInstances[idx - 1] < i,
                  "warm-start active set sorted ascending", __FILE__,
                  __LINE__);
        members_[static_cast<std::size_t>(
                     lay_.group[static_cast<std::size_t>(i)])]
            .push_back(i);
        restricted_.push_back(i);
      }
    }

    if (warm.priorLhs.empty()) {
      lhsLocal_.assign(static_cast<std::size_t>(numInst), 0.0);
    } else {
      checkThat(warm.priorLhs.size() == static_cast<std::size_t>(numInst),
                "warm-start priorLhs covers every instance", __FILE__,
                __LINE__);
      lhsLocal_ = warm.priorLhs;
      groundLhs_.preload(warm.priorLhs);
    }
    misStatus_.assign(static_cast<std::size_t>(numInst), MisStatus::Inactive);
    priority_.assign(static_cast<std::size_t>(numInst), 0);

    // Crash-stop fault set.
    crashed_.assign(static_cast<std::size_t>(numProc_), std::uint8_t{0});
    for (const DemandId d : opt_.crashProcessors) {
      checkIndex(d, numProc_, "crashProcessors entry");
      if (crashed_[static_cast<std::size_t>(d)] == 0) {
        crashed_[static_cast<std::size_t>(d)] = 1;
        ++crashedCount_;
      }
    }

    // Per-processor contexts: independent, so built in parallel. Context
    // cost is proportional to the demand's instance count, so the plan
    // is weighted — a hot demand owning most of the pool's instances
    // gets its own shard instead of serializing a uniform one.
    contexts_.resize(static_cast<std::size_t>(numProc_));
    weightScratch_.resize(static_cast<std::size_t>(numProc_));
    for (DemandId p = 0; p < numProc_; ++p) {
      weightScratch_[static_cast<std::size_t>(p)] =
          static_cast<std::int64_t>(u_.instancesOfDemand(p).size());
    }
    runner_.planWeighted(weightScratch_, weightedPlan_);
    runner_.forShards(weightedPlan_, [&](std::int32_t shard) {
      const std::int64_t end = weightedPlan_.end(shard);
      for (std::int64_t p = weightedPlan_.begin(shard); p < end; ++p) {
        contexts_[static_cast<std::size_t>(p)].init(
            u_, static_cast<DemandId>(p));
      }
    });

    // Decision provenance (obs/ledger.hpp): with an ENABLED ledger the
    // engine keeps the global certificate state phase 2 consults to name
    // a rejection's blocker. Allocation is guarded — a null or disabled
    // ledger leaves the hot loop exactly on the seed path (the
    // zero-allocation gate in tests/provenance_test.cpp).
    ledgerOn_ = opt_.ledger != nullptr && opt_.ledger->enabled();
    if (ledgerOn_) {
      acceptedOfDemand_.assign(static_cast<std::size_t>(numProc_),
                               kNoInstance);
      firstLoaderOfEdge_.assign(groundDual_.numEdges(), kNoInstance);
      ledgerEdgeLoad_.assign(groundDual_.numEdges(), 0.0);
    }

    // Attach LAST: everything above can throw, and the destructor (which
    // detaches) only runs for fully constructed engines — attaching any
    // earlier could leave the caller-owned transport holding dangling
    // runner/telemetry pointers.
    net_.attachTelemetry(opt_.tracer, opt_.metrics);
    runner_.attachTelemetry(opt_.tracer, opt_.metrics);
    net_.attachRunner(&runner_);
  }

  ~ProtocolEngine() {
    net_.attachRunner(nullptr);
    net_.attachTelemetry(nullptr, nullptr);
  }

  DistributedResult run() {
    runPhase1();
    measureSlackness();
    auditLocalViews();
    runPhase2();

    DistributedResult result;
    std::sort(acceptOrder_.begin(), acceptOrder_.end());
    result.solution.instances = std::move(acceptOrder_);
    result.profit = profit_;
    result.dualObjective = groundDual_.objective();
    result.lambdaTarget = plan_.lambdaTarget;
    result.lambdaMeasured = lambdaMeasured_;
    result.dualUpperBound =
        lambdaMeasured_ > 0 ? result.dualObjective / lambdaMeasured_
                            : std::numeric_limits<double>::infinity();
    result.network = net_.stats();
    result.scheduledSteps = scheduledSteps_;
    result.activeSteps = activeSteps_;
    result.raises = raises_;
    result.crashedProcessors = crashedCount_;
    result.localViewsConsistent = localViewsConsistent_;
    result.raiseLog = std::move(raiseLog_);
    result.engineClaims = runner_.claims();
    result.engineSteals = runner_.steals();
    requireFeasible(u_, result.solution);
    return result;
  }

 private:
  DemandId owner(InstanceId i) const { return u_.instance(i).demand; }

  /// Same answer as InstanceUniverse::conflicting(v, w) for v != w, but
  /// O(log deg) via the prebuilt sorted adjacency instead of a path scan.
  bool conflictsWith(InstanceId v, InstanceId w) const {
    const auto adj = u_.conflictsOf(v);
    return std::binary_search(adj.begin(), adj.end(), w);
  }

  /// Alive during phase-1 tuple `tuple` (crashes hit at tuple start).
  bool aliveAt(DemandId p, std::int64_t tuple) const {
    return crashed_[static_cast<std::size_t>(p)] == 0 ||
           tuple < opt_.crashAtTuple;
  }

  /// Alive during phase 2: every listed processor is dead by then.
  bool aliveP2(DemandId p) const {
    return crashed_[static_cast<std::size_t>(p)] == 0;
  }

  /// Parallel order-preserving filter: shard outputs are concatenated by
  /// shard id, so `out` is exactly the serial filter of `in`.
  template <typename Pred>
  void filterInstances(const std::vector<InstanceId>& in,
                       std::vector<InstanceId>& out, Pred pred) {
    out.clear();
    const ParallelRunner::ShardPlan shardPlan =
        runner_.plan(static_cast<std::int64_t>(in.size()));
    if (shardPlan.numShards <= 1) {
      for (const InstanceId i : in) {
        if (pred(i)) out.push_back(i);
      }
      return;
    }
    if (shardLists_.size() < static_cast<std::size_t>(shardPlan.numShards)) {
      // Grow-only: shrinking would free per-shard buffer capacity that
      // the next (larger) stage reset would have to re-allocate.
      shardLists_.resize(static_cast<std::size_t>(shardPlan.numShards));
    }
    runner_.forShards(shardPlan, [&](std::int32_t shard) {
      auto& list = shardLists_[static_cast<std::size_t>(shard)];
      list.clear();
      const std::int64_t end = shardPlan.end(shard);
      for (std::int64_t idx = shardPlan.begin(shard); idx < end; ++idx) {
        const InstanceId i = in[static_cast<std::size_t>(idx)];
        if (pred(i)) list.push_back(i);
      }
    });
    for (std::int32_t shard = 0; shard < shardPlan.numShards; ++shard) {
      const auto& list = shardLists_[static_cast<std::size_t>(shard)];
      out.insert(out.end(), list.begin(), list.end());
    }
  }

  /// Runs fn(item) over a list in parallel shards. fn must write only
  /// item-owned state.
  template <typename T, typename Fn>
  void forEachParallel(const std::vector<T>& items, Fn fn) {
    const ParallelRunner::ShardPlan shardPlan =
        runner_.plan(static_cast<std::int64_t>(items.size()));
    runner_.forShards(shardPlan, [&](std::int32_t shard) {
      const std::int64_t end = shardPlan.end(shard);
      for (std::int64_t idx = shardPlan.begin(shard); idx < end; ++idx) {
        fn(items[static_cast<std::size_t>(idx)]);
      }
    });
  }

  /// forEachParallel with a cost-proportional shard plan: weightFn(item)
  /// estimates fn(item)'s cost, so one hot item (a processor holding
  /// most of the round's traffic) no longer serializes its whole shard's
  /// neighbors behind it. The partition is a pure performance knob —
  /// results are identical to forEachParallel by the shard-merge
  /// discipline. Scratch buffers are member-owned and grow-only, keeping
  /// the round hot loop allocation-free in steady state.
  template <typename T, typename WeightFn, typename Fn>
  void forEachParallelWeighted(const std::vector<T>& items, WeightFn weightFn,
                               Fn fn) {
    weightScratch_.clear();
    weightScratch_.reserve(items.size());
    for (const T& item : items) {
      weightScratch_.push_back(weightFn(item));
    }
    runner_.planWeighted(weightScratch_, weightedPlan_);
    runner_.forShards(weightedPlan_, [&](std::int32_t shard) {
      const std::int64_t end = weightedPlan_.end(shard);
      for (std::int64_t idx = weightedPlan_.begin(shard); idx < end; ++idx) {
        fn(items[static_cast<std::size_t>(idx)]);
      }
    });
  }

  void runPhase1() {
    std::int64_t tuple = 0;
    for (std::int32_t epoch = 0; epoch < lay_.numGroups; ++epoch) {
      obs_->onEpochBegin(epoch,
                         static_cast<std::int32_t>(
                             members_[static_cast<std::size_t>(epoch)].size()));
      for (std::int32_t stage = 1; stage <= plan_.numStages; ++stage) {
        const double target = plan_.stageTarget(stage);
        obs_->onStageBegin(epoch, stage, target);
        // The stage's active set: lhs only grows within a stage, so an
        // instance observed satisfied for this target never re-enters —
        // steps scan survivors, not the whole group.
        stageActive_ = members_[static_cast<std::size_t>(epoch)];
        for (std::int32_t step = 1; step <= stepsPerStage_; ++step) {
          runStep(epoch, stage, step, tuple, target);
          ++tuple;
        }
      }
    }
    obs_->onPhase1Complete(activeSteps_, raises_);
  }

  /// Reports crash-stop faults taking effect: fires onCrash once per
  /// crashed processor (ascending) the first time the schedule reaches a
  /// tuple at which they are dead. Phase 2 announces with
  /// tuple == scheduledSteps_ (the first pop) and `phase2` set, because
  /// every listed processor is dead there (aliveP2) even when
  /// crashAtTuple lies beyond the schedule.
  void announceCrashes(std::int64_t tuple, bool phase2 = false) {
    if (crashAnnounced_ || crashedCount_ == 0 ||
        (!phase2 && tuple < opt_.crashAtTuple)) {
      return;
    }
    crashAnnounced_ = true;
    for (DemandId p = 0; p < numProc_; ++p) {
      if (crashed_[static_cast<std::size_t>(p)] != 0) {
        obs_->onCrash(p, tuple);
        if (ledgerOn_) {
          LedgerEvent ev;
          ev.demand = p;
          ev.kind = LedgerEventKind::Crash;
          ev.tuple = tuple;
          opt_.ledger->record(ev);
        }
      }
    }
  }

  void runStep(std::int32_t epoch, std::int32_t stage, std::int32_t step,
               std::int64_t tuple, double target) {
    announceCrashes(tuple);
    const std::int32_t budget = opt_.misRoundBudget;

    // Each alive processor checks its surviving instances of the
    // scheduled group against the stage target (purely local knowledge).
    // Satisfied and crashed instances leave the active set for good.
    filterInstances(stageActive_, unsatisfied_, [&](InstanceId i) {
      if (!aliveAt(owner(i), tuple)) return false;
      const double p = u_.instance(i).profit;
      return lhsLocal_[static_cast<std::size_t>(i)] <
             target * p - kSatisfyTolerance * p;
    });
    stageActive_.swap(unsatisfied_);
    const std::vector<InstanceId>& unsatisfied = stageActive_;

    if (unsatisfied.empty()) {
      // The fixed schedule still spends the step's rounds; nobody
      // transmits. Run-to-completion MIS (budget <= 0) costs only the
      // raise round.
      net_.endSilentRounds(budget > 0 ? 2 * budget + 1 : 1);
      return;
    }

    obs_->onStepStart(epoch, stage, step,
                      static_cast<std::int32_t>(unsatisfied.size()));
    ++activeSteps_;
    const std::uint64_t stepSeed =
        keyedHash(opt_.seed, static_cast<std::uint64_t>(epoch),
                  static_cast<std::uint64_t>(stage),
                  static_cast<std::uint64_t>(step));

    lubyOverMessages(unsatisfied, stepSeed, budget);
    obs_->onMisComplete(tuple, lastLubyRounds_,
                        static_cast<std::int32_t>(misMembers_.size()));
    raiseRound(tuple, misMembers_);

    // Reset per-step Luby state.
    for (const InstanceId i : unsatisfied) {
      misStatus_[static_cast<std::size_t>(i)] = MisStatus::Inactive;
    }
  }

  /// Runs the step's MIS as messages: per Luby round, one communication
  /// round announcing undecided instances and one announcing joiners.
  /// Leaves the MIS in misMembers_, sorted ascending; charges exactly
  /// 2*budget rounds when a budget is set (silent once the MIS completes
  /// early). Round-B decisions and join-propagation are per-instance
  /// independent, so both run as parallel shard sections.
  void lubyOverMessages(const std::vector<InstanceId>& unsatisfied,
                        std::uint64_t stepSeed, std::int32_t budget) {
    for (const InstanceId i : unsatisfied) {
      misStatus_[static_cast<std::size_t>(i)] = MisStatus::Undecided;
    }
    undecided_ = unsatisfied;
    misMembers_.clear();
    lastLubyRounds_ = 0;

    while (!undecided_.empty() &&
           (budget <= 0 || lastLubyRounds_ < budget)) {
      ++lastLubyRounds_;
      const std::int32_t round = lastLubyRounds_;

      // Round A: every undecided instance announces itself.
      for (const InstanceId i : undecided_) {
        net_.broadcast({MessageKind::MisActive, owner(i), i, 0.0});
      }
      net_.endRound();

      // Priorities are seed-keyed hashes, so the receiver can evaluate
      // the sender's priority itself. Every round-A sender is undecided,
      // so caching priorities over the undecided set covers every
      // competitor the decisions below look at.
      forEachParallel(undecided_, [&](InstanceId v) {
        priority_[static_cast<std::size_t>(v)] =
            misPriority(stepSeed, round, v);
      });

      // Round B: each owner decides from its inbox whether its instance
      // beats every undecided conflicting competitor, then announces
      // joins.
      filterInstances(undecided_, joiners_, [&](InstanceId v) {
        const DemandId p = owner(v);
        const std::uint64_t pv = priority_[static_cast<std::size_t>(v)];
        for (const InstanceId w : u_.instancesOfDemand(p)) {
          if (w == v ||
              misStatus_[static_cast<std::size_t>(w)] != MisStatus::Undecided) {
            continue;
          }
          const std::uint64_t pw = priority_[static_cast<std::size_t>(w)];
          if (pw > pv || (pw == pv && w > v)) {
            return false;
          }
        }
        for (const Message& m : net_.inbox(p)) {
          if (m.kind != MessageKind::MisActive) continue;
          if (!conflictsWith(v, m.instance)) continue;
          const std::uint64_t pw =
              priority_[static_cast<std::size_t>(m.instance)];
          if (pw > pv || (pw == pv && m.instance > v)) {
            return false;
          }
        }
        return true;
      });
      for (const InstanceId v : joiners_) {
        net_.broadcast({MessageKind::MisJoin, owner(v), v, 0.0});
      }
      net_.endRound();

      // Apply joins: winners in; conflicting undecided out, discovered
      // locally for same-processor instances (joiners have distinct
      // owners, so these writes are disjoint) and via MisJoin messages
      // for neighbours.
      for (const InstanceId v : joiners_) {
        misStatus_[static_cast<std::size_t>(v)] = MisStatus::In;
        misMembers_.push_back(v);
        for (const InstanceId w : u_.instancesOfDemand(owner(v))) {
          if (misStatus_[static_cast<std::size_t>(w)] ==
              MisStatus::Undecided) {
            misStatus_[static_cast<std::size_t>(w)] = MisStatus::Out;
          }
        }
      }
      forEachParallel(undecided_, [&](InstanceId v) {
        if (misStatus_[static_cast<std::size_t>(v)] != MisStatus::Undecided) {
          return;
        }
        for (const Message& m : net_.inbox(owner(v))) {
          if (m.kind != MessageKind::MisJoin) continue;
          if (conflictsWith(v, m.instance)) {
            misStatus_[static_cast<std::size_t>(v)] = MisStatus::Out;
            return;
          }
        }
      });
      std::erase_if(undecided_, [&](InstanceId v) {
        return misStatus_[static_cast<std::size_t>(v)] != MisStatus::Undecided;
      });
    }

    if (budget > 0) {
      net_.endSilentRounds(
          2 * static_cast<std::int64_t>(budget - lastLubyRounds_));
    }
    std::sort(misMembers_.begin(), misMembers_.end());
  }

  /// The step's raise round: every MIS member's owner tightens its dual
  /// constraint and broadcasts the increments; every processor that
  /// received (or sent) a raise then applies them in canonical (sender)
  /// order so each local accumulator sees the exact sequence the
  /// centralized engine produces. Application is per-processor
  /// independent and runs parallel over the active processors only.
  void raiseRound(std::int64_t tuple,
                  const std::vector<InstanceId>& misMembers) {
    stepRaises_.clear();
    for (const InstanceId i : misMembers) {
      const DemandId p = owner(i);
      const InstanceRecord& rec = u_.instance(i);
      const double slack =
          rec.profit - lhsLocal_[static_cast<std::size_t>(i)];
      checkThat(slack > 0, "raised instance had positive slack", __FILE__,
                __LINE__);
      const auto critical = lay_.critical(i);
      const RaiseAmounts amounts =
          computeRaise(opt_.rule, u_, i, critical, slack);
      net_.broadcast(
          {MessageKind::DualRaise, p, i, amounts.betaIncrement});
      stepRaises_.push_back(
          {p, i, amounts.alphaIncrement, amounts.betaIncrement});
      if (opt_.recordRaiseLog) {
        raiseLog_.push_back(
            {tuple, i, amounts.alphaIncrement, amounts.betaIncrement});
      }
      obs_->onRaise(tuple, i, amounts.alphaIncrement);
      if (ledgerOn_) {
        LedgerEvent ev;
        ev.demand = p;
        ev.kind = LedgerEventKind::DualRaise;
        ev.instance = i;
        ev.tuple = tuple;
        ev.alphaIncrement = amounts.alphaIncrement;
        ev.betaIncrement = amounts.betaIncrement;
        opt_.ledger->record(ev);
      }
      ++raises_;
      // Ground truth, applied in the centralized engine's order.
      applyRaise(groundDual_, u_, i, critical, amounts);
      groundLhs_.onRaise(i, critical, amounts);
    }
    net_.endRound();
    if (!misMembers.empty()) {
      stackTuples_.push_back(tuple);
      stackSets_.push_back(misMembers);
    }

    // Active processors: non-empty inbox or an own raise. Everyone else
    // would apply nothing — the serial engine's full-processor scan is
    // equivalent but O(n) per round.
    activeProcs_.clear();
    net_.appendActiveInboxes(activeProcs_);
    for (const PendingRaise& r : stepRaises_) {
      activeProcs_.push_back(r.from);
    }
    std::sort(activeProcs_.begin(), activeProcs_.end());
    activeProcs_.erase(std::unique(activeProcs_.begin(), activeProcs_.end()),
                       activeProcs_.end());
    // Apply cost per processor is dominated by its inbox length (this
    // round's raise traffic — i.e. the step participants just observed),
    // so that feeds the weighted plan: a hotspot processor receiving
    // most of the raises becomes its own shard.
    forEachParallelWeighted(
        activeProcs_,
        [&](std::int32_t p) {
          return static_cast<std::int64_t>(net_.inbox(p).size());
        },
        [&](std::int32_t p) {
          if (!aliveAt(p, tuple)) return;
          applyRaisesLocally(p);
        });
  }

  /// Merges p's own raise with the received DualRaise messages in sender
  /// order (== ascending instance order, since instances are numbered
  /// demand-major) and applies them to p's context.
  void applyRaisesLocally(DemandId p) {
    // stepRaises_ is sorted by sender (misMembers_ ascending, one
    // instance per demand), so the own raise is a binary search away.
    const PendingRaise* own = nullptr;
    const auto it = std::lower_bound(
        stepRaises_.begin(), stepRaises_.end(), p,
        [](const PendingRaise& r, DemandId d) { return r.from < d; });
    if (it != stepRaises_.end() && it->from == p) {
      own = &*it;
    }
    ProcessorContext& context = contexts_[static_cast<std::size_t>(p)];
    bool ownApplied = own == nullptr;
    for (const Message& m : net_.inbox(p)) {
      if (m.kind != MessageKind::DualRaise) continue;
      if (!ownApplied && own->from < m.from) {
        context.applyRaise(u_, lay_, opt_.rule, *own, lhsLocal_);
        ownApplied = true;
      }
      context.applyRaise(u_, lay_, opt_.rule,
                         {m.from, m.instance, 0.0, m.value}, lhsLocal_);
    }
    if (!ownApplied) {
      context.applyRaise(u_, lay_, opt_.rule, *own, lhsLocal_);
    }
  }

  void measureSlackness() {
    double lambda = std::numeric_limits<double>::infinity();
    bool any = false;
    for (const InstanceId i : restricted_) {
      if (!aliveP2(owner(i))) continue;
      any = true;
      lambda = std::min(lambda,
                        groundLhs_.lhs(i) / u_.instance(i).profit);
    }
    lambdaMeasured_ = any ? lambda : 1.0;
  }

  /// Exact-equality audit of every surviving processor's local dual view
  /// against the ground truth of the raises that actually happened.
  void auditLocalViews() {
    localViewsConsistent_ = true;
    for (DemandId p = 0; p < numProc_; ++p) {
      if (!aliveP2(p)) continue;
      const ProcessorContext& context =
          contexts_[static_cast<std::size_t>(p)];
      if (context.alpha != groundDual_.alpha(p)) {
        localViewsConsistent_ = false;
      }
      for (std::size_t idx = 0; idx < context.tracked.size(); ++idx) {
        if (context.beta[idx] != groundDual_.beta(context.tracked[idx])) {
          localViewsConsistent_ = false;
        }
      }
      for (const InstanceId k : u_.instancesOfDemand(p)) {
        if (lhsLocal_[static_cast<std::size_t>(k)] != groundLhs_.lhs(k)) {
          localViewsConsistent_ = false;
        }
      }
    }
  }

  /// Emits a Rejected ledger event carrying the blocking dual
  /// certificate: the already-admitted instance whose load (or prior
  /// admission of the same demand) blocks this pop. The blocker is
  /// lambda-satisfied by phase 1, so its replayed LHS clears
  /// lambdaMeasured * profit — the paper's dual explanation of the
  /// rejection (tests/provenance_test.cpp replays and checks it).
  void ledgerReject(std::int64_t tuple, InstanceId i, DemandId p,
                    RejectReason reason) {
    LedgerEvent ev;
    ev.demand = p;
    ev.kind = LedgerEventKind::Rejected;
    ev.instance = i;
    ev.tuple = tuple;
    ev.reason = reason;
    if (reason == RejectReason::DemandSatisfied) {
      ev.certInstance = acceptedOfDemand_[static_cast<std::size_t>(p)];
    } else if (reason == RejectReason::CapacityExceeded) {
      // The global loads dominate the owner's local view (they include
      // every accept, the view only the ones it has heard), so the
      // locally blocking edge is saturated here too: the scan always
      // finds a blocker.
      const double h = u_.instance(i).height;
      for (const GlobalEdgeId e : u_.path(i)) {
        if (ledgerEdgeLoad_[static_cast<std::size_t>(e)] + h >
            1.0 + kCapacityTolerance) {
          ev.certInstance = firstLoaderOfEdge_[static_cast<std::size_t>(e)];
          break;
        }
      }
    }
    if (ev.certInstance != kNoInstance) {
      ev.certLhs = groundLhs_.lhs(ev.certInstance);
      ev.certThreshold =
          lambdaMeasured_ * u_.instance(ev.certInstance).profit;
    }
    opt_.ledger->record(ev);
  }

  /// Records an admission and maintains the certificate state: the
  /// demand's admitted instance and the first loader of every path edge.
  void ledgerAccept(std::int64_t tuple, InstanceId i, DemandId p) {
    acceptedOfDemand_[static_cast<std::size_t>(p)] = i;
    const double h = u_.instance(i).height;
    for (const GlobalEdgeId e : u_.path(i)) {
      if (firstLoaderOfEdge_[static_cast<std::size_t>(e)] == kNoInstance) {
        firstLoaderOfEdge_[static_cast<std::size_t>(e)] = i;
      }
      ledgerEdgeLoad_[static_cast<std::size_t>(e)] += h;
    }
    LedgerEvent ev;
    ev.demand = p;
    ev.kind = LedgerEventKind::Admitted;
    ev.instance = i;
    ev.tuple = tuple;
    opt_.ledger->record(ev);
  }

  void runPhase2() {
    announceCrashes(scheduledSteps_, /*phase2=*/true);
    std::int64_t accepts = 0;
    std::int64_t rejects = 0;
    std::vector<std::uint8_t> demandUsed(static_cast<std::size_t>(numProc_),
                                         0);
    std::size_t sp = stackTuples_.size();
    for (std::int64_t t = scheduledSteps_ - 1; t >= 0; --t) {
      if (sp > 0 && stackTuples_[sp - 1] == t) {
        --sp;
        for (const InstanceId i : stackSets_[sp]) {
          const DemandId p = owner(i);
          if (!aliveP2(p)) {
            obs_->onReject(t, i, RejectReason::OwnerCrashed);
            if (ledgerOn_) ledgerReject(t, i, p, RejectReason::OwnerCrashed);
            ++rejects;
            continue;
          }
          if (demandUsed[static_cast<std::size_t>(p)] != 0) {
            obs_->onReject(t, i, RejectReason::DemandSatisfied);
            if (ledgerOn_) {
              ledgerReject(t, i, p, RejectReason::DemandSatisfied);
            }
            ++rejects;
            continue;
          }
          ProcessorContext& context = contexts_[static_cast<std::size_t>(p)];
          if (!context.capacityOk(u_, i)) {
            obs_->onReject(t, i, RejectReason::CapacityExceeded);
            if (ledgerOn_) {
              ledgerReject(t, i, p, RejectReason::CapacityExceeded);
            }
            ++rejects;
            continue;
          }
          demandUsed[static_cast<std::size_t>(p)] = 1;
          context.addLoad(u_, i);
          net_.broadcast({MessageKind::Accept, p, i, 0.0});
          obs_->onAccept(t, i);
          if (ledgerOn_) ledgerAccept(t, i, p);
          ++accepts;
          acceptOrder_.push_back(i);
          profit_ += u_.instance(i).profit;
        }
      }
      net_.endRound();
      // Only processors that received an Accept have loads to update.
      activeProcs_.clear();
      net_.appendActiveInboxes(activeProcs_);
      forEachParallelWeighted(
          activeProcs_,
          [&](std::int32_t p) {
            return static_cast<std::int64_t>(net_.inbox(p).size());
          },
          [&](std::int32_t p) {
            if (!aliveP2(p)) return;
            ProcessorContext& context =
                contexts_[static_cast<std::size_t>(p)];
            for (const Message& m : net_.inbox(p)) {
              if (m.kind != MessageKind::Accept) continue;
              context.addLoad(u_, m.instance);
            }
          });
    }
    obs_->onPhase2Complete(accepts, rejects);
  }

  const U& u_;
  const L& lay_;
  DistributedOptions opt_;
  TracingObserver tracing_;  ///< telemetry adapter (inactive when unused)
  NullObserver nullObserver_;
  ProtocolObserver* obs_;
  Transport& net_;
  ParallelRunner runner_;
  StagePlan plan_;
  std::int32_t numProc_ = 0;
  std::int32_t stepsPerStage_ = 0;
  std::int64_t scheduledSteps_ = 0;
  std::vector<std::vector<InstanceId>> members_;
  /// The instances this run may raise (ascending) — everything on a full
  /// run, the warm-start restriction otherwise. Slackness is measured
  /// over exactly this set.
  std::vector<InstanceId> restricted_;

  // Per-processor contexts plus the owner-indexed lhs views (entry i is
  // written only by owner(i)'s context).
  std::vector<ProcessorContext> contexts_;
  std::vector<double> lhsLocal_;

  // Decision provenance (enabled ledger only): global certificate state
  // phase 2 consults to name a rejection's blocker. Empty otherwise.
  bool ledgerOn_ = false;
  std::vector<InstanceId> acceptedOfDemand_;
  std::vector<InstanceId> firstLoaderOfEdge_;
  std::vector<double> ledgerEdgeLoad_;

  // Ground truth for the audit and the reported dual objective.
  DualState groundDual_;
  BasicLhsTracker<U> groundLhs_;

  // Faults (uint8, not vector<bool>: read concurrently from shards).
  std::vector<std::uint8_t> crashed_;
  std::int32_t crashedCount_ = 0;
  bool crashAnnounced_ = false;  ///< onCrash fired (once per run)

  // Per-step scratch, reused across steps to keep the hot loop
  // allocation-free after warmup.
  std::vector<MisStatus> misStatus_;
  std::vector<std::uint64_t> priority_;  ///< per instance, current round
  std::vector<InstanceId> stageActive_;
  std::vector<InstanceId> unsatisfied_;
  std::vector<InstanceId> undecided_;
  std::vector<InstanceId> joiners_;
  std::vector<InstanceId> misMembers_;
  std::vector<std::vector<InstanceId>> shardLists_;
  std::vector<std::int32_t> activeProcs_;
  /// Scratch for the weighted shard plans (grow-only; reused per round).
  std::vector<std::int64_t> weightScratch_;
  ParallelRunner::ShardPlan weightedPlan_;
  std::vector<PendingRaise> stepRaises_;
  std::int32_t lastLubyRounds_ = 0;

  // Phase-1 stack (push order == tuple order; sets sorted ascending).
  std::vector<std::int64_t> stackTuples_;
  std::vector<std::vector<InstanceId>> stackSets_;
  std::vector<DualRaiseRecord> raiseLog_;  ///< under recordRaiseLog only

  // Run accounting.
  std::int64_t activeSteps_ = 0;
  std::int64_t raises_ = 0;
  double lambdaMeasured_ = 0;
  bool localViewsConsistent_ = false;
  std::vector<InstanceId> acceptOrder_;
  double profit_ = 0;
};

}  // namespace

DistributedResult runDistributedOverTransport(
    const InstanceUniverse& universe, const Layering& layering,
    Transport& transport, const DistributedOptions& options) {
  return runDistributedWarmStart(universe, layering, transport, options,
                                 WarmStart{});
}

DistributedResult runDistributedWarmStart(const InstanceUniverse& universe,
                                          const Layering& layering,
                                          Transport& transport,
                                          const DistributedOptions& options,
                                          const WarmStart& warm) {
  ProtocolEngine<InstanceUniverse, Layering> engine(universe, layering,
                                                    transport, options, warm);
  return engine.run();
}

DistributedResult runDistributedWarmStart(const DynamicUniverse& universe,
                                          Transport& transport,
                                          const DistributedOptions& options,
                                          const WarmStart& warm) {
  checkThat(!warm.activeInstances.empty(),
            "dynamic warm start names its live active set", __FILE__,
            __LINE__);
  const DynamicLayeringView layering = universe.layeringView();
  ProtocolEngine<DynamicUniverse, DynamicLayeringView> engine(
      universe, layering, transport, options, warm);
  return engine.run();
}

PreparedRun prepareUnitTreeRun(const TreeProblem& problem) {
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  Layering layering = buildTreeLayering(problem, universe).layering;
  return {std::move(universe), std::move(layering),
          communicationGraph(problem.access, problem.numNetworks())};
}

PreparedRun prepareUnitLineRun(const LineProblem& problem) {
  InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  universe.buildConflicts();
  Layering layering = buildLineLayering(universe);
  return {std::move(universe), std::move(layering),
          communicationGraph(problem.access, problem.numResources)};
}

DistributedResult runDistributedUnitTree(const TreeProblem& problem,
                                         const DistributedOptions& options) {
  PreparedRun run = prepareUnitTreeRun(problem);
  SimNetwork bus(std::move(run.adjacency));
  return runDistributedOverTransport(run.universe, run.layering, bus,
                                     options);
}

DistributedResult runDistributedUnitLine(const LineProblem& problem,
                                         const DistributedOptions& options) {
  PreparedRun run = prepareUnitLineRun(problem);
  SimNetwork bus(std::move(run.adjacency));
  return runDistributedOverTransport(run.universe, run.layering, bus,
                                     options);
}

}  // namespace treesched
