// Distributed implementation of the two-phase framework (paper §5) over
// simulated message passing.
//
// Every processor owns one demand and sees the world only through O(M)
// messages from neighbours sharing a network. Phase 1 follows the *fixed
// global schedule*: every processor walks the same (epoch, stage, step)
// tuples; each step runs B Luby rounds of MIS over the unsatisfied
// instances of the scheduled group (2 communication rounds per Luby round:
// one to announce undecided instances, one to announce joiners) and one
// raise round in which MIS members broadcast their dual increments — 2B+1
// rounds per step. Phase 2 pops the tuples in reverse, one communication
// round each, greedily accepting pushed instances and broadcasting accepts.
//
// Under the same seed, round budget and steps-per-stage the run is
// bit-identical to the centralized `runTwoPhase` with
// `FrameworkConfig::fixedSchedule` (see two_phase.hpp): priorities are
// seed-keyed hashes, inboxes are consumed in canonical order, and every
// floating-point accumulation happens in the same sequence on both sides.
//
// Beyond the paper's reliable-processor model the simulator injects
// crash-stop faults: listed processors fall silent from a given schedule
// tuple onward (and stay dead through phase 2). Survivors keep exchanging
// messages and must still produce a feasible schedule with consistent
// local dual views.
//
// Execution engine: per-processor state lives in reentrant
// ProcessorContexts with no hidden shared state, rounds iterate per-step
// active sets (only undecided instances / processors that received
// messages) instead of scanning all processors, and the independent
// per-processor decisions of a round run on a fixed thread pool
// (engine/parallel_runner.hpp) when DistributedOptions::threads > 1 —
// with bit-identical results at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/line_problem.hpp"
#include "core/solution.hpp"
#include "core/tree_problem.hpp"
#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "dist/observer.hpp"
#include "framework/raise_policy.hpp"
#include "net/transport.hpp"

namespace treesched {

class Tracer;
class MetricsRegistry;
class LedgerSink;

/// Legacy per-layer view: new code builds a layered SchedulerConfig
/// (policy/config.hpp) and projects with distributedOptions(); the one
/// field-by-field mapping lives there.
struct DistributedOptions {
  double epsilon = 0.1;  ///< staged plan: lambda target = 1 - eps
  RaiseRule rule = RaiseRule::Unit;
  double hmin = 1.0;       ///< min height, used by the narrow staged plan
  std::uint64_t seed = 1;  ///< drives MIS priorities (deterministic)
  /// Worker threads for the intra-round parallel sections (MIS decisions,
  /// raise/accept application, inbox delivery). The result is bit-identical
  /// at ANY value — shard merges are by shard id, never by thread
  /// completion order — so 1 (the serial engine) is the reference and
  /// higher values are pure wall-clock (tests/parallel_equivalence_test).
  std::int32_t threads = 1;
  /// Luby rounds per step; <= 0 runs each MIS to completion (maximal).
  std::int32_t misRoundBudget = 0;
  /// Steps per stage; 0 derives c*log(pmax/pmin) exactly like the
  /// centralized engine under fixedSchedule.
  std::int32_t stepsPerStage = 0;
  /// Crash-stop fault injection: these processors (demand ids) fall silent
  /// at the start of schedule tuple `crashAtTuple` (0-based global step
  /// index) and remain dead for the rest of the run, including phase 2.
  /// A value past the last tuple crashes them at the start of phase 2.
  /// Empty list: no faults.
  std::vector<DemandId> crashProcessors;
  std::int64_t crashAtTuple = 0;
  /// Records every phase-1 raise into DistributedResult::raiseLog (the
  /// online incremental re-solver replays it into its persistent duals).
  /// Off by default: the log grows with the raise count.
  bool recordRaiseLog = false;
  /// Optional event hooks; nullptr observes nothing.
  ProtocolObserver* observer = nullptr;
  /// Telemetry plane (src/obs/): when set, the engine wraps `observer`
  /// in a TracingObserver feeding trace spans / registry metrics, and
  /// attaches both to the transport and the thread pool. Strictly
  /// read-only observation — attaching either never changes the
  /// schedule (the bit-identity gates run with live sinks attached).
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Decision provenance ledger (obs/ledger.hpp): when set AND enabled,
  /// the engine records dual raises, phase-2 verdicts (rejections carry
  /// the blocking dual certificate) and crash events. Same read-only
  /// contract as the tracer; a disabled sink costs nothing
  /// (tests/provenance_test.cpp gates both).
  LedgerSink* ledger = nullptr;
};

/// One phase-1 raise as executed, in raise order. Raises of one schedule
/// tuple share the tuple index and form one stack set (members ascending),
/// so the phase-1 stack is recoverable from the log by grouping on
/// `tuple`.
struct DualRaiseRecord {
  std::int64_t tuple = 0;
  InstanceId instance = kNoInstance;
  double alphaIncrement = 0;
  double betaIncrement = 0;
};

/// Prior dual state + restricted active set for an incremental epoch
/// re-solve (src/online/). The protocol raises only `activeInstances`
/// (phase 1) and accepts only from the raise sets it pushed itself
/// (phase 2); `priorLhs` warm-starts every dual-constraint LHS from the
/// surviving duals of the previous solution, so an instance already
/// lambda-satisfied by old raises is never touched again.
struct WarmStart {
  /// Instances the run may raise, sorted ascending. Empty = every
  /// instance (the classic full run).
  std::vector<InstanceId> activeInstances;
  /// Per-instance prior LHS, indexed by InstanceId over the whole
  /// universe. Empty = all zeros (cold start).
  std::vector<double> priorLhs;
};

struct DistributedResult {
  /// Accepted instances, sorted ascending (collection order is by
  /// processor, not meaningful distributively).
  Solution solution;
  double profit = 0;
  double dualObjective = 0;   ///< val(alpha, beta) over all raises
  double dualUpperBound = 0;  ///< val / lambdaMeasured >= p(OPT)
  double lambdaTarget = 0;
  /// Min over surviving instances of lhs / p after phase 1.
  double lambdaMeasured = 0;
  NetworkStats network;  ///< round/message/payload accounting
  /// Schedule size: every run executes exactly this many phase-1 tuples
  /// (and the same number of phase-2 pop rounds).
  std::int64_t scheduledSteps = 0;
  /// Tuples whose group had unsatisfied instances (observed steps).
  std::int64_t activeSteps = 0;
  std::int64_t raises = 0;
  std::int32_t crashedProcessors = 0;
  /// True iff every surviving processor's local alpha/beta/lhs view is
  /// exactly equal to the ground-truth duals of the raises that happened.
  bool localViewsConsistent = false;
  /// Every phase-1 raise in execution order; filled only under
  /// DistributedOptions::recordRaiseLog.
  std::vector<DualRaiseRecord> raiseLog;
  /// Shard-claim traffic from the run's ParallelRunner: shards executed
  /// by their owning participant vs. stolen from another participant's
  /// block. Accounting only — never feeds back into the schedule.
  std::int64_t engineClaims = 0;
  std::int64_t engineSteals = 0;
};

/// Runs the protocol on a tree problem: builds the instance universe, the
/// ideal tree layering and the communication graph, then simulates both
/// phases over the round-synchronous bus. The problem is validated by the
/// universe builder.
DistributedResult runDistributedUnitTree(
    const TreeProblem& problem, const DistributedOptions& options = {});

/// Runs the protocol on a line problem with the §7 length layering.
DistributedResult runDistributedUnitLine(
    const LineProblem& problem, const DistributedOptions& options = {});

/// Runs both phases over an arbitrary transport (net/transport.hpp). The
/// transport must expose one endpoint per demand of the universe, over
/// the communication graph of the problem. Any transport honouring the
/// Transport delivery contract yields a run bit-identical to the
/// round-synchronous bus — this is the entry point the asynchronous
/// runner (net/runner.hpp) uses.
DistributedResult runDistributedOverTransport(
    const InstanceUniverse& universe, const Layering& layering,
    Transport& transport, const DistributedOptions& options = {});

/// Warm-started restricted run (src/online/): like
/// runDistributedOverTransport, but phase 1 walks only
/// `warm.activeInstances` with LHS warm-started from `warm.priorLhs`.
/// With an empty WarmStart this IS runDistributedOverTransport; with a
/// restriction and fixedSchedule-compatible options it is bit-identical
/// to runTwoPhaseRestricted on the same active set — the incremental
/// re-solver's equivalence obligation.
DistributedResult runDistributedWarmStart(const InstanceUniverse& universe,
                                          const Layering& layering,
                                          Transport& transport,
                                          const DistributedOptions& options,
                                          const WarmStart& warm);

class DynamicUniverse;

/// Warm-started restricted run over a DynamicUniverse: the incremental
/// universe carries its own layering (DynamicLayeringView), so no
/// pool-sized Layering is materialized. `warm.activeInstances` must be
/// non-empty and name live instances only — a dynamic universe has no
/// "every pool instance" enumeration to fall back to. Bit-identical to
/// the static overload on the live restriction (the dynamic_universe
/// equivalence gate).
DistributedResult runDistributedWarmStart(const DynamicUniverse& universe,
                                          Transport& transport,
                                          const DistributedOptions& options,
                                          const WarmStart& warm);

/// Everything a runner needs before choosing a transport: the validated
/// universe (conflicts built), the layering and the communication graph.
/// Shared by the synchronous and asynchronous entry points so their
/// setups can never diverge.
struct PreparedRun {
  InstanceUniverse universe;
  Layering layering;
  std::vector<std::vector<std::int32_t>> adjacency;
};

PreparedRun prepareUnitTreeRun(const TreeProblem& problem);
PreparedRun prepareUnitLineRun(const LineProblem& problem);

}  // namespace treesched
