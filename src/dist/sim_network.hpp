// Round-synchronous simulated message passing (paper §5).
//
// The simulator models the synchronous CONGEST-style setting of the paper:
// computation proceeds in global rounds; a message broadcast in round r is
// delivered to every neighbour's mailbox at the end of the round and can be
// read in round r+1. Inboxes are sorted canonically (sender, instance) so
// that every processor consumes messages in a deterministic order — the
// keystone of bit-identical equivalence with the centralized engine.
//
// Delivery runs over the flat MessagePlane (engine/message_plane.hpp):
// broadcasts stage rows into preallocated SoA columns and the round
// boundary counting-sorts them into contiguous per-processor inbox
// segments — the round hot loop performs no per-message heap allocation.
//
// SimNetwork is the reliable reference implementation of the Transport
// interface (net/transport.hpp); the asynchronous lossy transport
// (net/synchronizer.hpp) must be observationally equivalent to it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dist/message.hpp"
#include "engine/message_plane.hpp"
#include "net/transport.hpp"

namespace treesched {

class Counter;

/// Deterministic message bus over an undirected communication graph.
///
/// Construction validates the adjacency (symmetric, loop-free, in-range,
/// duplicate-free) and throws CheckError otherwise. The graph is live:
/// SimNetwork is the reference implementation of the MutableTopology
/// capability (net/transport.hpp) alongside the Transport contract.
class SimNetwork : public Transport, public MutableTopology {
 public:
  explicit SimNetwork(std::vector<std::vector<std::int32_t>> adjacency);

  std::int32_t numProcessors() const override {
    return static_cast<std::int32_t>(adjacency_.size());
  }

  std::span<const std::int32_t> neighbors(std::int32_t p) const override;

  /// Queues `message` for delivery to every neighbour of `message.from`
  /// at the end of the current round. The per-neighbour fan-out is
  /// deferred to the round boundary (MessagePlane::stageFanout), where it
  /// expands in parallel when a runner is attached.
  void broadcast(const Message& message) override;

  /// Ends the current round: delivers all queued messages into the
  /// recipients' inboxes (sorted canonically) and updates the stats.
  void endRound() override;

  /// Advances `count` rounds in which no processor transmits. Inboxes are
  /// cleared; busyRounds is unchanged.
  void endSilentRounds(std::int64_t count) override;

  /// Messages delivered to `p` by the last endRound().
  std::span<const Message> inbox(std::int32_t p) const override;

  void appendActiveInboxes(std::vector<std::int32_t>& out) const override;

  void attachRunner(ParallelRunner* runner) override {
    plane_.attachRunner(runner);
  }

  /// Publishes net.{rounds,busy_rounds,messages} counters into `metrics`
  /// and emits a "deliver" instant per busy round through `tracer`.
  /// Instruments are resolved here, once; the round hot loop stays
  /// allocation-free.
  void attachTelemetry(Tracer* tracer, MetricsRegistry* metrics) override;

  const NetworkStats& stats() const override { return stats_; }

  // ---- MutableTopology (the online churn engine, src/online/) ----
  //
  // Demands arrive and depart on a *running* bus: the plane, the stats
  // and the untouched adjacency lists all persist, so consecutive epoch
  // re-solves share one warmed-up transport. Both calls require a round
  // boundary (no staged traffic).

  /// Attaches demand `p` (currently isolated) with the given sorted,
  /// duplicate-free neighbour list; every neighbour's list gains `p`.
  void connectDemand(std::int32_t p,
                     std::span<const std::int32_t> neighbors) override;

  /// Detaches demand `p`: removes every edge of `p` (both sides). The
  /// processor stays addressable — it simply has no neighbours, exactly
  /// like a demand that has departed.
  void disconnectDemand(std::int32_t p) override;

  std::int32_t numDemands() const override { return numProcessors(); }

  std::span<const std::int32_t> currentNeighbors(
      std::int32_t demand) const override {
    return neighbors(demand);
  }

 private:
  std::vector<std::vector<std::int32_t>> adjacency_;
  MessagePlane plane_;
  NetworkStats stats_;

  // Telemetry plane (null when detached).
  Tracer* tracer_ = nullptr;
  bool trace_ = false;  ///< tracer present and enabled
  Counter* roundsCtr_ = nullptr;
  Counter* busyRoundsCtr_ = nullptr;
  Counter* messagesCtr_ = nullptr;
};

/// The protocol's communication graph: processors (demands) are adjacent
/// iff they share an accessible network/resource (paper §5: neighbours can
/// exchange messages because their demands may compete for edges of that
/// network). `access[d]` lists the networks demand d may use; ids must lie
/// in [0, numNetworks). Adjacency lists come back sorted and duplicate-free.
std::vector<std::vector<std::int32_t>> communicationGraph(
    const std::vector<std::vector<std::int32_t>>& access,
    std::int32_t numNetworks);

}  // namespace treesched
