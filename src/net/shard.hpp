// Sharded placement: many demands per simulated processor.
//
// The paper identifies processors with demands (one each); to scale the
// simulator to much larger instances, a ShardPlacement maps the m demands
// onto a smaller set of physical processors. Messages between demands
// hosted on the same processor are local memory operations; only
// inter-processor traffic touches the (lossy, latency-modelled) wire.
#pragma once

#include <cstdint>
#include <vector>

#include "core/demand.hpp"

namespace treesched {

enum class ShardStrategy : std::uint8_t {
  /// Demand d lives on processor d % numProcessors.
  RoundRobin,
  /// Demands are ordered by their smallest accessible network id and cut
  /// into contiguous blocks, so demands competing for the same network
  /// tend to share a processor and their chatter stays off the wire.
  Locality,
};

/// A total map of demands onto physical processors: every demand is placed
/// on exactly one processor (build() validates the partition).
struct ShardPlacement {
  std::int32_t numProcessors = 0;
  std::vector<std::int32_t> processorOfDemand;      ///< demand -> processor
  std::vector<std::vector<DemandId>> demandsOfProcessor;

  std::int32_t numDemands() const {
    return static_cast<std::int32_t>(processorOfDemand.size());
  }

  /// One demand per processor — the paper's model, and the placement the
  /// synchronizer uses when no sharding is requested.
  static ShardPlacement identity(std::int32_t numDemands);

  /// Places `access.size()` demands onto `numProcessors` processors.
  /// `access[d]` lists the networks demand d may use (used by Locality;
  /// RoundRobin ignores the contents). numProcessors is clamped to the
  /// demand count; at least 1 processor is required.
  static ShardPlacement build(
      ShardStrategy strategy,
      const std::vector<std::vector<std::int32_t>>& access,
      std::int32_t numProcessors);
};

/// Collapses a demand-level communication graph to the processor level:
/// processors P, Q are adjacent iff some demand on P is adjacent to some
/// demand on Q (P != Q). Lists come back sorted and duplicate-free.
std::vector<std::vector<std::int32_t>> shardAdjacency(
    const std::vector<std::vector<std::int32_t>>& demandAdjacency,
    const ShardPlacement& placement);

}  // namespace treesched
