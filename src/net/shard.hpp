// Sharded placement: many demands per simulated processor.
//
// The paper identifies processors with demands (one each); to scale the
// simulator to much larger instances, a ShardPlacement maps the m demands
// onto a smaller set of physical processors. Messages between demands
// hosted on the same processor are local memory operations; only
// inter-processor traffic touches the (lossy, latency-modelled) wire.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/demand.hpp"

namespace treesched {

enum class ShardStrategy : std::uint8_t {
  /// Demand d lives on processor d % numProcessors.
  RoundRobin,
  /// Demands are ordered by their smallest accessible network id and cut
  /// into contiguous blocks, so demands competing for the same network
  /// tend to share a processor and their chatter stays off the wire.
  Locality,
};

/// A map of demands onto physical processors. Placements built by
/// identity()/build() are total (every demand placed — validated); a
/// livePool() placement starts empty and demands are placed/removed as
/// they arrive and depart (the online churn engine's sharded transport).
struct ShardPlacement {
  /// processorOfDemand value of a demand not currently hosted anywhere;
  /// also the tombstone marker inside demandsOfProcessor lists.
  static constexpr std::int32_t kUnplaced = -1;

  std::int32_t numProcessors = 0;
  /// demand -> processor; kUnplaced when the demand is not hosted.
  std::vector<std::int32_t> processorOfDemand;
  /// Hosted demands per processor. Live placements tombstone departures
  /// in place (entry == kUnplaced) and compact periodically; consumers
  /// iterating the lists must skip tombstones.
  std::vector<std::vector<DemandId>> demandsOfProcessor;

  std::int32_t numDemands() const {
    return static_cast<std::int32_t>(processorOfDemand.size());
  }

  /// One demand per processor — the paper's model, and the placement the
  /// synchronizer uses when no sharding is requested.
  static ShardPlacement identity(std::int32_t numDemands);

  /// Places `access.size()` demands onto `numProcessors` processors.
  /// `access[d]` lists the networks demand d may use (used by Locality;
  /// RoundRobin ignores the contents). numProcessors is clamped to the
  /// demand count; at least 1 processor is required.
  static ShardPlacement build(
      ShardStrategy strategy,
      const std::vector<std::vector<std::int32_t>>& access,
      std::int32_t numProcessors);

  // ---- Live shard membership (the online churn engine) -----------------
  //
  // A live pool starts with every demand unplaced. Arrivals are placed
  // locality-aware: the first live demand of a home network anchors that
  // network to the then-least-loaded processor, and later arrivals
  // sharing the network join it (their chatter stays off the wire) until
  // its last live demand departs and the anchor is released. Departures
  // are tombstoned in demandsOfProcessor and compacted away once they
  // outnumber the live entries.

  /// An all-unplaced placement over `access.size()` pool demands and
  /// `numProcessors` processors, with per-demand home networks (smallest
  /// accessible id) precomputed for locality-aware arrival placement.
  static ShardPlacement livePool(
      const std::vector<std::vector<std::int32_t>>& access,
      std::int32_t numProcessors);

  bool isPlaced(DemandId d) const {
    return processorOfDemand[static_cast<std::size_t>(d)] != kUnplaced;
  }

  /// Places an unplaced demand (live pools only) and returns its
  /// processor: the home-network anchor when one is live, else the
  /// least-loaded processor by weighted load (lowest id on ties), which
  /// then anchors the network.
  std::int32_t placeDemand(DemandId d);

  /// Sets demand `d`'s load weight (live pools only; default 1). The
  /// online solver threads each demand's live instance count through
  /// here, so "load" means instances hosted, not demands hosted. A
  /// weight change while `d` is placed moves its processor's weighted
  /// load immediately. Weights must be >= 1 (a live demand always costs
  /// at least its endpoint).
  void setDemandWeight(DemandId d, std::int64_t weight);

  std::int64_t demandWeight(DemandId d) const {
    return weightOfDemand[static_cast<std::size_t>(d)];
  }

  /// Weighted live load hosted by processor `p` (sum of hosted demand
  /// weights; equals liveDemandCount while every weight is 1).
  std::int64_t weightedLoad(std::int32_t p) const {
    return weightedLoadOfProcessor[static_cast<std::size_t>(p)];
  }

  /// Tombstones a placed demand (live pools only) and releases its
  /// home-network anchor reference; compacts the processor's hosted list
  /// when tombstones outnumber live entries.
  void removeDemand(DemandId d);

  /// Erases the tombstones of processor `p`'s hosted list eagerly.
  void compactProcessor(std::int32_t p);

  // ---- Epoch-boundary hot-shard rebalancing ----------------------------
  //
  // A sticky anchor pins a network to one processor for its whole live
  // span — exactly what lets a long-lived hot network (targeted_burst)
  // accumulate unbounded load there. planRebalance() computes a
  // deterministic set of demand migrations that caps every processor
  // near threshold * mean live load: whole networks move first
  // (preserving off-wire locality), and a single network too hot to fit
  // anywhere is split, trading wire locality for balance. The caller
  // (AlphaSynchronizer::rebalanceShards) applies the moves and rewires
  // its physical-edge bookkeeping; placement is wire accounting only, so
  // the schedule never changes.

  /// One planned migration: move live demand `demand` from processor
  /// `from` to processor `to`.
  struct Migration {
    DemandId demand = 0;
    std::int32_t from = 0;
    std::int32_t to = 0;
  };

  struct RebalancePlan {
    std::vector<Migration> moves;
    /// (network, processor): anchors to retarget because the network
    /// moved wholesale — future arrivals of the network follow it.
    std::vector<std::pair<std::int32_t, std::int32_t>> anchorMoves;
    std::int32_t networksMoved = 0;
    double varianceBefore = 0;  ///< per-processor live-load variance
    double varianceAfter = 0;   ///< ... assuming the plan is applied
  };

  /// Population variance of the per-processor weighted live loads
  /// (demand counts while every weight is 1).
  double loadVariance() const;

  /// Plans migrations until no processor's live load exceeds
  /// `threshold * mean` (or `maxMoves` iterations ran). Deterministic:
  /// processors tie-break by lowest id, candidate networks by
  /// keyedHash(seed, ...) — a pure function of the placement state and
  /// arguments. Does not mutate the placement.
  RebalancePlan planRebalance(double threshold, std::uint64_t seed,
                              std::int32_t maxMoves) const;

  /// Moves a live placed demand to processor `to` (live pools only):
  /// tombstones the old hosted entry, appends to the new list, keeps the
  /// home-network anchor untouched. Migrating to the current processor
  /// is a no-op.
  void migrateDemand(DemandId d, std::int32_t to);

  /// Points network `net`'s anchor at processor `to` (the anchor must
  /// exist): future arrivals of the network land there.
  void retargetAnchor(std::int32_t net, std::int32_t to);

  std::int32_t liveDemandCount(std::int32_t p) const {
    return liveOfProcessor[static_cast<std::size_t>(p)];
  }
  std::int32_t tombstoneCount(std::int32_t p) const {
    return tombstonesOfProcessor[static_cast<std::size_t>(p)];
  }

  /// True when built by livePool() — the synchronizer places arrivals
  /// and removes departures only on live placements.
  bool live = false;
  /// Per pool demand: smallest accessible network id, -1 when none.
  /// Filled by livePool().
  std::vector<std::int32_t> homeNetwork;
  std::vector<std::int32_t> liveOfProcessor;        ///< live entries per proc
  std::vector<std::int32_t> tombstonesOfProcessor;  ///< tombstones per proc
  /// Per pool demand: placement load weight (live instance count, set by
  /// the online solver; 1 until set). Filled by livePool().
  std::vector<std::int64_t> weightOfDemand;
  /// Per processor: sum of hosted live demand weights.
  std::vector<std::int64_t> weightedLoadOfProcessor;
  /// Sticky network -> (processor, live refcount) anchors.
  struct NetworkAnchor {
    std::int32_t processor = 0;
    std::int32_t refs = 0;
  };
  std::unordered_map<std::int32_t, NetworkAnchor> networkAnchors;
  std::int64_t compactions = 0;  ///< hosted-list compactions, whole run
};

/// A demand's home network: the smallest accessible network id, -1 when
/// it can access none. THE locality convention — live shard placement
/// anchors by it and the targeted-burst churn model attacks by it
/// (online/arrivals.cpp), so both must share this definition.
std::int32_t homeNetworkOf(const std::vector<std::int32_t>& access);

/// Collapses a demand-level communication graph to the processor level:
/// processors P, Q are adjacent iff some demand on P is adjacent to some
/// demand on Q (P != Q). Lists come back sorted and duplicate-free.
std::vector<std::vector<std::int32_t>> shardAdjacency(
    const std::vector<std::vector<std::int32_t>>& demandAdjacency,
    const ShardPlacement& placement);

}  // namespace treesched
