#include "net/async_network.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {

namespace {

// Salts separating the independent hash draws of one attempt.
constexpr std::uint64_t kSaltPayloadDrop = 0x01;
constexpr std::uint64_t kSaltPayloadDelay = 0x02;
constexpr std::uint64_t kSaltAckDrop = 0x03;
constexpr std::uint64_t kSaltAckDelay = 0x04;

// With dropProbability <= 0.9 an attempt round-trips with probability
// >= 0.01, so hitting this cap indicates a broken hash stream, not luck.
constexpr std::int32_t kMaxAttempts = 10'000;

}  // namespace

AsyncNetwork::AsyncNetwork(std::int32_t numEndpoints,
                           const AsyncLinkConfig& config, std::uint64_t seed)
    : config_(config),
      seed_(seed),
      deliveredTo_(static_cast<std::size_t>(numEndpoints)),
      endpointLoad_(static_cast<std::size_t>(numEndpoints), 0) {
  checkThat(numEndpoints > 0, "async network needs endpoints", __FILE__,
            __LINE__);
  validateLatencyConfig(config_.latency);
  checkThat(config_.dropProbability >= 0 && config_.dropProbability <= 0.9,
            "drop probability in [0, 0.9]", __FILE__, __LINE__);
  // A timeout below one link latency would retransmit in a tight loop
  // before the first ack can possibly round-trip (and trip the attempt
  // cap); require at least the minimum one-way delay.
  checkThat(config_.retransmitTimeout == 0 ||
                config_.retransmitTimeout >= config_.latency.base,
            "timeout >= latency base (or 0 for auto)", __FILE__, __LINE__);
  timeout_ = config_.retransmitTimeout;
  if (timeout_ == 0) {
    timeout_ = 2 * latencyUpperBound(config_.latency) +
               config_.latency.base;
  }
}

void AsyncNetwork::schedule(double time, EventKind kind, std::uint32_t flight,
                            std::int32_t attempt) {
  queue_.push({time, nextEventSeq_++, kind, flight, attempt});
}

bool AsyncNetwork::dropped(std::uint64_t packetId, std::int32_t attempt,
                           std::uint64_t salt) const {
  if (config_.dropProbability <= 0) return false;
  const std::uint64_t h = keyedHash(seed_, packetId,
                                    static_cast<std::uint64_t>(attempt), salt);
  return unitInterval(h) < config_.dropProbability;
}

double AsyncNetwork::delay(std::uint64_t packetId, std::int32_t attempt,
                           std::uint64_t salt) const {
  const std::uint64_t h = keyedHash(seed_, packetId,
                                    static_cast<std::uint64_t>(attempt), salt);
  return sampleLatency(config_.latency, unitInterval(h));
}

void AsyncNetwork::send(std::int32_t from, std::int32_t to,
                        const Message& payload, bool control) {
  checkIndex(from, numEndpoints(), "AsyncNetwork::send from");
  checkIndex(to, numEndpoints(), "AsyncNetwork::send to");
  checkThat(from != to, "no self links", __FILE__, __LINE__);
  Flight flight;
  flight.from = from;
  flight.to = to;
  flight.payload = payload;
  flight.control = control;
  flight.id = nextPacketId_++;
  const auto index = static_cast<std::uint32_t>(flights_.size());
  flights_.push_back(flight);
  schedule(now_, EventKind::Attempt, index, 0);
}

double AsyncNetwork::flush() {
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    Flight& flight = flights_[event.flight];
    if (event.kind == EventKind::Attempt && flight.acked) {
      // A retransmit timer cancelled by the ack: it neither transmits
      // nor advances the clock.
      continue;
    }
    now_ = std::max(now_, event.time);
    switch (event.kind) {
      case EventKind::Attempt: {
        checkThat(flight.attempts < kMaxAttempts, "retransmission cap",
                  __FILE__, __LINE__);
        ++flight.attempts;
        ++transmissions_;
        if (event.attempt > 0) ++retransmissions_;
        if (dropped(flight.id, event.attempt, kSaltPayloadDrop)) {
          ++drops_;
        } else {
          schedule(now_ + delay(flight.id, event.attempt, kSaltPayloadDelay),
                   EventKind::Deliver, event.flight, event.attempt);
        }
        // The next attempt fires unless the ack lands first.
        schedule(now_ + timeout_, EventKind::Attempt, event.flight,
                 event.attempt + 1);
        break;
      }
      case EventKind::Deliver: {
        if (!flight.delivered) {
          flight.delivered = true;
          ++endpointLoad_[static_cast<std::size_t>(flight.to)];
          if (!flight.control) {
            deliveredTo_[static_cast<std::size_t>(flight.to)].push_back(
                {flight.from, flight.to, flight.payload, flight.control});
          }
        }
        // Duplicates are acked too, else a lost first ack livelocks.
        if (dropped(flight.id, event.attempt, kSaltAckDrop)) {
          ++drops_;
        } else {
          schedule(now_ + delay(flight.id, event.attempt, kSaltAckDelay),
                   EventKind::AckArrive, event.flight, event.attempt);
        }
        break;
      }
      case EventKind::AckArrive:
        flight.acked = true;
        break;
    }
  }
  flights_.clear();
  return now_;
}

void AsyncNetwork::advanceTime(double delta) {
  checkThat(delta >= 0, "time advances forward", __FILE__, __LINE__);
  checkThat(queue_.empty(), "advanceTime with traffic in flight", __FILE__,
            __LINE__);
  now_ += delta;
}

const std::vector<PhysicalDelivery>& AsyncNetwork::delivered(
    std::int32_t endpoint) const {
  checkIndex(endpoint, numEndpoints(), "AsyncNetwork::delivered");
  return deliveredTo_[static_cast<std::size_t>(endpoint)];
}

void AsyncNetwork::drainDeliveries() {
  for (auto& inbox : deliveredTo_) {
    inbox.clear();
  }
}

}  // namespace treesched
