#include "net/async_network.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {

namespace {

// Salts separating the independent hash draws of one attempt.
constexpr std::uint64_t kSaltPayloadDrop = 0x01;
constexpr std::uint64_t kSaltPayloadDelay = 0x02;
constexpr std::uint64_t kSaltAckDrop = 0x03;
constexpr std::uint64_t kSaltAckDelay = 0x04;
constexpr std::uint64_t kSaltDuplicateDraw = 0x05;
constexpr std::uint64_t kSaltDuplicateDelay = 0x06;

// With dropProbability <= 0.9 an attempt round-trips with probability
// >= 0.01, so hitting this cap indicates a broken hash stream, not luck.
constexpr std::int32_t kMaxAttempts = 10'000;

}  // namespace

AsyncNetwork::AsyncNetwork(std::int32_t numEndpoints,
                           const AsyncLinkConfig& config, std::uint64_t seed)
    : config_(config),
      seed_(seed),
      index_(std::max<std::int32_t>(1, numEndpoints)),
      endpointLoad_(static_cast<std::size_t>(numEndpoints), 0) {
  checkThat(numEndpoints > 0, "async network needs endpoints", __FILE__,
            __LINE__);
  validateLatencyConfig(config_.latency);
  checkThat(config_.dropProbability >= 0 && config_.dropProbability <= 0.9,
            "drop probability in [0, 0.9]", __FILE__, __LINE__);
  checkThat(config_.duplicateProbability >= 0 &&
                config_.duplicateProbability <= 0.9,
            "duplicate probability in [0, 0.9]", __FILE__, __LINE__);

  // Per-link overrides: normalize to endpointA < endpointB, validate the
  // configs, reject duplicate links.
  double slowestBase = config_.latency.base;
  overrides_.reserve(config_.latencyOverrides.size());
  for (const LinkLatencyOverride& entry : config_.latencyOverrides) {
    LinkLatencyOverride normalized = entry;
    checkIndex(normalized.endpointA, numEndpoints, "latency override endpoint");
    checkIndex(normalized.endpointB, numEndpoints, "latency override endpoint");
    checkThat(normalized.endpointA != normalized.endpointB,
              "latency override needs two endpoints", __FILE__, __LINE__);
    if (normalized.endpointA > normalized.endpointB) {
      std::swap(normalized.endpointA, normalized.endpointB);
    }
    validateLatencyConfig(normalized.latency);
    slowestBase = std::max(slowestBase, normalized.latency.base);
    overrides_.push_back(normalized);
  }
  std::sort(overrides_.begin(), overrides_.end(),
            [](const LinkLatencyOverride& a, const LinkLatencyOverride& b) {
              return std::pair(a.endpointA, a.endpointB) <
                     std::pair(b.endpointA, b.endpointB);
            });
  for (std::size_t i = 1; i < overrides_.size(); ++i) {
    checkThat(std::pair(overrides_[i - 1].endpointA,
                        overrides_[i - 1].endpointB) !=
                  std::pair(overrides_[i].endpointA, overrides_[i].endpointB),
              "one latency override per link", __FILE__, __LINE__);
  }

  // A timeout below one link latency would retransmit in a tight loop
  // before the first ack can possibly round-trip (and trip the attempt
  // cap); require at least the slowest link's minimum one-way delay.
  checkThat(config_.retransmitTimeout == 0 ||
                config_.retransmitTimeout >= slowestBase,
            "timeout >= every link's latency base (or 0 for auto)", __FILE__,
            __LINE__);
  timeout_ = config_.retransmitTimeout;
  if (timeout_ == 0) {
    // Auto mode derives the timeout per link from that link's own model:
    // a trans-continental override must never make the metro links wait
    // for its round trip before retransmitting (the per-link timeout fix;
    // the virtual-time regression lives in tests/net_test.cpp).
    timeout_ = 2 * latencyUpperBound(config_.latency) + config_.latency.base;
    overrideTimeout_.reserve(overrides_.size());
    for (const LinkLatencyOverride& entry : overrides_) {
      overrideTimeout_.push_back(2 * latencyUpperBound(entry.latency) +
                                 entry.latency.base);
    }
  }
}

double AsyncNetwork::timeoutFor(const Flight& flight) const {
  if (flight.latencyOverride < 0 || overrideTimeout_.empty()) {
    return timeout_;
  }
  return overrideTimeout_[static_cast<std::size_t>(flight.latencyOverride)];
}

std::int32_t AsyncNetwork::overrideIndex(std::int32_t a, std::int32_t b) const {
  if (overrides_.empty()) return -1;
  if (a > b) std::swap(a, b);
  const auto it = std::lower_bound(
      overrides_.begin(), overrides_.end(), std::pair(a, b),
      [](const LinkLatencyOverride& o, const std::pair<int, int>& key) {
        return std::pair(o.endpointA, o.endpointB) <
               std::pair(key.first, key.second);
      });
  if (it == overrides_.end() || it->endpointA != a || it->endpointB != b) {
    return -1;
  }
  return static_cast<std::int32_t>(it - overrides_.begin());
}

const LatencyConfig& AsyncNetwork::linkLatency(const Flight& flight) const {
  if (flight.latencyOverride < 0) return config_.latency;
  return overrides_[static_cast<std::size_t>(flight.latencyOverride)].latency;
}

void AsyncNetwork::schedule(double time, EventKind kind, std::uint32_t flight,
                            std::int32_t attempt) {
  queue_.push({time, nextEventSeq_++, kind, flight, attempt});
}

bool AsyncNetwork::chance(double probability, std::uint64_t packetId,
                          std::int32_t attempt, std::uint64_t salt) const {
  if (probability <= 0) return false;
  const std::uint64_t h = keyedHash(seed_, packetId,
                                    static_cast<std::uint64_t>(attempt), salt);
  return unitInterval(h) < probability;
}

double AsyncNetwork::delay(const Flight& flight, std::int32_t attempt,
                           std::uint64_t salt) const {
  const std::uint64_t h = keyedHash(seed_, flight.id,
                                    static_cast<std::uint64_t>(attempt), salt);
  return sampleLatency(linkLatency(flight), unitInterval(h));
}

void AsyncNetwork::send(std::int32_t from, std::int32_t to,
                        const Message& payload, bool control) {
  checkIndex(from, numEndpoints(), "AsyncNetwork::send from");
  checkIndex(to, numEndpoints(), "AsyncNetwork::send to");
  checkThat(from != to, "no self links", __FILE__, __LINE__);
  Flight flight;
  flight.from = from;
  flight.to = to;
  flight.payload = payload;
  flight.control = control;
  flight.id = nextPacketId_++;
  flight.latencyOverride = overrideIndex(from, to);
  const auto index = static_cast<std::uint32_t>(flights_.size());
  flights_.push_back(flight);
  schedule(now_, EventKind::Attempt, index, 0);
}

void AsyncNetwork::deliverPayload(Flight& flight) {
  flight.delivered = true;
  ++endpointLoad_[static_cast<std::size_t>(flight.to)];
  if (!flight.control) {
    log_.push_back({flight.from, flight.to, flight.payload, flight.control});
  }
}

double AsyncNetwork::flush() {
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    Flight& flight = flights_[event.flight];
    if (event.kind == EventKind::Attempt && flight.acked) {
      // A retransmit timer cancelled by the ack: it neither transmits
      // nor advances the clock.
      continue;
    }
    now_ = std::max(now_, event.time);
    switch (event.kind) {
      case EventKind::Attempt: {
        checkThat(flight.attempts < kMaxAttempts, "retransmission cap",
                  __FILE__, __LINE__);
        ++flight.attempts;
        ++transmissions_;
        if (event.attempt > 0) ++retransmissions_;
        if (chance(config_.dropProbability, flight.id, event.attempt,
                   kSaltPayloadDrop)) {
          ++drops_;
        } else {
          schedule(now_ + delay(flight, event.attempt, kSaltPayloadDelay),
                   EventKind::Deliver, event.flight, event.attempt);
        }
        // The next attempt fires unless the ack lands first.
        schedule(now_ + timeoutFor(flight), EventKind::Attempt, event.flight,
                 event.attempt + 1);
        break;
      }
      case EventKind::Deliver:
      case EventKind::DuplicateDeliver: {
        if (!flight.delivered) {
          deliverPayload(flight);
          // Duplicating-link fault: the same packet arrives once more a
          // little later; the dedup branch below absorbs it.
          if (event.kind == EventKind::Deliver &&
              chance(config_.duplicateProbability, flight.id, event.attempt,
                     kSaltDuplicateDraw)) {
            schedule(now_ + delay(flight, event.attempt, kSaltDuplicateDelay),
                     EventKind::DuplicateDeliver, event.flight, event.attempt);
          }
        } else {
          // Dedup path: retransmission races and duplicating links.
          ++duplicates_;
        }
        // Duplicates are acked too, else a lost first ack livelocks.
        if (chance(config_.dropProbability, flight.id, event.attempt,
                   kSaltAckDrop)) {
          ++drops_;
        } else {
          schedule(now_ + delay(flight, event.attempt, kSaltAckDelay),
                   EventKind::AckArrive, event.flight, event.attempt);
        }
        break;
      }
      case EventKind::AckArrive:
        flight.acked = true;
        break;
    }
  }
  flights_.clear();
  collateDeliveries();
  return now_;
}

void AsyncNetwork::collateDeliveries() {
  // Stable counting sort of the delivery log by receiving endpoint:
  // within an endpoint, arrival order is preserved.
  index_.reset();
  if (log_.empty()) {
    return;
  }
  for (const PhysicalDelivery& delivery : log_) {
    index_.count(delivery.to);
  }
  index_.layout();
  if (static_cast<std::size_t>(index_.total()) > collated_.size()) {
    collated_.resize(static_cast<std::size_t>(index_.total()));
  }
  for (const PhysicalDelivery& delivery : log_) {
    collated_[static_cast<std::size_t>(index_.place(delivery.to))] = delivery;
  }
  index_.finish();
}

void AsyncNetwork::advanceTime(double delta) {
  checkThat(delta >= 0, "time advances forward", __FILE__, __LINE__);
  checkThat(queue_.empty(), "advanceTime with traffic in flight", __FILE__,
            __LINE__);
  now_ += delta;
}

std::span<const PhysicalDelivery> AsyncNetwork::delivered(
    std::int32_t endpoint) const {
  checkIndex(endpoint, numEndpoints(), "AsyncNetwork::delivered");
  const std::int32_t length = index_.length(endpoint);
  if (length == 0) {
    return {};
  }
  return {collated_.data() + index_.begin(endpoint),
          static_cast<std::size_t>(length)};
}

void AsyncNetwork::drainDeliveries() {
  log_.clear();
  index_.reset();
}

}  // namespace treesched
