#include "net/synchronizer.hpp"

#include <algorithm>
#include <array>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace treesched {

namespace {

/// Hosted-demand histogram buckets: wide dynamic range (a hot shard can
/// host thousands of demands) at bounded storage. constexpr so instrument
/// resolution allocates nothing (the NullSink zero-allocation gate).
constexpr std::array<double, 16> kHostedBuckets = {
    1,  2,   4,   8,    16,   32,   64,    128,
    256, 512, 1024, 2048, 4096, 8192, 16384, 32768};

/// Validation must run in the member-init list, before the constructor
/// body's edge loop reads placements for the adjacency's endpoints —
/// a malformed graph would hit out-of-range reads there otherwise.
std::vector<std::vector<std::int32_t>> validated(
    std::vector<std::vector<std::int32_t>> adjacency) {
  validateCommunicationAdjacency(adjacency);
  return adjacency;
}

}  // namespace

AlphaSynchronizer::AlphaSynchronizer(
    std::vector<std::vector<std::int32_t>> demandAdjacency,
    ShardPlacement placement, const AsyncConfig& config)
    : adjacency_(validated(std::move(demandAdjacency))),
      placement_(std::move(placement)),
      physAdjacency_(static_cast<std::size_t>(placement_.numProcessors)),
      phys_(placement_.numProcessors, config.link, config.seed),
      silentRoundCost_(config.link.latency.base),
      plane_(std::max<std::int32_t>(
          1, static_cast<std::int32_t>(adjacency_.size()))) {
  checkThat(static_cast<std::int32_t>(adjacency_.size()) ==
                placement_.numDemands(),
            "placement covers the communication graph", __FILE__, __LINE__);
  remoteProcsOf_.resize(adjacency_.size());
  for (DemandId d = 0; d < numProcessors(); ++d) {
    checkThat(placement_.isPlaced(d) ||
                  adjacency_[static_cast<std::size_t>(d)].empty(),
              "unplaced demands must be isolated", __FILE__, __LINE__);
    rebuildRemoteProcs(d);
    for (const std::int32_t e : adjacency_[static_cast<std::size_t>(d)]) {
      if (d < e) {
        addPhysicalEdge(d, e);
      }
    }
  }
  stats_.processorLoad.assign(
      static_cast<std::size_t>(placement_.numProcessors), 0);
}

std::uint64_t AlphaSynchronizer::linkKey(std::int32_t p, std::int32_t q) {
  if (p > q) std::swap(p, q);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(q));
}

void AlphaSynchronizer::rebuildRemoteProcs(std::int32_t d) {
  auto& remote = remoteProcsOf_[static_cast<std::size_t>(d)];
  remote.clear();
  const std::int32_t home = processorOf(d);
  for (const std::int32_t e : adjacency_[static_cast<std::size_t>(d)]) {
    if (processorOf(e) != home) {
      remote.push_back(processorOf(e));
    }
  }
  std::sort(remote.begin(), remote.end());
  remote.erase(std::unique(remote.begin(), remote.end()), remote.end());
}

void AlphaSynchronizer::addPhysicalEdge(std::int32_t a, std::int32_t b) {
  const std::int32_t p = processorOf(a);
  const std::int32_t q = processorOf(b);
  if (p == q) return;
  if (++physEdgeCount_[linkKey(p, q)] == 1) {
    auto& ofP = physAdjacency_[static_cast<std::size_t>(p)];
    ofP.insert(std::lower_bound(ofP.begin(), ofP.end(), q), q);
    auto& ofQ = physAdjacency_[static_cast<std::size_t>(q)];
    ofQ.insert(std::lower_bound(ofQ.begin(), ofQ.end(), p), p);
  }
}

void AlphaSynchronizer::removePhysicalEdge(std::int32_t a, std::int32_t b) {
  const std::int32_t p = processorOf(a);
  const std::int32_t q = processorOf(b);
  if (p == q) return;
  const auto count = physEdgeCount_.find(linkKey(p, q));
  checkThat(count != physEdgeCount_.end() && count->second > 0,
            "physical link backed by a demand edge", __FILE__, __LINE__);
  if (--count->second == 0) {
    physEdgeCount_.erase(count);
    auto& ofP = physAdjacency_[static_cast<std::size_t>(p)];
    ofP.erase(std::lower_bound(ofP.begin(), ofP.end(), q));
    auto& ofQ = physAdjacency_[static_cast<std::size_t>(q)];
    ofQ.erase(std::lower_bound(ofQ.begin(), ofQ.end(), p));
  }
}

void AlphaSynchronizer::connectDemand(
    std::int32_t d, std::span<const std::int32_t> neighbors) {
  checkIndex(d, numProcessors(), "AlphaSynchronizer::connectDemand");
  checkThat(!plane_.hasStaged() && pendingPayload_ == 0,
            "topology mutation only between rounds", __FILE__, __LINE__);
  auto& own = adjacency_[static_cast<std::size_t>(d)];
  checkThat(own.empty(), "connectDemand target must be isolated", __FILE__,
            __LINE__);
  // Validate the whole list before touching any state (strong guarantee:
  // a rejected call leaves the live topology unchanged).
  for (std::size_t idx = 0; idx < neighbors.size(); ++idx) {
    const std::int32_t n = neighbors[idx];
    checkIndex(n, numProcessors(), "connectDemand neighbour");
    checkThat(n != d, "no self links", __FILE__, __LINE__);
    checkThat(idx == 0 || neighbors[idx - 1] < n,
              "connectDemand neighbours sorted, duplicate-free", __FILE__,
              __LINE__);
  }
  // Live placements host arrivals on demand: d first, then any
  // still-isolated neighbour, in list order — deterministic.
  if (placement_.live && !placement_.isPlaced(d)) {
    const std::int32_t proc = placement_.placeDemand(d);
    if (ledgerOn_) ledgerPlacement(d, proc);
  }
  for (const std::int32_t n : neighbors) {
    if (placement_.live && !placement_.isPlaced(n)) {
      const std::int32_t proc = placement_.placeDemand(n);
      if (ledgerOn_) ledgerPlacement(n, proc);
    }
  }
  own.assign(neighbors.begin(), neighbors.end());
  for (const std::int32_t n : neighbors) {
    auto& theirs = adjacency_[static_cast<std::size_t>(n)];
    const auto pos = std::lower_bound(theirs.begin(), theirs.end(), d);
    checkThat(pos == theirs.end() || *pos != d,
              "connectDemand edge already present", __FILE__, __LINE__);
    theirs.insert(pos, d);
    addPhysicalEdge(d, n);
  }
  // Safe-marker bookkeeping rebuilt only for the touched demands.
  rebuildRemoteProcs(d);
  for (const std::int32_t n : neighbors) {
    rebuildRemoteProcs(n);
  }
}

void AlphaSynchronizer::disconnectDemand(std::int32_t d) {
  checkIndex(d, numProcessors(), "AlphaSynchronizer::disconnectDemand");
  checkThat(!plane_.hasStaged() && pendingPayload_ == 0,
            "topology mutation only between rounds", __FILE__, __LINE__);
  auto& own = adjacency_[static_cast<std::size_t>(d)];
  const std::vector<std::int32_t> former(own.begin(), own.end());
  for (const std::int32_t n : former) {
    auto& theirs = adjacency_[static_cast<std::size_t>(n)];
    const auto pos = std::lower_bound(theirs.begin(), theirs.end(), d);
    checkThat(pos != theirs.end() && *pos == d,
              "disconnectDemand edge symmetric", __FILE__, __LINE__);
    theirs.erase(pos);
    removePhysicalEdge(d, n);
  }
  own.clear();
  rebuildRemoteProcs(d);
  for (const std::int32_t n : former) {
    rebuildRemoteProcs(n);
  }
  if (placement_.live && placement_.isPlaced(d)) {
    placement_.removeDemand(d);
  }
}

std::span<const std::int32_t> AlphaSynchronizer::neighbors(
    std::int32_t p) const {
  checkIndex(p, numProcessors(), "AlphaSynchronizer::neighbors");
  return adjacency_[static_cast<std::size_t>(p)];
}

void AlphaSynchronizer::broadcast(const Message& message) {
  checkIndex(message.from, numProcessors(), "AlphaSynchronizer::broadcast");
  const auto from = static_cast<std::size_t>(message.from);
  const std::int32_t home = processorOf(message.from);
  // Same-processor neighbours: delivered from local memory at the round
  // boundary, never touching the wire.
  for (const std::int32_t d : adjacency_[from]) {
    if (processorOf(d) == home) {
      plane_.stage(d, message);
    }
  }
  // One wire packet per remote processor; the receiver fans it out to
  // every hosted neighbour of the sender.
  for (const std::int32_t q : remoteProcsOf_[from]) {
    phys_.send(home, q, message);
    ++pendingPayload_;
  }
}

void AlphaSynchronizer::endRound() {
  ++stats_.rounds;

  // Safe markers: every processor tells each physical neighbour it has
  // sent everything for this round. The markers ride the same lossy
  // links (acked, retransmitted) — they are the synchronizer's cost.
  for (std::int32_t p = 0; p < placement_.numProcessors; ++p) {
    for (const std::int32_t q :
         physAdjacency_[static_cast<std::size_t>(p)]) {
      phys_.send(p, q, Message{}, /*control=*/true);
    }
  }

  // Round r+1 starts once all round-r payload and markers are delivered.
  bool anyWire = pendingPayload_ > 0;
  for (const auto& nbrs : physAdjacency_) {
    anyWire = anyWire || !nbrs.empty();
  }
  if (anyWire) {
    phys_.flush();
  } else {
    // Fully local round (everything on one processor): charge the
    // nominal barrier cost so virtual time still advances.
    phys_.advanceTime(silentRoundCost_);
  }
  pendingPayload_ = 0;

  // Stage the fan-out of every wire packet to the hosted neighbours of
  // its sender; the plane then builds all demand-level inboxes (local
  // deliveries were staged at broadcast time) in canonical order.
  for (std::int32_t p = 0; p < placement_.numProcessors; ++p) {
    for (const PhysicalDelivery& delivery : phys_.delivered(p)) {
      const auto sender = static_cast<std::size_t>(delivery.payload.from);
      for (const std::int32_t d : adjacency_[sender]) {
        if (processorOf(d) == p) {
          plane_.stage(d, delivery.payload);
        }
      }
    }
  }
  phys_.drainDeliveries();
  const std::int64_t before = stats_.messages;
  plane_.deliver();

  accountPlaneRound(stats_, plane_);

  stats_.virtualTime = phys_.now();
  stats_.transmissions = phys_.transmissions();
  stats_.retransmissions = phys_.retransmissions();
  stats_.drops = phys_.drops();
  stats_.duplicates = phys_.duplicates();
  stats_.processorLoad = phys_.endpointLoad();

  const std::int64_t delivered = stats_.messages - before;
  if (roundsCtr_ != nullptr) {
    roundsCtr_->add(1);
    messagesCtr_->add(delivered);
    if (delivered > 0) busyRoundsCtr_->add(1);
    virtualTimeGauge_->set(stats_.virtualTime);
    transmissionsGauge_->set(static_cast<double>(stats_.transmissions));
    retransmissionsGauge_->set(static_cast<double>(stats_.retransmissions));
    dropsGauge_->set(static_cast<double>(stats_.drops));
    duplicatesGauge_->set(static_cast<double>(stats_.duplicates));
  }
  if (trace_ && delivered > 0) {
    tracer_->instant("deliver", "net", 0,
                     {{"round", stats_.rounds}, {"messages", delivered}});
  }
}

void AlphaSynchronizer::endSilentRounds(std::int64_t count) {
  checkThat(count >= 0, "silent round count non-negative", __FILE__, __LINE__);
  checkThat(!plane_.hasStaged() && pendingPayload_ == 0,
            "silent rounds must not drop queued messages", __FILE__, __LINE__);
  if (count == 0) return;
  plane_.clearInboxes();
  stats_.rounds += count;
  // Known-silent rounds are barrier-only: both sides of the fixed
  // schedule know nobody transmits, so the synchronizer charges the
  // nominal per-round cost without simulating marker traffic.
  phys_.advanceTime(static_cast<double>(count) * silentRoundCost_);
  stats_.virtualTime = phys_.now();
  if (roundsCtr_ != nullptr) {
    roundsCtr_->add(count);
    virtualTimeGauge_->set(stats_.virtualTime);
  }
}

void AlphaSynchronizer::attachTelemetry(Tracer* tracer,
                                        MetricsRegistry* metrics) {
  tracer_ = tracer;
  trace_ = tracer != nullptr && tracer->enabled();
  if (metrics != nullptr) {
    roundsCtr_ = &metrics->counter("net.rounds");
    busyRoundsCtr_ = &metrics->counter("net.busy_rounds");
    messagesCtr_ = &metrics->counter("net.messages");
    virtualTimeGauge_ = &metrics->gauge("net.virtual_time");
    transmissionsGauge_ = &metrics->gauge("net.transmissions");
    retransmissionsGauge_ = &metrics->gauge("net.retransmissions");
    dropsGauge_ = &metrics->gauge("net.drops");
    duplicatesGauge_ = &metrics->gauge("net.duplicates");
    if (placement_.live) {
      hostedHist_ =
          &metrics->histogram("net.shard_hosted_demands", kHostedBuckets);
      loadVarianceGauge_ = &metrics->gauge("net.shard_load_variance");
    }
  } else {
    roundsCtr_ = nullptr;
    busyRoundsCtr_ = nullptr;
    messagesCtr_ = nullptr;
    virtualTimeGauge_ = nullptr;
    transmissionsGauge_ = nullptr;
    retransmissionsGauge_ = nullptr;
    dropsGauge_ = nullptr;
    duplicatesGauge_ = nullptr;
    hostedHist_ = nullptr;
    loadVarianceGauge_ = nullptr;
  }
}

void AlphaSynchronizer::attachLedger(LedgerSink* ledger) {
  ledger_ = ledger;
  ledgerOn_ = ledger != nullptr && ledger->enabled();
}

void AlphaSynchronizer::ledgerPlacement(DemandId d, std::int32_t processor) {
  LedgerEvent ev;
  ev.demand = d;
  ev.kind = LedgerEventKind::Placement;
  ev.toProcessor = processor;
  ledger_->record(ev);
}

void AlphaSynchronizer::publishLoadTelemetry() {
  if (loadVarianceGauge_ == nullptr || !placement_.live) {
    return;
  }
  for (std::int32_t p = 0; p < placement_.numProcessors; ++p) {
    hostedHist_->record(
        static_cast<double>(placement_.liveDemandCount(p)));
  }
  loadVarianceGauge_->set(placement_.loadVariance());
}

RebalanceOutcome AlphaSynchronizer::rebalanceShards(
    const ShardRebalanceConfig& config) {
  checkThat(!plane_.hasStaged() && pendingPayload_ == 0,
            "topology mutation only between rounds", __FILE__, __LINE__);
  RebalanceOutcome outcome;
  if (!placement_.live || placement_.numProcessors <= 1) {
    return outcome;
  }
  const std::int64_t begin = trace_ ? tracer_->now() : 0;
  const ShardPlacement::RebalancePlan plan = placement_.planRebalance(
      config.threshold, config.seed, config.maxMoves);
  outcome.networksMoved = plan.networksMoved;
  outcome.demandsMoved = static_cast<std::int32_t>(plan.moves.size());
  outcome.loadVarianceBefore = plan.varianceBefore;
  outcome.loadVarianceAfter = plan.varianceAfter;

  // Apply each migration with the connect/disconnect bookkeeping split
  // around the placement change: a demand edge's physical-link
  // contribution is keyed by both endpoint placements, so it must come
  // off the refcounts while the old placement is still visible and go
  // back on under the new one. Edges between two migrating demands stay
  // exact because each move handles only its own endpoint.
  touchedScratch_.clear();
  for (const ShardPlacement::Migration& move : plan.moves) {
    const auto d = static_cast<std::size_t>(move.demand);
    if (ledgerOn_) {
      LedgerEvent ev;
      ev.demand = move.demand;
      ev.kind = LedgerEventKind::Migration;
      ev.fromProcessor = move.from;
      ev.toProcessor = move.to;
      ledger_->record(ev);
    }
    for (const std::int32_t e : adjacency_[d]) {
      removePhysicalEdge(move.demand, e);
    }
    placement_.migrateDemand(move.demand, move.to);
    for (const std::int32_t e : adjacency_[d]) {
      addPhysicalEdge(move.demand, e);
      touchedScratch_.push_back(e);
    }
    touchedScratch_.push_back(move.demand);
  }
  for (const auto& [net, to] : plan.anchorMoves) {
    placement_.retargetAnchor(net, to);
  }
  // Remote-processor broadcast sets: rebuilt once per touched demand
  // (movers and their neighbours), in ascending order.
  std::sort(touchedScratch_.begin(), touchedScratch_.end());
  touchedScratch_.erase(
      std::unique(touchedScratch_.begin(), touchedScratch_.end()),
      touchedScratch_.end());
  for (const std::int32_t d : touchedScratch_) {
    rebuildRemoteProcs(d);
  }

  if (trace_) {
    tracer_->span("rebalance", "net", 0, begin,
                  {{"demands_moved", outcome.demandsMoved},
                   {"networks_moved", outcome.networksMoved}});
  }
  return outcome;
}

std::span<const Message> AlphaSynchronizer::inbox(std::int32_t p) const {
  checkIndex(p, numProcessors(), "AlphaSynchronizer::inbox");
  return plane_.inbox(p);
}

void AlphaSynchronizer::appendActiveInboxes(
    std::vector<std::int32_t>& out) const {
  const auto active = plane_.activeDests();
  out.insert(out.end(), active.begin(), active.end());
}

}  // namespace treesched
