#include "net/synchronizer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace treesched {

namespace {

/// Validation must precede shardAdjacency in the member-init list, else
/// a malformed graph hits out-of-range placement reads before the check.
std::vector<std::vector<std::int32_t>> validated(
    std::vector<std::vector<std::int32_t>> adjacency) {
  validateCommunicationAdjacency(adjacency);
  return adjacency;
}

}  // namespace

AlphaSynchronizer::AlphaSynchronizer(
    std::vector<std::vector<std::int32_t>> demandAdjacency,
    ShardPlacement placement, const AsyncConfig& config)
    : adjacency_(validated(std::move(demandAdjacency))),
      placement_(std::move(placement)),
      physAdjacency_(shardAdjacency(adjacency_, placement_)),
      phys_(placement_.numProcessors, config.link, config.seed),
      silentRoundCost_(config.link.latency.base),
      plane_(std::max<std::int32_t>(
          1, static_cast<std::int32_t>(adjacency_.size()))) {
  remoteProcsOf_.resize(adjacency_.size());
  for (DemandId d = 0; d < numProcessors(); ++d) {
    auto& remote = remoteProcsOf_[static_cast<std::size_t>(d)];
    const std::int32_t home = processorOf(d);
    for (const std::int32_t e : adjacency_[static_cast<std::size_t>(d)]) {
      if (processorOf(e) != home) {
        remote.push_back(processorOf(e));
      }
    }
    std::sort(remote.begin(), remote.end());
    remote.erase(std::unique(remote.begin(), remote.end()), remote.end());
  }
  stats_.processorLoad.assign(
      static_cast<std::size_t>(placement_.numProcessors), 0);
}

std::span<const std::int32_t> AlphaSynchronizer::neighbors(
    std::int32_t p) const {
  checkIndex(p, numProcessors(), "AlphaSynchronizer::neighbors");
  return adjacency_[static_cast<std::size_t>(p)];
}

void AlphaSynchronizer::broadcast(const Message& message) {
  checkIndex(message.from, numProcessors(), "AlphaSynchronizer::broadcast");
  const auto from = static_cast<std::size_t>(message.from);
  const std::int32_t home = processorOf(message.from);
  // Same-processor neighbours: delivered from local memory at the round
  // boundary, never touching the wire.
  for (const std::int32_t d : adjacency_[from]) {
    if (processorOf(d) == home) {
      plane_.stage(d, message);
    }
  }
  // One wire packet per remote processor; the receiver fans it out to
  // every hosted neighbour of the sender.
  for (const std::int32_t q : remoteProcsOf_[from]) {
    phys_.send(home, q, message);
    ++pendingPayload_;
  }
}

void AlphaSynchronizer::endRound() {
  ++stats_.rounds;

  // Safe markers: every processor tells each physical neighbour it has
  // sent everything for this round. The markers ride the same lossy
  // links (acked, retransmitted) — they are the synchronizer's cost.
  for (std::int32_t p = 0; p < placement_.numProcessors; ++p) {
    for (const std::int32_t q :
         physAdjacency_[static_cast<std::size_t>(p)]) {
      phys_.send(p, q, Message{}, /*control=*/true);
    }
  }

  // Round r+1 starts once all round-r payload and markers are delivered.
  bool anyWire = pendingPayload_ > 0;
  for (const auto& nbrs : physAdjacency_) {
    anyWire = anyWire || !nbrs.empty();
  }
  if (anyWire) {
    phys_.flush();
  } else {
    // Fully local round (everything on one processor): charge the
    // nominal barrier cost so virtual time still advances.
    phys_.advanceTime(silentRoundCost_);
  }
  pendingPayload_ = 0;

  // Stage the fan-out of every wire packet to the hosted neighbours of
  // its sender; the plane then builds all demand-level inboxes (local
  // deliveries were staged at broadcast time) in canonical order.
  for (std::int32_t p = 0; p < placement_.numProcessors; ++p) {
    for (const PhysicalDelivery& delivery : phys_.delivered(p)) {
      const auto sender = static_cast<std::size_t>(delivery.payload.from);
      for (const std::int32_t d : adjacency_[sender]) {
        if (processorOf(d) == p) {
          plane_.stage(d, delivery.payload);
        }
      }
    }
  }
  phys_.drainDeliveries();
  plane_.deliver();

  accountPlaneRound(stats_, plane_);

  stats_.virtualTime = phys_.now();
  stats_.transmissions = phys_.transmissions();
  stats_.retransmissions = phys_.retransmissions();
  stats_.drops = phys_.drops();
  stats_.duplicates = phys_.duplicates();
  stats_.processorLoad = phys_.endpointLoad();
}

void AlphaSynchronizer::endSilentRounds(std::int64_t count) {
  checkThat(count >= 0, "silent round count non-negative", __FILE__, __LINE__);
  checkThat(!plane_.hasStaged() && pendingPayload_ == 0,
            "silent rounds must not drop queued messages", __FILE__, __LINE__);
  if (count == 0) return;
  plane_.clearInboxes();
  stats_.rounds += count;
  // Known-silent rounds are barrier-only: both sides of the fixed
  // schedule know nobody transmits, so the synchronizer charges the
  // nominal per-round cost without simulating marker traffic.
  phys_.advanceTime(static_cast<double>(count) * silentRoundCost_);
  stats_.virtualTime = phys_.now();
}

std::span<const Message> AlphaSynchronizer::inbox(std::int32_t p) const {
  checkIndex(p, numProcessors(), "AlphaSynchronizer::inbox");
  return plane_.inbox(p);
}

void AlphaSynchronizer::appendActiveInboxes(
    std::vector<std::int32_t>& out) const {
  const auto active = plane_.activeDests();
  out.insert(out.end(), active.begin(), active.end());
}

}  // namespace treesched
