#include "net/runner.hpp"

namespace treesched {

namespace {

ShardPlacement makePlacement(
    const std::vector<std::vector<std::int32_t>>& access,
    const AsyncConfig& net) {
  const auto numDemands = static_cast<std::int32_t>(access.size());
  if (net.shardProcessors <= 0 || net.shardProcessors >= numDemands) {
    return ShardPlacement::identity(numDemands);
  }
  return ShardPlacement::build(net.strategy, access, net.shardProcessors);
}

DistributedResult runOverSynchronizer(
    PreparedRun run, const std::vector<std::vector<std::int32_t>>& access,
    const DistributedOptions& options, const AsyncConfig& net) {
  AlphaSynchronizer transport(std::move(run.adjacency),
                              makePlacement(access, net), net);
  return runDistributedOverTransport(run.universe, run.layering, transport,
                                     options);
}

}  // namespace

DistributedResult runAsyncUnitTree(const TreeProblem& problem,
                                   const DistributedOptions& options,
                                   const AsyncConfig& net) {
  return runOverSynchronizer(prepareUnitTreeRun(problem), problem.access,
                             options, net);
}

DistributedResult runAsyncUnitLine(const LineProblem& problem,
                                   const DistributedOptions& options,
                                   const AsyncConfig& net) {
  return runOverSynchronizer(prepareUnitLineRun(problem), problem.access,
                             options, net);
}

}  // namespace treesched
