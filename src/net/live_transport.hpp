// Factory for mutable-topology transports (the online churn engine).
//
// The online incremental re-solver (online/incremental.hpp) owns only a
// Transport& with the MutableTopology capability; this factory is where
// a concrete wire is chosen. Every transport comes up with all pool
// demands isolated — the churn engine connects them as they arrive —
// and every kind runs the protocol bit-identically (the Transport
// contract), so the choice moves only the wire accounting: virtual
// time, transmissions, retransmissions, drops, processor load.
//
//  * SyncBus — the reliable round-synchronous reference bus
//    (dist/sim_network.hpp): one atomic delivery step per round.
//  * Async   — AlphaSynchronizer over the asynchronous lossy wire, one
//    physical processor per demand (identity placement).
//  * Sharded — AlphaSynchronizer over a live ShardPlacement: arrivals
//    are placed locality-aware onto `async.shardProcessors` processors,
//    departures tombstoned and compacted (net/shard.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/synchronizer.hpp"
#include "net/transport.hpp"

namespace treesched {

enum class LiveTransportKind : std::uint8_t { SyncBus, Async, Sharded };

struct LiveTransportConfig {
  LiveTransportKind kind = LiveTransportKind::SyncBus;
  /// Wire behaviour of the Async/Sharded kinds (link latency/loss, seed,
  /// shardProcessors for Sharded; `strategy` is ignored — live pools
  /// place by network anchor). Unused by SyncBus.
  AsyncConfig async;
};

/// Builds a live transport over `numDemands` isolated pool demands.
/// `access[d]` lists the networks demand d may use — the locality signal
/// of the Sharded kind (SyncBus/Async ignore it). Sharded with
/// `async.shardProcessors <= 0` defaults to max(1, numDemands / 8)
/// processors. The returned transport implements MutableTopology.
std::unique_ptr<Transport> makeLiveTransport(
    std::int32_t numDemands,
    const std::vector<std::vector<std::int32_t>>& access,
    const LiveTransportConfig& config);

/// Human-readable kind name ("sync", "async", "sharded").
const char* liveTransportKindName(LiveTransportKind kind);

/// Parses a kind name; throws CheckError on anything else.
LiveTransportKind parseLiveTransportKind(const std::string& name);

}  // namespace treesched
