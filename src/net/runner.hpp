// Entry points running the unchanged §5 protocol over the asynchronous
// lossy transport: build the universe, layering and communication graph
// exactly like the synchronous runners (dist/protocol.hpp), shard the
// demands onto processors, wrap the async network in an
// alpha-synchronizer, and execute both phases over it.
//
// Guarantee (enforced by tests/async_equivalence_test.cpp): for any
// latency model, drop rate and placement, the result — solution, profit,
// duals, local-view consistency — is bit-identical to the corresponding
// runDistributedUnit{Tree,Line} call; only the wire accounting
// (virtual time, transmissions, retransmissions, drops, per-processor
// load) differs.
#pragma once

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"
#include "dist/protocol.hpp"
#include "net/synchronizer.hpp"

namespace treesched {

/// Runs the protocol on a tree problem over an async lossy network.
DistributedResult runAsyncUnitTree(const TreeProblem& problem,
                                   const DistributedOptions& options = {},
                                   const AsyncConfig& net = {});

/// Runs the protocol on a line problem over an async lossy network.
DistributedResult runAsyncUnitLine(const LineProblem& problem,
                                   const DistributedOptions& options = {},
                                   const AsyncConfig& net = {});

}  // namespace treesched
