#include "net/shard.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace treesched {

namespace {

void finalize(ShardPlacement& placement) {
  placement.demandsOfProcessor.assign(
      static_cast<std::size_t>(placement.numProcessors), {});
  for (DemandId d = 0; d < placement.numDemands(); ++d) {
    const std::int32_t p =
        placement.processorOfDemand[static_cast<std::size_t>(d)];
    checkIndex(p, placement.numProcessors, "shard placement entry");
    placement.demandsOfProcessor[static_cast<std::size_t>(p)].push_back(d);
  }
}

}  // namespace

ShardPlacement ShardPlacement::identity(std::int32_t numDemands) {
  checkThat(numDemands > 0, "placement needs demands", __FILE__, __LINE__);
  ShardPlacement placement;
  placement.numProcessors = numDemands;
  placement.processorOfDemand.resize(static_cast<std::size_t>(numDemands));
  for (DemandId d = 0; d < numDemands; ++d) {
    placement.processorOfDemand[static_cast<std::size_t>(d)] = d;
  }
  finalize(placement);
  return placement;
}

ShardPlacement ShardPlacement::build(
    ShardStrategy strategy,
    const std::vector<std::vector<std::int32_t>>& access,
    std::int32_t numProcessors) {
  const auto numDemands = static_cast<std::int32_t>(access.size());
  checkThat(numDemands > 0, "placement needs demands", __FILE__, __LINE__);
  checkThat(numProcessors > 0, "placement needs processors", __FILE__,
            __LINE__);
  numProcessors = std::min(numProcessors, numDemands);

  ShardPlacement placement;
  placement.numProcessors = numProcessors;
  placement.processorOfDemand.resize(static_cast<std::size_t>(numDemands));

  switch (strategy) {
    case ShardStrategy::RoundRobin:
      for (DemandId d = 0; d < numDemands; ++d) {
        placement.processorOfDemand[static_cast<std::size_t>(d)] =
            d % numProcessors;
      }
      break;
    case ShardStrategy::Locality: {
      // Order by home network (smallest accessible id; demands with no
      // access sort last), then cut into near-equal contiguous blocks.
      std::vector<DemandId> order(static_cast<std::size_t>(numDemands));
      for (DemandId d = 0; d < numDemands; ++d) {
        order[static_cast<std::size_t>(d)] = d;
      }
      const auto homeNetwork = [&access](DemandId d) {
        const auto& nets = access[static_cast<std::size_t>(d)];
        if (nets.empty()) return std::numeric_limits<std::int32_t>::max();
        return *std::min_element(nets.begin(), nets.end());
      };
      std::stable_sort(order.begin(), order.end(),
                       [&](DemandId a, DemandId b) {
                         return homeNetwork(a) < homeNetwork(b);
                       });
      for (std::int32_t rank = 0; rank < numDemands; ++rank) {
        // Block sizes differ by at most one: block p covers ranks in
        // [p * numDemands / numProcessors, (p+1) * numDemands / numProc).
        const auto p = static_cast<std::int32_t>(
            (static_cast<std::int64_t>(rank) * numProcessors) / numDemands);
        placement.processorOfDemand[static_cast<std::size_t>(
            order[static_cast<std::size_t>(rank)])] = p;
      }
      break;
    }
  }
  finalize(placement);
  return placement;
}

ShardPlacement ShardPlacement::livePool(
    const std::vector<std::vector<std::int32_t>>& access,
    std::int32_t numProcessors) {
  const auto numDemands = static_cast<std::int32_t>(access.size());
  checkThat(numDemands > 0, "placement needs demands", __FILE__, __LINE__);
  checkThat(numProcessors > 0, "placement needs processors", __FILE__,
            __LINE__);
  numProcessors = std::min(numProcessors, numDemands);

  ShardPlacement placement;
  placement.live = true;
  placement.numProcessors = numProcessors;
  placement.processorOfDemand.assign(static_cast<std::size_t>(numDemands),
                                     kUnplaced);
  placement.demandsOfProcessor.assign(
      static_cast<std::size_t>(numProcessors), {});
  placement.liveOfProcessor.assign(static_cast<std::size_t>(numProcessors),
                                   0);
  placement.tombstonesOfProcessor.assign(
      static_cast<std::size_t>(numProcessors), 0);
  placement.homeNetwork.resize(static_cast<std::size_t>(numDemands));
  for (DemandId d = 0; d < numDemands; ++d) {
    placement.homeNetwork[static_cast<std::size_t>(d)] =
        homeNetworkOf(access[static_cast<std::size_t>(d)]);
  }
  return placement;
}

std::int32_t homeNetworkOf(const std::vector<std::int32_t>& access) {
  if (access.empty()) return -1;
  return *std::min_element(access.begin(), access.end());
}

std::int32_t ShardPlacement::placeDemand(DemandId d) {
  checkThat(live, "placeDemand on a live placement", __FILE__, __LINE__);
  checkIndex(d, numDemands(), "placeDemand");
  checkThat(!isPlaced(d), "placeDemand target unplaced", __FILE__, __LINE__);

  const std::int32_t net = homeNetwork[static_cast<std::size_t>(d)];
  std::int32_t p = kUnplaced;
  if (net >= 0) {
    const auto anchor = networkAnchors.find(net);
    if (anchor != networkAnchors.end()) {
      p = anchor->second.processor;
      ++anchor->second.refs;
    }
  }
  if (p == kUnplaced) {
    p = 0;
    for (std::int32_t q = 1; q < numProcessors; ++q) {
      if (liveOfProcessor[static_cast<std::size_t>(q)] <
          liveOfProcessor[static_cast<std::size_t>(p)]) {
        p = q;
      }
    }
    if (net >= 0) {
      networkAnchors.emplace(net, NetworkAnchor{p, 1});
    }
  }
  processorOfDemand[static_cast<std::size_t>(d)] = p;
  demandsOfProcessor[static_cast<std::size_t>(p)].push_back(d);
  ++liveOfProcessor[static_cast<std::size_t>(p)];
  return p;
}

void ShardPlacement::removeDemand(DemandId d) {
  checkThat(live, "removeDemand on a live placement", __FILE__, __LINE__);
  checkIndex(d, numDemands(), "removeDemand");
  checkThat(isPlaced(d), "removeDemand target placed", __FILE__, __LINE__);
  const std::int32_t p = processorOfDemand[static_cast<std::size_t>(d)];
  processorOfDemand[static_cast<std::size_t>(d)] = kUnplaced;

  auto& hosted = demandsOfProcessor[static_cast<std::size_t>(p)];
  const auto pos = std::find(hosted.begin(), hosted.end(), d);
  checkThat(pos != hosted.end(), "removed demand hosted", __FILE__, __LINE__);
  *pos = kUnplaced;
  --liveOfProcessor[static_cast<std::size_t>(p)];
  ++tombstonesOfProcessor[static_cast<std::size_t>(p)];

  const std::int32_t net = homeNetwork[static_cast<std::size_t>(d)];
  if (net >= 0) {
    const auto anchor = networkAnchors.find(net);
    checkThat(anchor != networkAnchors.end(), "home network anchored",
              __FILE__, __LINE__);
    if (--anchor->second.refs == 0) {
      networkAnchors.erase(anchor);
    }
  }

  // Periodic compaction: amortized O(1) — a tombstone is erased at most
  // once, and a compaction halves the list it runs on.
  if (tombstonesOfProcessor[static_cast<std::size_t>(p)] >
      liveOfProcessor[static_cast<std::size_t>(p)]) {
    compactProcessor(p);
  }
}

void ShardPlacement::compactProcessor(std::int32_t p) {
  checkIndex(p, numProcessors, "compactProcessor");
  auto& hosted = demandsOfProcessor[static_cast<std::size_t>(p)];
  if (tombstonesOfProcessor[static_cast<std::size_t>(p)] == 0) return;
  hosted.erase(std::remove(hosted.begin(), hosted.end(), kUnplaced),
               hosted.end());
  tombstonesOfProcessor[static_cast<std::size_t>(p)] = 0;
  ++compactions;
}

std::vector<std::vector<std::int32_t>> shardAdjacency(
    const std::vector<std::vector<std::int32_t>>& demandAdjacency,
    const ShardPlacement& placement) {
  checkThat(static_cast<std::int32_t>(demandAdjacency.size()) ==
                placement.numDemands(),
            "placement covers the communication graph", __FILE__, __LINE__);
  std::vector<std::vector<std::int32_t>> adjacency(
      static_cast<std::size_t>(placement.numProcessors));
  for (DemandId d = 0; d < placement.numDemands(); ++d) {
    const std::int32_t p =
        placement.processorOfDemand[static_cast<std::size_t>(d)];
    for (const std::int32_t e : demandAdjacency[static_cast<std::size_t>(d)]) {
      checkIndex(e, placement.numDemands(), "shardAdjacency neighbour");
      const std::int32_t q =
          placement.processorOfDemand[static_cast<std::size_t>(e)];
      if (p != q) {
        adjacency[static_cast<std::size_t>(p)].push_back(q);
      }
    }
  }
  for (auto& nbrs : adjacency) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adjacency;
}

}  // namespace treesched
