#include "net/shard.hpp"

#include <algorithm>
#include <limits>
#include <span>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {

namespace {

void finalize(ShardPlacement& placement) {
  placement.demandsOfProcessor.assign(
      static_cast<std::size_t>(placement.numProcessors), {});
  for (DemandId d = 0; d < placement.numDemands(); ++d) {
    const std::int32_t p =
        placement.processorOfDemand[static_cast<std::size_t>(d)];
    checkIndex(p, placement.numProcessors, "shard placement entry");
    placement.demandsOfProcessor[static_cast<std::size_t>(p)].push_back(d);
  }
}

}  // namespace

ShardPlacement ShardPlacement::identity(std::int32_t numDemands) {
  checkThat(numDemands > 0, "placement needs demands", __FILE__, __LINE__);
  ShardPlacement placement;
  placement.numProcessors = numDemands;
  placement.processorOfDemand.resize(static_cast<std::size_t>(numDemands));
  for (DemandId d = 0; d < numDemands; ++d) {
    placement.processorOfDemand[static_cast<std::size_t>(d)] = d;
  }
  finalize(placement);
  return placement;
}

ShardPlacement ShardPlacement::build(
    ShardStrategy strategy,
    const std::vector<std::vector<std::int32_t>>& access,
    std::int32_t numProcessors) {
  const auto numDemands = static_cast<std::int32_t>(access.size());
  checkThat(numDemands > 0, "placement needs demands", __FILE__, __LINE__);
  checkThat(numProcessors > 0, "placement needs processors", __FILE__,
            __LINE__);
  numProcessors = std::min(numProcessors, numDemands);

  ShardPlacement placement;
  placement.numProcessors = numProcessors;
  placement.processorOfDemand.resize(static_cast<std::size_t>(numDemands));

  switch (strategy) {
    case ShardStrategy::RoundRobin:
      for (DemandId d = 0; d < numDemands; ++d) {
        placement.processorOfDemand[static_cast<std::size_t>(d)] =
            d % numProcessors;
      }
      break;
    case ShardStrategy::Locality: {
      // Order by home network (smallest accessible id; demands with no
      // access sort last), then cut into near-equal contiguous blocks.
      std::vector<DemandId> order(static_cast<std::size_t>(numDemands));
      for (DemandId d = 0; d < numDemands; ++d) {
        order[static_cast<std::size_t>(d)] = d;
      }
      const auto homeNetwork = [&access](DemandId d) {
        const auto& nets = access[static_cast<std::size_t>(d)];
        if (nets.empty()) return std::numeric_limits<std::int32_t>::max();
        return *std::min_element(nets.begin(), nets.end());
      };
      std::stable_sort(order.begin(), order.end(),
                       [&](DemandId a, DemandId b) {
                         return homeNetwork(a) < homeNetwork(b);
                       });
      for (std::int32_t rank = 0; rank < numDemands; ++rank) {
        // Block sizes differ by at most one: block p covers ranks in
        // [p * numDemands / numProcessors, (p+1) * numDemands / numProc).
        const auto p = static_cast<std::int32_t>(
            (static_cast<std::int64_t>(rank) * numProcessors) / numDemands);
        placement.processorOfDemand[static_cast<std::size_t>(
            order[static_cast<std::size_t>(rank)])] = p;
      }
      break;
    }
  }
  finalize(placement);
  return placement;
}

ShardPlacement ShardPlacement::livePool(
    const std::vector<std::vector<std::int32_t>>& access,
    std::int32_t numProcessors) {
  const auto numDemands = static_cast<std::int32_t>(access.size());
  checkThat(numDemands > 0, "placement needs demands", __FILE__, __LINE__);
  checkThat(numProcessors > 0, "placement needs processors", __FILE__,
            __LINE__);
  numProcessors = std::min(numProcessors, numDemands);

  ShardPlacement placement;
  placement.live = true;
  placement.numProcessors = numProcessors;
  placement.processorOfDemand.assign(static_cast<std::size_t>(numDemands),
                                     kUnplaced);
  placement.demandsOfProcessor.assign(
      static_cast<std::size_t>(numProcessors), {});
  placement.liveOfProcessor.assign(static_cast<std::size_t>(numProcessors),
                                   0);
  placement.tombstonesOfProcessor.assign(
      static_cast<std::size_t>(numProcessors), 0);
  placement.homeNetwork.resize(static_cast<std::size_t>(numDemands));
  for (DemandId d = 0; d < numDemands; ++d) {
    placement.homeNetwork[static_cast<std::size_t>(d)] =
        homeNetworkOf(access[static_cast<std::size_t>(d)]);
  }
  placement.weightOfDemand.assign(static_cast<std::size_t>(numDemands), 1);
  placement.weightedLoadOfProcessor.assign(
      static_cast<std::size_t>(numProcessors), 0);
  return placement;
}

std::int32_t homeNetworkOf(const std::vector<std::int32_t>& access) {
  if (access.empty()) return -1;
  return *std::min_element(access.begin(), access.end());
}

std::int32_t ShardPlacement::placeDemand(DemandId d) {
  checkThat(live, "placeDemand on a live placement", __FILE__, __LINE__);
  checkIndex(d, numDemands(), "placeDemand");
  checkThat(!isPlaced(d), "placeDemand target unplaced", __FILE__, __LINE__);

  const std::int32_t net = homeNetwork[static_cast<std::size_t>(d)];
  std::int32_t p = kUnplaced;
  if (net >= 0) {
    const auto anchor = networkAnchors.find(net);
    if (anchor != networkAnchors.end()) {
      p = anchor->second.processor;
      ++anchor->second.refs;
    }
  }
  if (p == kUnplaced) {
    p = 0;
    for (std::int32_t q = 1; q < numProcessors; ++q) {
      if (weightedLoadOfProcessor[static_cast<std::size_t>(q)] <
          weightedLoadOfProcessor[static_cast<std::size_t>(p)]) {
        p = q;
      }
    }
    if (net >= 0) {
      networkAnchors.emplace(net, NetworkAnchor{p, 1});
    }
  }
  processorOfDemand[static_cast<std::size_t>(d)] = p;
  demandsOfProcessor[static_cast<std::size_t>(p)].push_back(d);
  ++liveOfProcessor[static_cast<std::size_t>(p)];
  weightedLoadOfProcessor[static_cast<std::size_t>(p)] +=
      weightOfDemand[static_cast<std::size_t>(d)];
  return p;
}

void ShardPlacement::setDemandWeight(DemandId d, std::int64_t weight) {
  checkThat(live, "setDemandWeight on a live placement", __FILE__, __LINE__);
  checkIndex(d, numDemands(), "setDemandWeight");
  checkThat(weight >= 1, "demand weight >= 1", __FILE__, __LINE__);
  const std::int64_t delta =
      weight - weightOfDemand[static_cast<std::size_t>(d)];
  weightOfDemand[static_cast<std::size_t>(d)] = weight;
  if (isPlaced(d)) {
    const std::int32_t p = processorOfDemand[static_cast<std::size_t>(d)];
    weightedLoadOfProcessor[static_cast<std::size_t>(p)] += delta;
  }
}

void ShardPlacement::removeDemand(DemandId d) {
  checkThat(live, "removeDemand on a live placement", __FILE__, __LINE__);
  checkIndex(d, numDemands(), "removeDemand");
  checkThat(isPlaced(d), "removeDemand target placed", __FILE__, __LINE__);
  const std::int32_t p = processorOfDemand[static_cast<std::size_t>(d)];
  processorOfDemand[static_cast<std::size_t>(d)] = kUnplaced;

  auto& hosted = demandsOfProcessor[static_cast<std::size_t>(p)];
  const auto pos = std::find(hosted.begin(), hosted.end(), d);
  checkThat(pos != hosted.end(), "removed demand hosted", __FILE__, __LINE__);
  *pos = kUnplaced;
  --liveOfProcessor[static_cast<std::size_t>(p)];
  ++tombstonesOfProcessor[static_cast<std::size_t>(p)];
  weightedLoadOfProcessor[static_cast<std::size_t>(p)] -=
      weightOfDemand[static_cast<std::size_t>(d)];

  const std::int32_t net = homeNetwork[static_cast<std::size_t>(d)];
  if (net >= 0) {
    const auto anchor = networkAnchors.find(net);
    checkThat(anchor != networkAnchors.end(), "home network anchored",
              __FILE__, __LINE__);
    if (--anchor->second.refs == 0) {
      networkAnchors.erase(anchor);
    }
  }

  // Periodic compaction: amortized O(1) — a tombstone is erased at most
  // once, and a compaction halves the list it runs on.
  if (tombstonesOfProcessor[static_cast<std::size_t>(p)] >
      liveOfProcessor[static_cast<std::size_t>(p)]) {
    compactProcessor(p);
  }
}

double ShardPlacement::loadVariance() const {
  if (numProcessors <= 0) return 0.0;
  double mean = 0;
  for (const std::int64_t n : weightedLoadOfProcessor) {
    mean += static_cast<double>(n);
  }
  mean /= static_cast<double>(numProcessors);
  double variance = 0;
  for (const std::int64_t n : weightedLoadOfProcessor) {
    const double delta = static_cast<double>(n) - mean;
    variance += delta * delta;
  }
  return variance / static_cast<double>(numProcessors);
}

namespace {

/// A movable unit on one processor during planning: a home network's
/// hosted demands (net >= 0, moves wholesale or splits), or a single
/// network-less demand (net == -1).
struct MoveGroup {
  std::int32_t net = -1;
  std::vector<DemandId> demands;  ///< ascending
};

double varianceOf(const std::vector<std::int64_t>& loads) {
  if (loads.empty()) return 0.0;
  double mean = 0;
  for (const std::int64_t n : loads) mean += static_cast<double>(n);
  mean /= static_cast<double>(loads.size());
  double variance = 0;
  for (const std::int64_t n : loads) {
    const double delta = static_cast<double>(n) - mean;
    variance += delta * delta;
  }
  return variance / static_cast<double>(loads.size());
}

}  // namespace

ShardPlacement::RebalancePlan ShardPlacement::planRebalance(
    double threshold, std::uint64_t seed, std::int32_t maxMoves) const {
  checkThat(live, "planRebalance on a live placement", __FILE__, __LINE__);
  RebalancePlan plan;
  plan.varianceBefore = loadVariance();
  plan.varianceAfter = plan.varianceBefore;
  if (numProcessors <= 1) {
    return plan;
  }

  std::vector<std::int64_t> loads(weightedLoadOfProcessor.begin(),
                                  weightedLoadOfProcessor.end());
  std::int64_t total = 0;
  for (const std::int64_t n : loads) total += n;
  if (total == 0) {
    return plan;
  }
  const auto groupWeight = [this](const MoveGroup& g) {
    std::int64_t w = 0;
    for (const DemandId d : g.demands) {
      w += weightOfDemand[static_cast<std::size_t>(d)];
    }
    return w;
  };
  const double mean =
      static_cast<double>(total) / static_cast<double>(numProcessors);

  // Movable groups per processor — built once from the real hosted
  // lists, then maintained in lock-step with the simulated `loads`, so a
  // processor that received moves earlier in the plan can serve as a hot
  // source later. Group demand lists are ascending; groups sort by
  // network id (network-less singletons last) — deterministic.
  std::vector<std::vector<MoveGroup>> groups(
      static_cast<std::size_t>(numProcessors));
  auto buildGroups = [&](std::int32_t p) {
    auto& out = groups[static_cast<std::size_t>(p)];
    std::vector<DemandId> hosted;
    for (const DemandId d : demandsOfProcessor[static_cast<std::size_t>(p)]) {
      if (d != kUnplaced) hosted.push_back(d);
    }
    std::sort(hosted.begin(), hosted.end());
    for (const DemandId d : hosted) {
      const std::int32_t net = homeNetwork[static_cast<std::size_t>(d)];
      if (net >= 0 && !out.empty() && out.back().net == net) {
        out.back().demands.push_back(d);
        continue;
      }
      // Sort key: networks group by id; a network-less demand is its own
      // group keyed after every network.
      out.push_back(MoveGroup{net, {d}});
    }
    constexpr std::int64_t kNoNetKey =
        std::numeric_limits<std::int64_t>::max();
    // Strict total order (group fronts are distinct demands), so plain
    // sort is deterministic and skips stable_sort's temporary buffer.
    std::sort(out.begin(), out.end(),
              [](const MoveGroup& a, const MoveGroup& b) {
                const std::int64_t ka = a.net >= 0 ? a.net : kNoNetKey;
                const std::int64_t kb = b.net >= 0 ? b.net : kNoNetKey;
                if (ka != kb) return ka < kb;
                return a.demands.front() < b.demands.front();
              });
    // Demands of one network can be interleaved with others in hosted
    // order; merge same-net runs after the sort.
    std::vector<MoveGroup> merged;
    for (MoveGroup& g : out) {
      if (g.net >= 0 && !merged.empty() && merged.back().net == g.net) {
        merged.back().demands.insert(merged.back().demands.end(),
                                     g.demands.begin(), g.demands.end());
        continue;
      }
      merged.push_back(std::move(g));
    }
    out = std::move(merged);
  };
  for (std::int32_t p = 0; p < numProcessors; ++p) {
    buildGroups(p);
  }

  // Receiving side of a simulated move: demands of a home network merge
  // into the processor's existing group of that network (kept ascending);
  // network-less demands stay singleton groups.
  auto receive = [&](std::int32_t p, std::int32_t net,
                     std::span<const DemandId> demands) {
    auto& dest = groups[static_cast<std::size_t>(p)];
    if (net >= 0) {
      for (MoveGroup& g : dest) {
        if (g.net != net) continue;
        g.demands.insert(g.demands.end(), demands.begin(), demands.end());
        std::sort(g.demands.begin(), g.demands.end());
        return;
      }
    }
    for (const DemandId d : demands) {
      dest.push_back(MoveGroup{net, {d}});
      if (net >= 0) break;
    }
    if (net >= 0) {
      dest.back().demands.assign(demands.begin(), demands.end());
    }
  };

  // Anchor positions as the plan's earlier moves left them (lazily
  // seeded from the real anchors) — a group that already migrated once
  // carries its anchor along on the next wholesale move.
  std::unordered_map<std::int32_t, std::int32_t> simAnchor;
  auto anchorProcessor = [&](std::int32_t net) {
    const auto moved = simAnchor.find(net);
    if (moved != simAnchor.end()) return moved->second;
    const auto anchor = networkAnchors.find(net);
    return anchor != networkAnchors.end() ? anchor->second.processor
                                          : kUnplaced;
  };

  for (std::int32_t iter = 0; iter < maxMoves; ++iter) {
    std::int32_t hot = 0;
    std::int32_t cold = 0;
    for (std::int32_t p = 1; p < numProcessors; ++p) {
      if (loads[static_cast<std::size_t>(p)] >
          loads[static_cast<std::size_t>(hot)]) {
        hot = p;
      }
      if (loads[static_cast<std::size_t>(p)] <
          loads[static_cast<std::size_t>(cold)]) {
        cold = p;
      }
    }
    const std::int64_t gap = loads[static_cast<std::size_t>(hot)] -
                             loads[static_cast<std::size_t>(cold)];
    if (static_cast<double>(loads[static_cast<std::size_t>(hot)]) <=
            threshold * mean ||
        gap <= 1) {
      break;
    }
    auto& hotGroups = groups[static_cast<std::size_t>(hot)];

    // Whole-group move first: the heaviest group that still improves the
    // (hot, cold) pair — weight strictly smaller than the gap — keeps
    // its demands co-hosted (locality preserved). Hash tie-break on
    // equal weights keeps the choice deterministic yet seed-varied.
    std::size_t best = hotGroups.size();
    for (std::size_t g = 0; g < hotGroups.size(); ++g) {
      const std::int64_t size = groupWeight(hotGroups[g]);
      if (size == 0 || size >= gap) continue;
      if (best == hotGroups.size()) {
        best = g;
        continue;
      }
      const std::int64_t bestSize = groupWeight(hotGroups[best]);
      if (size > bestSize) {
        best = g;
      } else if (size == bestSize) {
        const std::uint64_t hg = keyedHash(
            seed, static_cast<std::uint64_t>(iter),
            static_cast<std::uint64_t>(hotGroups[g].demands.front()));
        const std::uint64_t hb = keyedHash(
            seed, static_cast<std::uint64_t>(iter),
            static_cast<std::uint64_t>(hotGroups[best].demands.front()));
        if (hg < hb) best = g;
      }
    }

    if (best != hotGroups.size()) {
      MoveGroup& g = hotGroups[best];
      for (const DemandId d : g.demands) {
        plan.moves.push_back(Migration{d, hot, cold});
      }
      const std::int64_t size = groupWeight(g);
      loads[static_cast<std::size_t>(hot)] -= size;
      loads[static_cast<std::size_t>(cold)] += size;
      if (g.net >= 0) {
        if (anchorProcessor(g.net) == hot) {
          plan.anchorMoves.emplace_back(g.net, cold);
          simAnchor[g.net] = cold;
        }
        ++plan.networksMoved;
      }
      const std::vector<DemandId> moved = std::move(g.demands);
      g.demands.clear();
      receive(cold, g.net, moved);
      continue;
    }

    // No whole group fits: one network dominates the hot processor.
    // Split it — peel demands off the back of the heaviest group until
    // about half the gap's weight moved, always keeping its front
    // demand (ascending ids stay put, so repeated splits peel
    // deterministically).
    std::size_t largest = 0;
    for (std::size_t g = 1; g < hotGroups.size(); ++g) {
      if (groupWeight(hotGroups[g]) > groupWeight(hotGroups[largest])) {
        largest = g;
      }
    }
    if (hotGroups.empty() || hotGroups[largest].demands.empty()) {
      break;  // nothing movable (stale accounting cannot happen, but be safe)
    }
    MoveGroup& g = hotGroups[largest];
    const std::int64_t targetWeight = std::max<std::int64_t>(1, gap / 2);
    std::int64_t movedWeight = 0;
    std::vector<DemandId> moved;
    while (g.demands.size() > 1 && movedWeight < targetWeight) {
      const DemandId d = g.demands.back();
      plan.moves.push_back(Migration{d, hot, cold});
      moved.push_back(d);
      movedWeight += weightOfDemand[static_cast<std::size_t>(d)];
      g.demands.pop_back();
    }
    if (moved.empty()) {
      break;  // single-demand group heavier than the gap: unsplittable
    }
    loads[static_cast<std::size_t>(hot)] -= movedWeight;
    loads[static_cast<std::size_t>(cold)] += movedWeight;
    receive(cold, g.net, moved);
  }

  plan.varianceAfter = varianceOf(loads);
  return plan;
}

void ShardPlacement::migrateDemand(DemandId d, std::int32_t to) {
  checkThat(live, "migrateDemand on a live placement", __FILE__, __LINE__);
  checkIndex(d, numDemands(), "migrateDemand");
  checkIndex(to, numProcessors, "migrateDemand target");
  checkThat(isPlaced(d), "migrateDemand source placed", __FILE__, __LINE__);
  const std::int32_t from = processorOfDemand[static_cast<std::size_t>(d)];
  if (from == to) {
    return;  // migrate-to-self: nothing to do
  }

  auto& hosted = demandsOfProcessor[static_cast<std::size_t>(from)];
  const auto pos = std::find(hosted.begin(), hosted.end(), d);
  checkThat(pos != hosted.end(), "migrated demand hosted", __FILE__, __LINE__);
  *pos = kUnplaced;
  --liveOfProcessor[static_cast<std::size_t>(from)];
  ++tombstonesOfProcessor[static_cast<std::size_t>(from)];

  processorOfDemand[static_cast<std::size_t>(d)] = to;
  demandsOfProcessor[static_cast<std::size_t>(to)].push_back(d);
  ++liveOfProcessor[static_cast<std::size_t>(to)];
  weightedLoadOfProcessor[static_cast<std::size_t>(from)] -=
      weightOfDemand[static_cast<std::size_t>(d)];
  weightedLoadOfProcessor[static_cast<std::size_t>(to)] +=
      weightOfDemand[static_cast<std::size_t>(d)];

  // Same amortized compaction rule as removeDemand: a whole-network
  // migration leaves a trail of tombstones on the source.
  if (tombstonesOfProcessor[static_cast<std::size_t>(from)] >
      liveOfProcessor[static_cast<std::size_t>(from)]) {
    compactProcessor(from);
  }
}

void ShardPlacement::retargetAnchor(std::int32_t net, std::int32_t to) {
  checkThat(live, "retargetAnchor on a live placement", __FILE__, __LINE__);
  checkIndex(to, numProcessors, "retargetAnchor target");
  const auto anchor = networkAnchors.find(net);
  checkThat(anchor != networkAnchors.end(), "retargeted network anchored",
            __FILE__, __LINE__);
  anchor->second.processor = to;
}

void ShardPlacement::compactProcessor(std::int32_t p) {
  checkIndex(p, numProcessors, "compactProcessor");
  auto& hosted = demandsOfProcessor[static_cast<std::size_t>(p)];
  if (tombstonesOfProcessor[static_cast<std::size_t>(p)] == 0) return;
  hosted.erase(std::remove(hosted.begin(), hosted.end(), kUnplaced),
               hosted.end());
  tombstonesOfProcessor[static_cast<std::size_t>(p)] = 0;
  ++compactions;
}

std::vector<std::vector<std::int32_t>> shardAdjacency(
    const std::vector<std::vector<std::int32_t>>& demandAdjacency,
    const ShardPlacement& placement) {
  checkThat(static_cast<std::int32_t>(demandAdjacency.size()) ==
                placement.numDemands(),
            "placement covers the communication graph", __FILE__, __LINE__);
  std::vector<std::vector<std::int32_t>> adjacency(
      static_cast<std::size_t>(placement.numProcessors));
  for (DemandId d = 0; d < placement.numDemands(); ++d) {
    const std::int32_t p =
        placement.processorOfDemand[static_cast<std::size_t>(d)];
    for (const std::int32_t e : demandAdjacency[static_cast<std::size_t>(d)]) {
      checkIndex(e, placement.numDemands(), "shardAdjacency neighbour");
      const std::int32_t q =
          placement.processorOfDemand[static_cast<std::size_t>(e)];
      if (p != q) {
        adjacency[static_cast<std::size_t>(p)].push_back(q);
      }
    }
  }
  for (auto& nbrs : adjacency) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adjacency;
}

}  // namespace treesched
