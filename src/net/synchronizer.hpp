// Alpha-synchronizer: the round-structured protocol over an async wire.
//
// The §5 protocol assumes synchronous rounds. An alpha-synchronizer
// (Awerbuch 1985) recovers them on an asynchronous network: in every
// round each processor sends its payload followed by a "safe" marker to
// every physical neighbour, and starts round r+1 only once the round-r
// markers of all neighbours have arrived. Because the underlying
// ack/retransmission links are reliable (net/async_network.hpp), every
// payload message broadcast in round r is in the recipients' inboxes
// before round r+1 — so, after canonical sorting, the protocol consumes
// exactly the inboxes the synchronous bus would produce, and the whole
// run is bit-identical to the round-synchronous execution under ANY
// latency model and ANY drop rate. Latency and loss cost virtual time,
// retransmissions and control traffic, never correctness.
//
// With a non-identity ShardPlacement one physical processor hosts many
// demands: intra-processor messages are local memory operations (free,
// instant), and a broadcast is sent once per remote processor rather than
// once per remote demand, so locality-aware placement measurably cuts
// wire traffic. The protocol still sees one logical endpoint per demand.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/message_plane.hpp"
#include "net/async_network.hpp"
#include "net/shard.hpp"
#include "net/transport.hpp"

namespace treesched {

class Counter;
class Gauge;
class Histogram;

/// Everything the asynchronous transport needs beyond the communication
/// graph: link behaviour, loss, and how demands map onto processors.
struct AsyncConfig {
  std::uint64_t seed = 1;  ///< keys every latency/drop draw
  AsyncLinkConfig link;
  ShardStrategy strategy = ShardStrategy::RoundRobin;
  /// Physical processors to shard onto; <= 0 keeps the paper's
  /// one-processor-per-demand model.
  std::int32_t shardProcessors = 0;
};

/// The synchronizer's topology is live (MutableTopology): demands can
/// connect and disconnect between rounds, exactly like on the
/// round-synchronous bus. The safe-marker bookkeeping — the physical
/// link set markers ride on — is maintained incrementally: a mutation
/// updates per-link demand-edge refcounts and rebuilds the remote
/// processor sets only for the touched demands, never the whole graph.
/// On a live ShardPlacement arrivals are placed locality-aware and
/// departures tombstoned (net/shard.hpp).
class AlphaSynchronizer : public Transport, public MutableTopology {
 public:
  /// `demandAdjacency` is the protocol's communication graph (validated);
  /// `placement` maps its vertices onto physical processors. Demands may
  /// be unplaced only while isolated (live placements place them on
  /// connect).
  AlphaSynchronizer(std::vector<std::vector<std::int32_t>> demandAdjacency,
                    ShardPlacement placement, const AsyncConfig& config);

  std::int32_t numProcessors() const override {
    return static_cast<std::int32_t>(adjacency_.size());
  }
  std::span<const std::int32_t> neighbors(std::int32_t p) const override;
  void broadcast(const Message& message) override;
  void endRound() override;
  void endSilentRounds(std::int64_t count) override;
  std::span<const Message> inbox(std::int32_t p) const override;
  void appendActiveInboxes(std::vector<std::int32_t>& out) const override;
  void attachRunner(ParallelRunner* runner) override {
    plane_.attachRunner(runner);
  }

  /// Publishes net.{rounds,busy_rounds,messages} counters plus the
  /// async-wire gauges net.{virtual_time,transmissions,retransmissions,
  /// drops,duplicates} (mirrors of the cumulative NetworkStats fields,
  /// refreshed each round) and emits a "deliver" instant per busy round.
  void attachTelemetry(Tracer* tracer, MetricsRegistry* metrics) override;

  /// Records the placement (connectDemand on a live placement) and
  /// migration (rebalanceShards) events of the decision provenance
  /// ledger — the lifecycle steps only the wire layer can see.
  void attachLedger(LedgerSink* ledger) override;

  /// Publishes the net.shard_hosted_demands histogram +
  /// net.shard_load_variance gauge from the current live placement (the
  /// online solver's once-per-epoch call; no-op without an attached
  /// registry or on a non-live placement).
  void recordPlacementLoad() override { publishLoadTelemetry(); }

  const NetworkStats& stats() const override { return stats_; }

  const ShardPlacement& placement() const { return placement_; }

  // ---- MutableTopology -------------------------------------------------

  /// Attaches demand `d` (currently isolated) with the given sorted,
  /// duplicate-free neighbour list. On a live placement, `d` (and any
  /// still-unplaced neighbour) is placed locality-aware first; new
  /// physical links appear only where a demand edge first crosses a
  /// processor pair.
  void connectDemand(std::int32_t d,
                     std::span<const std::int32_t> neighbors) override;

  /// Detaches demand `d`: every edge is removed (both sides), physical
  /// links whose last crossing demand edge disappeared are dropped from
  /// the safe-marker set, and on a live placement the demand is
  /// tombstoned out of its shard.
  void disconnectDemand(std::int32_t d) override;

  std::int32_t numDemands() const override { return numProcessors(); }

  std::span<const std::int32_t> currentNeighbors(
      std::int32_t demand) const override {
    return neighbors(demand);
  }

  /// Epoch-boundary hot-shard rebalancing (live placements with > 1
  /// processor; everything else reports current variance and moves
  /// nothing). Applies the deterministic ShardPlacement::planRebalance
  /// plan: every migrated demand's physical-edge contributions are
  /// removed at the old placement and re-added at the new one, and the
  /// remote-processor broadcast sets of every touched demand (movers and
  /// their neighbours) are rebuilt — the same incremental bookkeeping as
  /// connect/disconnect, so safe-marker traffic stays exact. Placement
  /// is wire accounting only: the schedule is bit-identical with or
  /// without rebalancing (tests/rebalance_test.cpp). Emits a
  /// "rebalance" span when a tracer is live; the load telemetry itself
  /// is published by recordPlacementLoad() once per epoch, whether or
  /// not rebalancing runs.
  RebalanceOutcome rebalanceShards(const ShardRebalanceConfig& config) override;

  /// Forwards the demand's weight (live instance count) into the live
  /// placement's weighted-load accounting; no-op on a fixed placement.
  void setDemandWeight(std::int32_t demand, std::int64_t weight) override {
    if (placement_.live) {
      placement_.setDemandWeight(demand, weight);
    }
  }

 private:
  std::int32_t processorOf(DemandId d) const {
    return placement_.processorOfDemand[static_cast<std::size_t>(d)];
  }

  static std::uint64_t linkKey(std::int32_t p, std::int32_t q);

  /// Rebuilds the remote-processor broadcast set of one demand from its
  /// current adjacency — O(degree), called only for touched demands.
  void rebuildRemoteProcs(std::int32_t d);

  /// Adds/removes one demand edge's contribution to the physical link
  /// (processorOf(a), processorOf(b)); the link itself appears/disappears
  /// when its crossing-edge refcount moves between 0 and 1.
  void addPhysicalEdge(std::int32_t a, std::int32_t b);
  void removePhysicalEdge(std::int32_t a, std::int32_t b);

  std::vector<std::vector<std::int32_t>> adjacency_;  ///< demand-level
  ShardPlacement placement_;
  std::vector<std::vector<std::int32_t>> physAdjacency_;  ///< processor-level
  /// Demand edges crossing each physical link (unordered processor-pair
  /// key) — the incremental safe-marker bookkeeping.
  std::unordered_map<std::uint64_t, std::int32_t> physEdgeCount_;
  /// Remote processors hosting at least one neighbour of demand d —
  /// each broadcast goes to the wire once per entry, not once per demand.
  std::vector<std::vector<std::int32_t>> remoteProcsOf_;
  AsyncNetwork phys_;
  double silentRoundCost_ = 0;
  std::int64_t pendingPayload_ = 0;  ///< wire packets since last boundary
  /// Demand-level inboxes: same-processor deliveries are staged during
  /// the round, wire deliveries at the boundary; one deliver() builds
  /// every inbox as a flat-buffer segment with zero hot-loop allocation.
  MessagePlane plane_;
  NetworkStats stats_;

  // Telemetry plane (null when detached).
  Tracer* tracer_ = nullptr;
  bool trace_ = false;  ///< tracer present and enabled
  Counter* roundsCtr_ = nullptr;
  Counter* busyRoundsCtr_ = nullptr;
  Counter* messagesCtr_ = nullptr;
  Gauge* virtualTimeGauge_ = nullptr;
  Gauge* transmissionsGauge_ = nullptr;
  Gauge* retransmissionsGauge_ = nullptr;
  Gauge* dropsGauge_ = nullptr;
  Gauge* duplicatesGauge_ = nullptr;
  Histogram* hostedHist_ = nullptr;   ///< net.shard_hosted_demands
  Gauge* loadVarianceGauge_ = nullptr;  ///< net.shard_load_variance

  // Decision provenance ledger (null or disabled when detached).
  LedgerSink* ledger_ = nullptr;
  bool ledgerOn_ = false;

  /// Emits one Placement event for a freshly placed demand.
  void ledgerPlacement(DemandId d, std::int32_t processor);

  /// Records the per-processor live loads + variance (live placements;
  /// refreshed at every recordPlacementLoad call — the online solver's
  /// epoch cadence, rebalancing or not).
  void publishLoadTelemetry();
  std::vector<std::int32_t> touchedScratch_;  ///< rebalance rebuild set
};

}  // namespace treesched
