// Alpha-synchronizer: the round-structured protocol over an async wire.
//
// The §5 protocol assumes synchronous rounds. An alpha-synchronizer
// (Awerbuch 1985) recovers them on an asynchronous network: in every
// round each processor sends its payload followed by a "safe" marker to
// every physical neighbour, and starts round r+1 only once the round-r
// markers of all neighbours have arrived. Because the underlying
// ack/retransmission links are reliable (net/async_network.hpp), every
// payload message broadcast in round r is in the recipients' inboxes
// before round r+1 — so, after canonical sorting, the protocol consumes
// exactly the inboxes the synchronous bus would produce, and the whole
// run is bit-identical to the round-synchronous execution under ANY
// latency model and ANY drop rate. Latency and loss cost virtual time,
// retransmissions and control traffic, never correctness.
//
// With a non-identity ShardPlacement one physical processor hosts many
// demands: intra-processor messages are local memory operations (free,
// instant), and a broadcast is sent once per remote processor rather than
// once per remote demand, so locality-aware placement measurably cuts
// wire traffic. The protocol still sees one logical endpoint per demand.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/message_plane.hpp"
#include "net/async_network.hpp"
#include "net/shard.hpp"
#include "net/transport.hpp"

namespace treesched {

/// Everything the asynchronous transport needs beyond the communication
/// graph: link behaviour, loss, and how demands map onto processors.
struct AsyncConfig {
  std::uint64_t seed = 1;  ///< keys every latency/drop draw
  AsyncLinkConfig link;
  ShardStrategy strategy = ShardStrategy::RoundRobin;
  /// Physical processors to shard onto; <= 0 keeps the paper's
  /// one-processor-per-demand model.
  std::int32_t shardProcessors = 0;
};

class AlphaSynchronizer : public Transport {
 public:
  /// `demandAdjacency` is the protocol's communication graph (validated);
  /// `placement` maps its vertices onto physical processors.
  AlphaSynchronizer(std::vector<std::vector<std::int32_t>> demandAdjacency,
                    ShardPlacement placement, const AsyncConfig& config);

  std::int32_t numProcessors() const override {
    return static_cast<std::int32_t>(adjacency_.size());
  }
  std::span<const std::int32_t> neighbors(std::int32_t p) const override;
  void broadcast(const Message& message) override;
  void endRound() override;
  void endSilentRounds(std::int64_t count) override;
  std::span<const Message> inbox(std::int32_t p) const override;
  void appendActiveInboxes(std::vector<std::int32_t>& out) const override;
  void attachRunner(ParallelRunner* runner) override {
    plane_.attachRunner(runner);
  }
  const NetworkStats& stats() const override { return stats_; }

  const ShardPlacement& placement() const { return placement_; }

 private:
  std::int32_t processorOf(DemandId d) const {
    return placement_.processorOfDemand[static_cast<std::size_t>(d)];
  }

  std::vector<std::vector<std::int32_t>> adjacency_;  ///< demand-level
  ShardPlacement placement_;
  std::vector<std::vector<std::int32_t>> physAdjacency_;  ///< processor-level
  /// Remote processors hosting at least one neighbour of demand d —
  /// each broadcast goes to the wire once per entry, not once per demand.
  std::vector<std::vector<std::int32_t>> remoteProcsOf_;
  AsyncNetwork phys_;
  double silentRoundCost_ = 0;
  std::int64_t pendingPayload_ = 0;  ///< wire packets since last boundary
  /// Demand-level inboxes: same-processor deliveries are staged during
  /// the round, wire deliveries at the boundary; one deliver() builds
  /// every inbox as a flat-buffer segment with zero hot-loop allocation.
  MessagePlane plane_;
  NetworkStats stats_;
};

}  // namespace treesched
