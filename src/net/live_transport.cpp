#include "net/live_transport.hpp"

#include <algorithm>

#include "dist/sim_network.hpp"
#include "util/check.hpp"

namespace treesched {

namespace {

std::vector<std::vector<std::int32_t>> isolatedAdjacency(std::int32_t n) {
  return std::vector<std::vector<std::int32_t>>(
      static_cast<std::size_t>(std::max(1, n)));
}

}  // namespace

std::unique_ptr<Transport> makeLiveTransport(
    std::int32_t numDemands,
    const std::vector<std::vector<std::int32_t>>& access,
    const LiveTransportConfig& config) {
  checkThat(numDemands > 0, "live transport needs a demand pool", __FILE__,
            __LINE__);
  checkThat(static_cast<std::int32_t>(access.size()) == numDemands,
            "one accessibility list per pool demand", __FILE__, __LINE__);
  switch (config.kind) {
    case LiveTransportKind::SyncBus:
      return std::make_unique<SimNetwork>(isolatedAdjacency(numDemands));
    case LiveTransportKind::Async:
      return std::make_unique<AlphaSynchronizer>(
          isolatedAdjacency(numDemands), ShardPlacement::identity(numDemands),
          config.async);
    case LiveTransportKind::Sharded: {
      const std::int32_t processors =
          config.async.shardProcessors > 0
              ? config.async.shardProcessors
              : std::max<std::int32_t>(1, numDemands / 8);
      return std::make_unique<AlphaSynchronizer>(
          isolatedAdjacency(numDemands),
          ShardPlacement::livePool(access, processors), config.async);
    }
  }
  throw CheckError("unknown LiveTransportKind");
}

const char* liveTransportKindName(LiveTransportKind kind) {
  switch (kind) {
    case LiveTransportKind::SyncBus:
      return "sync";
    case LiveTransportKind::Async:
      return "async";
    case LiveTransportKind::Sharded:
      return "sharded";
  }
  return "unknown";
}

LiveTransportKind parseLiveTransportKind(const std::string& name) {
  if (name == "sync") return LiveTransportKind::SyncBus;
  if (name == "async") return LiveTransportKind::Async;
  if (name == "sharded") return LiveTransportKind::Sharded;
  throw CheckError("unknown live transport kind '" + name +
                   "' (use sync, async or sharded)");
}

}  // namespace treesched
