#include "net/transport.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace treesched {

void Transport::appendActiveInboxes(std::vector<std::int32_t>& out) const {
  const std::int32_t n = numProcessors();
  for (std::int32_t p = 0; p < n; ++p) {
    if (!inbox(p).empty()) {
      out.push_back(p);
    }
  }
}

void Transport::attachRunner(ParallelRunner* /*runner*/) {}

void Transport::attachTelemetry(Tracer* /*tracer*/,
                                MetricsRegistry* /*metrics*/) {}

void Transport::attachLedger(LedgerSink* /*ledger*/) {}

void Transport::recordPlacementLoad() {}

RebalanceOutcome MutableTopology::rebalanceShards(
    const ShardRebalanceConfig& /*config*/) {
  return {};
}

void MutableTopology::setDemandWeight(std::int32_t /*demand*/,
                                      std::int64_t /*weight*/) {}

MutableTopology* mutableTopologyOf(Transport& transport) {
  return dynamic_cast<MutableTopology*>(&transport);
}

MutableTopology& requireMutableTopology(Transport& transport) {
  MutableTopology* topology = mutableTopologyOf(transport);
  checkThat(topology != nullptr,
            "transport supports live topology mutation (MutableTopology)",
            __FILE__, __LINE__);
  return *topology;
}

void validateLiveTopology(const MutableTopology& topology) {
  std::vector<std::vector<std::int32_t>> adjacency(
      static_cast<std::size_t>(topology.numDemands()));
  for (std::int32_t d = 0; d < topology.numDemands(); ++d) {
    const auto neighbors = topology.currentNeighbors(d);
    adjacency[static_cast<std::size_t>(d)].assign(neighbors.begin(),
                                                  neighbors.end());
  }
  validateCommunicationAdjacency(adjacency);
}

void validateCommunicationAdjacency(
    const std::vector<std::vector<std::int32_t>>& adjacency) {
  const auto n = static_cast<std::int32_t>(adjacency.size());
  for (std::int32_t v = 0; v < n; ++v) {
    auto sorted = adjacency[static_cast<std::size_t>(v)];
    std::sort(sorted.begin(), sorted.end());
    checkThat(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
              "adjacency list duplicate-free", __FILE__, __LINE__);
    for (const std::int32_t w : sorted) {
      checkThat(w >= 0 && w < n, "adjacency entry in range", __FILE__,
                __LINE__);
      checkThat(w != v, "no self loops", __FILE__, __LINE__);
      const auto& back = adjacency[static_cast<std::size_t>(w)];
      checkThat(std::find(back.begin(), back.end(), v) != back.end(),
                "adjacency symmetric", __FILE__, __LINE__);
    }
  }
}

}  // namespace treesched
