#include "net/latency.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace treesched {

double unitInterval(std::uint64_t hash) {
  // Top 53 bits -> [0, 1) with full double resolution.
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

double sampleLatency(const LatencyConfig& config, double u01) {
  switch (config.model) {
    case LatencyModel::Fixed:
      return config.base;
    case LatencyModel::Uniform:
      return config.base + config.spread * u01;
    case LatencyModel::HeavyTail: {
      // Pareto via inverse CDF; 1 - u01 stays in (0, 1] so pow is finite.
      const double pareto =
          std::pow(1.0 - u01, -1.0 / config.tailShape);
      return config.base * std::min(pareto, config.tailCap);
    }
  }
  return config.base;
}

double latencyUpperBound(const LatencyConfig& config) {
  switch (config.model) {
    case LatencyModel::Fixed:
      return config.base;
    case LatencyModel::Uniform:
      return config.base + config.spread;
    case LatencyModel::HeavyTail:
      return config.base * config.tailCap;
  }
  return config.base;
}

void validateLatencyConfig(const LatencyConfig& config) {
  checkThat(config.base > 0, "latency base positive", __FILE__, __LINE__);
  checkThat(config.spread >= 0, "latency spread non-negative", __FILE__,
            __LINE__);
  checkThat(config.tailShape > 0, "pareto shape positive", __FILE__, __LINE__);
  checkThat(config.tailCap >= 1, "pareto cap >= 1", __FILE__, __LINE__);
}

}  // namespace treesched
