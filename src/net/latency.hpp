// Pluggable per-link latency models for the asynchronous simulator.
//
// Latencies are sampled from stable hash draws (util/rng.hpp), never from
// shared mutable RNG state, so a packet's delay depends only on
// (seed, packet id, attempt) — event-loop scheduling order can never
// perturb the sampled values, which keeps whole runs reproducible.
#pragma once

#include <cstdint>

namespace treesched {

enum class LatencyModel : std::uint8_t {
  Fixed,     ///< every packet takes exactly `base`
  Uniform,   ///< uniform in [base, base + spread]
  HeavyTail  ///< Pareto(shape) scaled by `base`, capped at base * tailCap
};

/// One link-delay distribution. `base` is the minimum one-way delay in
/// abstract time units; the synchronizer also uses it as the cost of a
/// barrier round that moves no payload.
struct LatencyConfig {
  LatencyModel model = LatencyModel::Fixed;
  double base = 1.0;
  double spread = 0.0;      ///< Uniform: width of the interval
  double tailShape = 1.5;   ///< HeavyTail: Pareto shape alpha (> 0)
  double tailCap = 64.0;    ///< HeavyTail: max multiple of base (>= 1)
};

/// Maps a hash word to a uniform double in [0, 1).
double unitInterval(std::uint64_t hash);

/// Samples one delay; `u01` in [0, 1) selects the quantile. Deterministic
/// and strictly positive for every valid config.
double sampleLatency(const LatencyConfig& config, double u01);

/// A finite upper bound on sampleLatency over all quantiles; used to
/// derive a default retransmission timeout.
double latencyUpperBound(const LatencyConfig& config);

/// Throws CheckError unless the config is well-formed (positive base,
/// non-negative spread, positive shape, cap >= 1).
void validateLatencyConfig(const LatencyConfig& config);

}  // namespace treesched
