// Transport abstraction between the §5 protocol and the wire.
//
// The protocol engine (dist/protocol.cpp) is written against the
// round-synchronous programming model: broadcast to neighbours, end the
// round, read the inbox. A Transport supplies that model; how the bits
// actually move is the implementation's business. Two implementations
// exist today:
//
//  * SimNetwork (dist/sim_network.hpp) — the original reliable
//    round-synchronous bus: a round is an atomic delivery step.
//  * AlphaSynchronizer (net/synchronizer.hpp) — an alpha-synchronizer
//    running each round over an asynchronous, lossy, latency-modelled
//    physical network (net/async_network.hpp), optionally sharded so one
//    simulated processor hosts many demands (net/shard.hpp).
//
// The contract every Transport must honour for protocol correctness:
// a message broadcast in round r is present in every neighbour's inbox
// after endRound() — exactly once, with inboxes sorted canonically
// (canonicalMessageLess) — and in no other round. Any implementation
// honouring it runs the protocol bit-identically to the synchronous bus.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dist/message.hpp"

namespace treesched {

class ParallelRunner;
class Tracer;
class MetricsRegistry;
class LedgerSink;

/// Communication accounting of one protocol run. The first block is
/// filled by every transport; the async/lossy extensions stay zero/empty
/// on the reliable round-synchronous bus.
struct NetworkStats {
  std::int64_t rounds = 0;      ///< synchronous (protocol-level) rounds
  std::int64_t busyRounds = 0;  ///< rounds that delivered >= 1 message
  std::int64_t messages = 0;    ///< demand-level point-to-point deliveries
  std::int64_t payload = 0;     ///< total delivered payload (units of M)
  std::int32_t maxMessagePayload = 0;  ///< largest single message

  // ---- Async/lossy transport extensions ----
  double virtualTime = 0;  ///< simulated clock at the end of the run
  /// Physical transmission attempts (payload + control), incl. retries.
  std::int64_t transmissions = 0;
  std::int64_t retransmissions = 0;  ///< attempts after the first, per packet
  std::int64_t drops = 0;            ///< attempts lost in flight (incl. acks)
  /// Deliveries suppressed by the receiver's dedup path: retransmission
  /// races and duplicating-link faults (AsyncLinkConfig::
  /// duplicateProbability). Zero on the reliable bus.
  std::int64_t duplicates = 0;
  /// Physical deliveries handled per simulated processor (sharded runs:
  /// one entry per shard processor, not per demand). Empty on the bus.
  std::vector<std::int64_t> processorLoad;

  // ---- Message-plane allocation accounting (engine/message_plane.hpp) ----
  std::int64_t planeGrowthEvents = 0;  ///< inbox-buffer growths, whole run
  /// Round index of the last inbox-buffer growth; -1 when the plane never
  /// grew. Every later round ran allocation-free.
  std::int64_t planeLastGrowthRound = -1;
};

/// The protocol's view of the network: one endpoint per demand, broadcast
/// delivery to communication-graph neighbours at round boundaries.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::int32_t numProcessors() const = 0;

  virtual std::span<const std::int32_t> neighbors(std::int32_t p) const = 0;

  /// Queues `message` for delivery to every neighbour of `message.from`
  /// at the end of the current round.
  virtual void broadcast(const Message& message) = 0;

  /// Ends the current round: every message broadcast since the previous
  /// boundary is in the recipients' inboxes (sorted canonically) after
  /// this returns.
  virtual void endRound() = 0;

  /// Advances `count` rounds in which no processor transmits. Inboxes are
  /// cleared; busyRounds is unchanged.
  virtual void endSilentRounds(std::int64_t count) = 0;

  /// Messages delivered to `p` by the last endRound(). A zero-copy view
  /// into the transport's delivery buffer; invalidated by the next
  /// endRound()/endSilentRounds().
  virtual std::span<const Message> inbox(std::int32_t p) const = 0;

  /// Appends (ascending, duplicate-free) every processor whose inbox is
  /// non-empty after the last endRound(). The default scans all
  /// processors; plane-backed transports override with the O(active)
  /// list, which is what lets the protocol's round loops iterate only
  /// processors that actually received something.
  virtual void appendActiveInboxes(std::vector<std::int32_t>& out) const;

  /// Attaches a thread pool the transport may use to parallelize round
  /// delivery (nullptr detaches; the default ignores it). The runner must
  /// stay alive until detached.
  virtual void attachRunner(ParallelRunner* runner);

  /// Attaches the telemetry plane (obs/): the transport publishes its
  /// round/message accounting into `metrics` and may emit delivery trace
  /// events through `tracer`. Either may be null; nullptr/nullptr
  /// detaches; the default ignores both. Telemetry is strictly
  /// read-only observation — attaching it never changes delivery
  /// behaviour (the bit-identity gates run with live sinks attached).
  /// Both objects must stay alive until detached.
  virtual void attachTelemetry(Tracer* tracer, MetricsRegistry* metrics);

  /// Attaches the decision provenance ledger (obs/ledger.hpp): a
  /// transport owning live shard placement records the demand lifecycle
  /// events it alone can see — placement on arrival, migration at
  /// rebalance. nullptr (or a disabled sink) detaches; the default
  /// ignores it. Same read-only, bit-identity-preserving contract as
  /// attachTelemetry. The sink must stay alive until detached.
  virtual void attachLedger(LedgerSink* ledger);

  /// Publishes the transport's current placement load into the attached
  /// metrics registry (net.shard_hosted_demands histogram +
  /// net.shard_load_variance gauge on a live sharded placement). The
  /// online solver calls this once per epoch boundary so the load
  /// time-series exists whether or not rebalancing is enabled; the
  /// default — and any transport with no placement — does nothing.
  /// Read-only observation; never changes delivery behaviour.
  virtual void recordPlacementLoad();

  virtual const NetworkStats& stats() const = 0;
};

/// Validates a communication adjacency: symmetric, loop-free, entries in
/// range, duplicate-free. Throws CheckError otherwise. Every transport
/// construction funnels through this.
void validateCommunicationAdjacency(
    const std::vector<std::vector<std::int32_t>>& adjacency);

/// Knobs of the epoch-boundary hot-shard rebalancer (live sharded
/// placements only). Rebalancing moves hosted demands between physical
/// processors — pure wire accounting, never the schedule — so it is safe
/// to run between any two epochs; `tests/rebalance_test.cpp` gates that
/// claim bit-identically.
struct ShardRebalanceConfig {
  bool enabled = false;
  /// A processor triggers migration when its live hosted load exceeds
  /// `threshold * mean` (mean = live demands / processors).
  double threshold = 1.25;
  /// Keys the deterministic tie-breaks (candidate network and target
  /// processor choice); never a stateful RNG.
  std::uint64_t seed = 1;
  /// Cap on migration iterations per rebalance call (each iteration
  /// moves one network or one overflow slice of demands).
  std::int32_t maxMoves = 64;
};

/// What one rebalance call did. Variances are per-processor live-load
/// population variances; before == after when nothing moved.
struct RebalanceOutcome {
  std::int32_t networksMoved = 0;
  std::int32_t demandsMoved = 0;
  double loadVarianceBefore = 0;
  double loadVarianceAfter = 0;
};

/// Live demand-level topology mutation — the capability the online churn
/// engine (src/online/) requires of its transport. Demands arrive and
/// depart on a *running* transport: buffers, placement and cumulative
/// stats persist, so consecutive epoch re-solves share one warmed-up
/// wire. Implemented by SimNetwork (the reference) and AlphaSynchronizer
/// (async/lossy wire, optionally sharded); a transport that cannot
/// mutate simply does not derive from this.
///
/// Contract (all calls require a round boundary — no staged traffic):
///  * connectDemand attaches an isolated demand with a sorted,
///    duplicate-free neighbour list; every neighbour's list gains it.
///  * disconnectDemand removes every edge of the demand (both sides);
///    the endpoint stays addressable with no neighbours, exactly like a
///    departed demand. Disconnecting an isolated (never-connected or
///    already-departed) demand is a no-op.
///  * After any mutation the live adjacency must still satisfy
///    validateCommunicationAdjacency — validateLiveTopology() re-checks.
class MutableTopology {
 public:
  virtual ~MutableTopology() = default;

  virtual void connectDemand(std::int32_t demand,
                             std::span<const std::int32_t> neighbors) = 0;

  virtual void disconnectDemand(std::int32_t demand) = 0;

  /// Number of demand-level endpoints the topology addresses.
  virtual std::int32_t numDemands() const = 0;

  /// Current neighbours of `demand` (sorted, duplicate-free); the live
  /// adjacency query. Invalidated by the next mutation.
  virtual std::span<const std::int32_t> currentNeighbors(
      std::int32_t demand) const = 0;

  /// Rebalances hosted demands across physical processors (requires a
  /// round boundary, like every mutation). Placement is transport
  /// accounting, not protocol state, so the schedule is bit-identical
  /// with or without rebalancing. The default — and any transport with
  /// no sharded placement, like SimNetwork — does nothing and reports
  /// zero variances.
  virtual RebalanceOutcome rebalanceShards(const ShardRebalanceConfig& config);

  /// Sets demand `demand`'s placement load weight — its live instance
  /// count, threaded in by the online solver as the dynamic universe
  /// grows each arrival's instances. Weighted loads feed placement
  /// (least-loaded choice), the rebalance planner and the variance
  /// accounting; they are wire accounting only and never change the
  /// schedule. The default — and any transport with no placement —
  /// ignores it.
  virtual void setDemandWeight(std::int32_t demand, std::int64_t weight);
};

/// The mutable-topology facet of `transport`, or nullptr when the
/// transport's topology is fixed.
MutableTopology* mutableTopologyOf(Transport& transport);

/// Checked variant: throws CheckError when the transport cannot mutate
/// its topology. The online solver funnels through this.
MutableTopology& requireMutableTopology(Transport& transport);

/// Re-runs validateCommunicationAdjacency on the live adjacency — the
/// post-mutation audit of the MutableTopology contract.
void validateLiveTopology(const MutableTopology& topology);

}  // namespace treesched
