// Asynchronous, lossy physical network: a priority-queue event simulator.
//
// Endpoints exchange packets over point-to-point links. Each transmission
// attempt samples a delay from the configured latency model and is lost
// i.i.d. with the configured drop probability. Delivery is made reliable
// by a stop-and-wait ack/retransmission scheme: the sender retransmits
// every `retransmitTimeout` time units until an acknowledgement arrives;
// acks travel (and can be dropped) like any other packet; receivers
// deduplicate, so each packet is delivered to the application exactly
// once. With dropProbability < 1 every packet is eventually delivered and
// acknowledged, so `flush()` terminates.
//
// Links are heterogeneous: `latencyOverrides` pins individual physical
// links (keyed by their unordered endpoint pair) to their own latency
// model on top of the global one — a slow trans-continental hop among
// fast metro links. Faulty duplicating links are modelled too: with
// `duplicateProbability` a delivered packet arrives a second time, and
// the receiver's dedup path must (and does) absorb it.
//
// All randomness is hash-keyed by (seed, packet id, attempt), so a run is
// a pure function of the seed: neither heap ordering nor drain order can
// perturb sampled delays or drop decisions.
//
// Delivered packets accumulate in one flat append-only log; flush()
// counting-sorts it by receiving endpoint so `delivered(p)` is a
// zero-copy span — the same allocation-free flat-buffer discipline as
// the engine's MessagePlane.
#pragma once

#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "dist/message.hpp"
#include "engine/collate.hpp"
#include "net/latency.hpp"

namespace treesched {

/// Pins one physical link (unordered endpoint pair) to its own latency
/// model; both directions of the link use it.
struct LinkLatencyOverride {
  std::int32_t endpointA = 0;
  std::int32_t endpointB = 0;
  LatencyConfig latency;
};

/// Physical-link behaviour shared by every link of the network.
struct AsyncLinkConfig {
  LatencyConfig latency;
  /// Per-link latency overrides on top of the global model. Endpoint
  /// pairs must be distinct links; validated at network construction.
  std::vector<LinkLatencyOverride> latencyOverrides;
  /// Probability that one transmission attempt (payload or ack) is lost.
  /// Must lie in [0, 0.9] — retransmission makes delivery reliable, the
  /// cap keeps expected attempt counts small and flush() fast.
  double dropProbability = 0.0;
  /// Probability that a delivered payload arrives a second time
  /// (duplicating-link fault, [0, 0.9]). The receiver's dedup path
  /// suppresses the copy; runs stay bit-identical.
  double duplicateProbability = 0.0;
  /// Retransmit if no ack after this long; 0 derives a per-link
  /// round-trip upper bound (2 * latencyUpperBound + base) from each
  /// link's own latency model — a slow override never inflates the
  /// timeout (and hence the virtual time) of the fast links around it.
  /// When set explicitly, one global timeout covers every link and must
  /// be >= every link's base latency (below that the sender would
  /// retransmit in a tight loop before any ack could round-trip).
  double retransmitTimeout = 0.0;
};

/// One packet handed up to the receiving endpoint.
struct PhysicalDelivery {
  std::int32_t from = 0;  ///< sending endpoint
  std::int32_t to = 0;    ///< receiving endpoint
  Message payload;
  bool control = false;  ///< synchronizer marker, not protocol payload
};

class AsyncNetwork {
 public:
  AsyncNetwork(std::int32_t numEndpoints, const AsyncLinkConfig& config,
               std::uint64_t seed);

  std::int32_t numEndpoints() const {
    return static_cast<std::int32_t>(endpointLoad_.size());
  }

  /// Injects a packet at the current virtual time. Control packets carry
  /// synchronizer traffic: they ride the same lossy links but are not
  /// handed to the application inbox.
  void send(std::int32_t from, std::int32_t to, const Message& payload,
            bool control = false);

  /// Runs the event loop until every in-flight packet is delivered and
  /// acknowledged; returns the virtual time afterwards. Collates the
  /// delivery log so delivered() spans are ready.
  double flush();

  /// Advances the clock without any traffic (known-silent barrier rounds).
  void advanceTime(double delta);

  double now() const { return now_; }

  /// Application packets delivered to `endpoint` since the last drain,
  /// in arrival order. Valid after flush(); a zero-copy span into the
  /// collated delivery log, invalidated by the next send()/flush()/
  /// drainDeliveries().
  std::span<const PhysicalDelivery> delivered(std::int32_t endpoint) const;
  void drainDeliveries();

  std::int64_t transmissions() const { return transmissions_; }
  std::int64_t retransmissions() const { return retransmissions_; }
  std::int64_t drops() const { return drops_; }
  /// Deliveries suppressed by the dedup path: retransmission races plus
  /// injected duplicating-link faults.
  std::int64_t duplicates() const { return duplicates_; }
  /// Physical deliveries handled per endpoint over the whole run —
  /// payload and control alike (markers are real load on a processor).
  const std::vector<std::int64_t>& endpointLoad() const {
    return endpointLoad_;
  }

 private:
  enum class EventKind : std::uint8_t {
    Attempt,
    Deliver,
    DuplicateDeliver,
    AckArrive
  };

  struct Event {
    double time = 0;
    std::uint64_t seq = 0;  ///< schedule order, breaks time ties
    EventKind kind = EventKind::Attempt;
    std::uint32_t flight = 0;  ///< index into flights_
    std::int32_t attempt = 0;
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// One packet in flight: retransmitted until acked.
  struct Flight {
    std::int32_t from = 0;
    std::int32_t to = 0;
    Message payload;
    bool control = false;
    std::uint64_t id = 0;  ///< globally unique, keys the hash draws
    std::int32_t attempts = 0;
    /// Index into overrides_ for this flight's link; -1 = global model.
    std::int32_t latencyOverride = -1;
    bool delivered = false;
    bool acked = false;
  };

  void schedule(double time, EventKind kind, std::uint32_t flight,
                std::int32_t attempt);
  bool chance(double probability, std::uint64_t packetId, std::int32_t attempt,
              std::uint64_t salt) const;
  double delay(const Flight& flight, std::int32_t attempt,
               std::uint64_t salt) const;
  const LatencyConfig& linkLatency(const Flight& flight) const;
  double timeoutFor(const Flight& flight) const;
  std::int32_t overrideIndex(std::int32_t a, std::int32_t b) const;
  void deliverPayload(Flight& flight);
  void collateDeliveries();

  AsyncLinkConfig config_;
  std::vector<LinkLatencyOverride> overrides_;  ///< validated, a < b
  std::uint64_t seed_ = 0;
  double timeout_ = 0;  ///< links on the global latency model
  /// Auto-derived per-override timeouts (aligned with overrides_); empty
  /// when an explicit global timeout is configured.
  std::vector<double> overrideTimeout_;
  double now_ = 0;
  std::uint64_t nextPacketId_ = 0;
  std::uint64_t nextEventSeq_ = 0;
  std::vector<Flight> flights_;  ///< cleared once flush() drains the queue
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;

  // Flat delivery log + per-endpoint collated segments (arrival order;
  // segment bookkeeping shared with the MessagePlane via CollationIndex).
  std::vector<PhysicalDelivery> log_;
  std::vector<PhysicalDelivery> collated_;
  CollationIndex index_;

  std::vector<std::int64_t> endpointLoad_;
  std::int64_t transmissions_ = 0;
  std::int64_t retransmissions_ = 0;
  std::int64_t drops_ = 0;
  std::int64_t duplicates_ = 0;
};

}  // namespace treesched
