// Umbrella header: the full public API of the treesched library.
//
// Most applications only need this include. The individual headers remain
// includable for finer-grained dependencies.
#pragma once

// Problem model.
#include "core/demand.hpp"
#include "core/io.hpp"
#include "core/line_problem.hpp"
#include "core/solution.hpp"
#include "core/tree_problem.hpp"
#include "core/universe.hpp"

// Graph substrate.
#include "graph/tree_network.hpp"

// Decompositions (paper §4).
#include "decomp/layering.hpp"
#include "decomp/tree_decomposition.hpp"

// Solvers (paper §5-§7, Appendix A) and baselines.
#include "algo/assignments.hpp"
#include "algo/line_solvers.hpp"
#include "algo/sequential_tree.hpp"
#include "algo/tree_solvers.hpp"

// Distributed message-passing execution (paper §5).
#include "dist/protocol.hpp"

// Network simulation: transports, async lossy wire, synchronizer,
// sharded placement.
#include "net/async_network.hpp"
#include "net/latency.hpp"
#include "net/runner.hpp"
#include "net/shard.hpp"
#include "net/synchronizer.hpp"
#include "net/transport.hpp"

// Exact solvers, baselines and post-processing.
#include "exact/brute_force.hpp"
#include "exact/greedy.hpp"
#include "exact/line_dp.hpp"
#include "exact/local_search.hpp"

// Online scheduling: churn traces, epoch-batched admission, incremental
// re-solve.
#include "online/arrivals.hpp"
#include "online/churn_engine.hpp"
#include "online/incremental.hpp"

// Policy registry: the pluggable Scheduler API over every solver.
#include "policy/config.hpp"
#include "policy/line_pack.hpp"
#include "policy/online_policy.hpp"
#include "policy/registry.hpp"
#include "policy/scheduler.hpp"

// Workload generation.
#include "gen/demand_gen.hpp"
#include "gen/scenario.hpp"
#include "gen/tree_gen.hpp"
