#include "algo/tree_solvers.hpp"

#include <algorithm>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "util/check.hpp"

namespace treesched {

namespace {

FrameworkConfig toFrameworkConfig(const SolverOptions& options, RaiseRule rule,
                                  double derivedHmin) {
  FrameworkConfig cfg;
  cfg.epsilon = options.epsilon;
  cfg.raise = rule;
  cfg.schedule = options.schedule;
  cfg.hmin = options.hmin > 0 ? options.hmin : derivedHmin;
  cfg.seed = options.seed;
  cfg.misRoundBudget = options.misRoundBudget;
  cfg.fixedSchedule = options.fixedSchedule;
  cfg.stepsPerStage = options.stepsPerStage;
  return cfg;
}

std::vector<TreeAssignment> toAssignments(const InstanceUniverse& universe,
                                          const Solution& solution) {
  std::vector<TreeAssignment> result;
  result.reserve(solution.instances.size());
  for (const InstanceId i : solution.instances) {
    const InstanceRecord& rec = universe.instance(i);
    result.push_back({rec.demand, rec.network});
  }
  std::sort(result.begin(), result.end(),
            [](const TreeAssignment& a, const TreeAssignment& b) {
              return a.demand < b.demand;
            });
  return result;
}

/// Splits `problem` to the demands selected by `keep`; fills old-id map.
TreeProblem subProblem(const TreeProblem& problem,
                       const std::vector<DemandId>& keep) {
  TreeProblem sub;
  sub.numVertices = problem.numVertices;
  sub.networks = problem.networks;
  sub.demands.reserve(keep.size());
  sub.access.reserve(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    Demand d = problem.demands[static_cast<std::size_t>(keep[i])];
    d.id = static_cast<DemandId>(i);
    sub.demands.push_back(d);
    sub.access.push_back(problem.access[static_cast<std::size_t>(keep[i])]);
  }
  return sub;
}

}  // namespace

TreeSolveResult runTreeFramework(const TreeProblem& problem,
                                 const SolverOptions& options, RaiseRule rule) {
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  const TreeLayeringResult layering =
      buildTreeLayering(problem, universe, options.decomposition);

  double derivedHmin = 1.0;
  for (const Demand& d : problem.demands) {
    derivedHmin = std::min(derivedHmin, d.height);
  }
  const FrameworkConfig cfg = toFrameworkConfig(options, rule, derivedHmin);
  const TwoPhaseResult run = runTwoPhase(universe, layering.layering, cfg);

  TreeSolveResult result;
  result.assignments = toAssignments(universe, run.solution);
  result.profit = run.profit;
  result.dualUpperBound = run.dualUpperBound;
  result.certifiedBound =
      approximationBound(rule, run.stats.delta, run.stats.lambdaTarget);
  result.stats = run.stats;

  const std::string err = checkAssignments(problem, result.assignments);
  checkThat(err.empty(), "solver produced feasible assignments: " + err,
            __FILE__, __LINE__);
  return result;
}

TreeSolveResult solveUnitTree(const TreeProblem& problem,
                              const SolverOptions& options) {
  checkThat(problem.isUnitHeight(), "solveUnitTree requires unit heights",
            __FILE__, __LINE__);
  return runTreeFramework(problem, options, RaiseRule::Unit);
}

ArbitraryTreeResult solveArbitraryTree(const TreeProblem& problem,
                                       const SolverOptions& options) {
  problem.validate();
  std::vector<DemandId> wide;
  std::vector<DemandId> narrow;
  for (const Demand& d : problem.demands) {
    (isNarrow(d.height) ? narrow : wide).push_back(d.id);
  }

  ArbitraryTreeResult result;
  std::vector<TreeAssignment> wideAssign;
  std::vector<TreeAssignment> narrowAssign;

  if (!wide.empty()) {
    // Two overlapping wide instances can never coexist, so the unit-height
    // algorithm applies verbatim (§6 "Overall Algorithm").
    const TreeProblem sub = subProblem(problem, wide);
    TreeSolveResult run = runTreeFramework(sub, options, RaiseRule::Unit);
    for (TreeAssignment a : run.assignments) {
      a.demand = wide[static_cast<std::size_t>(a.demand)];
      wideAssign.push_back(a);
    }
    result.wideStats = run.stats;
    result.dualUpperBound += run.dualUpperBound;
    result.wideProfit = run.profit;
  }
  if (!narrow.empty()) {
    const TreeProblem sub = subProblem(problem, narrow);
    TreeSolveResult run = runTreeFramework(sub, options, RaiseRule::Narrow);
    for (TreeAssignment a : run.assignments) {
      a.demand = narrow[static_cast<std::size_t>(a.demand)];
      narrowAssign.push_back(a);
    }
    result.narrowStats = run.stats;
    result.dualUpperBound += run.dualUpperBound;
    result.narrowProfit = run.profit;
  }

  // Per-network combine: keep whichever of the two solutions earns more on
  // each network. Feasible because a demand is wide xor narrow and each
  // sub-solution is feasible per network on its own.
  std::vector<double> wideByNet(static_cast<std::size_t>(problem.numNetworks()),
                                0.0);
  std::vector<double> narrowByNet(
      static_cast<std::size_t>(problem.numNetworks()), 0.0);
  for (const TreeAssignment& a : wideAssign) {
    wideByNet[static_cast<std::size_t>(a.network)] +=
        problem.demands[static_cast<std::size_t>(a.demand)].profit;
  }
  for (const TreeAssignment& a : narrowAssign) {
    narrowByNet[static_cast<std::size_t>(a.network)] +=
        problem.demands[static_cast<std::size_t>(a.demand)].profit;
  }
  for (const TreeAssignment& a : wideAssign) {
    if (wideByNet[static_cast<std::size_t>(a.network)] >=
        narrowByNet[static_cast<std::size_t>(a.network)]) {
      result.assignments.push_back(a);
    }
  }
  for (const TreeAssignment& a : narrowAssign) {
    if (wideByNet[static_cast<std::size_t>(a.network)] <
        narrowByNet[static_cast<std::size_t>(a.network)]) {
      result.assignments.push_back(a);
    }
  }
  result.profit = assignmentProfit(problem, result.assignments);

  // Certified factor: p(Opt) <= p(Opt_wide) + p(Opt_narrow)
  //   <= 7/(1-eps) p(S1) + 73/(1-eps) p(S2) <= 80/(1-eps) p(S)
  // since p(S) >= max(p(S1), p(S2)) after the per-network combine.
  result.certifiedBound =
      approximationBound(RaiseRule::Unit, 6, 1.0 - options.epsilon) +
      approximationBound(RaiseRule::Narrow, 6, 1.0 - options.epsilon);
  const std::string err = checkAssignments(problem, result.assignments);
  checkThat(err.empty(), "combined solution feasible: " + err, __FILE__,
            __LINE__);
  return result;
}

}  // namespace treesched
