#include "algo/sequential_tree.hpp"

#include <algorithm>

#include "core/solution.hpp"
#include "core/universe.hpp"
#include "decomp/tree_decomposition.hpp"
#include "framework/lhs_tracker.hpp"
#include "util/check.hpp"

namespace treesched {

SequentialTreeResult solveSequentialTree(const TreeProblem& problem) {
  checkThat(problem.isUnitHeight(),
            "sequential algorithm requires unit heights", __FILE__, __LINE__);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  const bool singleNetwork = problem.numNetworks() == 1;

  // Root-fixing decomposition per network; order sigma(T): descending
  // capture depth, ties by instance id.
  std::vector<TreeDecomposition> decomps;
  decomps.reserve(static_cast<std::size_t>(problem.numNetworks()));
  for (TreeId t = 0; t < problem.numNetworks(); ++t) {
    decomps.push_back(
        rootFixingDecomposition(problem.networks[static_cast<std::size_t>(t)]));
  }

  struct Entry {
    InstanceId instance;
    std::int32_t captureDepth;
    VertexId mu;
  };
  std::vector<std::vector<Entry>> perNetwork(
      static_cast<std::size_t>(problem.numNetworks()));
  for (InstanceId i = 0; i < universe.numInstances(); ++i) {
    const InstanceRecord& rec = universe.instance(i);
    const TreeNetwork& tree =
        problem.networks[static_cast<std::size_t>(rec.network)];
    const TreeDecomposition& h = decomps[static_cast<std::size_t>(rec.network)];
    const VertexId mu = captureNode(tree, h, rec.u, rec.v);
    perNetwork[static_cast<std::size_t>(rec.network)].push_back(
        {i, h.depth[static_cast<std::size_t>(mu)], mu});
  }
  for (auto& entries : perNetwork) {
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
      if (a.captureDepth != b.captureDepth) {
        return a.captureDepth > b.captureDepth;  // deepest captures first
      }
      return a.instance < b.instance;
    });
  }

  DualState dual(universe);
  LhsTracker lhs(universe, RaiseRule::Unit);
  std::vector<InstanceId> stack;
  SequentialTreeResult result;

  // Phase 1: networks in rounds; within a network, raising an instance
  // never unsatisfies an earlier one (lhs values only grow), so one pass in
  // sigma order implements the pseudocode's earliest-unsatisfied loop.
  for (TreeId t = 0; t < problem.numNetworks(); ++t) {
    const TreeNetwork& tree = problem.networks[static_cast<std::size_t>(t)];
    for (const Entry& entry : perNetwork[static_cast<std::size_t>(t)]) {
      const InstanceRecord& rec = universe.instance(entry.instance);
      const double slack = rec.profit - lhs.lhs(entry.instance);
      if (slack <= 1e-12 * rec.profit) continue;  // already satisfied

      // pi(d) = wings of mu(d) on path(d).
      GlobalEdgeId wings[2];
      std::int32_t numWings = 0;
      if (entry.mu != rec.u) {
        wings[numWings++] = universe.globalEdge(
            t, tree.edgeBetween(entry.mu, tree.stepToward(entry.mu, rec.u)));
      }
      if (entry.mu != rec.v) {
        wings[numWings++] = universe.globalEdge(
            t, tree.edgeBetween(entry.mu, tree.stepToward(entry.mu, rec.v)));
      }
      checkThat(numWings >= 1, "capture node has a wing", __FILE__, __LINE__);
      result.delta = std::max(result.delta, numWings);

      // Raise. With a single network the alpha variables are unnecessary
      // (|Inst(a)| = 1) and dropping them improves the ratio to 2.
      const double denom =
          static_cast<double>(numWings) + (singleNetwork ? 0.0 : 1.0);
      const double deltaAmount = slack / denom;
      RaiseAmounts amounts;
      amounts.alphaIncrement = singleNetwork ? 0.0 : deltaAmount;
      amounts.betaIncrement = deltaAmount;
      const std::span<const GlobalEdgeId> wingSpan(
          wings, static_cast<std::size_t>(numWings));
      applyRaise(dual, universe, entry.instance, wingSpan, amounts);
      lhs.onRaise(entry.instance, wingSpan, amounts);
      stack.push_back(entry.instance);
      ++result.iterations;
    }
  }

  result.dualUpperBound = dual.objective();

  // Phase 2: pop in reverse, greedy feasibility.
  FeasibilityOracle oracle(universe);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (oracle.canAdd(*it)) {
      oracle.add(*it);
    }
  }
  for (const InstanceId i : oracle.solution().instances) {
    const InstanceRecord& rec = universe.instance(i);
    result.assignments.push_back({rec.demand, rec.network});
  }
  std::sort(result.assignments.begin(), result.assignments.end(),
            [](const TreeAssignment& a, const TreeAssignment& b) {
              return a.demand < b.demand;
            });
  result.profit = oracle.profit();
  result.certifiedBound = singleNetwork ? 2.0 : 3.0;

  const std::string err = checkAssignments(problem, result.assignments);
  checkThat(err.empty(), "sequential solution feasible: " + err, __FILE__,
            __LINE__);
  return result;
}

}  // namespace treesched
