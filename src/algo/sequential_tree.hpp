// Sequential two-phase algorithm for unit-height tree-networks
// (paper Appendix A, pseudocode Figure 8).
//
// Uses the root-fixing decomposition: each instance is captured at the
// least-deep vertex mu(d) of its path; pi(d) is the (<= 2) wings of mu(d).
// Networks are processed one at a time; within a network the instances are
// raised one by one in descending capture depth, so the interference
// property holds with Delta = 2 and lambda = 1 (Observation A.1) — a
// 3-approximation by Lemma 3.1, improving to 2 when there is a single
// network (no alpha variables needed).
#pragma once

#include <vector>

#include "algo/assignments.hpp"
#include "core/tree_problem.hpp"

namespace treesched {

struct SequentialTreeResult {
  std::vector<TreeAssignment> assignments;
  double profit = 0;
  double dualUpperBound = 0;  ///< val(alpha,beta) — lambda = 1 exactly
  double certifiedBound = 0;  ///< 3, or 2 for a single network
  std::int64_t iterations = 0;
  std::int32_t delta = 0;  ///< measured max |pi(d)| (<= 2)
};

/// Requires a unit-height problem.
SequentialTreeResult solveSequentialTree(const TreeProblem& problem);

}  // namespace treesched
