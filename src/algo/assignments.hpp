// Problem-level solution representation shared by all solvers.
//
// Solvers return *assignments* — which demand runs where — rather than
// internal instance ids, so callers never need the instance universe. For
// tree networks an assignment is (demand, network); paths are unique in
// trees (§1). For line networks it is (demand, resource, start slot)
// because windows make the execution segment a choice (§7).
#pragma once

#include <string>
#include <vector>

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"

namespace treesched {

struct TreeAssignment {
  DemandId demand = 0;
  TreeId network = 0;
};

struct LineAssignment {
  DemandId demand = 0;
  ResourceId resource = 0;
  std::int32_t start = 0;  ///< first slot of the execution segment
};

/// Total profit of the assigned demands.
double assignmentProfit(const TreeProblem& problem,
                        const std::vector<TreeAssignment>& assignments);
double assignmentProfit(const LineProblem& problem,
                        const std::vector<LineAssignment>& assignments);

/// Checks feasibility at the problem level (accessibility, one assignment
/// per demand, edge/slot capacity). Empty string when feasible.
std::string checkAssignments(const TreeProblem& problem,
                             const std::vector<TreeAssignment>& assignments);
std::string checkAssignments(const LineProblem& problem,
                             const std::vector<LineAssignment>& assignments);

}  // namespace treesched
