// Distributed solvers for line-networks with windows (paper §7).
//
//  * solveUnitLine      — Theorem 7.1: (4+eps)-approximation, Delta = 3 via
//    the length-based layering, staged slackness lambda = 1-eps.
//  * solveArbitraryLine — Theorem 7.2: (23+eps)-approximation via the
//    wide/narrow split (narrow: 19+eps by Lemma 6.1 with Delta = 3).
//  * solvePanconesiSozio* — the published baselines reproduced from the
//    paper's description (§5 Remark): identical layering but the
//    single-stage threshold schedule with lambda = 1/(5+eps), giving
//    (20+eps) for unit heights. The paper's headline improvement is the
//    measured gap between these pairs (experiment E6/E7).
#pragma once

#include <optional>
#include <vector>

#include "algo/assignments.hpp"
#include "algo/tree_solvers.hpp"
#include "core/line_problem.hpp"

namespace treesched {

struct LineSolveResult {
  std::vector<LineAssignment> assignments;
  double profit = 0;
  double dualUpperBound = 0;
  double certifiedBound = 0;
  TwoPhaseStats stats;
};

/// Theorem 7.1. Requires a unit-height problem.
LineSolveResult solveUnitLine(const LineProblem& problem,
                              const SolverOptions& options = {});

struct ArbitraryLineResult {
  std::vector<LineAssignment> assignments;
  double profit = 0;
  double dualUpperBound = 0;
  double certifiedBound = 0;
  std::optional<TwoPhaseStats> wideStats;
  std::optional<TwoPhaseStats> narrowStats;
  double wideProfit = 0;
  double narrowProfit = 0;
};

/// Theorem 7.2. Accepts any heights in (0, 1].
ArbitraryLineResult solveArbitraryLine(const LineProblem& problem,
                                       const SolverOptions& options = {});

/// Panconesi–Sozio baseline (unit height): threshold schedule, (20+eps).
LineSolveResult solvePanconesiSozioUnitLine(const LineProblem& problem,
                                            SolverOptions options = {});

/// Panconesi–Sozio-style baseline for arbitrary heights (threshold
/// schedule on both the wide and narrow sub-runs). Note: PS's published
/// arbitrary-height constants differ in detail; this reconstruction keeps
/// everything equal to our algorithm except the schedule policy, so the
/// comparison isolates the paper's staged-slackness contribution.
ArbitraryLineResult solvePanconesiSozioArbitraryLine(
    const LineProblem& problem, SolverOptions options = {});

/// Shared internals (exposed for ablations): run the framework over the
/// line universe of `problem` restricted to nothing (rule selects the
/// raise policy).
LineSolveResult runLineFramework(const LineProblem& problem,
                                 const SolverOptions& options, RaiseRule rule);

}  // namespace treesched
