#include "algo/assignments.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace treesched {

double assignmentProfit(const TreeProblem& problem,
                        const std::vector<TreeAssignment>& assignments) {
  double total = 0;
  for (const TreeAssignment& a : assignments) {
    total += problem.demands[static_cast<std::size_t>(a.demand)].profit;
  }
  return total;
}

double assignmentProfit(const LineProblem& problem,
                        const std::vector<LineAssignment>& assignments) {
  double total = 0;
  for (const LineAssignment& a : assignments) {
    total += problem.demands[static_cast<std::size_t>(a.demand)].profit;
  }
  return total;
}

namespace {

constexpr double kCapacityTolerance = 1e-9;

}  // namespace

std::string checkAssignments(const TreeProblem& problem,
                             const std::vector<TreeAssignment>& assignments) {
  std::vector<bool> used(static_cast<std::size_t>(problem.numDemands()), false);
  // Edge loads per network.
  std::vector<std::vector<double>> load(
      static_cast<std::size_t>(problem.numNetworks()));
  for (TreeId t = 0; t < problem.numNetworks(); ++t) {
    load[static_cast<std::size_t>(t)].assign(
        static_cast<std::size_t>(problem.networks[static_cast<std::size_t>(t)]
                                     .numEdges()),
        0.0);
  }
  for (const TreeAssignment& a : assignments) {
    if (a.demand < 0 || a.demand >= problem.numDemands()) {
      return "assignment references unknown demand";
    }
    if (used[static_cast<std::size_t>(a.demand)]) {
      std::ostringstream os;
      os << "demand " << a.demand << " assigned twice";
      return os.str();
    }
    used[static_cast<std::size_t>(a.demand)] = true;
    const auto& acc = problem.access[static_cast<std::size_t>(a.demand)];
    if (!std::binary_search(acc.begin(), acc.end(), a.network)) {
      std::ostringstream os;
      os << "demand " << a.demand << " cannot access network " << a.network;
      return os.str();
    }
    const Demand& dem = problem.demands[static_cast<std::size_t>(a.demand)];
    const TreeNetwork& net =
        problem.networks[static_cast<std::size_t>(a.network)];
    for (const EdgeId e : net.pathEdges(dem.u, dem.v)) {
      double& l = load[static_cast<std::size_t>(a.network)]
                      [static_cast<std::size_t>(e)];
      l += dem.height;
      if (l > 1.0 + kCapacityTolerance) {
        std::ostringstream os;
        os << "network " << a.network << " edge " << e << " over capacity";
        return os.str();
      }
    }
  }
  return {};
}

std::string checkAssignments(const LineProblem& problem,
                             const std::vector<LineAssignment>& assignments) {
  std::vector<bool> used(static_cast<std::size_t>(problem.numDemands()), false);
  std::vector<std::vector<double>> load(
      static_cast<std::size_t>(problem.numResources),
      std::vector<double>(static_cast<std::size_t>(problem.numSlots), 0.0));
  for (const LineAssignment& a : assignments) {
    if (a.demand < 0 || a.demand >= problem.numDemands()) {
      return "assignment references unknown demand";
    }
    if (used[static_cast<std::size_t>(a.demand)]) {
      std::ostringstream os;
      os << "demand " << a.demand << " assigned twice";
      return os.str();
    }
    used[static_cast<std::size_t>(a.demand)] = true;
    const auto& acc = problem.access[static_cast<std::size_t>(a.demand)];
    if (!std::binary_search(acc.begin(), acc.end(), a.resource)) {
      std::ostringstream os;
      os << "demand " << a.demand << " cannot access resource " << a.resource;
      return os.str();
    }
    const WindowDemand& dem =
        problem.demands[static_cast<std::size_t>(a.demand)];
    if (a.start < dem.release ||
        a.start + dem.processing - 1 > dem.deadline) {
      std::ostringstream os;
      os << "demand " << a.demand << " scheduled outside its window";
      return os.str();
    }
    for (std::int32_t s = a.start; s < a.start + dem.processing; ++s) {
      double& l = load[static_cast<std::size_t>(a.resource)]
                      [static_cast<std::size_t>(s)];
      l += dem.height;
      if (l > 1.0 + kCapacityTolerance) {
        std::ostringstream os;
        os << "resource " << a.resource << " slot " << s << " over capacity";
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace treesched
