#include "algo/line_solvers.hpp"

#include <algorithm>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "util/check.hpp"

namespace treesched {

namespace {

std::vector<LineAssignment> toAssignments(const InstanceUniverse& universe,
                                          const Solution& solution) {
  std::vector<LineAssignment> result;
  result.reserve(solution.instances.size());
  for (const InstanceId i : solution.instances) {
    const InstanceRecord& rec = universe.instance(i);
    result.push_back({rec.demand, rec.network, rec.u});
  }
  std::sort(result.begin(), result.end(),
            [](const LineAssignment& a, const LineAssignment& b) {
              return a.demand < b.demand;
            });
  return result;
}

LineProblem subProblem(const LineProblem& problem,
                       const std::vector<DemandId>& keep) {
  LineProblem sub;
  sub.numSlots = problem.numSlots;
  sub.numResources = problem.numResources;
  sub.demands.reserve(keep.size());
  sub.access.reserve(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    WindowDemand d = problem.demands[static_cast<std::size_t>(keep[i])];
    d.id = static_cast<DemandId>(i);
    sub.demands.push_back(d);
    sub.access.push_back(problem.access[static_cast<std::size_t>(keep[i])]);
  }
  return sub;
}

}  // namespace

LineSolveResult runLineFramework(const LineProblem& problem,
                                 const SolverOptions& options, RaiseRule rule) {
  InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  universe.buildConflicts();
  const Layering layering = buildLineLayering(universe);

  double derivedHmin = 1.0;
  for (const WindowDemand& d : problem.demands) {
    derivedHmin = std::min(derivedHmin, d.height);
  }

  FrameworkConfig cfg;
  cfg.epsilon = options.epsilon;
  cfg.raise = rule;
  cfg.schedule = options.schedule;
  cfg.hmin = options.hmin > 0 ? options.hmin : derivedHmin;
  cfg.seed = options.seed;
  cfg.misRoundBudget = options.misRoundBudget;
  cfg.fixedSchedule = options.fixedSchedule;
  cfg.stepsPerStage = options.stepsPerStage;

  const TwoPhaseResult run = runTwoPhase(universe, layering, cfg);

  LineSolveResult result;
  result.assignments = toAssignments(universe, run.solution);
  result.profit = run.profit;
  result.dualUpperBound = run.dualUpperBound;
  result.certifiedBound =
      approximationBound(rule, run.stats.delta, run.stats.lambdaTarget);
  result.stats = run.stats;

  const std::string err = checkAssignments(problem, result.assignments);
  checkThat(err.empty(), "line solver produced feasible assignments: " + err,
            __FILE__, __LINE__);
  return result;
}

LineSolveResult solveUnitLine(const LineProblem& problem,
                              const SolverOptions& options) {
  checkThat(problem.isUnitHeight(), "solveUnitLine requires unit heights",
            __FILE__, __LINE__);
  return runLineFramework(problem, options, RaiseRule::Unit);
}

ArbitraryLineResult solveArbitraryLine(const LineProblem& problem,
                                       const SolverOptions& options) {
  problem.validate();
  std::vector<DemandId> wide;
  std::vector<DemandId> narrow;
  for (const WindowDemand& d : problem.demands) {
    (isNarrow(d.height) ? narrow : wide).push_back(d.id);
  }

  ArbitraryLineResult result;
  std::vector<LineAssignment> wideAssign;
  std::vector<LineAssignment> narrowAssign;

  if (!wide.empty()) {
    const LineProblem sub = subProblem(problem, wide);
    LineSolveResult run = runLineFramework(sub, options, RaiseRule::Unit);
    for (LineAssignment a : run.assignments) {
      a.demand = wide[static_cast<std::size_t>(a.demand)];
      wideAssign.push_back(a);
    }
    result.wideStats = run.stats;
    result.dualUpperBound += run.dualUpperBound;
    result.wideProfit = run.profit;
  }
  if (!narrow.empty()) {
    const LineProblem sub = subProblem(problem, narrow);
    LineSolveResult run = runLineFramework(sub, options, RaiseRule::Narrow);
    for (LineAssignment a : run.assignments) {
      a.demand = narrow[static_cast<std::size_t>(a.demand)];
      narrowAssign.push_back(a);
    }
    result.narrowStats = run.stats;
    result.dualUpperBound += run.dualUpperBound;
    result.narrowProfit = run.profit;
  }

  // Per-resource combine (same argument as the tree case, Theorem 6.3).
  std::vector<double> wideByRes(static_cast<std::size_t>(problem.numResources),
                                0.0);
  std::vector<double> narrowByRes(
      static_cast<std::size_t>(problem.numResources), 0.0);
  for (const LineAssignment& a : wideAssign) {
    wideByRes[static_cast<std::size_t>(a.resource)] +=
        problem.demands[static_cast<std::size_t>(a.demand)].profit;
  }
  for (const LineAssignment& a : narrowAssign) {
    narrowByRes[static_cast<std::size_t>(a.resource)] +=
        problem.demands[static_cast<std::size_t>(a.demand)].profit;
  }
  for (const LineAssignment& a : wideAssign) {
    if (wideByRes[static_cast<std::size_t>(a.resource)] >=
        narrowByRes[static_cast<std::size_t>(a.resource)]) {
      result.assignments.push_back(a);
    }
  }
  for (const LineAssignment& a : narrowAssign) {
    if (wideByRes[static_cast<std::size_t>(a.resource)] <
        narrowByRes[static_cast<std::size_t>(a.resource)]) {
      result.assignments.push_back(a);
    }
  }
  result.profit = assignmentProfit(problem, result.assignments);

  // p(Opt) <= 4/(1-eps) p(S1) + 19/(1-eps) p(S2) <= 23/(1-eps) p(S)
  // for the staged schedule (Theorem 7.2).
  const double lambda = options.schedule == SchedulePolicy::Staged
                            ? 1.0 - options.epsilon
                            : 1.0 / (5.0 + options.epsilon);
  result.certifiedBound = approximationBound(RaiseRule::Unit, 3, lambda) +
                          approximationBound(RaiseRule::Narrow, 3, lambda);

  const std::string err = checkAssignments(problem, result.assignments);
  checkThat(err.empty(), "combined line solution feasible: " + err, __FILE__,
            __LINE__);
  return result;
}

LineSolveResult solvePanconesiSozioUnitLine(const LineProblem& problem,
                                            SolverOptions options) {
  options.schedule = SchedulePolicy::Threshold;
  return solveUnitLine(problem, options);
}

ArbitraryLineResult solvePanconesiSozioArbitraryLine(const LineProblem& problem,
                                                     SolverOptions options) {
  options.schedule = SchedulePolicy::Threshold;
  return solveArbitraryLine(problem, options);
}

}  // namespace treesched
