// Distributed solvers for tree-networks (paper §5 and §6).
//
//  * solveUnitTree       — Theorem 5.3: (7+eps)-approximation for the unit
//    height case; Delta = 6 via the ideal decomposition, staged slackness
//    lambda = 1-eps.
//  * solveArbitraryTree  — Theorem 6.3: (80+eps)-approximation for
//    arbitrary heights: the unit-height algorithm on the wide instances
//    (h > 1/2), the narrow-rule framework on the narrow instances
//    (h <= 1/2, Lemma 6.2: 73+eps), combined per network by taking the
//    more profitable set.
//
// These functions run the *centralized reference engine* with exact round
// accounting; src/dist/ executes the same algorithm over simulated message
// passing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "algo/assignments.hpp"
#include "core/tree_problem.hpp"
#include "decomp/tree_decomposition.hpp"
#include "framework/two_phase.hpp"

namespace treesched {

/// Options shared by the distributed solvers.
///
/// Legacy per-layer view: new code builds a layered SchedulerConfig
/// (policy/config.hpp) and projects with solverOptions(); the one
/// field-by-field mapping lives there.
struct SolverOptions {
  double epsilon = 0.1;  ///< approximation slack (lambda = 1-eps staged)
  std::uint64_t seed = 1;
  /// Staged = this paper; Threshold = the Panconesi–Sozio schedule with
  /// lambda = 1/(5+eps) (used as the published baseline on lines and as an
  /// ablation on trees).
  SchedulePolicy schedule = SchedulePolicy::Staged;
  /// Tree decomposition behind the layering (trees only). Ideal gives the
  /// paper's Delta = 6; Balancing/RootFixing are ablations.
  DecompositionKind decomposition = DecompositionKind::Ideal;
  std::int32_t misRoundBudget = 0;  ///< <= 0: run Luby to completion
  bool fixedSchedule = false;       ///< paper's fixed global tuple schedule
  std::int32_t stepsPerStage = 0;   ///< 0 = derive from pmax/pmin
  double hmin = 0;                  ///< 0 = derive from the input heights
};

struct TreeSolveResult {
  std::vector<TreeAssignment> assignments;
  double profit = 0;
  /// Certified upper bound on OPT: val(alpha,beta)/lambda by weak duality.
  double dualUpperBound = 0;
  /// Worst-case factor guaranteed by the run's (Delta, lambda).
  double certifiedBound = 0;
  TwoPhaseStats stats;
};

/// Theorem 5.3. Requires a unit-height problem.
TreeSolveResult solveUnitTree(const TreeProblem& problem,
                              const SolverOptions& options = {});

/// Result of the arbitrary-height solver, with the two sub-runs exposed.
struct ArbitraryTreeResult {
  std::vector<TreeAssignment> assignments;
  double profit = 0;
  double dualUpperBound = 0;  ///< UB(wide) + UB(narrow) >= OPT
  double certifiedBound = 0;
  std::optional<TwoPhaseStats> wideStats;
  std::optional<TwoPhaseStats> narrowStats;
  double wideProfit = 0;
  double narrowProfit = 0;
};

/// Theorem 6.3. Accepts any heights in (0, 1].
ArbitraryTreeResult solveArbitraryTree(const TreeProblem& problem,
                                       const SolverOptions& options = {});

/// Shared internals, exposed for the ablation benches: runs the framework
/// over an explicit universe/layering built from `problem`.
TreeSolveResult runTreeFramework(const TreeProblem& problem,
                                 const SolverOptions& options, RaiseRule rule);

}  // namespace treesched
