#include "graph/tree_network.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace treesched {

TreeNetwork::TreeNetwork(TreeId id, std::int32_t numVertices,
                         std::vector<std::pair<VertexId, VertexId>> edges)
    : id_(id), n_(numVertices), edges_(std::move(edges)) {
  checkThat(n_ >= 1, "tree has at least one vertex", __FILE__, __LINE__);
  checkThat(static_cast<std::int32_t>(edges_.size()) == n_ - 1,
            "tree has exactly n-1 edges", __FILE__, __LINE__);
  adj_.assign(static_cast<std::size_t>(n_), {});
  for (EdgeId e = 0; e < n_ - 1; ++e) {
    const auto [u, v] = edges_[static_cast<std::size_t>(e)];
    checkIndex(u, n_, "edge endpoint u");
    checkIndex(v, n_, "edge endpoint v");
    checkThat(u != v, "no self loops", __FILE__, __LINE__);
    adj_[static_cast<std::size_t>(u)].push_back({v, e});
    adj_[static_cast<std::size_t>(v)].push_back({u, e});
  }

  // Root at vertex 0: BFS gives parent/depth and verifies connectivity.
  parent_.assign(static_cast<std::size_t>(n_), kNoVertex);
  parentEdge_.assign(static_cast<std::size_t>(n_), kNoEdge);
  depth_.assign(static_cast<std::size_t>(n_), -1);
  std::queue<VertexId> frontier;
  frontier.push(0);
  depth_[0] = 0;
  std::int32_t reached = 0;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    ++reached;
    for (const AdjEntry& a : adj_[static_cast<std::size_t>(v)]) {
      if (depth_[static_cast<std::size_t>(a.to)] == -1) {
        depth_[static_cast<std::size_t>(a.to)] =
            depth_[static_cast<std::size_t>(v)] + 1;
        parent_[static_cast<std::size_t>(a.to)] = v;
        parentEdge_[static_cast<std::size_t>(a.to)] = a.edge;
        frontier.push(a.to);
      }
    }
  }
  checkThat(reached == n_, "tree is connected", __FILE__, __LINE__);

  // Binary lifting table.
  std::int32_t levels = 1;
  while ((1 << levels) < n_) ++levels;
  up_.assign(static_cast<std::size_t>(levels), parent_);
  for (std::int32_t k = 1; k < levels; ++k) {
    for (VertexId v = 0; v < n_; ++v) {
      const VertexId mid = up_[static_cast<std::size_t>(k - 1)]
                              [static_cast<std::size_t>(v)];
      up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)] =
          (mid == kNoVertex)
              ? kNoVertex
              : up_[static_cast<std::size_t>(k - 1)]
                   [static_cast<std::size_t>(mid)];
    }
  }
}

void TreeNetwork::checkVertex(VertexId v) const { checkIndex(v, n_, "vertex"); }

std::pair<VertexId, VertexId> TreeNetwork::edge(EdgeId e) const {
  checkIndex(e, n_ - 1, "edge");
  return edges_[static_cast<std::size_t>(e)];
}

std::span<const AdjEntry> TreeNetwork::neighbors(VertexId v) const {
  checkVertex(v);
  return adj_[static_cast<std::size_t>(v)];
}

std::int32_t TreeNetwork::degree(VertexId v) const {
  checkVertex(v);
  return static_cast<std::int32_t>(adj_[static_cast<std::size_t>(v)].size());
}

std::int32_t TreeNetwork::depth(VertexId v) const {
  checkVertex(v);
  return depth_[static_cast<std::size_t>(v)];
}

VertexId TreeNetwork::parent(VertexId v) const {
  checkVertex(v);
  return parent_[static_cast<std::size_t>(v)];
}

EdgeId TreeNetwork::parentEdge(VertexId v) const {
  checkVertex(v);
  return parentEdge_[static_cast<std::size_t>(v)];
}

VertexId TreeNetwork::ancestor(VertexId v, std::int32_t k) const {
  checkVertex(v);
  checkThat(k <= depth(v), "ancestor level within depth", __FILE__, __LINE__);
  for (std::size_t bit = 0; k != 0; ++bit, k >>= 1) {
    if (k & 1) {
      v = up_[bit][static_cast<std::size_t>(v)];
    }
  }
  return v;
}

VertexId TreeNetwork::lca(VertexId u, VertexId v) const {
  checkVertex(u);
  checkVertex(v);
  if (depth(u) < depth(v)) std::swap(u, v);
  u = ancestor(u, depth(u) - depth(v));
  if (u == v) return u;
  for (std::int32_t k = static_cast<std::int32_t>(up_.size()) - 1; k >= 0;
       --k) {
    const VertexId uu =
        up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(u)];
    const VertexId vv =
        up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)];
    if (uu != vv) {
      u = uu;
      v = vv;
    }
  }
  return parent_[static_cast<std::size_t>(u)];
}

std::int32_t TreeNetwork::distance(VertexId u, VertexId v) const {
  const VertexId w = lca(u, v);
  return depth(u) + depth(v) - 2 * depth(w);
}

std::vector<EdgeId> TreeNetwork::pathEdges(VertexId u, VertexId v) const {
  const VertexId w = lca(u, v);
  std::vector<EdgeId> result;
  result.reserve(static_cast<std::size_t>(distance(u, v)));
  for (VertexId x = u; x != w; x = parent(x)) {
    result.push_back(parentEdge(x));
  }
  std::vector<EdgeId> down;
  for (VertexId x = v; x != w; x = parent(x)) {
    down.push_back(parentEdge(x));
  }
  result.insert(result.end(), down.rbegin(), down.rend());
  return result;
}

std::vector<VertexId> TreeNetwork::pathVertices(VertexId u, VertexId v) const {
  const VertexId w = lca(u, v);
  std::vector<VertexId> result;
  result.reserve(static_cast<std::size_t>(distance(u, v)) + 1);
  for (VertexId x = u; x != w; x = parent(x)) {
    result.push_back(x);
  }
  result.push_back(w);
  std::vector<VertexId> down;
  for (VertexId x = v; x != w; x = parent(x)) {
    down.push_back(x);
  }
  result.insert(result.end(), down.rbegin(), down.rend());
  return result;
}

bool TreeNetwork::onPath(VertexId x, VertexId u, VertexId v) const {
  return distance(u, x) + distance(x, v) == distance(u, v);
}

VertexId TreeNetwork::meetingPoint(VertexId a, VertexId b, VertexId c) const {
  // The median of three vertices in a tree is the deepest of the three
  // pairwise LCAs (two of them always coincide).
  const VertexId ab = lca(a, b);
  const VertexId ac = lca(a, c);
  const VertexId bc = lca(b, c);
  VertexId best = ab;
  if (depth(ac) > depth(best)) best = ac;
  if (depth(bc) > depth(best)) best = bc;
  return best;
}

EdgeId TreeNetwork::edgeBetween(VertexId u, VertexId v) const {
  checkVertex(u);
  checkVertex(v);
  for (const AdjEntry& a : adj_[static_cast<std::size_t>(u)]) {
    if (a.to == v) return a.edge;
  }
  return kNoEdge;
}

VertexId TreeNetwork::stepToward(VertexId from, VertexId to) const {
  checkThat(from != to, "stepToward needs distinct vertices", __FILE__,
            __LINE__);
  const VertexId w = lca(from, to);
  if (from == w) {
    // `to` is below `from`: step down by lifting `to` to depth(from)+1.
    return ancestor(to, depth(to) - depth(from) - 1);
  }
  return parent(from);
}

TreeNetwork makePathTree(TreeId id, std::int32_t numVertices) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(
      static_cast<std::size_t>(numVertices > 0 ? numVertices - 1 : 0));
  for (VertexId v = 0; v + 1 < numVertices; ++v) {
    edges.emplace_back(v, v + 1);
  }
  return TreeNetwork(id, numVertices, std::move(edges));
}

TreeNetwork makeStarTree(TreeId id, std::int32_t numVertices) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(
      static_cast<std::size_t>(numVertices > 0 ? numVertices - 1 : 0));
  for (VertexId v = 1; v < numVertices; ++v) {
    edges.emplace_back(0, v);
  }
  return TreeNetwork(id, numVertices, std::move(edges));
}

}  // namespace treesched
