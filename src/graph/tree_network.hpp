// Tree-network substrate (paper §1, §2).
//
// A tree-network is a connected, undirected tree over the shared vertex set
// V; the paper's demand paths, tree decompositions and layered
// decompositions are all built on the queries provided here:
//   * LCA / distance / path extraction (binary lifting, O(log n) queries);
//   * meetingPoint(a, b, c): the unique vertex lying on all three pairwise
//     paths — this computes the paper's "bending point" of a demand path
//     with respect to an external vertex (§4.4);
//   * onPath / edgeBetween / stepToward helpers used by the decomposition
//     constructions.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace treesched {

using VertexId = std::int32_t;  ///< Vertex index in [0, n).
using EdgeId = std::int32_t;    ///< Edge index in [0, n-1) within one tree.
using TreeId = std::int32_t;    ///< Index of a tree-network in the input set.

inline constexpr VertexId kNoVertex = -1;
inline constexpr EdgeId kNoEdge = -1;

/// Adjacency record: neighbour vertex plus the id of the connecting edge.
struct AdjEntry {
  VertexId to;
  EdgeId edge;
};

/// An immutable tree over vertices 0..n-1.
///
/// Construction validates treeness (exactly n-1 edges, connected, no self
/// loops) and precomputes a rooting at vertex 0 with binary-lifting LCA
/// tables. All queries are const and thread-compatible.
class TreeNetwork {
 public:
  /// Builds a tree-network. Throws CheckError if `edges` do not form a
  /// tree over `numVertices` vertices.
  TreeNetwork(TreeId id, std::int32_t numVertices,
              std::vector<std::pair<VertexId, VertexId>> edges);

  TreeId id() const { return id_; }
  std::int32_t numVertices() const { return n_; }
  std::int32_t numEdges() const { return n_ - 1; }

  /// Endpoints of edge `e` as given at construction.
  std::pair<VertexId, VertexId> edge(EdgeId e) const;

  std::span<const AdjEntry> neighbors(VertexId v) const;
  std::int32_t degree(VertexId v) const;

  /// Depth of `v` in the (internal) rooting at vertex 0; root has depth 0.
  std::int32_t depth(VertexId v) const;
  /// Parent of `v` under the internal rooting; kNoVertex for the root.
  VertexId parent(VertexId v) const;
  /// Edge to the parent; kNoEdge for the root.
  EdgeId parentEdge(VertexId v) const;

  /// Least common ancestor under the internal rooting.
  VertexId lca(VertexId u, VertexId v) const;

  /// Number of edges on the unique u--v path.
  std::int32_t distance(VertexId u, VertexId v) const;

  /// Edge ids along the unique u--v path, ordered from u to v.
  std::vector<EdgeId> pathEdges(VertexId u, VertexId v) const;

  /// Vertices along the unique u--v path, ordered from u to v (inclusive).
  std::vector<VertexId> pathVertices(VertexId u, VertexId v) const;

  /// True iff x lies on the unique u--v path (endpoints included).
  bool onPath(VertexId x, VertexId u, VertexId v) const;

  /// The unique vertex on all three pairwise paths among {a, b, c}.
  /// For a demand path (a, b) and an external vertex c, this is the
  /// paper's bending point of the path with respect to c (§4.4).
  VertexId meetingPoint(VertexId a, VertexId b, VertexId c) const;

  /// Id of the edge joining u and v, or kNoEdge if not adjacent.
  EdgeId edgeBetween(VertexId u, VertexId v) const;

  /// First vertex after `from` on the path toward `to`; requires from != to.
  VertexId stepToward(VertexId from, VertexId to) const;

  /// The k-th ancestor of v (k <= depth(v)).
  VertexId ancestor(VertexId v, std::int32_t k) const;

 private:
  void checkVertex(VertexId v) const;

  TreeId id_;
  std::int32_t n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<std::vector<AdjEntry>> adj_;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parentEdge_;
  std::vector<std::int32_t> depth_;
  // up_[k][v] = 2^k-th ancestor of v (kNoVertex above the root).
  std::vector<std::vector<VertexId>> up_;
};

/// Convenience: builds a path-graph tree 0-1-2-...-(n-1). Line networks are
/// exactly this shape (§1 "Line-Networks", §7).
TreeNetwork makePathTree(TreeId id, std::int32_t numVertices);

/// Convenience: builds a star with center 0 and leaves 1..n-1.
TreeNetwork makeStarTree(TreeId id, std::int32_t numVertices);

}  // namespace treesched
