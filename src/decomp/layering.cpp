#include "decomp/layering.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "util/check.hpp"

namespace treesched {

namespace {

/// Appends the wings of vertex y on the path u--v of `tree` (the path
/// edges adjacent to y, §4.4) as global edge ids with the given network
/// base offset. y must lie on the path.
void appendWingEdges(const TreeNetwork& tree, GlobalEdgeId base, VertexId y,
                     VertexId u, VertexId v, std::vector<GlobalEdgeId>& out) {
  if (y != u) {
    const EdgeId e = tree.edgeBetween(y, tree.stepToward(y, u));
    checkThat(e != kNoEdge, "wing toward u exists", __FILE__, __LINE__);
    out.push_back(base + e);
  }
  if (y != v) {
    const EdgeId e = tree.edgeBetween(y, tree.stepToward(y, v));
    checkThat(e != kNoEdge, "wing toward v exists", __FILE__, __LINE__);
    out.push_back(base + e);
  }
}

/// appendWingEdges against a universe's global edge index.
void appendWings(const TreeNetwork& tree, const InstanceUniverse& universe,
                 TreeId network, VertexId y, VertexId u, VertexId v,
                 std::vector<GlobalEdgeId>& out) {
  appendWingEdges(tree, universe.globalEdge(network, 0), y, u, v, out);
}

double millisSince(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1000.0;
}

}  // namespace

TreeLayeringResult buildTreeLayering(const TreeProblem& problem,
                                     const InstanceUniverse& universe,
                                     DecompositionKind kind) {
  checkThat(universe.kind() == InstanceUniverse::Kind::Tree, "tree universe",
            __FILE__, __LINE__);
  TreeLayeringResult result;
  result.decompositions.reserve(
      static_cast<std::size_t>(problem.numNetworks()));
  std::vector<std::vector<std::vector<VertexId>>> pivotSets;
  pivotSets.reserve(static_cast<std::size_t>(problem.numNetworks()));
  std::int32_t maxLen = 0;
  for (TreeId t = 0; t < problem.numNetworks(); ++t) {
    const TreeNetwork& tree = problem.networks[static_cast<std::size_t>(t)];
    result.decompositions.push_back(buildDecomposition(tree, kind));
    pivotSets.push_back(computePivotSets(tree, result.decompositions.back()));
    maxLen = std::max(maxLen, result.decompositions.back().maxDepth());
  }

  Layering& lay = result.layering;
  lay.numGroups = maxLen;
  const std::int32_t numInst = universe.numInstances();
  lay.group.resize(static_cast<std::size_t>(numInst));
  lay.criticalOffset.assign(static_cast<std::size_t>(numInst) + 1, 0);
  result.captureNodes.resize(static_cast<std::size_t>(numInst));

  std::vector<GlobalEdgeId> buffer;
  for (InstanceId i = 0; i < numInst; ++i) {
    const InstanceRecord& rec = universe.instance(i);
    const TreeNetwork& tree =
        problem.networks[static_cast<std::size_t>(rec.network)];
    const TreeDecomposition& h =
        result.decompositions[static_cast<std::size_t>(rec.network)];

    // Group: instances captured deepest go first (paper's sigma reverses
    // the depth order, §4.4). 0-based: group = localDepth(max) - depth(mu).
    const VertexId mu = captureNode(tree, h, rec.u, rec.v);
    result.captureNodes[static_cast<std::size_t>(i)] = mu;
    const std::int32_t localMax = h.maxDepth();
    lay.group[static_cast<std::size_t>(i)] =
        localMax - h.depth[static_cast<std::size_t>(mu)];

    // Critical edges pi(d): wings of mu, plus wings of the bending point
    // of path(d) with respect to every pivot of C(mu).
    buffer.clear();
    appendWings(tree, universe, rec.network, mu, rec.u, rec.v, buffer);
    for (const VertexId w :
         pivotSets[static_cast<std::size_t>(rec.network)]
                  [static_cast<std::size_t>(mu)]) {
      const VertexId bend = tree.meetingPoint(rec.u, rec.v, w);
      appendWings(tree, universe, rec.network, bend, rec.u, rec.v, buffer);
    }
    std::sort(buffer.begin(), buffer.end());
    buffer.erase(std::unique(buffer.begin(), buffer.end()), buffer.end());
    lay.criticalPool.insert(lay.criticalPool.end(), buffer.begin(),
                            buffer.end());
    lay.criticalOffset[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int32_t>(lay.criticalPool.size());
    lay.maxCriticalSize = std::max(lay.maxCriticalSize,
                                   static_cast<std::int32_t>(buffer.size()));
  }
  return result;
}

Layering buildLineLayering(const InstanceUniverse& universe) {
  checkThat(universe.kind() == InstanceUniverse::Kind::Line, "line universe",
            __FILE__, __LINE__);
  Layering lay;
  const std::int32_t numInst = universe.numInstances();
  lay.group.resize(static_cast<std::size_t>(numInst));
  lay.criticalOffset.assign(static_cast<std::size_t>(numInst) + 1, 0);
  if (numInst == 0) {
    lay.numGroups = 0;
    return lay;
  }

  std::int32_t minLen = universe.instance(0).pathLength();
  for (InstanceId i = 0; i < numInst; ++i) {
    minLen = std::min(minLen, universe.instance(i).pathLength());
  }

  for (InstanceId i = 0; i < numInst; ++i) {
    const InstanceRecord& rec = universe.instance(i);
    // Factor-2 length buckets, shortest first: len in
    // [2^g * Lmin, 2^(g+1) * Lmin).
    const std::int32_t len = rec.pathLength();
    std::int32_t g = 0;
    while ((static_cast<std::int64_t>(minLen) << (g + 1)) <= len) ++g;
    lay.group[static_cast<std::size_t>(i)] = g;
    lay.numGroups = std::max(lay.numGroups, g + 1);

    // pi(d) = slots {start, mid, end} of the execution segment.
    const std::int32_t network = rec.network;
    const std::int32_t mid = (rec.u + rec.v) / 2;
    GlobalEdgeId wings[3] = {universe.globalEdge(network, rec.u),
                             universe.globalEdge(network, mid),
                             universe.globalEdge(network, rec.v)};
    std::sort(std::begin(wings), std::end(wings));
    const auto* end = std::unique(std::begin(wings), std::end(wings));
    for (const auto* p = std::begin(wings); p != end; ++p) {
      lay.criticalPool.push_back(*p);
    }
    lay.criticalOffset[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int32_t>(lay.criticalPool.size());
    lay.maxCriticalSize =
        std::max(lay.maxCriticalSize,
                 static_cast<std::int32_t>(end - std::begin(wings)));
  }
  return lay;
}

std::string checkLayering(const InstanceUniverse& universe,
                          const Layering& layering) {
  const std::int32_t numInst = universe.numInstances();
  checkThat(static_cast<std::int32_t>(layering.group.size()) == numInst,
            "layering covers universe", __FILE__, __LINE__);
  for (InstanceId d1 = 0; d1 < numInst; ++d1) {
    // Critical edges must lie on the instance's own path.
    const auto p1 = universe.path(d1);
    for (const GlobalEdgeId e : layering.critical(d1)) {
      if (std::find(p1.begin(), p1.end(), e) == p1.end()) {
        std::ostringstream os;
        os << "critical edge " << e << " of instance " << d1
           << " is not on its path";
        return os.str();
      }
    }
    for (InstanceId d2 = 0; d2 < numInst; ++d2) {
      if (d1 == d2) continue;
      if (layering.group[static_cast<std::size_t>(d1)] >
          layering.group[static_cast<std::size_t>(d2)]) {
        continue;
      }
      if (!universe.overlapping(d1, d2)) continue;
      const auto p2 = universe.path(d2);
      bool hit = false;
      for (const GlobalEdgeId e : layering.critical(d1)) {
        if (std::find(p2.begin(), p2.end(), e) != p2.end()) {
          hit = true;
          break;
        }
      }
      if (!hit) {
        std::ostringstream os;
        os << "interference property violated: instance " << d1 << " (group "
           << layering.group[static_cast<std::size_t>(d1)] << ") vs instance "
           << d2 << " (group " << layering.group[static_cast<std::size_t>(d2)]
           << ")";
        return os.str();
      }
    }
  }
  return {};
}

TreeInstanceLayerer::TreeInstanceLayerer(
    std::shared_ptr<const TreeProblem> problem, DecompositionKind kind)
    : problem_(std::move(problem)) {
  checkThat(problem_ != nullptr, "tree problem provided", __FILE__, __LINE__);
  const std::int32_t numNetworks = problem_->numNetworks();
  decompositions_.reserve(static_cast<std::size_t>(numNetworks));
  pivotSets_.reserve(static_cast<std::size_t>(numNetworks));
  localMaxDepth_.reserve(static_cast<std::size_t>(numNetworks));
  edgeOffset_.resize(static_cast<std::size_t>(numNetworks) + 1, 0);
  for (TreeId t = 0; t < numNetworks; ++t) {
    const TreeNetwork& tree = problem_->networks[static_cast<std::size_t>(t)];
    decompositions_.push_back(buildDecomposition(tree, kind));
    pivotSets_.push_back(computePivotSets(tree, decompositions_.back()));
    localMaxDepth_.push_back(decompositions_.back().maxDepth());
    numGroups_ = std::max(numGroups_, localMaxDepth_.back());
    edgeOffset_[static_cast<std::size_t>(t) + 1] =
        edgeOffset_[static_cast<std::size_t>(t)] + tree.numEdges();
  }

  // One-time pool pass: maxCriticalSize is measured over every instance
  // the pool can ever contain (exactly as buildTreeLayering measures
  // it), so the protocol's stage plan is identical whichever demands
  // happen to be live.
  std::vector<GlobalEdgeId> buffer;
  for (DemandId d = 0; d < problem_->numDemands(); ++d) {
    const Demand& dem = problem_->demands[static_cast<std::size_t>(d)];
    for (const TreeId t : problem_->access[static_cast<std::size_t>(d)]) {
      InstanceRecord rec;
      rec.demand = d;
      rec.network = t;
      rec.u = dem.u;
      rec.v = dem.v;
      buffer.clear();
      layer(rec, buffer);
      maxCriticalSize_ = std::max(maxCriticalSize_,
                                  static_cast<std::int32_t>(buffer.size()));
    }
  }
}

std::int32_t TreeInstanceLayerer::layer(
    const InstanceRecord& rec, std::vector<GlobalEdgeId>& critical) const {
  const auto network = static_cast<std::size_t>(rec.network);
  const TreeNetwork& tree = problem_->networks[network];
  const TreeDecomposition& h = decompositions_[network];
  const GlobalEdgeId base = edgeOffset_[network];

  // Group: instances captured deepest go first (§4.4); the group index
  // depends only on mu's depth and the network's own depth range.
  const VertexId mu = captureNode(tree, h, rec.u, rec.v);
  const std::int32_t group =
      localMaxDepth_[network] - h.depth[static_cast<std::size_t>(mu)];

  // Critical edges pi(d): wings of mu, plus wings of the bending point
  // of path(d) with respect to every pivot of C(mu).
  appendWingEdges(tree, base, mu, rec.u, rec.v, critical);
  for (const VertexId w : pivotSets_[network][static_cast<std::size_t>(mu)]) {
    const VertexId bend = tree.meetingPoint(rec.u, rec.v, w);
    appendWingEdges(tree, base, bend, rec.u, rec.v, critical);
  }
  std::sort(critical.begin(), critical.end());
  critical.erase(std::unique(critical.begin(), critical.end()),
                 critical.end());
  return group;
}

LineInstanceLayerer::LineInstanceLayerer(
    std::shared_ptr<const LineProblem> problem)
    : problem_(std::move(problem)) {
  checkThat(problem_ != nullptr, "line problem provided", __FILE__, __LINE__);
  numSlots_ = problem_->numSlots;

  // Pool constants: length range over demands that contribute at least
  // one instance (an instance's length equals its demand's processing
  // time), matching buildLineLayering's scan over the full pool.
  bool any = false;
  std::int32_t maxLen = 1;
  for (DemandId d = 0; d < problem_->numDemands(); ++d) {
    const WindowDemand& dem = problem_->demands[static_cast<std::size_t>(d)];
    if (problem_->access[static_cast<std::size_t>(d)].empty()) continue;
    if (dem.deadline - dem.processing + 1 < dem.release) continue;
    if (!any) {
      minLen_ = maxLen = dem.processing;
      any = true;
    } else {
      minLen_ = std::min(minLen_, dem.processing);
      maxLen = std::max(maxLen, dem.processing);
    }
  }
  if (!any) return;  // empty pool: zero groups, layer() never called

  std::int32_t g = 0;
  while ((static_cast<std::int64_t>(minLen_) << (g + 1)) <= maxLen) ++g;
  numGroups_ = g + 1;

  std::vector<GlobalEdgeId> buffer;
  for (DemandId d = 0; d < problem_->numDemands(); ++d) {
    const WindowDemand& dem = problem_->demands[static_cast<std::size_t>(d)];
    if (problem_->access[static_cast<std::size_t>(d)].empty()) continue;
    if (dem.deadline - dem.processing + 1 < dem.release) continue;
    InstanceRecord rec;
    rec.demand = d;
    rec.network = problem_->access[static_cast<std::size_t>(d)].front();
    rec.u = dem.release;
    rec.v = dem.release + dem.processing - 1;
    buffer.clear();
    layer(rec, buffer);
    maxCriticalSize_ = std::max(maxCriticalSize_,
                                static_cast<std::int32_t>(buffer.size()));
  }
}

std::int32_t LineInstanceLayerer::layer(
    const InstanceRecord& rec, std::vector<GlobalEdgeId>& critical) const {
  // Factor-2 length buckets, shortest first: len in
  // [2^g * Lmin, 2^(g+1) * Lmin).
  const std::int32_t len = rec.v - rec.u + 1;
  std::int32_t g = 0;
  while ((static_cast<std::int64_t>(minLen_) << (g + 1)) <= len) ++g;

  // pi(d) = slots {start, mid, end} of the execution segment.
  const GlobalEdgeId base = rec.network * numSlots_;
  const std::int32_t mid = (rec.u + rec.v) / 2;
  critical.push_back(base + rec.u);
  critical.push_back(base + mid);
  critical.push_back(base + rec.v);
  std::sort(critical.begin(), critical.end());
  critical.erase(std::unique(critical.begin(), critical.end()),
                 critical.end());
  return g;
}

DynamicUniverse makeDynamicTreeUniverse(
    std::shared_ptr<const TreeProblem> problem, DecompositionKind kind) {
  const auto start = std::chrono::steady_clock::now();
  auto layerer = std::make_unique<TreeInstanceLayerer>(problem, kind);
  DynamicUniverse universe(std::move(problem), std::move(layerer));
  universe.setBuildMs(millisSince(start));
  return universe;
}

DynamicUniverse makeDynamicTreeUniverse(const TreeProblem& problem,
                                        DecompositionKind kind) {
  return makeDynamicTreeUniverse(std::make_shared<const TreeProblem>(problem),
                                 kind);
}

DynamicUniverse makeDynamicLineUniverse(
    std::shared_ptr<const LineProblem> problem) {
  const auto start = std::chrono::steady_clock::now();
  auto layerer = std::make_unique<LineInstanceLayerer>(problem);
  DynamicUniverse universe(std::move(problem), std::move(layerer));
  universe.setBuildMs(millisSince(start));
  return universe;
}

DynamicUniverse makeDynamicLineUniverse(const LineProblem& problem) {
  return makeDynamicLineUniverse(std::make_shared<const LineProblem>(problem));
}

}  // namespace treesched
