#include "decomp/layering.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace treesched {

namespace {

/// Appends the wings of vertex y on the path u--v of `tree` (the path
/// edges adjacent to y, §4.4) as global edge ids. y must lie on the path.
void appendWings(const TreeNetwork& tree, const InstanceUniverse& universe,
                 TreeId network, VertexId y, VertexId u, VertexId v,
                 std::vector<GlobalEdgeId>& out) {
  if (y != u) {
    const EdgeId e = tree.edgeBetween(y, tree.stepToward(y, u));
    checkThat(e != kNoEdge, "wing toward u exists", __FILE__, __LINE__);
    out.push_back(universe.globalEdge(network, e));
  }
  if (y != v) {
    const EdgeId e = tree.edgeBetween(y, tree.stepToward(y, v));
    checkThat(e != kNoEdge, "wing toward v exists", __FILE__, __LINE__);
    out.push_back(universe.globalEdge(network, e));
  }
}

}  // namespace

TreeLayeringResult buildTreeLayering(const TreeProblem& problem,
                                     const InstanceUniverse& universe,
                                     DecompositionKind kind) {
  checkThat(universe.kind() == InstanceUniverse::Kind::Tree, "tree universe",
            __FILE__, __LINE__);
  TreeLayeringResult result;
  result.decompositions.reserve(
      static_cast<std::size_t>(problem.numNetworks()));
  std::vector<std::vector<std::vector<VertexId>>> pivotSets;
  pivotSets.reserve(static_cast<std::size_t>(problem.numNetworks()));
  std::int32_t maxLen = 0;
  for (TreeId t = 0; t < problem.numNetworks(); ++t) {
    const TreeNetwork& tree = problem.networks[static_cast<std::size_t>(t)];
    result.decompositions.push_back(buildDecomposition(tree, kind));
    pivotSets.push_back(computePivotSets(tree, result.decompositions.back()));
    maxLen = std::max(maxLen, result.decompositions.back().maxDepth());
  }

  Layering& lay = result.layering;
  lay.numGroups = maxLen;
  const std::int32_t numInst = universe.numInstances();
  lay.group.resize(static_cast<std::size_t>(numInst));
  lay.criticalOffset.assign(static_cast<std::size_t>(numInst) + 1, 0);
  result.captureNodes.resize(static_cast<std::size_t>(numInst));

  std::vector<GlobalEdgeId> buffer;
  for (InstanceId i = 0; i < numInst; ++i) {
    const InstanceRecord& rec = universe.instance(i);
    const TreeNetwork& tree =
        problem.networks[static_cast<std::size_t>(rec.network)];
    const TreeDecomposition& h =
        result.decompositions[static_cast<std::size_t>(rec.network)];

    // Group: instances captured deepest go first (paper's sigma reverses
    // the depth order, §4.4). 0-based: group = localDepth(max) - depth(mu).
    const VertexId mu = captureNode(tree, h, rec.u, rec.v);
    result.captureNodes[static_cast<std::size_t>(i)] = mu;
    const std::int32_t localMax = h.maxDepth();
    lay.group[static_cast<std::size_t>(i)] =
        localMax - h.depth[static_cast<std::size_t>(mu)];

    // Critical edges pi(d): wings of mu, plus wings of the bending point
    // of path(d) with respect to every pivot of C(mu).
    buffer.clear();
    appendWings(tree, universe, rec.network, mu, rec.u, rec.v, buffer);
    for (const VertexId w :
         pivotSets[static_cast<std::size_t>(rec.network)]
                  [static_cast<std::size_t>(mu)]) {
      const VertexId bend = tree.meetingPoint(rec.u, rec.v, w);
      appendWings(tree, universe, rec.network, bend, rec.u, rec.v, buffer);
    }
    std::sort(buffer.begin(), buffer.end());
    buffer.erase(std::unique(buffer.begin(), buffer.end()), buffer.end());
    lay.criticalPool.insert(lay.criticalPool.end(), buffer.begin(),
                            buffer.end());
    lay.criticalOffset[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int32_t>(lay.criticalPool.size());
    lay.maxCriticalSize = std::max(lay.maxCriticalSize,
                                   static_cast<std::int32_t>(buffer.size()));
  }
  return result;
}

Layering buildLineLayering(const InstanceUniverse& universe) {
  checkThat(universe.kind() == InstanceUniverse::Kind::Line, "line universe",
            __FILE__, __LINE__);
  Layering lay;
  const std::int32_t numInst = universe.numInstances();
  lay.group.resize(static_cast<std::size_t>(numInst));
  lay.criticalOffset.assign(static_cast<std::size_t>(numInst) + 1, 0);
  if (numInst == 0) {
    lay.numGroups = 0;
    return lay;
  }

  std::int32_t minLen = universe.instance(0).pathLength();
  for (InstanceId i = 0; i < numInst; ++i) {
    minLen = std::min(minLen, universe.instance(i).pathLength());
  }

  for (InstanceId i = 0; i < numInst; ++i) {
    const InstanceRecord& rec = universe.instance(i);
    // Factor-2 length buckets, shortest first: len in
    // [2^g * Lmin, 2^(g+1) * Lmin).
    const std::int32_t len = rec.pathLength();
    std::int32_t g = 0;
    while ((static_cast<std::int64_t>(minLen) << (g + 1)) <= len) ++g;
    lay.group[static_cast<std::size_t>(i)] = g;
    lay.numGroups = std::max(lay.numGroups, g + 1);

    // pi(d) = slots {start, mid, end} of the execution segment.
    const std::int32_t network = rec.network;
    const std::int32_t mid = (rec.u + rec.v) / 2;
    GlobalEdgeId wings[3] = {universe.globalEdge(network, rec.u),
                             universe.globalEdge(network, mid),
                             universe.globalEdge(network, rec.v)};
    std::sort(std::begin(wings), std::end(wings));
    const auto* end = std::unique(std::begin(wings), std::end(wings));
    for (const auto* p = std::begin(wings); p != end; ++p) {
      lay.criticalPool.push_back(*p);
    }
    lay.criticalOffset[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int32_t>(lay.criticalPool.size());
    lay.maxCriticalSize =
        std::max(lay.maxCriticalSize,
                 static_cast<std::int32_t>(end - std::begin(wings)));
  }
  return lay;
}

std::string checkLayering(const InstanceUniverse& universe,
                          const Layering& layering) {
  const std::int32_t numInst = universe.numInstances();
  checkThat(static_cast<std::int32_t>(layering.group.size()) == numInst,
            "layering covers universe", __FILE__, __LINE__);
  for (InstanceId d1 = 0; d1 < numInst; ++d1) {
    // Critical edges must lie on the instance's own path.
    const auto p1 = universe.path(d1);
    for (const GlobalEdgeId e : layering.critical(d1)) {
      if (std::find(p1.begin(), p1.end(), e) == p1.end()) {
        std::ostringstream os;
        os << "critical edge " << e << " of instance " << d1
           << " is not on its path";
        return os.str();
      }
    }
    for (InstanceId d2 = 0; d2 < numInst; ++d2) {
      if (d1 == d2) continue;
      if (layering.group[static_cast<std::size_t>(d1)] >
          layering.group[static_cast<std::size_t>(d2)]) {
        continue;
      }
      if (!universe.overlapping(d1, d2)) continue;
      const auto p2 = universe.path(d2);
      bool hit = false;
      for (const GlobalEdgeId e : layering.critical(d1)) {
        if (std::find(p2.begin(), p2.end(), e) != p2.end()) {
          hit = true;
          break;
        }
      }
      if (!hit) {
        std::ostringstream os;
        os << "interference property violated: instance " << d1 << " (group "
           << layering.group[static_cast<std::size_t>(d1)] << ") vs instance "
           << d2 << " (group " << layering.group[static_cast<std::size_t>(d2)]
           << ")";
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace treesched
