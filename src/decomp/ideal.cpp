// Ideal tree decomposition — paper §4.3 (Lemma 4.1).
//
// Recursive construction over components C with at most two outside
// neighbours ("anchors"). Each level picks a balancer z; if both anchors
// attach inside the same child component C1 (the paper's Case 2(b)), the
// junction j — the median of (u1, u2, z) in T — is inserted above z so
// that every component handed to recursion again has <= 2 neighbours.
// Depth grows by at most 2 per halving: depth <= 2*ceil(lg n) + 1 and
// pivot size theta <= 2.
//
// Components are represented implicitly by a removal mask: a vertex's
// unremoved T-neighbours are exactly the representatives of the child
// components, because every outside neighbour of a component is a
// previously removed balancer/junction. Component-membership questions
// ("which part of C - z contains x?") reduce to first-step queries
// stepToward(z, x) on T, so the whole construction is O(n log^2 n).

#include <array>
#include <vector>

#include "decomp/centroid_internal.hpp"
#include "decomp/tree_decomposition.hpp"
#include "util/check.hpp"

namespace treesched {

namespace {

/// Up to two anchors; kNoVertex marks unused slots.
using Anchors = std::array<VertexId, 2>;

constexpr Anchors kNoAnchors{kNoVertex, kNoVertex};

Anchors makeAnchors(VertexId a, VertexId b = kNoVertex) { return {a, b}; }

int anchorCount(const Anchors& anchors) {
  int c = 0;
  for (const VertexId a : anchors) {
    if (a != kNoVertex) ++c;
  }
  return c;
}

struct WorkItem {
  VertexId rep;      ///< any vertex of the component
  VertexId hParent;  ///< node the component's H-root attaches to
  Anchors anchors;   ///< outside neighbours of the component (<= 2)
};

}  // namespace

TreeDecomposition idealDecomposition(const TreeNetwork& tree) {
  const std::int32_t n = tree.numVertices();
  std::vector<VertexId> parent(static_cast<std::size_t>(n), kNoVertex);
  detail::CentroidContext ctx(tree);

  std::vector<WorkItem> stack;
  stack.push_back({0, kNoVertex, kNoAnchors});
  VertexId root = kNoVertex;

  while (!stack.empty()) {
    const WorkItem item = stack.back();
    stack.pop_back();
    const auto component = ctx.collectComponent(item.rep);
    const VertexId z = ctx.findBalancer(component);

    // Attachment vertices u'_i: the unique neighbour of each anchor inside
    // the component; it is the first step from the anchor toward any
    // component vertex.
    Anchors attach = kNoAnchors;
    for (int i = 0; i < 2; ++i) {
      if (item.anchors[static_cast<std::size_t>(i)] != kNoVertex) {
        attach[static_cast<std::size_t>(i)] = tree.stepToward(
            item.anchors[static_cast<std::size_t>(i)], item.rep);
      }
    }

    // key_i identifies the component of C - z holding u'_i via z's
    // neighbour in its direction; kNoVertex when the anchor attaches to z
    // itself (and is thereby "consumed" by this split).
    Anchors key = kNoAnchors;
    for (int i = 0; i < 2; ++i) {
      const VertexId a = attach[static_cast<std::size_t>(i)];
      if (a != kNoVertex && a != z) {
        key[static_cast<std::size_t>(i)] = tree.stepToward(z, a);
      }
    }

    const bool caseJunction = anchorCount(item.anchors) == 2 &&
                              key[0] != kNoVertex && key[0] == key[1];

    if (!caseJunction) {
      // Cases 1 / 2(a) / root: plain balancer split. Each child component
      // keeps z as a neighbour plus at most one original anchor.
      parent[static_cast<std::size_t>(z)] = item.hParent;
      if (item.hParent == kNoVertex) root = z;
      ctx.markRemoved(z);
      for (const AdjEntry& a : tree.neighbors(z)) {
        if (ctx.removed(a.to)) continue;
        Anchors childAnchors = makeAnchors(z);
        for (int i = 0; i < 2; ++i) {
          if (key[static_cast<std::size_t>(i)] == a.to) {
            childAnchors[1] = item.anchors[static_cast<std::size_t>(i)];
          }
        }
        checkThat(anchorCount(childAnchors) <= 2, "child has <= 2 anchors",
                  __FILE__, __LINE__);
        stack.push_back({a.to, z, childAnchors});
      }
      continue;
    }

    // Case 2(b): both anchors attach inside the same child component C1.
    // The junction j is the unique vertex of C1 where the paths
    // u1~u2, u1~z and u2~z meet; it becomes the H-root of this level and
    // z its child.
    const VertexId u1 = item.anchors[0];
    const VertexId u2 = item.anchors[1];
    const VertexId j = tree.meetingPoint(u1, u2, z);
    checkThat(j != z && !ctx.removed(j), "junction lies inside C1", __FILE__,
              __LINE__);
    // z' = z's neighbour inside C1 (first step from z toward j).
    const VertexId zPrime = tree.stepToward(z, j);

    parent[static_cast<std::size_t>(j)] = item.hParent;
    if (item.hParent == kNoVertex) root = j;
    parent[static_cast<std::size_t>(z)] = j;
    ctx.markRemoved(z);
    ctx.markRemoved(j);

    // Children of z: the components C_i (i >= 2) of C - z (anchors {z})
    // and — when z' survives — the component C'_1 of C1 - j containing z'
    // (anchors {j, z}).
    for (const AdjEntry& a : tree.neighbors(z)) {
      if (ctx.removed(a.to)) continue;
      if (a.to == zPrime) {
        stack.push_back({a.to, z, makeAnchors(j, z)});
      } else {
        stack.push_back({a.to, z, makeAnchors(z)});
      }
    }
    // Children of j: the remaining components of C1 - j. The one holding
    // z' (direction stepToward(j, z')) was already attached under z above.
    const VertexId towardZ =
        (zPrime == j) ? kNoVertex : tree.stepToward(j, zPrime);
    for (const AdjEntry& a : tree.neighbors(j)) {
      if (ctx.removed(a.to)) continue;
      if (a.to == towardZ) continue;  // C'_1, handled from z's side
      Anchors childAnchors = makeAnchors(j);
      for (int i = 0; i < 2; ++i) {
        const VertexId at = attach[static_cast<std::size_t>(i)];
        if (at != kNoVertex && at != j && tree.stepToward(j, at) == a.to) {
          checkThat(childAnchors[1] == kNoVertex,
                    "at most one anchor per junction child", __FILE__,
                    __LINE__);
          childAnchors[1] = item.anchors[static_cast<std::size_t>(i)];
        }
      }
      stack.push_back({a.to, j, childAnchors});
    }
  }

  return finalizeDecomposition(tree.id(), root, std::move(parent));
}

}  // namespace treesched
