// Shared machinery for the balancing and ideal decompositions: component
// traversal over a removal mask and balancer (centroid) search.
//
// Both constructions repeatedly split components by "balancers" — vertices
// whose removal leaves parts of size <= floor(|C|/2) (§4.2). The context
// object owns scratch arrays sized once, so a full construction runs in
// O(n log n) without per-component allocation.
#pragma once

#include <span>
#include <vector>

#include "graph/tree_network.hpp"

namespace treesched::detail {

class CentroidContext {
 public:
  explicit CentroidContext(const TreeNetwork& tree);

  /// True when v has been removed (chosen as balancer/junction earlier).
  bool removed(VertexId v) const {
    return removed_[static_cast<std::size_t>(v)] != 0;
  }
  void markRemoved(VertexId v) { removed_[static_cast<std::size_t>(v)] = 1; }

  /// Collects the component of `rep` in T minus removed vertices.
  /// The result view is valid until the next collect() call.
  std::span<const VertexId> collectComponent(VertexId rep);

  /// Finds a balancer of the most recently collected component: every part
  /// of component - {balancer} has size <= floor(|component|/2). The paper
  /// notes every component has one.
  VertexId findBalancer(std::span<const VertexId> component);

  const TreeNetwork& tree() const { return tree_; }

 private:
  const TreeNetwork& tree_;
  std::vector<char> removed_;
  std::vector<VertexId> order_;     ///< DFS order of the current component.
  std::vector<VertexId> dfsParent_; ///< parent within the current component.
  std::vector<std::int32_t> size_;  ///< subtree sizes for balancer search.
};

}  // namespace treesched::detail
