// Tree decompositions (paper §4).
//
// A tree decomposition of a tree-network T is a rooted tree H over the same
// vertex set such that
//   (i)  every T-path through vertices x and y also passes through their
//        H-LCA ("LCA property");
//   (ii) for every node z, C(z) = {z} + H-descendants(z) induces a
//        connected subtree of T.
// Its *pivot set* chi(z) is the T-neighbourhood of C(z); the decomposition
// is measured by its depth and its pivot size theta = max |chi(z)|.
//
// Three constructions are provided (paper §4.2-§4.3):
//   * rootFixingDecomposition  — depth <= n,          theta = 1;
//   * balancingDecomposition   — depth <= ceil(lg n)+1, theta <= depth;
//   * idealDecomposition       — depth <= 2 ceil(lg n)+1, theta <= 2
//     (Lemma 4.1 — the paper's first main technical contribution).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree_network.hpp"

namespace treesched {

/// A rooted tree H over the vertex set of one tree-network.
/// depth() follows the paper's convention: the root has depth 1.
struct TreeDecomposition {
  TreeId network = 0;
  VertexId root = 0;
  std::vector<VertexId> parent;       ///< H-parent; kNoVertex for the root.
  std::vector<std::int32_t> depth;    ///< H-depth, root == 1.

  std::int32_t numVertices() const {
    return static_cast<std::int32_t>(parent.size());
  }
  /// Maximum depth over all nodes.
  std::int32_t maxDepth() const;

  /// H-LCA by parent walking (O(depth)).
  VertexId lca(VertexId x, VertexId y) const;

  /// True iff `anc` is an ancestor of `v` in H (or anc == v).
  bool isAncestorOrSelf(VertexId anc, VertexId v) const;
};

/// Builds parent/depth arrays into a decomposition and validates basic
/// shape (single root, acyclic, depths consistent).
TreeDecomposition finalizeDecomposition(TreeId network, VertexId root,
                                        std::vector<VertexId> parent);

/// chi(z) for every z: the T-neighbours of C(z). theta is the max size.
/// O(n * depth) using the ancestor characterization: for a T-edge (v, w),
/// w is a neighbour of C(z) exactly for the z on v's H-root-path that are
/// not on w's H-root-path.
std::vector<std::vector<VertexId>> computePivotSets(const TreeNetwork& tree,
                                                    const TreeDecomposition& h);

/// Max |chi(z)|.
std::int32_t pivotSize(const TreeNetwork& tree, const TreeDecomposition& h);

/// The capture node mu(d) of the T-path u--v: the path vertex with the
/// least H-depth; unique by the LCA property (§4.4).
VertexId captureNode(const TreeNetwork& tree, const TreeDecomposition& h,
                     VertexId u, VertexId v);

/// Exhaustively checks both decomposition properties. O(n^2 log n); meant
/// for tests and small instances. Returns an empty string when valid, else
/// a description of the first violation.
std::string checkTreeDecomposition(const TreeNetwork& tree,
                                   const TreeDecomposition& h);

/// §4.2: H := T rooted at `root`. Pivot size 1, depth up to n.
TreeDecomposition rootFixingDecomposition(const TreeNetwork& tree,
                                          VertexId root = 0);

/// §4.2: recursive balancer (centroid) decomposition. Depth <=
/// ceil(lg n)+1, pivot size up to the depth.
TreeDecomposition balancingDecomposition(const TreeNetwork& tree);

/// §4.3: the ideal decomposition — balancers plus junction nodes keep every
/// component's neighbourhood at size <= 2. Depth <= 2 ceil(lg n)+1,
/// pivot size <= 2 (Lemma 4.1).
TreeDecomposition idealDecomposition(const TreeNetwork& tree);

/// Selector used by ablation experiments (E10).
enum class DecompositionKind { RootFixing, Balancing, Ideal };

TreeDecomposition buildDecomposition(const TreeNetwork& tree,
                                     DecompositionKind kind);

/// Human-readable name for tables.
std::string decompositionKindName(DecompositionKind kind);

}  // namespace treesched
