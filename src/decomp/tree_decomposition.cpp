#include "decomp/tree_decomposition.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/check.hpp"

namespace treesched {

std::int32_t TreeDecomposition::maxDepth() const {
  std::int32_t best = 0;
  for (const std::int32_t d : depth) {
    best = std::max(best, d);
  }
  return best;
}

VertexId TreeDecomposition::lca(VertexId x, VertexId y) const {
  checkIndex(x, numVertices(), "H vertex x");
  checkIndex(y, numVertices(), "H vertex y");
  while (x != y) {
    if (depth[static_cast<std::size_t>(x)] >=
        depth[static_cast<std::size_t>(y)]) {
      x = parent[static_cast<std::size_t>(x)];
    } else {
      y = parent[static_cast<std::size_t>(y)];
    }
  }
  return x;
}

bool TreeDecomposition::isAncestorOrSelf(VertexId anc, VertexId v) const {
  while (v != kNoVertex && depth[static_cast<std::size_t>(v)] >=
                               depth[static_cast<std::size_t>(anc)]) {
    if (v == anc) return true;
    v = parent[static_cast<std::size_t>(v)];
  }
  return false;
}

TreeDecomposition finalizeDecomposition(TreeId network, VertexId root,
                                        std::vector<VertexId> parent) {
  TreeDecomposition h;
  h.network = network;
  h.root = root;
  h.parent = std::move(parent);
  const std::int32_t n = h.numVertices();
  checkIndex(root, n, "decomposition root");
  checkThat(h.parent[static_cast<std::size_t>(root)] == kNoVertex,
            "root has no parent", __FILE__, __LINE__);

  // Depth by BFS over children lists; verifies single root & acyclicity.
  std::vector<std::vector<VertexId>> children(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    const VertexId p = h.parent[static_cast<std::size_t>(v)];
    if (v == root) continue;
    checkThat(p != kNoVertex, "non-root has a parent", __FILE__, __LINE__);
    checkIndex(p, n, "H parent");
    children[static_cast<std::size_t>(p)].push_back(v);
  }
  h.depth.assign(static_cast<std::size_t>(n), 0);
  std::queue<VertexId> frontier;
  frontier.push(root);
  h.depth[static_cast<std::size_t>(root)] = 1;  // paper convention
  std::int32_t reached = 0;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    ++reached;
    for (const VertexId c : children[static_cast<std::size_t>(v)]) {
      h.depth[static_cast<std::size_t>(c)] =
          h.depth[static_cast<std::size_t>(v)] + 1;
      frontier.push(c);
    }
  }
  checkThat(reached == n, "decomposition is a single rooted tree", __FILE__,
            __LINE__);
  return h;
}

std::vector<std::vector<VertexId>> computePivotSets(
    const TreeNetwork& tree, const TreeDecomposition& h) {
  const std::int32_t n = tree.numVertices();
  checkThat(h.numVertices() == n, "decomposition covers the tree", __FILE__,
            __LINE__);
  std::vector<std::vector<VertexId>> pivots(static_cast<std::size_t>(n));
  // For each T-edge (v, w): w neighbours C(z) exactly when v is in C(z) and
  // w is not, i.e. z lies on v's H-root-path strictly below H-lca(v, w).
  for (EdgeId e = 0; e < tree.numEdges(); ++e) {
    const auto [a, b] = tree.edge(e);
    const VertexId meet = h.lca(a, b);
    for (const auto& [v, w] : {std::pair{a, b}, std::pair{b, a}}) {
      for (VertexId z = v; z != meet;
           z = h.parent[static_cast<std::size_t>(z)]) {
        pivots[static_cast<std::size_t>(z)].push_back(w);
      }
    }
  }
  for (auto& p : pivots) {
    std::sort(p.begin(), p.end());
    p.erase(std::unique(p.begin(), p.end()), p.end());
  }
  return pivots;
}

std::int32_t pivotSize(const TreeNetwork& tree, const TreeDecomposition& h) {
  std::int32_t best = 0;
  for (const auto& p : computePivotSets(tree, h)) {
    best = std::max(best, static_cast<std::int32_t>(p.size()));
  }
  return best;
}

VertexId captureNode(const TreeNetwork& tree, const TreeDecomposition& h,
                     VertexId u, VertexId v) {
  VertexId best = kNoVertex;
  for (const VertexId x : tree.pathVertices(u, v)) {
    if (best == kNoVertex || h.depth[static_cast<std::size_t>(x)] <
                                 h.depth[static_cast<std::size_t>(best)]) {
      best = x;
    }
  }
  return best;
}

std::string checkTreeDecomposition(const TreeNetwork& tree,
                                   const TreeDecomposition& h) {
  const std::int32_t n = tree.numVertices();
  if (h.numVertices() != n) {
    return "vertex count mismatch";
  }

  // Property (ii): every C(z) induces a connected subtree. Equivalent
  // local form: for every non-root z, the H-parent edge direction must be
  // a T-neighbour of the component C(z) — we check the global form
  // directly by BFS inside each C(z).
  for (VertexId z = 0; z < n; ++z) {
    std::vector<bool> inComp(static_cast<std::size_t>(n), false);
    std::int32_t compSize = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (h.isAncestorOrSelf(z, v)) {
        inComp[static_cast<std::size_t>(v)] = true;
        ++compSize;
      }
    }
    // BFS in T restricted to the component.
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::queue<VertexId> frontier;
    frontier.push(z);
    seen[static_cast<std::size_t>(z)] = true;
    std::int32_t reached = 0;
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      ++reached;
      for (const AdjEntry& a : tree.neighbors(v)) {
        if (inComp[static_cast<std::size_t>(a.to)] &&
            !seen[static_cast<std::size_t>(a.to)]) {
          seen[static_cast<std::size_t>(a.to)] = true;
          frontier.push(a.to);
        }
      }
    }
    if (reached != compSize) {
      std::ostringstream os;
      os << "C(" << z << ") is not connected in T";
      return os.str();
    }
  }

  // Property (i): for every vertex pair (x, y), the T-path between them
  // contains H-lca(x, y).
  for (VertexId x = 0; x < n; ++x) {
    for (VertexId y = x + 1; y < n; ++y) {
      const VertexId meet = h.lca(x, y);
      if (!tree.onPath(meet, x, y)) {
        std::ostringstream os;
        os << "T-path " << x << "--" << y << " misses H-lca " << meet;
        return os.str();
      }
    }
  }
  return {};
}

TreeDecomposition rootFixingDecomposition(const TreeNetwork& tree,
                                          VertexId root) {
  const std::int32_t n = tree.numVertices();
  std::vector<VertexId> parent(static_cast<std::size_t>(n), kNoVertex);
  // BFS from the chosen root along T edges.
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::queue<VertexId> frontier;
  frontier.push(root);
  seen[static_cast<std::size_t>(root)] = true;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (const AdjEntry& a : tree.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = true;
        parent[static_cast<std::size_t>(a.to)] = v;
        frontier.push(a.to);
      }
    }
  }
  return finalizeDecomposition(tree.id(), root, std::move(parent));
}

TreeDecomposition buildDecomposition(const TreeNetwork& tree,
                                     DecompositionKind kind) {
  switch (kind) {
    case DecompositionKind::RootFixing:
      return rootFixingDecomposition(tree);
    case DecompositionKind::Balancing:
      return balancingDecomposition(tree);
    case DecompositionKind::Ideal:
      return idealDecomposition(tree);
  }
  throw CheckError("unknown DecompositionKind");
}

std::string decompositionKindName(DecompositionKind kind) {
  switch (kind) {
    case DecompositionKind::RootFixing:
      return "root-fixing";
    case DecompositionKind::Balancing:
      return "balancing";
    case DecompositionKind::Ideal:
      return "ideal";
  }
  return "?";
}

}  // namespace treesched
