// Layered decompositions (paper §4.4 and §7).
//
// A layered decomposition of the instance set D assigns every instance a
// group index (groups are processed first-to-last by the framework's
// epochs) and a set of *critical edges* pi(d) on its path, such that the
// interference property holds: whenever d1 and d2 overlap and d1's group
// is <= d2's group, path(d2) contains a critical edge of d1.
//
//  * Trees (Lemma 4.2/4.3): built from a tree decomposition H. The group
//    of d is determined by the H-depth of its capture node mu(d) (deepest
//    captures first); pi(d) consists of the wings of mu(d) on path(d) plus
//    the wings of the bending points of path(d) with respect to each pivot
//    of C(mu(d)). |pi(d)| <= 2*(theta+1), i.e. Delta = 6 for the ideal
//    decomposition.
//  * Lines (§7): groups by demand-instance length (factor-2 buckets,
//    shortest first); pi(d) = {start, mid, end} slots, Delta = 3. This is
//    the decomposition implicit in Panconesi-Sozio.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/dynamic_universe.hpp"
#include "core/universe.hpp"
#include "decomp/tree_decomposition.hpp"

namespace treesched {

/// Group assignment + critical edges for every instance of a universe.
struct Layering {
  std::int32_t numGroups = 0;
  /// group[i] in [0, numGroups); group 0 is processed first (epoch 1).
  std::vector<std::int32_t> group;
  /// CSR of critical edges per instance (global edge ids, sorted).
  std::vector<std::int32_t> criticalOffset;
  std::vector<GlobalEdgeId> criticalPool;
  /// Measured critical-set size Delta = max |pi(d)|.
  std::int32_t maxCriticalSize = 0;

  std::span<const GlobalEdgeId> critical(InstanceId i) const {
    const auto begin = criticalOffset[static_cast<std::size_t>(i)];
    const auto end = criticalOffset[static_cast<std::size_t>(i) + 1];
    return {criticalPool.data() + begin, static_cast<std::size_t>(end - begin)};
  }
};

/// Tree layering plus the per-network decompositions it was derived from
/// (the distributed runtime re-uses them).
struct TreeLayeringResult {
  Layering layering;
  std::vector<TreeDecomposition> decompositions;
  /// Capture node mu(d) per instance.
  std::vector<VertexId> captureNodes;
};

/// Builds the layered decomposition of a tree universe via per-network
/// tree decompositions of the given kind (Lemma 4.2). With
/// DecompositionKind::Ideal this realizes Lemma 4.3: Delta <= 6 and
/// numGroups <= 2*ceil(lg n)+1.
TreeLayeringResult buildTreeLayering(
    const TreeProblem& problem, const InstanceUniverse& universe,
    DecompositionKind kind = DecompositionKind::Ideal);

/// Builds the §7 length-based layering of a line universe: Delta <= 3 and
/// numGroups <= ceil(lg(Lmax/Lmin)) + 1.
Layering buildLineLayering(const InstanceUniverse& universe);

/// Exhaustive check of the interference property over all overlapping
/// pairs (O(|D|^2 * pathlen); for tests). Empty string when valid.
std::string checkLayering(const InstanceUniverse& universe,
                          const Layering& layering);

/// Incremental tree layering (Lemma 4.2/4.3) for `DynamicUniverse`: the
/// per-network decompositions and pivot sets are built once; layer()
/// then assigns any single instance its group + critical edges from its
/// own path alone — bit-identical to buildTreeLayering's assignment.
/// numGroups (max decomposition depth over all networks) and
/// maxCriticalSize (measured once over the whole pool) are pool
/// constants, so group numbering is stable under churn.
class TreeInstanceLayerer final : public InstanceLayerer {
 public:
  explicit TreeInstanceLayerer(std::shared_ptr<const TreeProblem> problem,
                               DecompositionKind kind =
                                   DecompositionKind::Ideal);

  std::int32_t numGroups() const override { return numGroups_; }
  std::int32_t maxCriticalSize() const override { return maxCriticalSize_; }
  std::int32_t layer(const InstanceRecord& rec,
                     std::vector<GlobalEdgeId>& critical) const override;

  /// The persistent per-network decompositions (the distributed runtime
  /// and tests reuse them).
  const std::vector<TreeDecomposition>& decompositions() const {
    return decompositions_;
  }

 private:
  std::shared_ptr<const TreeProblem> problem_;
  std::vector<TreeDecomposition> decompositions_;
  std::vector<std::vector<std::vector<VertexId>>> pivotSets_;
  std::vector<std::int32_t> localMaxDepth_;  ///< cached per network
  std::vector<GlobalEdgeId> edgeOffset_;
  std::int32_t numGroups_ = 0;
  std::int32_t maxCriticalSize_ = 0;
};

/// Incremental §7 line layering for `DynamicUniverse`: factor-2 length
/// buckets against the pool-wide minimum length (a pool constant, so
/// groups never renumber) and the {start, mid, end} critical slots —
/// bit-identical to buildLineLayering's assignment.
class LineInstanceLayerer final : public InstanceLayerer {
 public:
  explicit LineInstanceLayerer(std::shared_ptr<const LineProblem> problem);

  std::int32_t numGroups() const override { return numGroups_; }
  std::int32_t maxCriticalSize() const override { return maxCriticalSize_; }
  std::int32_t layer(const InstanceRecord& rec,
                     std::vector<GlobalEdgeId>& critical) const override;

 private:
  std::shared_ptr<const LineProblem> problem_;
  std::int32_t numSlots_ = 0;
  std::int32_t minLen_ = 1;  ///< pool-wide minimum instance length
  std::int32_t numGroups_ = 0;
  std::int32_t maxCriticalSize_ = 0;
};

/// Builds a DynamicUniverse over a tree problem with its incremental
/// layerer; stats().buildMs covers the full pool build (decompositions,
/// pivot sets, pool indexes). The shared_ptr overloads avoid copying
/// the problem.
DynamicUniverse makeDynamicTreeUniverse(
    std::shared_ptr<const TreeProblem> problem,
    DecompositionKind kind = DecompositionKind::Ideal);
DynamicUniverse makeDynamicTreeUniverse(
    const TreeProblem& problem,
    DecompositionKind kind = DecompositionKind::Ideal);

/// Line counterpart of makeDynamicTreeUniverse.
DynamicUniverse makeDynamicLineUniverse(
    std::shared_ptr<const LineProblem> problem);
DynamicUniverse makeDynamicLineUniverse(const LineProblem& problem);

}  // namespace treesched
