// Balancing (centroid) tree decomposition — paper §4.2.

#include <utility>
#include <vector>

#include "decomp/centroid_internal.hpp"
#include "decomp/tree_decomposition.hpp"
#include "util/check.hpp"

namespace treesched {

namespace detail {

CentroidContext::CentroidContext(const TreeNetwork& tree)
    : tree_(tree),
      removed_(static_cast<std::size_t>(tree.numVertices()), 0),
      dfsParent_(static_cast<std::size_t>(tree.numVertices()), kNoVertex),
      size_(static_cast<std::size_t>(tree.numVertices()), 0) {
  order_.reserve(static_cast<std::size_t>(tree.numVertices()));
}

std::span<const VertexId> CentroidContext::collectComponent(VertexId rep) {
  checkThat(!removed(rep), "component representative not removed", __FILE__,
            __LINE__);
  order_.clear();
  dfsParent_[static_cast<std::size_t>(rep)] = kNoVertex;
  order_.push_back(rep);
  for (std::size_t head = 0; head < order_.size(); ++head) {
    const VertexId v = order_[head];
    for (const AdjEntry& a : tree_.neighbors(v)) {
      if (!removed(a.to) && a.to != dfsParent_[static_cast<std::size_t>(v)]) {
        dfsParent_[static_cast<std::size_t>(a.to)] = v;
        order_.push_back(a.to);
      }
    }
  }
  return order_;
}

VertexId CentroidContext::findBalancer(std::span<const VertexId> component) {
  const auto total = static_cast<std::int32_t>(component.size());
  checkThat(total >= 1, "non-empty component", __FILE__, __LINE__);
  // Subtree sizes in reverse DFS order (children precede parents).
  for (const VertexId v : component) {
    size_[static_cast<std::size_t>(v)] = 1;
  }
  for (std::size_t i = component.size(); i-- > 1;) {
    const VertexId v = component[i];
    const VertexId p = dfsParent_[static_cast<std::size_t>(v)];
    size_[static_cast<std::size_t>(p)] += size_[static_cast<std::size_t>(v)];
  }
  // The balancer minimizes the largest split part; the minimum is always
  // <= floor(total/2).
  VertexId best = component.front();
  std::int32_t bestWorst = total;  // worst part when removing `best`
  for (const VertexId v : component) {
    std::int32_t worst = total - size_[static_cast<std::size_t>(v)];
    for (const AdjEntry& a : tree_.neighbors(v)) {
      if (!removed(a.to) && dfsParent_[static_cast<std::size_t>(a.to)] == v) {
        worst = std::max(worst, size_[static_cast<std::size_t>(a.to)]);
      }
    }
    if (worst < bestWorst) {
      bestWorst = worst;
      best = v;
    }
  }
  checkThat(bestWorst <= total / 2, "balancer splits into halves", __FILE__,
            __LINE__);
  return best;
}

}  // namespace detail

TreeDecomposition balancingDecomposition(const TreeNetwork& tree) {
  const std::int32_t n = tree.numVertices();
  std::vector<VertexId> parent(static_cast<std::size_t>(n), kNoVertex);
  detail::CentroidContext ctx(tree);

  // Iterative recursion: (representative vertex, H-parent to attach to).
  std::vector<std::pair<VertexId, VertexId>> stack;
  stack.emplace_back(0, kNoVertex);
  VertexId root = kNoVertex;
  while (!stack.empty()) {
    const auto [rep, hParent] = stack.back();
    stack.pop_back();
    const auto component = ctx.collectComponent(rep);
    const VertexId z = ctx.findBalancer(component);
    parent[static_cast<std::size_t>(z)] = hParent;
    if (hParent == kNoVertex) {
      root = z;
    }
    ctx.markRemoved(z);
    for (const AdjEntry& a : tree.neighbors(z)) {
      if (!ctx.removed(a.to)) {
        stack.emplace_back(a.to, z);
      }
    }
  }
  return finalizeDecomposition(tree.id(), root, std::move(parent));
}

}  // namespace treesched
