// Dynamic demand-instance universe (ROADMAP item 2: incremental universe
// & layering for unbounded demand streams).
//
// `InstanceUniverse` materializes the full pool — every instance any
// demand can ever create — up front; fine for one-shot solves, the main
// obstacle to unbounded online streams. `DynamicUniverse` keeps the same
// *id space* (instance ids, global edge ids and group numbers are
// pool-stable, so surviving instances never renumber and every
// hash-keyed decision is reproducible), but materializes records, edge
// paths, the conflict relation and the layering only for demands that
// are currently live:
//
//   * addDemand(d) expands d's instances exactly as the from-scratch
//     builders would (same records, same paths, same ids), assigns each
//     one its group + critical edges through the pluggable
//     `InstanceLayerer` (per-instance-local by Lemma 4.2/4.3 and §7),
//     and splices them into the live conflict adjacency — O(affected)
//     work, independent of pool size.
//   * retireDemand(d) garbage-collects with the same exactness
//     discipline as raise purging: every symmetric reference is removed
//     (checked, not best-effort), the slab is freed, and a later
//     re-arrival rebuilds bit-identical state.
//
// The live view equals the from-scratch build restricted to live
// demands — `tests/dynamic_universe_test.cpp` gates that equivalence on
// every scenario preset, per epoch. Heavy per-instance state (records,
// paths, conflicts, critical edges) tracks live demands; only flat id
// indexes (a few bytes per pool id) stay pool-dense.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"
#include "core/universe.hpp"

namespace treesched {

/// Cumulative cost accounting of one DynamicUniverse. Published by the
/// online solver as `universe.*` metrics; `bench_online` derives its
/// `universe_build_ms` / `mean_extend_us_per_arrival` columns from it.
struct UniverseStats {
  double buildMs = 0;            ///< one-time pool build (layerer + indexes)
  std::int64_t arrivals = 0;     ///< addDemand calls
  std::int64_t extendUs = 0;     ///< cumulative addDemand wall time (µs)
  std::int64_t gcDemands = 0;    ///< retireDemand calls
  std::int64_t gcInstances = 0;  ///< instances garbage-collected
  std::int64_t gcUs = 0;         ///< cumulative retireDemand wall time (µs)
};

/// Per-instance group + critical-edge assignment (the paper's layered
/// decomposition, §4.4 and §7), evaluated one instance at a time.
/// Implementations own the persistent per-network structures (tree
/// decompositions and pivot sets, pool length range) so that layer()
/// depends only on the instance itself — the locality that makes
/// layering maintenance O(arrival). numGroups() and maxCriticalSize()
/// are pool constants, measured over every instance the pool can ever
/// contain: group numbering and the protocol's stage plan never shift
/// as demands come and go.
class InstanceLayerer {
 public:
  virtual ~InstanceLayerer() = default;

  virtual std::int32_t numGroups() const = 0;

  virtual std::int32_t maxCriticalSize() const = 0;

  /// Returns rec's group and fills `critical` (empty on entry) with its
  /// critical edges pi(d), sorted and duplicate-free.
  virtual std::int32_t layer(const InstanceRecord& rec,
                             std::vector<GlobalEdgeId>& critical) const = 0;
};

class DynamicUniverse;

/// Structural view adapting a DynamicUniverse to the `Layering` shape
/// the templated protocol engine consumes (`numGroups`,
/// `maxCriticalSize`, `group[i]`, `critical(i)`) without materializing
/// pool-sized arrays. Obtained from DynamicUniverse::layeringView();
/// valid as long as the universe outlives it.
struct DynamicLayeringView {
  /// Indexing proxy so `view.group[i]` reads like `Layering::group[i]`.
  struct GroupIndex {
    const DynamicUniverse* universe = nullptr;
    std::int32_t operator[](std::size_t i) const;
  };

  std::int32_t numGroups = 0;
  std::int32_t maxCriticalSize = 0;
  GroupIndex group;

  std::span<const GlobalEdgeId> critical(InstanceId i) const;
};

/// The incrementally-maintained universe. Pool-level constants (id
/// space, global edge index, profit range, layering constants) are
/// fixed at construction from the problem; per-demand state exists only
/// between addDemand(d) and retireDemand(d). Query methods follow
/// `InstanceUniverse` exactly — templated framework/protocol code runs
/// on either — with live-restricted semantics: instance(i)/path(i)
/// require i live, instancesOfDemand(d) is empty for non-live d, and
/// instancesOnEdge/conflictsOf enumerate live instances only.
class DynamicUniverse {
 public:
  using Kind = InstanceUniverse::Kind;

  DynamicUniverse(std::shared_ptr<const TreeProblem> problem,
                  std::unique_ptr<InstanceLayerer> layerer);
  DynamicUniverse(std::shared_ptr<const LineProblem> problem,
                  std::unique_ptr<InstanceLayerer> layerer);

  // ---- Pool-level constants (match the from-scratch universe) ----

  Kind kind() const { return kind_; }
  /// Pool id-space size — NOT the live count. Dense per-instance arrays
  /// (dual lhs, MIS status) and WarmStart::priorLhs are sized by this.
  std::int32_t numInstances() const { return numInstances_; }
  std::int32_t numDemands() const { return numDemands_; }
  std::int32_t numNetworks() const { return numNetworks_; }
  std::int32_t numGlobalEdges() const { return numGlobalEdges_; }
  GlobalEdgeId globalEdge(TreeId network, EdgeId e) const;
  double profitMax() const { return profitMax_; }
  double profitMin() const { return profitMin_; }
  std::int32_t lineSlots() const;

  /// Accessibility lists of the underlying problem (TreeIds or
  /// ResourceIds — both are the network axis of the universe).
  const std::vector<std::vector<std::int32_t>>& access() const;

  const TreeProblem& treeProblem() const;
  const LineProblem& lineProblem() const;

  /// Pool instance count of demand d (live or not): how many instances
  /// addDemand(d) materializes.
  std::int32_t poolInstanceCount(DemandId d) const;

  // ---- Live mutation ----

  /// Materializes demand d's instances, layers them and splices them
  /// into the live conflict relation. O(affected): proportional to the
  /// demand's own paths plus the live instances they touch, independent
  /// of pool size. d must not be live.
  void addDemand(DemandId d);

  /// Garbage-collects demand d: every symmetric conflict/edge reference
  /// is removed (checked) and the slab is freed. d must be live.
  void retireDemand(DemandId d);

  bool isLive(DemandId d) const;
  std::int32_t numLiveDemands() const { return numLiveDemands_; }
  std::int32_t numLiveInstances() const { return numLiveInstances_; }

  // ---- Live queries (InstanceUniverse-shaped) ----

  /// Record of live instance i (throws when i's demand is not live).
  const InstanceRecord& instance(InstanceId i) const;

  std::span<const GlobalEdgeId> path(InstanceId i) const;

  /// Live instances of demand d, ascending; empty when d is not live.
  /// A live demand always exposes its full pool id range.
  std::span<const InstanceId> instancesOfDemand(DemandId d) const;

  /// Live instances whose path contains edge e, ascending.
  std::span<const InstanceId> instancesOnEdge(GlobalEdgeId e) const;

  bool overlapping(InstanceId a, InstanceId b) const;
  bool conflicting(InstanceId a, InstanceId b) const;

  /// The conflict relation is maintained incrementally — always built.
  bool conflictsBuilt() const { return true; }

  /// Live conflict neighbours of live instance i, ascending: exactly
  /// the from-scratch conflict adjacency intersected with live ids.
  std::span<const InstanceId> conflictsOf(InstanceId i) const;

  // ---- Layering ----

  std::int32_t groupOf(InstanceId i) const;
  std::span<const GlobalEdgeId> critical(InstanceId i) const;
  std::int32_t numGroups() const { return layerer_->numGroups(); }
  std::int32_t maxCriticalSize() const { return layerer_->maxCriticalSize(); }
  DynamicLayeringView layeringView() const;

  // ---- Cost accounting ----

  const UniverseStats& stats() const { return stats_; }
  /// Factories record the full pool-build time (decompositions +
  /// universe indexes) here once, right after construction.
  void setBuildMs(double ms) { stats_.buildMs = ms; }

 private:
  /// Everything materialized for one live demand. Freed whole on
  /// retireDemand — steady-state memory tracks live demands.
  struct DemandSlab {
    std::vector<InstanceRecord> records;      ///< pool ids, pool order
    std::vector<GlobalEdgeId> pathPool;       ///< records index into this
    std::vector<std::int32_t> group;          ///< per local instance
    std::vector<std::int32_t> criticalOffset;  ///< local CSR
    std::vector<GlobalEdgeId> criticalPool;
    /// Live conflict neighbours per local instance, sorted ascending.
    std::vector<std::vector<InstanceId>> conflicts;
  };

  void buildPoolIndexes();
  void expandTree(DemandId d, DemandSlab& slab) const;
  void expandLine(DemandId d, DemandSlab& slab) const;
  const DemandSlab& slabOf(InstanceId i, DemandId& demand,
                           std::int32_t& local) const;
  std::vector<InstanceId>& conflictListOf(InstanceId i);

  Kind kind_ = Kind::Tree;
  std::shared_ptr<const TreeProblem> tree_;
  std::shared_ptr<const LineProblem> line_;
  std::unique_ptr<InstanceLayerer> layerer_;

  std::int32_t numDemands_ = 0;
  std::int32_t numNetworks_ = 0;
  std::int32_t numGlobalEdges_ = 0;
  std::int32_t numInstances_ = 0;
  std::int32_t lineSlots_ = 0;
  double profitMax_ = 1.0;
  double profitMin_ = 1.0;
  std::vector<std::int32_t> edgeOffset_;  ///< per network, into global edges

  // Pool-dense id indexes (4 bytes per pool id each): the stable-id
  // lookup tables. Everything heavier lives in per-demand slabs.
  std::vector<std::int32_t> instanceOffset_;  ///< demand -> pool id range
  std::vector<InstanceId> idPool_;            ///< iota; demand spans of it
  std::vector<DemandId> demandOf_;            ///< instance -> demand

  std::vector<std::unique_ptr<DemandSlab>> slabs_;  ///< null = not live
  /// Live instances per global edge, sorted ascending.
  std::vector<std::vector<InstanceId>> edgeLive_;

  std::int32_t numLiveDemands_ = 0;
  std::int32_t numLiveInstances_ = 0;
  UniverseStats stats_;
};

inline std::int32_t DynamicLayeringView::GroupIndex::operator[](
    std::size_t i) const {
  return universe->groupOf(static_cast<InstanceId>(i));
}

inline std::span<const GlobalEdgeId> DynamicLayeringView::critical(
    InstanceId i) const {
  return group.universe->critical(i);
}

inline DynamicLayeringView DynamicUniverse::layeringView() const {
  DynamicLayeringView view;
  view.numGroups = numGroups();
  view.maxCriticalSize = maxCriticalSize();
  view.group.universe = this;
  return view;
}

}  // namespace treesched
