// Demand types (paper §1, §2, §7).
//
// A demand is owned by exactly one processor; the paper identifies
// processors with their demands (one demand per processor, §2), so the
// library indexes processors by DemandId throughout.
#pragma once

#include <cstdint>

#include "graph/tree_network.hpp"

namespace treesched {

using DemandId = std::int32_t;    ///< Demand == processor index in [0, m).
using InstanceId = std::int32_t;  ///< Demand-instance index in [0, |D|).

/// Global edge index across all tree-networks / resources. Edge e of tree
/// T maps to edgeOffset[T] + e; dual variables beta are vectors over this
/// index space.
using GlobalEdgeId = std::int32_t;

inline constexpr InstanceId kNoInstance = -1;

/// A point-to-point demand on tree-networks (§2): endpoints, profit and —
/// in the arbitrary-height case (§6) — a bandwidth requirement h in (0, 1].
/// The unit-height case (§2-§5) is h == 1.
struct Demand {
  DemandId id = 0;
  VertexId u = 0;
  VertexId v = 0;
  double profit = 1.0;
  double height = 1.0;
};

/// A windowed demand on line-networks (§1 "Line-Networks", §7): may be
/// executed on any segment of `processing` consecutive timeslots inside
/// [release, deadline] (slot indices are 0-based and inclusive).
struct WindowDemand {
  DemandId id = 0;
  std::int32_t release = 0;     ///< First admissible timeslot.
  std::int32_t deadline = 0;    ///< Last admissible timeslot (inclusive).
  std::int32_t processing = 1;  ///< Number of consecutive slots required.
  double profit = 1.0;
  double height = 1.0;
};

/// Narrow/wide classification of §6: narrow means h <= 1/2. Two wide
/// instances can never share an edge, which is why the unit-height
/// algorithm applies to them unchanged.
inline bool isNarrow(double height) { return height <= 0.5; }

}  // namespace treesched
