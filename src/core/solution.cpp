#include "core/solution.hpp"

#include <algorithm>
#include <sstream>

#include "core/tolerances.hpp"
#include "util/check.hpp"

namespace treesched {

double solutionProfit(const InstanceUniverse& universe, const Solution& sol) {
  double total = 0;
  for (const InstanceId i : sol.instances) {
    total += universe.instance(i).profit;
  }
  return total;
}

ValidationReport validateSolution(const InstanceUniverse& universe,
                                  const Solution& sol) {
  ValidationReport report;
  std::vector<bool> demandUsed(static_cast<std::size_t>(universe.numDemands()),
                               false);
  std::vector<double> edgeLoad(
      static_cast<std::size_t>(universe.numGlobalEdges()), 0.0);
  for (const InstanceId i : sol.instances) {
    const InstanceRecord& rec = universe.instance(i);
    if (demandUsed[static_cast<std::size_t>(rec.demand)]) {
      report.feasible = false;
      std::ostringstream os;
      os << "demand " << rec.demand << " selected more than once";
      report.firstViolation = os.str();
      return report;
    }
    demandUsed[static_cast<std::size_t>(rec.demand)] = true;
    for (const GlobalEdgeId e : universe.path(i)) {
      edgeLoad[static_cast<std::size_t>(e)] += rec.height;
      if (edgeLoad[static_cast<std::size_t>(e)] > 1.0 + kCapacityTolerance) {
        report.feasible = false;
        std::ostringstream os;
        os << "edge " << e << " over capacity ("
           << edgeLoad[static_cast<std::size_t>(e)] << " > 1)";
        report.firstViolation = os.str();
        return report;
      }
    }
  }
  return report;
}

void requireFeasible(const InstanceUniverse& universe, const Solution& sol) {
  const ValidationReport report = validateSolution(universe, sol);
  checkThat(report.feasible, "solution feasible: " + report.firstViolation,
            __FILE__, __LINE__);
}

std::vector<double> profitByNetwork(const InstanceUniverse& universe,
                                    const Solution& sol) {
  std::vector<double> result(static_cast<std::size_t>(universe.numNetworks()),
                             0.0);
  for (const InstanceId i : sol.instances) {
    const InstanceRecord& rec = universe.instance(i);
    result[static_cast<std::size_t>(rec.network)] += rec.profit;
  }
  return result;
}

FeasibilityOracle::FeasibilityOracle(const InstanceUniverse& universe)
    : universe_(universe),
      edgeLoad_(static_cast<std::size_t>(universe.numGlobalEdges()), 0.0),
      demandUsed_(static_cast<std::size_t>(universe.numDemands()), false) {}

bool FeasibilityOracle::canAdd(InstanceId i) const {
  const InstanceRecord& rec = universe_.instance(i);
  if (demandUsed_[static_cast<std::size_t>(rec.demand)]) return false;
  for (const GlobalEdgeId e : universe_.path(i)) {
    if (edgeLoad_[static_cast<std::size_t>(e)] + rec.height >
        1.0 + kCapacityTolerance) {
      return false;
    }
  }
  return true;
}

void FeasibilityOracle::add(InstanceId i) {
  checkThat(canAdd(i), "FeasibilityOracle::add requires canAdd", __FILE__,
            __LINE__);
  const InstanceRecord& rec = universe_.instance(i);
  demandUsed_[static_cast<std::size_t>(rec.demand)] = true;
  for (const GlobalEdgeId e : universe_.path(i)) {
    edgeLoad_[static_cast<std::size_t>(e)] += rec.height;
  }
  solution_.instances.push_back(i);
  profit_ += rec.profit;
}

void FeasibilityOracle::remove(InstanceId i) {
  auto it =
      std::find(solution_.instances.begin(), solution_.instances.end(), i);
  checkThat(it != solution_.instances.end(),
            "FeasibilityOracle::remove of member", __FILE__, __LINE__);
  solution_.instances.erase(it);
  const InstanceRecord& rec = universe_.instance(i);
  demandUsed_[static_cast<std::size_t>(rec.demand)] = false;
  for (const GlobalEdgeId e : universe_.path(i)) {
    edgeLoad_[static_cast<std::size_t>(e)] -= rec.height;
  }
  profit_ -= rec.profit;
}

}  // namespace treesched
