// Shared numeric tolerances.
//
// The centralized engine and the distributed protocol must make *identical*
// floating-point decisions to be bit-equivalent (experiment E11), so the
// constants live here rather than in per-module anonymous namespaces.
#pragma once

namespace treesched {

/// Relative slack when testing "lhs >= target * p". A raise makes a
/// constraint exactly tight up to rounding and targets are < 1, so this
/// cannot flip a legitimately unsatisfied instance.
inline constexpr double kSatisfyTolerance = 1e-9;

/// Absolute slack when testing edge capacity "load + h <= 1". Heights are
/// user doubles; sums that mathematically equal 1 must not be rejected.
inline constexpr double kCapacityTolerance = 1e-9;

}  // namespace treesched
