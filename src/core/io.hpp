// Plain-text (de)serialization of problem instances.
//
// A stable, versioned, human-diffable format so workloads can be saved,
// shared and replayed — "treesched-tree v1" / "treesched-line v1". Parsing
// validates the reconstructed problem, so a loaded instance is always
// well-formed or an exception.
//
// Tree format:
//   treesched-tree v1
//   vertices <n>
//   networks <r>
//   network            # r times, n-1 edges each
//   <u> <v>
//   ...
//   demands <m>
//   <u> <v> <profit> <height> <k> <t_1> ... <t_k>    # m times
//
// Line format:
//   treesched-line v1
//   slots <n>
//   resources <r>
//   demands <m>
//   <release> <deadline> <processing> <profit> <height> <k> <r_1> ... <r_k>
#pragma once

#include <iosfwd>
#include <string>

#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"

namespace treesched {

void writeTreeProblem(std::ostream& os, const TreeProblem& problem);
TreeProblem readTreeProblem(std::istream& is);

void writeLineProblem(std::ostream& os, const LineProblem& problem);
LineProblem readLineProblem(std::istream& is);

/// String convenience wrappers.
std::string serializeTreeProblem(const TreeProblem& problem);
TreeProblem parseTreeProblem(const std::string& text);
std::string serializeLineProblem(const LineProblem& problem);
LineProblem parseLineProblem(const std::string& text);

/// File convenience wrappers; throw CheckError on I/O failure.
void saveTreeProblem(const std::string& path, const TreeProblem& problem);
TreeProblem loadTreeProblem(const std::string& path);
void saveLineProblem(const std::string& path, const LineProblem& problem);
LineProblem loadLineProblem(const std::string& path);

}  // namespace treesched
