// Feasible solutions and their validation (paper §2).
//
// A solution is a set of demand instances. Feasibility requires:
//  (i)  at most one instance per demand;
//  (ii) per network edge, the selected instances through it have total
//       height <= 1 (unit-height case: edge-disjoint paths).
// Accessibility is enforced structurally: instances only exist for
// accessible networks (see InstanceUniverse builders). Everything here
// is templated on the universe type so the same validation and oracle
// serve the static pool and the dynamic (live-restricted) universe.
#pragma once

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/tolerances.hpp"
#include "core/universe.hpp"
#include "util/check.hpp"

namespace treesched {

/// A (candidate) solution over a universe: instance ids, unordered.
struct Solution {
  std::vector<InstanceId> instances;

  std::int32_t size() const {
    return static_cast<std::int32_t>(instances.size());
  }
};

/// Result of validating a solution.
struct ValidationReport {
  bool feasible = true;
  std::string firstViolation;  ///< Empty when feasible.
};

/// Sum of instance profits.
template <class U>
double solutionProfit(const U& universe, const Solution& sol) {
  double total = 0;
  for (const InstanceId i : sol.instances) {
    total += universe.instance(i).profit;
  }
  return total;
}

/// Checks feasibility; reports the first violation found.
template <class U>
ValidationReport validateSolution(const U& universe, const Solution& sol) {
  ValidationReport report;
  std::vector<bool> demandUsed(static_cast<std::size_t>(universe.numDemands()),
                               false);
  std::vector<double> edgeLoad(
      static_cast<std::size_t>(universe.numGlobalEdges()), 0.0);
  for (const InstanceId i : sol.instances) {
    const InstanceRecord& rec = universe.instance(i);
    if (demandUsed[static_cast<std::size_t>(rec.demand)]) {
      report.feasible = false;
      std::ostringstream os;
      os << "demand " << rec.demand << " selected more than once";
      report.firstViolation = os.str();
      return report;
    }
    demandUsed[static_cast<std::size_t>(rec.demand)] = true;
    for (const GlobalEdgeId e : universe.path(i)) {
      edgeLoad[static_cast<std::size_t>(e)] += rec.height;
      if (edgeLoad[static_cast<std::size_t>(e)] > 1.0 + kCapacityTolerance) {
        report.feasible = false;
        std::ostringstream os;
        os << "edge " << e << " over capacity ("
           << edgeLoad[static_cast<std::size_t>(e)] << " > 1)";
        report.firstViolation = os.str();
        return report;
      }
    }
  }
  return report;
}

/// Throws CheckError when infeasible — used by algorithm postconditions.
template <class U>
void requireFeasible(const U& universe, const Solution& sol) {
  const ValidationReport report = validateSolution(universe, sol);
  checkThat(report.feasible, "solution feasible: " + report.firstViolation,
            __FILE__, __LINE__);
}

/// Per-network profit split (used by the §6 wide/narrow combine step).
template <class U>
std::vector<double> profitByNetwork(const U& universe, const Solution& sol) {
  std::vector<double> result(static_cast<std::size_t>(universe.numNetworks()),
                             0.0);
  for (const InstanceId i : sol.instances) {
    const InstanceRecord& rec = universe.instance(i);
    result[static_cast<std::size_t>(rec.network)] += rec.profit;
  }
  return result;
}

/// Incremental feasibility oracle used by phase 2 of the framework and by
/// exact solvers: maintains per-edge residual capacity and per-demand use.
template <class U>
class BasicFeasibilityOracle {
 public:
  explicit BasicFeasibilityOracle(const U& universe)
      : universe_(universe),
        edgeLoad_(static_cast<std::size_t>(universe.numGlobalEdges()), 0.0),
        demandUsed_(static_cast<std::size_t>(universe.numDemands()), false) {}

  /// True iff `i` can be added without violating feasibility.
  bool canAdd(InstanceId i) const {
    const InstanceRecord& rec = universe_.instance(i);
    if (demandUsed_[static_cast<std::size_t>(rec.demand)]) return false;
    for (const GlobalEdgeId e : universe_.path(i)) {
      if (edgeLoad_[static_cast<std::size_t>(e)] + rec.height >
          1.0 + kCapacityTolerance) {
        return false;
      }
    }
    return true;
  }

  /// Adds `i`; requires canAdd(i).
  void add(InstanceId i) {
    checkThat(canAdd(i), "FeasibilityOracle::add requires canAdd", __FILE__,
              __LINE__);
    const InstanceRecord& rec = universe_.instance(i);
    demandUsed_[static_cast<std::size_t>(rec.demand)] = true;
    for (const GlobalEdgeId e : universe_.path(i)) {
      edgeLoad_[static_cast<std::size_t>(e)] += rec.height;
    }
    solution_.instances.push_back(i);
    profit_ += rec.profit;
  }

  /// Removes a previously added instance.
  void remove(InstanceId i) {
    auto it =
        std::find(solution_.instances.begin(), solution_.instances.end(), i);
    checkThat(it != solution_.instances.end(),
              "FeasibilityOracle::remove of member", __FILE__, __LINE__);
    solution_.instances.erase(it);
    const InstanceRecord& rec = universe_.instance(i);
    demandUsed_[static_cast<std::size_t>(rec.demand)] = false;
    for (const GlobalEdgeId e : universe_.path(i)) {
      edgeLoad_[static_cast<std::size_t>(e)] -= rec.height;
    }
    profit_ -= rec.profit;
  }

  const Solution& solution() const { return solution_; }
  double profit() const { return profit_; }

 private:
  const U& universe_;
  std::vector<double> edgeLoad_;  ///< per global edge
  std::vector<bool> demandUsed_;  ///< per demand
  Solution solution_;
  double profit_ = 0;
};

using FeasibilityOracle = BasicFeasibilityOracle<InstanceUniverse>;

}  // namespace treesched
