// Feasible solutions and their validation (paper §2).
//
// A solution is a set of demand instances. Feasibility requires:
//  (i)  at most one instance per demand;
//  (ii) per network edge, the selected instances through it have total
//       height <= 1 (unit-height case: edge-disjoint paths).
// Accessibility is enforced structurally: instances only exist for
// accessible networks (see InstanceUniverse builders).
#pragma once

#include <string>
#include <vector>

#include "core/universe.hpp"

namespace treesched {

/// A (candidate) solution over a universe: instance ids, unordered.
struct Solution {
  std::vector<InstanceId> instances;

  std::int32_t size() const {
    return static_cast<std::int32_t>(instances.size());
  }
};

/// Result of validating a solution.
struct ValidationReport {
  bool feasible = true;
  std::string firstViolation;  ///< Empty when feasible.
};

/// Sum of instance profits.
double solutionProfit(const InstanceUniverse& universe, const Solution& sol);

/// Checks feasibility; reports the first violation found.
ValidationReport validateSolution(const InstanceUniverse& universe,
                                  const Solution& sol);

/// Throws CheckError when infeasible — used by algorithm postconditions.
void requireFeasible(const InstanceUniverse& universe, const Solution& sol);

/// Per-network profit split (used by the §6 wide/narrow combine step).
std::vector<double> profitByNetwork(const InstanceUniverse& universe,
                                    const Solution& sol);

/// Incremental feasibility oracle used by phase 2 of the framework and by
/// exact solvers: maintains per-edge residual capacity and per-demand use.
class FeasibilityOracle {
 public:
  explicit FeasibilityOracle(const InstanceUniverse& universe);

  /// True iff `i` can be added without violating feasibility.
  bool canAdd(InstanceId i) const;

  /// Adds `i`; requires canAdd(i).
  void add(InstanceId i);

  /// Removes a previously added instance.
  void remove(InstanceId i);

  const Solution& solution() const { return solution_; }
  double profit() const { return profit_; }

 private:
  const InstanceUniverse& universe_;
  std::vector<double> edgeLoad_;    ///< per global edge
  std::vector<bool> demandUsed_;    ///< per demand
  Solution solution_;
  double profit_ = 0;
};

}  // namespace treesched
