// Demand-instance universe (paper §2 reformulation).
//
// For each demand a and each network T in Acc(owner(a)) the paper creates a
// *demand instance* — a copy of the demand pinned to T (for line networks
// with windows, additionally pinned to one execution segment, §7). This
// class materializes the full instance set D with:
//   * a global edge index space across all networks (dual variables beta
//     live on it);
//   * per-instance edge paths;
//   * the conflict relation (same demand, or same network + shared edge);
// The primal-dual framework and the distributed simulator operate purely on
// this structure; tree-vs-line differences are confined to the builders.
#pragma once

#include <span>
#include <vector>

#include "core/demand.hpp"
#include "core/line_problem.hpp"
#include "core/tree_problem.hpp"

namespace treesched {

/// One demand instance: the demand's data plus the network it is pinned to
/// and its edge path on that network.
struct InstanceRecord {
  InstanceId id = kNoInstance;
  DemandId demand = 0;
  TreeId network = 0;  ///< TreeId or ResourceId depending on universe kind.
  /// Endpoints. Tree universes: the demand's vertices. Line universes:
  /// u = first slot, v = last slot of the execution segment.
  VertexId u = 0;
  VertexId v = 0;
  double profit = 1.0;
  double height = 1.0;
  std::int32_t pathBegin = 0;  ///< [pathBegin, pathEnd) into the path pool.
  std::int32_t pathEnd = 0;

  std::int32_t pathLength() const { return pathEnd - pathBegin; }
};

class InstanceUniverse {
 public:
  enum class Kind { Tree, Line };

  /// Enumerates instances of a tree problem: one per (demand, accessible
  /// network). `problem.validate()` is called first.
  static InstanceUniverse fromTreeProblem(const TreeProblem& problem);

  /// Enumerates instances of a line problem: one per (demand, accessible
  /// resource, admissible start slot). `problem.validate()` is called first.
  static InstanceUniverse fromLineProblem(const LineProblem& problem);

  Kind kind() const { return kind_; }
  std::int32_t numInstances() const {
    return static_cast<std::int32_t>(instances_.size());
  }
  std::int32_t numDemands() const { return numDemands_; }
  std::int32_t numNetworks() const { return numNetworks_; }
  std::int32_t numGlobalEdges() const { return numGlobalEdges_; }

  const InstanceRecord& instance(InstanceId i) const;

  /// Edge path of instance `i` as global edge ids, in path order.
  std::span<const GlobalEdgeId> path(InstanceId i) const;

  /// All instances of one demand (ascending instance id).
  std::span<const InstanceId> instancesOfDemand(DemandId d) const;

  /// Maps (network, local edge) to the global edge index.
  GlobalEdgeId globalEdge(TreeId network, EdgeId e) const;

  /// All instances whose path contains global edge `e` (ascending id).
  std::span<const InstanceId> instancesOnEdge(GlobalEdgeId e) const;

  /// True iff a and b are on the same network and share an edge (§2
  /// "overlapping").
  bool overlapping(InstanceId a, InstanceId b) const;

  /// True iff a and b overlap or belong to the same demand (§2
  /// "conflicting"); a pair is schedulable together iff NOT conflicting.
  bool conflicting(InstanceId a, InstanceId b) const;

  /// Builds the conflict adjacency (idempotent). Cost is
  /// sum over edges e of |instancesOnEdge(e)|^2; fine at simulation scale.
  void buildConflicts();
  bool conflictsBuilt() const { return conflictsBuilt_; }

  /// Conflict neighbours of `i` (excluding `i`), ascending. Requires
  /// buildConflicts() to have run.
  std::span<const InstanceId> conflictsOf(InstanceId i) const;

  /// Max conflict degree (requires buildConflicts()).
  std::int32_t maxConflictDegree() const;

  double profitMax() const { return profitMax_; }
  double profitMin() const { return profitMin_; }

  /// Line universes only: number of timeslots.
  std::int32_t lineSlots() const;

 private:
  InstanceUniverse() = default;

  void finalize();  // builds demand and edge indexes + profit range

  Kind kind_ = Kind::Tree;
  std::int32_t numDemands_ = 0;
  std::int32_t numNetworks_ = 0;
  std::int32_t numGlobalEdges_ = 0;
  std::int32_t lineSlots_ = 0;
  std::vector<std::int32_t> edgeOffset_;  ///< per network, into global edges
  std::vector<InstanceRecord> instances_;
  std::vector<GlobalEdgeId> pathPool_;

  // CSR: instances grouped by demand.
  std::vector<std::int32_t> demandOffset_;
  std::vector<InstanceId> demandInstances_;

  // CSR: instances grouped by global edge.
  std::vector<std::int32_t> edgeInstOffset_;
  std::vector<InstanceId> edgeInstances_;

  // CSR conflict adjacency.
  bool conflictsBuilt_ = false;
  std::vector<std::int64_t> conflictOffset_;
  std::vector<InstanceId> conflictAdj_;

  double profitMax_ = 1.0;
  double profitMin_ = 1.0;
};

}  // namespace treesched
