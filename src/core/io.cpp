#include "core/io.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace treesched {

namespace {

void expectToken(std::istream& is, const std::string& expected) {
  std::string token;
  is >> token;
  checkThat(static_cast<bool>(is) && token == expected,
            "expected token '" + expected + "', got '" + token + "'", __FILE__,
            __LINE__);
}

template <typename T>
T readValue(std::istream& is, const char* what) {
  T value{};
  is >> value;
  checkThat(static_cast<bool>(is), std::string("failed reading ") + what,
            __FILE__, __LINE__);
  return value;
}

}  // namespace

void writeTreeProblem(std::ostream& os, const TreeProblem& problem) {
  problem.validate();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "treesched-tree v1\n";
  os << "vertices " << problem.numVertices << "\n";
  os << "networks " << problem.numNetworks() << "\n";
  for (const TreeNetwork& t : problem.networks) {
    os << "network\n";
    for (EdgeId e = 0; e < t.numEdges(); ++e) {
      const auto [u, v] = t.edge(e);
      os << u << ' ' << v << "\n";
    }
  }
  os << "demands " << problem.numDemands() << "\n";
  for (DemandId d = 0; d < problem.numDemands(); ++d) {
    const Demand& dem = problem.demands[static_cast<std::size_t>(d)];
    const auto& acc = problem.access[static_cast<std::size_t>(d)];
    os << dem.u << ' ' << dem.v << ' ' << dem.profit << ' ' << dem.height
       << ' ' << acc.size();
    for (const TreeId t : acc) {
      os << ' ' << t;
    }
    os << "\n";
  }
}

TreeProblem readTreeProblem(std::istream& is) {
  expectToken(is, "treesched-tree");
  expectToken(is, "v1");
  TreeProblem problem;
  expectToken(is, "vertices");
  problem.numVertices = readValue<std::int32_t>(is, "vertex count");
  expectToken(is, "networks");
  const auto r = readValue<std::int32_t>(is, "network count");
  for (TreeId t = 0; t < r; ++t) {
    expectToken(is, "network");
    std::vector<std::pair<VertexId, VertexId>> edges;
    edges.reserve(static_cast<std::size_t>(problem.numVertices - 1));
    for (std::int32_t e = 0; e < problem.numVertices - 1; ++e) {
      const auto u = readValue<VertexId>(is, "edge endpoint");
      const auto v = readValue<VertexId>(is, "edge endpoint");
      edges.emplace_back(u, v);
    }
    problem.networks.emplace_back(t, problem.numVertices, std::move(edges));
  }
  expectToken(is, "demands");
  const auto m = readValue<std::int32_t>(is, "demand count");
  for (DemandId d = 0; d < m; ++d) {
    Demand dem;
    dem.id = d;
    dem.u = readValue<VertexId>(is, "demand endpoint");
    dem.v = readValue<VertexId>(is, "demand endpoint");
    dem.profit = readValue<double>(is, "demand profit");
    dem.height = readValue<double>(is, "demand height");
    const auto k = readValue<std::int32_t>(is, "access count");
    std::vector<TreeId> acc;
    acc.reserve(static_cast<std::size_t>(k));
    for (std::int32_t i = 0; i < k; ++i) {
      acc.push_back(readValue<TreeId>(is, "access entry"));
    }
    problem.demands.push_back(dem);
    problem.access.push_back(std::move(acc));
  }
  problem.validate();
  return problem;
}

void writeLineProblem(std::ostream& os, const LineProblem& problem) {
  problem.validate();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "treesched-line v1\n";
  os << "slots " << problem.numSlots << "\n";
  os << "resources " << problem.numResources << "\n";
  os << "demands " << problem.numDemands() << "\n";
  for (DemandId d = 0; d < problem.numDemands(); ++d) {
    const WindowDemand& dem = problem.demands[static_cast<std::size_t>(d)];
    const auto& acc = problem.access[static_cast<std::size_t>(d)];
    os << dem.release << ' ' << dem.deadline << ' ' << dem.processing << ' '
       << dem.profit << ' ' << dem.height << ' ' << acc.size();
    for (const ResourceId resource : acc) {
      os << ' ' << resource;
    }
    os << "\n";
  }
}

LineProblem readLineProblem(std::istream& is) {
  expectToken(is, "treesched-line");
  expectToken(is, "v1");
  LineProblem problem;
  expectToken(is, "slots");
  problem.numSlots = readValue<std::int32_t>(is, "slot count");
  expectToken(is, "resources");
  problem.numResources = readValue<std::int32_t>(is, "resource count");
  expectToken(is, "demands");
  const auto m = readValue<std::int32_t>(is, "demand count");
  for (DemandId d = 0; d < m; ++d) {
    WindowDemand dem;
    dem.id = d;
    dem.release = readValue<std::int32_t>(is, "release");
    dem.deadline = readValue<std::int32_t>(is, "deadline");
    dem.processing = readValue<std::int32_t>(is, "processing");
    dem.profit = readValue<double>(is, "profit");
    dem.height = readValue<double>(is, "height");
    const auto k = readValue<std::int32_t>(is, "access count");
    std::vector<ResourceId> acc;
    acc.reserve(static_cast<std::size_t>(k));
    for (std::int32_t i = 0; i < k; ++i) {
      acc.push_back(readValue<ResourceId>(is, "access entry"));
    }
    problem.demands.push_back(dem);
    problem.access.push_back(std::move(acc));
  }
  problem.validate();
  return problem;
}

std::string serializeTreeProblem(const TreeProblem& problem) {
  std::ostringstream os;
  writeTreeProblem(os, problem);
  return os.str();
}

TreeProblem parseTreeProblem(const std::string& text) {
  std::istringstream is(text);
  return readTreeProblem(is);
}

std::string serializeLineProblem(const LineProblem& problem) {
  std::ostringstream os;
  writeLineProblem(os, problem);
  return os.str();
}

LineProblem parseLineProblem(const std::string& text) {
  std::istringstream is(text);
  return readLineProblem(is);
}

void saveTreeProblem(const std::string& path, const TreeProblem& problem) {
  std::ofstream os(path);
  checkThat(os.good(), "open for write: " + path, __FILE__, __LINE__);
  writeTreeProblem(os, problem);
  checkThat(os.good(), "write: " + path, __FILE__, __LINE__);
}

TreeProblem loadTreeProblem(const std::string& path) {
  std::ifstream is(path);
  checkThat(is.good(), "open for read: " + path, __FILE__, __LINE__);
  return readTreeProblem(is);
}

void saveLineProblem(const std::string& path, const LineProblem& problem) {
  std::ofstream os(path);
  checkThat(os.good(), "open for write: " + path, __FILE__, __LINE__);
  writeLineProblem(os, problem);
  checkThat(os.good(), "write: " + path, __FILE__, __LINE__);
}

LineProblem loadLineProblem(const std::string& path) {
  std::ifstream is(path);
  checkThat(is.good(), "open for read: " + path, __FILE__, __LINE__);
  return readLineProblem(is);
}

}  // namespace treesched
