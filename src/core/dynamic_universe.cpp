#include "core/dynamic_universe.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"

namespace treesched {

namespace {

std::int64_t microsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Inserts `x` into sorted `v`, checking it was absent: every live-index
/// mutation is exact, never best-effort.
void insertSorted(std::vector<InstanceId>& v, InstanceId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  checkThat(it == v.end() || *it != x, "live id not already indexed", __FILE__,
            __LINE__);
  v.insert(it, x);
}

/// Removes `x` from sorted `v`, checking it was present.
void eraseSorted(std::vector<InstanceId>& v, InstanceId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  checkThat(it != v.end() && *it == x, "live id present for removal", __FILE__,
            __LINE__);
  v.erase(it);
}

}  // namespace

DynamicUniverse::DynamicUniverse(std::shared_ptr<const TreeProblem> problem,
                                 std::unique_ptr<InstanceLayerer> layerer)
    : kind_(Kind::Tree),
      tree_(std::move(problem)),
      layerer_(std::move(layerer)) {
  const auto start = std::chrono::steady_clock::now();
  checkThat(tree_ != nullptr, "tree problem provided", __FILE__, __LINE__);
  checkThat(layerer_ != nullptr, "layerer provided", __FILE__, __LINE__);
  tree_->validate();
  numDemands_ = tree_->numDemands();
  numNetworks_ = tree_->numNetworks();
  edgeOffset_.resize(static_cast<std::size_t>(numNetworks_) + 1, 0);
  for (TreeId t = 0; t < numNetworks_; ++t) {
    edgeOffset_[static_cast<std::size_t>(t) + 1] =
        edgeOffset_[static_cast<std::size_t>(t)] +
        tree_->networks[static_cast<std::size_t>(t)].numEdges();
  }
  numGlobalEdges_ = edgeOffset_.back();

  instanceOffset_.assign(static_cast<std::size_t>(numDemands_) + 1, 0);
  for (DemandId d = 0; d < numDemands_; ++d) {
    instanceOffset_[static_cast<std::size_t>(d) + 1] =
        instanceOffset_[static_cast<std::size_t>(d)] +
        static_cast<std::int32_t>(tree_->access[static_cast<std::size_t>(d)]
                                      .size());
  }
  buildPoolIndexes();
  stats_.buildMs = static_cast<double>(microsSince(start)) / 1000.0;
}

DynamicUniverse::DynamicUniverse(std::shared_ptr<const LineProblem> problem,
                                 std::unique_ptr<InstanceLayerer> layerer)
    : kind_(Kind::Line),
      line_(std::move(problem)),
      layerer_(std::move(layerer)) {
  const auto start = std::chrono::steady_clock::now();
  checkThat(line_ != nullptr, "line problem provided", __FILE__, __LINE__);
  checkThat(layerer_ != nullptr, "layerer provided", __FILE__, __LINE__);
  line_->validate();
  numDemands_ = line_->numDemands();
  numNetworks_ = line_->numResources;
  lineSlots_ = line_->numSlots;
  edgeOffset_.resize(static_cast<std::size_t>(numNetworks_) + 1, 0);
  for (ResourceId r = 0; r < numNetworks_; ++r) {
    edgeOffset_[static_cast<std::size_t>(r) + 1] =
        edgeOffset_[static_cast<std::size_t>(r)] + line_->numSlots;
  }
  numGlobalEdges_ = edgeOffset_.back();

  instanceOffset_.assign(static_cast<std::size_t>(numDemands_) + 1, 0);
  for (DemandId d = 0; d < numDemands_; ++d) {
    const WindowDemand& dem = line_->demands[static_cast<std::size_t>(d)];
    const std::int32_t starts =
        std::max(0, dem.deadline - dem.processing - dem.release + 2);
    instanceOffset_[static_cast<std::size_t>(d) + 1] =
        instanceOffset_[static_cast<std::size_t>(d)] +
        static_cast<std::int32_t>(line_->access[static_cast<std::size_t>(d)]
                                      .size()) *
            starts;
  }
  buildPoolIndexes();
  stats_.buildMs = static_cast<double>(microsSince(start)) / 1000.0;
}

void DynamicUniverse::buildPoolIndexes() {
  numInstances_ = instanceOffset_.back();
  idPool_.resize(static_cast<std::size_t>(numInstances_));
  for (InstanceId i = 0; i < numInstances_; ++i) {
    idPool_[static_cast<std::size_t>(i)] = i;
  }
  demandOf_.resize(static_cast<std::size_t>(numInstances_));
  for (DemandId d = 0; d < numDemands_; ++d) {
    for (std::int32_t i = instanceOffset_[static_cast<std::size_t>(d)];
         i < instanceOffset_[static_cast<std::size_t>(d) + 1]; ++i) {
      demandOf_[static_cast<std::size_t>(i)] = d;
    }
  }
  slabs_.resize(static_cast<std::size_t>(numDemands_));
  edgeLive_.resize(static_cast<std::size_t>(numGlobalEdges_));

  // Profit range over the pool, matching the from-scratch finalize():
  // every instance of a demand shares the demand's profit, so demands
  // with at least one pool instance determine the range.
  bool any = false;
  for (DemandId d = 0; d < numDemands_; ++d) {
    if (poolInstanceCount(d) == 0) continue;
    const double profit =
        kind_ == Kind::Tree
            ? tree_->demands[static_cast<std::size_t>(d)].profit
            : line_->demands[static_cast<std::size_t>(d)].profit;
    if (!any) {
      profitMax_ = profitMin_ = profit;
      any = true;
    } else {
      profitMax_ = std::max(profitMax_, profit);
      profitMin_ = std::min(profitMin_, profit);
    }
  }
}

GlobalEdgeId DynamicUniverse::globalEdge(TreeId network, EdgeId e) const {
  checkIndex(network, numNetworks_, "network id");
  const GlobalEdgeId g = edgeOffset_[static_cast<std::size_t>(network)] + e;
  checkThat(g < edgeOffset_[static_cast<std::size_t>(network) + 1],
            "edge id within network", __FILE__, __LINE__);
  return g;
}

std::int32_t DynamicUniverse::lineSlots() const {
  checkThat(kind_ == Kind::Line, "line universe", __FILE__, __LINE__);
  return lineSlots_;
}

const std::vector<std::vector<std::int32_t>>& DynamicUniverse::access() const {
  return kind_ == Kind::Tree ? tree_->access : line_->access;
}

const TreeProblem& DynamicUniverse::treeProblem() const {
  checkThat(kind_ == Kind::Tree, "tree universe", __FILE__, __LINE__);
  return *tree_;
}

const LineProblem& DynamicUniverse::lineProblem() const {
  checkThat(kind_ == Kind::Line, "line universe", __FILE__, __LINE__);
  return *line_;
}

std::int32_t DynamicUniverse::poolInstanceCount(DemandId d) const {
  checkIndex(d, numDemands_, "demand id");
  return instanceOffset_[static_cast<std::size_t>(d) + 1] -
         instanceOffset_[static_cast<std::size_t>(d)];
}

void DynamicUniverse::expandTree(DemandId d, DemandSlab& slab) const {
  const Demand& dem = tree_->demands[static_cast<std::size_t>(d)];
  InstanceId id = instanceOffset_[static_cast<std::size_t>(d)];
  for (const TreeId t : tree_->access[static_cast<std::size_t>(d)]) {
    const TreeNetwork& net = tree_->networks[static_cast<std::size_t>(t)];
    InstanceRecord rec;
    rec.id = id++;
    rec.demand = d;
    rec.network = t;
    rec.u = dem.u;
    rec.v = dem.v;
    rec.profit = dem.profit;
    rec.height = dem.height;
    rec.pathBegin = static_cast<std::int32_t>(slab.pathPool.size());
    for (const EdgeId e : net.pathEdges(dem.u, dem.v)) {
      slab.pathPool.push_back(edgeOffset_[static_cast<std::size_t>(t)] + e);
    }
    rec.pathEnd = static_cast<std::int32_t>(slab.pathPool.size());
    checkThat(rec.pathLength() >= 1, "instance path non-empty", __FILE__,
              __LINE__);
    slab.records.push_back(rec);
  }
}

void DynamicUniverse::expandLine(DemandId d, DemandSlab& slab) const {
  const WindowDemand& dem = line_->demands[static_cast<std::size_t>(d)];
  InstanceId id = instanceOffset_[static_cast<std::size_t>(d)];
  for (const ResourceId r : line_->access[static_cast<std::size_t>(d)]) {
    const std::int32_t lastStart = dem.deadline - dem.processing + 1;
    for (std::int32_t start = dem.release; start <= lastStart; ++start) {
      InstanceRecord rec;
      rec.id = id++;
      rec.demand = d;
      rec.network = r;
      rec.u = start;
      rec.v = start + dem.processing - 1;
      rec.profit = dem.profit;
      rec.height = dem.height;
      rec.pathBegin = static_cast<std::int32_t>(slab.pathPool.size());
      for (std::int32_t slot = rec.u; slot <= rec.v; ++slot) {
        slab.pathPool.push_back(edgeOffset_[static_cast<std::size_t>(r)] +
                                slot);
      }
      rec.pathEnd = static_cast<std::int32_t>(slab.pathPool.size());
      slab.records.push_back(rec);
    }
  }
}

void DynamicUniverse::addDemand(DemandId d) {
  checkIndex(d, numDemands_, "demand id");
  checkThat(slabs_[static_cast<std::size_t>(d)] == nullptr,
            "demand not already live", __FILE__, __LINE__);
  const auto start = std::chrono::steady_clock::now();
  auto slab = std::make_unique<DemandSlab>();
  if (kind_ == Kind::Tree) {
    expandTree(d, *slab);
  } else {
    expandLine(d, *slab);
  }
  const std::size_t count = slab->records.size();
  checkThat(static_cast<std::int32_t>(count) == poolInstanceCount(d),
            "expansion matches pool id range", __FILE__, __LINE__);

  // Layering: per-instance-local group + critical edges.
  slab->group.reserve(count);
  slab->criticalOffset.assign(count + 1, 0);
  std::vector<GlobalEdgeId> buffer;
  for (std::size_t local = 0; local < count; ++local) {
    buffer.clear();
    slab->group.push_back(layerer_->layer(slab->records[local], buffer));
    slab->criticalPool.insert(slab->criticalPool.end(), buffer.begin(),
                              buffer.end());
    slab->criticalOffset[local + 1] =
        static_cast<std::int32_t>(slab->criticalPool.size());
  }

  // Splice into the live edge index first, then derive each new
  // instance's conflict row exactly as the from-scratch build does:
  // union of on-edge instances over the path, plus all siblings, sorted
  // unique minus self — restricted to live ids by construction.
  for (const InstanceRecord& rec : slab->records) {
    for (std::int32_t p = rec.pathBegin; p < rec.pathEnd; ++p) {
      insertSorted(edgeLive_[static_cast<std::size_t>(slab->pathPool[
                       static_cast<std::size_t>(p)])],
                   rec.id);
    }
  }
  const std::int32_t base = instanceOffset_[static_cast<std::size_t>(d)];
  slab->conflicts.resize(count);
  std::vector<InstanceId> row;
  for (std::size_t local = 0; local < count; ++local) {
    const InstanceRecord& rec = slab->records[local];
    row.clear();
    for (std::int32_t p = rec.pathBegin; p < rec.pathEnd; ++p) {
      const auto& onEdge = edgeLive_[static_cast<std::size_t>(
          slab->pathPool[static_cast<std::size_t>(p)])];
      row.insert(row.end(), onEdge.begin(), onEdge.end());
    }
    for (std::size_t s = 0; s < count; ++s) {
      row.push_back(base + static_cast<InstanceId>(s));
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    row.erase(std::remove(row.begin(), row.end(), rec.id), row.end());
    slab->conflicts[local] = row;
  }
  // Mirror the new rows into the other live demands' rows.
  for (std::size_t local = 0; local < count; ++local) {
    const InstanceId id = base + static_cast<InstanceId>(local);
    for (const InstanceId w : slab->conflicts[local]) {
      if (demandOf_[static_cast<std::size_t>(w)] != d) {
        insertSorted(conflictListOf(w), id);
      }
    }
  }

  slabs_[static_cast<std::size_t>(d)] = std::move(slab);
  ++numLiveDemands_;
  numLiveInstances_ += static_cast<std::int32_t>(count);
  ++stats_.arrivals;
  stats_.extendUs += microsSince(start);
}

void DynamicUniverse::retireDemand(DemandId d) {
  checkIndex(d, numDemands_, "demand id");
  checkThat(slabs_[static_cast<std::size_t>(d)] != nullptr, "demand live",
            __FILE__, __LINE__);
  const auto start = std::chrono::steady_clock::now();
  DemandSlab& slab = *slabs_[static_cast<std::size_t>(d)];
  const std::size_t count = slab.records.size();
  for (std::size_t local = 0; local < count; ++local) {
    const InstanceRecord& rec = slab.records[local];
    for (const InstanceId w : slab.conflicts[local]) {
      if (demandOf_[static_cast<std::size_t>(w)] != d) {
        eraseSorted(conflictListOf(w), rec.id);
      }
    }
    for (std::int32_t p = rec.pathBegin; p < rec.pathEnd; ++p) {
      eraseSorted(edgeLive_[static_cast<std::size_t>(
                      slab.pathPool[static_cast<std::size_t>(p)])],
                  rec.id);
    }
  }
  slabs_[static_cast<std::size_t>(d)].reset();
  --numLiveDemands_;
  numLiveInstances_ -= static_cast<std::int32_t>(count);
  ++stats_.gcDemands;
  stats_.gcInstances += static_cast<std::int64_t>(count);
  stats_.gcUs += microsSince(start);
}

bool DynamicUniverse::isLive(DemandId d) const {
  checkIndex(d, numDemands_, "demand id");
  return slabs_[static_cast<std::size_t>(d)] != nullptr;
}

const DynamicUniverse::DemandSlab& DynamicUniverse::slabOf(
    InstanceId i, DemandId& demand, std::int32_t& local) const {
  checkIndex(i, numInstances_, "instance id");
  demand = demandOf_[static_cast<std::size_t>(i)];
  const auto* slab = slabs_[static_cast<std::size_t>(demand)].get();
  checkThat(slab != nullptr, "instance's demand live", __FILE__, __LINE__);
  local = i - instanceOffset_[static_cast<std::size_t>(demand)];
  return *slab;
}

std::vector<InstanceId>& DynamicUniverse::conflictListOf(InstanceId i) {
  DemandId demand = 0;
  std::int32_t local = 0;
  const DemandSlab& slab = slabOf(i, demand, local);
  return const_cast<DemandSlab&>(slab).conflicts[static_cast<std::size_t>(
      local)];
}

const InstanceRecord& DynamicUniverse::instance(InstanceId i) const {
  DemandId demand = 0;
  std::int32_t local = 0;
  const DemandSlab& slab = slabOf(i, demand, local);
  return slab.records[static_cast<std::size_t>(local)];
}

std::span<const GlobalEdgeId> DynamicUniverse::path(InstanceId i) const {
  DemandId demand = 0;
  std::int32_t local = 0;
  const DemandSlab& slab = slabOf(i, demand, local);
  const InstanceRecord& rec = slab.records[static_cast<std::size_t>(local)];
  return {slab.pathPool.data() + rec.pathBegin,
          static_cast<std::size_t>(rec.pathLength())};
}

std::span<const InstanceId> DynamicUniverse::instancesOfDemand(
    DemandId d) const {
  checkIndex(d, numDemands_, "demand id");
  if (slabs_[static_cast<std::size_t>(d)] == nullptr) return {};
  const auto begin = instanceOffset_[static_cast<std::size_t>(d)];
  const auto end = instanceOffset_[static_cast<std::size_t>(d) + 1];
  return {idPool_.data() + begin, static_cast<std::size_t>(end - begin)};
}

std::span<const InstanceId> DynamicUniverse::instancesOnEdge(
    GlobalEdgeId e) const {
  checkIndex(e, numGlobalEdges_, "global edge id");
  const auto& live = edgeLive_[static_cast<std::size_t>(e)];
  return {live.data(), live.size()};
}

bool DynamicUniverse::overlapping(InstanceId a, InstanceId b) const {
  const InstanceRecord& ra = instance(a);
  const InstanceRecord& rb = instance(b);
  if (ra.network != rb.network) return false;
  if (kind_ == Kind::Line) {
    return ra.u <= rb.v && rb.u <= ra.v;
  }
  const auto pa = path(a);
  const auto pb = path(b);
  const auto& shorter = pa.size() <= pb.size() ? pa : pb;
  const auto& longer = pa.size() <= pb.size() ? pb : pa;
  for (const GlobalEdgeId e : shorter) {
    if (std::find(longer.begin(), longer.end(), e) != longer.end()) {
      return true;
    }
  }
  return false;
}

bool DynamicUniverse::conflicting(InstanceId a, InstanceId b) const {
  if (a == b) return false;
  if (instance(a).demand == instance(b).demand) return true;
  return overlapping(a, b);
}

std::span<const InstanceId> DynamicUniverse::conflictsOf(InstanceId i) const {
  DemandId demand = 0;
  std::int32_t local = 0;
  const DemandSlab& slab = slabOf(i, demand, local);
  const auto& row = slab.conflicts[static_cast<std::size_t>(local)];
  return {row.data(), row.size()};
}

std::int32_t DynamicUniverse::groupOf(InstanceId i) const {
  DemandId demand = 0;
  std::int32_t local = 0;
  const DemandSlab& slab = slabOf(i, demand, local);
  return slab.group[static_cast<std::size_t>(local)];
}

std::span<const GlobalEdgeId> DynamicUniverse::critical(InstanceId i) const {
  DemandId demand = 0;
  std::int32_t local = 0;
  const DemandSlab& slab = slabOf(i, demand, local);
  const auto begin = slab.criticalOffset[static_cast<std::size_t>(local)];
  const auto end = slab.criticalOffset[static_cast<std::size_t>(local) + 1];
  return {slab.criticalPool.data() + begin,
          static_cast<std::size_t>(end - begin)};
}

}  // namespace treesched
