#include "core/universe.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace treesched {

InstanceUniverse InstanceUniverse::fromTreeProblem(const TreeProblem& problem) {
  problem.validate();
  InstanceUniverse u;
  u.kind_ = Kind::Tree;
  u.numDemands_ = problem.numDemands();
  u.numNetworks_ = problem.numNetworks();
  u.edgeOffset_.resize(static_cast<std::size_t>(u.numNetworks_) + 1, 0);
  for (TreeId t = 0; t < u.numNetworks_; ++t) {
    u.edgeOffset_[static_cast<std::size_t>(t) + 1] =
        u.edgeOffset_[static_cast<std::size_t>(t)] +
        problem.networks[static_cast<std::size_t>(t)].numEdges();
  }
  u.numGlobalEdges_ = u.edgeOffset_.back();

  for (DemandId d = 0; d < u.numDemands_; ++d) {
    const Demand& dem = problem.demands[static_cast<std::size_t>(d)];
    for (const TreeId t : problem.access[static_cast<std::size_t>(d)]) {
      const TreeNetwork& net = problem.networks[static_cast<std::size_t>(t)];
      InstanceRecord rec;
      rec.id = static_cast<InstanceId>(u.instances_.size());
      rec.demand = d;
      rec.network = t;
      rec.u = dem.u;
      rec.v = dem.v;
      rec.profit = dem.profit;
      rec.height = dem.height;
      rec.pathBegin = static_cast<std::int32_t>(u.pathPool_.size());
      for (const EdgeId e : net.pathEdges(dem.u, dem.v)) {
        u.pathPool_.push_back(u.edgeOffset_[static_cast<std::size_t>(t)] + e);
      }
      rec.pathEnd = static_cast<std::int32_t>(u.pathPool_.size());
      checkThat(rec.pathLength() >= 1, "instance path non-empty", __FILE__,
                __LINE__);
      u.instances_.push_back(rec);
    }
  }
  u.finalize();
  return u;
}

InstanceUniverse InstanceUniverse::fromLineProblem(const LineProblem& problem) {
  problem.validate();
  InstanceUniverse u;
  u.kind_ = Kind::Line;
  u.numDemands_ = problem.numDemands();
  u.numNetworks_ = problem.numResources;
  u.lineSlots_ = problem.numSlots;
  u.edgeOffset_.resize(static_cast<std::size_t>(u.numNetworks_) + 1, 0);
  for (ResourceId r = 0; r < u.numNetworks_; ++r) {
    u.edgeOffset_[static_cast<std::size_t>(r) + 1] =
        u.edgeOffset_[static_cast<std::size_t>(r)] + problem.numSlots;
  }
  u.numGlobalEdges_ = u.edgeOffset_.back();

  for (DemandId d = 0; d < u.numDemands_; ++d) {
    const WindowDemand& dem = problem.demands[static_cast<std::size_t>(d)];
    for (const ResourceId r : problem.access[static_cast<std::size_t>(d)]) {
      const std::int32_t lastStart = dem.deadline - dem.processing + 1;
      for (std::int32_t start = dem.release; start <= lastStart; ++start) {
        InstanceRecord rec;
        rec.id = static_cast<InstanceId>(u.instances_.size());
        rec.demand = d;
        rec.network = r;
        rec.u = start;
        rec.v = start + dem.processing - 1;
        rec.profit = dem.profit;
        rec.height = dem.height;
        rec.pathBegin = static_cast<std::int32_t>(u.pathPool_.size());
        for (std::int32_t slot = rec.u; slot <= rec.v; ++slot) {
          u.pathPool_.push_back(u.edgeOffset_[static_cast<std::size_t>(r)] +
                                slot);
        }
        rec.pathEnd = static_cast<std::int32_t>(u.pathPool_.size());
        u.instances_.push_back(rec);
      }
    }
  }
  u.finalize();
  return u;
}

void InstanceUniverse::finalize() {
  // Demand -> instances CSR. Instances were appended in ascending demand
  // order, so a counting pass suffices.
  demandOffset_.assign(static_cast<std::size_t>(numDemands_) + 1, 0);
  for (const InstanceRecord& rec : instances_) {
    ++demandOffset_[static_cast<std::size_t>(rec.demand) + 1];
  }
  for (std::size_t d = 0; d < static_cast<std::size_t>(numDemands_); ++d) {
    demandOffset_[d + 1] += demandOffset_[d];
  }
  demandInstances_.resize(instances_.size());
  {
    std::vector<std::int32_t> cursor(demandOffset_.begin(),
                                     demandOffset_.end() - 1);
    for (const InstanceRecord& rec : instances_) {
      demandInstances_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(rec.demand)]++)] = rec.id;
    }
  }

  // Global edge -> instances CSR.
  edgeInstOffset_.assign(static_cast<std::size_t>(numGlobalEdges_) + 1, 0);
  for (const GlobalEdgeId e : pathPool_) {
    ++edgeInstOffset_[static_cast<std::size_t>(e) + 1];
  }
  for (std::size_t e = 0; e < static_cast<std::size_t>(numGlobalEdges_); ++e) {
    edgeInstOffset_[e + 1] += edgeInstOffset_[e];
  }
  edgeInstances_.resize(pathPool_.size());
  {
    std::vector<std::int32_t> cursor(edgeInstOffset_.begin(),
                                     edgeInstOffset_.end() - 1);
    for (const InstanceRecord& rec : instances_) {
      for (std::int32_t p = rec.pathBegin; p < rec.pathEnd; ++p) {
        const GlobalEdgeId e = pathPool_[static_cast<std::size_t>(p)];
        edgeInstances_[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(e)]++)] = rec.id;
      }
    }
  }

  if (!instances_.empty()) {
    profitMax_ = profitMin_ = instances_.front().profit;
    for (const InstanceRecord& rec : instances_) {
      profitMax_ = std::max(profitMax_, rec.profit);
      profitMin_ = std::min(profitMin_, rec.profit);
    }
  }
}

const InstanceRecord& InstanceUniverse::instance(InstanceId i) const {
  checkIndex(i, numInstances(), "instance id");
  return instances_[static_cast<std::size_t>(i)];
}

std::span<const GlobalEdgeId> InstanceUniverse::path(InstanceId i) const {
  const InstanceRecord& rec = instance(i);
  return {pathPool_.data() + rec.pathBegin,
          static_cast<std::size_t>(rec.pathLength())};
}

std::span<const InstanceId> InstanceUniverse::instancesOfDemand(
    DemandId d) const {
  checkIndex(d, numDemands_, "demand id");
  const auto begin = demandOffset_[static_cast<std::size_t>(d)];
  const auto end = demandOffset_[static_cast<std::size_t>(d) + 1];
  return {demandInstances_.data() + begin,
          static_cast<std::size_t>(end - begin)};
}

GlobalEdgeId InstanceUniverse::globalEdge(TreeId network, EdgeId e) const {
  checkIndex(network, numNetworks_, "network id");
  const GlobalEdgeId g = edgeOffset_[static_cast<std::size_t>(network)] + e;
  checkThat(g < edgeOffset_[static_cast<std::size_t>(network) + 1],
            "edge id within network", __FILE__, __LINE__);
  return g;
}

std::span<const InstanceId> InstanceUniverse::instancesOnEdge(
    GlobalEdgeId e) const {
  checkIndex(e, numGlobalEdges_, "global edge id");
  const auto begin = edgeInstOffset_[static_cast<std::size_t>(e)];
  const auto end = edgeInstOffset_[static_cast<std::size_t>(e) + 1];
  return {edgeInstances_.data() + begin, static_cast<std::size_t>(end - begin)};
}

bool InstanceUniverse::overlapping(InstanceId a, InstanceId b) const {
  const InstanceRecord& ra = instance(a);
  const InstanceRecord& rb = instance(b);
  if (ra.network != rb.network) return false;
  // Scan the shorter path against a membership test on the longer one.
  // Line paths are contiguous slot ranges, so compare ranges directly.
  if (kind_ == Kind::Line) {
    return ra.u <= rb.v && rb.u <= ra.v;
  }
  const auto pa = path(a);
  const auto pb = path(b);
  const auto& shorter = pa.size() <= pb.size() ? pa : pb;
  const auto& longer = pa.size() <= pb.size() ? pb : pa;
  for (const GlobalEdgeId e : shorter) {
    if (std::find(longer.begin(), longer.end(), e) != longer.end()) {
      return true;
    }
  }
  return false;
}

bool InstanceUniverse::conflicting(InstanceId a, InstanceId b) const {
  if (a == b) return false;
  if (instance(a).demand == instance(b).demand) return true;
  return overlapping(a, b);
}

void InstanceUniverse::buildConflicts() {
  if (conflictsBuilt_) return;
  conflictOffset_.assign(static_cast<std::size_t>(numInstances()) + 1, 0);
  std::vector<InstanceId> buffer;
  // Two passes: count then fill, so conflictAdj_ is allocated exactly once.
  std::vector<std::vector<InstanceId>> rows(
      static_cast<std::size_t>(numInstances()));
  for (InstanceId i = 0; i < numInstances(); ++i) {
    buffer.clear();
    for (const GlobalEdgeId e : path(i)) {
      const auto onEdge = instancesOnEdge(e);
      buffer.insert(buffer.end(), onEdge.begin(), onEdge.end());
    }
    const auto sameDemand = instancesOfDemand(instance(i).demand);
    buffer.insert(buffer.end(), sameDemand.begin(), sameDemand.end());
    std::sort(buffer.begin(), buffer.end());
    buffer.erase(std::unique(buffer.begin(), buffer.end()), buffer.end());
    buffer.erase(std::remove(buffer.begin(), buffer.end(), i), buffer.end());
    rows[static_cast<std::size_t>(i)] = buffer;
  }
  std::int64_t total = 0;
  for (InstanceId i = 0; i < numInstances(); ++i) {
    conflictOffset_[static_cast<std::size_t>(i)] = total;
    total +=
        static_cast<std::int64_t>(rows[static_cast<std::size_t>(i)].size());
  }
  conflictOffset_[static_cast<std::size_t>(numInstances())] = total;
  conflictAdj_.resize(static_cast<std::size_t>(total));
  for (InstanceId i = 0; i < numInstances(); ++i) {
    std::copy(rows[static_cast<std::size_t>(i)].begin(),
              rows[static_cast<std::size_t>(i)].end(),
              conflictAdj_.begin() +
                  conflictOffset_[static_cast<std::size_t>(i)]);
  }
  conflictsBuilt_ = true;
}

std::span<const InstanceId> InstanceUniverse::conflictsOf(InstanceId i) const {
  checkThat(conflictsBuilt_, "buildConflicts() called", __FILE__, __LINE__);
  checkIndex(i, numInstances(), "instance id");
  const auto begin = conflictOffset_[static_cast<std::size_t>(i)];
  const auto end = conflictOffset_[static_cast<std::size_t>(i) + 1];
  return {conflictAdj_.data() + begin, static_cast<std::size_t>(end - begin)};
}

std::int32_t InstanceUniverse::maxConflictDegree() const {
  checkThat(conflictsBuilt_, "buildConflicts() called", __FILE__, __LINE__);
  std::int64_t best = 0;
  for (InstanceId i = 0; i < numInstances(); ++i) {
    best = std::max(best, conflictOffset_[static_cast<std::size_t>(i) + 1] -
                              conflictOffset_[static_cast<std::size_t>(i)]);
  }
  return static_cast<std::int32_t>(best);
}

std::int32_t InstanceUniverse::lineSlots() const {
  checkThat(kind_ == Kind::Line, "line universe", __FILE__, __LINE__);
  return lineSlots_;
}

}  // namespace treesched
