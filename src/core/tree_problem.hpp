// The throughput-maximization problem on tree-networks (paper §2).
#pragma once

#include <vector>

#include "core/demand.hpp"
#include "graph/tree_network.hpp"

namespace treesched {

/// Full problem input: a vertex set shared by `networks`, one demand per
/// processor, and per-processor accessibility sets Acc(P).
///
/// Invariants (checked by validate()):
///  * every network spans exactly `numVertices` vertices;
///  * demand endpoints are distinct vertices in range;
///  * heights lie in (0, 1], profits are positive;
///  * every accessibility list is non-empty, sorted, duplicate-free and
///    references existing networks.
struct TreeProblem {
  std::int32_t numVertices = 0;
  std::vector<TreeNetwork> networks;
  std::vector<Demand> demands;
  /// access[d] = sorted list of TreeIds demand d's processor may use.
  std::vector<std::vector<TreeId>> access;

  std::int32_t numDemands() const {
    return static_cast<std::int32_t>(demands.size());
  }
  std::int32_t numNetworks() const {
    return static_cast<std::int32_t>(networks.size());
  }

  /// Throws CheckError when an invariant is violated.
  void validate() const;

  /// True when every demand has unit height (the §2-§5 setting).
  bool isUnitHeight() const;

  /// Ratio pmax/pmin over all demands (1 when there are no demands).
  double profitSpread() const;
};

/// Convenience builder: gives every demand access to every network.
std::vector<std::vector<TreeId>> fullAccess(std::int32_t numDemands,
                                            std::int32_t numNetworks);

}  // namespace treesched
