#include "core/tree_problem.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace treesched {

void TreeProblem::validate() const {
  checkThat(numVertices >= 2, "problem has at least two vertices", __FILE__,
            __LINE__);
  checkThat(!networks.empty(), "problem has at least one network", __FILE__,
            __LINE__);
  for (const TreeNetwork& t : networks) {
    checkThat(t.numVertices() == numVertices,
              "network spans the shared vertex set", __FILE__, __LINE__);
  }
  checkThat(demands.size() == access.size(),
            "one accessibility list per demand", __FILE__, __LINE__);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    checkThat(d.id == static_cast<DemandId>(i), "demand ids are positional",
              __FILE__, __LINE__);
    checkIndex(d.u, numVertices, "demand endpoint u");
    checkIndex(d.v, numVertices, "demand endpoint v");
    checkThat(d.u != d.v, "demand endpoints are distinct", __FILE__, __LINE__);
    checkThat(d.profit > 0, "demand profit positive", __FILE__, __LINE__);
    checkThat(d.height > 0 && d.height <= 1.0, "demand height in (0,1]",
              __FILE__, __LINE__);
    const auto& acc = access[i];
    checkThat(!acc.empty(), "accessibility list non-empty", __FILE__, __LINE__);
    checkThat(std::is_sorted(acc.begin(), acc.end()),
              "accessibility list sorted", __FILE__, __LINE__);
    checkThat(std::adjacent_find(acc.begin(), acc.end()) == acc.end(),
              "accessibility list duplicate-free", __FILE__, __LINE__);
    for (const TreeId t : acc) {
      checkIndex(t, numNetworks(), "accessible network id");
    }
  }
}

bool TreeProblem::isUnitHeight() const {
  return std::all_of(demands.begin(), demands.end(),
                     [](const Demand& d) { return d.height == 1.0; });
}

double TreeProblem::profitSpread() const {
  if (demands.empty()) return 1.0;
  double lo = demands.front().profit;
  double hi = lo;
  for (const Demand& d : demands) {
    lo = std::min(lo, d.profit);
    hi = std::max(hi, d.profit);
  }
  return hi / lo;
}

std::vector<std::vector<TreeId>> fullAccess(std::int32_t numDemands,
                                            std::int32_t numNetworks) {
  std::vector<TreeId> all(static_cast<std::size_t>(numNetworks));
  for (TreeId t = 0; t < numNetworks; ++t) {
    all[static_cast<std::size_t>(t)] = t;
  }
  return std::vector<std::vector<TreeId>>(static_cast<std::size_t>(numDemands),
                                          all);
}

}  // namespace treesched
