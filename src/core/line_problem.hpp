// The throughput-maximization problem on line-networks with windows
// (paper §1 "Line-Networks" and §7).
//
// The timeline has `numSlots` discrete timeslots 0..numSlots-1; each slot
// is one edge of an (implicit) path network, and each of the `numResources`
// resources offers unit bandwidth on every slot. A windowed demand may run
// on any `processing`-slot segment inside its [release, deadline] window,
// on any resource its processor can access.
#pragma once

#include <cstdint>
#include <vector>

#include "core/demand.hpp"

namespace treesched {

/// Resource index in [0, numResources). Line resources play the role
/// TreeIds play on trees.
using ResourceId = std::int32_t;

struct LineProblem {
  std::int32_t numSlots = 0;
  std::int32_t numResources = 0;
  std::vector<WindowDemand> demands;
  /// access[d] = sorted list of resources demand d's processor may use.
  std::vector<std::vector<ResourceId>> access;

  std::int32_t numDemands() const {
    return static_cast<std::int32_t>(demands.size());
  }

  /// Throws CheckError when an invariant is violated: window inside the
  /// timeline, processing fits in the window, positive profits, heights in
  /// (0,1], well-formed accessibility lists.
  void validate() const;

  bool isUnitHeight() const;
  double profitSpread() const;

  /// Max/min demand length ratio Lmax/Lmin (lengths == processing times);
  /// the line layering depth is ceil(log2) of this (§7).
  double lengthSpread() const;
};

/// Convenience builder: full accessibility for line problems.
std::vector<std::vector<ResourceId>> fullLineAccess(std::int32_t numDemands,
                                                    std::int32_t numResources);

/// A demand with no slack in its window (release + processing - 1 ==
/// deadline) has exactly one execution segment; this helper builds such a
/// fixed-interval demand, the windowless setting of Figure 1.
WindowDemand makeIntervalDemand(DemandId id, std::int32_t start,
                                std::int32_t end, double profit,
                                double height = 1.0);

}  // namespace treesched
