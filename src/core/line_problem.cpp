#include "core/line_problem.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace treesched {

void LineProblem::validate() const {
  checkThat(numSlots >= 1, "timeline has at least one slot", __FILE__,
            __LINE__);
  checkThat(numResources >= 1, "at least one resource", __FILE__, __LINE__);
  checkThat(demands.size() == access.size(),
            "one accessibility list per demand", __FILE__, __LINE__);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const WindowDemand& d = demands[i];
    checkThat(d.id == static_cast<DemandId>(i), "demand ids are positional",
              __FILE__, __LINE__);
    checkThat(d.release >= 0 && d.release < numSlots, "release in timeline",
              __FILE__, __LINE__);
    checkThat(d.deadline >= d.release && d.deadline < numSlots,
              "deadline in timeline and after release", __FILE__, __LINE__);
    checkThat(d.processing >= 1, "processing time positive", __FILE__,
              __LINE__);
    checkThat(d.release + d.processing - 1 <= d.deadline,
              "processing fits in window", __FILE__, __LINE__);
    checkThat(d.profit > 0, "demand profit positive", __FILE__, __LINE__);
    checkThat(d.height > 0 && d.height <= 1.0, "demand height in (0,1]",
              __FILE__, __LINE__);
    const auto& acc = access[i];
    checkThat(!acc.empty(), "accessibility list non-empty", __FILE__, __LINE__);
    checkThat(std::is_sorted(acc.begin(), acc.end()),
              "accessibility list sorted", __FILE__, __LINE__);
    checkThat(std::adjacent_find(acc.begin(), acc.end()) == acc.end(),
              "accessibility list duplicate-free", __FILE__, __LINE__);
    for (const ResourceId r : acc) {
      checkIndex(r, numResources, "accessible resource id");
    }
  }
}

bool LineProblem::isUnitHeight() const {
  return std::all_of(demands.begin(), demands.end(),
                     [](const WindowDemand& d) { return d.height == 1.0; });
}

double LineProblem::profitSpread() const {
  if (demands.empty()) return 1.0;
  double lo = demands.front().profit;
  double hi = lo;
  for (const WindowDemand& d : demands) {
    lo = std::min(lo, d.profit);
    hi = std::max(hi, d.profit);
  }
  return hi / lo;
}

double LineProblem::lengthSpread() const {
  if (demands.empty()) return 1.0;
  std::int32_t lo = demands.front().processing;
  std::int32_t hi = lo;
  for (const WindowDemand& d : demands) {
    lo = std::min(lo, d.processing);
    hi = std::max(hi, d.processing);
  }
  return static_cast<double>(hi) / static_cast<double>(lo);
}

std::vector<std::vector<ResourceId>> fullLineAccess(std::int32_t numDemands,
                                                    std::int32_t numResources) {
  std::vector<ResourceId> all(static_cast<std::size_t>(numResources));
  for (ResourceId r = 0; r < numResources; ++r) {
    all[static_cast<std::size_t>(r)] = r;
  }
  return std::vector<std::vector<ResourceId>>(
      static_cast<std::size_t>(numDemands), all);
}

WindowDemand makeIntervalDemand(DemandId id, std::int32_t start,
                                std::int32_t end, double profit,
                                double height) {
  checkThat(end >= start, "interval end >= start", __FILE__, __LINE__);
  WindowDemand d;
  d.id = id;
  d.release = start;
  d.deadline = end;
  d.processing = end - start + 1;
  d.profit = profit;
  d.height = height;
  return d;
}

}  // namespace treesched
