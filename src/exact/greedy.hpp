// Profit-greedy baseline: instances in descending profit order, added when
// feasible. No approximation guarantee on these problems; serves as the
// "naive" comparator in the benchmark tables.
#pragma once

#include "core/solution.hpp"
#include "core/universe.hpp"

namespace treesched {

struct GreedyResult {
  Solution solution;
  double profit = 0;
};

GreedyResult greedyByProfit(const InstanceUniverse& universe);

}  // namespace treesched
