// Profit-greedy baseline: instances in descending profit order, added when
// feasible. No approximation guarantee on these problems; serves as the
// "naive" comparator in the benchmark tables and as the `greedy` entry of
// the policy registry (policy/registry.hpp).
#pragma once

#include <span>

#include "core/solution.hpp"
#include "core/universe.hpp"

namespace treesched {

struct GreedyResult {
  Solution solution;
  double profit = 0;
};

GreedyResult greedyByProfit(const InstanceUniverse& universe);

/// Restricted variant: only instances in `active` (sorted ascending) are
/// candidates — the form the online epoch loop and the policy registry
/// consume. With `active` spanning the whole universe this is exactly
/// greedyByProfit.
GreedyResult greedyByProfitRestricted(const InstanceUniverse& universe,
                                      std::span<const InstanceId> active);

}  // namespace treesched
