// Exact solver by branch-and-bound over demand assignments.
//
// Needed to *measure* approximation ratios (the paper proves bounds but
// reports no optima — experiments E3, E5-E8 compare against this on small
// instances and against the LP-dual upper bound at scale).
//
// Search tree: demands in descending-profit order; each level either skips
// the demand or adds one of its feasible instances. Pruning: current
// profit + sum of remaining demands' profits <= incumbent.
#pragma once

#include <cstdint>

#include "core/solution.hpp"
#include "core/universe.hpp"

namespace treesched {

struct ExactResult {
  Solution solution;
  double profit = 0;
  /// False if the node budget expired; `solution` is then only the best
  /// found (a valid lower bound on OPT).
  bool provedOptimal = true;
  std::int64_t nodesExplored = 0;
};

/// Runs branch-and-bound. Exponential in the number of demands; intended
/// for instances with <= ~30 demands (budget guards the rest).
ExactResult bruteForceExact(const InstanceUniverse& universe,
                            std::int64_t nodeBudget = 20'000'000);

}  // namespace treesched
