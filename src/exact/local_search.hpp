// Local-search post-processing for schedules.
//
// The paper's algorithms leave value on the table by design (phase 2 is a
// single greedy pass over the stack). This improver closes part of the gap
// with two deterministic moves, iterated to a fixed point:
//   * ADD: insert any instance that still fits (descending profit);
//   * SWAP: remove one selected instance and greedily refill; keep the
//     result iff total profit strictly improves.
// The result is always feasible and never worse than the input, so the
// theoretical guarantees carry over unchanged. Used by the E13 benchmark
// to quantify how much a cheap sequential cleanup adds on top of each
// algorithm (it is NOT part of the distributed protocol).
#pragma once

#include <cstdint>
#include <span>

#include "core/solution.hpp"
#include "core/universe.hpp"

namespace treesched {

struct LocalSearchResult {
  Solution solution;
  double profit = 0;
  std::int32_t passes = 0;       ///< improvement passes executed
  std::int32_t addMoves = 0;     ///< instances inserted by ADD
  std::int32_t swapMoves = 0;    ///< accepted SWAP moves
};

/// Improves `start` (must be feasible) until a local optimum or
/// `maxPasses`. Deterministic: candidate order is (profit desc, id asc).
LocalSearchResult improveSolution(const InstanceUniverse& universe,
                                  const Solution& start,
                                  std::int32_t maxPasses = 16);

/// Restricted variant: ADD/SWAP candidates are drawn only from `active`
/// (sorted ascending; `start` must use active instances only) — the form
/// the online epoch loop and the policy registry consume. With `active`
/// spanning the whole universe this is exactly improveSolution.
LocalSearchResult improveSolutionRestricted(const InstanceUniverse& universe,
                                            const Solution& start,
                                            std::span<const InstanceId> active,
                                            std::int32_t maxPasses = 16);

}  // namespace treesched
