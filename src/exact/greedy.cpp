#include "exact/greedy.hpp"

#include <algorithm>
#include <vector>

namespace treesched {

GreedyResult greedyByProfit(const InstanceUniverse& universe) {
  return greedyByProfitRestricted(universe, {});
}

GreedyResult greedyByProfitRestricted(const InstanceUniverse& universe,
                                      std::span<const InstanceId> active) {
  std::vector<InstanceId> order;
  if (active.empty()) {
    order.resize(static_cast<std::size_t>(universe.numInstances()));
    for (InstanceId i = 0; i < universe.numInstances(); ++i) {
      order[static_cast<std::size_t>(i)] = i;
    }
  } else {
    order.assign(active.begin(), active.end());
  }
  std::sort(order.begin(), order.end(), [&](InstanceId a, InstanceId b) {
    const double pa = universe.instance(a).profit;
    const double pb = universe.instance(b).profit;
    if (pa != pb) return pa > pb;
    return a < b;
  });
  FeasibilityOracle oracle(universe);
  for (const InstanceId i : order) {
    if (oracle.canAdd(i)) {
      oracle.add(i);
    }
  }
  GreedyResult result;
  result.solution = oracle.solution();
  result.profit = oracle.profit();
  return result;
}

}  // namespace treesched
