#include "exact/line_dp.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace treesched {

LineDpResult lineDpExact(const LineProblem& problem) {
  problem.validate();
  checkThat(problem.numResources == 1, "lineDpExact: single resource",
            __FILE__, __LINE__);
  checkThat(problem.isUnitHeight(), "lineDpExact: unit heights", __FILE__,
            __LINE__);
  for (const WindowDemand& d : problem.demands) {
    checkThat(d.release + d.processing - 1 == d.deadline,
              "lineDpExact: tight windows (no slack)", __FILE__, __LINE__);
  }

  // Sort demands by interval end.
  std::vector<DemandId> order(static_cast<std::size_t>(problem.numDemands()));
  for (DemandId d = 0; d < problem.numDemands(); ++d) {
    order[static_cast<std::size_t>(d)] = d;
  }
  std::sort(order.begin(), order.end(), [&](DemandId a, DemandId b) {
    return problem.demands[static_cast<std::size_t>(a)].deadline <
           problem.demands[static_cast<std::size_t>(b)].deadline;
  });

  const std::size_t m = order.size();
  // pred[i]: largest j < i whose interval ends before order[i] starts.
  std::vector<std::int32_t> pred(m, -1);
  std::vector<std::int32_t> ends(m);
  for (std::size_t i = 0; i < m; ++i) {
    ends[i] = problem.demands[static_cast<std::size_t>(order[i])].deadline;
  }
  for (std::size_t i = 0; i < m; ++i) {
    const std::int32_t start =
        problem.demands[static_cast<std::size_t>(order[i])].release;
    // Last interval with end < start.
    const auto it = std::lower_bound(ends.begin(), ends.begin() +
                                     static_cast<std::ptrdiff_t>(i), start);
    pred[i] = static_cast<std::int32_t>(it - ends.begin()) - 1;
  }

  std::vector<double> dp(m + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double take =
        problem.demands[static_cast<std::size_t>(order[i])].profit +
        dp[static_cast<std::size_t>(pred[i] + 1)];
    dp[i + 1] = std::max(dp[i], take);
  }

  LineDpResult result;
  result.profit = dp[m];
  // Traceback.
  std::size_t i = m;
  while (i > 0) {
    const double take =
        problem.demands[static_cast<std::size_t>(order[i - 1])].profit +
        dp[static_cast<std::size_t>(pred[i - 1] + 1)];
    // dp[i] = max(dp[i-1], take); select when taking achieves the optimum.
    if (take >= dp[i] - 1e-9 * std::max(1.0, dp[i])) {
      const WindowDemand& d =
          problem.demands[static_cast<std::size_t>(order[i - 1])];
      result.assignments.push_back({d.id, 0, d.release});
      i = static_cast<std::size_t>(pred[i - 1] + 1);
    } else {
      --i;
    }
  }
  std::sort(result.assignments.begin(), result.assignments.end(),
            [](const LineAssignment& a, const LineAssignment& b) {
              return a.demand < b.demand;
            });
  return result;
}

}  // namespace treesched
