#include "exact/brute_force.hpp"

#include <algorithm>
#include <vector>

namespace treesched {

namespace {

class Searcher {
 public:
  Searcher(const InstanceUniverse& universe, std::int64_t nodeBudget)
      : universe_(universe), oracle_(universe), budget_(nodeBudget) {
    order_.resize(static_cast<std::size_t>(universe.numDemands()));
    for (DemandId d = 0; d < universe.numDemands(); ++d) {
      order_[static_cast<std::size_t>(d)] = d;
    }
    // Descending profit improves pruning: big contributors are fixed early.
    std::sort(order_.begin(), order_.end(), [&](DemandId a, DemandId b) {
      const double pa = demandProfit(a);
      const double pb = demandProfit(b);
      if (pa != pb) return pa > pb;
      return a < b;
    });
    suffixProfit_.assign(order_.size() + 1, 0.0);
    for (std::size_t i = order_.size(); i-- > 0;) {
      suffixProfit_[i] = suffixProfit_[i + 1] + demandProfit(order_[i]);
    }
  }

  ExactResult run() {
    dfs(0);
    result_.provedOptimal = !budgetExhausted_;
    return result_;
  }

 private:
  double demandProfit(DemandId d) const {
    const auto instances = universe_.instancesOfDemand(d);
    // All instances of a demand share its profit; a demand with no
    // instance contributes nothing.
    return instances.empty() ? 0.0 : universe_.instance(instances[0]).profit;
  }

  void dfs(std::size_t level) {
    if (budgetExhausted_) return;
    if (++result_.nodesExplored > budget_) {
      budgetExhausted_ = true;
      return;
    }
    if (oracle_.profit() + suffixProfit_[level] <= result_.profit) {
      return;  // bound: cannot beat the incumbent
    }
    if (level == order_.size()) {
      if (oracle_.profit() > result_.profit) {
        result_.profit = oracle_.profit();
        result_.solution = oracle_.solution();
      }
      return;
    }
    const DemandId d = order_[level];
    // Branch 1..k: take one feasible instance of d.
    for (const InstanceId i : universe_.instancesOfDemand(d)) {
      if (oracle_.canAdd(i)) {
        oracle_.add(i);
        dfs(level + 1);
        oracle_.remove(i);
        if (budgetExhausted_) return;
      }
    }
    // Branch 0: skip d.
    dfs(level + 1);
  }

  const InstanceUniverse& universe_;
  FeasibilityOracle oracle_;
  std::int64_t budget_;
  bool budgetExhausted_ = false;
  std::vector<DemandId> order_;
  std::vector<double> suffixProfit_;
  ExactResult result_;
};

}  // namespace

ExactResult bruteForceExact(const InstanceUniverse& universe,
                            std::int64_t nodeBudget) {
  return Searcher(universe, nodeBudget).run();
}

}  // namespace treesched
