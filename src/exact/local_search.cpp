#include "exact/local_search.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace treesched {

namespace {

/// Candidate instances ordered by (profit desc, id asc); restricted to
/// `active` when non-empty.
std::vector<InstanceId> candidateOrder(const InstanceUniverse& universe,
                                       std::span<const InstanceId> active) {
  std::vector<InstanceId> order;
  if (active.empty()) {
    order.resize(static_cast<std::size_t>(universe.numInstances()));
    for (InstanceId i = 0; i < universe.numInstances(); ++i) {
      order[static_cast<std::size_t>(i)] = i;
    }
  } else {
    order.assign(active.begin(), active.end());
  }
  std::sort(order.begin(), order.end(), [&](InstanceId a, InstanceId b) {
    const double pa = universe.instance(a).profit;
    const double pb = universe.instance(b).profit;
    if (pa != pb) return pa > pb;
    return a < b;
  });
  return order;
}

/// Greedily adds every fitting candidate; returns profit gained.
double greedyFill(const InstanceUniverse& universe,
                  const std::vector<InstanceId>& order,
                  FeasibilityOracle& oracle, std::int32_t* added) {
  double gained = 0;
  for (const InstanceId i : order) {
    if (oracle.canAdd(i)) {
      oracle.add(i);
      gained += universe.instance(i).profit;
      if (added != nullptr) ++*added;
    }
  }
  return gained;
}

}  // namespace

LocalSearchResult improveSolution(const InstanceUniverse& universe,
                                  const Solution& start,
                                  std::int32_t maxPasses) {
  return improveSolutionRestricted(universe, start, {}, maxPasses);
}

LocalSearchResult improveSolutionRestricted(const InstanceUniverse& universe,
                                            const Solution& start,
                                            std::span<const InstanceId> active,
                                            std::int32_t maxPasses) {
  requireFeasible(universe, start);
  const std::vector<InstanceId> order = candidateOrder(universe, active);

  FeasibilityOracle oracle(universe);
  for (const InstanceId i : start.instances) {
    oracle.add(i);
  }

  LocalSearchResult result;
  bool improved = true;
  while (improved && result.passes < maxPasses) {
    improved = false;
    ++result.passes;

    // ADD moves: pure gain, always accepted.
    std::int32_t added = 0;
    if (greedyFill(universe, order, oracle, &added) > 0) {
      improved = true;
      result.addMoves += added;
    }

    // SWAP moves: for each member (ascending id for determinism), try
    // removing it and refilling; keep iff strictly better.
    const std::vector<InstanceId> members = [&] {
      std::vector<InstanceId> m = oracle.solution().instances;
      std::sort(m.begin(), m.end());
      return m;
    }();
    for (const InstanceId victim : members) {
      const double before = oracle.profit();
      oracle.remove(victim);
      std::vector<InstanceId> refill;
      for (const InstanceId i : order) {
        if (i == victim) continue;  // else the refill just re-adds it
        if (oracle.canAdd(i)) {
          oracle.add(i);
          refill.push_back(i);
        }
      }
      if (oracle.profit() > before + 1e-12) {
        improved = true;
        ++result.swapMoves;
      } else {
        // Revert: drop the refill, restore the victim.
        for (const InstanceId i : refill) {
          oracle.remove(i);
        }
        oracle.add(victim);
      }
    }
  }

  result.solution = oracle.solution();
  std::sort(result.solution.instances.begin(), result.solution.instances.end());
  result.profit = oracle.profit();
  checkThat(result.profit >= solutionProfit(universe, start) - 1e-9,
            "local search never degrades", __FILE__, __LINE__);
  return result;
}

}  // namespace treesched
