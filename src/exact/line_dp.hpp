// Exact dynamic program for the single-resource, unit-height, windowless
// line problem (the Figure 1 setting): classic weighted interval
// scheduling in O(m log m).
//
// Preconditions (checked): numResources == 1, all heights == 1, all
// windows tight (release + processing - 1 == deadline), so every demand
// has exactly one instance and "one instance per demand" is vacuous.
#pragma once

#include <vector>

#include "algo/assignments.hpp"
#include "core/line_problem.hpp"

namespace treesched {

struct LineDpResult {
  std::vector<LineAssignment> assignments;
  double profit = 0;
};

/// Throws CheckError when the preconditions fail.
LineDpResult lineDpExact(const LineProblem& problem);

}  // namespace treesched
