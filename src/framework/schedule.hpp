// Stage scheduling for phase 1 (paper §5, §6, §7 + PS baseline remark).
//
// Staged (this paper): epoch k processes group G_k in stages j = 1..b;
// stage j loops MIS+raise steps until every member is (1 - xi^j)-satisfied.
// After stage b >= log_xi(eps), all members are (1 - eps)-satisfied, so the
// framework's slackness is lambda = 1 - eps.
//   * Unit rule (§5):   xi = 2*Delta' / (2*Delta' + 1),  Delta' = Delta + 1
//     (Delta = 6 -> xi = 14/15; Delta = 3 -> xi = 8/9, exactly §5/§7).
//   * Narrow rule (§6): xi = K / (K + hmin) "for a suitable constant" — we
//     re-derive Claim 5.2 under the narrow raise: a kill contributes
//     >= 2*hmin*|pi|*delta >= 2*hmin*delta to the victim's LHS while
//     delta >= xi^j * p / (1 + 2*Delta^2); requiring the killer/victim
//     profit ratio >= 2 gives xi/(1-xi) >= (1 + 2*Delta^2)/hmin, i.e.
//     K = 1 + 2*Delta^2 (73 for trees, 19 for lines).
//
// Threshold (Panconesi–Sozio baseline, §5 Remark): one stage per epoch with
// the fixed target lambda = 1/(5 + eps); an instance that reaches it is
// ignored for the rest of phase 1.
#pragma once

#include <cstdint>

#include "framework/raise_policy.hpp"

namespace treesched {

enum class SchedulePolicy { Staged, Threshold };

/// Per-epoch stage plan: number of stages and each stage's satisfaction
/// target in [0, 1].
struct StagePlan {
  SchedulePolicy policy = SchedulePolicy::Staged;
  double xi = 0;                ///< staged decay factor (unused by Threshold)
  std::int32_t numStages = 1;   ///< b
  double lambdaTarget = 0;      ///< slackness guaranteed at end of phase 1

  /// Satisfaction target of stage j (1-based).
  double stageTarget(std::int32_t j) const;
};

/// Builds the plan. `delta` is the layering's critical-set size; `hmin`
/// is only read for RaiseRule::Narrow.
StagePlan makeStagePlan(SchedulePolicy policy, RaiseRule rule, double epsilon,
                        std::int32_t delta, double hmin);

/// Steps per stage of the fixed global schedule when not set explicitly:
/// c * log(pmax/pmin) with generous constants (Lemma 5.1 shows each stage
/// needs at most 1 + log2(pmax/pmin) maximal-MIS steps). Shared by the
/// centralized engine and the distributed protocol — the bit-identity
/// contract requires both to walk the same schedule.
std::int32_t fixedScheduleStepsPerStage(double profitMax, double profitMin);

}  // namespace treesched
