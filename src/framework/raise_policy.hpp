// Dual-raising rules of the two-phase framework.
//
// Unit rule (paper §3.2, used for unit-height and wide instances):
//   dual constraint  alpha(a_d) + sum_{e ~ d} beta(e) >= p(d)
//   slack            s = p(d) - lhs
//   raise            delta = s / (|pi(d)| + 1);
//                    alpha += delta, beta(e) += delta  for e in pi(d).
//
// Narrow rule (paper §6.1, for heights <= 1/2):
//   dual constraint  alpha(a_d) + h(d) * sum_{e ~ d} beta(e) >= p(d)
//   slack            s = p(d) - lhs
//   raise            delta = s / (1 + 2 h(d) |pi(d)|^2);
//                    alpha += delta, beta(e) += 2 |pi(d)| delta for e in pi(d).
//
// Both make the constraint exactly tight.
#pragma once

#include <span>

#include "core/universe.hpp"
#include "framework/dual_state.hpp"

namespace treesched {

enum class RaiseRule { Unit, Narrow };

/// LHS of the dual constraint of instance `i` under the given rule.
double dualLhs(RaiseRule rule, const InstanceUniverse& universe,
               const DualState& dual, InstanceId i);

/// Amounts by which one raise of `i` changes the duals.
struct RaiseAmounts {
  double alphaIncrement = 0;  ///< added to alpha(a_d)
  double betaIncrement = 0;   ///< added to beta(e) for every e in pi(d)
};

/// Computes the raise that tightens i's dual constraint. `critical` is
/// pi(i); `slack` must be the current positive slack p(i) - lhs(i).
RaiseAmounts computeRaise(RaiseRule rule, const InstanceUniverse& universe,
                          InstanceId i, std::span<const GlobalEdgeId> critical,
                          double slack);

/// Applies the raise to the dual state.
void applyRaise(DualState& dual, const InstanceUniverse& universe, InstanceId i,
                std::span<const GlobalEdgeId> critical,
                const RaiseAmounts& amounts);

}  // namespace treesched
