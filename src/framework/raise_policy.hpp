// Dual-raising rules of the two-phase framework.
//
// Unit rule (paper §3.2, used for unit-height and wide instances):
//   dual constraint  alpha(a_d) + sum_{e ~ d} beta(e) >= p(d)
//   slack            s = p(d) - lhs
//   raise            delta = s / (|pi(d)| + 1);
//                    alpha += delta, beta(e) += delta  for e in pi(d).
//
// Narrow rule (paper §6.1, for heights <= 1/2):
//   dual constraint  alpha(a_d) + h(d) * sum_{e ~ d} beta(e) >= p(d)
//   slack            s = p(d) - lhs
//   raise            delta = s / (1 + 2 h(d) |pi(d)|^2);
//                    alpha += delta, beta(e) += 2 |pi(d)| delta for e in pi(d).
//
// Both make the constraint exactly tight. The functions are templated
// on the universe type so the same single definition serves the static
// pool (`InstanceUniverse`) and the incrementally-maintained
// `DynamicUniverse` — a requirement of the online exactness discipline.
#pragma once

#include <span>

#include "core/universe.hpp"
#include "framework/dual_state.hpp"
#include "util/check.hpp"

namespace treesched {

enum class RaiseRule { Unit, Narrow };

/// LHS of the dual constraint of instance `i` under the given rule.
template <class U>
double dualLhs(RaiseRule rule, const U& universe, const DualState& dual,
               InstanceId i) {
  const InstanceRecord& rec = universe.instance(i);
  double betaSum = 0;
  for (const GlobalEdgeId e : universe.path(i)) {
    betaSum += dual.beta(e);
  }
  switch (rule) {
    case RaiseRule::Unit:
      return dual.alpha(rec.demand) + betaSum;
    case RaiseRule::Narrow:
      return dual.alpha(rec.demand) + rec.height * betaSum;
  }
  throw CheckError("unknown RaiseRule");
}

/// Amounts by which one raise of `i` changes the duals.
struct RaiseAmounts {
  double alphaIncrement = 0;  ///< added to alpha(a_d)
  double betaIncrement = 0;   ///< added to beta(e) for every e in pi(d)
};

/// Computes the raise that tightens i's dual constraint. `critical` is
/// pi(i); `slack` must be the current positive slack p(i) - lhs(i).
template <class U>
RaiseAmounts computeRaise(RaiseRule rule, const U& universe, InstanceId i,
                          std::span<const GlobalEdgeId> critical,
                          double slack) {
  checkThat(slack > 0, "raise requires positive slack", __FILE__, __LINE__);
  const double piSize = static_cast<double>(critical.size());
  RaiseAmounts amounts;
  switch (rule) {
    case RaiseRule::Unit: {
      const double delta = slack / (piSize + 1.0);
      amounts.alphaIncrement = delta;
      amounts.betaIncrement = delta;
      return amounts;
    }
    case RaiseRule::Narrow: {
      const double h = universe.instance(i).height;
      checkThat(isNarrow(h), "narrow rule applied to narrow instance",
                __FILE__, __LINE__);
      const double delta = slack / (1.0 + 2.0 * h * piSize * piSize);
      amounts.alphaIncrement = delta;
      amounts.betaIncrement = 2.0 * piSize * delta;
      return amounts;
    }
  }
  throw CheckError("unknown RaiseRule");
}

/// Applies the raise to the dual state.
template <class U>
void applyRaise(DualState& dual, const U& universe, InstanceId i,
                std::span<const GlobalEdgeId> critical,
                const RaiseAmounts& amounts) {
  dual.raiseAlpha(universe.instance(i).demand, amounts.alphaIncrement);
  for (const GlobalEdgeId e : critical) {
    dual.raiseBeta(e, amounts.betaIncrement);
  }
}

}  // namespace treesched
