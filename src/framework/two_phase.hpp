// The two-phase primal-dual engine (paper §3.2, pseudocode Figure 7).
//
// Phase 1 walks the layering's groups in epochs; each epoch runs the stage
// plan; each step computes a maximal independent set of the still-
// unsatisfied members (Luby), raises every member of the set so its dual
// constraint becomes tight, and pushes the set onto a stack. Phase 2 pops
// the stack and greedily builds a feasible solution.
//
// Any run satisfying the interference property with critical-set size
// Delta and slackness lambda is a (Delta+1)/lambda-approximation for the
// unit rule (Lemma 3.1) and a (2*Delta^2+1)/lambda-approximation for the
// narrow rule (Lemma 6.1). The engine certifies this per run: it reports
// val(alpha, beta) and the measured lambda, so
//   dualUpperBound = val / lambda_measured >= p(OPT)
// is a per-instance optimality certificate.
//
// This is the *centralized reference implementation* with exact round
// accounting; src/dist/ runs the same algorithm over simulated message
// passing and produces bit-identical results under fixedSchedule.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/solution.hpp"
#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "framework/raise_policy.hpp"
#include "framework/schedule.hpp"

namespace treesched {

/// Core algorithmic knobs of the two-phase engine (the "two-phase
/// config").
///
/// Legacy per-layer view: new code builds a layered SchedulerConfig
/// (policy/config.hpp) and projects with framework(); the one
/// field-by-field mapping lives there.
struct FrameworkConfig {
  double epsilon = 0.1;  ///< staged: lambda = 1-eps; threshold: 1/(5+eps)
  RaiseRule raise = RaiseRule::Unit;
  SchedulePolicy schedule = SchedulePolicy::Staged;
  double hmin = 1.0;       ///< min height, used by the narrow staged plan
  std::uint64_t seed = 1;  ///< drives MIS priorities (deterministic)
  /// MIS rounds allowed per step; <= 0 runs to completion (maximal).
  std::int32_t misRoundBudget = 0;
  /// Fixed global schedule (paper §5 "Distributed Implementation"): run
  /// exactly stepsPerStage steps per stage even when U empties early;
  /// required for bit-equivalence with the distributed simulator.
  bool fixedSchedule = false;
  /// Steps per stage under fixedSchedule; 0 derives c*log(pmax/pmin).
  std::int32_t stepsPerStage = 0;
  /// Safety valve: a stage exceeding this many steps throws (logic bug).
  std::int32_t stepCap = 100000;
};

struct TwoPhaseStats {
  std::int32_t epochs = 0;
  std::int32_t stages = 0;
  std::int64_t steps = 0;
  std::int64_t misRounds = 0;
  std::int64_t raises = 0;
  std::int32_t maxStepsInStage = 0;  ///< Lemma 5.1 measures this
  std::int32_t delta = 0;            ///< layering critical-set size
  double lambdaTarget = 0;
  double lambdaMeasured = 0;  ///< min over instances of lhs/p after phase 1
};

struct TwoPhaseResult {
  Solution solution;
  double profit = 0;
  double dualObjective = 0;   ///< val(alpha, beta)
  double dualUpperBound = 0;  ///< val / lambdaMeasured >= p(OPT)
  TwoPhaseStats stats;
  /// Phase-1 stack in push order (each entry one independent set); kept
  /// for tests and for the approximation-bound audit.
  std::vector<std::vector<InstanceId>> stack;
};

/// Runs both phases. `universe` must have conflicts built; `layering`
/// must satisfy the interference property for the guarantees to hold.
///
/// This is, by definition, a one-line wrapper over runTwoPhaseRestricted
/// with `active` = every instance of the universe (ascending). The
/// restricted entry point is the primitive of the whole family — the
/// distributed warm-start protocol, the online incremental engine and
/// the policy registry (policy/registry.hpp) all solve restrictions of
/// it — and this wrapper is the full-universe special case, kept as the
/// ergonomic front door.
TwoPhaseResult runTwoPhase(const InstanceUniverse& universe,
                           const Layering& layering,
                           const FrameworkConfig& config);

/// Restricted run for the online subsystem (src/online/): phase 1 raises
/// only the instances in `active` (sorted ascending) and lambda is
/// measured over them alone; every other instance is invisible to the
/// run. With `active` spanning the whole universe this is exactly
/// runTwoPhase — and, under fixedSchedule, bit-identical to the
/// distributed warm-start entry point (dist/protocol.hpp) on the same
/// restriction, which is how the online equivalence gate compares an
/// incremental epoch against the from-scratch solve on the surviving
/// demand set.
TwoPhaseResult runTwoPhaseRestricted(const InstanceUniverse& universe,
                                     const Layering& layering,
                                     const FrameworkConfig& config,
                                     std::span<const InstanceId> active);

/// Worst-case approximation factor certified by Lemma 3.1 / Lemma 6.1 for
/// the given rule, Delta and lambda.
double approximationBound(RaiseRule rule, std::int32_t delta, double lambda);

}  // namespace treesched
