#include "framework/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace treesched {

double StagePlan::stageTarget(std::int32_t j) const {
  switch (policy) {
    case SchedulePolicy::Staged:
      return 1.0 - std::pow(xi, j);
    case SchedulePolicy::Threshold:
      return lambdaTarget;
  }
  throw CheckError("unknown SchedulePolicy");
}

StagePlan makeStagePlan(SchedulePolicy policy, RaiseRule rule, double epsilon,
                        std::int32_t delta, double hmin) {
  checkThat(epsilon > 0 && epsilon < 1, "epsilon in (0,1)", __FILE__, __LINE__);
  checkThat(delta >= 1, "delta >= 1", __FILE__, __LINE__);
  StagePlan plan;
  plan.policy = policy;
  if (policy == SchedulePolicy::Threshold) {
    plan.numStages = 1;
    plan.lambdaTarget = 1.0 / (5.0 + epsilon);
    return plan;
  }
  switch (rule) {
    case RaiseRule::Unit: {
      const double deltaPrime = static_cast<double>(delta) + 1.0;
      plan.xi = (2.0 * deltaPrime) / (2.0 * deltaPrime + 1.0);
      break;
    }
    case RaiseRule::Narrow: {
      checkThat(hmin > 0 && hmin <= 0.5, "hmin in (0, 1/2] for narrow rule",
                __FILE__, __LINE__);
      const double k = 1.0 + 2.0 * static_cast<double>(delta) *
                                 static_cast<double>(delta);
      plan.xi = k / (k + hmin);
      break;
    }
  }
  // Smallest b with xi^b <= epsilon.
  plan.numStages = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(
             std::ceil(std::log(epsilon) / std::log(plan.xi))));
  plan.lambdaTarget = 1.0 - epsilon;
  return plan;
}

std::int32_t fixedScheduleStepsPerStage(double profitMax, double profitMin) {
  const double spread = std::max(2.0, profitMax / profitMin);
  return 4 + 2 * static_cast<std::int32_t>(std::ceil(std::log2(spread)));
}

}  // namespace treesched
