#include "framework/dual_state.hpp"

namespace treesched {

double DualState::objective() const {
  double total = 0;
  for (const double a : alpha_) total += a;
  for (const double b : beta_) total += b;
  return total;
}

}  // namespace treesched
