// Incrementally maintained dual-constraint LHS per instance.
//
// A raise touches only the instances that share the raised demand or a
// raised critical edge; the universe indexes both, so updating costs
// O(|Inst(a)| + sum over raised edges of |instancesOnEdge|) instead of a
// full rescan. Used by the two-phase engine and the sequential algorithm.
// Templated on the universe type: over a `DynamicUniverse` the edge and
// demand indexes enumerate live instances only, which is exactly the
// restriction of the pool-wide update to the live id set.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/universe.hpp"
#include "framework/raise_policy.hpp"
#include "util/check.hpp"

namespace treesched {

// The single definition of the dual-constraint LHS update rule, shared
// by the LhsTracker below and the online incremental solver (which
// applies raises with sign -1 when purging departed demands). Keeping
// one copy is what makes the online "purge exactly" invariant safe
// against future raise-rule changes.

/// Adds `by` to the LHS of every instance of demand `d` (alpha part).
template <class U>
void applyAlphaToLhs(const U& universe, DemandId d, double by,
                     std::vector<double>& lhs) {
  for (const InstanceId i : universe.instancesOfDemand(d)) {
    lhs[static_cast<std::size_t>(i)] += by;
  }
}

/// Adds `by` (times the Narrow-rule height factor) to the LHS of every
/// instance on global edge `e` (beta part).
template <class U>
void applyBetaToLhs(const U& universe, RaiseRule rule, GlobalEdgeId e,
                    double by, std::vector<double>& lhs) {
  for (const InstanceId i : universe.instancesOnEdge(e)) {
    const double factor =
        rule == RaiseRule::Narrow ? universe.instance(i).height : 1.0;
    lhs[static_cast<std::size_t>(i)] += factor * by;
  }
}

template <class U>
class BasicLhsTracker {
 public:
  BasicLhsTracker(const U& universe, RaiseRule rule)
      : universe_(universe),
        rule_(rule),
        lhs_(static_cast<std::size_t>(universe.numInstances()), 0.0) {}

  double lhs(InstanceId i) const { return lhs_[static_cast<std::size_t>(i)]; }

  /// Warm-starts the tracker from prior per-instance values (the online
  /// incremental re-solver's surviving duals); `values` must cover every
  /// instance of the universe.
  void preload(std::span<const double> values) {
    checkThat(values.size() == lhs_.size(), "preload covers every instance",
              __FILE__, __LINE__);
    std::copy(values.begin(), values.end(), lhs_.begin());
  }

  void onAlphaRaise(DemandId d, double by) {
    applyAlphaToLhs(universe_, d, by, lhs_);
  }

  void onBetaRaise(GlobalEdgeId e, double by) {
    applyBetaToLhs(universe_, rule_, e, by, lhs_);
  }

  /// Applies a computed raise of instance `i` (alpha + its critical edges).
  void onRaise(InstanceId i, std::span<const GlobalEdgeId> critical,
               const RaiseAmounts& amounts) {
    onAlphaRaise(universe_.instance(i).demand, amounts.alphaIncrement);
    for (const GlobalEdgeId e : critical) {
      onBetaRaise(e, amounts.betaIncrement);
    }
  }

 private:
  const U& universe_;
  RaiseRule rule_;
  std::vector<double> lhs_;
};

using LhsTracker = BasicLhsTracker<InstanceUniverse>;

}  // namespace treesched
