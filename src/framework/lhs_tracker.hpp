// Incrementally maintained dual-constraint LHS per instance.
//
// A raise touches only the instances that share the raised demand or a
// raised critical edge; the universe indexes both, so updating costs
// O(|Inst(a)| + sum over raised edges of |instancesOnEdge|) instead of a
// full rescan. Used by the two-phase engine and the sequential algorithm.
#pragma once

#include <vector>

#include "core/universe.hpp"
#include "framework/raise_policy.hpp"

namespace treesched {

class LhsTracker {
 public:
  LhsTracker(const InstanceUniverse& universe, RaiseRule rule)
      : universe_(universe),
        rule_(rule),
        lhs_(static_cast<std::size_t>(universe.numInstances()), 0.0) {}

  double lhs(InstanceId i) const { return lhs_[static_cast<std::size_t>(i)]; }

  void onAlphaRaise(DemandId d, double by) {
    for (const InstanceId i : universe_.instancesOfDemand(d)) {
      lhs_[static_cast<std::size_t>(i)] += by;
    }
  }

  void onBetaRaise(GlobalEdgeId e, double by) {
    for (const InstanceId i : universe_.instancesOnEdge(e)) {
      const double factor =
          rule_ == RaiseRule::Narrow ? universe_.instance(i).height : 1.0;
      lhs_[static_cast<std::size_t>(i)] += factor * by;
    }
  }

  /// Applies a computed raise of instance `i` (alpha + its critical edges).
  void onRaise(InstanceId i, std::span<const GlobalEdgeId> critical,
               const RaiseAmounts& amounts) {
    onAlphaRaise(universe_.instance(i).demand, amounts.alphaIncrement);
    for (const GlobalEdgeId e : critical) {
      onBetaRaise(e, amounts.betaIncrement);
    }
  }

 private:
  const InstanceUniverse& universe_;
  RaiseRule rule_;
  std::vector<double> lhs_;
};

}  // namespace treesched
