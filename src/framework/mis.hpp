// Maximal independent set on the conflict graph — Luby's algorithm [14].
//
// Each round, every undecided instance draws a priority that is a pure
// function of (seed, round, instance id); local maxima join the MIS and
// their neighbours drop out. Because priorities are seed-keyed hashes (not
// stateful RNG draws), the centralized engine and the message-passing
// simulator compute byte-identical independent sets — the round count here
// is exactly the number of communication rounds the protocol would take.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/universe.hpp"

namespace treesched {

struct MisResult {
  std::vector<InstanceId> independent;  ///< ascending instance ids
  std::int32_t rounds = 0;              ///< Luby rounds executed
  bool complete = true;  ///< false if the round budget expired with
                         ///< undecided vertices (set is still independent,
                         ///< possibly not maximal)
};

/// Priority of instance `i` in `round` under `seed`. Ties are broken by
/// instance id (compare (priority, id) lexicographically).
std::uint64_t misPriority(std::uint64_t seed, std::int32_t round, InstanceId i);

/// Runs Luby's MIS on the conflict subgraph induced by `active`.
/// `universe.buildConflicts()` must have been called. `roundBudget <= 0`
/// runs to completion (always maximal).
MisResult lubyMis(const InstanceUniverse& universe,
                  std::span<const InstanceId> active, std::uint64_t seed,
                  std::int32_t roundBudget = 0);

/// Checks independence + maximality within `active`; returns empty string
/// when valid (test helper).
std::string checkMis(const InstanceUniverse& universe,
                     std::span<const InstanceId> active,
                     std::span<const InstanceId> mis);

}  // namespace treesched
