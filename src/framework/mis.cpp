#include "framework/mis.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {

std::uint64_t misPriority(std::uint64_t seed, std::int32_t round,
                          InstanceId i) {
  return keyedHash(seed, 0x4d495350u /*'MISP'*/,
                   static_cast<std::uint64_t>(round),
                   static_cast<std::uint64_t>(i));
}

namespace {

enum class Status : std::uint8_t { Inactive, Undecided, In, Out };

}  // namespace

MisResult lubyMis(const InstanceUniverse& universe,
                  std::span<const InstanceId> active, std::uint64_t seed,
                  std::int32_t roundBudget) {
  checkThat(universe.conflictsBuilt(), "conflicts built before MIS", __FILE__,
            __LINE__);
  MisResult result;
  if (active.empty()) return result;

  std::vector<Status> status(static_cast<std::size_t>(universe.numInstances()),
                             Status::Inactive);
  for (const InstanceId i : active) {
    status[static_cast<std::size_t>(i)] = Status::Undecided;
  }

  std::vector<InstanceId> undecided(active.begin(), active.end());
  std::vector<InstanceId> joiners;
  while (!undecided.empty() &&
         (roundBudget <= 0 || result.rounds < roundBudget)) {
    ++result.rounds;
    joiners.clear();
    for (const InstanceId v : undecided) {
      const std::uint64_t pv = misPriority(seed, result.rounds, v);
      bool isLocalMax = true;
      for (const InstanceId w : universe.conflictsOf(v)) {
        if (status[static_cast<std::size_t>(w)] != Status::Undecided) continue;
        const std::uint64_t pw = misPriority(seed, result.rounds, w);
        // Lexicographic (priority, id) comparison; ids differ, so there
        // are no ties and exactly one of each conflicting pair can win.
        if (pw > pv || (pw == pv && w > v)) {
          isLocalMax = false;
          break;
        }
      }
      if (isLocalMax) {
        joiners.push_back(v);
      }
    }
    for (const InstanceId v : joiners) {
      status[static_cast<std::size_t>(v)] = Status::In;
      result.independent.push_back(v);
      for (const InstanceId w : universe.conflictsOf(v)) {
        if (status[static_cast<std::size_t>(w)] == Status::Undecided) {
          status[static_cast<std::size_t>(w)] = Status::Out;
        }
      }
    }
    std::erase_if(undecided, [&](InstanceId v) {
      return status[static_cast<std::size_t>(v)] != Status::Undecided;
    });
  }
  result.complete = undecided.empty();
  std::sort(result.independent.begin(), result.independent.end());
  return result;
}

std::string checkMis(const InstanceUniverse& universe,
                     std::span<const InstanceId> active,
                     std::span<const InstanceId> mis) {
  std::vector<bool> inMis(static_cast<std::size_t>(universe.numInstances()),
                          false);
  for (const InstanceId i : mis) {
    inMis[static_cast<std::size_t>(i)] = true;
  }
  for (const InstanceId i : mis) {
    for (const InstanceId j : mis) {
      if (i < j && universe.conflicting(i, j)) {
        std::ostringstream os;
        os << "MIS not independent: " << i << " conflicts " << j;
        return os.str();
      }
    }
  }
  for (const InstanceId v : active) {
    if (inMis[static_cast<std::size_t>(v)]) continue;
    bool dominated = false;
    for (const InstanceId w : universe.conflictsOf(v)) {
      if (inMis[static_cast<std::size_t>(w)]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      std::ostringstream os;
      os << "MIS not maximal: active " << v << " undominated";
      return os.str();
    }
  }
  return {};
}

}  // namespace treesched
