// Dual variables of the packing LP (paper §3.1 / §6.1).
//
// alpha(a) per demand, beta(e) per global edge. The primal-dual framework
// only ever *raises* these (monotonically from 0); the objective
// val(alpha, beta) = sum alpha + sum beta upper-bounds lambda * OPT by weak
// duality once every instance is lambda-satisfied.
#pragma once

#include <vector>

#include "core/universe.hpp"

namespace treesched {

class DualState {
 public:
  /// Accepts any universe shape (InstanceUniverse or DynamicUniverse):
  /// only the demand and global-edge counts matter, and both are
  /// pool-level constants under churn.
  template <class U>
  explicit DualState(const U& universe)
      : alpha_(static_cast<std::size_t>(universe.numDemands()), 0.0),
        beta_(static_cast<std::size_t>(universe.numGlobalEdges()), 0.0) {}

  double alpha(DemandId d) const { return alpha_[static_cast<std::size_t>(d)]; }
  double beta(GlobalEdgeId e) const {
    return beta_[static_cast<std::size_t>(e)];
  }

  void raiseAlpha(DemandId d, double by) {
    alpha_[static_cast<std::size_t>(d)] += by;
  }
  void raiseBeta(GlobalEdgeId e, double by) {
    beta_[static_cast<std::size_t>(e)] += by;
  }

  /// Overwrites (used by the distributed simulator when adopting received
  /// values; raises are idempotent there because values only grow).
  void setBeta(GlobalEdgeId e, double value) {
    beta_[static_cast<std::size_t>(e)] = value;
  }

  /// val(alpha, beta) = sum of all dual variables.
  double objective() const;

  std::size_t numDemands() const { return alpha_.size(); }
  std::size_t numEdges() const { return beta_.size(); }

 private:
  std::vector<double> alpha_;
  std::vector<double> beta_;
};

}  // namespace treesched
