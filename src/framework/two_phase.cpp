#include "framework/two_phase.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/tolerances.hpp"
#include "framework/lhs_tracker.hpp"
#include "framework/mis.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {

double approximationBound(RaiseRule rule, std::int32_t delta, double lambda) {
  checkThat(lambda > 0, "lambda positive", __FILE__, __LINE__);
  switch (rule) {
    case RaiseRule::Unit:
      return (static_cast<double>(delta) + 1.0) / lambda;
    case RaiseRule::Narrow:
      return (2.0 * static_cast<double>(delta) * static_cast<double>(delta) +
              1.0) /
             lambda;
  }
  throw CheckError("unknown RaiseRule");
}

TwoPhaseResult runTwoPhase(const InstanceUniverse& universe,
                           const Layering& layering,
                           const FrameworkConfig& config) {
  std::vector<InstanceId> all(
      static_cast<std::size_t>(universe.numInstances()));
  for (InstanceId i = 0; i < universe.numInstances(); ++i) {
    all[static_cast<std::size_t>(i)] = i;
  }
  return runTwoPhaseRestricted(universe, layering, config, all);
}

TwoPhaseResult runTwoPhaseRestricted(const InstanceUniverse& universe,
                                     const Layering& layering,
                                     const FrameworkConfig& config,
                                     std::span<const InstanceId> active) {
  checkThat(universe.conflictsBuilt(), "conflicts built before runTwoPhase",
            __FILE__, __LINE__);
  TwoPhaseResult result;
  const std::int32_t numInst = universe.numInstances();
  result.stats.delta = layering.maxCriticalSize;
  if (numInst == 0) {
    result.stats.lambdaTarget = 1.0;
    result.stats.lambdaMeasured = 1.0;
    return result;
  }

  const StagePlan plan =
      makeStagePlan(config.schedule, config.raise, config.epsilon,
                    std::max<std::int32_t>(1, layering.maxCriticalSize),
                    config.hmin);
  result.stats.lambdaTarget = plan.lambdaTarget;

  // Group membership lists (epoch k processes group k) over the active
  // restriction only; `active` must be ascending so the member lists come
  // out in the same order a full enumeration would produce.
  std::vector<std::vector<InstanceId>> members(
      static_cast<std::size_t>(layering.numGroups));
  for (std::size_t idx = 0; idx < active.size(); ++idx) {
    const InstanceId i = active[idx];
    checkIndex(i, numInst, "restricted active instance");
    checkThat(idx == 0 || active[idx - 1] < i,
              "restricted active set sorted ascending", __FILE__, __LINE__);
    const auto g = static_cast<std::size_t>(
        layering.group[static_cast<std::size_t>(i)]);
    members[g].push_back(i);
  }

  DualState dual(universe);
  LhsTracker lhs(universe, config.raise);

  std::int32_t stepsPerStage = config.stepsPerStage;
  if (config.fixedSchedule && stepsPerStage == 0) {
    stepsPerStage =
        fixedScheduleStepsPerStage(universe.profitMax(), universe.profitMin());
  }

  std::vector<InstanceId> unsatisfied;
  // ---- Phase 1 ----
  for (std::int32_t epoch = 0; epoch < layering.numGroups; ++epoch) {
    ++result.stats.epochs;
    const auto& group = members[static_cast<std::size_t>(epoch)];
    for (std::int32_t stage = 1; stage <= plan.numStages; ++stage) {
      ++result.stats.stages;
      const double target = plan.stageTarget(stage);
      std::int32_t stepsThisStage = 0;
      for (std::int32_t step = 1;; ++step) {
        if (config.fixedSchedule && step > stepsPerStage) break;
        checkThat(step <= config.stepCap,
                  "stage exceeded step cap (non-termination bug?)", __FILE__,
                  __LINE__);
        unsatisfied.clear();
        for (const InstanceId i : group) {
          const double p = universe.instance(i).profit;
          if (lhs.lhs(i) < target * p - kSatisfyTolerance * p) {
            unsatisfied.push_back(i);
          }
        }
        if (unsatisfied.empty()) {
          if (!config.fixedSchedule) break;
          // Fixed schedule: the step happens (and costs rounds in the
          // simulator) but contributes nothing; skip the MIS locally.
          continue;
        }
        ++stepsThisStage;
        ++result.stats.steps;
        const std::uint64_t stepSeed =
            keyedHash(config.seed, static_cast<std::uint64_t>(epoch),
                      static_cast<std::uint64_t>(stage),
                      static_cast<std::uint64_t>(step));
        const MisResult mis = lubyMis(universe, unsatisfied, stepSeed,
                                      config.misRoundBudget);
        result.stats.misRounds += mis.rounds;
        for (const InstanceId i : mis.independent) {
          const InstanceRecord& rec = universe.instance(i);
          const double slack = rec.profit - lhs.lhs(i);
          checkThat(slack > 0, "raised instance had positive slack", __FILE__,
                    __LINE__);
          const auto critical = layering.critical(i);
          const RaiseAmounts amounts =
              computeRaise(config.raise, universe, i, critical, slack);
          applyRaise(dual, universe, i, critical, amounts);
          lhs.onAlphaRaise(rec.demand, amounts.alphaIncrement);
          for (const GlobalEdgeId e : critical) {
            lhs.onBetaRaise(e, amounts.betaIncrement);
          }
          ++result.stats.raises;
        }
        if (!mis.independent.empty()) {
          result.stack.push_back(mis.independent);
        }
      }
      result.stats.maxStepsInStage =
          std::max(result.stats.maxStepsInStage, stepsThisStage);
    }
  }

  // Measured slackness: min over the active instances of lhs / p (an
  // empty restriction is vacuously fully slack, matching the distributed
  // engine's measureSlackness()).
  double lambdaMeasured = std::numeric_limits<double>::infinity();
  for (const InstanceId i : active) {
    lambdaMeasured =
        std::min(lambdaMeasured, lhs.lhs(i) / universe.instance(i).profit);
  }
  if (active.empty()) lambdaMeasured = 1.0;
  result.stats.lambdaMeasured = lambdaMeasured;
  result.dualObjective = dual.objective();
  result.dualUpperBound =
      lambdaMeasured > 0 ? result.dualObjective / lambdaMeasured
                         : std::numeric_limits<double>::infinity();

  // ---- Phase 2 ----
  FeasibilityOracle oracle(universe);
  for (auto it = result.stack.rbegin(); it != result.stack.rend(); ++it) {
    for (const InstanceId i : *it) {
      if (oracle.canAdd(i)) {
        oracle.add(i);
      }
    }
  }
  result.solution = oracle.solution();
  result.profit = oracle.profit();
  return result;
}

}  // namespace treesched
