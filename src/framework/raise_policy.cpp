#include "framework/raise_policy.hpp"

#include "util/check.hpp"

namespace treesched {

double dualLhs(RaiseRule rule, const InstanceUniverse& universe,
               const DualState& dual, InstanceId i) {
  const InstanceRecord& rec = universe.instance(i);
  double betaSum = 0;
  for (const GlobalEdgeId e : universe.path(i)) {
    betaSum += dual.beta(e);
  }
  switch (rule) {
    case RaiseRule::Unit:
      return dual.alpha(rec.demand) + betaSum;
    case RaiseRule::Narrow:
      return dual.alpha(rec.demand) + rec.height * betaSum;
  }
  throw CheckError("unknown RaiseRule");
}

RaiseAmounts computeRaise(RaiseRule rule, const InstanceUniverse& universe,
                          InstanceId i, std::span<const GlobalEdgeId> critical,
                          double slack) {
  checkThat(slack > 0, "raise requires positive slack", __FILE__, __LINE__);
  const double piSize = static_cast<double>(critical.size());
  RaiseAmounts amounts;
  switch (rule) {
    case RaiseRule::Unit: {
      const double delta = slack / (piSize + 1.0);
      amounts.alphaIncrement = delta;
      amounts.betaIncrement = delta;
      return amounts;
    }
    case RaiseRule::Narrow: {
      const double h = universe.instance(i).height;
      checkThat(isNarrow(h), "narrow rule applied to narrow instance",
                __FILE__, __LINE__);
      const double delta = slack / (1.0 + 2.0 * h * piSize * piSize);
      amounts.alphaIncrement = delta;
      amounts.betaIncrement = 2.0 * piSize * delta;
      return amounts;
    }
  }
  throw CheckError("unknown RaiseRule");
}

void applyRaise(DualState& dual, const InstanceUniverse& universe, InstanceId i,
                std::span<const GlobalEdgeId> critical,
                const RaiseAmounts& amounts) {
  dual.raiseAlpha(universe.instance(i).demand, amounts.alphaIncrement);
  for (const GlobalEdgeId e : critical) {
    dual.raiseBeta(e, amounts.betaIncrement);
  }
}

}  // namespace treesched
