// Flat message plane: the allocation-free inbox hot path.
//
// The first-generation transports kept one std::vector<Message> mailbox
// per processor and re-sorted each of them every round — at production
// scale that is millions of small heap allocations and cache-hostile
// scattered mailboxes. The MessagePlane replaces all of them with one
// preallocated flat buffer per role:
//
//  * Staging is structure-of-arrays (kind / from / instance / value
//    columns plus a destination column): a broadcast fan-out appends one
//    row per (neighbour, message) with no per-mailbox allocation.
//  * deliver() runs a stable counting sort on the destination column
//    (engine/collate.hpp — touched destinations only, so a silent round
//    costs O(1)) and then sorts each destination's contiguous segment
//    into the canonical (sender, instance) order the Transport contract
//    requires. Segment sorts are independent, so an attached
//    ParallelRunner spreads them across the thread pool.
//  * inbox(p) is a zero-copy span into the flat delivery buffer.
//
// Every buffer is reused round over round: after warmup the plane
// performs zero heap allocations regardless of traffic. growthEvents()
// and lastGrowthRound() make that measurable — bench_parallel reports
// them, and the CI smoke keeps the claim honest.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dist/message.hpp"
#include "engine/collate.hpp"
#include "engine/parallel_runner.hpp"

namespace treesched {

struct NetworkStats;

class MessagePlane {
 public:
  explicit MessagePlane(std::int32_t numProcessors);

  std::int32_t numProcessors() const { return index_.numKeys(); }

  /// Optional thread pool for the per-destination segment sorts; nullptr
  /// (the default) sorts serially. The runner must outlive the plane or
  /// be detached with attachRunner(nullptr).
  void attachRunner(ParallelRunner* runner) { runner_ = runner; }

  /// Appends one (destination, message) row to the staging columns.
  void stage(std::int32_t dest, const Message& message);

  /// Queues a broadcast fan-out: one staged row per destination, expanded
  /// at the round boundary. `dests` must stay valid (and unchanged) until
  /// deliver() — transports pass their adjacency lists, which only mutate
  /// between rounds. With a runner attached the expansion runs as a
  /// parallel section whose shards write disjoint precomputed row ranges
  /// (owned slots, merged by position — never by thread completion
  /// order), so the staged rows are exactly the serial expansion and the
  /// bit-identity gates stay green. This removes the serial per-neighbour
  /// staging loop from the transports' broadcast hot path.
  void stageFanout(const Message& message,
                   std::span<const std::int32_t> dests);

  bool hasStaged() const {
    return !stageDest_.empty() || !fanouts_.empty();
  }
  std::int64_t stagedCount() const {
    return static_cast<std::int64_t>(stageDest_.size()) + fanoutRows_;
  }

  /// The round boundary: counting-sorts the staged rows by destination,
  /// canonically sorts every destination segment, and publishes the
  /// result as the new inboxes (previous inboxes are discarded). Clears
  /// the staging columns.
  void deliver();

  /// Empties every inbox without delivering (silent rounds). Staging must
  /// be empty — the caller checks, because dropping staged messages would
  /// violate the Transport contract.
  void clearInboxes();

  /// Messages delivered to `p` by the last deliver(), canonically sorted.
  std::span<const Message> inbox(std::int32_t p) const {
    const std::int32_t length = index_.length(p);
    if (length == 0) {
      return {};
    }
    return {delivered_.data() + index_.begin(p),
            static_cast<std::size_t>(length)};
  }

  /// Destinations with a non-empty inbox after the last deliver(),
  /// ascending. The O(active) alternative to scanning every processor.
  std::span<const std::int32_t> activeDests() const {
    return index_.touched();
  }

  /// Messages delivered by the last deliver().
  std::int64_t deliveredCount() const { return index_.total(); }

  /// Per-kind message counts of the last deliver() — lets transports
  /// account payload in O(#kinds) instead of re-scanning every message.
  const std::array<std::int64_t, kMessageKindCount>& kindCounts() const {
    return kindCount_;
  }

  std::int64_t rounds() const { return rounds_; }

  // ---- Allocation accounting (the bench-tracked hot-loop guarantee) ----
  std::int64_t growthEvents() const { return growthEvents_; }
  /// Round index (0-based deliver() count) of the last buffer growth;
  /// -1 if no buffer ever grew. Steady state == all rounds past this one.
  std::int64_t lastGrowthRound() const { return lastGrowthRound_; }
  std::int64_t capacityBytes() const;

 private:
  /// One queued broadcast fan-out: the message plus a borrowed view of
  /// its destination list.
  struct PendingFanout {
    Message message;
    const std::int32_t* dests = nullptr;
    std::int32_t count = 0;
  };

  void noteGrowth() {
    ++growthEvents_;
    lastGrowthRound_ = rounds_;
  }

  /// Expands every queued fan-out into staging rows (parallel when a
  /// runner is attached); called first by deliver().
  void expandFanouts();

  ParallelRunner* runner_ = nullptr;

  // Staging columns (SoA), appended in broadcast order within a round.
  std::vector<std::int32_t> stageDest_;
  std::vector<MessageKind> stageKind_;
  std::vector<std::int32_t> stageFrom_;
  std::vector<std::int32_t> stageInstance_;
  std::vector<double> stageValue_;

  // Deferred broadcast fan-outs (expanded at the round boundary) and the
  // per-fanout row offsets of the expansion (prefix sums, reused).
  std::vector<PendingFanout> fanouts_;
  std::vector<std::int64_t> fanoutOffset_;
  std::int64_t fanoutRows_ = 0;

  // Delivery state: per-destination segments of one flat buffer (which
  // never shrinks; the index's total() is the live prefix).
  std::vector<Message> delivered_;
  CollationIndex index_;

  std::array<std::int64_t, kMessageKindCount> kindCount_{};

  std::int64_t rounds_ = 0;
  std::int64_t growthEvents_ = 0;
  std::int64_t lastGrowthRound_ = -1;
};

/// Folds the plane's last deliver() into a transport's round accounting:
/// busy-round flag, message count, per-kind payload, max message size,
/// and the plane's allocation counters. Shared by SimNetwork and
/// AlphaSynchronizer so their accounting can never drift apart.
void accountPlaneRound(NetworkStats& stats, const MessagePlane& plane);

}  // namespace treesched
