// Fixed thread pool executing shard groups with deterministic merges.
//
// The §5 protocol is embarrassingly parallel across processors within a
// round: every per-processor decision reads only the previous round's
// state (inboxes, statuses) and writes only processor-owned slots. The
// ParallelRunner exploits exactly that shape: a parallel section cuts an
// index range into contiguous shards, each participant (worker threads
// plus the calling thread) owns a contiguous block of shards it pops
// from the front, and a participant whose block runs dry steals single
// shards from the BACK of another participant's block — so one hot
// shard no longer leaves the rest of the pool idle. forShards() returns
// only when every shard has completed — the deterministic round barrier.
//
// Determinism contract: a section's callback must confine writes to
// shard-owned slots (disjoint elements, or per-shard output buffers the
// caller concatenates BY SHARD ID after the barrier, never by thread
// completion order). Under that discipline the result of a run is a pure
// function of the inputs — bit-identical at any thread count, including
// the serial threads=1 path, because every floating-point accumulation
// still happens in the same per-owner sequence. The shard partition and
// the claim order (owned pop vs. steal) are pure performance knobs: they
// can depend on the thread count and on runtime timing precisely because
// no callback result depends on which shard (or thread) computed it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace treesched {

class Counter;
class MetricsRegistry;
class Tracer;

/// Non-owning callable reference (avoids std::function heap traffic in
/// the round hot loop). The referenced callable must outlive the call —
/// forShards() completes synchronously, so passing a temporary lambda at
/// the call site is fine.
class ShardFn {
 public:
  template <typename F>
  ShardFn(F&& f)  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* object, std::int32_t shard) {
          (*static_cast<std::remove_reference_t<F>*>(object))(shard);
        }) {}

  void operator()(std::int32_t shard) const { call_(object_, shard); }

 private:
  void* object_;
  void (*call_)(void*, std::int32_t);
};

class ParallelRunner {
 public:
  /// Spawns `threads - 1` workers (the calling thread participates in
  /// every section). threads <= 1 spawns nothing: every section runs
  /// inline, which IS the serial engine.
  explicit ParallelRunner(std::int32_t threads = 1);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  std::int32_t threads() const { return threads_; }

  /// A partition of [0, count) into contiguous shards. Shards cover the
  /// range exactly, in order: shard s spans [begin(s), end(s)). Uniform
  /// plans encode the partition as a stride; weighted plans carry
  /// explicit boundaries in `bounds` (numShards + 1 entries).
  struct ShardPlan {
    std::int64_t count = 0;
    std::int64_t shardSize = 1;
    std::int32_t numShards = 0;
    std::vector<std::int64_t> bounds;  ///< empty for uniform plans

    std::int64_t begin(std::int32_t shard) const {
      return bounds.empty()
                 ? static_cast<std::int64_t>(shard) * shardSize
                 : bounds[static_cast<std::size_t>(shard)];
    }
    std::int64_t end(std::int32_t shard) const {
      if (!bounds.empty()) {
        return bounds[static_cast<std::size_t>(shard) + 1];
      }
      const std::int64_t e = begin(shard) + shardSize;
      return e < count ? e : count;
    }
  };

  /// Plans shards for `count` items: enough shards per thread that claim
  /// order balances load, but never shards smaller than a minimum grain.
  ShardPlan plan(std::int64_t count) const;

  /// Plans shards for weights.size() items so each shard carries roughly
  /// equal total weight (weights clamped to >= 1): a single heavy item
  /// gets its own shard instead of serializing its neighbors' claim.
  /// Writes into `out` (clearing previous contents) so a caller reusing
  /// one scratch plan allocates nothing in steady state — the boundary
  /// vector is grow-only. The partition is a pure performance knob; see
  /// the determinism contract above.
  void planWeighted(std::span<const std::int64_t> weights,
                    ShardPlan& out) const;

  /// Runs fn(shard) for every shard of `plan` and returns after ALL have
  /// completed (the barrier). The first exception thrown by any shard is
  /// rethrown here after the barrier.
  void forShards(const ShardPlan& plan, ShardFn fn);

  /// Shards executed by their owning participant / stolen from another
  /// participant's block, summed over the runner's lifetime. Plain
  /// accessors so benches can report claim traffic without attaching
  /// telemetry (protecting their heap-allocation ground truth).
  std::int64_t claims() const {
    return claimsTotal_.load(std::memory_order_relaxed);
  }
  std::int64_t steals() const {
    return stealsTotal_.load(std::memory_order_relaxed);
  }

  /// Attaches telemetry (nullptr detaches). With a live tracer every
  /// parallel section emits one "shard" span per shard on trace tid
  /// `shard + 1` (tid 0 is the protocol's). Shards record their
  /// begin/end ticks into shard-owned slots during the section and the
  /// calling thread emits them AFTER the barrier, in shard-id order —
  /// the same merge discipline as every other shard output, so tracing
  /// cannot perturb execution or determinism. With a live registry the
  /// calling thread flushes `engine.claims` / `engine.steals` counter
  /// deltas after each barrier (a serial section, per the metrics
  /// discipline). Timing slots are grow-only; steady-state sections
  /// allocate nothing.
  void attachTelemetry(Tracer* tracer, MetricsRegistry* metrics = nullptr);

 private:
  /// One participant's block of shards, packed (begin << 32 | end) into
  /// a single atomic so pop-front and steal-back race through one CAS.
  struct alignas(64) ShardRange {
    std::atomic<std::uint64_t> packed{0};
  };

  void workerLoop(std::int32_t participant);
  void claimShards(const ShardFn& fn, std::int32_t participant);
  void dispatch(const ShardPlan& plan, const ShardFn& fn);
  void publishCounters();

  std::int32_t threads_ = 1;
  std::vector<std::thread> workers_;
  std::unique_ptr<ShardRange[]> ranges_;  ///< one deque per participant

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const ShardFn* job_ = nullptr;  ///< guarded by mutex_
  std::int32_t claimers_ = 0;     ///< threads inside the claim loop
  std::uint64_t generation_ = 0;  ///< guarded by mutex_
  bool stop_ = false;             ///< guarded by mutex_
  std::exception_ptr firstError_;  ///< guarded by mutex_

  std::atomic<std::int64_t> claimsTotal_{0};
  std::atomic<std::int64_t> stealsTotal_{0};

  // Telemetry (null/false when detached).
  Tracer* tracer_ = nullptr;
  bool trace_ = false;  ///< tracer present and enabled
  Counter* claimsCounter_ = nullptr;
  Counter* stealsCounter_ = nullptr;
  std::int64_t flushedClaims_ = 0;  ///< counter totals already published
  std::int64_t flushedSteals_ = 0;
  std::vector<std::int64_t> shardBegin_;  ///< shard-owned timing slots
  std::vector<std::int64_t> shardEnd_;
};

}  // namespace treesched
