// Stable counting-sort segment bookkeeping shared by the flat delivery
// buffers (engine/message_plane.hpp, net/async_network.cpp): rows keyed
// by an integer in [0, numKeys) are scattered into contiguous per-key
// segments of one flat buffer the caller owns. The index is fully
// preallocated at construction, so steady-state rounds perform no heap
// allocation here.
//
// Usage per round:
//   index.reset();
//   for each row: index.count(key(row));
//   index.layout();                       // touched keys sorted ascending
//   buffer.resize(index.total());
//   for each row: buffer[index.place(key(row))] = row;  // stable
//   index.finish();
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace treesched {

class CollationIndex {
 public:
  explicit CollationIndex(std::int32_t numKeys)
      : begin_(static_cast<std::size_t>(numKeys), 0),
        length_(static_cast<std::size_t>(numKeys), 0),
        counts_(static_cast<std::size_t>(numKeys), 0),
        cursor_(static_cast<std::size_t>(numKeys), 0) {
    touched_.reserve(static_cast<std::size_t>(numKeys));
  }

  std::int32_t numKeys() const {
    return static_cast<std::int32_t>(length_.size());
  }

  /// Retires the previous round's segments (touched keys only — a round
  /// with no rows costs O(1)).
  void reset() {
    for (const std::int32_t key : touched_) {
      length_[static_cast<std::size_t>(key)] = 0;
    }
    touched_.clear();
    total_ = 0;
  }

  void count(std::int32_t key) {
    if (counts_[static_cast<std::size_t>(key)]++ == 0) {
      touched_.push_back(key);
    }
  }

  /// Computes the segment layout from the counts; call once after the
  /// counting pass.
  void layout() {
    std::sort(touched_.begin(), touched_.end());
    std::int32_t offset = 0;
    for (const std::int32_t key : touched_) {
      const auto idx = static_cast<std::size_t>(key);
      begin_[idx] = offset;
      cursor_[idx] = offset;
      offset += counts_[idx];
    }
    total_ = offset;
  }

  /// Target slot of the next row with this key (stable: rows of one key
  /// keep their scatter order).
  std::int32_t place(std::int32_t key) {
    return cursor_[static_cast<std::size_t>(key)]++;
  }

  /// Publishes the segment lengths and rearms the counts; call once
  /// after the scatter pass.
  void finish() {
    for (const std::int32_t key : touched_) {
      const auto idx = static_cast<std::size_t>(key);
      length_[idx] = counts_[idx];
      counts_[idx] = 0;
    }
  }

  /// Keys with a non-empty segment, ascending (valid after layout()).
  std::span<const std::int32_t> touched() const { return touched_; }

  std::int64_t total() const { return total_; }
  std::int32_t begin(std::int32_t key) const {
    return begin_[static_cast<std::size_t>(key)];
  }
  std::int32_t length(std::int32_t key) const {
    return length_[static_cast<std::size_t>(key)];
  }

 private:
  std::vector<std::int32_t> begin_;    ///< per key, into the flat buffer
  std::vector<std::int32_t> length_;   ///< per key
  std::vector<std::int32_t> counts_;   ///< scratch; zero between rounds
  std::vector<std::int32_t> cursor_;   ///< scratch scatter cursors
  std::vector<std::int32_t> touched_;  ///< active keys
  std::int64_t total_ = 0;
};

}  // namespace treesched
