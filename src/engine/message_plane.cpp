#include "engine/message_plane.hpp"

#include <algorithm>

#include "net/transport.hpp"
#include "util/check.hpp"

namespace treesched {

MessagePlane::MessagePlane(std::int32_t numProcessors)
    : index_(numProcessors) {
  checkThat(numProcessors > 0, "message plane needs processors", __FILE__,
            __LINE__);
}

void MessagePlane::stage(std::int32_t dest, const Message& message) {
  checkIndex(dest, numProcessors(), "MessagePlane::stage dest");
  // The five columns grow in lockstep — one logical growth per row.
  if (stageDest_.size() == stageDest_.capacity()) {
    noteGrowth();
  }
  stageDest_.push_back(dest);
  stageKind_.push_back(message.kind);
  stageFrom_.push_back(message.from);
  stageInstance_.push_back(message.instance);
  stageValue_.push_back(message.value);
}

void MessagePlane::stageFanout(const Message& message,
                               std::span<const std::int32_t> dests) {
  if (dests.empty()) return;
  if (fanouts_.size() == fanouts_.capacity()) {
    noteGrowth();
  }
  fanouts_.push_back({message, dests.data(),
                      static_cast<std::int32_t>(dests.size())});
  fanoutRows_ += static_cast<std::int64_t>(dests.size());
}

void MessagePlane::expandFanouts() {
  if (fanouts_.empty()) return;
  const std::size_t base = stageDest_.size();
  const std::size_t total = base + static_cast<std::size_t>(fanoutRows_);
  if (total > stageDest_.capacity()) {
    noteGrowth();  // the five columns grow in lockstep
  }
  stageDest_.resize(total);
  stageKind_.resize(total);
  stageFrom_.resize(total);
  stageInstance_.resize(total);
  stageValue_.resize(total);

  // Row offsets per fan-out: a prefix sum fixes every expansion's target
  // range up front, so the staged row order is exactly the serial
  // broadcast order no matter which shard writes it.
  if (fanouts_.size() > fanoutOffset_.capacity()) {
    noteGrowth();
  }
  fanoutOffset_.resize(fanouts_.size());
  std::int64_t offset = static_cast<std::int64_t>(base);
  for (std::size_t f = 0; f < fanouts_.size(); ++f) {
    fanoutOffset_[f] = offset;
    offset += fanouts_[f].count;
  }

  const auto expand = [this](std::size_t f) {
    const PendingFanout& fanout = fanouts_[f];
    auto row = static_cast<std::size_t>(fanoutOffset_[f]);
    for (std::int32_t j = 0; j < fanout.count; ++j, ++row) {
      checkIndex(fanout.dests[j], numProcessors(),
                 "MessagePlane::stageFanout dest");
      stageDest_[row] = fanout.dests[j];
      stageKind_[row] = fanout.message.kind;
      stageFrom_[row] = fanout.message.from;
      stageInstance_[row] = fanout.message.instance;
      stageValue_[row] = fanout.message.value;
    }
  };
  if (runner_ != nullptr && runner_->threads() > 1 && fanouts_.size() > 1) {
    const ParallelRunner::ShardPlan plan =
        runner_->plan(static_cast<std::int64_t>(fanouts_.size()));
    runner_->forShards(plan, [&](std::int32_t shard) {
      const std::int64_t end = plan.end(shard);
      for (std::int64_t f = plan.begin(shard); f < end; ++f) {
        expand(static_cast<std::size_t>(f));
      }
    });
  } else {
    for (std::size_t f = 0; f < fanouts_.size(); ++f) {
      expand(f);
    }
  }
  fanouts_.clear();
  fanoutRows_ = 0;
}

void MessagePlane::deliver() {
  // Retire the previous round's inboxes (touched destinations only).
  index_.reset();
  kindCount_.fill(0);

  expandFanouts();
  const std::size_t staged = stageDest_.size();
  if (staged > 0) {
    for (std::size_t row = 0; row < staged; ++row) {
      index_.count(stageDest_[row]);
    }
    index_.layout();
    if (static_cast<std::size_t>(index_.total()) > delivered_.capacity()) {
      noteGrowth();
    }
    if (static_cast<std::size_t>(index_.total()) > delivered_.size()) {
      delivered_.resize(static_cast<std::size_t>(index_.total()));
    }

    // Stable scatter of the SoA rows into the flat delivery buffer. The
    // canonical segment sort below makes the result independent of the
    // staging order anyway, but stability keeps the intermediate state
    // easy to reason about.
    for (std::size_t row = 0; row < staged; ++row) {
      delivered_[static_cast<std::size_t>(index_.place(stageDest_[row]))] =
          Message{stageKind_[row], stageFrom_[row], stageInstance_[row],
                  stageValue_[row]};
      ++kindCount_[static_cast<std::size_t>(stageKind_[row])];
    }
    index_.finish();

    // Canonical (sender, instance) order within every segment. Segments
    // are disjoint, so the sorts parallelize with no merge step.
    const auto sortSegment = [this](std::int32_t dest) {
      const auto begin = delivered_.begin() + index_.begin(dest);
      std::sort(begin, begin + index_.length(dest), canonicalMessageLess);
    };
    const auto touched = index_.touched();
    if (runner_ != nullptr && runner_->threads() > 1) {
      const ParallelRunner::ShardPlan plan =
          runner_->plan(static_cast<std::int64_t>(touched.size()));
      runner_->forShards(plan, [&](std::int32_t shard) {
        const std::int64_t end = plan.end(shard);
        for (std::int64_t t = plan.begin(shard); t < end; ++t) {
          sortSegment(touched[static_cast<std::size_t>(t)]);
        }
      });
    } else {
      for (const std::int32_t dest : touched) {
        sortSegment(dest);
      }
    }

    stageDest_.clear();
    stageKind_.clear();
    stageFrom_.clear();
    stageInstance_.clear();
    stageValue_.clear();
  }
  ++rounds_;
}

void MessagePlane::clearInboxes() {
  checkThat(!hasStaged(), "clearInboxes must not drop staged messages",
            __FILE__, __LINE__);
  index_.reset();
}

std::int64_t MessagePlane::capacityBytes() const {
  const std::size_t stagingRow = sizeof(std::int32_t) + sizeof(MessageKind) +
                                 sizeof(std::int32_t) + sizeof(std::int32_t) +
                                 sizeof(double);
  return static_cast<std::int64_t>(
      stageDest_.capacity() * stagingRow +
      delivered_.capacity() * sizeof(Message) +
      fanouts_.capacity() * sizeof(PendingFanout) +
      fanoutOffset_.capacity() * sizeof(std::int64_t) +
      static_cast<std::size_t>(index_.numKeys()) * 5 * sizeof(std::int32_t));
}

void accountPlaneRound(NetworkStats& stats, const MessagePlane& plane) {
  // O(#kinds) from the plane's histogram: no re-scan of the messages.
  if (plane.deliveredCount() > 0) {
    ++stats.busyRounds;
    stats.messages += plane.deliveredCount();
    const auto& kinds = plane.kindCounts();
    for (std::size_t kind = 0; kind < kinds.size(); ++kind) {
      if (kinds[kind] == 0) continue;
      const std::int32_t units =
          messagePayloadUnits(static_cast<MessageKind>(kind));
      stats.payload += kinds[kind] * units;
      stats.maxMessagePayload = std::max(stats.maxMessagePayload, units);
    }
  }
  stats.planeGrowthEvents = plane.growthEvents();
  stats.planeLastGrowthRound = plane.lastGrowthRound();
}

}  // namespace treesched
