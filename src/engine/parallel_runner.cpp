#include "engine/parallel_runner.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace treesched {

namespace {

/// Minimum items per shard: below this the dispatch overhead dominates.
/// Small on purpose so the unit-test-sized problems still cross threads
/// (the TSan CI leg needs real concurrency to observe).
constexpr std::int64_t kMinShardSize = 16;

/// Shards per thread: enough claim slots that an unlucky slow shard does
/// not serialize the section's tail.
constexpr std::int64_t kShardsPerThread = 8;

std::uint64_t packRange(std::uint32_t begin, std::uint32_t end) {
  return (static_cast<std::uint64_t>(begin) << 32) | end;
}

std::uint32_t rangeBegin(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed >> 32);
}

std::uint32_t rangeEnd(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed & 0xffffffffu);
}

}  // namespace

ParallelRunner::ParallelRunner(std::int32_t threads)
    : threads_(std::max<std::int32_t>(1, threads)),
      ranges_(new ShardRange[static_cast<std::size_t>(
          std::max<std::int32_t>(1, threads))]) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (std::int32_t t = 1; t < threads_; ++t) {
    workers_.emplace_back([this, t] { workerLoop(t); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ParallelRunner::ShardPlan ParallelRunner::plan(std::int64_t count) const {
  ShardPlan shardPlan;
  shardPlan.count = std::max<std::int64_t>(0, count);
  if (shardPlan.count == 0) {
    return shardPlan;
  }
  const std::int64_t targetShards =
      static_cast<std::int64_t>(threads_) * kShardsPerThread;
  shardPlan.shardSize = std::max(
      kMinShardSize, (shardPlan.count + targetShards - 1) / targetShards);
  shardPlan.numShards = static_cast<std::int32_t>(
      (shardPlan.count + shardPlan.shardSize - 1) / shardPlan.shardSize);
  return shardPlan;
}

void ParallelRunner::planWeighted(std::span<const std::int64_t> weights,
                                  ShardPlan& out) const {
  out.count = static_cast<std::int64_t>(weights.size());
  out.shardSize = 1;
  out.numShards = 0;
  out.bounds.clear();
  if (out.count == 0) {
    return;
  }
  const std::int64_t targetShards =
      static_cast<std::int64_t>(threads_) * kShardsPerThread;
  std::int64_t total = 0;
  for (const std::int64_t w : weights) {
    total += std::max<std::int64_t>(1, w);
  }
  // Weight per shard: items clamp to weight >= 1, so for uniform weights
  // this degrades exactly to plan()'s item grain.
  const std::int64_t grain = std::max(
      kMinShardSize, (total + targetShards - 1) / targetShards);
  out.bounds.push_back(0);
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < out.count; ++i) {
    acc += std::max<std::int64_t>(1, weights[i]);
    if (acc >= grain && i + 1 < out.count) {
      out.bounds.push_back(i + 1);
      acc = 0;
    }
  }
  out.bounds.push_back(out.count);
  out.numShards = static_cast<std::int32_t>(out.bounds.size()) - 1;
}

void ParallelRunner::claimShards(const ShardFn& fn, std::int32_t participant) {
  std::int64_t popped = 0;
  std::int64_t stolen = 0;
  auto run = [&](std::uint32_t shard) {
    try {
      fn(static_cast<std::int32_t>(shard));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_) {
        firstError_ = std::current_exception();
      }
    }
  };
  for (;;) {
    // Drain the owned block front-to-back.
    std::atomic<std::uint64_t>& own =
        ranges_[static_cast<std::size_t>(participant)].packed;
    std::uint64_t cur = own.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t b = rangeBegin(cur);
      const std::uint32_t e = rangeEnd(cur);
      if (b >= e) {
        break;
      }
      if (own.compare_exchange_weak(cur, packRange(b + 1, e),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
        run(b);
        ++popped;
        cur = own.load(std::memory_order_acquire);
      }
    }
    // Steal one shard from the back of the first non-empty victim.
    // Ranges only shrink within a section, so a full scan finding every
    // block empty means no unclaimed shard remains.
    bool stole = false;
    for (std::int32_t k = 1; k < threads_ && !stole; ++k) {
      const std::int32_t victim = (participant + k) % threads_;
      std::atomic<std::uint64_t>& range =
          ranges_[static_cast<std::size_t>(victim)].packed;
      std::uint64_t vcur = range.load(std::memory_order_acquire);
      for (;;) {
        const std::uint32_t b = rangeBegin(vcur);
        const std::uint32_t e = rangeEnd(vcur);
        if (b >= e) {
          break;
        }
        if (range.compare_exchange_weak(vcur, packRange(b, e - 1),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          run(e - 1);
          ++stolen;
          stole = true;
          break;
        }
      }
    }
    if (!stole) {
      break;
    }
  }
  // Claims count every shard this participant EXECUTED (owned pops plus
  // steals), so claims across a run always equals the shard count and
  // steals <= claims holds even for a thread that only ever stole.
  if (popped + stolen != 0) {
    claimsTotal_.fetch_add(popped + stolen, std::memory_order_relaxed);
  }
  if (stolen != 0) {
    stealsTotal_.fetch_add(stolen, std::memory_order_relaxed);
  }
  // The barrier releases only once every participant has LEFT the claim
  // loop: were it released on the shard count alone, a straggler still
  // scanning here could claim into the next section's reset ranges.
  std::lock_guard<std::mutex> lock(mutex_);
  if (--claimers_ == 0) {
    done_.notify_all();
  }
}

void ParallelRunner::attachTelemetry(Tracer* tracer, MetricsRegistry* metrics) {
  tracer_ = tracer;
  trace_ = tracer != nullptr && tracer->enabled();
  if (metrics != nullptr) {
    claimsCounter_ = &metrics->counter("engine.claims");
    stealsCounter_ = &metrics->counter("engine.steals");
    // Count from attach time: pre-attach traffic is not this run's.
    flushedClaims_ = claimsTotal_.load(std::memory_order_relaxed);
    flushedSteals_ = stealsTotal_.load(std::memory_order_relaxed);
  } else {
    claimsCounter_ = nullptr;
    stealsCounter_ = nullptr;
  }
}

void ParallelRunner::publishCounters() {
  if (claimsCounter_ == nullptr) {
    return;
  }
  const std::int64_t c = claimsTotal_.load(std::memory_order_relaxed);
  const std::int64_t s = stealsTotal_.load(std::memory_order_relaxed);
  claimsCounter_->add(c - flushedClaims_);
  stealsCounter_->add(s - flushedSteals_);
  flushedClaims_ = c;
  flushedSteals_ = s;
}

void ParallelRunner::forShards(const ShardPlan& plan, ShardFn fn) {
  if (plan.numShards <= 0) {
    return;
  }
  if (!trace_) {
    dispatch(plan, fn);
    publishCounters();
    return;
  }
  // Traced section: shards stamp begin/end ticks into their own slots;
  // the calling thread emits the spans after the barrier, in shard-id
  // order (never by completion order).
  const auto shards = static_cast<std::size_t>(plan.numShards);
  if (shardBegin_.size() < shards) {
    shardBegin_.resize(shards);
    shardEnd_.resize(shards);
  }
  auto timed = [&](std::int32_t shard) {
    const auto slot = static_cast<std::size_t>(shard);
    shardBegin_[slot] = tracer_->now();
    fn(shard);
    shardEnd_[slot] = tracer_->now();
  };
  dispatch(plan, ShardFn(timed));
  publishCounters();
  for (std::int32_t shard = 0; shard < plan.numShards; ++shard) {
    const auto slot = static_cast<std::size_t>(shard);
    tracer_->completeAt("shard", "engine", shard + 1, shardBegin_[slot],
                        shardEnd_[slot],
                        {{"shard", shard},
                         {"items", plan.end(shard) - plan.begin(shard)}});
  }
}

void ParallelRunner::dispatch(const ShardPlan& plan, const ShardFn& fn) {
  if (workers_.empty() || plan.numShards == 1) {
    for (std::int32_t shard = 0; shard < plan.numShards; ++shard) {
      fn(shard);
    }
    claimsTotal_.fetch_add(plan.numShards, std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    // One contiguous block of shards per participant; the owner pops
    // the front, thieves take the back.
    const std::int64_t n = plan.numShards;
    for (std::int32_t t = 0; t < threads_; ++t) {
      const auto lo = static_cast<std::uint32_t>(n * t / threads_);
      const auto hi = static_cast<std::uint32_t>(n * (t + 1) / threads_);
      ranges_[static_cast<std::size_t>(t)].packed.store(
          packRange(lo, hi), std::memory_order_relaxed);
    }
    claimers_ = 1;  // the calling thread
    ++generation_;
  }
  wake_.notify_all();
  claimShards(fn, 0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return claimers_ == 0; });
    job_ = nullptr;
    error = firstError_;
    firstError_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ParallelRunner::workerLoop(std::int32_t participant) {
  std::uint64_t seen = 0;
  for (;;) {
    const ShardFn* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      fn = job_;
      if (fn != nullptr) {
        ++claimers_;
      }
    }
    if (fn != nullptr) {
      claimShards(*fn, participant);
    }
  }
}

}  // namespace treesched
