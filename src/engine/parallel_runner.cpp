#include "engine/parallel_runner.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace treesched {

namespace {

/// Minimum items per shard: below this the dispatch overhead dominates.
/// Small on purpose so the unit-test-sized problems still cross threads
/// (the TSan CI leg needs real concurrency to observe).
constexpr std::int64_t kMinShardSize = 16;

/// Shards per thread: enough claim slots that an unlucky slow shard does
/// not serialize the section's tail.
constexpr std::int64_t kShardsPerThread = 8;

}  // namespace

ParallelRunner::ParallelRunner(std::int32_t threads)
    : threads_(std::max<std::int32_t>(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (std::int32_t t = 1; t < threads_; ++t) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ParallelRunner::ShardPlan ParallelRunner::plan(std::int64_t count) const {
  ShardPlan shardPlan;
  shardPlan.count = std::max<std::int64_t>(0, count);
  if (shardPlan.count == 0) {
    return shardPlan;
  }
  const std::int64_t targetShards =
      static_cast<std::int64_t>(threads_) * kShardsPerThread;
  shardPlan.shardSize = std::max(
      kMinShardSize, (shardPlan.count + targetShards - 1) / targetShards);
  shardPlan.numShards = static_cast<std::int32_t>(
      (shardPlan.count + shardPlan.shardSize - 1) / shardPlan.shardSize);
  return shardPlan;
}

void ParallelRunner::claimShards(const ShardFn& fn, std::int32_t numShards) {
  for (;;) {
    const std::int32_t shard =
        nextShard_.fetch_add(1, std::memory_order_relaxed);
    if (shard >= numShards) {
      break;
    }
    try {
      fn(shard);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_) {
        firstError_ = std::current_exception();
      }
    }
  }
  // The barrier releases only once every participant has LEFT the claim
  // loop: were it released on the shard count alone, a straggler still
  // spinning here could claim into the next section's reset cursor.
  std::lock_guard<std::mutex> lock(mutex_);
  if (--claimers_ == 0) {
    done_.notify_all();
  }
}

void ParallelRunner::attachTelemetry(Tracer* tracer) {
  tracer_ = tracer;
  trace_ = tracer != nullptr && tracer->enabled();
}

void ParallelRunner::forShards(const ShardPlan& plan, ShardFn fn) {
  if (plan.numShards <= 0) {
    return;
  }
  if (!trace_) {
    dispatch(plan, fn);
    return;
  }
  // Traced section: shards stamp begin/end ticks into their own slots;
  // the calling thread emits the spans after the barrier, in shard-id
  // order (never by completion order).
  const auto shards = static_cast<std::size_t>(plan.numShards);
  if (shardBegin_.size() < shards) {
    shardBegin_.resize(shards);
    shardEnd_.resize(shards);
  }
  auto timed = [&](std::int32_t shard) {
    const auto slot = static_cast<std::size_t>(shard);
    shardBegin_[slot] = tracer_->now();
    fn(shard);
    shardEnd_[slot] = tracer_->now();
  };
  dispatch(plan, ShardFn(timed));
  for (std::int32_t shard = 0; shard < plan.numShards; ++shard) {
    const auto slot = static_cast<std::size_t>(shard);
    tracer_->completeAt("shard", "engine", shard + 1, shardBegin_[slot],
                        shardEnd_[slot],
                        {{"shard", shard},
                         {"items", plan.end(shard) - plan.begin(shard)}});
  }
}

void ParallelRunner::dispatch(const ShardPlan& plan, const ShardFn& fn) {
  if (workers_.empty() || plan.numShards == 1) {
    for (std::int32_t shard = 0; shard < plan.numShards; ++shard) {
      fn(shard);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    jobShards_ = plan.numShards;
    claimers_ = 1;  // the calling thread
    nextShard_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  wake_.notify_all();
  claimShards(fn, plan.numShards);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return claimers_ == 0; });
    job_ = nullptr;
    error = firstError_;
    firstError_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ParallelRunner::workerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    const ShardFn* fn = nullptr;
    std::int32_t numShards = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      fn = job_;
      numShards = jobShards_;
      if (fn != nullptr) {
        ++claimers_;
      }
    }
    if (fn != nullptr) {
      claimShards(*fn, numShards);
    }
  }
}

}  // namespace treesched
