// Structured tracing to Chrome-trace-event JSON (Perfetto loadable).
//
// A Tracer timestamps named spans and instants and hands them to a
// TraceSink. The ChromeTraceSink buffers events and writes the standard
// {"traceEvents": [...]} JSON on close() — load the file in
// chrome://tracing or https://ui.perfetto.dev to see one run end to end:
// phase1 → epoch → stage → step → mis spans with raise/accept/reject
// instants on tid 0, per-shard engine sections on tid shard+1, and
// transport delivery events.
//
// Determinism discipline: timestamps are wall-clock reads that never
// feed back into algorithm state — a run with any sink attached is
// bit-identical to an untraced run (tests/telemetry_test.cpp gates it).
// Span emission is single-threaded by construction: protocol/transport
// events fire on the calling thread at round boundaries, and the
// parallel runner records worker ticks into preallocated per-shard slots
// that the calling thread emits, in shard-id order, after the barrier.
//
// Overhead discipline: NullTraceSink reports enabled() == false, so a
// Tracer over it short-circuits to a single branch per call site — no
// clock reads, no event construction, no allocation (the "NullSink
// compiles to near-zero overhead" contract, held by the allocation
// regression in tests/telemetry_test.cpp).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace treesched {

/// One named numeric event argument. Keys must be string literals (or
/// otherwise outlive the sink): events store the pointer, not a copy.
struct TraceArg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

/// One trace event. `name`/`cat` must outlive the sink (string
/// literals at every emission site).
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  char ph = 'X';  ///< 'X' complete span, 'i' instant
  std::int32_t tid = 0;
  std::int64_t tsMicros = 0;
  std::int64_t durMicros = 0;  ///< 'X' only
  std::array<TraceArg, 4> args{};
  std::int32_t argCount = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// False: the sink discards everything and emitters skip building
  /// events entirely (Tracer::enabled() caches this).
  virtual bool enabled() const { return true; }

  virtual void event(const TraceEvent& e) = 0;

  /// Flushes buffered events (idempotent; also run by destructors).
  virtual void close() {}
};

/// Discards everything at near-zero cost: a Tracer over it behaves as
/// disabled everywhere.
class NullTraceSink final : public TraceSink {
 public:
  bool enabled() const override { return false; }
  void event(const TraceEvent&) override {}
};

/// Buffers events in memory and writes Chrome trace-event JSON on
/// close(). Not thread-safe: all emission happens on the tracing
/// thread (see the header comment).
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::string path) : path_(std::move(path)) {}
  ~ChromeTraceSink() override { close(); }

  void event(const TraceEvent& e) override { events_.push_back(e); }
  void close() override;

  std::size_t eventCount() const { return events_.size(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<TraceEvent> events_;
  bool closed_ = false;
};

/// The emission front-end every instrumented layer holds (by pointer;
/// nullptr = tracing off). Timestamps are microseconds of steady time
/// since construction, monotonic across threads.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceSink* sink)
      : sink_(sink),
        live_(sink != nullptr && sink->enabled()),
        start_(std::chrono::steady_clock::now()) {}

  /// One branch when off — guard every instrumentation site with this.
  bool enabled() const { return live_; }

  /// Current tick (µs since construction); only meaningful when
  /// enabled().
  std::int64_t now() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Complete span [beginMicros, now()].
  void span(const char* name, const char* cat, std::int32_t tid,
            std::int64_t beginMicros,
            std::initializer_list<TraceArg> args = {}) {
    completeAt(name, cat, tid, beginMicros, now(), args);
  }

  /// Complete span with both ticks supplied (runner shard sections,
  /// whose ticks are measured on worker threads).
  void completeAt(const char* name, const char* cat, std::int32_t tid,
                  std::int64_t beginMicros, std::int64_t endMicros,
                  std::initializer_list<TraceArg> args = {});

  /// Zero-duration instant at now().
  void instant(const char* name, const char* cat, std::int32_t tid,
               std::initializer_list<TraceArg> args = {});

 private:
  TraceSink* sink_ = nullptr;
  bool live_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace treesched
