#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

namespace treesched {

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  std::ofstream out(path_);
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out << "{\"name\": \"" << e.name << "\", \"cat\": \"" << e.cat
        << "\", \"ph\": \"" << e.ph << "\", \"ts\": " << e.tsMicros;
    if (e.ph == 'X') {
      out << ", \"dur\": " << e.durMicros;
    } else if (e.ph == 'i') {
      out << ", \"s\": \"t\"";
    }
    out << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.argCount > 0) {
      out << ", \"args\": {";
      for (std::int32_t a = 0; a < e.argCount; ++a) {
        if (a > 0) out << ", ";
        out << "\"" << e.args[static_cast<std::size_t>(a)].key
            << "\": " << e.args[static_cast<std::size_t>(a)].value;
      }
      out << "}";
    }
    out << "}" << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  out << "]}\n";
}

void Tracer::completeAt(const char* name, const char* cat, std::int32_t tid,
                        std::int64_t beginMicros, std::int64_t endMicros,
                        std::initializer_list<TraceArg> args) {
  if (!live_) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.tid = tid;
  e.tsMicros = beginMicros;
  e.durMicros = std::max<std::int64_t>(0, endMicros - beginMicros);
  for (const TraceArg& arg : args) {
    if (e.argCount >= static_cast<std::int32_t>(e.args.size())) break;
    e.args[static_cast<std::size_t>(e.argCount++)] = arg;
  }
  sink_->event(e);
}

void Tracer::instant(const char* name, const char* cat, std::int32_t tid,
                     std::initializer_list<TraceArg> args) {
  if (!live_) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.tid = tid;
  e.tsMicros = now();
  for (const TraceArg& arg : args) {
    if (e.argCount >= static_cast<std::int32_t>(e.args.size())) break;
    e.args[static_cast<std::size_t>(e.argCount++)] = arg;
  }
  sink_->event(e);
}

}  // namespace treesched
