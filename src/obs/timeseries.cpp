#include "obs/timeseries.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace treesched {

namespace {

void appendNumber(std::ostringstream& os, double value) {
  os.precision(17);
  os << value;
}

}  // namespace

EpochSeries::EpochSeries(const MetricsRegistry& metrics, std::string run)
    : metrics_(&metrics), run_(std::move(run)) {}

void EpochSeries::snapshot(std::int64_t epoch) {
  std::ostringstream os;
  os << "{";
  if (!run_.empty()) os << "\"run\": \"" << run_ << "\", ";
  os << "\"epoch\": " << epoch << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : metrics_->counters()) {
    const std::int64_t now = c.value();
    std::int64_t& prev = previous_[name];
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": " << (now - prev);
    prev = now;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : metrics_->gauges()) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": ";
    appendNumber(os, g.value());
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : metrics_->histograms()) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": {\"count\": " << h.count() << ", \"p50\": ";
    appendNumber(os, h.percentile(0.5));
    os << ", \"p90\": ";
    appendNumber(os, h.percentile(0.9));
    os << ", \"p99\": ";
    appendNumber(os, h.percentile(0.99));
    os << ", \"max\": ";
    appendNumber(os, h.max());
    os << "}";
  }
  os << "}}\n";
  lines_ += os.str();
  ++snapshots_;
}

void EpochSeries::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw CheckError("EpochSeries: cannot open " + path);
  out << lines_;
}

}  // namespace treesched
