// Decision provenance ledger: the "why" to the telemetry plane's
// "how much".
//
// A LedgerSink receives per-demand lifecycle events — arrival, shard
// placement, migration, every dual raise that touched the demand,
// admission or rejection (with the blocking dual certificate), purge/
// departure, crash — emitted through the same wiring that carries the
// tracer and the metrics registry (dist/protocol, net/synchronizer,
// online/incremental). The paper's primal-dual structure makes every
// admission decision certifiable: a rejection's certificate names the
// already-admitted instance whose dual LHS blocks the pop, together
// with that LHS and the lambda * profit threshold it clears — replaying
// the run's dual_raise events reproduces the LHS bit-for-bit
// (tests/provenance_test.cpp).
//
// The contract matches the rest of src/obs/: sinks are read-only
// observers — attaching one cannot change a single bit of the
// schedule — and the disabled path (NullLedger, or no ledger at all)
// stays allocation-free on the hot loop. Events are ordered
// deterministically by (epoch, demand, salt, seq), never by thread
// completion: emission happens on the protocol's serial sections only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/demand.hpp"
#include "dist/observer.hpp"

namespace treesched {

class Counter;
class MetricsRegistry;

/// The ledger event vocabulary. The enumerator order is the canonical
/// within-(epoch, demand) salt: a demand arrives before it is placed,
/// placement precedes migration, raises precede the phase-2 verdict,
/// and departure is terminal.
enum class LedgerEventKind : std::uint8_t {
  Arrival,    ///< demand entered the live pool this epoch
  Placement,  ///< live sharding placed the demand on a processor
  Migration,  ///< epoch-boundary rebalancing moved the demand
  Crash,      ///< crash-stop fault took the owning processor
  DualRaise,  ///< phase 1 made one of the demand's instances tight
  Rejected,   ///< phase 2 popped an instance and rejected it
  Admitted,   ///< phase 2 (or online re-admission) admitted an instance
  Departure,  ///< demand left the pool; its raises were purged
};

/// Stable lowercase name ("arrival", "dual_raise", ...): the JSONL
/// `event` field and the vocabulary tools/ledger_validate.py checks.
const char* ledgerEventKindName(LedgerEventKind kind);

/// Stable lowercase name of a RejectReason ("owner_crashed",
/// "demand_satisfied", "capacity_exceeded").
const char* rejectReasonName(RejectReason reason);

/// One ledger entry. `epoch` and `seq` are stamped by the sink
/// (ProvenanceLedger::beginEpoch sets the epoch; emission sites fill
/// only the fields their kind owns, the rest keep their defaults).
struct LedgerEvent {
  std::int64_t epoch = 0;
  std::int64_t seq = 0;  ///< emission order; ties within (epoch, demand, salt)
  DemandId demand = -1;
  LedgerEventKind kind = LedgerEventKind::Arrival;
  InstanceId instance = kNoInstance;  ///< DualRaise / Rejected / Admitted
  std::int64_t tuple = -1;            ///< schedule tuple (one-shot protocol)
  double alphaIncrement = 0;          ///< DualRaise
  double betaIncrement = 0;           ///< DualRaise
  RejectReason reason = RejectReason::OwnerCrashed;  ///< Rejected
  /// Rejected: the admitted instance whose load blocks this pop
  /// (kNoInstance when the owner crashed — there is no blocker).
  InstanceId certInstance = kNoInstance;
  double certLhs = 0;        ///< blocker's dual LHS at rejection time
  double certThreshold = 0;  ///< lambdaMeasured * profit(certInstance)
  std::int32_t fromProcessor = -1;  ///< Migration
  std::int32_t toProcessor = -1;    ///< Placement / Migration
  std::int64_t latencyEpochs = -1;  ///< Admitted (online; -1 one-shot)
  bool admitted = false;            ///< Departure: had been admitted
};

/// Receiver interface. Emission sites guard on enabled() and skip all
/// event assembly when it is false, so a disabled sink costs nothing.
class LedgerSink {
 public:
  virtual ~LedgerSink() = default;

  /// False => record() is never called and emission sites skip their
  /// bookkeeping entirely (the allocation-free disabled path).
  virtual bool enabled() const { return true; }

  /// Receives one event. Called only from serial sections, in
  /// deterministic order.
  virtual void record(const LedgerEvent& event) = 0;

  /// Stamps `epoch` on subsequent events (the online solver calls this
  /// at every epoch boundary; one-shot runs stay at epoch 0).
  virtual void beginEpoch(std::int64_t epoch) { (void)epoch; }
};

/// Sink that drops everything; enabled() is false, so attaching it
/// exercises the zero-cost path (tests/provenance_test.cpp gates the
/// allocation delta at exactly zero).
class NullLedger final : public LedgerSink {
 public:
  bool enabled() const override { return false; }
  void record(const LedgerEvent& /*event*/) override {}
};

/// Thresholds for the ledger's invariant monitors.
struct LedgerMonitorConfig {
  /// Admitted events with latencyEpochs > slaEpochs raise
  /// obs.alert.sla_breach.
  std::int64_t slaEpochs = 4;
  /// A demand's migrationThrash-th migration (and every one after)
  /// raises obs.alert.migration_thrash: the rebalancer is ping-ponging
  /// the demand instead of settling it.
  std::int32_t migrationThrash = 3;
};

/// In-memory ledger. Records every event, stamps (epoch, seq), runs the
/// invariant monitors (publishing obs.alert.* counters into an optional
/// MetricsRegistry), and serializes to JSONL in the canonical
/// (epoch, demand, salt, seq) order — the format tools/explain_demand.py
/// and tools/ledger_validate.py consume.
class ProvenanceLedger final : public LedgerSink {
 public:
  explicit ProvenanceLedger(MetricsRegistry* metrics = nullptr,
                            LedgerMonitorConfig monitors = {});

  void record(const LedgerEvent& event) override;
  void beginEpoch(std::int64_t epoch) override { epoch_ = epoch; }

  /// Events in raw emission (causal) order — the order certificate
  /// replay must process them in.
  const std::vector<LedgerEvent>& events() const { return events_; }
  std::int64_t eventCount() const {
    return static_cast<std::int64_t>(events_.size());
  }

  /// Events stably sorted by (epoch, demand, salt, seq): every demand's
  /// story reads contiguously per epoch, independent of interleaving.
  std::vector<LedgerEvent> canonicalEvents() const;

  /// One JSON object per line, canonical order.
  std::string toJsonl() const;

  /// Writes toJsonl() to `path`. Throws CheckError when the file cannot
  /// be opened.
  void writeJsonl(const std::string& path) const;

  /// Monitor trip counts (also published as obs.alert.* counters when a
  /// registry was attached).
  std::int64_t slaBreaches() const { return slaBreaches_; }
  std::int64_t neverAdmittedDepartures() const {
    return neverAdmittedDepartures_;
  }
  std::int64_t migrationThrashAlerts() const { return thrashAlerts_; }

 private:
  std::vector<LedgerEvent> events_;
  std::int64_t epoch_ = 0;
  std::int64_t nextSeq_ = 0;
  LedgerMonitorConfig monitors_;
  std::vector<std::int32_t> migrationsOfDemand_;
  std::int64_t slaBreaches_ = 0;
  std::int64_t neverAdmittedDepartures_ = 0;
  std::int64_t thrashAlerts_ = 0;
  Counter* alertSla_ = nullptr;
  Counter* alertNeverAdmitted_ = nullptr;
  Counter* alertThrash_ = nullptr;
};

}  // namespace treesched
