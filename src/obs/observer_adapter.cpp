#include "obs/observer_adapter.hpp"

#include <array>

namespace treesched {

namespace {

// Static bucket tables: resolving an instrument must not allocate bound
// vectors on every engine construction (one construction per online
// epoch — the NullSink zero-allocation regression measures whole runs).
constexpr std::array<double, 18> kExpBuckets = {
    1,   2,   4,    8,    16,   32,   64,    128,   256,
    512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072};
constexpr std::array<double, 33> kLubyBuckets = {
    0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15, 16,
    17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32};

}  // namespace

TracingObserver::TracingObserver(Tracer* tracer, MetricsRegistry* metrics,
                                 ProtocolObserver* next)
    : tracer_(tracer),
      trace_(tracer != nullptr && tracer->enabled()),
      next_(next) {
  if (metrics != nullptr) {
    epochs_ = &metrics->counter("protocol.epochs");
    stages_ = &metrics->counter("protocol.stages");
    steps_ = &metrics->counter("protocol.active_steps");
    raises_ = &metrics->counter("protocol.raises");
    accepts_ = &metrics->counter("protocol.accepts");
    rejects_ = &metrics->counter("protocol.rejects");
    rejectsByReason_[static_cast<std::size_t>(RejectReason::OwnerCrashed)] =
        &metrics->counter("protocol.rejects.owner_crashed");
    rejectsByReason_[static_cast<std::size_t>(
        RejectReason::DemandSatisfied)] =
        &metrics->counter("protocol.rejects.demand_satisfied");
    rejectsByReason_[static_cast<std::size_t>(
        RejectReason::CapacityExceeded)] =
        &metrics->counter("protocol.rejects.capacity_exceeded");
    crashes_ = &metrics->counter("protocol.crash_events");
    participants_ =
        &metrics->histogram("protocol.step_participants", kExpBuckets);
    misSize_ = &metrics->histogram("protocol.mis_size", kExpBuckets);
    lubyRounds_ = &metrics->histogram("protocol.luby_rounds", kLubyBuckets);
  }
}

void TracingObserver::closeStep() {
  if (stepBegin_ < 0) return;
  tracer_->span("step", "protocol", 0, stepBegin_,
                {{"epoch", curEpoch_}, {"stage", curStage_},
                 {"step", curStep_}});
  stepBegin_ = -1;
}

void TracingObserver::closeStage() {
  if (stageBegin_ < 0) return;
  tracer_->span("stage", "protocol", 0, stageBegin_,
                {{"epoch", curEpoch_}, {"stage", curStage_}});
  stageBegin_ = -1;
}

void TracingObserver::closeEpoch() {
  if (epochBegin_ < 0) return;
  tracer_->span("epoch", "protocol", 0, epochBegin_, {{"epoch", curEpoch_}});
  epochBegin_ = -1;
}

void TracingObserver::onEpochBegin(std::int32_t epoch,
                                   std::int32_t groupMembers) {
  if (epochs_ != nullptr) epochs_->add(1);
  if (trace_) {
    closeStep();
    closeStage();
    closeEpoch();
    const std::int64_t t = tracer_->now();
    if (phase1Begin_ < 0) phase1Begin_ = t;
    epochBegin_ = t;
    curEpoch_ = epoch;
  }
  if (next_ != nullptr) next_->onEpochBegin(epoch, groupMembers);
}

void TracingObserver::onStageBegin(std::int32_t epoch, std::int32_t stage,
                                   double target) {
  if (stages_ != nullptr) stages_->add(1);
  if (trace_) {
    closeStep();
    closeStage();
    stageBegin_ = tracer_->now();
    curStage_ = stage;
  }
  if (next_ != nullptr) next_->onStageBegin(epoch, stage, target);
}

void TracingObserver::onStepStart(std::int32_t epoch, std::int32_t stage,
                                  std::int32_t step,
                                  std::int32_t participants) {
  if (steps_ != nullptr) {
    steps_->add(1);
    participants_->record(static_cast<double>(participants));
  }
  if (trace_) {
    closeStep();
    stepBegin_ = tracer_->now();
    curStep_ = step;
  }
  if (next_ != nullptr) next_->onStepStart(epoch, stage, step, participants);
}

void TracingObserver::onMisComplete(std::int64_t tuple, std::int32_t lubyRounds,
                                    std::int32_t misSize) {
  if (misSize_ != nullptr) {
    misSize_->record(static_cast<double>(misSize));
    lubyRounds_->record(static_cast<double>(lubyRounds));
  }
  if (trace_ && stepBegin_ >= 0) {
    tracer_->span("mis", "protocol", 0, stepBegin_,
                  {{"tuple", tuple}, {"luby_rounds", lubyRounds},
                   {"mis_size", misSize}});
  }
  if (next_ != nullptr) next_->onMisComplete(tuple, lubyRounds, misSize);
}

void TracingObserver::onRaise(std::int64_t tuple, InstanceId instance,
                              double delta) {
  if (raises_ != nullptr) raises_->add(1);
  if (trace_) {
    tracer_->instant("raise", "protocol", 0,
                     {{"tuple", tuple}, {"instance", instance}});
  }
  if (next_ != nullptr) next_->onRaise(tuple, instance, delta);
}

void TracingObserver::onCrash(DemandId processor, std::int64_t tuple) {
  if (crashes_ != nullptr) crashes_->add(1);
  if (trace_) {
    tracer_->instant("crash", "protocol", 0,
                     {{"processor", processor}, {"tuple", tuple}});
  }
  if (next_ != nullptr) next_->onCrash(processor, tuple);
}

void TracingObserver::onPhase1Complete(std::int64_t activeSteps,
                                       std::int64_t raises) {
  if (trace_) {
    closeStep();
    closeStage();
    closeEpoch();
    if (phase1Begin_ >= 0) {
      tracer_->span("phase1", "protocol", 0, phase1Begin_,
                    {{"active_steps", activeSteps}, {"raises", raises}});
      phase1Begin_ = -1;
    }
    // The phase-2 span also covers the inter-phase slackness measurement
    // and local-view audit (no observer events fire in between).
    phase2Begin_ = tracer_->now();
  }
  if (next_ != nullptr) next_->onPhase1Complete(activeSteps, raises);
}

void TracingObserver::onAccept(std::int64_t tuple, InstanceId instance) {
  if (accepts_ != nullptr) accepts_->add(1);
  if (trace_) {
    tracer_->instant("accept", "protocol", 0,
                     {{"tuple", tuple}, {"instance", instance}});
  }
  if (next_ != nullptr) next_->onAccept(tuple, instance);
}

void TracingObserver::onReject(std::int64_t tuple, InstanceId instance,
                               RejectReason reason) {
  if (rejects_ != nullptr) {
    rejects_->add(1);
    rejectsByReason_[static_cast<std::size_t>(reason)]->add(1);
  }
  if (trace_) {
    tracer_->instant("reject", "protocol", 0,
                     {{"tuple", tuple}, {"instance", instance},
                      {"reason", static_cast<std::int64_t>(reason)}});
  }
  if (next_ != nullptr) next_->onReject(tuple, instance, reason);
}

void TracingObserver::onPhase2Complete(std::int64_t accepts,
                                       std::int64_t rejects) {
  if (trace_ && phase2Begin_ >= 0) {
    tracer_->span("phase2", "protocol", 0, phase2Begin_,
                  {{"accepts", accepts}, {"rejects", rejects}});
    phase2Begin_ = -1;
  }
  if (next_ != nullptr) next_->onPhase2Complete(accepts, rejects);
}

}  // namespace treesched
