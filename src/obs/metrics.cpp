#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace treesched {

Histogram::Histogram(std::span<const double> upperBounds)
    : upper_(upperBounds.begin(), upperBounds.end()),
      counts_(upperBounds.size() + 1, 0) {
  checkThat(!upper_.empty(), "histogram needs at least one bucket", __FILE__,
            __LINE__);
  checkThat(std::is_sorted(upper_.begin(), upper_.end()),
            "histogram bounds sorted ascending", __FILE__, __LINE__);
}

std::vector<double> Histogram::unitBuckets(std::int32_t n) {
  checkThat(n > 0, "unitBuckets needs n > 0", __FILE__, __LINE__);
  std::vector<double> bounds(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    bounds[static_cast<std::size_t>(i)] = static_cast<double>(i);
  }
  return bounds;
}

std::vector<double> Histogram::exponentialBuckets(double first, double factor,
                                                  std::int32_t count) {
  checkThat(first > 0 && factor > 1 && count > 0,
            "exponentialBuckets needs first > 0, factor > 1, count > 0",
            __FILE__, __LINE__);
  std::vector<double> bounds(static_cast<std::size_t>(count));
  double bound = first;
  for (std::int32_t i = 0; i < count; ++i) {
    bounds[static_cast<std::size_t>(i)] = bound;
    bound *= factor;
  }
  return bounds;
}

void Histogram::record(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  // First bucket whose inclusive upper bound holds x; past the last
  // bound, the overflow bucket.
  const auto it = std::lower_bound(upper_.begin(), upper_.end(), x);
  counts_[static_cast<std::size_t>(it - upper_.begin())] += 1;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the ceil(q*n)-th smallest sample (1-based), at least
  // the 1st.
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(clamped * static_cast<double>(count_))));
  std::int64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      // Bucket upper bound, clamped to the observed max so a coarse
      // bucketing never reports a percentile above any recorded sample.
      return b < upper_.size() ? std::min(upper_[b], max_) : max_;
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upperBounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name), Histogram(upperBounds))
      .first->second;
}

namespace {

void appendNumber(std::ostringstream& os, double value) {
  os.precision(17);
  os << value;
}

}  // namespace

std::string MetricsRegistry::toJson() const {
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": " << c.value();
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": ";
    appendNumber(os, g.value());
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": {\"count\": " << h.count() << ", \"min\": ";
    appendNumber(os, h.min());
    os << ", \"max\": ";
    appendNumber(os, h.max());
    os << ", \"mean\": ";
    appendNumber(os, h.mean());
    os << ", \"p50\": ";
    appendNumber(os, h.percentile(0.5));
    os << ", \"p90\": ";
    appendNumber(os, h.percentile(0.9));
    os << ", \"p99\": ";
    appendNumber(os, h.percentile(0.99));
    os << "}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::describe() const {
  std::ostringstream os;
  os << "metrics snapshot:\n";
  if (empty()) {
    os << "  (no instrumented layer published into the registry)\n";
    return os.str();
  }
  for (const auto& [name, c] : counters_) {
    os << "  " << name << " = " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "  " << name << " = " << g.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "  " << name << ": count=" << h.count() << " min=" << h.min()
       << " mean=" << h.mean() << " p50=" << h.percentile(0.5)
       << " p90=" << h.percentile(0.9) << " p99=" << h.percentile(0.99)
       << " max=" << h.max() << "\n";
  }
  return os.str();
}

}  // namespace treesched
