// Per-epoch time-series sink over the MetricsRegistry.
//
// The registry is an end-of-run snapshot; long-run scheduling work is
// evaluated by time-series behavior, not endpoint aggregates. An
// EpochSeries attached to the online solver snapshots the registry at
// every epoch boundary into JSONL rows — per-epoch counter DELTAS (what
// happened this epoch), current gauge levels, and histogram quantiles —
// so bench_online runs leave an epoch-by-epoch artifact next to their
// BENCH_*.json aggregate rows.
//
// Read-only like every src/obs/ sink: snapshot() only reads the
// registry, so attaching a series cannot perturb a bit-identity gate.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace treesched {

class MetricsRegistry;

class EpochSeries {
 public:
  /// Snapshots `metrics` (not owned; must outlive the series). `run`
  /// labels every row — bench_online writes one file across several
  /// runs, each tagged with its preset/pattern identity.
  explicit EpochSeries(const MetricsRegistry& metrics, std::string run = "");

  /// Appends one JSONL row for `epoch`: counters as deltas since the
  /// previous snapshot, gauges as levels, histograms as
  /// count/p50/p90/p99/max.
  void snapshot(std::int64_t epoch);

  std::int64_t snapshots() const { return snapshots_; }

  /// The accumulated JSONL rows (one JSON object per line).
  const std::string& jsonl() const { return lines_; }

  /// Writes jsonl() to `path`. Throws CheckError when the file cannot
  /// be opened.
  void write(const std::string& path) const;

 private:
  const MetricsRegistry* metrics_;
  std::string run_;
  std::string lines_;
  std::map<std::string, std::int64_t> previous_;  ///< last counter values
  std::int64_t snapshots_ = 0;
};

}  // namespace treesched
