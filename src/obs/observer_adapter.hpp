// ProtocolObserver → telemetry-plane adapter.
//
// TracingObserver is how the protocol's event hooks feed the tracer and
// the metrics registry: the engine wraps the caller's observer in one of
// these whenever DistributedOptions carries a tracer or a registry, so
// the observer remains the single event mechanism — tracing is an
// adapter over it, not a parallel instrumentation path.
//
// Span structure (all on tid 0, nested by construction):
//   phase1 ⊃ epoch ⊃ stage ⊃ step ⊃ mis, then phase2 (which also
//   covers the inter-phase slackness/consistency audit), with raise /
//   accept / reject / crash instants. A span closes when the next
//   same-or-higher-level boundary event arrives, so silent steps (which
//   emit no events) are attributed to the enclosing stage.
//
// Metrics: protocol.{epochs,stages,active_steps,raises,accepts,rejects,
// crash_events} counters plus protocol.{step_participants,mis_size,
// luby_rounds} histograms. Rejections additionally split per reason
// into protocol.rejects.{owner_crashed,demand_satisfied,
// capacity_exceeded} (the aggregate stays — the per-reason counters
// always sum to it, cross-checked in tests/observer_test.cpp).
// Instruments are resolved once, at construction; per-event work is
// branch + add/record — no allocation (the NullSink zero-allocation
// regression covers this path).
#pragma once

#include <array>
#include <cstdint>

#include "dist/observer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace treesched {

class TracingObserver final : public ProtocolObserver {
 public:
  /// Any argument may be null; `next` (the caller's observer) still sees
  /// every event. With all three null the adapter is inactive and the
  /// engine bypasses it entirely.
  TracingObserver(Tracer* tracer, MetricsRegistry* metrics,
                  ProtocolObserver* next);

  /// True when the adapter has a live tracer or a registry to feed.
  bool active() const { return trace_ || epochs_ != nullptr; }

  void onEpochBegin(std::int32_t epoch, std::int32_t groupMembers) override;
  void onStageBegin(std::int32_t epoch, std::int32_t stage,
                    double target) override;
  void onStepStart(std::int32_t epoch, std::int32_t stage, std::int32_t step,
                   std::int32_t participants) override;
  void onMisComplete(std::int64_t tuple, std::int32_t lubyRounds,
                     std::int32_t misSize) override;
  void onRaise(std::int64_t tuple, InstanceId instance, double delta) override;
  void onCrash(DemandId processor, std::int64_t tuple) override;
  void onPhase1Complete(std::int64_t activeSteps, std::int64_t raises) override;
  void onAccept(std::int64_t tuple, InstanceId instance) override;
  void onReject(std::int64_t tuple, InstanceId instance,
                RejectReason reason) override;
  void onPhase2Complete(std::int64_t accepts, std::int64_t rejects) override;

 private:
  void closeStep();
  void closeStage();
  void closeEpoch();

  Tracer* tracer_ = nullptr;
  bool trace_ = false;        ///< tracer present and enabled
  ProtocolObserver* next_ = nullptr;

  // Registry instruments (null when no registry attached).
  Counter* epochs_ = nullptr;
  Counter* stages_ = nullptr;
  Counter* steps_ = nullptr;
  Counter* raises_ = nullptr;
  Counter* accepts_ = nullptr;
  Counter* rejects_ = nullptr;
  /// Per-reason rejection counters, indexed by RejectReason.
  std::array<Counter*, 3> rejectsByReason_ = {nullptr, nullptr, nullptr};
  Counter* crashes_ = nullptr;
  Histogram* participants_ = nullptr;
  Histogram* misSize_ = nullptr;
  Histogram* lubyRounds_ = nullptr;

  // Open-span state (ticks; -1 = no span open).
  std::int64_t phase1Begin_ = -1;
  std::int64_t epochBegin_ = -1;
  std::int64_t stageBegin_ = -1;
  std::int64_t stepBegin_ = -1;
  std::int64_t phase2Begin_ = -1;
  std::int64_t curEpoch_ = -1;
  std::int64_t curStage_ = -1;
  std::int64_t curStep_ = -1;
};

}  // namespace treesched
