#include "obs/ledger.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace treesched {

const char* ledgerEventKindName(LedgerEventKind kind) {
  switch (kind) {
    case LedgerEventKind::Arrival:
      return "arrival";
    case LedgerEventKind::Placement:
      return "placement";
    case LedgerEventKind::Migration:
      return "migration";
    case LedgerEventKind::Crash:
      return "crash";
    case LedgerEventKind::DualRaise:
      return "dual_raise";
    case LedgerEventKind::Rejected:
      return "rejected";
    case LedgerEventKind::Admitted:
      return "admitted";
    case LedgerEventKind::Departure:
      return "departure";
  }
  return "unknown";
}

const char* rejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::OwnerCrashed:
      return "owner_crashed";
    case RejectReason::DemandSatisfied:
      return "demand_satisfied";
    case RejectReason::CapacityExceeded:
      return "capacity_exceeded";
  }
  return "unknown";
}

ProvenanceLedger::ProvenanceLedger(MetricsRegistry* metrics,
                                   LedgerMonitorConfig monitors)
    : monitors_(monitors) {
  if (metrics != nullptr) {
    alertSla_ = &metrics->counter("obs.alert.sla_breach");
    alertNeverAdmitted_ =
        &metrics->counter("obs.alert.never_admitted_departure");
    alertThrash_ = &metrics->counter("obs.alert.migration_thrash");
  }
}

void ProvenanceLedger::record(const LedgerEvent& event) {
  LedgerEvent stamped = event;
  stamped.epoch = epoch_;
  stamped.seq = nextSeq_++;
  events_.push_back(stamped);

  // Invariant monitors: the ledger is the one place that sees the whole
  // lifecycle, so the "something is structurally wrong" signals live
  // here rather than in any one layer.
  switch (stamped.kind) {
    case LedgerEventKind::Admitted:
      if (stamped.latencyEpochs > monitors_.slaEpochs) {
        ++slaBreaches_;
        if (alertSla_ != nullptr) alertSla_->add(1);
      }
      break;
    case LedgerEventKind::Departure:
      if (!stamped.admitted) {
        ++neverAdmittedDepartures_;
        if (alertNeverAdmitted_ != nullptr) alertNeverAdmitted_->add(1);
      }
      break;
    case LedgerEventKind::Migration: {
      const auto d = static_cast<std::size_t>(stamped.demand);
      if (migrationsOfDemand_.size() <= d) {
        migrationsOfDemand_.resize(d + 1, 0);
      }
      if (++migrationsOfDemand_[d] >= monitors_.migrationThrash) {
        ++thrashAlerts_;
        if (alertThrash_ != nullptr) alertThrash_->add(1);
      }
      break;
    }
    default:
      break;
  }
}

std::vector<LedgerEvent> ProvenanceLedger::canonicalEvents() const {
  std::vector<LedgerEvent> sorted = events_;
  std::sort(sorted.begin(), sorted.end(),
            [](const LedgerEvent& a, const LedgerEvent& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              if (a.demand != b.demand) return a.demand < b.demand;
              const auto sa = static_cast<std::uint8_t>(a.kind);
              const auto sb = static_cast<std::uint8_t>(b.kind);
              if (sa != sb) return sa < sb;
              return a.seq < b.seq;
            });
  return sorted;
}

namespace {

void appendNumber(std::ostringstream& os, double value) {
  os.precision(17);
  os << value;
}

void appendEvent(std::ostringstream& os, const LedgerEvent& e) {
  os << "{\"epoch\": " << e.epoch << ", \"demand\": " << e.demand
     << ", \"event\": \"" << ledgerEventKindName(e.kind)
     << "\", \"seq\": " << e.seq;
  switch (e.kind) {
    case LedgerEventKind::Arrival:
      break;
    case LedgerEventKind::Placement:
      os << ", \"processor\": " << e.toProcessor;
      break;
    case LedgerEventKind::Migration:
      os << ", \"from\": " << e.fromProcessor << ", \"to\": " << e.toProcessor;
      break;
    case LedgerEventKind::Crash:
      os << ", \"tuple\": " << e.tuple;
      break;
    case LedgerEventKind::DualRaise:
      os << ", \"instance\": " << e.instance << ", \"tuple\": " << e.tuple
         << ", \"alpha\": ";
      appendNumber(os, e.alphaIncrement);
      os << ", \"beta\": ";
      appendNumber(os, e.betaIncrement);
      break;
    case LedgerEventKind::Rejected:
      os << ", \"instance\": " << e.instance << ", \"tuple\": " << e.tuple
         << ", \"reason\": \"" << rejectReasonName(e.reason) << "\"";
      if (e.certInstance != kNoInstance) {
        os << ", \"cert_instance\": " << e.certInstance << ", \"cert_lhs\": ";
        appendNumber(os, e.certLhs);
        os << ", \"cert_threshold\": ";
        appendNumber(os, e.certThreshold);
      }
      break;
    case LedgerEventKind::Admitted:
      os << ", \"instance\": " << e.instance << ", \"tuple\": " << e.tuple
         << ", \"latency_epochs\": " << e.latencyEpochs;
      break;
    case LedgerEventKind::Departure:
      os << ", \"admitted\": " << (e.admitted ? "true" : "false");
      break;
  }
  os << "}";
}

}  // namespace

std::string ProvenanceLedger::toJsonl() const {
  std::ostringstream os;
  for (const LedgerEvent& e : canonicalEvents()) {
    appendEvent(os, e);
    os << "\n";
  }
  return os.str();
}

void ProvenanceLedger::writeJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw CheckError("ProvenanceLedger: cannot open " + path);
  out << toJsonl();
}

}  // namespace treesched
