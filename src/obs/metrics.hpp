// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// One MetricsRegistry collects everything a run publishes — protocol
// event counts, transport round/message totals, online admission-latency
// distributions — so a bench or demo can report a single end-to-end
// snapshot instead of stitching per-layer silos (NetworkStats,
// admissionSla(), ScheduleOutcome) together by hand.
//
// Determinism discipline: instruments are plain (non-atomic) slots
// updated only from serial sections — round boundaries, epoch
// boundaries, the observer hooks, which all run on the calling thread.
// Nothing here feeds back into algorithm state, so attaching a registry
// can never perturb a bit-identity gate.
//
// Hot-path discipline: instrument lookups (map find) happen once, at
// attach/construction time; the per-event operations are a few integer
// or double updates on preallocated storage. Lookups are
// string_view-transparent, so re-resolving an existing instrument
// performs no allocation — the NullSink zero-allocation regression
// (tests/telemetry_test.cpp) holds the whole plane to that.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace treesched {

/// Monotonic event count.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-written level (virtual time, load factors, ...).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram: p50/p90/p99/max without storing samples.
///
/// Buckets are inclusive upper bounds (sorted ascending) plus an
/// implicit overflow bucket; exact count/min/max/sum ride along.
/// percentile() resolves the nearest-rank sample to its bucket's upper
/// bound, clamped to the observed max (which also covers the overflow
/// bucket) — exact for integer-valued samples over unitBuckets(),
/// within one bucket width otherwise.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upperBounds);

  /// {0, 1, ..., n-1}: unit buckets, exact percentiles for non-negative
  /// integer samples below n.
  static std::vector<double> unitBuckets(std::int32_t n);
  /// {first, first*factor, first*factor^2, ...} (count bounds): wide
  /// dynamic range at bounded storage; percentiles within a factor.
  static std::vector<double> exponentialBuckets(double first, double factor,
                                                std::int32_t count);

  void record(double x);

  std::int64_t count() const { return count_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Nearest-rank percentile, q in [0, 1]; 0 when empty.
  double percentile(double q) const;

 private:
  std::vector<double> upper_;        ///< inclusive bucket upper bounds
  std::vector<std::int64_t> counts_; ///< upper_.size() + 1 (overflow last)
  std::int64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Get-or-create registry of named instruments. Returned references stay
/// valid for the registry's lifetime (node-based storage); names sort
/// deterministically in every snapshot.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upperBounds` configures the histogram on first creation and is
  /// ignored afterwards (the name keeps its original buckets).
  Histogram& histogram(std::string_view name,
                       std::span<const double> upperBounds);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// One flat JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,min,max,mean,p50,p90,p99}}} — the
  /// snapshot bench reports embed (bench/bench_common.hpp jsonField).
  std::string toJson() const;

  /// Human-readable snapshot table for --metrics output.
  std::string describe() const;

  // Read-only iteration over the registered instruments, in name order —
  // what the EpochSeries sink (obs/timeseries.hpp) snapshots at every
  // epoch boundary without going through a serialized string.
  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace treesched
