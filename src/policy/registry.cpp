#include "policy/registry.hpp"

#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace treesched {

namespace detail {
// Defined in policy/schedulers.cpp: registers the built-in family.
void registerBuiltinSchedulers(SchedulerRegistry& registry);
}  // namespace detail

std::span<const InstanceId> resolveActiveSet(
    const ScheduleContext& context, std::vector<InstanceId>& storage) {
  if (!context.active.empty()) return context.active;
  storage.resize(static_cast<std::size_t>(context.universe.numInstances()));
  for (InstanceId i = 0; i < context.universe.numInstances(); ++i) {
    storage[static_cast<std::size_t>(i)] = i;
  }
  return storage;
}

SchedulerRegistry& SchedulerRegistry::all() {
  static SchedulerRegistry* registry = [] {
    auto* r = new SchedulerRegistry();
    detail::registerBuiltinSchedulers(*r);
    return r;
  }();
  return *registry;
}

void SchedulerRegistry::add(SchedulerInfo info, Factory factory) {
  checkThat(!info.id.empty(), "scheduler id non-empty", __FILE__, __LINE__);
  checkThat(static_cast<bool>(factory), "scheduler factory non-null",
            __FILE__, __LINE__);
  checkThat(find(info.id) == nullptr, "scheduler id unique", __FILE__,
            __LINE__);
  entries_.push_back({std::move(info), std::move(factory)});
}

std::vector<std::string> SchedulerRegistry::ids(
    const std::regex& pattern) const {
  std::vector<std::string> result;
  for (const Entry& entry : entries_) {
    if (std::regex_match(entry.info.id, pattern)) {
      result.push_back(entry.info.id);
    }
  }
  return result;
}

std::vector<std::string> SchedulerRegistry::ids() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    result.push_back(entry.info.id);
  }
  return result;
}

bool SchedulerRegistry::has(const std::string& id) const {
  return find(id) != nullptr;
}

const SchedulerInfo& SchedulerRegistry::info(const std::string& id) const {
  const Entry* entry = find(id);
  checkThat(entry != nullptr, "known scheduler id", __FILE__, __LINE__);
  return entry->info;
}

std::unique_ptr<Scheduler> SchedulerRegistry::make(
    const std::string& id, const SchedulerConfig& config) const {
  const Entry* entry = find(id);
  if (entry == nullptr) {
    std::ostringstream message;
    message << "unknown scheduler id '" << id << "' (known:";
    for (const Entry& e : entries_) message << " " << e.info.id;
    message << ")";
    checkThat(false, message.str(), __FILE__, __LINE__);
  }
  return entry->factory(config);
}

const SchedulerRegistry::Entry* SchedulerRegistry::find(
    const std::string& id) const {
  for (const Entry& entry : entries_) {
    if (entry.info.id == id) return &entry;
  }
  return nullptr;
}

}  // namespace treesched
