#include "policy/online_policy.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "policy/registry.hpp"
#include "util/check.hpp"

namespace treesched {

namespace {

/// Active instances of the masked demands, ascending.
std::vector<InstanceId> activeInstancesOf(
    const InstanceUniverse& universe, const std::vector<std::uint8_t>& mask) {
  std::vector<InstanceId> ids;
  for (DemandId d = 0; d < universe.numDemands(); ++d) {
    if (mask[static_cast<std::size_t>(d)] == 0) continue;
    const auto span = universe.instancesOfDemand(d);
    ids.insert(ids.end(), span.begin(), span.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

ChurnRunResult runChurnWithScheduler(const ScenarioProblem& problem,
                                     const ChurnTrace& trace,
                                     const ChurnEngineConfig& config,
                                     const std::string& policyId) {
  if (policyId.empty() || policyId == "two_phase") {
    // The incremental engine runs over its own dynamic universe, grown
    // and garbage-collected along the trace; the static pool universe
    // below is untouched.
    checkThat(problem.treePool != nullptr || problem.linePool != nullptr,
              "scenario problem carries its pool handle", __FILE__, __LINE__);
    if (problem.treePool != nullptr) {
      DynamicUniverse universe = makeDynamicTreeUniverse(problem.treePool);
      return runChurnOverTrace(universe, trace, config);
    }
    DynamicUniverse universe = makeDynamicLineUniverse(problem.linePool);
    return runChurnOverTrace(universe, trace, config);
  }
  const InstanceUniverse& universe = problem.universe;
  const Layering& layering = problem.layering;
  const std::vector<std::vector<std::int32_t>>& access = problem.access;
  const SchedulerRegistry& registry = SchedulerRegistry::all();
  checkThat(registry.has(policyId), "known scheduler id for churn loop",
            __FILE__, __LINE__);

  SchedulerConfig base = SchedulerConfig::fromOnlineSolver(config.solver);

  ChurnRunResult result;
  const std::vector<EpochBatch> batches =
      batchTrace(trace, config.epochLength);
  result.epochs.reserve(batches.size());

  const auto numDemands = static_cast<std::size_t>(universe.numDemands());
  std::vector<std::uint8_t> mask(numDemands, 0);
  // SLA clocks (incremental.hpp semantics): epoch of the latest arrival
  // and of the first admission since (-1 while unadmitted).
  std::vector<std::int64_t> arrivalEpoch(numDemands, -1);
  std::vector<std::int64_t> admittedEpoch(numDemands, -1);
  std::int64_t latencySum = 0;
  // Unit-bucket latency histogram backing the SLA percentiles — the
  // same bucketing the incremental solver uses, so the bench's p50/p99
  // columns are comparable across scheduler ids.
  Histogram latencyHist(Histogram::unitBuckets(128));
  Tracer* tracer = config.solver.tracer;
  const bool traceEpochs = tracer != nullptr && tracer->enabled();

  Solution solution;
  double profit = 0;
  double fractionSum = 0;
  std::int64_t churnEpochs = 0;

  for (std::size_t k = 0; k < batches.size(); ++k) {
    const EpochBatch& batch = batches[k];
    const auto epochIndex = static_cast<std::int32_t>(k);
    const std::int64_t epochBegin = traceEpochs ? tracer->now() : 0;

    EpochOutcome outcome;
    outcome.epoch = epochIndex;
    outcome.protocolSeed = epochProtocolSeed(config.solver.seed, epochIndex);
    outcome.arrivals = static_cast<std::int32_t>(batch.arrivals.size());
    outcome.departures = static_cast<std::int32_t>(batch.departures.size());

    for (const DemandId d : batch.departures) {
      const auto slot = static_cast<std::size_t>(d);
      mask[slot] = 0;
      if (admittedEpoch[slot] < 0) ++result.sla.departedUnadmitted;
      arrivalEpoch[slot] = -1;
      admittedEpoch[slot] = -1;
    }
    for (const DemandId d : batch.arrivals) {
      const auto slot = static_cast<std::size_t>(d);
      mask[slot] = 1;
      arrivalEpoch[slot] = epochIndex;
      admittedEpoch[slot] = -1;
    }

    const bool churned = !batch.arrivals.empty() || !batch.departures.empty();
    if (churned) {
      const std::vector<InstanceId> active =
          activeInstancesOf(universe, mask);
      // Per-epoch seed, incremental-engine style: rebuild the scheduler
      // so every epoch's MIS priorities draw from its own keyed stream.
      SchedulerConfig epochConfig = base;
      epochConfig.core.seed = outcome.protocolSeed;
      const std::unique_ptr<Scheduler> scheduler =
          registry.make(policyId, epochConfig);
      const ScheduleOutcome solved = scheduler->solve(
          {universe, layering, access, active, nullptr});

      solution = solved.solution;
      profit = solved.profit;
      outcome.dualObjective = 0;
      outcome.dualUpperBound = solved.dualUpperBound;
      outcome.lambdaMeasured = solved.lambdaMeasured;
      outcome.raises = solved.raises;
      outcome.rounds = solved.rounds;
      outcome.messages = solved.messages;
      outcome.activeInstances = static_cast<std::int64_t>(active.size());
      outcome.affectedInstances = outcome.activeInstances;
      outcome.resolveFraction = outcome.activeInstances > 0 ? 1.0 : 0.0;
      outcome.fullResolve = true;
      fractionSum += outcome.resolveFraction;
      ++churnEpochs;
      ++result.fullResolves;
    }

    std::int32_t activeDemands = 0;
    for (const std::uint8_t alive : mask) activeDemands += alive;
    outcome.activeDemands = activeDemands;
    if (!churned) {
      outcome.activeInstances =
          result.epochs.empty() ? 0 : result.epochs.back().activeInstances;
    }
    outcome.affectedDemands =
        churned ? activeDemands : 0;  // from-scratch = whole active set
    outcome.solution = solution;
    outcome.profit = profit;

    // Admission clocks: a demand is admitted the first epoch one of its
    // instances appears in the solution since its latest arrival.
    for (const InstanceId i : solution.instances) {
      const auto d =
          static_cast<std::size_t>(universe.instance(i).demand);
      if (mask[d] != 0 && admittedEpoch[d] < 0) {
        admittedEpoch[d] = epochIndex;
        const std::int64_t latency = epochIndex - arrivalEpoch[d];
        latencySum += latency;
        latencyHist.record(static_cast<double>(latency));
        result.sla.maxLatencyEpochs =
            std::max(result.sla.maxLatencyEpochs, latency);
        ++result.sla.admittedDemands;
        ++outcome.newlyAdmittedDemands;
      }
    }

    result.totalRounds += outcome.rounds;
    result.totalMessages += outcome.messages;
    if (traceEpochs) {
      tracer->span("online_epoch", "online", 0, epochBegin,
                   {{"epoch", epochIndex},
                    {"arrivals", outcome.arrivals},
                    {"departures", outcome.departures}});
    }
    result.epochs.push_back(std::move(outcome));
  }

  result.finalSolution = solution;
  result.finalProfit = profit;
  result.finalActiveInstances = activeInstancesOf(universe, mask);
  result.meanResolveFraction =
      churnEpochs > 0 ? fractionSum / static_cast<double>(churnEpochs) : 0.0;
  if (result.sla.admittedDemands > 0) {
    result.sla.meanLatencyEpochs =
        static_cast<double>(latencySum) /
        static_cast<double>(result.sla.admittedDemands);
  }
  result.sla.p50LatencyEpochs = latencyHist.percentile(0.5);
  result.sla.p99LatencyEpochs = latencyHist.percentile(0.99);
  return result;
}

}  // namespace treesched
