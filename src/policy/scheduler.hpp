// The pluggable Scheduler interface (ROADMAP item 5).
//
// A Scheduler solves a *restricted active set* — any subset of a
// universe's instances — and reports revenue, feasibility and message
// cost. The restriction is what lets one interface span the whole
// algorithm family: a one-shot solve passes every instance; the online
// epoch loop (policy/online_policy.hpp) passes the instances of the
// demands alive this epoch.
//
// Implementations range from the paper's two-phase LP-dual protocol
// (which runs distributed, over a Transport, and pays wire cost) to
// centralized baselines (greedy, local search, EMR-style line packing)
// that solve with global knowledge and report zero messages — the
// honest comparison the tournament bench makes explicit: the paper
// algorithm competes on revenue while paying for distribution.
//
// Contract every implementation must honour:
//  * the returned solution is feasible on the universe and uses only
//    instances from `context.active`;
//  * the run is deterministic in (universe, active, config) — all
//    randomness is keyed hashing, so repeated solves are bit-identical
//    at any thread count;
//  * `messages`/`rounds` cover exactly the traffic this solve caused.
//
// Schedulers are addressable by id string through SchedulerRegistry
// (policy/registry.hpp); `SchedulerRegistry::all().make(id, config)` is
// the single public entry surface for "run a scheduler".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/solution.hpp"
#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "net/transport.hpp"
#include "policy/config.hpp"

namespace treesched {

/// Everything a scheduler may read during one solve. The referenced
/// structures must outlive the call.
struct ScheduleContext {
  const InstanceUniverse& universe;  ///< conflicts must be built
  const Layering& layering;
  /// Accessibility lists of the underlying problem (access[d] = network
  /// ids demand d may use) — the communication-graph signal for
  /// schedulers that run over a wire.
  const std::vector<std::vector<std::int32_t>>& access;
  /// Instances the scheduler may select, sorted ascending. An empty span
  /// means the whole universe.
  std::span<const InstanceId> active;
  /// Optional wire to run over. Distributed schedulers use it when
  /// given and build a private round-synchronous bus when null;
  /// centralized baselines ignore it.
  Transport* transport = nullptr;
};

/// What one solve reports: the admitted solution plus the leaderboard
/// columns (revenue, certificate, message cost).
struct ScheduleOutcome {
  Solution solution;  ///< instance ids, sorted ascending
  double profit = 0;
  /// Dual (LP) upper bound on OPT over the active set; 0 when the
  /// scheduler carries no certificate (the baselines).
  double dualUpperBound = 0;
  double lambdaMeasured = 0;  ///< 0 when not a primal-dual run
  /// Wire cost of this solve; zero for centralized schedulers.
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t raises = 0;  ///< phase-1 raises; 0 for non-dual schedulers
};

/// Static metadata of one registered scheduler.
struct SchedulerInfo {
  std::string id;       ///< registry key, e.g. "two_phase/narrow"
  std::string summary;  ///< one line for tables and --list-policies
  /// True when the scheduler reports a per-run optimality certificate
  /// (dualUpperBound > 0).
  bool certified = false;
  /// True when the solve exchanges messages over a transport.
  bool distributed = false;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual const SchedulerInfo& info() const = 0;

  /// Solves the restricted active set. Must be callable repeatedly and
  /// from multiple Scheduler instances concurrently (no hidden shared
  /// state).
  virtual ScheduleOutcome solve(const ScheduleContext& context) = 0;
};

/// Resolves `context.active`: the given span, or (when empty) the full
/// ascending instance list of the universe written into `storage`.
std::span<const InstanceId> resolveActiveSet(
    const ScheduleContext& context, std::vector<InstanceId>& storage);

}  // namespace treesched
