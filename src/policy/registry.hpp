// Static factory registry over every scheduler (ROADMAP item 5).
//
// The `solver_t::all().ids(std::regex)` idiom: a process-wide catalogue
// of scheduler factories, addressable by id string, filterable by
// regex, so benches, tests and demos enumerate the family instead of
// hardcoding entry points:
//
//   for (const auto& id : SchedulerRegistry::all().ids(std::regex(".*")))
//     auto outcome = SchedulerRegistry::all().make(id, config)->solve(ctx);
//
// Built-in ids (policy/schedulers.cpp):
//   two_phase              — the paper's two-phase LP-dual protocol run
//                            distributed over a Transport (reference;
//                            bit-identical to runTwoPhase);
//   two_phase/full_mis     — MIS axis: exhaustive Luby MIS per step
//                            (no round budget) instead of the budgeted
//                            default;
//   two_phase/threshold    — schedule axis: the Panconesi–Sozio
//                            threshold plan (centralized engine — the
//                            distributed protocol implements the staged
//                            plan only);
//   two_phase/local_search — admission axis: phase-2 admission
//                            post-processed by deterministic local
//                            search;
//   greedy                 — profit-greedy baseline (src/exact/);
//   greedy/local_search    — greedy + ADD/SWAP local search;
//   emr_line_pack          — Even–Medina–Rosén-style line packet
//                            scheduling adapted to the revenue
//                            objective (policy/line_pack.hpp).
//
// The raise-policy axis (§6 narrow rule) is selected through
// SchedulerConfig::core.rule rather than a registered id: the narrow
// rule is only defined over narrow (height <= 1/2) instances, so it
// cannot run on the unit-height preset catalogue every registered id
// must survive.
//
// Registration is idempotent per process and ids are unique — a
// duplicate id throws. New schedulers register through
// SchedulerRegistry::all().add(info, factory) (typically from a
// translation unit's initialization, or explicitly before first use).
#pragma once

#include <functional>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "policy/scheduler.hpp"

namespace treesched {

class SchedulerRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Scheduler>(const SchedulerConfig&)>;

  /// The process-wide registry, built-ins registered on first use.
  static SchedulerRegistry& all();

  /// Registers a scheduler; throws CheckError on a duplicate or empty id.
  void add(SchedulerInfo info, Factory factory);

  /// Every registered id matching `pattern`, in registration order.
  std::vector<std::string> ids(const std::regex& pattern) const;
  /// Every registered id, in registration order.
  std::vector<std::string> ids() const;

  bool has(const std::string& id) const;

  /// Metadata of one id; throws CheckError when unknown.
  const SchedulerInfo& info(const std::string& id) const;

  /// Instantiates the scheduler behind `id` with `config`; throws
  /// CheckError (listing the known ids) when unknown.
  std::unique_ptr<Scheduler> make(const std::string& id,
                                  const SchedulerConfig& config = {}) const;

 private:
  struct Entry {
    SchedulerInfo info;
    Factory factory;
  };

  const Entry* find(const std::string& id) const;

  std::vector<Entry> entries_;
};

}  // namespace treesched
