#include "policy/config.hpp"

namespace treesched {

FrameworkConfig SchedulerConfig::framework() const {
  FrameworkConfig config;
  config.epsilon = core.epsilon;
  config.raise = core.rule;
  config.schedule = core.schedule;
  config.hmin = core.hmin;
  config.seed = core.seed;
  config.misRoundBudget = core.misRoundBudget;
  config.fixedSchedule = core.fixedSchedule;
  config.stepsPerStage = core.stepsPerStage;
  config.stepCap = core.stepCap;
  return config;
}

DistributedOptions SchedulerConfig::distributedOptions() const {
  DistributedOptions options;
  options.epsilon = core.epsilon;
  options.rule = core.rule;
  options.hmin = core.hmin;
  options.seed = core.seed;
  options.threads = distributed.threads;
  options.misRoundBudget = core.misRoundBudget;
  options.stepsPerStage = core.stepsPerStage;
  options.crashProcessors = distributed.crashProcessors;
  options.crashAtTuple = distributed.crashAtTuple;
  options.recordRaiseLog = distributed.recordRaiseLog;
  options.observer = distributed.observer;
  options.tracer = distributed.tracer;
  options.metrics = distributed.metrics;
  options.ledger = distributed.ledger;
  return options;
}

SolverOptions SchedulerConfig::solverOptions() const {
  SolverOptions options;
  options.epsilon = core.epsilon;
  options.seed = core.seed;
  options.schedule = core.schedule;
  options.decomposition = core.decomposition;
  options.misRoundBudget = core.misRoundBudget;
  options.fixedSchedule = core.fixedSchedule;
  options.stepsPerStage = core.stepsPerStage;
  options.hmin = core.hmin == 1.0 ? 0.0 : core.hmin;  // 0 = derive
  return options;
}

OnlineSolverConfig SchedulerConfig::onlineSolver() const {
  OnlineSolverConfig config;
  config.epsilon = core.epsilon;
  config.rule = core.rule;
  config.hmin = core.hmin;
  config.seed = core.seed;
  config.misRoundBudget = core.misRoundBudget;
  config.stepsPerStage = core.stepsPerStage;
  config.threads = distributed.threads;
  config.tracer = distributed.tracer;
  config.metrics = distributed.metrics;
  config.ledger = distributed.ledger;
  config.series = online.series;
  config.rebalance = online.rebalance;
  return config;
}

SchedulerConfig SchedulerConfig::fromFramework(const FrameworkConfig& config) {
  SchedulerConfig result;
  result.core.epsilon = config.epsilon;
  result.core.rule = config.raise;
  result.core.schedule = config.schedule;
  result.core.hmin = config.hmin;
  result.core.seed = config.seed;
  result.core.misRoundBudget = config.misRoundBudget;
  result.core.fixedSchedule = config.fixedSchedule;
  result.core.stepsPerStage = config.stepsPerStage;
  result.core.stepCap = config.stepCap;
  return result;
}

SchedulerConfig SchedulerConfig::fromSolverOptions(
    const SolverOptions& options) {
  SchedulerConfig result;
  result.core.epsilon = options.epsilon;
  result.core.seed = options.seed;
  result.core.schedule = options.schedule;
  result.core.decomposition = options.decomposition;
  result.core.misRoundBudget = options.misRoundBudget;
  result.core.fixedSchedule = options.fixedSchedule;
  result.core.stepsPerStage = options.stepsPerStage;
  if (options.hmin > 0) result.core.hmin = options.hmin;
  return result;
}

SchedulerConfig SchedulerConfig::fromDistributedOptions(
    const DistributedOptions& options) {
  SchedulerConfig result;
  result.core.epsilon = options.epsilon;
  result.core.rule = options.rule;
  result.core.hmin = options.hmin;
  result.core.seed = options.seed;
  result.core.misRoundBudget = options.misRoundBudget;
  result.core.stepsPerStage = options.stepsPerStage;
  result.core.fixedSchedule = true;  // the protocol always runs fixed
  result.distributed.threads = options.threads;
  result.distributed.crashProcessors = options.crashProcessors;
  result.distributed.crashAtTuple = options.crashAtTuple;
  result.distributed.recordRaiseLog = options.recordRaiseLog;
  result.distributed.observer = options.observer;
  result.distributed.tracer = options.tracer;
  result.distributed.metrics = options.metrics;
  result.distributed.ledger = options.ledger;
  return result;
}

SchedulerConfig SchedulerConfig::fromOnlineSolver(
    const OnlineSolverConfig& config) {
  SchedulerConfig result;
  result.core.epsilon = config.epsilon;
  result.core.rule = config.rule;
  result.core.hmin = config.hmin;
  result.core.seed = config.seed;
  result.core.misRoundBudget = config.misRoundBudget;
  result.core.stepsPerStage = config.stepsPerStage;
  result.core.fixedSchedule = true;  // the online path always runs fixed
  result.distributed.threads = config.threads;
  result.distributed.tracer = config.tracer;
  result.distributed.metrics = config.metrics;
  result.distributed.ledger = config.ledger;
  result.online.series = config.series;
  result.online.rebalance = config.rebalance;
  return result;
}

}  // namespace treesched
