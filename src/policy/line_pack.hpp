// Even–Medina–Rosén-style packing baseline adapted to revenue
// (PAPERS.md: "A Constant Approximation Algorithm for Scheduling
// Packets on Line Networks", arXiv:1602.06174).
//
// EMR schedule packets on a line by classifying them into geometric
// classes and running a per-class greedy packing whose decisions depend
// only on local congestion. This module instantiates that recipe for
// the static revenue objective on line and tree networks:
//
//  1. Classify instances into geometric *density classes*: class k
//     holds instances with profit density p / |path| in
//     [dmax / 2^(k+1), dmax / 2^k). Packing per class trades at most a
//     factor 2 of density within the class — the EMR classification
//     argument.
//  2. Within a class, pack in *earliest-endpoint* order (max path
//     endpoint ascending, then id): the classic optimal rule for
//     unweighted interval selection on a line, which is what a class
//     approximates after step 1 flattens the profits.
//  3. Classes are processed densest first against one shared
//     feasibility oracle (edge capacities + one instance per demand),
//     so a sparse class never blocks a dense one.
//
// Fully deterministic, needs no layering and no messages (it is a
// centralized baseline), and returns a feasible solution on any
// universe. No approximation factor is claimed beyond the line
// unit-height setting the EMR analysis targets; on trees it is a
// heuristic comparator — exactly the role it plays in the tournament.
#pragma once

#include <cstdint>
#include <span>

#include "core/solution.hpp"
#include "core/universe.hpp"

namespace treesched {

struct LinePackResult {
  Solution solution;  ///< instance ids, sorted ascending
  double profit = 0;
  std::int32_t densityClasses = 0;  ///< non-empty classes encountered
};

/// Packs the restricted active set (sorted ascending; empty = whole
/// universe). Requires no conflict adjacency — only paths and profits.
LinePackResult emrLinePack(const InstanceUniverse& universe,
                           std::span<const InstanceId> active);

}  // namespace treesched
