// Unified layered scheduler configuration (the registry's one config).
//
// Before the policy registry, three overlapping config structs grew up
// around the same knobs: FrameworkConfig (a.k.a. the two-phase config,
// framework/two_phase.hpp), SolverOptions (algo/tree_solvers.hpp) and
// DistributedOptions (dist/protocol.hpp). Each carried a subset of
// {epsilon, raise rule, schedule policy, decomposition, hmin, seed, MIS
// budget, fixed schedule, steps per stage} plus layer-specific extras,
// and every bench/test picked one and copied fields across by hand.
//
// SchedulerConfig is the superset, split into the layers the knobs
// belong to:
//   * core        — the algorithmic knobs every engine shares;
//   * distributed — execution-engine extras (threads, crash injection,
//                   raise log, observer);
//   * online      — churn-engine extras (epoch length, live transport).
// The legacy structs remain as thin per-layer views so existing call
// sites compile unchanged; new code (the registry, bench_tournament,
// policy tests, the demos) builds one SchedulerConfig and converts at
// the boundary with the projection/lifting helpers below. Exactly one
// field-by-field mapping exists per legacy struct — here, not at call
// sites.
#pragma once

#include <cstdint>

#include "algo/tree_solvers.hpp"
#include "dist/protocol.hpp"
#include "framework/two_phase.hpp"
#include "net/live_transport.hpp"
#include "online/incremental.hpp"

namespace treesched {

/// Algorithmic knobs shared by the centralized engine, the distributed
/// protocol and the online re-solver. Defaults match FrameworkConfig
/// except `fixedSchedule`: the registry always runs the fixed global
/// schedule (like the online path) so every scheduler id is comparable
/// across engines and bit-identity gates can hold.
struct SchedulerCoreConfig {
  double epsilon = 0.1;  ///< staged: lambda = 1-eps; threshold: 1/(5+eps)
  RaiseRule rule = RaiseRule::Unit;
  SchedulePolicy schedule = SchedulePolicy::Staged;
  /// Tree decomposition behind the layering (trees only; consumed by the
  /// SolverOptions projection).
  DecompositionKind decomposition = DecompositionKind::Ideal;
  double hmin = 1.0;       ///< min height, used by the narrow staged plan
  std::uint64_t seed = 1;  ///< drives MIS priorities (deterministic)
  std::int32_t misRoundBudget = 0;  ///< <= 0: run Luby to completion
  bool fixedSchedule = true;        ///< the registry's schedule contract
  std::int32_t stepsPerStage = 0;   ///< 0 = derive from pmax/pmin
  std::int32_t stepCap = 100000;    ///< safety valve (FrameworkConfig)
};

/// Execution-engine extras of the distributed protocol.
struct SchedulerDistributedConfig {
  /// Worker threads for the intra-round parallel sections; bit-identical
  /// results at any value (the engine guarantee).
  std::int32_t threads = 1;
  /// Crash-stop fault injection (dist/protocol.hpp semantics).
  std::vector<DemandId> crashProcessors;
  std::int64_t crashAtTuple = 0;
  bool recordRaiseLog = false;
  ProtocolObserver* observer = nullptr;
  /// Telemetry plane (src/obs/): one registry + tracer per run, shared
  /// by every layer the config reaches (protocol, transport, thread
  /// pool, online solver). Strictly read-only observation.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Decision provenance ledger (obs/ledger.hpp): per-demand lifecycle
  /// events with dual certificates. Read-only like the rest of the
  /// telemetry plane; null (or a NullLedger) keeps the hot loop on the
  /// allocation-free path.
  LedgerSink* ledger = nullptr;
};

/// Churn-engine extras of the online epoch loop.
struct SchedulerOnlineConfig {
  double epochLength = 8.0;       ///< virtual time per epoch batch
  LiveTransportConfig transport;  ///< wire the epochs run over
  /// Epoch-boundary hot-shard rebalancing (sharded transports only;
  /// wire accounting, never the schedule).
  ShardRebalanceConfig rebalance;
  /// Per-epoch MetricsRegistry snapshots (obs/timeseries.hpp); the
  /// online solver calls snapshot() at every epoch boundary.
  EpochSeries* series = nullptr;
};

/// The one layered config the policy registry consumes.
struct SchedulerConfig {
  SchedulerCoreConfig core;
  SchedulerDistributedConfig distributed;
  SchedulerOnlineConfig online;

  // ---- Projections onto the legacy per-layer structs -------------------
  FrameworkConfig framework() const;
  DistributedOptions distributedOptions() const;
  SolverOptions solverOptions() const;
  OnlineSolverConfig onlineSolver() const;

  // ---- Liftings from the legacy structs (unset layers keep defaults) --
  static SchedulerConfig fromFramework(const FrameworkConfig& config);
  static SchedulerConfig fromSolverOptions(const SolverOptions& options);
  static SchedulerConfig fromDistributedOptions(
      const DistributedOptions& options);
  static SchedulerConfig fromOnlineSolver(const OnlineSolverConfig& config);
};

}  // namespace treesched
