// Built-in schedulers of the policy registry (policy/registry.hpp).
//
// The two-phase family runs the paper's LP-dual protocol — distributed
// over a Transport (a private round-synchronous bus when the context
// carries none) via runDistributedWarmStart, so the reference entry is
// bit-identical to runTwoPhase under the registry's fixed-schedule
// contract and pays real wire cost. Variant entries expose the policy
// axes: the exhaustive-Luby MIS variant, the Panconesi–Sozio threshold
// schedule (centralized engine — the distributed protocol implements
// the staged plan only) and a local-search admission post-pass; the
// raise-policy axis (§6 narrow rule) is a SchedulerConfig::core.rule
// choice since it only runs on narrow-height universes.
//
// The baselines (greedy, greedy/local_search, emr_line_pack) are
// centralized: global knowledge, zero messages — the tournament's
// honest comparison axis.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "dist/sim_network.hpp"
#include "exact/greedy.hpp"
#include "exact/local_search.hpp"
#include "framework/two_phase.hpp"
#include "policy/line_pack.hpp"
#include "policy/registry.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

/// Shared plumbing: resolve the active set, run, fill the outcome.
class SchedulerBase : public Scheduler {
 public:
  explicit SchedulerBase(SchedulerInfo info, SchedulerConfig config)
      : info_(std::move(info)), config_(std::move(config)) {}

  const SchedulerInfo& info() const override { return info_; }

 protected:
  SchedulerInfo info_;
  SchedulerConfig config_;
};

// ---- two_phase family ---------------------------------------------------

/// Which policy-axis variant a TwoPhaseScheduler instantiates. The
/// raise rule itself comes from SchedulerConfig::core.rule (the narrow
/// rule only runs on narrow-height universes, so it is a config choice,
/// not a registered id).
struct TwoPhaseVariant {
  SchedulePolicy schedule = SchedulePolicy::Staged;
  /// True: exhaustive Luby MIS per step (misRoundBudget 0) instead of
  /// the configured budget — the MIS policy axis.
  bool exhaustiveMis = false;
  bool localSearchAdmission = false;
};

class TwoPhaseScheduler : public SchedulerBase {
 public:
  TwoPhaseScheduler(SchedulerInfo info, SchedulerConfig config,
                    TwoPhaseVariant variant)
      : SchedulerBase(std::move(info), std::move(config)),
        variant_(variant) {
    // The §6 narrow stage plan is only defined for hmin in (0, 1/2];
    // clamp to the boundary when a narrow-rule config arrives with the
    // generic default (1.0).
    if (config_.core.rule == RaiseRule::Narrow && config_.core.hmin > 0.5) {
      config_.core.hmin = 0.5;
    }
    if (variant_.exhaustiveMis) config_.core.misRoundBudget = 0;
  }

  ScheduleOutcome solve(const ScheduleContext& context) override {
    checkThat(context.universe.conflictsBuilt(),
              "conflicts built before scheduler solve", __FILE__, __LINE__);
    std::vector<InstanceId> storage;
    const std::span<const InstanceId> active =
        resolveActiveSet(context, storage);

    ScheduleOutcome outcome;
    if (variant_.schedule == SchedulePolicy::Threshold) {
      solveCentralized(context, active, outcome);
    } else {
      solveDistributed(context, active, outcome);
    }
    if (variant_.localSearchAdmission) {
      const LocalSearchResult improved = improveSolutionRestricted(
          context.universe, outcome.solution, active);
      outcome.solution = improved.solution;
      outcome.profit = improved.profit;
    }
    return outcome;
  }

 private:
  /// The threshold-schedule variant runs the centralized engine: the
  /// distributed protocol walks the staged plan only.
  void solveCentralized(const ScheduleContext& context,
                        std::span<const InstanceId> active,
                        ScheduleOutcome& outcome) const {
    FrameworkConfig config = config_.framework();
    config.schedule = variant_.schedule;
    config.fixedSchedule = true;
    TwoPhaseResult result = runTwoPhaseRestricted(
        context.universe, context.layering, config, active);
    outcome.solution = std::move(result.solution);
    std::sort(outcome.solution.instances.begin(),
              outcome.solution.instances.end());
    outcome.profit = result.profit;
    outcome.dualUpperBound = result.dualUpperBound;
    outcome.lambdaMeasured = result.stats.lambdaMeasured;
    outcome.raises = result.stats.raises;
  }

  void solveDistributed(const ScheduleContext& context,
                        std::span<const InstanceId> active,
                        ScheduleOutcome& outcome) const {
    DistributedOptions options = config_.distributedOptions();

    WarmStart warm;
    warm.activeInstances.assign(active.begin(), active.end());

    DistributedResult result;
    if (context.transport != nullptr) {
      // External (possibly long-lived) wire: report the traffic delta of
      // this solve, not the transport's cumulative accounting.
      const NetworkStats before = context.transport->stats();
      result = runDistributedWarmStart(context.universe, context.layering,
                                       *context.transport, options, warm);
      outcome.rounds = result.network.rounds - before.rounds;
      outcome.messages = result.network.messages - before.messages;
    } else {
      SimNetwork bus(communicationGraph(
          context.access, context.universe.numNetworks()));
      result = runDistributedWarmStart(context.universe, context.layering,
                                       bus, options, warm);
      outcome.rounds = result.network.rounds;
      outcome.messages = result.network.messages;
    }
    outcome.solution = std::move(result.solution);  // already ascending
    outcome.profit = result.profit;
    outcome.dualUpperBound = result.dualUpperBound;
    outcome.lambdaMeasured = result.lambdaMeasured;
    outcome.raises = result.raises;
  }

  TwoPhaseVariant variant_;
};

// ---- Centralized baselines ----------------------------------------------

class GreedyScheduler : public SchedulerBase {
 public:
  GreedyScheduler(SchedulerInfo info, SchedulerConfig config,
                  bool localSearch)
      : SchedulerBase(std::move(info), std::move(config)),
        localSearch_(localSearch) {}

  ScheduleOutcome solve(const ScheduleContext& context) override {
    std::vector<InstanceId> storage;
    const std::span<const InstanceId> active =
        resolveActiveSet(context, storage);
    ScheduleOutcome outcome;
    const GreedyResult greedy =
        greedyByProfitRestricted(context.universe, active);
    if (localSearch_) {
      const LocalSearchResult improved =
          improveSolutionRestricted(context.universe, greedy.solution, active);
      outcome.solution = improved.solution;
      outcome.profit = improved.profit;
    } else {
      outcome.solution = greedy.solution;
      std::sort(outcome.solution.instances.begin(),
                outcome.solution.instances.end());
      outcome.profit = greedy.profit;
    }
    return outcome;
  }

 private:
  bool localSearch_;
};

class LinePackScheduler : public SchedulerBase {
 public:
  using SchedulerBase::SchedulerBase;

  ScheduleOutcome solve(const ScheduleContext& context) override {
    std::vector<InstanceId> storage;
    const std::span<const InstanceId> active =
        resolveActiveSet(context, storage);
    LinePackResult packed = emrLinePack(context.universe, active);
    ScheduleOutcome outcome;
    outcome.solution = std::move(packed.solution);
    outcome.profit = packed.profit;
    return outcome;
  }
};

}  // namespace

namespace detail {

void registerBuiltinSchedulers(SchedulerRegistry& registry) {
  const auto twoPhase = [](SchedulerInfo info, TwoPhaseVariant variant) {
    return [info = std::move(info),
            variant](const SchedulerConfig& config)
               -> std::unique_ptr<Scheduler> {
      return std::make_unique<TwoPhaseScheduler>(info, config, variant);
    };
  };

  SchedulerInfo reference{
      "two_phase",
      "paper two-phase LP-dual protocol over a Transport (reference)",
      /*certified=*/true, /*distributed=*/true};
  registry.add(reference, twoPhase(reference, {}));

  SchedulerInfo fullMis{
      "two_phase/full_mis",
      "MIS axis: exhaustive Luby MIS per step over a Transport",
      /*certified=*/true, /*distributed=*/true};
  registry.add(fullMis,
               twoPhase(fullMis, {SchedulePolicy::Staged, true, false}));

  SchedulerInfo threshold{
      "two_phase/threshold",
      "schedule axis: Panconesi-Sozio threshold plan (centralized engine)",
      /*certified=*/true, /*distributed=*/false};
  registry.add(threshold,
               twoPhase(threshold, {SchedulePolicy::Threshold, false,
                                    false}));

  SchedulerInfo postLs{
      "two_phase/local_search",
      "admission axis: phase-2 admission + deterministic local search",
      /*certified=*/true, /*distributed=*/true};
  registry.add(postLs,
               twoPhase(postLs, {SchedulePolicy::Staged, false, true}));

  SchedulerInfo greedy{"greedy",
                       "profit-greedy baseline (centralized, no guarantee)",
                       /*certified=*/false, /*distributed=*/false};
  registry.add(greedy, [greedy](const SchedulerConfig& config)
                           -> std::unique_ptr<Scheduler> {
    return std::make_unique<GreedyScheduler>(greedy, config, false);
  });

  SchedulerInfo greedyLs{
      "greedy/local_search",
      "profit-greedy + ADD/SWAP local search (centralized baseline)",
      /*certified=*/false, /*distributed=*/false};
  registry.add(greedyLs, [greedyLs](const SchedulerConfig& config)
                             -> std::unique_ptr<Scheduler> {
    return std::make_unique<GreedyScheduler>(greedyLs, config, true);
  });

  SchedulerInfo linePack{
      "emr_line_pack",
      "Even-Medina-Rosen-style density-class packing adapted to revenue",
      /*certified=*/false, /*distributed=*/false};
  registry.add(linePack, [linePack](const SchedulerConfig& config)
                             -> std::unique_ptr<Scheduler> {
    return std::make_unique<LinePackScheduler>(linePack, config);
  });
}

}  // namespace detail
}  // namespace treesched
