// Scheduler-generic online epoch loop: any registry id over a churn
// trace.
//
// The warm-started incremental engine (online/churn_engine.hpp) IS the
// online form of the paper's two-phase scheduler; this module is what
// "wired into the online epoch loop" means for everything else in the
// registry. The trace is cut into the same epoch batches (batchTrace),
// the same active-demand bookkeeping and admission-latency SLA clocks
// run, but each churn epoch admits by a from-scratch scheduler solve on
// the restricted active set instead of a warm incremental re-solve —
// which is the only online form a baseline without persistent dual
// state has. Per-epoch protocol seeds follow epochProtocolSeed, so a
// registry two-phase epoch and an incremental epoch at the same index
// run the same seed.
//
// Dispatch: the id "two_phase" routes to the incremental churn engine
// (the reference path, warm re-solves over the live transport); every
// other id runs the scheduler loop below. This is what lets benches and
// demos say `--policy <id>` and mean the whole family.
#pragma once

#include <string>

#include "gen/scenario.hpp"
#include "online/churn_engine.hpp"
#include "policy/scheduler.hpp"

namespace treesched {

/// Runs `trace` under the scheduler behind `policyId`
/// (SchedulerRegistry::all()). "two_phase" builds a DynamicUniverse
/// from the problem's pool handle and delegates to runChurnOverTrace
/// (the incremental engine); other ids run the from-scratch-per-epoch
/// scheduler loop over the problem's static universe (their
/// ChurnRunResult reports resolveFraction 1 on every churn epoch, and
/// wire accounting only when the scheduler is distributed). Throws
/// CheckError on an unknown id.
ChurnRunResult runChurnWithScheduler(const ScenarioProblem& problem,
                                     const ChurnTrace& trace,
                                     const ChurnEngineConfig& config,
                                     const std::string& policyId);

}  // namespace treesched
