#include "policy/line_pack.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace treesched {

namespace {

/// Geometric class index of `density` relative to `dmax`: 0 for
/// [dmax/2, dmax], 1 for [dmax/4, dmax/2), ... Clamped so degenerate
/// densities (0, or denormal ratios) land in a last catch-all class.
std::int32_t densityClassOf(double density, double dmax) {
  constexpr std::int32_t kMaxClass = 62;
  if (!(density > 0) || !(dmax > 0)) return kMaxClass;
  const double ratio = dmax / density;
  if (ratio <= 1.0) return 0;
  const auto k = static_cast<std::int32_t>(std::floor(std::log2(ratio)));
  return std::min(std::max(k, 0), kMaxClass);
}

}  // namespace

LinePackResult emrLinePack(const InstanceUniverse& universe,
                           std::span<const InstanceId> active) {
  std::vector<InstanceId> storage;
  if (active.empty()) {
    storage.resize(static_cast<std::size_t>(universe.numInstances()));
    for (InstanceId i = 0; i < universe.numInstances(); ++i) {
      storage[static_cast<std::size_t>(i)] = i;
    }
    active = storage;
  }

  LinePackResult result;
  if (active.empty()) return result;

  // Pass 1: the maximum profit density over the active set anchors the
  // geometric classification.
  double dmax = 0;
  for (const InstanceId i : active) {
    const InstanceRecord& record = universe.instance(i);
    const double length = std::max(1, record.pathLength());
    dmax = std::max(dmax, record.profit / length);
  }

  // Pass 2: order by (class ascending = densest first; max endpoint
  // ascending = earliest-finishing within the class; id ascending).
  struct Key {
    InstanceId id;
    std::int32_t klass;
    VertexId endpoint;
  };
  std::vector<Key> keys;
  keys.reserve(active.size());
  for (const InstanceId i : active) {
    const InstanceRecord& record = universe.instance(i);
    const double length = std::max(1, record.pathLength());
    keys.push_back({i, densityClassOf(record.profit / length, dmax),
                    std::max(record.u, record.v)});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.klass != b.klass) return a.klass < b.klass;
    if (a.endpoint != b.endpoint) return a.endpoint < b.endpoint;
    return a.id < b.id;
  });

  std::int32_t lastClass = -1;
  FeasibilityOracle oracle(universe);
  for (const Key& key : keys) {
    if (key.klass != lastClass) {
      lastClass = key.klass;
      ++result.densityClasses;
    }
    if (oracle.canAdd(key.id)) {
      oracle.add(key.id);
    }
  }

  result.solution = oracle.solution();
  std::sort(result.solution.instances.begin(),
            result.solution.instances.end());
  result.profit = oracle.profit();
  return result;
}

}  // namespace treesched
