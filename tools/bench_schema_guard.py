#!/usr/bin/env python3
"""Bench-report schema drift guard.

The bench binaries emit machine-readable BENCH_*.json reports (arrays of
flat objects) that CI uploads as artifacts and downstream tooling tracks
across PRs. A refactor that silently drops a report file or renames a
field breaks that trajectory without failing any test. This guard pins
the schema: `bench/BENCH_SCHEMA.json` lists, per report file, the keys
every consumer may rely on; the check fails when a baseline file is
missing or any baseline key disappeared from it.

New files and new keys are allowed (the schema only grows); removing or
renaming either requires a deliberate baseline update in the same PR.

Usage:
  tools/bench_schema_guard.py --baseline bench/BENCH_SCHEMA.json \
      --dir build            # check reports in build/ (CI step)
  tools/bench_schema_guard.py --baseline bench/BENCH_SCHEMA.json \
      --dir build --update   # regenerate the baseline from the reports
"""

import argparse
import json
import os
import sys


def report_keys(path):
    """Union of keys over all rows of one report."""
    with open(path, "r", encoding="utf-8") as handle:
        rows = json.load(handle)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of rows")
    keys = set()
    for row in rows:
        if not isinstance(row, dict):
            raise ValueError(f"{path}: expected flat JSON objects")
        keys.update(row.keys())
    return keys


def collect(directory):
    reports = {}
    for name in sorted(os.listdir(directory)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            reports[name] = report_keys(os.path.join(directory, name))
    return reports


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="path to BENCH_SCHEMA.json")
    parser.add_argument("--dir", required=True,
                        help="directory holding the produced BENCH_*.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the produced reports")
    args = parser.parse_args()

    produced = collect(args.dir)
    if args.update:
        baseline = {name: sorted(keys) for name, keys in produced.items()}
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.baseline} ({len(baseline)} reports)")
        return 0

    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)

    failures = []
    for name, keys in sorted(baseline.items()):
        if name not in produced:
            failures.append(f"{name}: report file missing (baseline has it)")
            continue
        missing = sorted(set(keys) - produced[name])
        if missing:
            failures.append(f"{name}: baseline keys disappeared: "
                            f"{', '.join(missing)}")
    for name in sorted(set(produced) - set(baseline)):
        print(f"note: {name} is not in the baseline yet "
              f"(add it via --update)")

    if failures:
        print("bench schema drift detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("If the change is intentional, regenerate the baseline:\n"
              f"  tools/bench_schema_guard.py --baseline {args.baseline} "
              f"--dir {args.dir} --update", file=sys.stderr)
        return 1
    print(f"bench schema OK ({len(baseline)} reports, "
          f"{sum(len(k) for k in baseline.values())} keys)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
