#!/usr/bin/env python3
"""Chrome-trace-event validator for the telemetry plane (src/obs/).

The Tracer writes Chrome trace-event JSON ({"traceEvents": [...]}) that
chrome://tracing and Perfetto load directly. This validator pins the
contract a structural refactor could silently break:

  1. The file is well-formed JSON with a `traceEvents` array.
  2. Every event carries name/cat/ph/ts/pid/tid; ph is 'X' (complete,
     with dur >= 0) or 'i' (instant, with scope "t").
  3. Per tid, complete spans nest properly: treating each X event as the
     half-open interval [ts, ts+dur), any two either nest or are
     disjoint — overlapping-but-not-nested spans mean a close-at-
     boundary bug in the emitter.
  4. Engine shard spans (cat "engine", name "shard") are emitted on the
     tid owned by their shard: tid == args.shard + 1 (tid 0 belongs to
     the serial protocol/online streams).

Usage:
  tools/trace_validate.py TRACE.json [TRACE2.json ...]

Exits 0 when every file validates, 1 otherwise.
"""

import json
import sys

REQUIRED_FIELDS = ("name", "cat", "ph", "ts", "pid", "tid")


def fail(path, message):
    print(f"trace_validate: {path}: {message}")
    return False


def validate_events(path, events):
    ok = True
    for i, event in enumerate(events):
        for field in REQUIRED_FIELDS:
            if field not in event:
                ok = fail(path, f"event {i} missing required field '{field}'")
        ph = event.get("ph")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                ok = fail(path, f"event {i} ('{event.get('name')}'): "
                                f"complete event needs dur >= 0, got {dur!r}")
        elif ph == "i":
            if event.get("s") != "t":
                ok = fail(path, f"event {i} ('{event.get('name')}'): "
                                f"instant event needs thread scope \"s\": \"t\"")
        else:
            ok = fail(path, f"event {i}: unknown phase {ph!r} "
                            f"(the Tracer emits only 'X' and 'i')")
    return ok


def validate_nesting(path, events):
    """Per tid, X-event intervals must nest or be disjoint."""
    ok = True
    spans_by_tid = {}
    for event in events:
        if event.get("ph") == "X":
            spans_by_tid.setdefault(event["tid"], []).append(event)
    for tid, spans in sorted(spans_by_tid.items()):
        # Outer-before-inner order: ascending start, longest first at
        # equal starts (a parent that begins with its child sorts first).
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # open intervals as (end, name)
        for event in spans:
            begin = event["ts"]
            end = begin + event["dur"]
            while stack and begin >= stack[-1][0]:
                stack.pop()
            if stack and end > stack[-1][0]:
                ok = fail(path,
                          f"tid {tid}: span '{event['name']}' "
                          f"[{begin}, {end}) overlaps enclosing "
                          f"'{stack[-1][1]}' ending at {stack[-1][0]} "
                          f"without nesting")
                continue
            stack.append((end, event["name"]))
    return ok


def validate_shard_tids(path, events):
    """Engine shard spans live on tid shard + 1."""
    ok = True
    for i, event in enumerate(events):
        if event.get("cat") == "engine" and event.get("name") == "shard":
            shard = event.get("args", {}).get("shard")
            if shard is None:
                ok = fail(path, f"event {i}: engine shard span without "
                                f"args.shard")
            elif event["tid"] != shard + 1:
                ok = fail(path, f"event {i}: shard {shard} span on tid "
                                f"{event['tid']}, expected {shard + 1}")
    return ok


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(path, f"not readable as JSON: {error}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "missing 'traceEvents' array")
    ok = validate_events(path, events)
    ok = validate_nesting(path, events) and ok
    ok = validate_shard_tids(path, events) and ok
    if ok:
        tids = sorted({e["tid"] for e in events})
        print(f"trace_validate: {path}: OK "
              f"({len(events)} events, tids {tids})")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    ok = True
    for path in argv[1:]:
        ok = validate(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
