#!/usr/bin/env python3
"""Validator for decision provenance ledgers (src/obs/ledger.hpp).

ProvenanceLedger::writeJsonl emits one flat JSON object per line, in the
canonical (epoch, demand, event kind, seq) order, so a ledger diffs
cleanly across runs and a demand's story reads contiguously. This
validator pins that contract:

  1. Every line is a JSON object carrying epoch/demand/event/seq, the
     event kind is in the ledger's vocabulary, and the kind-specific
     fields are present and well-typed (a migration has from != to, a
     dual raise has numeric alpha/beta increments, ...).
  2. Canonical order holds: (epoch, demand, kind, seq) is
     non-decreasing line over line, and seq never repeats.
  3. Rejections are certified: every rejected event whose reason is not
     owner_crashed names a blocking cert_instance whose cert_lhs clears
     cert_threshold (the dual explanation of the pop); owner_crashed
     rejections carry no certificate.
  4. Terminal events are unique: within one lifecycle (the events since
     the demand's latest arrival — or the whole file for one-shot
     ledgers, which have no arrivals), a demand is admitted at most
     once, and a departure flagged "admitted" follows that admission.

Usage:
  tools/ledger_validate.py LEDGER.jsonl [LEDGER2.jsonl ...]

Exits 0 when every file validates, 1 otherwise.
"""

import json
import sys

EVENT_KINDS = (
    "arrival", "placement", "migration", "crash",
    "dual_raise", "rejected", "admitted", "departure",
)
# Canonical salt: enumerator order of LedgerEventKind (obs/ledger.hpp).
KIND_SALT = {kind: i for i, kind in enumerate(EVENT_KINDS)}
REJECT_REASONS = ("owner_crashed", "demand_satisfied", "capacity_exceeded")
CERT_TOLERANCE = 1e-9

REQUIRED_BY_KIND = {
    "arrival": (),
    "placement": ("processor",),
    "migration": ("from", "to"),
    "crash": ("tuple",),
    "dual_raise": ("instance", "tuple", "alpha", "beta"),
    "rejected": ("instance", "tuple", "reason"),
    "admitted": ("instance", "tuple", "latency_epochs"),
    "departure": ("admitted",),
}


def fail(path, message):
    print(f"ledger_validate: {path}: {message}")
    return False


def validate_event(path, lineno, event):
    ok = True
    for field in ("epoch", "demand", "event", "seq"):
        if field not in event:
            ok = fail(path, f"line {lineno}: missing field '{field}'")
    kind = event.get("event")
    if kind not in EVENT_KINDS:
        return fail(path, f"line {lineno}: unknown event kind {kind!r}")
    for field in REQUIRED_BY_KIND[kind]:
        if field not in event:
            ok = fail(path, f"line {lineno}: {kind} event missing "
                            f"'{field}'")
    if kind == "migration" and event.get("from") == event.get("to"):
        ok = fail(path, f"line {lineno}: migration from a processor to "
                        f"itself ({event.get('from')})")
    if kind == "dual_raise":
        for field in ("alpha", "beta"):
            value = event.get(field)
            if not isinstance(value, (int, float)):
                ok = fail(path, f"line {lineno}: dual_raise {field} must "
                                f"be numeric, got {value!r}")
    if kind == "rejected":
        reason = event.get("reason")
        if reason not in REJECT_REASONS:
            ok = fail(path, f"line {lineno}: unknown reject reason "
                            f"{reason!r}")
        elif reason == "owner_crashed":
            if "cert_instance" in event:
                ok = fail(path, f"line {lineno}: owner_crashed rejection "
                                f"must not carry a certificate")
        else:
            if "cert_instance" not in event:
                ok = fail(path, f"line {lineno}: {reason} rejection "
                                f"without a cert_instance")
            else:
                lhs = event.get("cert_lhs")
                threshold = event.get("cert_threshold")
                if not isinstance(lhs, (int, float)) or \
                        not isinstance(threshold, (int, float)):
                    ok = fail(path, f"line {lineno}: certificate needs "
                                    f"numeric cert_lhs/cert_threshold")
                elif lhs < threshold - CERT_TOLERANCE:
                    ok = fail(path, f"line {lineno}: certificate does not "
                                    f"certify: cert_lhs {lhs} < "
                                    f"cert_threshold {threshold}")
    return ok


def validate_order(path, events):
    """Canonical (epoch, demand, kind, seq) order, unique seq."""
    ok = True
    previous = None
    seen_seq = set()
    for lineno, event in events:
        seq = event["seq"]
        if seq in seen_seq:
            ok = fail(path, f"line {lineno}: duplicate seq {seq}")
        seen_seq.add(seq)
        key = (event["epoch"], event["demand"],
               KIND_SALT[event["event"]], seq)
        if previous is not None and key < previous:
            ok = fail(path, f"line {lineno}: canonical order violated: "
                            f"{key} after {previous}")
        previous = key
    return ok


def validate_lifecycles(path, events):
    """At most one admission per lifecycle; departures tell the truth."""
    ok = True
    admitted_in_lifecycle = {}  # demand -> admissions since last arrival
    for lineno, event in events:
        demand = event["demand"]
        kind = event["event"]
        if kind == "arrival":
            admitted_in_lifecycle[demand] = 0
        elif kind == "admitted":
            count = admitted_in_lifecycle.get(demand, 0) + 1
            admitted_in_lifecycle[demand] = count
            if count > 1:
                ok = fail(path, f"line {lineno}: demand {demand} admitted "
                                f"{count} times in one lifecycle")
        elif kind == "departure":
            was_admitted = admitted_in_lifecycle.get(demand, 0) > 0
            if bool(event.get("admitted")) != was_admitted:
                ok = fail(path, f"line {lineno}: departure of demand "
                                f"{demand} claims admitted="
                                f"{event.get('admitted')} but the ledger "
                                f"recorded {'an' if was_admitted else 'no'}"
                                f" admission this lifecycle")
    return ok


def validate(path):
    events = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as error:
                    return fail(path, f"line {lineno}: not JSON: {error}")
                if not isinstance(event, dict):
                    return fail(path, f"line {lineno}: not a JSON object")
                events.append((lineno, event))
    except OSError as error:
        return fail(path, f"not readable: {error}")
    if not events:
        return fail(path, "empty ledger (no events)")
    ok = all(validate_event(path, lineno, e) for lineno, e in events)
    if ok:
        ok = validate_order(path, events)
        ok = validate_lifecycles(path, events) and ok
    if ok:
        kinds = {}
        for _, event in events:
            kinds[event["event"]] = kinds.get(event["event"], 0) + 1
        summary = ", ".join(f"{k}={kinds[k]}" for k in EVENT_KINDS
                            if k in kinds)
        print(f"ledger_validate: {path}: OK ({len(events)} events: "
              f"{summary})")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    ok = True
    for path in argv[1:]:
        ok = validate(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
