#!/usr/bin/env python3
"""Explain one demand's fate from a decision provenance ledger.

Replays a ledger JSONL file (ProvenanceLedger::writeJsonl, see
src/obs/ledger.hpp) and prints a single demand's causal story in
chronological order: when it arrived, where it was placed and migrated,
which dual raises it performed, and — the part the paper's analysis is
about — the dual certificate behind every admission or rejection. A
rejection line names the blocking instance and shows the replayed LHS
against the lambda * profit threshold, so "why wasn't demand 17
admitted?" has a one-command answer.

Usage:
  tools/explain_demand.py LEDGER.jsonl [--demand ID]

Without --demand, picks the first demand that has a rejected event
(they have the most interesting story), falling back to the first
demand with any event. Exits 0 on success, 1 when the ledger is
unreadable or the demand has no events.
"""

import argparse
import json
import sys


def load(path):
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def pick_demand(events):
    for event in events:
        if event["event"] == "rejected":
            return event["demand"]
    return events[0]["demand"] if events else None


def describe(event):
    kind = event["event"]
    if kind == "arrival":
        return "arrived"
    if kind == "placement":
        return f"placed on processor {event['processor']}"
    if kind == "migration":
        return (f"migrated from processor {event['from']} "
                f"to processor {event['to']} (rebalance)")
    if kind == "crash":
        return f"owner crashed at tuple {event['tuple']}"
    if kind == "dual_raise":
        return (f"raised duals for instance {event['instance']} at tuple "
                f"{event['tuple']} (alpha +{event['alpha']:.6g}, "
                f"beta +{event['beta']:.6g})")
    if kind == "admitted":
        latency = event["latency_epochs"]
        suffix = (f" after {latency} epoch(s) waiting"
                  if latency > 0 else "")
        return (f"ADMITTED with instance {event['instance']} at tuple "
                f"{event['tuple']}{suffix}")
    if kind == "rejected":
        reason = event["reason"]
        line = (f"rejected instance {event['instance']} at tuple "
                f"{event['tuple']}: {reason.replace('_', ' ')}")
        if "cert_instance" in event:
            line += (f"\n      certificate: blocking instance "
                     f"{event['cert_instance']} is lambda-satisfied "
                     f"(lhs {event['cert_lhs']:.6g} >= threshold "
                     f"{event['cert_threshold']:.6g})")
        return line
    if kind == "departure":
        fate = "admitted" if event["admitted"] else "never admitted"
        return f"departed ({fate})"
    return kind


def main(argv):
    parser = argparse.ArgumentParser(
        description="print one demand's story from a provenance ledger")
    parser.add_argument("ledger", help="ledger JSONL file")
    parser.add_argument("--demand", type=int, default=None,
                        help="demand id (default: first rejected demand)")
    args = parser.parse_args(argv[1:])

    try:
        events = load(args.ledger)
    except (OSError, json.JSONDecodeError) as error:
        print(f"explain_demand: {args.ledger}: {error}")
        return 1
    demand = args.demand if args.demand is not None else pick_demand(events)
    if demand is None:
        print(f"explain_demand: {args.ledger}: empty ledger")
        return 1

    # The canonical file order groups a demand's events per epoch; seq
    # restores the causal (emission) order within the run.
    story = sorted((e for e in events if e["demand"] == demand),
                   key=lambda e: e["seq"])
    if not story:
        print(f"explain_demand: demand {demand} has no events in "
              f"{args.ledger}")
        return 1

    print(f"demand {demand}: {len(story)} events")
    epoch = None
    for event in story:
        if event["epoch"] != epoch:
            epoch = event["epoch"]
            print(f"  epoch {epoch}:")
        print(f"    {describe(event)}")
    admissions = sum(e["event"] == "admitted" for e in story)
    rejections = sum(e["event"] == "rejected" for e in story)
    raises = sum(e["event"] == "dual_raise" for e in story)
    print(f"  summary: {raises} dual raise(s), {admissions} admission(s), "
          f"{rejections} rejection(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
