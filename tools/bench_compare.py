#!/usr/bin/env python3
"""Bench throughput regression comparator.

Compares freshly produced ``BENCH_*.json`` reports against the committed
snapshots in ``bench/snapshots/`` and fails when a row's throughput
regressed by more than the threshold (default 30%). Three metrics are
checked on every row that carries them:

  * ``epochs_per_sec``             — lower is a regression,
  * ``wall_ms``                    — higher is a regression,
  * ``revenue_ratio_vs_two_phase`` — lower is a regression (tournament
    rows in ``BENCH_tournament.json``: a policy suddenly earning
    relatively less revenue than the two-phase reference is a quality
    regression even when throughput held steady).

Rows are matched by their identity fields (preset / pattern / transport /
policy / demands / threads / rebalance / scheduler / phase / seed —
whichever the row carries); duplicate identities pair up in file order. Rows flagged
``oversubscribed`` (more threads than cores, see bench_parallel) are
skipped: their wall clock measures scheduler contention, not the engine.
Baseline rows with no fresh counterpart — e.g. a CI smoke run at smaller
sizes — are reported but never fail the check, so the tool degrades to
advisory coverage rather than forcing every environment to reproduce the
snapshot sizes.

Wall-clock numbers move with the machine, which is why CI runs this as a
continue-on-error advisory step (after the hard schema guard): a red run
is a prompt to look, not a merge blocker.

Usage:
  tools/bench_compare.py --baseline-dir bench/snapshots --dir build
  tools/bench_compare.py --baseline-dir bench/snapshots --dir build \
      --threshold 0.5 --strict   # also fail when nothing matched
"""

import argparse
import json
import os
import sys

# Fields that name a row (as opposed to measuring it). A row's identity
# is the ordered tuple of (field, value) for every identity field it
# carries, plus an occurrence index so repeated identities (e.g. the
# same preset run once standalone and once in a transport matrix) pair
# up positionally.
IDENTITY_FIELDS = (
    "preset",
    "pattern",
    "transport",
    "policy",
    "scheduler",
    "phase",
    "kind",
    "demands",
    "threads",
    "rebalance",
    "seed",
)

# metric -> direction: +1 means higher-is-better, -1 lower-is-better.
METRICS = {
    "epochs_per_sec": +1,
    "wall_ms": -1,
    "revenue_ratio_vs_two_phase": +1,
    # Dynamic-universe cost split (BENCH_online.json): pool setup and
    # amortized per-arrival extension. Both wall clocks, lower is
    # better; the pool_sweep_* rows are what keep the per-arrival
    # column honest as pool sizes grow.
    "universe_build_ms": -1,
    "mean_extend_us_per_arrival": -1,
}


def load_rows(path):
    with open(path, "r", encoding="utf-8") as handle:
        rows = json.load(handle)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of rows")
    return rows


def identity(row, occurrence):
    key = tuple((f, row[f]) for f in IDENTITY_FIELDS if f in row)
    return key + (("#", occurrence),)


def index_rows(rows):
    """Map identity -> row, numbering duplicate identities in order."""
    seen = {}
    indexed = {}
    for row in rows:
        base = tuple((f, row[f]) for f in IDENTITY_FIELDS if f in row)
        occurrence = seen.get(base, 0)
        seen[base] = occurrence + 1
        indexed[base + (("#", occurrence),)] = row
    return indexed


def describe(key):
    parts = [f"{field}={value}" for field, value in key if field != "#"]
    occurrence = dict(key).get("#", 0)
    if occurrence:
        parts.append(f"occurrence={occurrence}")
    return " ".join(parts)


def compare_file(name, baseline_rows, fresh_rows, threshold):
    baseline = index_rows(baseline_rows)
    fresh = index_rows(fresh_rows)
    failures = []
    compared = 0
    skipped_oversubscribed = 0
    unmatched = 0
    for key, base_row in baseline.items():
        fresh_row = fresh.get(key)
        if fresh_row is None:
            unmatched += 1
            continue
        if base_row.get("oversubscribed") or fresh_row.get("oversubscribed"):
            skipped_oversubscribed += 1
            continue
        for metric, direction in METRICS.items():
            if metric not in base_row or metric not in fresh_row:
                continue
            base_value = float(base_row[metric])
            fresh_value = float(fresh_row[metric])
            if base_value <= 0:
                continue
            compared += 1
            if direction > 0:
                regression = (base_value - fresh_value) / base_value
            else:
                regression = (fresh_value - base_value) / base_value
            if regression > threshold:
                failures.append(
                    f"{name}: {describe(key)}: {metric} "
                    f"{base_value:.3f} -> {fresh_value:.3f} "
                    f"({regression:+.0%}, threshold {threshold:.0%})")
    if unmatched:
        print(f"note: {name}: {unmatched} baseline row(s) had no fresh "
              f"counterpart (different sizes/flags) — not compared")
    if skipped_oversubscribed:
        print(f"note: {name}: {skipped_oversubscribed} row pair(s) skipped "
              f"as oversubscribed (threads > cores)")
    return compared, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding committed BENCH_*.json "
                             "snapshots (bench/snapshots)")
    parser.add_argument("--dir", required=True,
                        help="directory holding freshly produced "
                             "BENCH_*.json reports (the build dir)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="relative regression that fails the check "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail when no row at all could be "
                             "compared (default: pass vacuously)")
    args = parser.parse_args()

    total_compared = 0
    failures = []
    matched_files = 0
    for name in sorted(os.listdir(args.baseline_dir)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        fresh_path = os.path.join(args.dir, name)
        if not os.path.exists(fresh_path):
            print(f"note: {name}: no fresh report in {args.dir} — skipped")
            continue
        matched_files += 1
        compared, file_failures = compare_file(
            name,
            load_rows(os.path.join(args.baseline_dir, name)),
            load_rows(fresh_path),
            args.threshold)
        total_compared += compared
        failures.extend(file_failures)

    if failures:
        print("bench throughput regressions detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if total_compared == 0:
        print(f"bench compare: no comparable rows across {matched_files} "
              f"report file(s) (size/flag mismatch or oversubscribed)")
        return 1 if args.strict else 0
    print(f"bench compare OK ({total_compared} metric comparisons across "
          f"{matched_files} report files, threshold "
          f"{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
