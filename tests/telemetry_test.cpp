// The telemetry plane (src/obs/) must be read-only: attaching a live
// trace sink and a metrics registry changes nothing about the schedule,
// the NullSink path adds zero hot-loop heap allocations, histogram
// percentiles agree with a sorted-sample oracle, and the registry's
// counters cross-check against the run-level result fields.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "dist/protocol.hpp"
#include "gen/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "online/churn_engine.hpp"

// ---- Process-wide allocation counter (bench_parallel discipline) ------
// Each tests/*.cpp is its own binary, so replacing the global operator
// new here observes every heap allocation of this test process only.

namespace {
std::atomic<std::int64_t> gHeapAllocs{0};
}  // namespace

void* operator new(std::size_t size) {
  gHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The nothrow variants must route through the same counter/allocator:
// libstdc++'s std::stable_sort temporary buffer allocates via
// nothrow new but frees via plain delete — leaving these to the
// default operator new trips ASan's alloc-dealloc-mismatch and lets
// allocations escape the count.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  gHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size > 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace treesched {
namespace {

TreeProblem testTree(std::uint64_t seed) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = 28;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 26;
  cfg.demands.accessProbability = 0.7;
  return makeTreeScenario(cfg);
}

LineProblem testLine(std::uint64_t seed) {
  LineScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numSlots = 64;
  cfg.numResources = 3;
  cfg.demands.numDemands = 30;
  return makeLineScenario(cfg);
}

/// The bit-identity footprint of a run.
struct Fingerprint {
  std::vector<InstanceId> instances;
  double profit;
  double dualObjective;
  std::int64_t rounds;
  std::int64_t messages;
  std::int64_t raises;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprintOf(const DistributedResult& r) {
  return {r.solution.instances, r.profit,           r.dualObjective,
          r.network.rounds,     r.network.messages, r.raises};
}

TEST(Telemetry, LiveSinkBitIdentityAcrossThreads) {
  for (const std::uint64_t seed : {11ULL, 12ULL}) {
    const TreeProblem tree = testTree(seed);
    const LineProblem line = testLine(seed + 100);
    for (const std::int32_t threads : {1, 8}) {
      DistributedOptions plain;
      plain.seed = seed + 1;
      plain.threads = threads;
      const Fingerprint treePlain =
          fingerprintOf(runDistributedUnitTree(tree, plain));
      const Fingerprint linePlain =
          fingerprintOf(runDistributedUnitLine(line, plain));

      const std::string path = "telemetry_bitid_" + std::to_string(seed) +
                               "_" + std::to_string(threads) + ".json";
      ChromeTraceSink sink(path);
      Tracer tracer(&sink);
      MetricsRegistry metrics;
      DistributedOptions traced = plain;
      traced.tracer = &tracer;
      traced.metrics = &metrics;
      const Fingerprint treeTraced =
          fingerprintOf(runDistributedUnitTree(tree, traced));
      const Fingerprint lineTraced =
          fingerprintOf(runDistributedUnitLine(line, traced));
      sink.close();

      EXPECT_EQ(treeTraced, treePlain)
          << "tree seed " << seed << " threads " << threads;
      EXPECT_EQ(lineTraced, linePlain)
          << "line seed " << seed << " threads " << threads;
      EXPECT_GT(sink.eventCount(), 0u) << "the sink actually recorded";
      std::remove(path.c_str());
    }
  }
}

TEST(Telemetry, RegistryCountersMatchRunResult) {
  const TreeProblem tree = testTree(21);
  MetricsRegistry metrics;
  DistributedOptions opt;
  opt.seed = 22;
  opt.metrics = &metrics;
  const DistributedResult result = runDistributedUnitTree(tree, opt);

  EXPECT_EQ(metrics.counter("protocol.active_steps").value(),
            result.activeSteps);
  EXPECT_EQ(metrics.counter("protocol.raises").value(), result.raises);
  EXPECT_EQ(metrics.counter("protocol.accepts").value() +
                metrics.counter("protocol.rejects").value(),
            result.raises)
      << "phase 2 pops every raise exactly once";
  EXPECT_EQ(metrics.counter("protocol.accepts").value(),
            static_cast<std::int64_t>(result.solution.instances.size()));
  EXPECT_EQ(metrics.counter("protocol.crash_events").value(), 0);
  EXPECT_EQ(metrics.counter("net.rounds").value(), result.network.rounds);
  EXPECT_EQ(metrics.counter("net.busy_rounds").value(),
            result.network.busyRounds);
  EXPECT_EQ(metrics.counter("net.messages").value(),
            result.network.messages);
  EXPECT_EQ(metrics.histogram("protocol.mis_size",
                              Histogram::exponentialBuckets(1, 2, 18))
                .count(),
            result.activeSteps);
}

TEST(Telemetry, HistogramPercentilesMatchSortedOracle) {
  // Deterministic integer samples in [0, 96): unit buckets make the
  // nearest-rank percentile exact, so the oracle comparison is equality.
  std::vector<double> samples;
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    samples.push_back(static_cast<double>(x % 96));
  }
  const std::vector<double> bounds = Histogram::unitBuckets(128);
  Histogram hist(bounds);
  for (const double s : samples) hist.record(s);

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const auto oracle = [&sorted](double q) {
    const auto rank = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(q * static_cast<double>(sorted.size()))));
    return sorted[static_cast<std::size_t>(rank - 1)];
  };
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(hist.percentile(q), oracle(q)) << "q = " << q;
  }
  EXPECT_EQ(hist.count(), static_cast<std::int64_t>(samples.size()));
  EXPECT_EQ(hist.min(), sorted.front());
  EXPECT_EQ(hist.max(), sorted.back());

  // Exponential buckets: the percentile is an upper-bound estimate —
  // never below the oracle sample, never above the next bucket bound
  // (clamped to the observed max).
  Histogram coarse(Histogram::exponentialBuckets(1, 2, 12));
  for (const double s : samples) coarse.record(s);
  for (const double q : {0.5, 0.9, 0.99}) {
    const double estimate = coarse.percentile(q);
    EXPECT_GE(estimate, oracle(q)) << "q = " << q;
    EXPECT_LE(estimate, std::max(2 * oracle(q), 1.0)) << "q = " << q;
    EXPECT_LE(estimate, coarse.max()) << "q = " << q;
  }
}

TEST(Telemetry, JsonAndDescribeListEveryInstrumentExactlyOnce) {
  // describe()/toJson() round-trip: every registered instrument appears
  // exactly once in both snapshots, including names that are strict
  // prefixes of other names (the per-reason reject counters hang off
  // "protocol.rejects", so prefix hygiene is load-bearing).
  MetricsRegistry metrics;
  metrics.counter("rt.alpha").add(3);
  metrics.counter("rt.alpha.child").add(1);
  metrics.counter("rt.beta");
  metrics.gauge("rt.level").set(2.5);
  metrics.gauge("rt.level.fine").set(-1.0);
  metrics.histogram("rt.latency", Histogram::unitBuckets(8)).record(3);
  metrics.histogram("rt.latency.coarse", Histogram::exponentialBuckets(1, 2, 4))
      .record(5);

  const auto occurrences = [](const std::string& text,
                              const std::string& needle) {
    std::int64_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };

  const std::string json = metrics.toJson();
  const std::string described = metrics.describe();
  for (const std::string name :
       {"rt.alpha", "rt.alpha.child", "rt.beta", "rt.level", "rt.level.fine",
        "rt.latency", "rt.latency.coarse"}) {
    EXPECT_EQ(occurrences(json, "\"" + name + "\""), 1) << name;
  }
  for (const std::string name :
       {"rt.alpha", "rt.alpha.child", "rt.beta", "rt.level", "rt.level.fine"}) {
    EXPECT_EQ(occurrences(described, "  " + name + " = "), 1) << name;
  }
  for (const std::string name : {"rt.latency", "rt.latency.coarse"}) {
    EXPECT_EQ(occurrences(described, "  " + name + ": count="), 1) << name;
  }
  // The histogram summary object carries its exact count.
  EXPECT_NE(json.find("\"rt.latency\": {\"count\": 1"), std::string::npos);
}

TEST(Telemetry, ExponentialBucketQuantilesMatchBucketMappedOracle) {
  // Non-unit buckets: the reported percentile must equal the nearest-
  // rank sample mapped to its bucket's inclusive upper bound (clamped
  // to the observed max) — the strongest statement a fixed-bucket
  // sketch can make, checked as exact equality rather than a band.
  const std::vector<double> bounds = Histogram::exponentialBuckets(1, 3, 9);
  Histogram hist(bounds);
  std::vector<double> samples;
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 4000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    samples.push_back(static_cast<double>(x % 30000));
  }
  for (const double s : samples) hist.record(s);

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const auto bucketMapped = [&](double q) {
    const auto rank = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(q * static_cast<double>(sorted.size()))));
    const double s = sorted[static_cast<std::size_t>(rank - 1)];
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), s);
    return it == bounds.end() ? sorted.back() : std::min(*it, sorted.back());
  };
  for (const double q :
       {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(hist.percentile(q), bucketMapped(q)) << "q = " << q;
  }
  EXPECT_EQ(hist.count(), static_cast<std::int64_t>(samples.size()));
}

TEST(Telemetry, NullSinkPathAddsZeroAllocations) {
  const TreeProblem tree = testTree(31);
  DistributedOptions plain;
  plain.seed = 32;

  const auto measure = [&](const DistributedOptions& opt) {
    const std::int64_t before = gHeapAllocs.load(std::memory_order_relaxed);
    runDistributedUnitTree(tree, opt);
    return gHeapAllocs.load(std::memory_order_relaxed) - before;
  };

  // Warm both paths once: the first instrumented run pays the one-time
  // instrument resolution (registry map nodes), then the registry holds
  // stable references and re-resolution is a transparent lookup.
  NullTraceSink nullSink;
  Tracer tracer(&nullSink);
  MetricsRegistry metrics;
  DistributedOptions instrumented = plain;
  instrumented.tracer = &tracer;
  instrumented.metrics = &metrics;
  measure(plain);
  measure(instrumented);

  const std::int64_t base = measure(plain);
  const std::int64_t withTelemetry = measure(instrumented);
  EXPECT_EQ(withTelemetry, base)
      << "a disabled tracer plus a warmed registry must be exactly "
         "allocation-neutral";
}

TEST(Telemetry, NullSinkZeroAllocationsCoversRebalanceInstruments) {
  // Same gate as above, over the surface PR 8 added: a sharded churn run
  // with epoch-boundary rebalancing enabled exercises
  // net.shard_hosted_demands + net.shard_load_variance (synchronizer)
  // and engine.claims + engine.steals (parallel runner) every epoch.
  // After one warm instrumented run, the instrumented replay must be
  // exactly allocation-neutral against the plain replay.
  const ChurnTreeScenario scenario = makeHotspotTree50k(41, 72);
  ArrivalConfig arrivals = scenario.arrivals;
  arrivals.horizon = 48.0;
  const ChurnTrace trace =
      generateChurnTrace(arrivals, scenario.pool.access);

  ChurnEngineConfig base;
  base.epochLength = 8.0;
  base.solver.seed = 42;
  base.solver.epsilon = 0.35;
  base.solver.misRoundBudget = 4;
  base.solver.stepsPerStage = 2;
  base.solver.threads = 1;
  base.solver.rebalance.enabled = true;
  base.solver.rebalance.seed = 43;
  base.transport.kind = LiveTransportKind::Sharded;
  base.transport.async.shardProcessors = 5;

  const auto measure = [&](const ChurnEngineConfig& config) {
    // The universe build sits outside the measured window; it is
    // deterministic, so both paths would count it equally anyway.
    DynamicUniverse universe = makeDynamicTreeUniverse(scenario.pool);
    const std::int64_t before = gHeapAllocs.load(std::memory_order_relaxed);
    const ChurnRunResult run = runChurnOverTrace(universe, trace, config);
    const std::int64_t delta =
        gHeapAllocs.load(std::memory_order_relaxed) - before;
    // The gate is non-vacuous only if rebalancing actually ran.
    EXPECT_GT(run.totalDemandsMigrated, 0);
    return delta;
  };

  NullTraceSink nullSink;
  Tracer tracer(&nullSink);
  MetricsRegistry metrics;
  ChurnEngineConfig instrumented = base;
  instrumented.solver.tracer = &tracer;
  instrumented.solver.metrics = &metrics;
  measure(base);
  measure(instrumented);

  const std::int64_t plainAllocs = measure(base);
  const std::int64_t withTelemetry = measure(instrumented);
  EXPECT_EQ(withTelemetry, plainAllocs)
      << "the rebalance + work-stealing instruments must stay "
         "allocation-free on the warmed NullSink path";
  // The new instruments actually recorded.
  EXPECT_GT(metrics.histogram("net.shard_hosted_demands", {}).count(), 0);
  EXPECT_GT(metrics.counter("engine.claims").value(), 0);
}

TEST(Telemetry, DisabledTracerEmitsNothing) {
  NullTraceSink sink;
  Tracer tracer(&sink);
  EXPECT_FALSE(tracer.enabled());
  tracer.instant("x", "test", 0, {{"k", 1}});
  tracer.span("y", "test", 0, 0, {});
  // A null-sink tracer never forwards; a live sink sees every event.
  ChromeTraceSink live("telemetry_live_check.json");
  Tracer liveTracer(&live);
  EXPECT_TRUE(liveTracer.enabled());
  liveTracer.instant("x", "test", 0, {{"k", 1}});
  EXPECT_EQ(live.eventCount(), 1u);
  live.close();
  std::remove("telemetry_live_check.json");
}

}  // namespace
}  // namespace treesched
