#include <gtest/gtest.h>

#include <cmath>

#include "core/universe.hpp"
#include "framework/mis.hpp"
#include "gen/scenario.hpp"

namespace treesched {
namespace {

InstanceUniverse denseUniverse(std::uint64_t seed, std::int32_t m) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = 16;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = m;
  TreeProblem problem = makeTreeScenario(cfg);
  InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  u.buildConflicts();
  return u;
}

std::vector<InstanceId> allInstances(const InstanceUniverse& u) {
  std::vector<InstanceId> all(static_cast<std::size_t>(u.numInstances()));
  for (InstanceId i = 0; i < u.numInstances(); ++i) {
    all[static_cast<std::size_t>(i)] = i;
  }
  return all;
}

TEST(LubyMis, IndependentAndMaximal) {
  const InstanceUniverse u = denseUniverse(1, 40);
  const auto active = allInstances(u);
  const MisResult mis = lubyMis(u, active, 123);
  EXPECT_TRUE(mis.complete);
  EXPECT_EQ(checkMis(u, active, mis.independent), "");
}

TEST(LubyMis, DeterministicForSeed) {
  const InstanceUniverse u = denseUniverse(2, 30);
  const auto active = allInstances(u);
  const MisResult a = lubyMis(u, active, 7);
  const MisResult b = lubyMis(u, active, 7);
  EXPECT_EQ(a.independent, b.independent);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(LubyMis, DifferentSeedsUsuallyDiffer) {
  const InstanceUniverse u = denseUniverse(3, 60);
  const auto active = allInstances(u);
  int differing = 0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    if (lubyMis(u, active, s).independent !=
        lubyMis(u, active, s + 100).independent) {
      ++differing;
    }
  }
  EXPECT_GE(differing, 4);
}

TEST(LubyMis, EmptyActiveSet) {
  const InstanceUniverse u = denseUniverse(4, 10);
  const MisResult mis = lubyMis(u, {}, 1);
  EXPECT_TRUE(mis.independent.empty());
  EXPECT_EQ(mis.rounds, 0);
  EXPECT_TRUE(mis.complete);
}

TEST(LubyMis, SingletonActiveSet) {
  const InstanceUniverse u = denseUniverse(5, 10);
  const std::vector<InstanceId> active{0};
  const MisResult mis = lubyMis(u, active, 1);
  EXPECT_EQ(mis.independent, active);
  EXPECT_EQ(mis.rounds, 1);
}

TEST(LubyMis, SubsetOfActiveOnly) {
  const InstanceUniverse u = denseUniverse(6, 30);
  std::vector<InstanceId> active;
  for (InstanceId i = 0; i < u.numInstances(); i += 2) {
    active.push_back(i);
  }
  const MisResult mis = lubyMis(u, active, 9);
  for (const InstanceId i : mis.independent) {
    EXPECT_EQ(i % 2, 0) << "MIS must only contain active instances";
  }
  EXPECT_EQ(checkMis(u, active, mis.independent), "");
}

TEST(LubyMis, BudgetZeroRoundsMeansComplete) {
  const InstanceUniverse u = denseUniverse(7, 50);
  const auto active = allInstances(u);
  const MisResult mis = lubyMis(u, active, 5, /*roundBudget=*/0);
  EXPECT_TRUE(mis.complete);
}

TEST(LubyMis, TightBudgetStillIndependent) {
  const InstanceUniverse u = denseUniverse(8, 80);
  const auto active = allInstances(u);
  const MisResult mis = lubyMis(u, active, 5, /*roundBudget=*/1);
  // One round may not reach maximality, but independence must hold.
  for (const InstanceId i : mis.independent) {
    for (const InstanceId j : mis.independent) {
      if (i < j) {
        EXPECT_FALSE(u.conflicting(i, j));
      }
    }
  }
}

TEST(LubyMis, RoundsLogarithmicOnAverage) {
  // O(log N) w.h.p. — check the average over seeds stays within a
  // generous 4*lg(N)+8 budget.
  const InstanceUniverse u = denseUniverse(9, 120);
  const auto active = allInstances(u);
  const double lg = std::log2(static_cast<double>(u.numInstances()));
  for (std::uint64_t s = 0; s < 10; ++s) {
    const MisResult mis = lubyMis(u, active, s);
    EXPECT_LE(mis.rounds, static_cast<std::int32_t>(4 * lg + 8));
  }
}

TEST(MisPriority, PureFunction) {
  EXPECT_EQ(misPriority(1, 2, 3), misPriority(1, 2, 3));
  EXPECT_NE(misPriority(1, 2, 3), misPriority(1, 3, 3));
  EXPECT_NE(misPriority(1, 2, 3), misPriority(1, 2, 4));
  EXPECT_NE(misPriority(2, 2, 3), misPriority(1, 2, 3));
}

TEST(MisChecker, DetectsNonIndependence) {
  const InstanceUniverse u = denseUniverse(10, 20);
  // Find a conflicting pair.
  for (InstanceId i = 0; i < u.numInstances(); ++i) {
    const auto conflicts = u.conflictsOf(i);
    if (!conflicts.empty()) {
      const std::vector<InstanceId> bogus{i, conflicts[0]};
      const std::vector<InstanceId> active = bogus;
      EXPECT_NE(checkMis(u, active, bogus), "");
      return;
    }
  }
  FAIL() << "expected at least one conflict in the dense universe";
}

TEST(MisChecker, DetectsNonMaximality) {
  const InstanceUniverse u = denseUniverse(11, 20);
  const auto active = allInstances(u);
  const std::vector<InstanceId> empty;
  EXPECT_NE(checkMis(u, active, empty), "");
}

}  // namespace
}  // namespace treesched
