#include <gtest/gtest.h>

#include <cstdio>

#include "core/io.hpp"
#include "gen/scenario.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

TEST(TreeIo, RoundTripPreservesEverything) {
  TreeScenarioConfig cfg;
  cfg.seed = 5;
  cfg.numVertices = 24;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 20;
  cfg.demands.heights = HeightMode::Mixed;
  cfg.demands.hmin = 0.2;
  cfg.demands.accessProbability = 0.6;
  const TreeProblem original = makeTreeScenario(cfg);

  const TreeProblem loaded = parseTreeProblem(serializeTreeProblem(original));
  EXPECT_EQ(loaded.numVertices, original.numVertices);
  ASSERT_EQ(loaded.numNetworks(), original.numNetworks());
  for (TreeId t = 0; t < original.numNetworks(); ++t) {
    for (EdgeId e = 0; e < original.networks[static_cast<std::size_t>(t)]
                               .numEdges();
         ++e) {
      EXPECT_EQ(loaded.networks[static_cast<std::size_t>(t)].edge(e),
                original.networks[static_cast<std::size_t>(t)].edge(e));
    }
  }
  ASSERT_EQ(loaded.numDemands(), original.numDemands());
  for (DemandId d = 0; d < original.numDemands(); ++d) {
    const auto& a = original.demands[static_cast<std::size_t>(d)];
    const auto& b = loaded.demands[static_cast<std::size_t>(d)];
    EXPECT_EQ(a.u, b.u);
    EXPECT_EQ(a.v, b.v);
    EXPECT_DOUBLE_EQ(a.profit, b.profit);
    EXPECT_DOUBLE_EQ(a.height, b.height);
    EXPECT_EQ(original.access[static_cast<std::size_t>(d)],
              loaded.access[static_cast<std::size_t>(d)]);
  }
}

TEST(TreeIo, DoublePrecisionExact) {
  TreeProblem problem;
  problem.numVertices = 2;
  problem.networks.push_back(makePathTree(0, 2));
  Demand d;
  d.id = 0;
  d.u = 0;
  d.v = 1;
  d.profit = 0.1 + 0.2;  // not representable exactly; must survive
  d.height = 1.0 / 3.0;
  problem.demands = {d};
  problem.access = {{0}};
  const TreeProblem loaded = parseTreeProblem(serializeTreeProblem(problem));
  EXPECT_EQ(loaded.demands[0].profit, problem.demands[0].profit);
  EXPECT_EQ(loaded.demands[0].height, problem.demands[0].height);
}

TEST(LineIo, RoundTripPreservesEverything) {
  LineScenarioConfig cfg;
  cfg.seed = 7;
  cfg.numSlots = 30;
  cfg.numResources = 2;
  cfg.demands.numDemands = 15;
  cfg.demands.windowSlack = 1.0;
  cfg.demands.heights = HeightMode::Narrow;
  cfg.demands.hmin = 0.2;
  const LineProblem original = makeLineScenario(cfg);

  const LineProblem loaded = parseLineProblem(serializeLineProblem(original));
  EXPECT_EQ(loaded.numSlots, original.numSlots);
  EXPECT_EQ(loaded.numResources, original.numResources);
  ASSERT_EQ(loaded.numDemands(), original.numDemands());
  for (DemandId d = 0; d < original.numDemands(); ++d) {
    const auto& a = original.demands[static_cast<std::size_t>(d)];
    const auto& b = loaded.demands[static_cast<std::size_t>(d)];
    EXPECT_EQ(a.release, b.release);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_EQ(a.processing, b.processing);
    EXPECT_DOUBLE_EQ(a.profit, b.profit);
    EXPECT_DOUBLE_EQ(a.height, b.height);
  }
}

TEST(Io, RejectsWrongMagic) {
  EXPECT_THROW(parseTreeProblem("bogus v1\n"), CheckError);
  EXPECT_THROW(parseLineProblem("treesched-tree v1\n"), CheckError);
}

TEST(Io, RejectsTruncatedInput) {
  TreeProblem problem;
  problem.numVertices = 3;
  problem.networks.push_back(makePathTree(0, 3));
  Demand d;
  d.id = 0;
  d.u = 0;
  d.v = 2;
  problem.demands = {d};
  problem.access = {{0}};
  const std::string full = serializeTreeProblem(problem);
  EXPECT_THROW(parseTreeProblem(full.substr(0, full.size() / 2)), CheckError);
}

TEST(Io, RejectsSemanticallyInvalid) {
  // Parsable but invalid problem (endpoint out of range) must be rejected
  // by the embedded validation.
  const std::string text =
      "treesched-tree v1\nvertices 3\nnetworks 1\nnetwork\n0 1\n1 2\n"
      "demands 1\n0 9 1.0 1.0 1 0\n";
  EXPECT_THROW(parseTreeProblem(text), CheckError);
}

TEST(Io, FileRoundTrip) {
  TreeScenarioConfig cfg;
  cfg.seed = 11;
  cfg.numVertices = 10;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 6;
  const TreeProblem original = makeTreeScenario(cfg);
  const std::string path = "/tmp/treesched_io_test.txt";
  saveTreeProblem(path, original);
  const TreeProblem loaded = loadTreeProblem(path);
  EXPECT_EQ(loaded.numDemands(), original.numDemands());
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(loadTreeProblem("/nonexistent/path/problem.txt"), CheckError);
}

}  // namespace
}  // namespace treesched
