// Input-validation and error-path coverage: every malformed input must be
// rejected with CheckError at the API boundary, never silently mangled.
#include <gtest/gtest.h>

#include "algo/assignments.hpp"
#include "algo/line_solvers.hpp"
#include "algo/tree_solvers.hpp"
#include "core/universe.hpp"
#include "framework/schedule.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

TreeProblem validTreeProblem() {
  TreeProblem p;
  p.numVertices = 4;
  p.networks.push_back(makePathTree(0, 4));
  Demand d;
  d.id = 0;
  d.u = 0;
  d.v = 3;
  d.profit = 1.0;
  p.demands = {d};
  p.access = {{0}};
  return p;
}

TEST(ProblemValidation, AcceptsValid) {
  EXPECT_NO_THROW(validTreeProblem().validate());
}

TEST(ProblemValidation, RejectsEqualEndpoints) {
  TreeProblem p = validTreeProblem();
  p.demands[0].v = p.demands[0].u;
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProblemValidation, RejectsOutOfRangeEndpoint) {
  TreeProblem p = validTreeProblem();
  p.demands[0].v = 99;
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProblemValidation, RejectsNonPositiveProfit) {
  TreeProblem p = validTreeProblem();
  p.demands[0].profit = 0.0;
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProblemValidation, RejectsHeightAboveOne) {
  TreeProblem p = validTreeProblem();
  p.demands[0].height = 1.5;
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProblemValidation, RejectsZeroHeight) {
  TreeProblem p = validTreeProblem();
  p.demands[0].height = 0.0;
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProblemValidation, RejectsEmptyAccessList) {
  TreeProblem p = validTreeProblem();
  p.access[0].clear();
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProblemValidation, RejectsUnsortedAccessList) {
  TreeProblem p = validTreeProblem();
  p.networks.push_back(makeStarTree(1, 4));
  p.access[0] = {1, 0};
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProblemValidation, RejectsDuplicateAccessEntries) {
  TreeProblem p = validTreeProblem();
  p.access[0] = {0, 0};
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProblemValidation, RejectsUnknownNetworkInAccess) {
  TreeProblem p = validTreeProblem();
  p.access[0] = {5};
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProblemValidation, RejectsNonPositionalDemandIds) {
  TreeProblem p = validTreeProblem();
  p.demands[0].id = 7;
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProblemValidation, RejectsMismatchedNetworkSize) {
  TreeProblem p = validTreeProblem();
  p.networks.push_back(makePathTree(1, 3));  // wrong vertex count
  EXPECT_THROW(p.validate(), CheckError);
}

LineProblem validLineProblem() {
  LineProblem p;
  p.numSlots = 8;
  p.numResources = 1;
  p.demands = {makeIntervalDemand(0, 1, 3, 2.0)};
  p.access = {{0}};
  return p;
}

TEST(LineValidation, AcceptsValid) {
  EXPECT_NO_THROW(validLineProblem().validate());
}

TEST(LineValidation, RejectsDeadlineBeforeRelease) {
  LineProblem p = validLineProblem();
  p.demands[0].deadline = 0;
  p.demands[0].release = 3;
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(LineValidation, RejectsProcessingBeyondWindow) {
  LineProblem p = validLineProblem();
  p.demands[0].processing = 10;
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(LineValidation, RejectsWindowOutsideTimeline) {
  LineProblem p = validLineProblem();
  p.demands[0].deadline = 8;  // slots are 0..7
  EXPECT_THROW(p.validate(), CheckError);
}

// ---- Assignment checkers must detect every violation class ----

TEST(AssignmentCheck, DetectsInaccessibleNetwork) {
  TreeProblem p = validTreeProblem();
  p.networks.push_back(makeStarTree(1, 4));
  p.validate();
  const std::vector<TreeAssignment> bad{{0, 1}};  // demand 0 cannot use net 1
  EXPECT_NE(checkAssignments(p, bad), "");
}

TEST(AssignmentCheck, DetectsDuplicateAssignment) {
  TreeProblem p = validTreeProblem();
  const std::vector<TreeAssignment> bad{{0, 0}, {0, 0}};
  EXPECT_NE(checkAssignments(p, bad), "");
}

TEST(AssignmentCheck, DetectsUnknownDemand) {
  TreeProblem p = validTreeProblem();
  const std::vector<TreeAssignment> bad{{42, 0}};
  EXPECT_NE(checkAssignments(p, bad), "");
}

TEST(AssignmentCheck, LineDetectsOutsideWindow) {
  LineProblem p = validLineProblem();
  const std::vector<LineAssignment> bad{{0, 0, 5}};  // window is [1,3]
  EXPECT_NE(checkAssignments(p, bad), "");
}

TEST(AssignmentCheck, LineDetectsOverCapacity) {
  LineProblem p = validLineProblem();
  p.demands.push_back(makeIntervalDemand(1, 1, 3, 2.0));
  p.access.push_back({0});
  const std::vector<LineAssignment> bad{{0, 0, 1}, {1, 0, 1}};
  EXPECT_NE(checkAssignments(p, bad), "");
}

// ---- Config validation ----

TEST(ConfigValidation, StagePlanRejectsBadEpsilon) {
  EXPECT_THROW(
      makeStagePlan(SchedulePolicy::Staged, RaiseRule::Unit, 0.0, 6, 1.0),
      CheckError);
  EXPECT_THROW(
      makeStagePlan(SchedulePolicy::Staged, RaiseRule::Unit, 1.0, 6, 1.0),
      CheckError);
}

TEST(ConfigValidation, StagePlanRejectsBadHminForNarrow) {
  EXPECT_THROW(
      makeStagePlan(SchedulePolicy::Staged, RaiseRule::Narrow, 0.1, 6, 0.9),
      CheckError);
  EXPECT_THROW(
      makeStagePlan(SchedulePolicy::Staged, RaiseRule::Narrow, 0.1, 6, 0.0),
      CheckError);
}

TEST(ConfigValidation, UniverseGuardsIndexing) {
  const TreeProblem p = validTreeProblem();
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(p);
  EXPECT_THROW(u.instance(99), CheckError);
  EXPECT_THROW(u.instancesOfDemand(5), CheckError);
  EXPECT_THROW(u.instancesOnEdge(99), CheckError);
  EXPECT_THROW(u.conflictsOf(0), CheckError);  // conflicts not built yet
  EXPECT_THROW(u.lineSlots(), CheckError);     // tree universe
}

TEST(ConfigValidation, SolversValidateInput) {
  TreeProblem p = validTreeProblem();
  p.demands[0].profit = -1.0;
  EXPECT_THROW(solveUnitTree(p), CheckError);
  LineProblem lp = validLineProblem();
  lp.demands[0].processing = 0;
  EXPECT_THROW(solveUnitLine(lp), CheckError);
}

}  // namespace
}  // namespace treesched
