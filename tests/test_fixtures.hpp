// Shared fixtures: the paper's 14-vertex example tree (Figure 6) and small
// helpers used across test files.
//
// Figure 6 facts encoded from the text (paper uses 1-based labels; we use
// 0-based = label-1):
//  * path(4,13) = 4,2,5,8,13 ("node 4 has only one wing <4,2>, while node
//    8 has two wings <5,8> and <8,13>"; "passes through nodes 2 and 8 ...
//    also passes through LCA(2,8) = 5" in the balancing H of Fig. 3);
//  * in the root-fixing decomposition rooted at node 1, demand <4,13> is
//    captured at node 2 and pi(d) = {<2,4>, <2,5>} (Appendix A);
//  * bending points of <4,13> w.r.t. nodes 3 and 9 are 2 and 5 (§4.4);
//  * C(2) = {2,4} with pivot set {1,5}; hence 2 is adjacent to 1, 4, 5.
// The vertices 6,7,10,11,14 are attached consistently with those facts.
#pragma once

#include "graph/tree_network.hpp"

namespace treesched::testing {

/// Converts a 1-based paper label to our 0-based VertexId.
constexpr VertexId P(int paperLabel) { return paperLabel - 1; }

/// The example tree-network of Figure 6 (14 vertices).
inline TreeNetwork paperExampleTree(TreeId id = 0) {
  const std::vector<std::pair<VertexId, VertexId>> edges = {
      {P(1), P(2)},  {P(2), P(4)},  {P(2), P(5)},  {P(5), P(8)},
      {P(5), P(9)},  {P(8), P(12)}, {P(8), P(13)}, {P(1), P(3)},
      {P(3), P(6)},  {P(6), P(7)},  {P(9), P(10)}, {P(10), P(11)},
      {P(13), P(14)}};
  return TreeNetwork(id, 14, edges);
}

}  // namespace treesched::testing
