// Acceptance gate of the dynamic universe (core/dynamic_universe.hpp):
// the incrementally-maintained universe + layering must equal the
// from-scratch build restricted to the live demand set — bit-identical
// records, paths, groups, critical edges, conflict adjacency and
// per-edge instance lists — on every scenario preset, after every epoch
// of its churn trace. Schedules driven through the dynamic path must be
// bit-identical at {1, 8} threads over {sync, sharded} wires. Edge
// cases ride along: a single-demand network, the first arrival into an
// empty universe, re-arrival after full garbage-collection rebuilding
// bit-identical state, and group-numbering stability across GC (pool
// constants never shift as demands come and go).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "dist/protocol.hpp"
#include "gen/scenario.hpp"
#include "net/live_transport.hpp"
#include "net/transport.hpp"
#include "online/churn_engine.hpp"

namespace treesched {
namespace {

// Small enough for the exhaustive per-epoch comparisons, large enough
// that every preset keeps multiple networks and conflict structure.
constexpr std::int32_t kPresetDemands = 48;

/// Poisson control trace for the presets that ship without one.
ChurnTrace traceFor(const ScenarioProblem& problem, std::uint64_t seed) {
  if (problem.hasChurn) return problem.trace;
  ArrivalConfig arrivals;
  arrivals.seed = seed ^ 0xd11aULL;
  arrivals.horizon = 48.0;
  arrivals.meanLifetime = 16.0;
  return generateChurnTrace(arrivals, problem.access);
}

DynamicUniverse dynamicUniverseOf(const ScenarioProblem& problem) {
  return problem.treePool != nullptr ? makeDynamicTreeUniverse(problem.treePool)
                                     : makeDynamicLineUniverse(problem.linePool);
}

/// The gate itself: the dynamic live view equals the from-scratch pool
/// universe + layering restricted to `live`. Pool constants (id space,
/// group count, Delta) must match unconditionally.
void expectLiveViewMatchesStatic(const DynamicUniverse& dynamic,
                                 const InstanceUniverse& pool,
                                 const Layering& layering,
                                 const std::vector<std::uint8_t>& live,
                                 const std::string& where) {
  ASSERT_EQ(dynamic.numInstances(), pool.numInstances()) << where;
  ASSERT_EQ(dynamic.numDemands(), pool.numDemands()) << where;
  ASSERT_EQ(dynamic.numGlobalEdges(), pool.numGlobalEdges()) << where;
  EXPECT_EQ(dynamic.numGroups(), layering.numGroups) << where;
  EXPECT_EQ(dynamic.maxCriticalSize(), layering.maxCriticalSize) << where;

  std::vector<std::uint8_t> liveInstance(
      static_cast<std::size_t>(pool.numInstances()), 0);
  std::int32_t liveDemands = 0;
  std::int32_t liveInstances = 0;
  for (DemandId d = 0; d < pool.numDemands(); ++d) {
    const bool isLive = live[static_cast<std::size_t>(d)] != 0;
    ASSERT_EQ(dynamic.isLive(d), isLive) << where << " demand " << d;
    const auto expected = pool.instancesOfDemand(d);
    const auto got = dynamic.instancesOfDemand(d);
    if (!isLive) {
      EXPECT_TRUE(got.empty()) << where << " demand " << d;
      continue;
    }
    ++liveDemands;
    ASSERT_EQ(got.size(), expected.size()) << where << " demand " << d;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
        << where << " demand " << d;
    for (const InstanceId i : expected) {
      liveInstance[static_cast<std::size_t>(i)] = 1;
      ++liveInstances;
      const InstanceRecord& a = dynamic.instance(i);
      const InstanceRecord& b = pool.instance(i);
      ASSERT_EQ(a.id, b.id) << where;
      EXPECT_EQ(a.demand, b.demand) << where;
      EXPECT_EQ(a.network, b.network) << where;
      EXPECT_EQ(a.u, b.u) << where;
      EXPECT_EQ(a.v, b.v) << where;
      EXPECT_EQ(a.profit, b.profit) << where;
      EXPECT_EQ(a.height, b.height) << where;
      const auto pathA = dynamic.path(i);
      const auto pathB = pool.path(i);
      ASSERT_EQ(pathA.size(), pathB.size()) << where << " instance " << i;
      EXPECT_TRUE(std::equal(pathA.begin(), pathA.end(), pathB.begin()))
          << where << " instance " << i;
      EXPECT_EQ(dynamic.groupOf(i),
                layering.group[static_cast<std::size_t>(i)])
          << where << " instance " << i;
      const auto critA = dynamic.critical(i);
      const auto critB = layering.critical(i);
      ASSERT_EQ(critA.size(), critB.size()) << where << " instance " << i;
      EXPECT_TRUE(std::equal(critA.begin(), critA.end(), critB.begin()))
          << where << " instance " << i;
    }
  }
  EXPECT_EQ(dynamic.numLiveDemands(), liveDemands) << where;
  EXPECT_EQ(dynamic.numLiveInstances(), liveInstances) << where;

  // The conflict relation and the per-edge lists: exactly the
  // from-scratch relation intersected with the live id set.
  std::vector<InstanceId> expected;
  for (InstanceId i = 0; i < pool.numInstances(); ++i) {
    if (liveInstance[static_cast<std::size_t>(i)] == 0) continue;
    expected.clear();
    for (const InstanceId j : pool.conflictsOf(i)) {
      if (liveInstance[static_cast<std::size_t>(j)] != 0) {
        expected.push_back(j);
      }
    }
    const auto got = dynamic.conflictsOf(i);
    ASSERT_EQ(got.size(), expected.size()) << where << " conflicts of " << i;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
        << where << " conflicts of " << i;
  }
  for (GlobalEdgeId e = 0; e < pool.numGlobalEdges(); ++e) {
    expected.clear();
    for (const InstanceId j : pool.instancesOnEdge(e)) {
      if (liveInstance[static_cast<std::size_t>(j)] != 0) {
        expected.push_back(j);
      }
    }
    const auto got = dynamic.instancesOnEdge(e);
    ASSERT_EQ(got.size(), expected.size()) << where << " edge " << e;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
        << where << " edge " << e;
  }
}

TEST(DynamicUniverse, LiveViewMatchesFromScratchOnEveryPresetEveryEpoch) {
  for (const ScenarioPresetInfo& preset : scenarioPresets()) {
    SCOPED_TRACE(preset.name);
    const ScenarioProblem problem =
        buildScenarioProblem(preset.name, 7, kPresetDemands);
    const ChurnTrace trace = traceFor(problem, 7);
    DynamicUniverse dynamic = dynamicUniverseOf(problem);

    std::vector<std::uint8_t> live(
        static_cast<std::size_t>(problem.universe.numDemands()), 0);
    expectLiveViewMatchesStatic(dynamic, problem.universe, problem.layering,
                                live, "empty");

    std::int64_t arrivals = 0;
    std::int64_t retirements = 0;
    std::int32_t epoch = 0;
    for (const EpochBatch& batch : batchTrace(trace, problem.epochLength)) {
      for (const DemandId d : batch.departures) {
        live[static_cast<std::size_t>(d)] = 0;
        dynamic.retireDemand(d);
        ++retirements;
      }
      for (const DemandId d : batch.arrivals) {
        live[static_cast<std::size_t>(d)] = 1;
        dynamic.addDemand(d);
        ++arrivals;
      }
      expectLiveViewMatchesStatic(dynamic, problem.universe, problem.layering,
                                  live, "epoch " + std::to_string(epoch));
      ++epoch;
    }
    EXPECT_GT(arrivals, 0) << "non-vacuous trace";
    EXPECT_GT(retirements, 0) << "non-vacuous trace";
    EXPECT_EQ(dynamic.stats().arrivals, arrivals);
    EXPECT_EQ(dynamic.stats().gcDemands, retirements);
  }
}

// ---- Schedule bit-identity through the dynamic path --------------------

struct EpochFingerprint {
  std::vector<InstanceId> instances;
  double profit;
  double dualObjective;
  double lambdaMeasured;
  std::int64_t raises;
  std::int64_t rounds;
  std::int64_t messages;

  bool operator==(const EpochFingerprint&) const = default;
};

std::vector<EpochFingerprint> fingerprintOf(const ChurnRunResult& r) {
  std::vector<EpochFingerprint> prints;
  prints.reserve(r.epochs.size());
  for (const EpochOutcome& epoch : r.epochs) {
    prints.push_back({epoch.solution.instances, epoch.profit,
                      epoch.dualObjective, epoch.lambdaMeasured, epoch.raises,
                      epoch.rounds, epoch.messages});
  }
  return prints;
}

LiveTransportConfig shardedWire(std::uint64_t seed) {
  LiveTransportConfig transport;
  transport.kind = LiveTransportKind::Sharded;
  transport.async.seed = seed ^ 0x77aULL;
  transport.async.link.latency.model = LatencyModel::Uniform;
  transport.async.link.latency.base = 1.0;
  transport.async.link.latency.spread = 2.0;
  transport.async.link.dropProbability = 0.1;
  transport.async.link.retransmitTimeout = 8.0;
  transport.async.shardProcessors = 5;
  return transport;
}

ChurnEngineConfig engineConfig(double epochLength, std::int32_t threads,
                               const LiveTransportConfig& transport) {
  ChurnEngineConfig config;
  config.epochLength = epochLength;
  config.solver.seed = 77;
  config.solver.epsilon = 0.35;
  config.solver.misRoundBudget = 4;
  config.solver.stepsPerStage = 2;
  config.solver.threads = threads;
  config.transport = transport;
  return config;
}

TEST(DynamicUniverse, ChurnSchedulesBitIdenticalAcrossThreadsAndWires) {
  for (const ScenarioPresetInfo& preset : scenarioPresets()) {
    SCOPED_TRACE(preset.name);
    const ScenarioProblem problem =
        buildScenarioProblem(preset.name, 13, kPresetDemands);
    const ChurnTrace trace = traceFor(problem, 13);

    const LiveTransportConfig sync;
    const LiveTransportConfig sharded = shardedWire(13);
    DynamicUniverse referenceUniverse = dynamicUniverseOf(problem);
    const ChurnRunResult reference =
        runChurnOverTrace(referenceUniverse, trace,
                          engineConfig(problem.epochLength, 1, sync));
    ASSERT_FALSE(reference.epochs.empty());
    const std::vector<EpochFingerprint> before = fingerprintOf(reference);

    const struct {
      const char* label;
      std::int32_t threads;
      const LiveTransportConfig& transport;
    } runs[] = {{"sync-8", 8, sync},
                {"sharded-1", 1, sharded},
                {"sharded-8", 8, sharded}};
    for (const auto& r : runs) {
      DynamicUniverse universe = dynamicUniverseOf(problem);
      const ChurnRunResult run = runChurnOverTrace(
          universe, trace, engineConfig(problem.epochLength, r.threads,
                                        r.transport));
      EXPECT_EQ(fingerprintOf(run), before) << r.label;
    }
  }
}

// ---- Edge cases --------------------------------------------------------

TEST(DynamicUniverse, SingleDemandNetworkAddAndRetire) {
  TreeScenarioConfig cfg;
  cfg.seed = 5;
  cfg.numVertices = 12;
  cfg.numNetworks = 1;
  cfg.demands.numDemands = 1;
  cfg.demands.accessProbability = 1.0;
  const TreeProblem problem = makeTreeScenario(cfg);
  const PreparedRun prepared = prepareUnitTreeRun(problem);
  DynamicUniverse dynamic = makeDynamicTreeUniverse(problem);

  std::vector<std::uint8_t> live(1, 0);
  expectLiveViewMatchesStatic(dynamic, prepared.universe, prepared.layering,
                              live, "empty");
  dynamic.addDemand(0);
  live[0] = 1;
  expectLiveViewMatchesStatic(dynamic, prepared.universe, prepared.layering,
                              live, "live");
  EXPECT_GT(dynamic.numLiveInstances(), 0);
  dynamic.retireDemand(0);
  live[0] = 0;
  expectLiveViewMatchesStatic(dynamic, prepared.universe, prepared.layering,
                              live, "retired");
  EXPECT_EQ(dynamic.numLiveInstances(), 0);
}

TEST(DynamicUniverse, FirstArrivalIntoEmptyNetworkStandsAlone) {
  TreeScenarioConfig cfg;
  cfg.seed = 19;
  cfg.numVertices = 24;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 10;
  cfg.demands.accessProbability = 0.7;
  const TreeProblem problem = makeTreeScenario(cfg);
  const PreparedRun prepared = prepareUnitTreeRun(problem);
  DynamicUniverse dynamic = makeDynamicTreeUniverse(problem);

  // The very first arrival lands in a fully empty universe: every
  // network is empty, so its instances may conflict only with their own
  // demand's siblings — exactly what the from-scratch intersection
  // predicts.
  std::vector<std::uint8_t> live(10, 0);
  dynamic.addDemand(3);
  live[3] = 1;
  expectLiveViewMatchesStatic(dynamic, prepared.universe, prepared.layering,
                              live, "first-arrival");
  for (const InstanceId i : dynamic.instancesOfDemand(3)) {
    for (const InstanceId j : dynamic.conflictsOf(i)) {
      EXPECT_EQ(dynamic.instance(j).demand, 3)
          << "an arrival into empty networks conflicts only with itself";
    }
  }
}

TEST(DynamicUniverse, ReArrivalAfterFullGcRebuildsBitIdenticalState) {
  const ChurnTreeScenario scenario = makeHotspotTree50k(9, 40);
  const PreparedRun prepared = prepareUnitTreeRun(scenario.pool);
  DynamicUniverse dynamic = makeDynamicTreeUniverse(scenario.pool);
  const std::int32_t numDemands = dynamic.numDemands();

  std::vector<std::uint8_t> live(static_cast<std::size_t>(numDemands), 1);
  for (DemandId d = 0; d < numDemands; ++d) dynamic.addDemand(d);
  expectLiveViewMatchesStatic(dynamic, prepared.universe, prepared.layering,
                              live, "first-build");

  // Snapshot the live structures, then garbage-collect everything.
  std::vector<std::vector<InstanceId>> conflictSnapshot;
  std::vector<std::int32_t> groupSnapshot;
  for (InstanceId i = 0; i < dynamic.numInstances(); ++i) {
    const auto conflicts = dynamic.conflictsOf(i);
    conflictSnapshot.emplace_back(conflicts.begin(), conflicts.end());
    groupSnapshot.push_back(dynamic.groupOf(i));
  }
  const std::int64_t firstBuildInstances = dynamic.numLiveInstances();
  for (DemandId d = 0; d < numDemands; ++d) dynamic.retireDemand(d);
  EXPECT_EQ(dynamic.numLiveDemands(), 0);
  EXPECT_EQ(dynamic.numLiveInstances(), 0);
  EXPECT_EQ(dynamic.stats().gcInstances, firstBuildInstances)
      << "full GC collects exactly what the build materialized";
  for (GlobalEdgeId e = 0; e < dynamic.numGlobalEdges(); ++e) {
    EXPECT_TRUE(dynamic.instancesOnEdge(e).empty()) << "edge " << e;
  }

  // Re-arrival (reverse order, so splice order differs from the first
  // build) must rebuild bit-identical state.
  for (DemandId d = numDemands - 1; d >= 0; --d) dynamic.addDemand(d);
  expectLiveViewMatchesStatic(dynamic, prepared.universe, prepared.layering,
                              live, "re-arrival");
  for (InstanceId i = 0; i < dynamic.numInstances(); ++i) {
    const auto conflicts = dynamic.conflictsOf(i);
    ASSERT_EQ(conflicts.size(),
              conflictSnapshot[static_cast<std::size_t>(i)].size())
        << "instance " << i;
    EXPECT_TRUE(std::equal(
        conflicts.begin(), conflicts.end(),
        conflictSnapshot[static_cast<std::size_t>(i)].begin()))
        << "instance " << i;
    EXPECT_EQ(dynamic.groupOf(i),
              groupSnapshot[static_cast<std::size_t>(i)])
        << "instance " << i;
  }
}

TEST(DynamicUniverse, GroupNumberingStableAcrossGc) {
  const ChurnLineScenario scenario = makeDiurnalMetroLine100k(21, 40);
  DynamicUniverse dynamic = makeDynamicLineUniverse(scenario.pool);
  const std::int32_t numDemands = dynamic.numDemands();
  for (DemandId d = 0; d < numDemands; ++d) dynamic.addDemand(d);

  const std::int32_t numGroups = dynamic.numGroups();
  const std::int32_t delta = dynamic.maxCriticalSize();
  std::vector<std::int32_t> groupSnapshot;
  for (InstanceId i = 0; i < dynamic.numInstances(); ++i) {
    groupSnapshot.push_back(dynamic.groupOf(i));
  }

  // Retire every other demand: survivors keep their group numbers and
  // the pool constants never move (the protocol's stage plan and every
  // hash-keyed decision depend on them).
  for (DemandId d = 0; d < numDemands; d += 2) dynamic.retireDemand(d);
  EXPECT_EQ(dynamic.numGroups(), numGroups);
  EXPECT_EQ(dynamic.maxCriticalSize(), delta);
  for (DemandId d = 1; d < numDemands; d += 2) {
    for (const InstanceId i : dynamic.instancesOfDemand(d)) {
      EXPECT_EQ(dynamic.groupOf(i),
                groupSnapshot[static_cast<std::size_t>(i)])
          << "surviving instance " << i << " renumbered";
    }
  }

  // Re-arrivals slot back into their original groups.
  for (DemandId d = 0; d < numDemands; d += 2) dynamic.addDemand(d);
  EXPECT_EQ(dynamic.numGroups(), numGroups);
  for (InstanceId i = 0; i < dynamic.numInstances(); ++i) {
    EXPECT_EQ(dynamic.groupOf(i),
              groupSnapshot[static_cast<std::size_t>(i)])
        << "instance " << i;
  }
}

}  // namespace
}  // namespace treesched
