// The decision provenance ledger (src/obs/ledger.hpp) must be a pure
// observer: attaching one changes zero bits of any schedule, the
// NullLedger path adds zero hot-loop heap allocations, every recorded
// rejection carries a dual certificate that replays bit-for-bit from
// the ledger's own dual_raise events, and the lifecycle invariants
// (exactly one admission per admitted demand, departures matching the
// solver's SLA books) hold on every run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "dist/protocol.hpp"
#include "dist/sim_network.hpp"
#include "framework/lhs_tracker.hpp"
#include "gen/scenario.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "online/churn_engine.hpp"

// ---- Process-wide allocation counter (telemetry_test discipline) ------
// Each tests/*.cpp is its own binary, so replacing the global operator
// new here observes every heap allocation of this test process only.

namespace {
std::atomic<std::int64_t> gHeapAllocs{0};
}  // namespace

void* operator new(std::size_t size) {
  gHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  gHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size > 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace treesched {
namespace {

// ---- Certificate replay ------------------------------------------------

/// Replays the ledger's raw (causal) event order into a fresh LHS
/// vector using the one shared update rule (framework/lhs_tracker.hpp)
/// and checks every certified rejection against it: the blocker's
/// replayed LHS matches the recorded certLhs, and the certLhs clears
/// the lambda * profit threshold — the paper's dual explanation of why
/// the pop was rejected. `epochs` (empty for one-shot runs) supplies
/// the full-resolve flags: a full re-solve drops the warm dual state,
/// so the replay resets exactly where the solver does (after the
/// epoch's mutation events, before its raises).
struct ReplayStats {
  std::int64_t certified = 0;
  std::int64_t crashRejections = 0;
};

ReplayStats checkCertificates(const InstanceUniverse& u, const Layering& lay,
                              RaiseRule rule,
                              const std::vector<LedgerEvent>& events,
                              const std::vector<EpochOutcome>& epochs) {
  ReplayStats stats;
  std::vector<double> lhs(static_cast<std::size_t>(u.numInstances()), 0.0);
  struct LiveRaise {
    InstanceId instance;
    double alpha;
    double beta;
  };
  std::vector<std::vector<LiveRaise>> live(
      static_cast<std::size_t>(u.numDemands()));

  const auto apply = [&](InstanceId i, double alpha, double beta,
                         double sign) {
    applyAlphaToLhs(u, u.instance(i).demand, sign * alpha, lhs);
    for (const GlobalEdgeId e : lay.critical(i)) {
      applyBetaToLhs(u, rule, e, sign * beta, lhs);
    }
  };
  const auto reset = [&] {
    std::fill(lhs.begin(), lhs.end(), 0.0);
    for (auto& list : live) {
      list.clear();
    }
  };

  std::int64_t curEpoch = -1;
  bool pendingReset = false;
  for (const LedgerEvent& ev : events) {
    if (ev.epoch != curEpoch) {
      curEpoch = ev.epoch;
      if (curEpoch >= 0 &&
          curEpoch < static_cast<std::int64_t>(epochs.size()) &&
          epochs[static_cast<std::size_t>(curEpoch)].fullResolve) {
        // The solver drops the warm duals after this epoch's mutations;
        // the reset lands at the first post-mutation event below.
        pendingReset = true;
      }
    }
    switch (ev.kind) {
      case LedgerEventKind::Departure:
        // Purge exactly, in the solver's order: the demand's surviving
        // raises are subtracted raise by raise.
        for (const LiveRaise& r : live[static_cast<std::size_t>(ev.demand)]) {
          apply(r.instance, r.alpha, r.beta, -1.0);
        }
        live[static_cast<std::size_t>(ev.demand)].clear();
        break;
      case LedgerEventKind::DualRaise:
        if (pendingReset) {
          reset();
          pendingReset = false;
        }
        apply(ev.instance, ev.alphaIncrement, ev.betaIncrement, 1.0);
        live[static_cast<std::size_t>(ev.demand)].push_back(
            {ev.instance, ev.alphaIncrement, ev.betaIncrement});
        break;
      case LedgerEventKind::Admitted:
        if (pendingReset) {
          reset();
          pendingReset = false;
        }
        break;
      case LedgerEventKind::Rejected: {
        if (pendingReset) {
          reset();
          pendingReset = false;
        }
        if (ev.reason == RejectReason::OwnerCrashed) {
          EXPECT_EQ(ev.certInstance, kNoInstance)
              << "a crashed owner has no blocking certificate";
          ++stats.crashRejections;
          break;
        }
        EXPECT_NE(ev.certInstance, kNoInstance)
            << "every live rejection names its blocker (demand "
            << ev.demand << ", instance " << ev.instance << ")";
        if (ev.certInstance == kNoInstance) break;
        ++stats.certified;
        EXPECT_NEAR(lhs[static_cast<std::size_t>(ev.certInstance)],
                    ev.certLhs, 1e-9)
            << "certificate LHS replays from the ledger's own raises";
        EXPECT_GE(ev.certLhs, ev.certThreshold - 1e-9)
            << "the blocker is lambda-satisfied: lhs >= lambda * profit";
        break;
      }
      default:
        break;
    }
  }
  return stats;
}

// ---- Fingerprints ------------------------------------------------------

struct OneShotFingerprint {
  std::vector<InstanceId> instances;
  double profit;
  double dualObjective;
  double lambdaMeasured;
  std::int64_t rounds;
  std::int64_t messages;
  std::int64_t raises;

  bool operator==(const OneShotFingerprint&) const = default;
};

OneShotFingerprint fingerprintOf(const DistributedResult& r) {
  return {r.solution.instances, r.profit,           r.dualObjective,
          r.lambdaMeasured,     r.network.rounds,   r.network.messages,
          r.raises};
}

struct EpochFingerprint {
  std::vector<InstanceId> instances;
  double profit;
  double dualObjective;
  double lambdaMeasured;
  std::int64_t raises;
  std::int64_t rounds;

  bool operator==(const EpochFingerprint&) const = default;
};

std::vector<EpochFingerprint> fingerprintOf(const ChurnRunResult& r) {
  std::vector<EpochFingerprint> prints;
  prints.reserve(r.epochs.size());
  for (const EpochOutcome& epoch : r.epochs) {
    prints.push_back({epoch.solution.instances, epoch.profit,
                      epoch.dualObjective, epoch.lambdaMeasured, epoch.raises,
                      epoch.rounds});
  }
  return prints;
}

TreeProblem testTree(std::uint64_t seed) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = 28;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 26;
  cfg.demands.accessProbability = 0.7;
  return makeTreeScenario(cfg);
}

LineProblem testLine(std::uint64_t seed) {
  LineScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numSlots = 64;
  cfg.numResources = 3;
  cfg.demands.numDemands = 30;
  return makeLineScenario(cfg);
}

// ---- One-shot protocol -------------------------------------------------

TEST(Provenance, OneShotLedgerBitIdentityAndCertificates) {
  const TreeProblem tree = testTree(71);
  const LineProblem line = testLine(172);
  for (const std::int32_t threads : {1, 8}) {
    DistributedOptions plain;
    plain.seed = 72;
    plain.threads = threads;

    for (const bool isTree : {true, false}) {
      PreparedRun plainRun =
          isTree ? prepareUnitTreeRun(tree) : prepareUnitLineRun(line);
      SimNetwork plainBus(std::move(plainRun.adjacency));
      const OneShotFingerprint before = fingerprintOf(
          runDistributedOverTransport(plainRun.universe, plainRun.layering,
                                      plainBus, plain));

      PreparedRun tracedRun =
          isTree ? prepareUnitTreeRun(tree) : prepareUnitLineRun(line);
      SimNetwork tracedBus(std::move(tracedRun.adjacency));
      ProvenanceLedger ledger;
      DistributedOptions traced = plain;
      traced.ledger = &ledger;
      const DistributedResult result = runDistributedOverTransport(
          tracedRun.universe, tracedRun.layering, tracedBus, traced);

      EXPECT_EQ(fingerprintOf(result), before)
          << (isTree ? "tree" : "line") << " threads " << threads;
      EXPECT_GT(ledger.eventCount(), 0);

      // Every raise shows up; phase 2 gives every raised instance
      // exactly one verdict event; admissions match the solution.
      std::int64_t raiseEvents = 0;
      std::vector<InstanceId> admitted;
      std::map<DemandId, std::int64_t> admittedPerDemand;
      for (const LedgerEvent& ev : ledger.events()) {
        if (ev.kind == LedgerEventKind::DualRaise) ++raiseEvents;
        if (ev.kind == LedgerEventKind::Admitted) {
          admitted.push_back(ev.instance);
          ++admittedPerDemand[ev.demand];
        }
      }
      EXPECT_EQ(raiseEvents, result.raises);
      std::sort(admitted.begin(), admitted.end());
      EXPECT_EQ(admitted, result.solution.instances);
      for (const auto& [demand, count] : admittedPerDemand) {
        EXPECT_EQ(count, 1) << "one admission per demand " << demand;
      }

      const ReplayStats stats = checkCertificates(
          tracedRun.universe, tracedRun.layering, traced.rule,
          ledger.events(), {});
      EXPECT_GT(stats.certified, 0)
          << "the scenario produced certified rejections";
    }
  }
}

TEST(Provenance, OneShotCrashEventsCarryNoCertificate) {
  const TreeProblem tree = testTree(74);
  PreparedRun run = prepareUnitTreeRun(tree);
  SimNetwork bus(std::move(run.adjacency));
  ProvenanceLedger ledger;
  DistributedOptions opt;
  opt.seed = 75;
  opt.ledger = &ledger;
  opt.crashProcessors = {0, 5, 9};
  opt.crashAtTuple = 3;
  runDistributedOverTransport(run.universe, run.layering, bus, opt);

  std::vector<DemandId> crashed;
  for (const LedgerEvent& ev : ledger.events()) {
    if (ev.kind == LedgerEventKind::Crash) crashed.push_back(ev.demand);
  }
  EXPECT_EQ(crashed, opt.crashProcessors)
      << "one crash event per crashed processor, ascending";
  checkCertificates(run.universe, run.layering, opt.rule, ledger.events(),
                    {});
}

// ---- Online churn ------------------------------------------------------

ChurnEngineConfig churnConfig(std::uint64_t seed, std::int32_t threads) {
  ChurnEngineConfig config;
  config.epochLength = 8.0;
  config.solver.seed = seed;
  config.solver.epsilon = 0.35;
  config.solver.misRoundBudget = 4;
  config.solver.stepsPerStage = 2;
  config.solver.threads = threads;
  return config;
}

TEST(Provenance, ChurnLedgerBitIdentityAcrossPatterns) {
  struct Case {
    const char* name;
    bool tree;
    ArrivalModel model;
  };
  const std::vector<Case> cases = {
      {"tree/poisson", true, ArrivalModel::Poisson},
      {"tree/targeted_burst", true, ArrivalModel::TargetedBurst},
      {"line/poisson", false, ArrivalModel::Poisson},
      {"line/targeted_burst", false, ArrivalModel::TargetedBurst},
  };
  for (const Case& c : cases) {
    // Hotspot presets carry the targeted_burst arrival config natively;
    // the model override covers the rest of the matrix.
    ChurnTreeScenario treeScenario = makeHotspotTree50k(81, 72);
    ChurnLineScenario lineScenario = makeDiurnalMetroLine100k(82, 80);
    ArrivalConfig arrivals = c.tree ? treeScenario.arrivals
                                    : lineScenario.arrivals;
    arrivals.model = c.model;
    arrivals.horizon = 48.0;
    const auto& access =
        c.tree ? treeScenario.pool.access : lineScenario.pool.access;
    const auto makeUniverse = [&] {
      return c.tree ? makeDynamicTreeUniverse(treeScenario.pool)
                    : makeDynamicLineUniverse(lineScenario.pool);
    };
    const ChurnTrace trace = generateChurnTrace(arrivals, access);

    for (const std::int32_t threads : {1, 8}) {
      const ChurnEngineConfig plain = churnConfig(83, threads);
      DynamicUniverse plainUniverse = makeUniverse();
      const std::vector<EpochFingerprint> before =
          fingerprintOf(runChurnOverTrace(plainUniverse, trace, plain));

      MetricsRegistry metrics;
      ProvenanceLedger ledger(&metrics);
      EpochSeries series(metrics, c.name);
      ChurnEngineConfig traced = plain;
      traced.solver.metrics = &metrics;
      traced.solver.ledger = &ledger;
      traced.solver.series = &series;
      DynamicUniverse tracedUniverse = makeUniverse();
      const ChurnRunResult result =
          runChurnOverTrace(tracedUniverse, trace, traced);

      EXPECT_EQ(fingerprintOf(result), before)
          << c.name << " threads " << threads;
      EXPECT_GT(ledger.eventCount(), 0) << c.name;
      EXPECT_EQ(series.snapshots(),
                static_cast<std::int64_t>(result.epochs.size()))
          << "one time-series row per epoch";
    }
  }
}

TEST(Provenance, ChurnLifecycleAndCertificateReplay) {
  const ChurnTreeScenario scenario = makeHotspotTree50k(91, 72);
  const PreparedRun prepared = prepareUnitTreeRun(scenario.pool);
  ArrivalConfig arrivals = scenario.arrivals;
  arrivals.horizon = 64.0;
  const ChurnTrace trace =
      generateChurnTrace(arrivals, scenario.pool.access);

  MetricsRegistry metrics;
  ProvenanceLedger ledger(&metrics);
  ChurnEngineConfig config = churnConfig(92, 1);
  config.solver.metrics = &metrics;
  config.solver.ledger = &ledger;
  DynamicUniverse universe = makeDynamicTreeUniverse(scenario.pool);
  const ChurnRunResult result = runChurnOverTrace(universe, trace, config);

  // Lifecycle invariants against the solver's own SLA books: one
  // admitted event per admission the solver counted, and the monitor's
  // never-admitted departures match departedUnadmitted exactly.
  std::int64_t admittedEvents = 0;
  std::int64_t slowAdmissions = 0;
  std::map<DemandId, std::int64_t> admittedPerDemand;
  std::map<DemandId, std::int64_t> arrivalsPerDemand;
  for (const LedgerEvent& ev : ledger.events()) {
    if (ev.kind == LedgerEventKind::Arrival) {
      ++arrivalsPerDemand[ev.demand];
    }
    if (ev.kind == LedgerEventKind::Admitted) {
      ++admittedEvents;
      ++admittedPerDemand[ev.demand];
      EXPECT_GE(ev.latencyEpochs, 0);
      if (ev.latencyEpochs > LedgerMonitorConfig{}.slaEpochs) {
        ++slowAdmissions;
      }
    }
  }
  EXPECT_EQ(admittedEvents, result.sla.admittedDemands);
  EXPECT_EQ(ledger.neverAdmittedDepartures(), result.sla.departedUnadmitted);
  EXPECT_EQ(ledger.slaBreaches(), slowAdmissions);
  EXPECT_EQ(metrics.counter("obs.alert.never_admitted_departure").value(),
            ledger.neverAdmittedDepartures())
      << "monitor tallies publish as obs.alert.* counters";
  for (const auto& [demand, count] : admittedPerDemand) {
    EXPECT_LE(count, arrivalsPerDemand[demand])
        << "at most one admission per arrival of demand " << demand;
  }

  const ReplayStats stats = checkCertificates(
      prepared.universe, prepared.layering, config.solver.rule,
      ledger.events(), result.epochs);
  EXPECT_GT(stats.certified, 0)
      << "the churn run produced certified rejections";
}

TEST(Provenance, ShardedPlacementAndMigrationEvents) {
  const ChurnTreeScenario scenario = makeHotspotTree50k(41, 72);
  ArrivalConfig arrivals = scenario.arrivals;
  arrivals.horizon = 48.0;
  const ChurnTrace trace =
      generateChurnTrace(arrivals, scenario.pool.access);

  ChurnEngineConfig config = churnConfig(42, 1);
  config.solver.rebalance.enabled = true;
  config.solver.rebalance.seed = 43;
  config.transport.kind = LiveTransportKind::Sharded;
  config.transport.async.shardProcessors = 5;

  DynamicUniverse plainUniverse = makeDynamicTreeUniverse(scenario.pool);
  const std::vector<EpochFingerprint> before =
      fingerprintOf(runChurnOverTrace(plainUniverse, trace, config));

  ProvenanceLedger ledger;
  ChurnEngineConfig traced = config;
  traced.solver.ledger = &ledger;
  DynamicUniverse tracedUniverse = makeDynamicTreeUniverse(scenario.pool);
  const ChurnRunResult result = runChurnOverTrace(tracedUniverse, trace, traced);
  EXPECT_EQ(fingerprintOf(result), before)
      << "the sharded wire's ledger attachment is schedule-neutral";

  std::int64_t placements = 0;
  std::int64_t migrations = 0;
  std::map<DemandId, std::int64_t> migrationsPerDemand;
  std::int64_t expectedThrash = 0;
  for (const LedgerEvent& ev : ledger.events()) {
    if (ev.kind == LedgerEventKind::Placement) {
      ++placements;
      EXPECT_GE(ev.toProcessor, 0);
    }
    if (ev.kind == LedgerEventKind::Migration) {
      ++migrations;
      EXPECT_GE(ev.fromProcessor, 0);
      EXPECT_GE(ev.toProcessor, 0);
      EXPECT_NE(ev.fromProcessor, ev.toProcessor);
      if (++migrationsPerDemand[ev.demand] >=
          LedgerMonitorConfig{}.migrationThrash) {
        ++expectedThrash;
      }
    }
  }
  EXPECT_GT(placements, 0) << "live sharding placed arriving demands";
  EXPECT_GT(migrations, 0)
      << "the hotspot burst tripped the rebalancer at least once";
  EXPECT_EQ(migrations, result.totalDemandsMigrated)
      << "one migration event per rebalancer move";
  EXPECT_EQ(ledger.migrationThrashAlerts(), expectedThrash);
}

// ---- Canonical ordering + serialization --------------------------------

TEST(Provenance, CanonicalOrderAndJsonl) {
  const ChurnTreeScenario scenario = makeHotspotTree50k(51, 60);
  ArrivalConfig arrivals = scenario.arrivals;
  arrivals.horizon = 32.0;
  const ChurnTrace trace =
      generateChurnTrace(arrivals, scenario.pool.access);

  ProvenanceLedger ledger;
  ChurnEngineConfig config = churnConfig(52, 1);
  config.solver.ledger = &ledger;
  DynamicUniverse universe = makeDynamicTreeUniverse(scenario.pool);
  runChurnOverTrace(universe, trace, config);

  // Canonical order: (epoch, demand, lifecycle kind, seq),
  // non-decreasing — every demand's story reads contiguously per epoch.
  const std::vector<LedgerEvent> canonical = ledger.canonicalEvents();
  ASSERT_EQ(static_cast<std::int64_t>(canonical.size()),
            ledger.eventCount());
  const auto key = [](const LedgerEvent& ev) {
    return std::tuple(ev.epoch, ev.demand,
                      static_cast<std::uint8_t>(ev.kind), ev.seq);
  };
  for (std::size_t i = 1; i < canonical.size(); ++i) {
    EXPECT_LE(key(canonical[i - 1]), key(canonical[i])) << "at index " << i;
  }

  // JSONL: one object per event, each naming its event kind.
  const std::string jsonl = ledger.toJsonl();
  std::int64_t lines = 0;
  std::size_t pos = 0;
  while ((pos = jsonl.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, ledger.eventCount());
  EXPECT_EQ(jsonl.rfind("{\"epoch\":", 0), 0u)
      << "rows are flat JSON objects led by the epoch";

  const std::string path = "provenance_roundtrip.jsonl";
  ledger.writeJsonl(path);
  std::remove(path.c_str());
}

// ---- Disabled-path allocation gate -------------------------------------

TEST(Provenance, NullLedgerPathAddsZeroAllocations) {
  const ChurnTreeScenario scenario = makeHotspotTree50k(61, 60);
  ArrivalConfig arrivals = scenario.arrivals;
  arrivals.horizon = 32.0;
  const ChurnTrace trace =
      generateChurnTrace(arrivals, scenario.pool.access);

  const ChurnEngineConfig plain = churnConfig(62, 1);
  NullLedger nullLedger;
  ChurnEngineConfig gated = plain;
  gated.solver.ledger = &nullLedger;

  const auto measure = [&](const ChurnEngineConfig& config) {
    // The universe build is outside the measured window; the build
    // itself is deterministic, so both paths would count it equally.
    DynamicUniverse universe = makeDynamicTreeUniverse(scenario.pool);
    const std::int64_t before = gHeapAllocs.load(std::memory_order_relaxed);
    runChurnOverTrace(universe, trace, config);
    return gHeapAllocs.load(std::memory_order_relaxed) - before;
  };

  // Warm both paths once, then compare exact deltas.
  measure(plain);
  measure(gated);
  const std::int64_t base = measure(plain);
  const std::int64_t withLedger = measure(gated);
  EXPECT_EQ(withLedger, base)
      << "a disabled ledger must be exactly allocation-neutral";

  // Same gate on the one-shot protocol.
  const TreeProblem tree = testTree(63);
  DistributedOptions plainOpt;
  plainOpt.seed = 64;
  DistributedOptions gatedOpt = plainOpt;
  gatedOpt.ledger = &nullLedger;
  const auto measureOneShot = [&](const DistributedOptions& opt) {
    const std::int64_t before = gHeapAllocs.load(std::memory_order_relaxed);
    runDistributedUnitTree(tree, opt);
    return gHeapAllocs.load(std::memory_order_relaxed) - before;
  };
  measureOneShot(plainOpt);
  measureOneShot(gatedOpt);
  const std::int64_t oneShotBase = measureOneShot(plainOpt);
  const std::int64_t oneShotGated = measureOneShot(gatedOpt);
  EXPECT_EQ(oneShotGated, oneShotBase);
}

}  // namespace
}  // namespace treesched
