// Focused unit tests for the framework primitives: dual state, raise
// rules, and the LHS tracker — the arithmetic Lemmas 3.1/6.1 lean on.
#include <gtest/gtest.h>

#include "core/universe.hpp"
#include "framework/lhs_tracker.hpp"
#include "framework/raise_policy.hpp"
#include "gen/scenario.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

InstanceUniverse tinyUniverse() {
  TreeProblem problem;
  problem.numVertices = 4;
  problem.networks.push_back(makePathTree(0, 4));  // edges 0,1,2
  problem.networks.push_back(makeStarTree(1, 4));
  auto add = [&](VertexId u, VertexId v, double profit, double height) {
    Demand d;
    d.id = static_cast<DemandId>(problem.demands.size());
    d.u = u;
    d.v = v;
    d.profit = profit;
    d.height = height;
    problem.demands.push_back(d);
    problem.access.push_back({0, 1});
  };
  add(0, 3, 6.0, 1.0);
  add(1, 2, 4.0, 0.5);
  return InstanceUniverse::fromTreeProblem(problem);
}

TEST(DualState, StartsAtZeroAndAccumulates) {
  const InstanceUniverse u = tinyUniverse();
  DualState dual(u);
  EXPECT_DOUBLE_EQ(dual.objective(), 0.0);
  dual.raiseAlpha(0, 1.5);
  dual.raiseBeta(2, 0.5);
  dual.raiseBeta(2, 0.25);
  EXPECT_DOUBLE_EQ(dual.alpha(0), 1.5);
  EXPECT_DOUBLE_EQ(dual.beta(2), 0.75);
  EXPECT_DOUBLE_EQ(dual.objective(), 2.25);
}

TEST(RaisePolicy, UnitLhsSumsPathBetas) {
  const InstanceUniverse u = tinyUniverse();
  DualState dual(u);
  // Instance 0 = demand 0 on network 0 (path 0->3: edges 0,1,2).
  dual.raiseAlpha(0, 1.0);
  dual.raiseBeta(u.globalEdge(0, 0), 2.0);
  dual.raiseBeta(u.globalEdge(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(dualLhs(RaiseRule::Unit, u, dual, 0), 6.0);
}

TEST(RaisePolicy, NarrowLhsScalesBetaByHeight) {
  const InstanceUniverse u = tinyUniverse();
  DualState dual(u);
  // Instance 2 = demand 1 (h = 0.5) on network 0 (path 1->2: edge 1).
  dual.raiseAlpha(1, 1.0);
  dual.raiseBeta(u.globalEdge(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(dualLhs(RaiseRule::Narrow, u, dual, 2), 1.0 + 0.5 * 4.0);
}

TEST(RaisePolicy, UnitRaiseMakesConstraintTight) {
  const InstanceUniverse u = tinyUniverse();
  DualState dual(u);
  const GlobalEdgeId critical[] = {u.globalEdge(0, 0), u.globalEdge(0, 2)};
  const double slack = 6.0 - dualLhs(RaiseRule::Unit, u, dual, 0);
  const RaiseAmounts amounts = computeRaise(RaiseRule::Unit, u, 0, critical,
                                            slack);
  // delta = slack / (|pi| + 1) = 6/3 = 2; alpha and both betas rise by 2.
  EXPECT_DOUBLE_EQ(amounts.alphaIncrement, 2.0);
  EXPECT_DOUBLE_EQ(amounts.betaIncrement, 2.0);
  applyRaise(dual, u, 0, critical, amounts);
  EXPECT_DOUBLE_EQ(dualLhs(RaiseRule::Unit, u, dual, 0), 6.0);
}

TEST(RaisePolicy, NarrowRaiseMakesConstraintTight) {
  const InstanceUniverse u = tinyUniverse();
  DualState dual(u);
  // Instance 2: demand 1 (p = 4, h = 0.5), path = one edge.
  const GlobalEdgeId critical[] = {u.globalEdge(0, 1)};
  const RaiseAmounts amounts =
      computeRaise(RaiseRule::Narrow, u, 2, critical, 4.0);
  // delta = s / (1 + 2 h |pi|^2) = 4 / (1 + 1) = 2; beta += 2|pi| delta = 4.
  EXPECT_DOUBLE_EQ(amounts.alphaIncrement, 2.0);
  EXPECT_DOUBLE_EQ(amounts.betaIncrement, 4.0);
  applyRaise(dual, u, 2, critical, amounts);
  EXPECT_DOUBLE_EQ(dualLhs(RaiseRule::Narrow, u, dual, 2), 4.0);
}

TEST(RaisePolicy, NarrowRuleRejectsWideInstance) {
  const InstanceUniverse u = tinyUniverse();
  const GlobalEdgeId critical[] = {u.globalEdge(0, 0)};
  // Instance 0 has height 1.0 (wide).
  EXPECT_THROW(computeRaise(RaiseRule::Narrow, u, 0, critical, 1.0),
               CheckError);
}

TEST(RaisePolicy, RaiseRequiresPositiveSlack) {
  const InstanceUniverse u = tinyUniverse();
  const GlobalEdgeId critical[] = {u.globalEdge(0, 0)};
  EXPECT_THROW(computeRaise(RaiseRule::Unit, u, 0, critical, 0.0), CheckError);
  EXPECT_THROW(computeRaise(RaiseRule::Unit, u, 0, critical, -1.0), CheckError);
}

TEST(LhsTracker, MatchesDirectComputation) {
  TreeScenarioConfig cfg;
  cfg.seed = 3;
  cfg.numVertices = 16;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 12;
  cfg.demands.heights = HeightMode::Narrow;
  cfg.demands.hmin = 0.2;
  const TreeProblem problem = makeTreeScenario(cfg);
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);

  for (const RaiseRule rule : {RaiseRule::Unit, RaiseRule::Narrow}) {
    DualState dual(u);
    LhsTracker tracker(u, rule);
    Rng rng(17);
    // Random raises, tracker must equal the from-scratch dual LHS.
    for (int step = 0; step < 40; ++step) {
      const auto d = static_cast<DemandId>(
          rng.nextBounded(static_cast<std::uint64_t>(u.numDemands())));
      const auto e = static_cast<GlobalEdgeId>(
          rng.nextBounded(static_cast<std::uint64_t>(u.numGlobalEdges())));
      const double byAlpha = rng.nextDouble(0.0, 2.0);
      const double byBeta = rng.nextDouble(0.0, 2.0);
      dual.raiseAlpha(d, byAlpha);
      tracker.onAlphaRaise(d, byAlpha);
      dual.raiseBeta(e, byBeta);
      tracker.onBetaRaise(e, byBeta);
    }
    for (InstanceId i = 0; i < u.numInstances(); ++i) {
      EXPECT_NEAR(tracker.lhs(i), dualLhs(rule, u, dual, i), 1e-9)
          << "instance " << i;
    }
  }
}

TEST(LhsTracker, OnRaiseAppliesAlphaThenEdges) {
  const InstanceUniverse u = tinyUniverse();
  LhsTracker tracker(u, RaiseRule::Unit);
  const GlobalEdgeId critical[] = {u.globalEdge(0, 0), u.globalEdge(0, 2)};
  RaiseAmounts amounts;
  amounts.alphaIncrement = 1.0;
  amounts.betaIncrement = 2.0;
  tracker.onRaise(0, critical, amounts);
  // Instance 0 (demand 0, path edges 0,1,2): alpha 1 + edges 0,2 -> 2+2.
  EXPECT_DOUBLE_EQ(tracker.lhs(0), 5.0);
  // Instance 1 (demand 0 on star): alpha only.
  EXPECT_DOUBLE_EQ(tracker.lhs(1), 1.0);
  // Instance 2 (demand 1 on path, edge 1): untouched.
  EXPECT_DOUBLE_EQ(tracker.lhs(2), 0.0);
}

}  // namespace
}  // namespace treesched
