// Unit tests of the net/ building blocks: latency models, the lossy
// event-driven AsyncNetwork, and the alpha-synchronizer's Transport
// behaviour (mirroring the SimNetwork tests in dist_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>

#include "net/async_network.hpp"
#include "net/latency.hpp"
#include "net/runner.hpp"
#include "net/synchronizer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {
namespace {

// ---- Latency models ----

TEST(Latency, FixedIgnoresQuantile) {
  LatencyConfig cfg;
  cfg.model = LatencyModel::Fixed;
  cfg.base = 2.5;
  EXPECT_DOUBLE_EQ(sampleLatency(cfg, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(sampleLatency(cfg, 0.99), 2.5);
  EXPECT_DOUBLE_EQ(latencyUpperBound(cfg), 2.5);
}

TEST(Latency, UniformSpansInterval) {
  LatencyConfig cfg;
  cfg.model = LatencyModel::Uniform;
  cfg.base = 1.0;
  cfg.spread = 4.0;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double latency = sampleLatency(cfg, rng.nextDouble());
    EXPECT_GE(latency, 1.0);
    EXPECT_LT(latency, 5.0);
  }
  EXPECT_DOUBLE_EQ(latencyUpperBound(cfg), 5.0);
}

TEST(Latency, HeavyTailBoundedByCapAndAboveBase) {
  LatencyConfig cfg;
  cfg.model = LatencyModel::HeavyTail;
  cfg.base = 2.0;
  cfg.tailShape = 1.2;
  cfg.tailCap = 16.0;
  Rng rng(9);
  double maxSeen = 0;
  for (int i = 0; i < 5000; ++i) {
    const double latency = sampleLatency(cfg, rng.nextDouble());
    EXPECT_GE(latency, cfg.base);
    EXPECT_LE(latency, latencyUpperBound(cfg));
    maxSeen = std::max(maxSeen, latency);
  }
  // Heavy tail: some sample lands far above the base.
  EXPECT_GT(maxSeen, 4 * cfg.base);
}

TEST(Latency, RejectsMalformedConfigs) {
  LatencyConfig cfg;
  cfg.base = 0;
  EXPECT_THROW(validateLatencyConfig(cfg), CheckError);
  cfg.base = 1;
  cfg.tailShape = 0;
  EXPECT_THROW(validateLatencyConfig(cfg), CheckError);
  cfg.tailShape = 1;
  cfg.tailCap = 0.5;
  EXPECT_THROW(validateLatencyConfig(cfg), CheckError);
}

TEST(Latency, UnitIntervalCoversRange) {
  EXPECT_EQ(unitInterval(0), 0.0);
  EXPECT_LT(unitInterval(~0ULL), 1.0);
  EXPECT_GT(unitInterval(~0ULL), 0.999);
}

// ---- AsyncNetwork ----

AsyncLinkConfig losslessLink() {
  AsyncLinkConfig link;
  link.latency.base = 1.0;
  return link;
}

TEST(AsyncNetwork, LosslessDeliveryTakesOneLatency) {
  AsyncNetwork net(2, losslessLink(), 1);
  net.send(0, 1, {MessageKind::MisActive, 0, 7, 0.0});
  const double time = net.flush();
  EXPECT_DOUBLE_EQ(time, 1.0 + 1.0);  // delivery + ack round trip
  ASSERT_EQ(net.delivered(1).size(), 1u);
  EXPECT_EQ(net.delivered(1)[0].payload.instance, 7);
  EXPECT_TRUE(net.delivered(0).empty());
  EXPECT_EQ(net.transmissions(), 1);
  EXPECT_EQ(net.retransmissions(), 0);
  EXPECT_EQ(net.drops(), 0);
}

TEST(AsyncNetwork, LossyDeliveryIsExactlyOnce) {
  AsyncLinkConfig link = losslessLink();
  link.dropProbability = 0.5;
  link.retransmitTimeout = 3.0;
  AsyncNetwork net(2, link, 42);
  constexpr int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    net.send(0, 1, {MessageKind::MisActive, 0, i, 0.0});
  }
  net.flush();
  // Reliable exactly-once delivery despite heavy loss...
  ASSERT_EQ(net.delivered(1).size(), static_cast<std::size_t>(kPackets));
  std::vector<InstanceId> seen;
  for (const PhysicalDelivery& d : net.delivered(1)) {
    seen.push_back(d.payload.instance);
  }
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kPackets; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  }
  // ...paid for in drops and retransmissions.
  EXPECT_GT(net.drops(), 0);
  EXPECT_GT(net.retransmissions(), 0);
  EXPECT_EQ(net.transmissions(), kPackets + net.retransmissions());
}

TEST(AsyncNetwork, DeterministicAcrossRuns) {
  AsyncLinkConfig link;
  link.latency.model = LatencyModel::HeavyTail;
  link.dropProbability = 0.3;
  const auto run = [&link]() {
    AsyncNetwork net(3, link, 77);
    for (int i = 0; i < 50; ++i) {
      net.send(i % 3, (i + 1) % 3, {MessageKind::MisActive, 0, i, 0.0});
    }
    const double time = net.flush();
    return std::tuple(time, net.transmissions(), net.drops(),
                      net.delivered(1).size());
  };
  EXPECT_EQ(run(), run());
}

TEST(AsyncNetwork, ControlPacketsStayOutOfInboxesButCount) {
  AsyncNetwork net(2, losslessLink(), 1);
  net.send(0, 1, Message{}, /*control=*/true);
  net.flush();
  EXPECT_TRUE(net.delivered(1).empty());
  EXPECT_EQ(net.transmissions(), 1);
  EXPECT_EQ(net.endpointLoad()[1], 1);
}

TEST(AsyncNetwork, RejectsInvalidConfig) {
  AsyncLinkConfig link;
  link.dropProbability = 0.95;  // above the reliability cap
  EXPECT_THROW(AsyncNetwork(2, link, 1), CheckError);
  link.dropProbability = -0.1;
  EXPECT_THROW(AsyncNetwork(2, link, 1), CheckError);
  link.dropProbability = 0;
  link.duplicateProbability = 0.95;
  EXPECT_THROW(AsyncNetwork(2, link, 1), CheckError);
}

// ---- Per-link heterogeneous latency ----

TEST(AsyncNetwork, PerLinkOverrideSlowsExactlyThatLink) {
  AsyncLinkConfig link = losslessLink();  // global base 1.0
  LinkLatencyOverride slow;
  slow.endpointA = 0;
  slow.endpointB = 1;
  slow.latency.base = 50.0;
  link.latencyOverrides.push_back(slow);

  // Fast link 0 -> 2 is unaffected; slow link 0 -> 1 takes 50 per hop.
  AsyncNetwork net(3, link, 1);
  net.send(0, 2, {MessageKind::MisActive, 0, 1, 0.0});
  const double fastTime = net.flush();
  EXPECT_DOUBLE_EQ(fastTime, 2.0);  // delivery + ack on the global model
  net.drainDeliveries();

  net.send(0, 1, {MessageKind::MisActive, 0, 2, 0.0});
  const double slowTime = net.flush();
  EXPECT_DOUBLE_EQ(slowTime, fastTime + 100.0);  // 50 out + 50 ack back
  ASSERT_EQ(net.delivered(1).size(), 1u);

  // The override is keyed by the unordered pair: the reverse direction
  // rides the same slow link.
  net.drainDeliveries();
  net.send(1, 0, {MessageKind::MisActive, 1, 3, 0.0});
  EXPECT_DOUBLE_EQ(net.flush(), slowTime + 100.0);
}

TEST(AsyncNetwork, PerLinkOverrideValidation) {
  AsyncLinkConfig link = losslessLink();
  LinkLatencyOverride bad;
  bad.endpointA = 0;
  bad.endpointB = 0;  // a link needs two endpoints
  link.latencyOverrides.push_back(bad);
  EXPECT_THROW(AsyncNetwork(2, link, 1), CheckError);

  link.latencyOverrides.clear();
  LinkLatencyOverride outOfRange;
  outOfRange.endpointA = 0;
  outOfRange.endpointB = 7;
  link.latencyOverrides.push_back(outOfRange);
  EXPECT_THROW(AsyncNetwork(2, link, 1), CheckError);

  link.latencyOverrides.clear();
  LinkLatencyOverride first;
  first.endpointA = 0;
  first.endpointB = 1;
  LinkLatencyOverride duplicate;
  duplicate.endpointA = 1;
  duplicate.endpointB = 0;  // same physical link after normalization
  link.latencyOverrides.push_back(first);
  link.latencyOverrides.push_back(duplicate);
  EXPECT_THROW(AsyncNetwork(2, link, 1), CheckError);

  // An explicit timeout below the slowest override base would tight-loop.
  link.latencyOverrides.clear();
  LinkLatencyOverride slow;
  slow.endpointA = 0;
  slow.endpointB = 1;
  slow.latency.base = 10.0;
  link.latencyOverrides.push_back(slow);
  link.retransmitTimeout = 2.0;
  EXPECT_THROW(AsyncNetwork(2, link, 1), CheckError);
  link.retransmitTimeout = 10.0;
  AsyncNetwork ok(2, link, 1);
  EXPECT_EQ(ok.numEndpoints(), 2);
}

TEST(AsyncNetwork, AutoTimeoutIsDerivedPerLink) {
  // Regression on virtual time: the auto timeout used to be one global
  // value covering the slowest link of the network, so a slow override
  // inflated every retransmission wait on the fast links. It is now
  // derived per link — an override pinning an *unused* link pair to a
  // far slower model must leave the fast-link traffic untouched.
  AsyncLinkConfig link = losslessLink();  // global base 1.0
  link.dropProbability = 0.5;
  const auto run = [](const AsyncLinkConfig& cfg) {
    AsyncNetwork net(3, cfg, 42);
    for (int i = 0; i < 40; ++i) {
      net.send(0, 1, {MessageKind::MisActive, 0, i, 0.0});
    }
    const double time = net.flush();
    return std::pair(time, net.retransmissions());
  };
  const auto baseline = run(link);
  ASSERT_GT(baseline.second, 0);  // the timeout path was exercised

  LinkLatencyOverride slow;
  slow.endpointA = 0;
  slow.endpointB = 2;  // never transmits below
  slow.latency.base = 200.0;
  link.latencyOverrides.push_back(slow);
  const auto withUnusedSlowLink = run(link);
  EXPECT_EQ(withUnusedSlowLink.first, baseline.first);
  EXPECT_EQ(withUnusedSlowLink.second, baseline.second);
  // With the old global derivation a single retransmission would already
  // have pushed virtual time past the slow link's timeout.
  EXPECT_LT(withUnusedSlowLink.first, 200.0);
}

TEST(AsyncNetwork, PerLinkTimeoutKeepsProtocolVirtualTimeFlat) {
  // Same regression at the NetworkStats level: demands 0 and 1 share
  // network 0, demand 2 sits alone on network 1, so the only physical
  // link is (0, 1) and an override on (0, 2) is dead weight. The
  // protocol's reported virtualTime must be bit-identical with and
  // without it.
  TreeProblem problem;
  problem.numVertices = 4;
  problem.networks.push_back(
      TreeNetwork(0, 4, {{0, 1}, {1, 2}, {2, 3}}));
  problem.networks.push_back(
      TreeNetwork(1, 4, {{0, 2}, {2, 1}, {1, 3}}));
  problem.demands.push_back({0, 0, 3, 5.0, 1.0});
  problem.demands.push_back({1, 1, 2, 3.0, 1.0});
  problem.demands.push_back({2, 0, 3, 4.0, 1.0});
  problem.access = {{0}, {0}, {1}};
  problem.validate();

  DistributedOptions options;
  options.seed = 5;
  options.misRoundBudget = 3;
  options.stepsPerStage = 2;
  AsyncConfig net;
  net.seed = 77;
  net.link.latency.base = 1.0;
  net.link.dropProbability = 0.3;
  const DistributedResult fast = runAsyncUnitTree(problem, options, net);
  ASSERT_GT(fast.network.retransmissions, 0);

  LinkLatencyOverride slow;
  slow.endpointA = 0;
  slow.endpointB = 2;
  slow.latency.base = 500.0;
  net.link.latencyOverrides.push_back(slow);
  const DistributedResult withUnused =
      runAsyncUnitTree(problem, options, net);
  EXPECT_EQ(withUnused.network.virtualTime, fast.network.virtualTime);
  EXPECT_EQ(withUnused.network.retransmissions,
            fast.network.retransmissions);
  EXPECT_EQ(withUnused.solution.instances, fast.solution.instances);
}

TEST(AsyncNetwork, AutoTimeoutCoversSlowestOverride) {
  // With the auto-derived timeout, a lossless network must never
  // retransmit, even when an override is far slower than the global
  // model (a too-short timeout would resend before the slow ack lands).
  AsyncLinkConfig link = losslessLink();
  LinkLatencyOverride slow;
  slow.endpointA = 0;
  slow.endpointB = 1;
  slow.latency.base = 40.0;
  link.latencyOverrides.push_back(slow);
  AsyncNetwork net(2, link, 3);
  for (int i = 0; i < 10; ++i) {
    net.send(0, 1, {MessageKind::MisActive, 0, i, 0.0});
  }
  net.flush();
  EXPECT_EQ(net.delivered(1).size(), 10u);
  EXPECT_EQ(net.retransmissions(), 0);
}

// ---- Duplicating-link faults ----

TEST(AsyncNetwork, DuplicatingLinkDeliversExactlyOnce) {
  AsyncLinkConfig link = losslessLink();
  link.duplicateProbability = 0.5;
  AsyncNetwork net(2, link, 21);
  constexpr int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    net.send(0, 1, {MessageKind::MisActive, 0, i, 0.0});
  }
  net.flush();
  // The dedup path suppressed every duplicate...
  ASSERT_EQ(net.delivered(1).size(), static_cast<std::size_t>(kPackets));
  std::vector<InstanceId> seen;
  for (const PhysicalDelivery& d : net.delivered(1)) {
    seen.push_back(d.payload.instance);
  }
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kPackets; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  }
  // ...and the faults actually fired.
  EXPECT_GT(net.duplicates(), 0);
  EXPECT_LT(net.duplicates(), kPackets);
}

// ---- AlphaSynchronizer as a Transport ----

AsyncConfig lossyConfig() {
  AsyncConfig net;
  net.seed = 3;
  net.link.latency.model = LatencyModel::Uniform;
  net.link.latency.spread = 2.0;
  net.link.dropProbability = 0.3;
  net.link.retransmitTimeout = 4.0;
  return net;
}

AlphaSynchronizer makeSync(std::vector<std::vector<std::int32_t>> adjacency,
                           const AsyncConfig& net) {
  const auto n = static_cast<std::int32_t>(adjacency.size());
  return AlphaSynchronizer(std::move(adjacency),
                           ShardPlacement::identity(n), net);
}

TEST(AlphaSynchronizer, DeliversToNeighborsNextRoundDespiteLoss) {
  AlphaSynchronizer net = makeSync({{1}, {0, 2}, {1}}, lossyConfig());
  net.broadcast({MessageKind::MisActive, 1, 42, 0.0});
  net.endRound();
  ASSERT_EQ(net.inbox(0).size(), 1u);
  ASSERT_EQ(net.inbox(2).size(), 1u);
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_EQ(net.inbox(0)[0].instance, 42);
  EXPECT_EQ(net.stats().rounds, 1);
  EXPECT_EQ(net.stats().messages, 2);
  EXPECT_GT(net.stats().virtualTime, 0.0);
}

TEST(AlphaSynchronizer, InboxSortedCanonically) {
  AlphaSynchronizer net = makeSync({{2}, {2}, {0, 1}}, lossyConfig());
  net.broadcast({MessageKind::MisActive, 1, 9, 0.0});
  net.broadcast({MessageKind::MisActive, 0, 3, 0.0});
  net.endRound();
  const auto& inbox = net.inbox(2);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0].instance, 3);
  EXPECT_EQ(inbox[1].instance, 9);
}

TEST(AlphaSynchronizer, InboxClearedEachRound) {
  AlphaSynchronizer net = makeSync({{1}, {0}}, lossyConfig());
  net.broadcast({MessageKind::MisActive, 0, 1, 0.0});
  net.endRound();
  EXPECT_EQ(net.inbox(1).size(), 1u);
  net.endRound();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(AlphaSynchronizer, SilentRoundsAdvanceClockWithoutTraffic) {
  AlphaSynchronizer net = makeSync({{1}, {0}}, lossyConfig());
  const std::int64_t before = net.stats().transmissions;
  net.endSilentRounds(5);
  EXPECT_EQ(net.stats().rounds, 5);
  EXPECT_EQ(net.stats().busyRounds, 0);
  EXPECT_EQ(net.stats().transmissions, before);
  EXPECT_GT(net.stats().virtualTime, 0.0);
}

TEST(AlphaSynchronizer, VirtualTimeMonotone) {
  AlphaSynchronizer net = makeSync({{1}, {0}}, lossyConfig());
  double last = 0;
  for (int r = 0; r < 4; ++r) {
    net.broadcast({MessageKind::MisActive, 0, r, 0.0});
    net.endRound();
    EXPECT_GT(net.stats().virtualTime, last);
    last = net.stats().virtualTime;
  }
}

TEST(AlphaSynchronizer, ShardedLocalTrafficSkipsTheWire) {
  // Both demands on one processor: no physical links, no transmissions.
  AsyncConfig net = lossyConfig();
  AlphaSynchronizer sync({{1}, {0}},
                         ShardPlacement::build(ShardStrategy::RoundRobin,
                                               {{0}, {0}}, 1),
                         net);
  sync.broadcast({MessageKind::MisActive, 0, 5, 0.0});
  sync.endRound();
  ASSERT_EQ(sync.inbox(1).size(), 1u);
  EXPECT_EQ(sync.stats().transmissions, 0);
  EXPECT_EQ(sync.stats().messages, 1);
  EXPECT_GT(sync.stats().virtualTime, 0.0);
}

TEST(AlphaSynchronizer, RejectsAsymmetricGraph) {
  AsyncConfig net;
  EXPECT_THROW(makeSync({{1}, {}}, net), CheckError);
}

}  // namespace
}  // namespace treesched
