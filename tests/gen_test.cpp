#include <gtest/gtest.h>

#include "core/universe.hpp"
#include "gen/scenario.hpp"

namespace treesched {
namespace {

TEST(TreeGen, AllShapesProduceValidTrees) {
  for (const TreeShape shape : kAllTreeShapes) {
    for (const std::int32_t n : {1, 2, 3, 8, 50}) {
      Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
      // TreeNetwork's constructor validates treeness; just construct.
      const TreeNetwork t = generateTree(shape, 0, n, rng);
      EXPECT_EQ(t.numVertices(), n) << treeShapeName(shape);
    }
  }
}

TEST(TreeGen, UniformTreesVary) {
  Rng rng(1);
  const TreeNetwork a = generateTree(TreeShape::UniformRandom, 0, 30, rng);
  const TreeNetwork b = generateTree(TreeShape::UniformRandom, 0, 30, rng);
  int differing = 0;
  for (EdgeId e = 0; e < a.numEdges(); ++e) {
    if (a.edge(e) != b.edge(e)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(DemandGen, ProfitsWithinRange) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double p = drawProfit(ProfitDistribution::Uniform, 2.0, 9.0, rng);
    EXPECT_GE(p, 2.0);
    EXPECT_LE(p, 9.0);
    const double q = drawProfit(ProfitDistribution::PowerLaw, 2.0, 9.0, rng);
    EXPECT_GE(q, 2.0);
    EXPECT_LE(q, 9.0 + 1e-9);
    const double r = drawProfit(ProfitDistribution::TwoPoint, 2.0, 9.0, rng);
    EXPECT_TRUE(r == 2.0 || r == 9.0);
  }
}

TEST(DemandGen, HeightsRespectMode) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(drawHeight(HeightMode::Unit, 0.1, rng), 1.0);
    const double narrow = drawHeight(HeightMode::Narrow, 0.1, rng);
    EXPECT_GE(narrow, 0.1);
    EXPECT_LE(narrow, 0.5);
    const double wide = drawHeight(HeightMode::Wide, 0.1, rng);
    EXPECT_GT(wide, 0.5);
    EXPECT_LE(wide, 1.0);
  }
}

TEST(Scenario, TreeScenarioValidates) {
  TreeScenarioConfig cfg;
  cfg.seed = 9;
  cfg.numVertices = 40;
  cfg.numNetworks = 4;
  cfg.demands.numDemands = 50;
  cfg.demands.accessProbability = 0.5;
  cfg.demands.heights = HeightMode::Mixed;
  cfg.demands.hmin = 0.2;
  const TreeProblem problem = makeTreeScenario(cfg);  // validates internally
  EXPECT_EQ(problem.numDemands(), 50);
  EXPECT_EQ(problem.numNetworks(), 4);
  EXPECT_FALSE(problem.isUnitHeight());
}

TEST(Scenario, TreeScenarioDeterministicForSeed) {
  TreeScenarioConfig cfg;
  cfg.seed = 10;
  cfg.numVertices = 20;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 15;
  const TreeProblem a = makeTreeScenario(cfg);
  const TreeProblem b = makeTreeScenario(cfg);
  for (std::size_t i = 0; i < a.demands.size(); ++i) {
    EXPECT_EQ(a.demands[i].u, b.demands[i].u);
    EXPECT_EQ(a.demands[i].v, b.demands[i].v);
    EXPECT_DOUBLE_EQ(a.demands[i].profit, b.demands[i].profit);
  }
}

TEST(Scenario, WalkLengthKeepsPathsShort) {
  TreeScenarioConfig cfg;
  cfg.seed = 11;
  cfg.numVertices = 100;
  cfg.numNetworks = 1;
  cfg.shape = TreeShape::Path;
  cfg.demands.numDemands = 40;
  cfg.demands.walkLength = 3;
  const TreeProblem problem = makeTreeScenario(cfg);
  for (const Demand& d : problem.demands) {
    EXPECT_LE(problem.networks[0].distance(d.u, d.v), 3);
    EXPECT_NE(d.u, d.v);
  }
}

TEST(Scenario, LineScenarioValidates) {
  LineScenarioConfig cfg;
  cfg.seed = 12;
  cfg.numSlots = 60;
  cfg.numResources = 3;
  cfg.demands.numDemands = 25;
  cfg.demands.windowSlack = 2.0;
  const LineProblem problem = makeLineScenario(cfg);
  EXPECT_EQ(problem.numDemands(), 25);
  for (const WindowDemand& d : problem.demands) {
    EXPECT_GE(d.deadline - d.release + 1, d.processing);
  }
}

TEST(Scenario, TightWindowsWhenSlackZero) {
  LineScenarioConfig cfg;
  cfg.seed = 13;
  cfg.numSlots = 40;
  cfg.numResources = 1;
  cfg.demands.numDemands = 20;
  cfg.demands.windowSlack = 0.0;
  const LineProblem problem = makeLineScenario(cfg);
  for (const WindowDemand& d : problem.demands) {
    EXPECT_EQ(d.deadline - d.release + 1, d.processing);
  }
}

TEST(Scenario, LossyWideAreaPresetsValidateAndAreDeterministic) {
  const LossyWideAreaTreeScenario tree = makeLossyWideAreaTree(7);
  EXPECT_EQ(tree.problem.numDemands(), 36);
  EXPECT_EQ(tree.net.link.latency.model, LatencyModel::HeavyTail);
  EXPECT_GT(tree.net.link.dropProbability, 0.0);
  EXPECT_EQ(tree.net.strategy, ShardStrategy::Locality);

  const LossyWideAreaLineScenario line = makeLossyWideAreaLine(7);
  EXPECT_EQ(line.problem.numDemands(), 30);
  EXPECT_GT(line.net.link.dropProbability, 0.0);

  // Same seed, same workload (problems validate inside the makers).
  const LossyWideAreaTreeScenario again = makeLossyWideAreaTree(7);
  ASSERT_EQ(again.problem.demands.size(), tree.problem.demands.size());
  for (std::size_t i = 0; i < tree.problem.demands.size(); ++i) {
    EXPECT_EQ(again.problem.demands[i].u, tree.problem.demands[i].u);
    EXPECT_EQ(again.problem.demands[i].v, tree.problem.demands[i].v);
    EXPECT_EQ(again.problem.demands[i].profit, tree.problem.demands[i].profit);
  }
}

TEST(Universe, TreeInstanceCountsMatchAccess) {
  TreeScenarioConfig cfg;
  cfg.seed = 14;
  cfg.numVertices = 16;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 10;
  cfg.demands.accessProbability = 0.6;
  const TreeProblem problem = makeTreeScenario(cfg);
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  std::size_t expected = 0;
  for (const auto& acc : problem.access) {
    expected += acc.size();
  }
  EXPECT_EQ(static_cast<std::size_t>(u.numInstances()), expected);
  for (DemandId d = 0; d < problem.numDemands(); ++d) {
    EXPECT_EQ(u.instancesOfDemand(d).size(),
              problem.access[static_cast<std::size_t>(d)].size());
  }
}

TEST(Universe, LineInstanceCountsMatchWindows) {
  LineScenarioConfig cfg;
  cfg.seed = 15;
  cfg.numSlots = 30;
  cfg.numResources = 2;
  cfg.demands.numDemands = 8;
  cfg.demands.windowSlack = 1.0;
  const LineProblem problem = makeLineScenario(cfg);
  const InstanceUniverse u = InstanceUniverse::fromLineProblem(problem);
  std::size_t expected = 0;
  for (DemandId d = 0; d < problem.numDemands(); ++d) {
    const WindowDemand& dem = problem.demands[static_cast<std::size_t>(d)];
    const std::size_t starts = static_cast<std::size_t>(
        dem.deadline - dem.processing + 1 - dem.release + 1);
    expected += starts * problem.access[static_cast<std::size_t>(d)].size();
  }
  EXPECT_EQ(static_cast<std::size_t>(u.numInstances()), expected);
}

TEST(Universe, ConflictSymmetry) {
  TreeScenarioConfig cfg;
  cfg.seed = 16;
  cfg.numVertices = 12;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 12;
  const TreeProblem problem = makeTreeScenario(cfg);
  InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  u.buildConflicts();
  for (InstanceId i = 0; i < u.numInstances(); ++i) {
    for (const InstanceId j : u.conflictsOf(i)) {
      EXPECT_TRUE(u.conflicting(i, j));
      const auto back = u.conflictsOf(j);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(Universe, ConflictsMatchDefinition) {
  TreeScenarioConfig cfg;
  cfg.seed = 17;
  cfg.numVertices = 10;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 8;
  const TreeProblem problem = makeTreeScenario(cfg);
  InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  u.buildConflicts();
  for (InstanceId i = 0; i < u.numInstances(); ++i) {
    const auto adjacency = u.conflictsOf(i);
    for (InstanceId j = 0; j < u.numInstances(); ++j) {
      const bool listed =
          std::find(adjacency.begin(), adjacency.end(), j) != adjacency.end();
      EXPECT_EQ(listed, u.conflicting(i, j))
          << "adjacency mismatch for (" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace treesched
