// Cross-cutting property sweeps: for a grid of workload families, every
// solver must (a) output feasible assignments, (b) respect its certified
// approximation bound against the exact optimum, (c) never exceed the dual
// certificate, and (d) obey Lemma 3.1 / 6.1's dual-vs-solution inequality.
// These are the paper's guarantees quantified over many inputs rather than
// single cases.
#include <gtest/gtest.h>

#include <string>

#include "algo/line_solvers.hpp"
#include "algo/sequential_tree.hpp"
#include "algo/tree_solvers.hpp"
#include "core/universe.hpp"
#include "exact/brute_force.hpp"
#include "gen/scenario.hpp"

namespace treesched {
namespace {

struct TreeGridCase {
  TreeShape shape;
  HeightMode heights;
  std::int32_t r;
  std::uint64_t seed;
};

std::string heightModeName(HeightMode m) {
  switch (m) {
    case HeightMode::Unit:
      return "unit";
    case HeightMode::Narrow:
      return "narrow";
    case HeightMode::Wide:
      return "wide";
    case HeightMode::Mixed:
      return "mixed";
  }
  return "?";
}

class TreeSolverGrid : public ::testing::TestWithParam<TreeGridCase> {};

TEST_P(TreeSolverGrid, GuaranteesHoldAgainstExactOptimum) {
  const auto& param = GetParam();
  TreeScenarioConfig cfg;
  cfg.seed = param.seed;
  cfg.numVertices = 12;
  cfg.numNetworks = param.r;
  cfg.shape = param.shape;
  cfg.demands.numDemands = 9;
  cfg.demands.heights = param.heights;
  cfg.demands.hmin = 0.2;
  cfg.demands.accessProbability = 0.75;
  const TreeProblem problem = makeTreeScenario(cfg);

  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  const ExactResult exact = bruteForceExact(universe);
  ASSERT_TRUE(exact.provedOptimal);

  if (param.heights == HeightMode::Unit) {
    const TreeSolveResult r = solveUnitTree(problem);
    EXPECT_EQ(checkAssignments(problem, r.assignments), "");
    EXPECT_GE(r.profit * r.certifiedBound, exact.profit - 1e-6);
    EXPECT_LE(r.profit, exact.profit + 1e-6);
    EXPECT_GE(r.dualUpperBound, exact.profit - 1e-6);
    EXPECT_GE(r.stats.lambdaMeasured, r.stats.lambdaTarget - 1e-9);

    const SequentialTreeResult seq = solveSequentialTree(problem);
    EXPECT_EQ(checkAssignments(problem, seq.assignments), "");
    EXPECT_GE(seq.profit * seq.certifiedBound, exact.profit - 1e-6);
  } else {
    const ArbitraryTreeResult r = solveArbitraryTree(problem);
    EXPECT_EQ(checkAssignments(problem, r.assignments), "");
    EXPECT_GE(r.profit * r.certifiedBound, exact.profit - 1e-6);
    EXPECT_LE(r.profit, exact.profit + 1e-6);
    EXPECT_GE(r.dualUpperBound, exact.profit - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TreeSolverGrid,
    ::testing::Values(
        TreeGridCase{TreeShape::UniformRandom, HeightMode::Unit, 1, 1},
        TreeGridCase{TreeShape::UniformRandom, HeightMode::Unit, 2, 2},
        TreeGridCase{TreeShape::UniformRandom, HeightMode::Unit, 3, 3},
        TreeGridCase{TreeShape::UniformRandom, HeightMode::Mixed, 2, 4},
        TreeGridCase{TreeShape::UniformRandom, HeightMode::Narrow, 2, 5},
        TreeGridCase{TreeShape::UniformRandom, HeightMode::Wide, 2, 6},
        TreeGridCase{TreeShape::Path, HeightMode::Unit, 2, 7},
        TreeGridCase{TreeShape::Path, HeightMode::Mixed, 2, 8},
        TreeGridCase{TreeShape::Star, HeightMode::Unit, 2, 9},
        TreeGridCase{TreeShape::Star, HeightMode::Narrow, 2, 10},
        TreeGridCase{TreeShape::Caterpillar, HeightMode::Unit, 2, 11},
        TreeGridCase{TreeShape::Caterpillar, HeightMode::Mixed, 3, 12},
        TreeGridCase{TreeShape::Spider, HeightMode::Unit, 2, 13},
        TreeGridCase{TreeShape::BalancedBinary, HeightMode::Unit, 2, 14},
        TreeGridCase{TreeShape::BalancedBinary, HeightMode::Mixed, 2, 15},
        TreeGridCase{TreeShape::RandomAttachment, HeightMode::Unit, 3, 16},
        TreeGridCase{TreeShape::RandomAttachment, HeightMode::Narrow, 2, 17},
        TreeGridCase{TreeShape::UniformRandom, HeightMode::Unit, 4, 18},
        TreeGridCase{TreeShape::Path, HeightMode::Narrow, 1, 19},
        TreeGridCase{TreeShape::Star, HeightMode::Mixed, 3, 20}),
    [](const ::testing::TestParamInfo<TreeGridCase>& info) {
      return treeShapeName(info.param.shape) + "_" +
             heightModeName(info.param.heights) + "_r" +
             std::to_string(info.param.r) + "_s" +
             std::to_string(info.param.seed);
    });

struct LineGridCase {
  HeightMode heights;
  double slack;
  std::int32_t r;
  std::uint64_t seed;
};

class LineSolverGrid : public ::testing::TestWithParam<LineGridCase> {};

TEST_P(LineSolverGrid, GuaranteesHoldAgainstExactOptimum) {
  const auto& param = GetParam();
  LineScenarioConfig cfg;
  cfg.seed = param.seed;
  cfg.numSlots = 20;
  cfg.numResources = param.r;
  cfg.demands.numDemands = 8;
  cfg.demands.heights = param.heights;
  cfg.demands.hmin = 0.2;
  cfg.demands.processingMax = 5;
  cfg.demands.windowSlack = param.slack;
  cfg.demands.accessProbability = 0.75;
  const LineProblem problem = makeLineScenario(cfg);

  InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  const ExactResult exact = bruteForceExact(universe);
  ASSERT_TRUE(exact.provedOptimal);

  if (param.heights == HeightMode::Unit) {
    for (const SchedulePolicy policy :
         {SchedulePolicy::Staged, SchedulePolicy::Threshold}) {
      SolverOptions options;
      options.schedule = policy;
      const LineSolveResult r = solveUnitLine(problem, options);
      EXPECT_EQ(checkAssignments(problem, r.assignments), "");
      EXPECT_GE(r.profit * r.certifiedBound, exact.profit - 1e-6);
      EXPECT_LE(r.profit, exact.profit + 1e-6);
      EXPECT_GE(r.dualUpperBound, exact.profit - 1e-6);
    }
  } else {
    const ArbitraryLineResult r = solveArbitraryLine(problem);
    EXPECT_EQ(checkAssignments(problem, r.assignments), "");
    EXPECT_GE(r.profit * r.certifiedBound, exact.profit - 1e-6);
    EXPECT_GE(r.dualUpperBound, exact.profit - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LineSolverGrid,
    ::testing::Values(LineGridCase{HeightMode::Unit, 0.0, 1, 21},
                      LineGridCase{HeightMode::Unit, 0.0, 2, 22},
                      LineGridCase{HeightMode::Unit, 0.5, 2, 23},
                      LineGridCase{HeightMode::Unit, 1.5, 2, 24},
                      LineGridCase{HeightMode::Unit, 1.0, 3, 25},
                      LineGridCase{HeightMode::Mixed, 0.0, 2, 26},
                      LineGridCase{HeightMode::Mixed, 0.5, 2, 27},
                      LineGridCase{HeightMode::Narrow, 0.5, 2, 28},
                      LineGridCase{HeightMode::Wide, 1.0, 2, 29},
                      LineGridCase{HeightMode::Mixed, 1.0, 1, 30}),
    [](const ::testing::TestParamInfo<LineGridCase>& info) {
      return heightModeName(info.param.heights) + "_w" +
             std::to_string(static_cast<int>(info.param.slack * 10)) + "_r" +
             std::to_string(info.param.r) + "_s" +
             std::to_string(info.param.seed);
    });

// Profit-scaling invariance: scaling all profits by a constant must scale
// the solution value and keep the same schedule (the algorithm depends on
// profit *ratios* only — slacks scale linearly and MIS priorities are
// profit-free).
TEST(Invariance, ProfitScaling) {
  TreeScenarioConfig cfg;
  cfg.seed = 77;
  cfg.numVertices = 16;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 14;
  TreeProblem problem = makeTreeScenario(cfg);
  const TreeSolveResult base = solveUnitTree(problem);

  for (Demand& d : problem.demands) {
    d.profit *= 10.0;
  }
  const TreeSolveResult scaled = solveUnitTree(problem);
  ASSERT_EQ(base.assignments.size(), scaled.assignments.size());
  for (std::size_t i = 0; i < base.assignments.size(); ++i) {
    EXPECT_EQ(base.assignments[i].demand, scaled.assignments[i].demand);
    EXPECT_EQ(base.assignments[i].network, scaled.assignments[i].network);
  }
  EXPECT_NEAR(scaled.profit, 10.0 * base.profit, 1e-6);
}

// Seed sensitivity: different seeds may give different schedules but all
// must respect the same certificate.
TEST(Invariance, AllSeedsRespectCertificate) {
  TreeScenarioConfig cfg;
  cfg.seed = 88;
  cfg.numVertices = 14;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 10;
  const TreeProblem problem = makeTreeScenario(cfg);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  const ExactResult exact = bruteForceExact(universe);
  ASSERT_TRUE(exact.provedOptimal);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SolverOptions options;
    options.seed = seed;
    const TreeSolveResult r = solveUnitTree(problem, options);
    EXPECT_GE(r.profit * r.certifiedBound, exact.profit - 1e-6)
        << "seed " << seed;
    EXPECT_EQ(checkAssignments(problem, r.assignments), "") << "seed " << seed;
  }
}

// Monotonicity sanity: adding a demand never makes the certified upper
// bound smaller than the previous solution (OPT only grows).
TEST(Invariance, UpperBoundGrowsWithDemands) {
  TreeScenarioConfig cfg;
  cfg.seed = 99;
  cfg.numVertices = 14;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 8;
  TreeProblem problem = makeTreeScenario(cfg);
  const TreeSolveResult before = solveUnitTree(problem);

  Demand extra;
  extra.id = problem.numDemands();
  extra.u = 0;
  extra.v = 1;
  extra.profit = 100.0;  // dominating demand
  problem.demands.push_back(extra);
  problem.access.push_back({0, 1});
  problem.validate();
  const TreeSolveResult after = solveUnitTree(problem);
  EXPECT_GE(after.dualUpperBound, before.profit - 1e-9);
  // The dominating demand's dual constraint is (1-eps)-satisfied after
  // phase 1, so the dual objective alone already exceeds 90.
  EXPECT_GE(after.dualUpperBound, 90.0 - 1e-6);
  // And the solution must capture a significant part of it: by the
  // certificate, profit >= UB / bound >= 90 / (7/(1-eps)).
  EXPECT_GE(after.profit * after.certifiedBound, 90.0 - 1e-6);
}

}  // namespace
}  // namespace treesched
