// Crash-stop fault injection in the distributed protocol (beyond the
// paper's reliable-processor model): survivors must still produce a
// feasible schedule, crashed demands must vanish from the output, and the
// surviving processors' local views must stay consistent.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/universe.hpp"
#include "dist/protocol.hpp"
#include "gen/scenario.hpp"

namespace treesched {
namespace {

TreeProblem crashProblem(std::uint64_t seed) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = 20;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 18;
  cfg.demands.accessProbability = 0.8;
  return makeTreeScenario(cfg);
}

TEST(CrashFaults, SurvivorsProduceFeasibleSchedule) {
  const TreeProblem problem = crashProblem(1);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();

  DistributedOptions opt;
  opt.crashProcessors = {0, 5, 9};
  opt.crashAtTuple = 3;
  const DistributedResult result = runDistributedUnitTree(problem, opt);

  EXPECT_EQ(result.crashedProcessors, 3);
  requireFeasible(universe, result.solution);
  for (const InstanceId i : result.solution.instances) {
    const DemandId d = universe.instance(i).demand;
    EXPECT_NE(d, 0);
    EXPECT_NE(d, 5);
    EXPECT_NE(d, 9);
  }
  EXPECT_TRUE(result.localViewsConsistent);
}

TEST(CrashFaults, CrashBeforeStartLosesOnlyThoseDemands) {
  const TreeProblem problem = crashProblem(2);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();

  DistributedOptions opt;
  opt.crashProcessors = {2};
  opt.crashAtTuple = 0;  // dead from the very first step
  const DistributedResult result = runDistributedUnitTree(problem, opt);
  EXPECT_EQ(result.crashedProcessors, 1);
  requireFeasible(universe, result.solution);
  EXPECT_GT(result.profit, 0) << "survivors still schedule";
  // Survivors reach the slackness target among themselves.
  EXPECT_GE(result.lambdaMeasured, result.lambdaTarget - 1e-9);
}

TEST(CrashFaults, CrashAtPhaseTwoDropsOnlyTheirAccepts) {
  const TreeProblem problem = crashProblem(3);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();

  const DistributedResult clean = runDistributedUnitTree(problem);

  DistributedOptions opt;
  opt.crashProcessors = {1, 3};
  opt.crashAtTuple = 1'000'000'000;  // past phase 1: crash at phase-2 start
  const DistributedResult result = runDistributedUnitTree(problem, opt);
  EXPECT_EQ(result.crashedProcessors, 2);
  requireFeasible(universe, result.solution);
  // Phase 1 ran identically, so the dual objective matches the clean run.
  EXPECT_DOUBLE_EQ(result.dualObjective, clean.dualObjective);
  for (const InstanceId i : result.solution.instances) {
    const DemandId d = universe.instance(i).demand;
    EXPECT_NE(d, 1);
    EXPECT_NE(d, 3);
  }
}

TEST(CrashFaults, NoCrashListMeansNoEffect) {
  const TreeProblem problem = crashProblem(4);
  const DistributedResult base = runDistributedUnitTree(problem);
  DistributedOptions opt;
  opt.crashAtTuple = 5;  // armed but empty crash list
  const DistributedResult result = runDistributedUnitTree(problem, opt);
  EXPECT_EQ(result.crashedProcessors, 0);
  EXPECT_EQ(result.solution.instances, base.solution.instances);
}

TEST(CrashFaults, AllProcessorsCrashedYieldsEmptySolution) {
  const TreeProblem problem = crashProblem(5);
  DistributedOptions opt;
  opt.crashAtTuple = 0;
  for (DemandId d = 0; d < problem.numDemands(); ++d) {
    opt.crashProcessors.push_back(d);
  }
  const DistributedResult result = runDistributedUnitTree(problem, opt);
  EXPECT_EQ(result.crashedProcessors, problem.numDemands());
  EXPECT_TRUE(result.solution.instances.empty());
  EXPECT_EQ(result.network.messages, 0);
}

TEST(CrashFaults, ProfitNeverNegativeAndBounded) {
  for (std::uint64_t seed = 10; seed <= 14; ++seed) {
    const TreeProblem problem = crashProblem(seed);
    InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
    universe.buildConflicts();
    DistributedOptions opt;
    opt.crashProcessors = {static_cast<DemandId>(seed % 18),
                           static_cast<DemandId>((seed * 7) % 18)};
    opt.crashAtTuple = static_cast<std::int64_t>(seed % 5);
    const DistributedResult result = runDistributedUnitTree(problem, opt);
    requireFeasible(universe, result.solution);
    EXPECT_GE(result.profit, 0);
  }
}

}  // namespace
}  // namespace treesched
