// Centralized/distributed bit-equivalence sweep (acceptance gate E11).
//
// For every seed x {line, tree} the distributed protocol under the fixed
// global schedule must select the same instances, report the same profit
// and duals, and end with every processor's local view consistent with the
// centralized `runTwoPhase` ground truth. The sweep also checks the round
// accounting against Lemma 5.1: the auto-derived steps-per-stage is
// O(log(pmax/pmin)) and the total round count follows the schedule shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "dist/protocol.hpp"
#include "framework/schedule.hpp"
#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"

namespace treesched {
namespace {

constexpr std::uint64_t kSeeds[] = {101, 202, 303, 404, 505};

TreeProblem sweepTree(std::uint64_t seed) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = 16 + static_cast<std::int32_t>(seed % 17);
  cfg.numNetworks = 2 + static_cast<std::int32_t>(seed % 3);
  cfg.demands.numDemands = 14 + static_cast<std::int32_t>(seed % 11);
  cfg.demands.accessProbability = 0.7;
  cfg.demands.profitMax = 12.0;
  return makeTreeScenario(cfg);
}

LineProblem sweepLine(std::uint64_t seed) {
  LineScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numSlots = 32 + static_cast<std::int32_t>(seed % 33);
  cfg.numResources = 2 + static_cast<std::int32_t>(seed % 2);
  cfg.demands.numDemands = 12 + static_cast<std::int32_t>(seed % 13);
  cfg.demands.windowSlack = 0.5;
  cfg.demands.processingMax = 6;
  cfg.demands.accessProbability = 0.8;
  return makeLineScenario(cfg);
}

void expectBitIdentical(const DistributedResult& dist,
                        const TwoPhaseResult& central) {
  std::vector<InstanceId> centralSorted = central.solution.instances;
  std::sort(centralSorted.begin(), centralSorted.end());
  EXPECT_EQ(dist.solution.instances, centralSorted)
      << "distributed and centralized runs must select identical instances";
  // Bit-identity is the contract (protocol.hpp), so exact comparison --
  // EXPECT_DOUBLE_EQ's 4-ULP tolerance would mask accumulation reorders.
  EXPECT_EQ(dist.profit, central.profit);
  EXPECT_EQ(dist.dualObjective, central.dualObjective);
  EXPECT_EQ(dist.lambdaMeasured, central.stats.lambdaMeasured);
  EXPECT_TRUE(dist.localViewsConsistent)
      << "every processor's local dual view must agree with ground truth";
}

class DistEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistEquivalenceSweep, TreeBitIdentical) {
  const std::uint64_t seed = GetParam();
  const TreeProblem problem = sweepTree(seed);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  const TreeLayeringResult layering = buildTreeLayering(problem, universe);

  DistributedOptions dopt;
  dopt.seed = seed * 7 + 1;
  dopt.misRoundBudget = 32;
  dopt.stepsPerStage = 10;
  const DistributedResult dist = runDistributedUnitTree(problem, dopt);

  FrameworkConfig copt;
  copt.seed = dopt.seed;
  copt.misRoundBudget = dopt.misRoundBudget;
  copt.fixedSchedule = true;
  copt.stepsPerStage = dopt.stepsPerStage;
  const TwoPhaseResult central = runTwoPhase(universe, layering.layering, copt);

  expectBitIdentical(dist, central);
}

TEST_P(DistEquivalenceSweep, LineBitIdentical) {
  const std::uint64_t seed = GetParam();
  const LineProblem problem = sweepLine(seed);
  InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  universe.buildConflicts();
  const Layering layering = buildLineLayering(universe);

  DistributedOptions dopt;
  dopt.seed = seed * 7 + 1;
  dopt.misRoundBudget = 32;
  dopt.stepsPerStage = 10;
  const DistributedResult dist = runDistributedUnitLine(problem, dopt);

  FrameworkConfig copt;
  copt.seed = dopt.seed;
  copt.misRoundBudget = dopt.misRoundBudget;
  copt.fixedSchedule = true;
  copt.stepsPerStage = dopt.stepsPerStage;
  const TwoPhaseResult central = runTwoPhase(universe, layering, copt);

  expectBitIdentical(dist, central);
}

// Lemma 5.1: each stage needs only O(log(pmax/pmin)) maximal-MIS steps, so
// the auto-derived fixed schedule must spend exactly
// numGroups * numStages * stepsPerStage tuples with
// stepsPerStage <= 4 + 2*ceil(log2(max(2, pmax/pmin))).
TEST_P(DistEquivalenceSweep, TreeRoundsWithinLemma51StageBound) {
  const std::uint64_t seed = GetParam();
  const TreeProblem problem = sweepTree(seed);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  const TreeLayeringResult layering = buildTreeLayering(problem, universe);

  DistributedOptions opt;
  opt.seed = seed;
  const std::int32_t budget = 16;
  opt.misRoundBudget = budget;  // stepsPerStage left at 0: auto-derived
  const DistributedResult dist = runDistributedUnitTree(problem, opt);

  const StagePlan plan = makeStagePlan(
      SchedulePolicy::Staged, RaiseRule::Unit, opt.epsilon,
      std::max<std::int32_t>(1, layering.layering.maxCriticalSize), opt.hmin);
  // O(log) stage bound: the shared derivation itself must stay
  // logarithmic in the profit spread...
  const double spread =
      std::max(2.0, universe.profitMax() / universe.profitMin());
  const std::int32_t stepsPerStage =
      fixedScheduleStepsPerStage(universe.profitMax(), universe.profitMin());
  EXPECT_LE(stepsPerStage,
            4 + 2 * static_cast<std::int32_t>(std::ceil(std::log2(spread))));
  // ...and the protocol must spend exactly numGroups * numStages of it.
  EXPECT_EQ(dist.scheduledSteps,
            static_cast<std::int64_t>(layering.layering.numGroups) *
                plan.numStages * stepsPerStage);
  EXPECT_GT(dist.scheduledSteps, 0);
  // Schedule shape: phase 1 spends 2B+1 rounds per tuple, phase 2 one.
  EXPECT_EQ(dist.network.rounds,
            dist.scheduledSteps * (2 * budget + 1) + dist.scheduledSteps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistEquivalenceSweep,
                         ::testing::ValuesIn(kSeeds),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace treesched
