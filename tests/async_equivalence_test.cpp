// Async/sync transport bit-equivalence sweep (acceptance gate of the
// net/ subsystem), extending the equivalence chain of
// dist_equivalence_test.cpp: synchronized-async ≡ round-synchronous
// (≡ centralized, by the existing gate).
//
// For every seed x {line, tree} the protocol over the alpha-synchronizer
// — including runs with drop rate > 0, random (uniform and heavy-tail)
// latencies and sharded placements — must select the same instances and
// report the same profit, duals and lambda as the round-synchronous bus,
// with every surviving local view consistent. Losses and latencies may
// only show up in the wire accounting (virtual time, retransmissions,
// drops), never in the result.
#include <gtest/gtest.h>

#include "dist/protocol.hpp"
#include "dist/sim_network.hpp"
#include "gen/scenario.hpp"
#include "net/runner.hpp"

namespace treesched {
namespace {

constexpr std::uint64_t kSeeds[] = {11, 22, 33, 44, 55};

TreeProblem sweepTree(std::uint64_t seed) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = 14 + static_cast<std::int32_t>(seed % 13);
  cfg.numNetworks = 2 + static_cast<std::int32_t>(seed % 2);
  cfg.demands.numDemands = 10 + static_cast<std::int32_t>(seed % 9);
  cfg.demands.accessProbability = 0.7;
  cfg.demands.profitMax = 9.0;
  return makeTreeScenario(cfg);
}

LineProblem sweepLine(std::uint64_t seed) {
  LineScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numSlots = 24 + static_cast<std::int32_t>(seed % 25);
  cfg.numResources = 2;
  cfg.demands.numDemands = 10 + static_cast<std::int32_t>(seed % 7);
  cfg.demands.windowSlack = 0.5;
  cfg.demands.processingMax = 5;
  cfg.demands.accessProbability = 0.8;
  return makeLineScenario(cfg);
}

DistributedOptions sweepOptions(std::uint64_t seed) {
  DistributedOptions opt;
  opt.seed = seed * 13 + 5;
  opt.misRoundBudget = 8;
  opt.stepsPerStage = 6;
  return opt;
}

/// A lossy async config exercising retransmission: uniform latencies and
/// a timeout tight enough that even undropped slow packets get resent.
AsyncConfig lossyUniform(std::uint64_t seed) {
  AsyncConfig net;
  net.seed = seed + 1;
  net.link.latency.model = LatencyModel::Uniform;
  net.link.latency.base = 1.0;
  net.link.latency.spread = 3.0;
  net.link.dropProbability = 0.15;
  net.link.retransmitTimeout = 5.0;
  return net;
}

AsyncConfig heavyTail(std::uint64_t seed) {
  AsyncConfig net;
  net.seed = seed + 2;
  net.link.latency.model = LatencyModel::HeavyTail;
  net.link.latency.base = 1.0;
  net.link.latency.tailShape = 1.5;
  net.link.latency.tailCap = 32.0;
  net.link.dropProbability = 0.05;
  return net;
}

void expectSameResult(const DistributedResult& async,
                      const DistributedResult& sync) {
  EXPECT_EQ(async.solution.instances, sync.solution.instances)
      << "async and sync transports must select identical instances";
  // Bit-identity is the Transport contract; exact comparison on purpose.
  EXPECT_EQ(async.profit, sync.profit);
  EXPECT_EQ(async.dualObjective, sync.dualObjective);
  EXPECT_EQ(async.lambdaMeasured, sync.lambdaMeasured);
  EXPECT_EQ(async.raises, sync.raises);
  EXPECT_TRUE(async.localViewsConsistent)
      << "local dual views must survive the lossy transport";
  // Round accounting is part of the synchronized execution, not the wire.
  EXPECT_EQ(async.network.rounds, sync.network.rounds);
  EXPECT_EQ(async.network.messages, sync.network.messages);
  EXPECT_EQ(async.network.payload, sync.network.payload);
}

class AsyncEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AsyncEquivalenceSweep, TreeLossyUniformBitIdentical) {
  const std::uint64_t seed = GetParam();
  const TreeProblem problem = sweepTree(seed);
  const DistributedOptions opt = sweepOptions(seed);
  const DistributedResult sync = runDistributedUnitTree(problem, opt);
  const DistributedResult async =
      runAsyncUnitTree(problem, opt, lossyUniform(seed));
  expectSameResult(async, sync);
  // The drop rate is high enough that some packet was lost and resent.
  EXPECT_GT(async.network.drops, 0);
  EXPECT_GT(async.network.retransmissions, 0);
  EXPECT_GT(async.network.virtualTime, 0.0);
}

TEST_P(AsyncEquivalenceSweep, TreeHeavyTailBitIdentical) {
  const std::uint64_t seed = GetParam();
  const TreeProblem problem = sweepTree(seed);
  const DistributedOptions opt = sweepOptions(seed);
  const DistributedResult sync = runDistributedUnitTree(problem, opt);
  const DistributedResult async =
      runAsyncUnitTree(problem, opt, heavyTail(seed));
  expectSameResult(async, sync);
}

TEST_P(AsyncEquivalenceSweep, LineLossyUniformBitIdentical) {
  const std::uint64_t seed = GetParam();
  const LineProblem problem = sweepLine(seed);
  const DistributedOptions opt = sweepOptions(seed);
  const DistributedResult sync = runDistributedUnitLine(problem, opt);
  const DistributedResult async =
      runAsyncUnitLine(problem, opt, lossyUniform(seed));
  expectSameResult(async, sync);
}

TEST_P(AsyncEquivalenceSweep, LineHeavyTailBitIdentical) {
  const std::uint64_t seed = GetParam();
  const LineProblem problem = sweepLine(seed);
  const DistributedOptions opt = sweepOptions(seed);
  const DistributedResult sync = runDistributedUnitLine(problem, opt);
  const DistributedResult async =
      runAsyncUnitLine(problem, opt, heavyTail(seed));
  expectSameResult(async, sync);
}

// Duplicating-link faults: packets delivered twice at the transport
// layer must be absorbed by the dedup path — the ROADMAP claims the
// result stays bit-identical; this gates it.
TEST_P(AsyncEquivalenceSweep, TreeDuplicatingLinksBitIdentical) {
  const std::uint64_t seed = GetParam();
  const TreeProblem problem = sweepTree(seed);
  const DistributedOptions opt = sweepOptions(seed);
  const DistributedResult sync = runDistributedUnitTree(problem, opt);

  AsyncConfig net = lossyUniform(seed);
  net.link.duplicateProbability = 0.4;
  const DistributedResult async = runAsyncUnitTree(problem, opt, net);
  expectSameResult(async, sync);
  // The faults fired: the dedup path suppressed real duplicates.
  EXPECT_GT(async.network.duplicates, 0);
}

TEST_P(AsyncEquivalenceSweep, LineDuplicatingLinksBitIdentical) {
  const std::uint64_t seed = GetParam();
  const LineProblem problem = sweepLine(seed);
  const DistributedOptions opt = sweepOptions(seed);
  const DistributedResult sync = runDistributedUnitLine(problem, opt);

  AsyncConfig net = heavyTail(seed);
  net.link.duplicateProbability = 0.5;
  const DistributedResult async = runAsyncUnitLine(problem, opt, net);
  expectSameResult(async, sync);
  EXPECT_GT(async.network.duplicates, 0);
}

// Per-link heterogeneous latency: pinning some physical links to a far
// slower model costs virtual time only, never the result.
TEST_P(AsyncEquivalenceSweep, TreeHeterogeneousLinksBitIdentical) {
  const std::uint64_t seed = GetParam();
  const TreeProblem problem = sweepTree(seed);
  const DistributedOptions opt = sweepOptions(seed);
  const DistributedResult sync = runDistributedUnitTree(problem, opt);

  AsyncConfig uniform = lossyUniform(seed);
  uniform.link.retransmitTimeout = 0;  // auto: must cover the slow links
  AsyncConfig heterogeneous = uniform;
  // Pin a physical link that certainly carries traffic (round markers
  // cross every communication edge): the first edge of the graph.
  const auto adjacency =
      communicationGraph(problem.access, problem.numNetworks());
  LinkLatencyOverride slowLink;
  slowLink.endpointA = -1;
  for (std::size_t d = 0; d < adjacency.size() && slowLink.endpointA < 0;
       ++d) {
    if (!adjacency[d].empty()) {
      slowLink.endpointA = static_cast<std::int32_t>(d);
      slowLink.endpointB = adjacency[d].front();
    }
  }
  ASSERT_GE(slowLink.endpointA, 0) << "sweep problems are connected";
  slowLink.latency.model = LatencyModel::Fixed;
  slowLink.latency.base = 25.0;
  heterogeneous.link.latencyOverrides.push_back(slowLink);
  const DistributedResult fast = runAsyncUnitTree(problem, opt, uniform);
  const DistributedResult slow =
      runAsyncUnitTree(problem, opt, heterogeneous);
  expectSameResult(fast, sync);
  expectSameResult(slow, sync);
  EXPECT_GT(slow.network.virtualTime, fast.network.virtualTime);
}

// Sharded runs (several demands per simulated processor) must produce the
// same solution as unsharded runs, for both placement strategies.
TEST_P(AsyncEquivalenceSweep, TreeShardedMatchesUnsharded) {
  const std::uint64_t seed = GetParam();
  const TreeProblem problem = sweepTree(seed);
  const DistributedOptions opt = sweepOptions(seed);
  const DistributedResult sync = runDistributedUnitTree(problem, opt);

  for (const ShardStrategy strategy :
       {ShardStrategy::RoundRobin, ShardStrategy::Locality}) {
    AsyncConfig net = lossyUniform(seed);
    net.strategy = strategy;
    net.shardProcessors =
        std::max(2, static_cast<std::int32_t>(problem.demands.size()) / 3);
    const DistributedResult sharded = runAsyncUnitTree(problem, opt, net);
    expectSameResult(sharded, sync);
    // Sharding must not inflate the per-processor vector beyond the
    // physical processor count.
    EXPECT_EQ(static_cast<std::int32_t>(sharded.network.processorLoad.size()),
              net.shardProcessors);
  }
}

TEST_P(AsyncEquivalenceSweep, LineShardedMatchesUnsharded) {
  const std::uint64_t seed = GetParam();
  const LineProblem problem = sweepLine(seed);
  const DistributedOptions opt = sweepOptions(seed);
  const DistributedResult sync = runDistributedUnitLine(problem, opt);

  AsyncConfig net = heavyTail(seed);
  net.strategy = ShardStrategy::Locality;
  net.shardProcessors =
      std::max(2, static_cast<std::int32_t>(problem.demands.size()) / 4);
  const DistributedResult sharded = runAsyncUnitLine(problem, opt, net);
  expectSameResult(sharded, sync);
}

// Locality placement keeps same-network chatter off the wire: with few
// processors, physical transmissions stay below the demand-level message
// count times the retransmission overhead would suggest. (Coarse sanity
// bound: an unsharded lossless run makes at least one physical
// transmission per demand-level delivery.)
TEST(AsyncSharding, LocalityReducesWireTraffic) {
  const TreeProblem problem = sweepTree(33);
  const DistributedOptions opt = sweepOptions(33);

  AsyncConfig lossless;
  lossless.seed = 5;
  const DistributedResult unsharded = runAsyncUnitTree(problem, opt, lossless);

  AsyncConfig shardedNet = lossless;
  shardedNet.strategy = ShardStrategy::Locality;
  shardedNet.shardProcessors = 2;
  const DistributedResult sharded = runAsyncUnitTree(problem, opt, shardedNet);

  EXPECT_LT(sharded.network.transmissions, unsharded.network.transmissions);
  EXPECT_EQ(sharded.solution.instances, unsharded.solution.instances);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncEquivalenceSweep,
                         ::testing::ValuesIn(kSeeds),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace treesched
