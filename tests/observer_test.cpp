// The protocol observer must see exactly the events the run reports.
#include <gtest/gtest.h>

#include <array>
#include <utility>
#include <vector>

#include "core/universe.hpp"
#include "dist/protocol.hpp"
#include "gen/scenario.hpp"
#include "obs/metrics.hpp"

namespace treesched {
namespace {

class CountingObserver : public ProtocolObserver {
 public:
  void onEpochBegin(std::int32_t epoch, std::int32_t groupMembers) override {
    EXPECT_EQ(epoch, static_cast<std::int32_t>(epochMembers.size()))
        << "epochs begin in order, each exactly once";
    EXPECT_GE(groupMembers, 0);
    epochMembers.push_back(groupMembers);
  }
  void onStageBegin(std::int32_t epoch, std::int32_t stage,
                    double target) override {
    ++stageBegins;
    EXPECT_EQ(epoch, static_cast<std::int32_t>(epochMembers.size()) - 1)
        << "stages belong to the epoch that just began";
    EXPECT_GE(stage, 1);
    EXPECT_GT(target, 0);
  }
  void onStepStart(std::int32_t epoch, std::int32_t stage, std::int32_t step,
                   std::int32_t participants) override {
    ++steps;
    lastEpoch = epoch;
    lastStage = stage;
    lastStep = step;
    EXPECT_GT(participants, 0) << "silent steps must not be observed";
  }
  void onMisComplete(std::int64_t tuple, std::int32_t lubyRounds,
                     std::int32_t misSize) override {
    ++misCompletions;
    totalMisSize += misSize;
    EXPECT_GE(lubyRounds, 0);
    EXPECT_GE(tuple, 0);
  }
  void onRaise(std::int64_t /*tuple*/, InstanceId instance,
               double delta) override {
    raises.push_back(instance);
    EXPECT_GT(delta, 0) << "unit-rule alpha increments are positive";
  }
  void onAccept(std::int64_t /*tuple*/, InstanceId instance) override {
    accepts.push_back(instance);
  }
  void onReject(std::int64_t /*tuple*/, InstanceId instance,
                RejectReason reason) override {
    rejects.push_back(instance);
    ++rejectsByReason[static_cast<std::size_t>(reason)];
  }
  void onCrash(DemandId processor, std::int64_t tuple) override {
    crashes.emplace_back(processor, tuple);
  }
  void onPhase1Complete(std::int64_t activeSteps,
                        std::int64_t raiseCount) override {
    ++phase1Completions;
    phase1Steps = activeSteps;
    phase1Raises = raiseCount;
  }
  void onPhase2Complete(std::int64_t acceptCount,
                        std::int64_t rejectCount) override {
    ++phase2Completions;
    phase2Accepts = acceptCount;
    phase2Rejects = rejectCount;
  }

  std::int64_t steps = 0;
  std::int64_t misCompletions = 0;
  std::int64_t totalMisSize = 0;
  std::int32_t lastEpoch = -1;
  std::int32_t lastStage = -1;
  std::int32_t lastStep = -1;
  std::int64_t stageBegins = 0;
  std::vector<std::int32_t> epochMembers;
  std::int32_t phase1Completions = 0;
  std::int64_t phase1Steps = -1;
  std::int64_t phase1Raises = -1;
  std::int32_t phase2Completions = 0;
  std::int64_t phase2Accepts = -1;
  std::int64_t phase2Rejects = -1;
  std::vector<InstanceId> raises;
  std::vector<InstanceId> accepts;
  std::vector<InstanceId> rejects;
  std::array<std::int64_t, 3> rejectsByReason = {0, 0, 0};
  std::vector<std::pair<DemandId, std::int64_t>> crashes;
};

TEST(Observer, EventCountsMatchResult) {
  TreeScenarioConfig cfg;
  cfg.seed = 61;
  cfg.numVertices = 24;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 20;
  cfg.demands.accessProbability = 0.8;
  const TreeProblem problem = makeTreeScenario(cfg);

  CountingObserver observer;
  DistributedOptions opt;
  opt.observer = &observer;
  const DistributedResult result = runDistributedUnitTree(problem, opt);

  EXPECT_EQ(observer.steps, result.activeSteps);
  EXPECT_EQ(observer.misCompletions, result.activeSteps);
  EXPECT_EQ(static_cast<std::int64_t>(observer.raises.size()), result.raises);
  EXPECT_EQ(observer.totalMisSize, result.raises);
  // Every accept is in the final solution and vice versa.
  std::vector<InstanceId> accepted = observer.accepts;
  std::sort(accepted.begin(), accepted.end());
  EXPECT_EQ(accepted, result.solution.instances);

  // Boundary events: one onEpochBegin per scheduled epoch (with every
  // stage attributed to it), and the phase-complete summaries repeat the
  // run-level counters.
  EXPECT_GT(observer.epochMembers.size(), 0u);
  EXPECT_GT(observer.stageBegins, 0);
  EXPECT_EQ(observer.phase1Completions, 1);
  EXPECT_EQ(observer.phase1Steps, result.activeSteps);
  EXPECT_EQ(observer.phase1Raises, result.raises);
  EXPECT_EQ(observer.phase2Completions, 1);
  EXPECT_EQ(observer.phase2Accepts,
            static_cast<std::int64_t>(observer.accepts.size()));
  EXPECT_EQ(observer.phase2Rejects,
            static_cast<std::int64_t>(observer.rejects.size()));
  // Every raise is popped exactly once in phase 2.
  EXPECT_EQ(observer.phase2Accepts + observer.phase2Rejects, result.raises);
  EXPECT_TRUE(observer.crashes.empty()) << "no faults were injected";
}

TEST(Observer, CrashEventsFireOncePerProcessor) {
  TreeScenarioConfig cfg;
  cfg.seed = 64;
  cfg.numVertices = 24;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 20;
  cfg.demands.accessProbability = 0.8;
  const TreeProblem problem = makeTreeScenario(cfg);

  CountingObserver observer;
  DistributedOptions opt;
  opt.observer = &observer;
  opt.crashProcessors = {0, 5, 9};
  opt.crashAtTuple = 3;
  const DistributedResult result = runDistributedUnitTree(problem, opt);

  ASSERT_EQ(observer.crashes.size(), 3u);
  for (std::size_t i = 0; i < observer.crashes.size(); ++i) {
    EXPECT_EQ(observer.crashes[i].first, opt.crashProcessors[i])
        << "crash events fire per processor, ascending";
    EXPECT_GE(observer.crashes[i].second, opt.crashAtTuple);
  }
  // Rejects include the crashed owners' surviving raises; the ledger
  // still balances.
  EXPECT_EQ(observer.phase2Accepts + observer.phase2Rejects, result.raises);
}

TEST(Observer, Phase2OnlyCrashReportsScheduleEnd) {
  TreeScenarioConfig cfg;
  cfg.seed = 65;
  cfg.numVertices = 16;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 14;
  cfg.demands.accessProbability = 0.8;
  const TreeProblem problem = makeTreeScenario(cfg);

  CountingObserver observer;
  DistributedOptions opt;
  opt.observer = &observer;
  opt.crashProcessors = {1, 3};
  opt.crashAtTuple = 1'000'000'000;  // past phase 1: crash at phase-2 start
  runDistributedUnitTree(problem, opt);

  ASSERT_EQ(observer.crashes.size(), 2u);
  EXPECT_EQ(observer.crashes[0].second, observer.crashes[1].second)
      << "both faults take effect at the same phase-2 boundary tuple";
}

TEST(Observer, RaisesAreUniqueInstances) {
  TreeScenarioConfig cfg;
  cfg.seed = 62;
  cfg.numVertices = 16;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 14;
  const TreeProblem problem = makeTreeScenario(cfg);

  CountingObserver observer;
  DistributedOptions opt;
  opt.observer = &observer;
  runDistributedUnitTree(problem, opt);

  std::vector<InstanceId> raised = observer.raises;
  std::sort(raised.begin(), raised.end());
  EXPECT_EQ(std::adjacent_find(raised.begin(), raised.end()), raised.end())
      << "an instance is raised at most once (its constraint gets tight)";
}

TEST(Observer, PerReasonRejectCountersSumToAggregate) {
  TreeScenarioConfig cfg;
  cfg.seed = 66;
  cfg.numVertices = 24;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 20;
  cfg.demands.accessProbability = 0.8;
  const TreeProblem problem = makeTreeScenario(cfg);

  // Crash a few processors so all three reject reasons are reachable
  // (OwnerCrashed needs a fault; the others occur naturally).
  MetricsRegistry metrics;
  CountingObserver observer;
  DistributedOptions opt;
  opt.observer = &observer;
  opt.metrics = &metrics;
  opt.crashProcessors = {0, 5};
  opt.crashAtTuple = 3;
  runDistributedUnitTree(problem, opt);

  const std::int64_t total = metrics.counter("protocol.rejects").value();
  const std::int64_t byReason =
      metrics.counter("protocol.rejects.owner_crashed").value() +
      metrics.counter("protocol.rejects.demand_satisfied").value() +
      metrics.counter("protocol.rejects.capacity_exceeded").value();
  EXPECT_EQ(total, byReason)
      << "per-reason reject counters must partition the aggregate";
  EXPECT_EQ(total, static_cast<std::int64_t>(observer.rejects.size()));
  EXPECT_GT(total, 0) << "the scenario actually rejected something";
  // Each per-reason counter agrees with the observer's own tally of the
  // reasons it was handed.
  EXPECT_EQ(metrics.counter("protocol.rejects.owner_crashed").value(),
            observer.rejectsByReason[static_cast<std::size_t>(
                RejectReason::OwnerCrashed)]);
  EXPECT_EQ(metrics.counter("protocol.rejects.demand_satisfied").value(),
            observer.rejectsByReason[static_cast<std::size_t>(
                RejectReason::DemandSatisfied)]);
  EXPECT_EQ(metrics.counter("protocol.rejects.capacity_exceeded").value(),
            observer.rejectsByReason[static_cast<std::size_t>(
                RejectReason::CapacityExceeded)]);
}

TEST(Observer, NullObserverIsFine) {
  TreeScenarioConfig cfg;
  cfg.seed = 63;
  cfg.numVertices = 12;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 8;
  const TreeProblem problem = makeTreeScenario(cfg);
  DistributedOptions opt;
  opt.observer = nullptr;
  EXPECT_NO_THROW(runDistributedUnitTree(problem, opt));
}

}  // namespace
}  // namespace treesched
