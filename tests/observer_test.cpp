// The protocol observer must see exactly the events the run reports.
#include <gtest/gtest.h>

#include <vector>

#include "core/universe.hpp"
#include "dist/protocol.hpp"
#include "gen/scenario.hpp"

namespace treesched {
namespace {

class CountingObserver : public ProtocolObserver {
 public:
  void onStepStart(std::int32_t epoch, std::int32_t stage, std::int32_t step,
                   std::int32_t participants) override {
    ++steps;
    lastEpoch = epoch;
    lastStage = stage;
    lastStep = step;
    EXPECT_GT(participants, 0) << "silent steps must not be observed";
  }
  void onMisComplete(std::int64_t tuple, std::int32_t lubyRounds,
                     std::int32_t misSize) override {
    ++misCompletions;
    totalMisSize += misSize;
    EXPECT_GE(lubyRounds, 0);
    EXPECT_GE(tuple, 0);
  }
  void onRaise(std::int64_t /*tuple*/, InstanceId instance,
               double delta) override {
    raises.push_back(instance);
    EXPECT_GT(delta, 0) << "unit-rule alpha increments are positive";
  }
  void onAccept(std::int64_t /*tuple*/, InstanceId instance) override {
    accepts.push_back(instance);
  }

  std::int64_t steps = 0;
  std::int64_t misCompletions = 0;
  std::int64_t totalMisSize = 0;
  std::int32_t lastEpoch = -1;
  std::int32_t lastStage = -1;
  std::int32_t lastStep = -1;
  std::vector<InstanceId> raises;
  std::vector<InstanceId> accepts;
};

TEST(Observer, EventCountsMatchResult) {
  TreeScenarioConfig cfg;
  cfg.seed = 61;
  cfg.numVertices = 24;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 20;
  cfg.demands.accessProbability = 0.8;
  const TreeProblem problem = makeTreeScenario(cfg);

  CountingObserver observer;
  DistributedOptions opt;
  opt.observer = &observer;
  const DistributedResult result = runDistributedUnitTree(problem, opt);

  EXPECT_EQ(observer.steps, result.activeSteps);
  EXPECT_EQ(observer.misCompletions, result.activeSteps);
  EXPECT_EQ(static_cast<std::int64_t>(observer.raises.size()), result.raises);
  EXPECT_EQ(observer.totalMisSize, result.raises);
  // Every accept is in the final solution and vice versa.
  std::vector<InstanceId> accepted = observer.accepts;
  std::sort(accepted.begin(), accepted.end());
  EXPECT_EQ(accepted, result.solution.instances);
}

TEST(Observer, RaisesAreUniqueInstances) {
  TreeScenarioConfig cfg;
  cfg.seed = 62;
  cfg.numVertices = 16;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 14;
  const TreeProblem problem = makeTreeScenario(cfg);

  CountingObserver observer;
  DistributedOptions opt;
  opt.observer = &observer;
  runDistributedUnitTree(problem, opt);

  std::vector<InstanceId> raised = observer.raises;
  std::sort(raised.begin(), raised.end());
  EXPECT_EQ(std::adjacent_find(raised.begin(), raised.end()), raised.end())
      << "an instance is raised at most once (its constraint gets tight)";
}

TEST(Observer, NullObserverIsFine) {
  TreeScenarioConfig cfg;
  cfg.seed = 63;
  cfg.numVertices = 12;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 8;
  const TreeProblem problem = makeTreeScenario(cfg);
  DistributedOptions opt;
  opt.observer = nullptr;
  EXPECT_NO_THROW(runDistributedUnitTree(problem, opt));
}

}  // namespace
}  // namespace treesched
