#include <gtest/gtest.h>

#include "core/solution.hpp"
#include "core/universe.hpp"
#include "gen/scenario.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

// Two networks over 6 vertices: a path and a star; three demands.
TreeProblem fixtureProblem() {
  TreeProblem problem;
  problem.numVertices = 6;
  problem.networks.push_back(makePathTree(0, 6));
  problem.networks.push_back(makeStarTree(1, 6));
  auto add = [&](VertexId u, VertexId v, double profit, double height) {
    Demand d;
    d.id = static_cast<DemandId>(problem.demands.size());
    d.u = u;
    d.v = v;
    d.profit = profit;
    d.height = height;
    problem.demands.push_back(d);
    problem.access.push_back({0, 1});
  };
  add(0, 5, 4.0, 1.0);
  add(1, 3, 3.0, 1.0);
  add(2, 4, 2.0, 1.0);
  problem.validate();
  return problem;
}

TEST(Solution, EmptySolutionIsFeasible) {
  const TreeProblem problem = fixtureProblem();
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  const Solution empty;
  EXPECT_TRUE(validateSolution(u, empty).feasible);
  EXPECT_DOUBLE_EQ(solutionProfit(u, empty), 0.0);
}

TEST(Solution, DetectsDuplicateDemand) {
  const TreeProblem problem = fixtureProblem();
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  // Instances 0 and 1 belong to demand 0 (two networks).
  Solution s;
  s.instances = {0, 1};
  const ValidationReport report = validateSolution(u, s);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.firstViolation.find("demand 0"), std::string::npos);
}

TEST(Solution, DetectsEdgeOverCapacity) {
  const TreeProblem problem = fixtureProblem();
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  // Demands 0 (0->5) and 1 (1->3) on the path network share edges 1-2, 2-3.
  const auto inst0 = u.instancesOfDemand(0);
  const auto inst1 = u.instancesOfDemand(1);
  Solution s;
  s.instances = {inst0[0], inst1[0]};  // both on network 0 (the path)
  const ValidationReport report = validateSolution(u, s);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.firstViolation.find("capacity"), std::string::npos);
}

TEST(Solution, DisjointPlacementFeasible) {
  const TreeProblem problem = fixtureProblem();
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  // Demand 0 on the star (path 0-center... 0 IS a leaf: 0->5 via center 0?
  // star center is vertex 0, so path 0->5 is the single edge (0,5)).
  const auto inst0 = u.instancesOfDemand(0);
  const auto inst1 = u.instancesOfDemand(1);
  Solution s;
  s.instances = {inst0[1], inst1[0]};  // demand 0 on star, demand 1 on path
  EXPECT_TRUE(validateSolution(u, s).feasible);
  EXPECT_DOUBLE_EQ(solutionProfit(u, s), 7.0);
  EXPECT_NO_THROW(requireFeasible(u, s));
}

TEST(Solution, RequireFeasibleThrowsOnViolation) {
  const TreeProblem problem = fixtureProblem();
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  Solution s;
  s.instances = {0, 1};
  EXPECT_THROW(requireFeasible(u, s), CheckError);
}

TEST(Solution, ProfitByNetworkSplitsCorrectly) {
  const TreeProblem problem = fixtureProblem();
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  Solution s;
  s.instances = {u.instancesOfDemand(0)[1],   // network 1
                 u.instancesOfDemand(1)[0],   // network 0
                 u.instancesOfDemand(2)[0]};  // network 0
  const std::vector<double> split = profitByNetwork(u, s);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_DOUBLE_EQ(split[0], 5.0);  // demands 1 + 2
  EXPECT_DOUBLE_EQ(split[1], 4.0);  // demand 0
}

TEST(Solution, FractionalHeightsAtExactCapacity) {
  // Two 0.5-height demands on the same edge must be feasible (sum == 1).
  TreeProblem problem;
  problem.numVertices = 2;
  problem.networks.push_back(makePathTree(0, 2));
  for (int i = 0; i < 2; ++i) {
    Demand d;
    d.id = i;
    d.u = 0;
    d.v = 1;
    d.profit = 1.0;
    d.height = 0.5;
    problem.demands.push_back(d);
    problem.access.push_back({0});
  }
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  Solution s;
  s.instances = {0, 1};
  EXPECT_TRUE(validateSolution(u, s).feasible)
      << "heights summing exactly to capacity must pass";
}

TEST(Solution, ThreeThirdsAtExactCapacity) {
  // 1/3 + 1/3 + 1/3 == 1.0 only up to rounding; the tolerance must absorb
  // the representation error.
  TreeProblem problem;
  problem.numVertices = 2;
  problem.networks.push_back(makePathTree(0, 2));
  for (int i = 0; i < 3; ++i) {
    Demand d;
    d.id = i;
    d.u = 0;
    d.v = 1;
    d.profit = 1.0;
    d.height = 1.0 / 3.0;
    problem.demands.push_back(d);
    problem.access.push_back({0});
  }
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  Solution s;
  s.instances = {0, 1, 2};
  EXPECT_TRUE(validateSolution(u, s).feasible);
}

TEST(FeasibilityOracle, TracksProfitThroughAddRemove) {
  const TreeProblem problem = fixtureProblem();
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  FeasibilityOracle oracle(u);
  const auto inst0 = u.instancesOfDemand(0);
  oracle.add(inst0[1]);
  EXPECT_DOUBLE_EQ(oracle.profit(), 4.0);
  EXPECT_FALSE(oracle.canAdd(inst0[0])) << "same demand twice";
  oracle.remove(inst0[1]);
  EXPECT_TRUE(oracle.canAdd(inst0[0]));
  EXPECT_TRUE(oracle.solution().instances.empty());
}

TEST(FeasibilityOracle, RemoveOfNonMemberThrows) {
  const TreeProblem problem = fixtureProblem();
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  FeasibilityOracle oracle(u);
  EXPECT_THROW(oracle.remove(0), CheckError);
}

TEST(FeasibilityOracle, WideInstancesExcludeEachOther) {
  // §6: two overlapping wide instances can never coexist — the fact that
  // lets the unit-height algorithm run on wide instances unchanged.
  TreeProblem problem;
  problem.numVertices = 3;
  problem.networks.push_back(makePathTree(0, 3));
  for (int i = 0; i < 2; ++i) {
    Demand d;
    d.id = i;
    d.u = 0;
    d.v = 2;
    d.profit = 1.0;
    d.height = 0.6;  // wide
    problem.demands.push_back(d);
    problem.access.push_back({0});
  }
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  FeasibilityOracle oracle(u);
  oracle.add(0);
  EXPECT_FALSE(oracle.canAdd(1));
}

}  // namespace
}  // namespace treesched
