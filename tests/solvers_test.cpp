#include <gtest/gtest.h>

#include "algo/line_solvers.hpp"
#include "algo/sequential_tree.hpp"
#include "algo/tree_solvers.hpp"
#include "core/universe.hpp"
#include "exact/brute_force.hpp"
#include "gen/scenario.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

TreeProblem treeCase(std::uint64_t seed, std::int32_t n, std::int32_t m,
                     std::int32_t r, HeightMode heights = HeightMode::Unit) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = n;
  cfg.numNetworks = r;
  cfg.demands.numDemands = m;
  cfg.demands.heights = heights;
  cfg.demands.hmin = 0.15;
  cfg.demands.profitMax = 12.0;
  cfg.demands.accessProbability = 0.8;
  return makeTreeScenario(cfg);
}

LineProblem lineCase(std::uint64_t seed, std::int32_t slots, std::int32_t m,
                     std::int32_t r, double slack,
                     HeightMode heights = HeightMode::Unit) {
  LineScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numSlots = slots;
  cfg.numResources = r;
  cfg.demands.numDemands = m;
  cfg.demands.heights = heights;
  cfg.demands.hmin = 0.15;
  cfg.demands.windowSlack = slack;
  cfg.demands.processingMax = std::max<std::int32_t>(2, slots / 6);
  cfg.demands.accessProbability = 0.8;
  return makeLineScenario(cfg);
}

// ---- solveUnitTree (Theorem 5.3) ----

TEST(SolveUnitTree, FeasibleNonTrivial) {
  const TreeProblem problem = treeCase(1, 32, 40, 3);
  const TreeSolveResult result = solveUnitTree(problem);
  EXPECT_EQ(checkAssignments(problem, result.assignments), "");
  EXPECT_GT(result.profit, 0);
  EXPECT_NEAR(result.profit, assignmentProfit(problem, result.assignments),
              1e-9);
}

TEST(SolveUnitTree, CertifiedBoundAtMostSevenPlusEps) {
  const TreeProblem problem = treeCase(2, 24, 20, 2);
  SolverOptions options;
  options.epsilon = 0.1;
  const TreeSolveResult result = solveUnitTree(problem, options);
  // The per-run certificate uses the *measured* Delta <= 6, so it can only
  // be tighter than Theorem 5.3's (7+eps) = 7/(1-eps).
  EXPECT_LE(result.certifiedBound, 7.0 / 0.9 + 1e-9);
  EXPECT_NEAR(result.certifiedBound, (result.stats.delta + 1.0) / 0.9, 1e-9);
  EXPECT_LE(result.stats.delta, 6);
}

TEST(SolveUnitTree, WithinBoundOfExactOptimum) {
  // The theorem guarantees p(S) >= OPT / (7+eps); verify against brute
  // force on many small instances.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TreeProblem problem = treeCase(seed, 12, 9, 2);
    const TreeSolveResult result = solveUnitTree(problem);
    InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
    const ExactResult exact = bruteForceExact(u);
    ASSERT_TRUE(exact.provedOptimal);
    EXPECT_GE(result.profit * result.certifiedBound, exact.profit - 1e-6)
        << "approximation bound violated at seed " << seed;
    EXPECT_LE(result.profit, exact.profit + 1e-6) << "beat the optimum?!";
    EXPECT_GE(result.dualUpperBound, exact.profit - 1e-6)
        << "dual certificate must dominate OPT at seed " << seed;
  }
}

TEST(SolveUnitTree, RejectsNonUnitHeights) {
  const TreeProblem problem = treeCase(3, 16, 8, 2, HeightMode::Mixed);
  EXPECT_THROW(solveUnitTree(problem), CheckError);
}

TEST(SolveUnitTree, DeterministicForSeed) {
  const TreeProblem problem = treeCase(4, 24, 30, 2);
  SolverOptions options;
  options.seed = 77;
  const TreeSolveResult a = solveUnitTree(problem, options);
  const TreeSolveResult b = solveUnitTree(problem, options);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].demand, b.assignments[i].demand);
    EXPECT_EQ(a.assignments[i].network, b.assignments[i].network);
  }
}

TEST(SolveUnitTree, SingleNetworkSingleDemand) {
  TreeProblem problem;
  problem.numVertices = 4;
  problem.networks.push_back(makePathTree(0, 4));
  Demand d;
  d.id = 0;
  d.u = 0;
  d.v = 3;
  d.profit = 2.0;
  problem.demands = {d};
  problem.access = {{0}};
  const TreeSolveResult result = solveUnitTree(problem);
  ASSERT_EQ(result.assignments.size(), 1u);
  EXPECT_DOUBLE_EQ(result.profit, 2.0);
}

// ---- solveArbitraryTree (Theorem 6.3) ----

TEST(SolveArbitraryTree, FeasibleOnMixedHeights) {
  const TreeProblem problem = treeCase(5, 24, 40, 2, HeightMode::Mixed);
  const ArbitraryTreeResult result = solveArbitraryTree(problem);
  EXPECT_EQ(checkAssignments(problem, result.assignments), "");
  EXPECT_GT(result.profit, 0);
}

TEST(SolveArbitraryTree, CombineDominatesBothParts) {
  const TreeProblem problem = treeCase(6, 24, 50, 3, HeightMode::Mixed);
  const ArbitraryTreeResult result = solveArbitraryTree(problem);
  EXPECT_GE(result.profit, std::max(result.wideProfit, result.narrowProfit) -
                               1e-9)
      << "per-network combine must not lose to either sub-solution";
}

TEST(SolveArbitraryTree, WithinBoundOfExactOptimum) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TreeProblem problem =
        treeCase(seed + 50, 10, 8, 2, HeightMode::Mixed);
    const ArbitraryTreeResult result = solveArbitraryTree(problem);
    InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
    const ExactResult exact = bruteForceExact(u);
    ASSERT_TRUE(exact.provedOptimal);
    EXPECT_GE(result.profit * result.certifiedBound, exact.profit - 1e-6);
    EXPECT_LE(result.profit, exact.profit + 1e-6);
    EXPECT_GE(result.dualUpperBound, exact.profit - 1e-6);
  }
}

TEST(SolveArbitraryTree, PureNarrowInput) {
  const TreeProblem problem = treeCase(7, 16, 20, 2, HeightMode::Narrow);
  const ArbitraryTreeResult result = solveArbitraryTree(problem);
  EXPECT_FALSE(result.wideStats.has_value());
  ASSERT_TRUE(result.narrowStats.has_value());
  EXPECT_EQ(checkAssignments(problem, result.assignments), "");
}

TEST(SolveArbitraryTree, PureWideInputMatchesUnitAlgorithm) {
  const TreeProblem problem = treeCase(8, 16, 20, 2, HeightMode::Wide);
  const ArbitraryTreeResult result = solveArbitraryTree(problem);
  EXPECT_FALSE(result.narrowStats.has_value());
  ASSERT_TRUE(result.wideStats.has_value());
  EXPECT_EQ(checkAssignments(problem, result.assignments), "");
}

// ---- solveSequentialTree (Appendix A) ----

TEST(SequentialTree, FeasibleAndBounded) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TreeProblem problem = treeCase(seed + 100, 12, 10, 2);
    const SequentialTreeResult result = solveSequentialTree(problem);
    EXPECT_EQ(checkAssignments(problem, result.assignments), "");
    EXPECT_LE(result.delta, 2) << "Appendix A: Delta = 2";
    InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
    const ExactResult exact = bruteForceExact(u);
    ASSERT_TRUE(exact.provedOptimal);
    EXPECT_GE(result.profit * 3.0, exact.profit - 1e-6)
        << "3-approximation violated at seed " << seed;
    EXPECT_GE(result.dualUpperBound, exact.profit - 1e-6);
  }
}

TEST(SequentialTree, SingleNetworkTwoApprox) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TreeProblem problem = treeCase(seed + 200, 14, 10, 1);
    const SequentialTreeResult result = solveSequentialTree(problem);
    EXPECT_DOUBLE_EQ(result.certifiedBound, 2.0);
    InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
    const ExactResult exact = bruteForceExact(u);
    ASSERT_TRUE(exact.provedOptimal);
    EXPECT_GE(result.profit * 2.0, exact.profit - 1e-6)
        << "2-approximation violated at seed " << seed;
  }
}

TEST(SequentialTree, IterationsEqualRaisedInstances) {
  const TreeProblem problem = treeCase(9, 20, 15, 2);
  const SequentialTreeResult result = solveSequentialTree(problem);
  // Every instance is raised at most once; with full access, exactly the
  // unsatisfied ones. Iterations must be <= total instances.
  InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  EXPECT_LE(result.iterations, u.numInstances());
  EXPECT_GT(result.iterations, 0);
}

// ---- Line solvers (Theorems 7.1 / 7.2) ----

TEST(SolveUnitLine, FeasibleWithWindows) {
  const LineProblem problem = lineCase(10, 64, 30, 2, 1.0);
  const LineSolveResult result = solveUnitLine(problem);
  EXPECT_EQ(checkAssignments(problem, result.assignments), "");
  EXPECT_GT(result.profit, 0);
  EXPECT_LE(result.stats.delta, 3);
}

TEST(SolveUnitLine, CertifiedBoundIsFourPlusEps) {
  const LineProblem problem = lineCase(11, 48, 20, 2, 0.5);
  SolverOptions options;
  options.epsilon = 0.2;
  const LineSolveResult result = solveUnitLine(problem, options);
  EXPECT_NEAR(result.certifiedBound, 4.0 / 0.8, 1e-9);
}

TEST(SolveUnitLine, WithinBoundOfExactOptimum) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const LineProblem problem = lineCase(seed + 300, 24, 8, 2, 0.5);
    const LineSolveResult result = solveUnitLine(problem);
    InstanceUniverse u = InstanceUniverse::fromLineProblem(problem);
    const ExactResult exact = bruteForceExact(u);
    ASSERT_TRUE(exact.provedOptimal);
    EXPECT_GE(result.profit * result.certifiedBound, exact.profit - 1e-6);
    EXPECT_LE(result.profit, exact.profit + 1e-6);
  }
}

TEST(SolveUnitLine, PanconesiSozioBaselineFeasible) {
  const LineProblem problem = lineCase(12, 64, 30, 2, 1.0);
  const LineSolveResult result = solvePanconesiSozioUnitLine(problem);
  EXPECT_EQ(checkAssignments(problem, result.assignments), "");
  // (20+eps) worst case: (3+1)*(5+eps).
  EXPECT_NEAR(result.certifiedBound, 4.0 * 5.1, 1e-9);
}

TEST(SolveUnitLine, StagedCertifiedBoundBeatsBaselineByFactorFive) {
  const LineProblem problem = lineCase(13, 48, 20, 2, 0.5);
  SolverOptions options;
  options.epsilon = 0.1;
  const LineSolveResult ours = solveUnitLine(problem, options);
  const LineSolveResult ps = solvePanconesiSozioUnitLine(problem, options);
  EXPECT_GT(ps.certifiedBound / ours.certifiedBound, 4.5)
      << "the paper's improvement factor (~5x on lambda) must show";
}

TEST(SolveArbitraryLine, FeasibleOnMixedHeights) {
  const LineProblem problem = lineCase(14, 48, 30, 2, 0.5, HeightMode::Mixed);
  const ArbitraryLineResult result = solveArbitraryLine(problem);
  EXPECT_EQ(checkAssignments(problem, result.assignments), "");
  EXPECT_GE(result.profit, std::max(result.wideProfit, result.narrowProfit) -
                               1e-9);
}

TEST(SolveArbitraryLine, WithinBoundOfExactOptimum) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const LineProblem problem =
        lineCase(seed + 400, 20, 7, 2, 0.5, HeightMode::Mixed);
    const ArbitraryLineResult result = solveArbitraryLine(problem);
    InstanceUniverse u = InstanceUniverse::fromLineProblem(problem);
    const ExactResult exact = bruteForceExact(u);
    ASSERT_TRUE(exact.provedOptimal);
    EXPECT_GE(result.profit * result.certifiedBound, exact.profit - 1e-6);
  }
}

TEST(SolveArbitraryLine, CertifiedBoundIsTwentyThreePlusEps) {
  const LineProblem problem = lineCase(15, 32, 10, 1, 0.0, HeightMode::Mixed);
  SolverOptions options;
  options.epsilon = 0.1;
  const ArbitraryLineResult result = solveArbitraryLine(problem, options);
  EXPECT_NEAR(result.certifiedBound, 23.0 / 0.9, 1e-9);
}

// ---- Ablation hooks (E10) ----

TEST(Ablation, BalancingDecompositionStillSound) {
  const TreeProblem problem = treeCase(16, 24, 30, 2);
  SolverOptions options;
  options.decomposition = DecompositionKind::Balancing;
  const TreeSolveResult result = solveUnitTree(problem, options);
  EXPECT_EQ(checkAssignments(problem, result.assignments), "");
  // Delta can exceed 6 here — that is the point of the ablation.
  EXPECT_GE(result.stats.delta, 1);
}

TEST(Ablation, ThresholdOnTreesStillSound) {
  const TreeProblem problem = treeCase(17, 24, 30, 2);
  SolverOptions options;
  options.schedule = SchedulePolicy::Threshold;
  const TreeSolveResult result = solveUnitTree(problem, options);
  EXPECT_EQ(checkAssignments(problem, result.assignments), "");
  EXPECT_NEAR(result.stats.lambdaTarget, 1.0 / 5.1, 1e-9);
}

}  // namespace
}  // namespace treesched
