// Acceptance gate of epoch-boundary hot-shard rebalancing: shard
// placement is wire accounting, never the schedule. Enabling
// MutableTopology::rebalanceShards on the live-sharded wire must leave
// every epoch outcome bit-identical to the SimNetwork reference — same
// solution, profit, duals, lambda, raises, rounds and messages — at any
// thread count; only processor loads and physical transmissions move.
//
// The sweep drives 5 seeds x {tree, line} x {poisson, targeted_burst}
// traces through the churn engine and compares the synchronous reference
// against sync @8 threads and the rebalancing sharded wire @ {1, 8}
// threads. Non-vacuity is asserted: across the targeted-burst runs the
// rebalancer must actually migrate demands and reduce the per-processor
// load variance, and its migration schedule must be identical at 1 and
// 8 threads (the plan runs at the epoch boundary, outside the parallel
// sections).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gen/scenario.hpp"
#include "net/live_transport.hpp"
#include "net/transport.hpp"
#include "online/churn_engine.hpp"

namespace treesched {
namespace {

constexpr std::uint64_t kSeeds[] = {3, 14, 25, 36, 47};

// Small enough for the event-driven wire, large enough (12 networks)
// that the targeted burst piles a hot network onto one sticky anchor.
constexpr std::int32_t kPoolDemands = 96;
constexpr double kHorizon = 64.0;
constexpr double kEpochLength = 8.0;

ArrivalConfig sweepArrivals(ArrivalModel model, std::uint64_t seed) {
  ArrivalConfig config;
  config.model = model;
  config.seed = seed ^ 0x7a11ULL;
  config.horizon = kHorizon;
  config.meanLifetime = 24.0;
  config.burstCenter = 0.3;
  config.burstWidth = 0.08;
  config.burstFraction = 0.5;
  config.targetNetworkCount = 3;
  config.targetFraction = 0.8;
  config.correlatedLifetime = 0.3;
  return config;
}

AsyncConfig shardedWire(std::uint64_t seed) {
  AsyncConfig net;
  net.seed = seed ^ 0x10a4ULL;
  net.link.latency.model = LatencyModel::Uniform;
  net.link.latency.base = 1.0;
  net.link.latency.spread = 2.0;
  net.link.dropProbability = 0.1;
  net.link.retransmitTimeout = 8.0;
  net.shardProcessors = 7;
  return net;
}

ChurnEngineConfig engineConfig(std::uint64_t seed, std::int32_t threads,
                               const LiveTransportConfig& transport,
                               bool rebalance) {
  ChurnEngineConfig config;
  config.epochLength = kEpochLength;
  config.solver.seed = seed * 31 + 5;
  config.solver.epsilon = 0.35;
  config.solver.misRoundBudget = 4;
  config.solver.stepsPerStage = 2;
  config.solver.threads = threads;
  config.solver.rebalance.enabled = rebalance;
  config.solver.rebalance.seed = seed ^ 0x5ebaULL;
  config.transport = transport;
  return config;
}

/// The schedule-relevant epoch fields (everything the equivalence chain
/// promises); load variance, migrations and engine claim tallies are
/// deliberately excluded — they are the accounting rebalancing exists
/// to move.
void expectRunsIdentical(const ChurnRunResult& reference,
                         const ChurnRunResult& run, const char* label) {
  ASSERT_EQ(reference.epochs.size(), run.epochs.size()) << label;
  for (std::size_t k = 0; k < reference.epochs.size(); ++k) {
    const EpochOutcome& a = reference.epochs[k];
    const EpochOutcome& b = run.epochs[k];
    ASSERT_EQ(a.solution.instances, b.solution.instances)
        << label << " epoch " << k;
    EXPECT_EQ(a.profit, b.profit) << label << " epoch " << k;
    EXPECT_EQ(a.dualObjective, b.dualObjective) << label << " epoch " << k;
    EXPECT_EQ(a.lambdaMeasured, b.lambdaMeasured) << label << " epoch " << k;
    EXPECT_EQ(a.raises, b.raises) << label << " epoch " << k;
    EXPECT_EQ(a.rounds, b.rounds) << label << " epoch " << k;
    EXPECT_EQ(a.messages, b.messages) << label << " epoch " << k;
    EXPECT_EQ(a.affectedDemands, b.affectedDemands) << label << " epoch " << k;
    EXPECT_EQ(a.fullResolve, b.fullResolve) << label << " epoch " << k;
    EXPECT_EQ(a.newlyAdmittedDemands, b.newlyAdmittedDemands)
        << label << " epoch " << k;
  }
  EXPECT_EQ(reference.finalSolution.instances, run.finalSolution.instances)
      << label;
  EXPECT_EQ(reference.finalProfit, run.finalProfit) << label;
  EXPECT_EQ(reference.meanResolveFraction, run.meanResolveFraction) << label;
  EXPECT_EQ(reference.sla.admittedDemands, run.sla.admittedDemands) << label;
  EXPECT_EQ(reference.sla.meanLatencyEpochs, run.sla.meanLatencyEpochs)
      << label;
}

/// Accumulated over one test body to assert the gate is non-vacuous.
struct RebalanceActivity {
  std::int64_t demandsMigrated = 0;
  bool varianceReduced = false;
};

void verifyRebalancedRunsAgree(
    const std::function<DynamicUniverse()>& makeUniverse,
    const ChurnTrace& trace, std::uint64_t seed, RebalanceActivity& activity) {
  LiveTransportConfig sync;
  DynamicUniverse referenceUniverse = makeUniverse();
  const ChurnRunResult reference = runChurnOverTrace(
      referenceUniverse, trace, engineConfig(seed, 1, sync, false));
  ASSERT_FALSE(reference.epochs.empty());
  ASSERT_GT(reference.totalMessages, 0);

  DynamicUniverse syncThreadedUniverse = makeUniverse();
  const ChurnRunResult syncThreaded = runChurnOverTrace(
      syncThreadedUniverse, trace, engineConfig(seed, 8, sync, false));
  expectRunsIdentical(reference, syncThreaded, "sync-8-threads");
  // Rebalancing on a placement-free transport is a no-op by contract.
  EXPECT_EQ(syncThreaded.totalDemandsMigrated, 0);

  LiveTransportConfig sharded;
  sharded.kind = LiveTransportKind::Sharded;
  sharded.async = shardedWire(seed);
  DynamicUniverse serialUniverse = makeUniverse();
  const ChurnRunResult serial = runChurnOverTrace(
      serialUniverse, trace, engineConfig(seed, 1, sharded, true));
  expectRunsIdentical(reference, serial, "sharded-rebalance-1-thread");

  DynamicUniverse threadedUniverse = makeUniverse();
  const ChurnRunResult threaded = runChurnOverTrace(
      threadedUniverse, trace, engineConfig(seed, 8, sharded, true));
  expectRunsIdentical(reference, threaded, "sharded-rebalance-8-threads");

  // The rebalancer's migration schedule is planned at the epoch
  // boundary, outside the parallel sections: identical at any thread
  // count, epoch by epoch.
  ASSERT_EQ(serial.epochs.size(), threaded.epochs.size());
  for (std::size_t k = 0; k < serial.epochs.size(); ++k) {
    EXPECT_EQ(serial.epochs[k].demandsMigrated,
              threaded.epochs[k].demandsMigrated)
        << "epoch " << k;
    EXPECT_EQ(serial.epochs[k].loadVarianceBefore,
              threaded.epochs[k].loadVarianceBefore)
        << "epoch " << k;
    EXPECT_EQ(serial.epochs[k].loadVarianceAfter,
              threaded.epochs[k].loadVarianceAfter)
        << "epoch " << k;
  }

  activity.demandsMigrated += serial.totalDemandsMigrated;
  if (serial.peakVarianceBefore > 0 &&
      serial.peakVarianceAfter < serial.peakVarianceBefore) {
    activity.varianceReduced = true;
  }
}

class RebalanceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RebalanceSweep, TreeEpochsIdenticalUnderRebalancing) {
  const std::uint64_t seed = GetParam();
  const ChurnTreeScenario scenario = makeHotspotTree50k(seed, kPoolDemands);
  RebalanceActivity activity;
  for (const ArrivalModel model :
       {ArrivalModel::Poisson, ArrivalModel::TargetedBurst}) {
    SCOPED_TRACE(arrivalModelName(model));
    verifyRebalancedRunsAgree(
        [&scenario] { return makeDynamicTreeUniverse(scenario.pool); },
        generateChurnTrace(sweepArrivals(model, seed), scenario.pool.access),
        seed, activity);
  }
  // Non-vacuous: the targeted burst piles its hot networks onto sticky
  // anchors, so the rebalancer must actually move demands and flatten
  // the per-processor load somewhere in this sweep.
  EXPECT_GT(activity.demandsMigrated, 0);
  EXPECT_TRUE(activity.varianceReduced);
}

TEST_P(RebalanceSweep, LineEpochsIdenticalUnderRebalancing) {
  const std::uint64_t seed = GetParam();
  const ChurnLineScenario scenario =
      makeDiurnalMetroLine100k(seed, kPoolDemands);
  RebalanceActivity activity;
  for (const ArrivalModel model :
       {ArrivalModel::Poisson, ArrivalModel::TargetedBurst}) {
    SCOPED_TRACE(arrivalModelName(model));
    verifyRebalancedRunsAgree(
        [&scenario] { return makeDynamicLineUniverse(scenario.pool); },
        generateChurnTrace(sweepArrivals(model, seed), scenario.pool.access),
        seed, activity);
  }
  EXPECT_GT(activity.demandsMigrated, 0);
  EXPECT_TRUE(activity.varianceReduced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebalanceSweep, ::testing::ValuesIn(kSeeds),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace treesched
