// ShardPlacement coverage: every demand placed exactly once, round-robin
// balance, locality keeping same-network demands together, and the
// processor-level collapse of the communication graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/scenario.hpp"
#include "net/shard.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

/// Access lists for m demands over r networks, demand d on network d % r.
std::vector<std::vector<std::int32_t>> stripedAccess(std::int32_t m,
                                                     std::int32_t r) {
  std::vector<std::vector<std::int32_t>> access(
      static_cast<std::size_t>(m));
  for (std::int32_t d = 0; d < m; ++d) {
    access[static_cast<std::size_t>(d)] = {d % r};
  }
  return access;
}

void expectPartition(const ShardPlacement& placement, std::int32_t m) {
  ASSERT_EQ(placement.numDemands(), m);
  std::set<DemandId> seen;
  for (std::int32_t p = 0; p < placement.numProcessors; ++p) {
    for (const DemandId d :
         placement.demandsOfProcessor[static_cast<std::size_t>(p)]) {
      EXPECT_EQ(placement.processorOfDemand[static_cast<std::size_t>(d)], p);
      EXPECT_TRUE(seen.insert(d).second)
          << "demand " << d << " placed more than once";
    }
  }
  EXPECT_EQ(static_cast<std::int32_t>(seen.size()), m)
      << "every demand must be placed exactly once";
}

TEST(ShardPlacement, EveryDemandPlacedExactlyOnce) {
  for (const ShardStrategy strategy :
       {ShardStrategy::RoundRobin, ShardStrategy::Locality}) {
    for (const std::int32_t procs : {1, 2, 3, 7, 20, 50}) {
      const ShardPlacement placement =
          ShardPlacement::build(strategy, stripedAccess(20, 4), procs);
      expectPartition(placement, 20);
      EXPECT_LE(placement.numProcessors, 20)
          << "processor count clamps to the demand count";
    }
  }
}

TEST(ShardPlacement, IdentityIsOneDemandPerProcessor) {
  const ShardPlacement placement = ShardPlacement::identity(5);
  expectPartition(placement, 5);
  EXPECT_EQ(placement.numProcessors, 5);
  for (DemandId d = 0; d < 5; ++d) {
    EXPECT_EQ(placement.processorOfDemand[static_cast<std::size_t>(d)], d);
  }
}

TEST(ShardPlacement, RoundRobinBalancesWithinOne) {
  const ShardPlacement placement = ShardPlacement::build(
      ShardStrategy::RoundRobin, stripedAccess(23, 3), 5);
  std::size_t lo = 23, hi = 0;
  for (const auto& hosted : placement.demandsOfProcessor) {
    lo = std::min(lo, hosted.size());
    hi = std::max(hi, hosted.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ShardPlacement, LocalityKeepsSameNetworkDemandsTogether) {
  // 4 demands on network 0, then 4 on network 1 (interleaved ids), two
  // processors: each processor must host demands of exactly one network.
  std::vector<std::vector<std::int32_t>> access = {
      {0}, {1}, {0}, {1}, {0}, {1}, {0}, {1}};
  const ShardPlacement placement =
      ShardPlacement::build(ShardStrategy::Locality, access, 2);
  expectPartition(placement, 8);
  for (std::int32_t p = 0; p < 2; ++p) {
    std::set<std::int32_t> networks;
    for (const DemandId d :
         placement.demandsOfProcessor[static_cast<std::size_t>(p)]) {
      networks.insert(access[static_cast<std::size_t>(d)][0]);
    }
    EXPECT_EQ(networks.size(), 1u)
        << "locality placement mixed networks on processor " << p;
  }
}

TEST(ShardPlacement, LocalityHandlesEmptyAccessLists) {
  // Demands with no accessible network sort last but must still be placed.
  std::vector<std::vector<std::int32_t>> access = {{0}, {}, {1}, {}};
  const ShardPlacement placement =
      ShardPlacement::build(ShardStrategy::Locality, access, 2);
  expectPartition(placement, 4);
}

TEST(ShardPlacement, RejectsDegenerateInputs) {
  EXPECT_THROW(ShardPlacement::identity(0), CheckError);
  EXPECT_THROW(ShardPlacement::build(ShardStrategy::RoundRobin, {}, 2),
               CheckError);
  EXPECT_THROW(
      ShardPlacement::build(ShardStrategy::RoundRobin, stripedAccess(4, 2), 0),
      CheckError);
}

TEST(ShardPlacement, ZeroDemandProcessorsStayValidEndToEnd) {
  // More processors than demands clamps (never an empty shard), but an
  // explicitly sparse placement with empty processors must also survive
  // the whole stack: partition audit + adjacency collapse.
  const ShardPlacement clamped = ShardPlacement::build(
      ShardStrategy::Locality, stripedAccess(3, 2), 8);
  expectPartition(clamped, 3);
  EXPECT_EQ(clamped.numProcessors, 3);
  for (const auto& shard : clamped.demandsOfProcessor) {
    EXPECT_FALSE(shard.empty());
  }

  ShardPlacement sparse;
  sparse.numProcessors = 4;
  sparse.processorOfDemand = {0, 3, 3};  // processors 1 and 2 host nothing
  sparse.demandsOfProcessor = {{0}, {}, {}, {1, 2}};
  const std::vector<std::vector<std::int32_t>> demandAdjacency = {
      {1, 2}, {0, 2}, {0, 1}};
  const auto adjacency = shardAdjacency(demandAdjacency, sparse);
  ASSERT_EQ(adjacency.size(), 4u);
  EXPECT_EQ(adjacency[0], (std::vector<std::int32_t>{3}));
  EXPECT_TRUE(adjacency[1].empty());
  EXPECT_TRUE(adjacency[2].empty());
  EXPECT_EQ(adjacency[3], (std::vector<std::int32_t>{0}));
}

TEST(ShardPlacement, AllDemandsOnOneNetworkSplitIntoBalancedBlocks) {
  // One shared network: locality has a single home-network class, so the
  // split degenerates to contiguous near-equal blocks — never one
  // overloaded processor.
  std::vector<std::vector<std::int32_t>> access(
      10, std::vector<std::int32_t>{0});
  const ShardPlacement placement =
      ShardPlacement::build(ShardStrategy::Locality, access, 3);
  expectPartition(placement, 10);
  for (const auto& shard : placement.demandsOfProcessor) {
    EXPECT_GE(static_cast<std::int32_t>(shard.size()), 3);
    EXPECT_LE(static_cast<std::int32_t>(shard.size()), 4);
  }
  // Contiguity: each shard hosts a consecutive demand-id range here
  // (stable sort on equal home networks preserves id order).
  for (const auto& shard : placement.demandsOfProcessor) {
    for (std::size_t i = 1; i < shard.size(); ++i) {
      EXPECT_EQ(shard[i], shard[i - 1] + 1);
    }
  }
}

TEST(ShardPlacement, LocalityGroupsAccessCountMaxInstances) {
  // The count-based accessibility generator of the scale presets: every
  // demand accesses 1-2 of many networks. Locality must (a) keep the
  // partition exact and (b) co-locate most demands with at least one
  // same-home-network demand, which is what keeps their chatter off the
  // wire.
  const TreeProblem pool = makeCdnTree250k(11, 320);
  const std::int32_t processors = 16;
  const ShardPlacement placement = ShardPlacement::build(
      ShardStrategy::Locality, pool.access, processors);
  expectPartition(placement, pool.numDemands());
  EXPECT_EQ(placement.numProcessors, processors);

  const auto homeNetwork = [&pool](DemandId d) {
    const auto& nets = pool.access[static_cast<std::size_t>(d)];
    return *std::min_element(nets.begin(), nets.end());
  };
  // Contiguous-cut invariant: consecutive shards cover non-decreasing
  // home-network bands (a class may straddle one boundary, never two).
  std::int32_t previousMax = -1;
  for (const auto& shard : placement.demandsOfProcessor) {
    ASSERT_FALSE(shard.empty());
    std::int32_t lo = homeNetwork(shard.front());
    std::int32_t hi = lo;
    for (const DemandId d : shard) {
      lo = std::min(lo, homeNetwork(d));
      hi = std::max(hi, homeNetwork(d));
    }
    if (previousMax >= 0) {
      EXPECT_GE(lo, previousMax);
    }
    previousMax = hi;
  }
  // And the locality payoff: demands sharing a home network land on the
  // same processor far more often than round-robin would manage.
  std::int64_t localityTogether = 0;
  std::int64_t roundRobinTogether = 0;
  const ShardPlacement roundRobin = ShardPlacement::build(
      ShardStrategy::RoundRobin, pool.access, processors);
  for (DemandId a = 0; a < pool.numDemands(); ++a) {
    for (DemandId b = a + 1; b < pool.numDemands(); ++b) {
      if (homeNetwork(a) != homeNetwork(b)) continue;
      if (placement.processorOfDemand[static_cast<std::size_t>(a)] ==
          placement.processorOfDemand[static_cast<std::size_t>(b)]) {
        ++localityTogether;
      }
      if (roundRobin.processorOfDemand[static_cast<std::size_t>(a)] ==
          roundRobin.processorOfDemand[static_cast<std::size_t>(b)]) {
        ++roundRobinTogether;
      }
    }
  }
  EXPECT_GT(localityTogether, 2 * roundRobinTogether);
}

TEST(ShardAdjacency, CollapsesToProcessorLevel) {
  // Demand graph: 0-1, 1-2, 2-3; placement {0,1}->P0, {2,3}->P1.
  const std::vector<std::vector<std::int32_t>> demandAdjacency = {
      {1}, {0, 2}, {1, 3}, {2}};
  ShardPlacement placement;
  placement.numProcessors = 2;
  placement.processorOfDemand = {0, 0, 1, 1};
  placement.demandsOfProcessor = {{0, 1}, {2, 3}};
  const auto adjacency = shardAdjacency(demandAdjacency, placement);
  ASSERT_EQ(adjacency.size(), 2u);
  EXPECT_EQ(adjacency[0], (std::vector<std::int32_t>{1}));
  EXPECT_EQ(adjacency[1], (std::vector<std::int32_t>{0}));
}

TEST(ShardAdjacency, AllLocalMeansNoLinks) {
  const std::vector<std::vector<std::int32_t>> demandAdjacency = {{1}, {0}};
  const auto adjacency =
      shardAdjacency(demandAdjacency,
                     ShardPlacement::build(ShardStrategy::RoundRobin,
                                           {{0}, {0}}, 1));
  ASSERT_EQ(adjacency.size(), 1u);
  EXPECT_TRUE(adjacency[0].empty());
}

// ---- Epoch-boundary migration primitives + the rebalance planner ----

/// Live pool with every demand on one home network: the sticky anchor
/// piles all arrivals onto a single processor — the hot-shard shape the
/// rebalancer exists for.
ShardPlacement hotPool(std::int32_t demands, std::int32_t processors) {
  std::vector<std::vector<std::int32_t>> access(
      static_cast<std::size_t>(demands), std::vector<std::int32_t>{0});
  ShardPlacement placement = ShardPlacement::livePool(access, processors);
  for (DemandId d = 0; d < demands; ++d) {
    placement.placeDemand(d);
  }
  return placement;
}

TEST(ShardMigration, MigrateToSelfIsANoOp) {
  ShardPlacement placement = hotPool(4, 3);
  const std::int32_t home = placement.processorOfDemand[0];
  const auto hostedBefore =
      placement.demandsOfProcessor[static_cast<std::size_t>(home)];
  placement.migrateDemand(1, home);
  EXPECT_EQ(placement.demandsOfProcessor[static_cast<std::size_t>(home)],
            hostedBefore);
  EXPECT_EQ(placement.tombstoneCount(home), 0);
  EXPECT_EQ(placement.liveDemandCount(home), 4);
}

TEST(ShardMigration, MigrationWithTombstonedDeparturesCompacts) {
  ShardPlacement placement = hotPool(6, 2);
  const std::int32_t home = placement.processorOfDemand[0];
  const std::int32_t other = 1 - home;
  // Tombstone two departures, then migrate two more away: the source
  // list accumulates tombstones until they outnumber the live entries,
  // at which point it compacts — and the live/tombstone counters agree
  // with the lists throughout.
  placement.removeDemand(0);
  placement.removeDemand(1);
  EXPECT_EQ(placement.tombstoneCount(home), 2);
  placement.migrateDemand(2, other);
  placement.migrateDemand(3, other);
  EXPECT_EQ(placement.liveDemandCount(home), 2);
  EXPECT_EQ(placement.liveDemandCount(other), 2);
  EXPECT_GE(placement.compactions, 1);
  // Every surviving entry is live and on the processor its map says.
  for (std::int32_t p = 0; p < placement.numProcessors; ++p) {
    std::int32_t live = 0;
    for (const DemandId d :
         placement.demandsOfProcessor[static_cast<std::size_t>(p)]) {
      if (d == ShardPlacement::kUnplaced) continue;
      EXPECT_EQ(placement.processorOfDemand[static_cast<std::size_t>(d)], p);
      ++live;
    }
    EXPECT_EQ(live, placement.liveDemandCount(p));
  }
  // The home anchor is untouched by migration: a fresh arrival of the
  // network still lands on it.
  EXPECT_EQ(placement.placeDemand(0), home);
}

TEST(ShardMigration, LastDemandLeavesAValidEmptySource) {
  ShardPlacement placement = hotPool(2, 2);
  const std::int32_t home = placement.processorOfDemand[0];
  const std::int32_t other = 1 - home;
  placement.migrateDemand(0, other);
  placement.migrateDemand(1, other);
  EXPECT_EQ(placement.liveDemandCount(home), 0);
  EXPECT_EQ(placement.liveDemandCount(other), 2);
  // A later plan over the now-empty source processor treats it as the
  // cold target, never a move source.
  const ShardPlacement::RebalancePlan plan = placement.planRebalance(
      /*threshold=*/1.25, /*seed=*/7, /*maxMoves=*/8);
  for (const ShardPlacement::Migration& move : plan.moves) {
    EXPECT_NE(move.from, home);
    EXPECT_EQ(move.to, home);
  }
  EXPECT_FALSE(plan.moves.empty());
  EXPECT_LT(plan.varianceAfter, plan.varianceBefore);
}

TEST(ShardMigration, PlanIsDeterministicAndPure) {
  ShardPlacement placement = hotPool(24, 4);
  const std::vector<std::int32_t> mapBefore = placement.processorOfDemand;
  const ShardPlacement::RebalancePlan first =
      placement.planRebalance(1.25, 42, 64);
  const ShardPlacement::RebalancePlan second =
      placement.planRebalance(1.25, 42, 64);
  // Pure: planning mutates nothing.
  EXPECT_EQ(placement.processorOfDemand, mapBefore);
  // Deterministic: identical inputs, identical plan.
  ASSERT_EQ(first.moves.size(), second.moves.size());
  for (std::size_t k = 0; k < first.moves.size(); ++k) {
    EXPECT_EQ(first.moves[k].demand, second.moves[k].demand);
    EXPECT_EQ(first.moves[k].from, second.moves[k].from);
    EXPECT_EQ(first.moves[k].to, second.moves[k].to);
  }
  EXPECT_EQ(first.varianceBefore, second.varianceBefore);
  EXPECT_EQ(first.varianceAfter, second.varianceAfter);
  // The hot single-network pool can only be flattened by splitting: the
  // plan must cut the 24-on-one-processor pile well below threshold *
  // mean (24 live / 4 procs * 1.25 = 7.5 -> cap 8 after integer gaps).
  ASSERT_FALSE(first.moves.empty());
  ShardPlacement applied = placement;
  for (const ShardPlacement::Migration& move : first.moves) {
    applied.migrateDemand(move.demand, move.to);
  }
  EXPECT_EQ(applied.loadVariance(), first.varianceAfter);
  for (std::int32_t p = 0; p < applied.numProcessors; ++p) {
    EXPECT_LE(applied.liveDemandCount(p), 8);
  }
}

TEST(ShardMigration, BalancedPoolPlansNothing) {
  // Striped homes: arrivals round-robin across anchors, loads are even,
  // the planner must leave everything in place.
  ShardPlacement placement =
      ShardPlacement::livePool(stripedAccess(12, 4), 4);
  for (DemandId d = 0; d < 12; ++d) {
    placement.placeDemand(d);
  }
  const ShardPlacement::RebalancePlan plan =
      placement.planRebalance(1.25, 3, 64);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.varianceBefore, plan.varianceAfter);
  EXPECT_EQ(plan.networksMoved, 0);
}

}  // namespace
}  // namespace treesched
