// ShardPlacement coverage: every demand placed exactly once, round-robin
// balance, locality keeping same-network demands together, and the
// processor-level collapse of the communication graph.
#include <gtest/gtest.h>

#include <set>

#include "net/shard.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

/// Access lists for m demands over r networks, demand d on network d % r.
std::vector<std::vector<std::int32_t>> stripedAccess(std::int32_t m,
                                                     std::int32_t r) {
  std::vector<std::vector<std::int32_t>> access(
      static_cast<std::size_t>(m));
  for (std::int32_t d = 0; d < m; ++d) {
    access[static_cast<std::size_t>(d)] = {d % r};
  }
  return access;
}

void expectPartition(const ShardPlacement& placement, std::int32_t m) {
  ASSERT_EQ(placement.numDemands(), m);
  std::set<DemandId> seen;
  for (std::int32_t p = 0; p < placement.numProcessors; ++p) {
    for (const DemandId d :
         placement.demandsOfProcessor[static_cast<std::size_t>(p)]) {
      EXPECT_EQ(placement.processorOfDemand[static_cast<std::size_t>(d)], p);
      EXPECT_TRUE(seen.insert(d).second)
          << "demand " << d << " placed more than once";
    }
  }
  EXPECT_EQ(static_cast<std::int32_t>(seen.size()), m)
      << "every demand must be placed exactly once";
}

TEST(ShardPlacement, EveryDemandPlacedExactlyOnce) {
  for (const ShardStrategy strategy :
       {ShardStrategy::RoundRobin, ShardStrategy::Locality}) {
    for (const std::int32_t procs : {1, 2, 3, 7, 20, 50}) {
      const ShardPlacement placement =
          ShardPlacement::build(strategy, stripedAccess(20, 4), procs);
      expectPartition(placement, 20);
      EXPECT_LE(placement.numProcessors, 20)
          << "processor count clamps to the demand count";
    }
  }
}

TEST(ShardPlacement, IdentityIsOneDemandPerProcessor) {
  const ShardPlacement placement = ShardPlacement::identity(5);
  expectPartition(placement, 5);
  EXPECT_EQ(placement.numProcessors, 5);
  for (DemandId d = 0; d < 5; ++d) {
    EXPECT_EQ(placement.processorOfDemand[static_cast<std::size_t>(d)], d);
  }
}

TEST(ShardPlacement, RoundRobinBalancesWithinOne) {
  const ShardPlacement placement = ShardPlacement::build(
      ShardStrategy::RoundRobin, stripedAccess(23, 3), 5);
  std::size_t lo = 23, hi = 0;
  for (const auto& hosted : placement.demandsOfProcessor) {
    lo = std::min(lo, hosted.size());
    hi = std::max(hi, hosted.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ShardPlacement, LocalityKeepsSameNetworkDemandsTogether) {
  // 4 demands on network 0, then 4 on network 1 (interleaved ids), two
  // processors: each processor must host demands of exactly one network.
  std::vector<std::vector<std::int32_t>> access = {
      {0}, {1}, {0}, {1}, {0}, {1}, {0}, {1}};
  const ShardPlacement placement =
      ShardPlacement::build(ShardStrategy::Locality, access, 2);
  expectPartition(placement, 8);
  for (std::int32_t p = 0; p < 2; ++p) {
    std::set<std::int32_t> networks;
    for (const DemandId d :
         placement.demandsOfProcessor[static_cast<std::size_t>(p)]) {
      networks.insert(access[static_cast<std::size_t>(d)][0]);
    }
    EXPECT_EQ(networks.size(), 1u)
        << "locality placement mixed networks on processor " << p;
  }
}

TEST(ShardPlacement, LocalityHandlesEmptyAccessLists) {
  // Demands with no accessible network sort last but must still be placed.
  std::vector<std::vector<std::int32_t>> access = {{0}, {}, {1}, {}};
  const ShardPlacement placement =
      ShardPlacement::build(ShardStrategy::Locality, access, 2);
  expectPartition(placement, 4);
}

TEST(ShardPlacement, RejectsDegenerateInputs) {
  EXPECT_THROW(ShardPlacement::identity(0), CheckError);
  EXPECT_THROW(ShardPlacement::build(ShardStrategy::RoundRobin, {}, 2),
               CheckError);
  EXPECT_THROW(
      ShardPlacement::build(ShardStrategy::RoundRobin, stripedAccess(4, 2), 0),
      CheckError);
}

TEST(ShardAdjacency, CollapsesToProcessorLevel) {
  // Demand graph: 0-1, 1-2, 2-3; placement {0,1}->P0, {2,3}->P1.
  const std::vector<std::vector<std::int32_t>> demandAdjacency = {
      {1}, {0, 2}, {1, 3}, {2}};
  ShardPlacement placement;
  placement.numProcessors = 2;
  placement.processorOfDemand = {0, 0, 1, 1};
  placement.demandsOfProcessor = {{0, 1}, {2, 3}};
  const auto adjacency = shardAdjacency(demandAdjacency, placement);
  ASSERT_EQ(adjacency.size(), 2u);
  EXPECT_EQ(adjacency[0], (std::vector<std::int32_t>{1}));
  EXPECT_EQ(adjacency[1], (std::vector<std::int32_t>{0}));
}

TEST(ShardAdjacency, AllLocalMeansNoLinks) {
  const std::vector<std::vector<std::int32_t>> demandAdjacency = {{1}, {0}};
  const auto adjacency =
      shardAdjacency(demandAdjacency,
                     ShardPlacement::build(ShardStrategy::RoundRobin,
                                           {{0}, {0}}, 1));
  ASSERT_EQ(adjacency.size(), 1u);
  EXPECT_TRUE(adjacency[0].empty());
}

}  // namespace
}  // namespace treesched
